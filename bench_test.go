// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation at benchmark-friendly scale: one testing.B benchmark
// per experiment, each delegating to the same internal/exp runner that
// cmd/coupbench uses at full scale. Run the full versions with:
//
//	go run ./cmd/coupbench -exp all
//
// ns/op numbers measure harness runtime (simulator throughput), not
// simulated performance; the simulated results are printed once per
// benchmark under -v via b.Log.
package repro

import (
	"testing"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/proto"
	"repro/pkg/coup"
)

func runExp(b *testing.B, id string) {
	if testing.Short() {
		b.Skipf("skipping figure regeneration %s in -short mode", id)
	}
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	p := exp.BenchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(p)
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		if i == 0 && testing.Verbose() {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

// BenchmarkFig2Hist regenerates Fig 2 (hist vs bins, three schemes).
func BenchmarkFig2Hist(b *testing.B) { runExp(b, "fig2") }

// BenchmarkFig10Speedups regenerates Fig 10 (per-app speedups, both
// protocols, core sweep).
func BenchmarkFig10Speedups(b *testing.B) { runExp(b, "fig10") }

// BenchmarkFig11AMAT regenerates Fig 11 (AMAT breakdowns).
func BenchmarkFig11AMAT(b *testing.B) { runExp(b, "fig11") }

// BenchmarkFig12Privatization regenerates Fig 12 (hist reduction-variable
// comparison against core- and socket-level privatization).
func BenchmarkFig12Privatization(b *testing.B) { runExp(b, "fig12") }

// BenchmarkFig13RefcountLow regenerates Fig 13a (immediate dealloc, low
// count).
func BenchmarkFig13RefcountLow(b *testing.B) { runExp(b, "fig13a") }

// BenchmarkFig13RefcountHigh regenerates Fig 13b (immediate dealloc, high
// count).
func BenchmarkFig13RefcountHigh(b *testing.B) { runExp(b, "fig13b") }

// BenchmarkFig13Delayed regenerates Fig 13c (delayed dealloc vs Refcache).
func BenchmarkFig13Delayed(b *testing.B) { runExp(b, "fig13c") }

// BenchmarkSec55ALU regenerates the Sec 5.5 reduction-unit throughput
// sensitivity study.
func BenchmarkSec55ALU(b *testing.B) { runExp(b, "sec55") }

// BenchmarkTrafficTable regenerates the Sec 5.2 off-chip traffic factors.
func BenchmarkTrafficTable(b *testing.B) { runExp(b, "traffic") }

// BenchmarkTable2 regenerates Table 2 (benchmark characteristics).
func BenchmarkTable2(b *testing.B) { runExp(b, "table2") }

// BenchmarkAblation regenerates the Fig 1 comparison and design ablations.
func BenchmarkAblation(b *testing.B) { runExp(b, "ablation") }

// BenchmarkFig8Verify regenerates a slice of Fig 8: exhaustive verification
// of two-level MESI and MEUSI at 2 cores.
func BenchmarkFig8Verify(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping exhaustive verification in -short mode")
	}
	for i := 0; i < b.N; i++ {
		for _, sy := range []*proto.System{
			{Kind: proto.MESI, NCores: 2},
			{Kind: proto.MEUSI, NCores: 2, NOps: 1},
		} {
			r := check.Verify(sy, 1_000_000, 0)
			if !r.Verified() {
				b.Fatalf("%v: %v", sy.Kind, r)
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// memory operations per second on a contended-counter kernel.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const opsPerRun = 16 * 500
	b.ReportMetric(0, "ns/op") // replaced below
	for i := 0; i < b.N; i++ {
		m, err := coup.NewMachine(coup.WithCores(16), coup.WithProtocol("MEUSI"))
		if err != nil {
			b.Fatal(err)
		}
		ctr := m.Alloc(64, 64)
		m.Run(func(c *coup.Ctx) {
			for k := 0; k < 500; k++ {
				c.CommAdd64(ctr, 1)
			}
		})
	}
	b.ReportMetric(float64(b.N)*opsPerRun/b.Elapsed().Seconds(), "simops/s")
}

// BenchmarkWorkloadHist measures end-to-end simulation speed of one hist
// run (the heaviest single workload in the harness).
func BenchmarkWorkloadHist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := coup.Run("hist",
			coup.WithCores(32),
			coup.WithProtocol("MEUSI"),
			coup.WithWorkloadParams(coup.WorkloadParams{Size: 20_000, Bins: 512, Seed: 7}),
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}
