package gen

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Next() == NewRNG(2).Next() {
		t.Error("different seeds collided immediately")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	if NewRNG(1).Intn(0) != 0 {
		t.Error("Intn(0) must be 0")
	}
}

func TestImageSkew(t *testing.T) {
	uniform := Image(100000, 0, 1)
	skewed := Image(100000, 0.7, 1)
	entropyish := func(px []uint8) int {
		var hist [256]int
		for _, p := range px {
			hist[p]++
		}
		// Count bins holding >2x the uniform share: skew indicator.
		over := 0
		for _, c := range hist {
			if c > 2*len(px)/256 {
				over++
			}
		}
		return over
	}
	if entropyish(skewed) <= entropyish(uniform) {
		t.Error("skewed image is not more concentrated than uniform")
	}
	if len(uniform) != 100000 {
		t.Error("wrong length")
	}
	// Determinism.
	again := Image(1000, 0.5, 99)
	again2 := Image(1000, 0.5, 99)
	for i := range again {
		if again[i] != again2[i] {
			t.Fatal("image generation not deterministic")
		}
	}
}

func TestSparseMatrixWellFormed(t *testing.T) {
	m := SparseMatrix(2000, 24, 3)
	if m.Rows != 2000 || m.Cols != 2000 {
		t.Fatal("dimensions")
	}
	if len(m.ColPtr) != m.Cols+1 {
		t.Fatal("colptr length")
	}
	if m.ColPtr[0] != 0 || int(m.ColPtr[m.Cols]) != m.NNZ() {
		t.Fatal("colptr bounds")
	}
	for j := 0; j < m.Cols; j++ {
		if m.ColPtr[j] > m.ColPtr[j+1] {
			t.Fatalf("colptr not monotone at %d", j)
		}
		seen := map[int32]bool{}
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			i := m.RowIdx[k]
			if i < 0 || int(i) >= m.Rows {
				t.Fatalf("row index %d out of range", i)
			}
			if seen[i] {
				t.Fatalf("duplicate entry (%d,%d)", i, j)
			}
			seen[i] = true
			if m.Val[k] <= 0 {
				t.Fatalf("nonpositive value at %d", k)
			}
		}
	}
	// Average degree near request.
	avg := float64(m.NNZ()) / float64(m.Cols)
	if avg < 12 || avg > 40 {
		t.Errorf("average nnz/col %.1f implausible for request 24", avg)
	}
	// Banded structure: most entries near the diagonal.
	near := 0
	band := 2000 / 64 * 3
	for j := 0; j < m.Cols; j++ {
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			d := int(m.RowIdx[k]) - j
			if d < 0 {
				d = -d
			}
			if d <= band {
				near++
			}
		}
	}
	if float64(near)/float64(m.NNZ()) < 0.6 {
		t.Errorf("only %.0f%% of entries near the diagonal; rma10-like banding missing",
			100*float64(near)/float64(m.NNZ()))
	}
}

func TestRMATWellFormedAndSkewed(t *testing.T) {
	g := RMAT(12, 8, 5)
	if g.N != 4096 {
		t.Fatal("vertex count")
	}
	if g.Off[0] != 0 || int(g.Off[g.N]) != g.M() {
		t.Fatal("offsets")
	}
	for i := 0; i < g.N; i++ {
		if g.Off[i] > g.Off[i+1] {
			t.Fatalf("offset not monotone at %d", i)
		}
		if g.Off[i+1]-g.Off[i] != g.OutDeg[i] {
			t.Fatalf("degree mismatch at %d", i)
		}
	}
	for _, d := range g.Dst {
		if d < 0 || int(d) >= g.N {
			t.Fatalf("dst %d out of range", d)
		}
	}
	// Power-law skew: max degree far above average.
	avg := float64(g.M()) / float64(g.N)
	if float64(g.MaxDegree()) < 8*avg {
		t.Errorf("max degree %d vs avg %.1f: not power-law-ish", g.MaxDegree(), avg)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(10, 4, 9)
	b := RMAT(10, 4, 9)
	if a.M() != b.M() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Dst {
		if a.Dst[i] != b.Dst[i] {
			t.Fatal("graphs differ")
		}
	}
}

func TestFluidSmooth(t *testing.T) {
	g := Fluid(64, 64, 11)
	if len(g.Density) != 64*64 {
		t.Fatal("size")
	}
	// Smoothness: neighbour deltas are small relative to the global range.
	var mn, mx float32 = g.Density[0], g.Density[0]
	var maxDelta float32
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := g.Density[y*64+x]
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			if x > 0 {
				d := v - g.Density[y*64+x-1]
				if d < 0 {
					d = -d
				}
				if d > maxDelta {
					maxDelta = d
				}
			}
		}
	}
	if mx <= mn {
		t.Fatal("flat field")
	}
	if maxDelta > (mx-mn)/2 {
		t.Errorf("field not smooth: max delta %v vs range %v", maxDelta, mx-mn)
	}
}

func TestRMATPropertyEdgesInRange(t *testing.T) {
	f := func(seed uint64) bool {
		g := RMAT(8, 4, seed%100+1)
		for _, d := range g.Dst {
			if d < 0 || int(d) >= g.N {
				return false
			}
		}
		return int(g.Off[g.N]) == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
