// Package gen produces the deterministic synthetic inputs that substitute
// for the paper's proprietary or impractically large data sets (Table 2):
// GRiN images for hist, the rma10 sparse matrix for spmv, the Wikipedia
// 2007 link graph for pgrank, the cage15 DNA graph for bfs, and PARSEC
// fluidanimate's simlarge particle grid. Each generator matches the
// qualitative structure the corresponding benchmark depends on (value
// skew, nonzero overlap, degree distribution, frontier shape), which is
// what determines coherence behaviour; see DESIGN.md's substitution table.
package gen

// RNG is a small deterministic splitmix64 generator, independent of
// math/rand so that inputs are stable across Go releases.
type RNG struct{ s uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{s: seed} }

// Next returns the next 64-bit pseudo-random value.
func (r *RNG) Next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Image returns n 8-bit pixel values. Real photographs (the GRiN set) have
// strongly non-uniform luminance histograms; skew > 0 mixes a uniform
// component with clustered "sky/shadow" bands to reproduce that, while
// skew == 0 is uniform.
func Image(n int, skew float64, seed uint64) []uint8 {
	r := NewRNG(seed)
	px := make([]uint8, n)
	// Pick a few dominant bands, as photographs have.
	bands := []uint8{uint8(r.Intn(256)), uint8(r.Intn(256)), uint8(r.Intn(256))}
	for i := range px {
		if r.Float64() < skew {
			b := bands[r.Intn(len(bands))]
			px[i] = b + uint8(r.Intn(17)) - 8
		} else {
			px[i] = uint8(r.Intn(256))
		}
	}
	return px
}

// CSC is a sparse matrix in compressed sparse column format, the layout
// that forces spmv's scattered adds to the output vector (Sec 5.1).
type CSC struct {
	Rows, Cols int
	ColPtr     []int32   // len Cols+1
	RowIdx     []int32   // len NNZ
	Val        []float64 // len NNZ
}

// NNZ returns the number of stored nonzeros.
func (m *CSC) NNZ() int { return len(m.RowIdx) }

// SparseMatrix builds an rma10-like square CSC matrix: a banded diagonal
// structure (3-D CFD mesh locality) plus a fraction of uniformly scattered
// entries, with the given average nonzeros per column.
func SparseMatrix(n, nnzPerCol int, seed uint64) *CSC {
	r := NewRNG(seed)
	m := &CSC{Rows: n, Cols: n}
	m.ColPtr = make([]int32, n+1)
	band := n / 64
	if band < 8 {
		band = 8
	}
	seen := make(map[int32]bool, nnzPerCol*2)
	for j := 0; j < n; j++ {
		m.ColPtr[j] = int32(len(m.RowIdx))
		k := nnzPerCol/2 + r.Intn(nnzPerCol) // mild column-degree variance
		for key := range seen {
			delete(seen, key)
		}
		for e := 0; e < k; e++ {
			var i int
			if r.Float64() < 0.85 {
				// Banded: near the diagonal.
				i = j + r.Intn(2*band+1) - band
				if i < 0 {
					i = -i
				}
				if i >= n {
					i = 2*(n-1) - i
				}
			} else {
				i = r.Intn(n)
			}
			ri := int32(i)
			if seen[ri] {
				continue
			}
			seen[ri] = true
			m.RowIdx = append(m.RowIdx, ri)
			m.Val = append(m.Val, 1+r.Float64())
		}
	}
	m.ColPtr[n] = int32(len(m.RowIdx))
	return m
}

// Graph is a directed graph in compressed sparse row (adjacency) form.
type Graph struct {
	N      int
	Off    []int32 // len N+1
	Dst    []int32 // len M
	OutDeg []int32 // len N
}

// M returns the edge count.
func (g *Graph) M() int { return len(g.Dst) }

// RMAT builds a power-law directed graph with n = 2^scale vertices and
// approximately edgeFactor*n edges using the recursive-matrix method, the
// standard stand-in for web/wiki link graphs (pgrank) and large sparse
// irregular graphs (bfs).
func RMAT(scale, edgeFactor int, seed uint64) *Graph {
	r := NewRNG(seed)
	n := 1 << uint(scale)
	mEdges := edgeFactor * n
	const a, b, c = 0.57, 0.19, 0.19 // Graph500 parameters
	type edge struct{ s, d int32 }
	edges := make([]edge, 0, mEdges)
	for e := 0; e < mEdges; e++ {
		var src, dst int
		for bitPos := scale - 1; bitPos >= 0; bitPos-- {
			p := r.Float64()
			switch {
			case p < a:
				// top-left: neither bit set
			case p < a+b:
				dst |= 1 << uint(bitPos)
			case p < a+b+c:
				src |= 1 << uint(bitPos)
			default:
				src |= 1 << uint(bitPos)
				dst |= 1 << uint(bitPos)
			}
		}
		if src == dst {
			continue
		}
		edges = append(edges, edge{int32(src), int32(dst)})
	}
	// Bucket into CSR.
	g := &Graph{N: n}
	g.OutDeg = make([]int32, n)
	for _, e := range edges {
		g.OutDeg[e.s]++
	}
	g.Off = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.Off[i+1] = g.Off[i] + g.OutDeg[i]
	}
	g.Dst = make([]int32, len(edges))
	fill := make([]int32, n)
	for _, e := range edges {
		g.Dst[g.Off[e.s]+fill[e.s]] = e.d
		fill[e.s]++
	}
	return g
}

// MaxDegree returns the largest out-degree (power-law check).
func (g *Graph) MaxDegree() int32 {
	var mx int32
	for _, d := range g.OutDeg {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// FluidGrid describes a 2-D cell grid for the fluidanimate-like stencil:
// each cell holds a particle density; threads own horizontal slabs and
// update their slab plus the boundary rows shared with neighbours.
type FluidGrid struct {
	W, H    int
	Density []float32 // len W*H, initial state
}

// Fluid builds a w×h grid with smoothly varying initial densities.
func Fluid(w, h int, seed uint64) *FluidGrid {
	r := NewRNG(seed)
	g := &FluidGrid{W: w, H: h, Density: make([]float32, w*h)}
	// Sum of a few random low-frequency bumps: smooth, like a fluid field.
	type bump struct{ cx, cy, amp, inv float64 }
	bumps := make([]bump, 6)
	for i := range bumps {
		bumps[i] = bump{
			cx:  r.Float64() * float64(w),
			cy:  r.Float64() * float64(h),
			amp: 0.5 + r.Float64(),
			inv: 1 / (float64(w/8+1) * (0.5 + r.Float64())),
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var v float64
			for _, b := range bumps {
				dx := (float64(x) - b.cx) * b.inv
				dy := (float64(y) - b.cy) * b.inv
				d2 := dx*dx + dy*dy
				v += b.amp / (1 + d2)
			}
			g.Density[y*w+x] = float32(v)
		}
	}
	return g
}
