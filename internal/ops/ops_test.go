package ops

import (
	"math"
	"testing"
	"testing/quick"
)

var updateTypes = []Type{AddI16, AddI32, AddI64, AddF32, AddF64, And64, Or64, Xor64}

// exactTypes are the update types whose Apply is exactly associative
// (bitwise and modular integer arithmetic). FP addition is commutative but
// only approximately associative; the paper supports it anyway (Sec 4.1).
var exactTypes = []Type{AddI16, AddI32, AddI64, And64, Or64, Xor64}

func TestTypeStringsAndValidity(t *testing.T) {
	seen := map[string]bool{}
	for ty := Type(0); ty < NumTypes; ty++ {
		if !ty.Valid() {
			t.Fatalf("%v should be valid", ty)
		}
		s := ty.String()
		if s == "" || seen[s] {
			t.Fatalf("duplicate or empty name %q", s)
		}
		seen[s] = true
	}
	if Type(NumTypes).Valid() {
		t.Fatal("NumTypes must be invalid")
	}
	if Read.IsUpdate() {
		t.Fatal("Read is not an update")
	}
	for _, ty := range updateTypes {
		if !ty.IsUpdate() {
			t.Fatalf("%v must be an update type", ty)
		}
	}
	if NumUpdateTypes != len(updateTypes) {
		t.Fatalf("NumUpdateTypes=%d, want %d", NumUpdateTypes, len(updateTypes))
	}
}

func TestWidths(t *testing.T) {
	want := map[Type]int{
		Read: 0, AddI16: 2, AddI32: 4, AddI64: 8,
		AddF32: 4, AddF64: 8, And64: 8, Or64: 8, Xor64: 8,
	}
	for ty, w := range want {
		if got := ty.Width(); got != w {
			t.Errorf("%v.Width() = %d, want %d", ty, got, w)
		}
	}
}

func TestCommutativity(t *testing.T) {
	for _, ty := range updateTypes {
		ty := ty
		f := func(a, b uint64) bool {
			return Apply(ty, a, b) == Apply(ty, b, a)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v not commutative: %v", ty, err)
		}
	}
}

func TestAssociativityExact(t *testing.T) {
	for _, ty := range exactTypes {
		ty := ty
		f := func(a, b, c uint64) bool {
			return Apply(ty, Apply(ty, a, b), c) == Apply(ty, a, Apply(ty, b, c))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v not associative: %v", ty, err)
		}
	}
}

// TestIdentityExact: applying the identity leaves any word's bit pattern
// unchanged — the property whole-line identity initialization relies on.
// For FP the identity +0.0 preserves everything except -0.0 lanes (IEEE-754
// canonicalizes -0.0 + +0.0 to +0.0), so FP lanes are tested over
// non-negative-zero values.
func TestIdentityExact(t *testing.T) {
	for _, ty := range exactTypes {
		ty := ty
		id := ty.Identity()
		f := func(a uint64) bool {
			return Apply(ty, id, a) == a && Apply(ty, a, id) == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v identity broken: %v", ty, err)
		}
	}
}

func TestIdentityFP(t *testing.T) {
	f64 := func(x float64) bool {
		if math.Signbit(x) && x == 0 { // skip -0.0
			return true
		}
		a := math.Float64bits(x)
		return Apply(AddF64, AddF64.Identity(), a) == a
	}
	if err := quick.Check(f64, nil); err != nil {
		t.Errorf("AddF64 identity: %v", err)
	}
	f32 := func(x, y float32) bool {
		if (math.Signbit(float64(x)) && x == 0) || (math.Signbit(float64(y)) && y == 0) {
			return true
		}
		a := uint64(math.Float32bits(y))<<32 | uint64(math.Float32bits(x))
		return Apply(AddF32, AddF32.Identity(), a) == a
	}
	if err := quick.Check(f32, nil); err != nil {
		t.Errorf("AddF32 identity: %v", err)
	}
}

func TestApplyReadIsNoop(t *testing.T) {
	if Apply(Read, 123, 456) != 456 {
		t.Fatal("Read must not modify the base value")
	}
}

func TestLaneIsolation16(t *testing.T) {
	// Adding 1 to a lane that holds 0xFFFF must wrap within the lane and
	// not carry into the neighbor.
	a := uint64(0x0000_0000_0000_FFFF)
	got := Apply(AddI16, a, 1)
	if got != 0 {
		t.Fatalf("lane 0 wrap: got %#x, want 0", got)
	}
	// Each lane adds independently.
	x := uint64(0x0001_0002_0003_0004)
	y := uint64(0x0010_0020_0030_0040)
	want := uint64(0x0011_0022_0033_0044)
	if got := Apply(AddI16, x, y); got != want {
		t.Fatalf("lane add: got %#x, want %#x", got, want)
	}
}

func TestLaneIsolation32(t *testing.T) {
	a := uint64(0x0000_0000_FFFF_FFFF)
	if got := Apply(AddI32, a, 1); got != 0 {
		t.Fatalf("lane 0 wrap: got %#x, want 0", got)
	}
	x := uint64(0x0000_0001_0000_0002)
	y := uint64(0x0000_0010_0000_0020)
	want := uint64(0x0000_0011_0000_0022)
	if got := Apply(AddI32, x, y); got != want {
		t.Fatalf("lane add: got %#x, want %#x", got, want)
	}
}

func TestApplyAtSubword(t *testing.T) {
	var w uint64
	w = ApplyAt(AddI16, w, 2, 7) // lane 1
	if w != 7<<16 {
		t.Fatalf("ApplyAt lane1: got %#x", w)
	}
	w = ApplyAt(AddI16, w, 2, 0xFFFF) // wraps lane 1 to 6
	if w != 6<<16 {
		t.Fatalf("ApplyAt wrap: got %#x", w)
	}
	w = ApplyAt(AddI32, 0, 4, 0xDEAD)
	if w != 0xDEAD<<32 {
		t.Fatalf("ApplyAt 32-bit hi lane: got %#x", w)
	}
	w = ApplyAt(AddF32, 0, 0, uint64(math.Float32bits(1.5)))
	if math.Float32frombits(uint32(w)) != 1.5 {
		t.Fatalf("ApplyAt f32: got %v", math.Float32frombits(uint32(w)))
	}
}

func TestApplyAtMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on misaligned update")
		}
	}()
	ApplyAt(AddI32, 0, 2, 1)
}

func TestIdentityLineAndIsIdentity(t *testing.T) {
	for _, ty := range updateTypes {
		l := IdentityLine(ty)
		if !IsIdentityLine(ty, &l) {
			t.Errorf("%v: IdentityLine not recognized as identity", ty)
		}
		l[3] ^= 1 // perturb
		if ty != And64 && IsIdentityLine(ty, &l) {
			t.Errorf("%v: perturbed line still identity", ty)
		}
	}
	// And64's identity is all-ones; perturbing by xor 1 clears a bit.
	l := IdentityLine(And64)
	l[0] = 0
	if IsIdentityLine(And64, &l) {
		t.Error("And64 perturbed line still identity")
	}
}

// TestReduceEqualsDirectApplication is the core COUP correctness property:
// buffering updates in per-cache partial lines initialized to the identity
// and reducing them later must equal applying every update directly,
// regardless of how updates are partitioned across caches.
func TestReduceEqualsDirectApplication(t *testing.T) {
	for _, ty := range exactTypes {
		ty := ty
		f := func(updates []uint64, split uint8, base uint64) bool {
			var direct Line
			for i := range direct {
				direct[i] = base
			}
			nCaches := int(split%4) + 1
			parts := make([]Line, nCaches)
			for i := range parts {
				parts[i] = IdentityLine(ty)
			}
			// Apply each update both directly and into a partial buffer.
			for i, u := range updates {
				w := i % WordsPerLine
				direct[w] = Apply(ty, u, direct[w])
				p := &parts[i%nCaches]
				p[w] = Apply(ty, u, p[w])
			}
			// Full reduction.
			var baseLine Line
			for i := range baseLine {
				baseLine[i] = base
			}
			ptrs := make([]*Line, nCaches)
			for i := range parts {
				ptrs[i] = &parts[i]
			}
			got := ReduceAll(ty, baseLine, ptrs...)
			return got == direct
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: reduce != direct: %v", ty, err)
		}
	}
}

// TestReduceOrderIrrelevant: full reductions may gather partial updates in
// any order (hierarchical vs flat, Sec 3.2) and produce the same value.
func TestReduceOrderIrrelevant(t *testing.T) {
	for _, ty := range exactTypes {
		ty := ty
		f := func(a, b, c, base uint64) bool {
			la, lb, lc := IdentityLine(ty), IdentityLine(ty), IdentityLine(ty)
			la[0], lb[0], lc[0] = a, b, c
			var bl Line
			bl[0] = base
			r1 := ReduceAll(ty, bl, &la, &lb, &lc)
			r2 := ReduceAll(ty, bl, &lc, &la, &lb)
			// Hierarchical: reduce (a,b) into an intermediate first.
			mid := IdentityLine(ty)
			Reduce(ty, &mid, &la)
			Reduce(ty, &mid, &lb)
			r3 := ReduceAll(ty, bl, &mid, &lc)
			return r1 == r2 && r1 == r3
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: order matters: %v", ty, err)
		}
	}
}

func TestReduceIdentitySkippable(t *testing.T) {
	for _, ty := range updateTypes {
		base := Line{1, 2, 3, 4, 5, 6, 7, 8}
		if ty == AddF32 || ty == AddF64 {
			// use valid FP patterns
			for i := range base {
				base[i] = math.Float64bits(float64(i + 1))
			}
		}
		id := IdentityLine(ty)
		got := base
		Reduce(ty, &got, &id)
		if got != base {
			t.Errorf("%v: reducing identity line changed base: %v -> %v", ty, base, got)
		}
	}
}

func BenchmarkApplyAddI64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc = Apply(AddI64, acc, uint64(i))
	}
	_ = acc
}

func BenchmarkReduceLine(b *testing.B) {
	base := Line{}
	p := IdentityLine(AddI64)
	p[3] = 42
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reduce(AddI64, &base, &p)
	}
}
