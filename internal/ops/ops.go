// Package ops defines the commutative-update operations COUP supports.
//
// Formally, COUP applies to any commutative semigroup (G, ∘); supporting
// multi-word cache blocks additionally requires an identity element, i.e. a
// commutative monoid (paper, Sec 3.2). This package implements the eight
// operation/data-type combinations evaluated in the paper (Sec 5.1):
//
//   - addition of 16-, 32- and 64-bit integers,
//   - addition of 32- and 64-bit floating-point values,
//   - AND, OR and XOR bitwise logical operations on 64-bit words,
//
// plus Read, the degenerate "commutative operation" used by the generalized
// non-exclusive state N (Sec 3.4), under which reads are just another
// operation type.
//
// All operations are expressed over raw 64-bit memory words so that cache
// lines can be treated uniformly as [8]uint64 regardless of the data type
// stored in them. Applying an operation to a word holding the identity
// element reproduces the operand's bit pattern exactly, which is the
// property that lets COUP initialize whole lines to the identity element on
// a transition into U even when the line holds words of other types.
package ops

import (
	"fmt"
	"math"
)

// Type identifies a commutative-update operation type. The directory and
// private caches track, for each line in the non-exclusive state, the single
// Type all current sharers operate under; requests of a different Type force
// a full reduction and a type switch (Sec 3.2).
type Type uint8

// The supported non-exclusive operation types. Read is the read-only type;
// the rest are the eight commutative-update types from the paper. The
// paper's implementation encodes these in four bits per directory line
// (read-only or one of eight commutative-update types); NumTypes fits that
// budget.
const (
	Read Type = iota
	AddI16
	AddI32
	AddI64
	AddF32
	AddF64
	And64
	Or64
	Xor64

	NumTypes = 9 // including Read
)

// NumUpdateTypes is the number of commutative-update types (excluding Read).
const NumUpdateTypes = int(NumTypes) - 1

// UpdateTypes returns the commutative-update taxonomy (every defined type
// except Read) in declaration order. It is the shared op table consumed by
// layers built on top of the simulator — pkg/commute derives its built-in
// software operations from it — so adding a type here surfaces it
// everywhere at once.
func UpdateTypes() []Type {
	ts := make([]Type, 0, NumUpdateTypes)
	for t := Type(0); t < NumTypes; t++ {
		if t.IsUpdate() {
			ts = append(ts, t)
		}
	}
	return ts
}

// String returns the mnemonic used in tables and traces.
func (t Type) String() string {
	switch t {
	case Read:
		return "read"
	case AddI16:
		return "add16"
	case AddI32:
		return "add32"
	case AddI64:
		return "add64"
	case AddF32:
		return "addf32"
	case AddF64:
		return "addf64"
	case And64:
		return "and64"
	case Or64:
		return "or64"
	case Xor64:
		return "xor64"
	}
	return fmt.Sprintf("optype(%d)", uint8(t))
}

// IsUpdate reports whether t is a commutative-update type (anything but
// Read).
func (t Type) IsUpdate() bool { return t != Read }

// Valid reports whether t is one of the defined operation types.
func (t Type) Valid() bool { return t < NumTypes }

// Width returns the operand width in bytes for t. Read has no operand and
// returns 0.
func (t Type) Width() int {
	switch t {
	case AddI16:
		return 2
	case AddI32, AddF32:
		return 4
	case AddI64, AddF64, And64, Or64, Xor64:
		return 8
	}
	return 0
}

// Identity returns the identity element of t as a 64-bit word pattern:
// applying t with this operand to any word leaves the word unchanged, and
// applying t with any operand to this word reproduces the operand.
//
// For the sub-word types (AddI16, AddI32, AddF32) the identity word packs
// the per-element identity into every lane, so a full 64-bit word of a line
// initialized with Identity is simultaneously the identity for every lane.
func (t Type) Identity() uint64 {
	switch t {
	case AddI16, AddI32, AddI64, Or64, Xor64:
		return 0
	case AddF32:
		// +0.0 in both 32-bit lanes. x + (+0.0) == x for every float32
		// except it canonicalizes -0.0 to +0.0; see monoid notes below.
		return 0
	case AddF64:
		return 0
	case And64:
		return ^uint64(0)
	case Read:
		return 0
	}
	return 0
}

// Apply combines two 64-bit word values under operation type t, treating
// each word as the packed lanes appropriate for t's width. Apply is
// commutative and associative for every t (for the FP types, associativity
// holds up to rounding; the paper explicitly supports FP addition despite
// non-associativity because common parallel reductions are already
// non-deterministic, Sec 4.1).
//
// Apply(Read, a, b) returns b unchanged: reads contribute no update.
func Apply(t Type, a, b uint64) uint64 {
	switch t {
	case Read:
		return b
	case AddI16:
		return addLanes16(a, b)
	case AddI32:
		return addLanes32(a, b)
	case AddI64:
		return a + b
	case AddF32:
		return addLanesF32(a, b)
	case AddF64:
		return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
	case And64:
		return a & b
	case Or64:
		return a | b
	case Xor64:
		return a ^ b
	}
	panic(fmt.Sprintf("ops: Apply on invalid type %d", uint8(t)))
}

// addLanes16 adds four independent 16-bit lanes without carry between lanes.
func addLanes16(a, b uint64) uint64 {
	const mask = 0xFFFF
	var r uint64
	for i := 0; i < 4; i++ {
		sh := uint(i * 16)
		r |= (((a >> sh) + (b >> sh)) & mask) << sh
	}
	return r
}

// addLanes32 adds two independent 32-bit lanes without carry between lanes.
func addLanes32(a, b uint64) uint64 {
	const mask = 0xFFFFFFFF
	lo := ((a & mask) + (b & mask)) & mask
	hi := (((a >> 32) + (b >> 32)) & mask) << 32
	return hi | lo
}

// addLanesF32 adds two independent float32 lanes.
func addLanesF32(a, b uint64) uint64 {
	lo := math.Float32bits(math.Float32frombits(uint32(a)) + math.Float32frombits(uint32(b)))
	hi := math.Float32bits(math.Float32frombits(uint32(a>>32)) + math.Float32frombits(uint32(b>>32)))
	return uint64(hi)<<32 | uint64(lo)
}

// ApplyAt applies operand v of type t to the wordIdx-th word of the line,
// at the byte offset off within that word. Sub-word operands (16- and
// 32-bit adds) only disturb their own lane; 64-bit operands require off==0.
// It returns the new word value.
//
// This models the core-side update path: the core atomically reads the word
// from its cache, modifies it, and stores the result (Sec 3.1.2).
func ApplyAt(t Type, word uint64, off uint, v uint64) uint64 {
	w := t.Width()
	if w == 0 {
		return word
	}
	// Width is always a power of two here (2, 4 or 8), so alignment is a
	// mask test — this sits on the simulator's hottest per-update path.
	if off&uint(w-1) != 0 || int(off)+w > 8 {
		panic(fmt.Sprintf("ops: misaligned %s update at offset %d", t, off))
	}
	sh := off * 8
	switch w {
	case 2:
		lane := (word >> sh) & 0xFFFF
		lane = (lane + v) & 0xFFFF
		return word&^(uint64(0xFFFF)<<sh) | lane<<sh
	case 4:
		lane := (word >> sh) & 0xFFFFFFFF
		switch t {
		case AddI32:
			lane = (lane + v) & 0xFFFFFFFF
		case AddF32:
			lane = uint64(math.Float32bits(math.Float32frombits(uint32(lane)) + math.Float32frombits(uint32(v))))
		}
		return word&^(uint64(0xFFFFFFFF)<<sh) | lane<<sh
	default:
		return Apply(t, word, v)
	}
}

// WordsPerLine is the number of 64-bit words per 64-byte cache line.
const WordsPerLine = 8

// LineBytes is the cache line size used throughout (Table 1: 64 B lines).
const LineBytes = 64

// Line is the raw contents of one cache line as eight 64-bit words.
type Line [WordsPerLine]uint64

// IdentityLine returns a line with every word initialized to t's identity
// element. Lines transitioning into U are always initialized this way, even
// if they held valid data, which avoids tracking which cache holds the
// original copy (Sec 3.1.2).
func IdentityLine(t Type) Line {
	var l Line
	id := t.Identity()
	for i := range l {
		l[i] = id
	}
	return l
}

// Reduce folds the partial-update line p into the base line dst under
// operation type t, element-wise across every word. Words of p that still
// hold the identity element leave the corresponding dst word bit-identical,
// which is why whole-line reductions are safe even for words holding
// unrelated data (Sec 3.2, "larger cache blocks").
func Reduce(t Type, dst *Line, p *Line) {
	for i := range dst {
		dst[i] = Apply(t, p[i], dst[i])
	}
}

// ReduceAll folds any number of partial-update lines into base and returns
// the result. It is what a reduction unit computes on a full reduction.
func ReduceAll(t Type, base Line, parts ...*Line) Line {
	for _, p := range parts {
		Reduce(t, &base, p)
	}
	return base
}

// IsIdentityLine reports whether every word of l equals t's identity
// element. Reduction units may skip such lines.
func IsIdentityLine(t Type, l *Line) bool {
	id := t.Identity()
	for _, w := range l {
		if w != id {
			return false
		}
	}
	return true
}
