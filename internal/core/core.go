// Package core implements the paper's primary contribution — the COUP
// coherence-protocol extension — as stable-state protocol tables: the
// baselines MSI and MESI, and their COUP extensions MUSI and MEUSI
// (paper Figs. 4 and 6).
//
// A protocol here is the private-cache (L1/L2) stable-state transition
// function: given the current state of a line and a request — issued either
// by the cache's own core (gaining permissions) or by the directory on
// behalf of another cache (losing permissions) — it yields the next stable
// state and the set of protocol actions required (fetch, invalidate others,
// write back, reduce, ...). Transient states and message-level races live in
// internal/proto; the timing simulator in internal/sim executes transactions
// atomically against these stable tables, which is the standard abstraction
// for execution-driven microarchitectural simulation.
//
// COUP's key addition is the update-only state U: multiple caches may hold
// U simultaneously for the same line under a single commutative-update
// operation type, buffering partial updates locally. The generalized
// formulation (Sec 3.4) unifies S and U into one non-exclusive state N
// tagged with an operation type, under which a read is simply the
// non-exclusive operation of type ops.Read.
package core

import (
	"fmt"

	"repro/internal/ops"
)

// State is a stable coherence state of a line in a private cache.
type State uint8

const (
	// I: invalid — no permissions.
	I State = iota
	// S: shared, read-only. Multiple caches may hold S. In the generalized
	// formulation S is N with operation type ops.Read.
	S
	// U: update-only under some commutative operation type. Multiple caches
	// may hold U for the same line and the same type; each holds a partial
	// update initialized to the identity element. U cannot satisfy reads.
	U
	// E: exclusive clean — sole copy, read permission, may silently upgrade
	// to M on a write or commutative update (MESI/MEUSI only).
	E
	// M: modified — sole copy, full read/write/update permission.
	M

	numStates
)

func (s State) String() string {
	switch s {
	case I:
		return "I"
	case S:
		return "S"
	case U:
		return "U"
	case E:
		return "E"
	case M:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether s is a defined stable state.
func (s State) Valid() bool { return s < numStates }

// CanRead reports whether a line in s can satisfy a read locally.
func (s State) CanRead() bool { return s == S || s == E || s == M }

// CanWrite reports whether a line in s can satisfy a store locally.
func (s State) CanWrite() bool { return s == M }

// CanUpdate reports whether a line in s can satisfy a commutative update of
// the type the line currently tracks. M and E hold the actual data and can
// apply updates in place; U holds a partial update of the tracked type.
// (E applies the update after a silent E→M upgrade.)
func (s State) CanUpdate() bool { return s == U || s == E || s == M }

// Exclusive reports whether s implies no other cache holds a valid copy.
func (s State) Exclusive() bool { return s == E || s == M }

// Req is the kind of request presented to the protocol.
type Req uint8

const (
	// ReqR: read (load) from the local core.
	ReqR Req = iota
	// ReqW: write (store, or atomic read-modify-write) from the local core.
	ReqW
	// ReqC: commutative update from the local core; carries an ops.Type.
	ReqC
	// ReqInvOther: directory demands the line because another cache needs
	// exclusive or conflicting permission — invalidate (S), or invalidate
	// with partial-update reply (U), or invalidate with data writeback (M/E).
	ReqInvOther
	// ReqDownS: directory downgrades M/E to S because another cache issued a
	// read (the owner writes data back and keeps a read-only copy).
	ReqDownS
	// ReqDownU: directory downgrades M/E to U because another cache issued a
	// commutative update (Fig 5b: the owner writes its value back and
	// restarts with an identity-element buffer).
	ReqDownU
	// ReqEvict: the cache evicts the line to make room (self-eviction).
	ReqEvict

	numReqs
)

func (r Req) String() string {
	switch r {
	case ReqR:
		return "R"
	case ReqW:
		return "W"
	case ReqC:
		return "C"
	case ReqInvOther:
		return "Inv"
	case ReqDownS:
		return "DownS"
	case ReqDownU:
		return "DownU"
	case ReqEvict:
		return "Evict"
	}
	return fmt.Sprintf("Req(%d)", uint8(r))
}

// OwnRequest reports whether r is initiated by the cache's own core
// (gaining permissions) rather than by the directory or a capacity eviction.
func (r Req) OwnRequest() bool { return r == ReqR || r == ReqW || r == ReqC }

// Action describes the protocol work a transition requires, beyond the
// state change itself. Actions determine traffic and latency in the timing
// simulator.
type Action uint16

const (
	// ActFetch: request data/permission from the directory (a miss).
	ActFetch Action = 1 << iota
	// ActUpgrade: request permission only; the cache already holds data
	// whose value remains usable (S→M upgrade). COUP's I/S→U transitions
	// are ActFetch-class: the buffer restarts at the identity element and
	// no data reply is needed, but the directory must still be consulted.
	ActUpgrade
	// ActInvOthers: the directory must invalidate all other sharers
	// (read-only copies) before granting.
	ActInvOthers
	// ActReduceOthers: the directory must gather and reduce all other
	// update-only copies (a full reduction) before granting.
	ActReduceOthers
	// ActDowngradeOwner: the directory must downgrade a remote M/E owner
	// (fetch its data) before granting.
	ActDowngradeOwner
	// ActWBData: this cache sends its full data value to the directory
	// (dirty writeback on eviction/invalidation/downgrade from M).
	ActWBData
	// ActWBPartial: this cache sends its partial update to the directory,
	// where a reduction unit folds it into the shared copy (partial
	// reduction, Fig 5c).
	ActWBPartial
	// ActInitIdentity: the line's local contents restart at the identity
	// element of the request's operation type (entering U, Sec 3.1.2).
	ActInitIdentity
	// ActTypeSwitch: the line's non-exclusive operation type changes, which
	// requires a full reduction/invalidation of all current sharers first
	// (Sec 3.2, "multiple operations"; transient state NN in Fig 7b).
	ActTypeSwitch
)

// Has reports whether a contains every action in mask.
func (a Action) Has(mask Action) bool { return a&mask == mask }

func (a Action) String() string {
	names := []struct {
		bit Action
		s   string
	}{
		{ActFetch, "Fetch"}, {ActUpgrade, "Upgrade"}, {ActInvOthers, "InvOthers"},
		{ActReduceOthers, "ReduceOthers"}, {ActDowngradeOwner, "DowngradeOwner"},
		{ActWBData, "WBData"}, {ActWBPartial, "WBPartial"},
		{ActInitIdentity, "InitIdentity"}, {ActTypeSwitch, "TypeSwitch"},
	}
	out := ""
	for _, n := range names {
		if a.Has(n.bit) {
			if out != "" {
				out += "+"
			}
			out += n.s
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// Kind selects one of the four protocols.
type Kind uint8

const (
	MSI Kind = iota
	MESI
	MUSI
	MEUSI
)

func (k Kind) String() string {
	switch k {
	case MSI:
		return "MSI"
	case MESI:
		return "MESI"
	case MUSI:
		return "MUSI"
	case MEUSI:
		return "MEUSI"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// HasE reports whether the protocol includes the exclusive-clean E state.
func (k Kind) HasE() bool { return k == MESI || k == MEUSI }

// HasU reports whether the protocol includes COUP's update-only U state.
func (k Kind) HasU() bool { return k == MUSI || k == MEUSI }

// LineCtx is the directory-visible context of the transition: whether any
// other cache holds a valid copy, and if the line is currently non-exclusive,
// under which operation type.
type LineCtx struct {
	// OthersHaveCopy: at least one other private cache holds the line in a
	// valid state (S/U/E/M). Determines E vs S (and M vs U) grants.
	OthersHaveCopy bool
	// OtherOwner: another cache holds the line in M or E.
	OtherOwner bool
	// CurType is the operation type the line's current non-exclusive sharers
	// operate under (ops.Read if they hold read-only copies). Only
	// meaningful when OthersHaveCopy && !OtherOwner.
	CurType ops.Type
}

// Result of a stable-state transition.
type Result struct {
	Next    State
	Actions Action
	// NextType is the non-exclusive operation type the line tracks after the
	// transition (meaningful when Next == S or U): ops.Read for S, the
	// request's update type for U.
	NextType ops.Type
}

// Transition computes the stable-state transition for protocol k, a line in
// state s whose current non-exclusive type is curType (ops.Read when s==S;
// the update type when s==U; ignored for I/E/M), receiving request r with
// operation type t (only meaningful for ReqC and ReqDownU), in directory
// context ctx.
//
// It panics on undefined combinations (e.g. ReqC under MSI/MESI — those
// protocols express commutative updates as ReqW read-modify-writes; the
// simulator never issues ReqC to them).
func Transition(k Kind, s State, curType ops.Type, r Req, t ops.Type, ctx LineCtx) Result {
	if !k.HasU() && (r == ReqC || r == ReqDownU) {
		panic(fmt.Sprintf("coherence: %v does not support %v", k, r))
	}
	switch r {
	case ReqR:
		return transitionRead(k, s, curType, ctx)
	case ReqW:
		return transitionWrite(k, s, curType, ctx)
	case ReqC:
		return transitionUpdate(k, s, curType, t, ctx)
	case ReqInvOther:
		return transitionInv(s)
	case ReqDownS:
		return transitionDownS(s)
	case ReqDownU:
		return transitionDownU(s, t)
	case ReqEvict:
		return transitionEvict(s)
	}
	panic(fmt.Sprintf("coherence: unknown request %v", r))
}

func grantReadState(k Kind, ctx LineCtx) (State, Action) {
	// MESI/MEUSI grant E when no other cache has a valid copy (Fig 6).
	if k.HasE() && !ctx.OthersHaveCopy {
		return E, 0
	}
	return S, 0
}

func transitionRead(k Kind, s State, curType ops.Type, ctx LineCtx) Result {
	switch s {
	case S, E, M:
		// Hit; no transition (diagrams omit actions that cause none).
		return Result{Next: s, NextType: ops.Read}
	case U:
		// A read from the local core while holding update-only permission:
		// the partial update cannot satisfy it. A full reduction of all
		// update-only copies (including this one) produces the value; the
		// line switches to the read-only type. This is the U→S arc in Fig 4
		// (request R in U) — a type switch in the generalized formulation.
		next, act := grantReadState(k, LineCtx{OthersHaveCopy: ctx.OthersHaveCopy})
		return Result{
			Next:     next,
			Actions:  ActFetch | ActWBPartial | ActReduceOthers | ActTypeSwitch | act,
			NextType: ops.Read,
		}
	case I:
		act := ActFetch
		if ctx.OtherOwner {
			act |= ActDowngradeOwner
		} else if ctx.OthersHaveCopy && curTypeIsUpdate(ctx) {
			// Other caches hold U copies: reading forces a full reduction
			// (Fig 5d) and a type switch to read-only.
			act |= ActReduceOthers | ActTypeSwitch
		}
		next, gact := grantReadState(k, ctx)
		return Result{Next: next, Actions: act | gact, NextType: ops.Read}
	}
	panic(fmt.Sprintf("coherence: read in invalid state %v", s))
}

func curTypeIsUpdate(ctx LineCtx) bool { return ctx.CurType.IsUpdate() }

func transitionWrite(k Kind, s State, curType ops.Type, ctx LineCtx) Result {
	switch s {
	case M:
		return Result{Next: M}
	case E:
		// Silent upgrade.
		return Result{Next: M}
	case S:
		// Upgrade: invalidate all other read-only sharers.
		act := ActUpgrade
		if ctx.OthersHaveCopy {
			act |= ActInvOthers
		}
		return Result{Next: M, Actions: act}
	case U:
		// Writing while update-only: full reduction of every copy (ours
		// included) must complete before the write, then exclusive grant.
		return Result{
			Next:    M,
			Actions: ActFetch | ActWBPartial | ActReduceOthers | ActTypeSwitch,
		}
	case I:
		act := ActFetch
		if ctx.OtherOwner {
			act |= ActDowngradeOwner | ActInvOthers
		} else if ctx.OthersHaveCopy {
			if curTypeIsUpdate(ctx) {
				act |= ActReduceOthers | ActTypeSwitch
			} else {
				act |= ActInvOthers
			}
		}
		return Result{Next: M, Actions: act}
	}
	panic(fmt.Sprintf("coherence: write in invalid state %v", s))
}

func transitionUpdate(k Kind, s State, curType ops.Type, t ops.Type, ctx LineCtx) Result {
	if !t.IsUpdate() {
		panic("coherence: ReqC with non-update type")
	}
	switch s {
	case M:
		// M satisfies commutative updates in place: interleaved private
		// updates and reads stay as cheap as in MESI (Sec 3.1.1).
		return Result{Next: M}
	case E:
		// Fig 6: commutative updates cause a silent E→M transition.
		return Result{Next: M}
	case U:
		if curType == t {
			// Hit: apply to the local partial buffer.
			return Result{Next: U, NextType: t}
		}
		// Different update type: serialize via full reduction, then re-enter
		// U under the new type (NN transient in the detailed protocol).
		return Result{
			Next:     U,
			Actions:  ActFetch | ActWBPartial | ActReduceOthers | ActTypeSwitch | ActInitIdentity,
			NextType: t,
		}
	case S:
		// Fig 4: C request in S mirrors R request in U. Our read-only copy
		// is dropped; we acquire update-only permission. If no other cache
		// has a copy, MEUSI grants M directly (Fig 6).
		if k.HasE() && !ctx.OthersHaveCopy {
			return Result{Next: M, Actions: ActUpgrade}
		}
		act := ActFetch | ActInitIdentity
		if ctx.OthersHaveCopy && !curTypeIsUpdate(ctx) {
			act |= ActInvOthers | ActTypeSwitch
		}
		return Result{Next: U, Actions: act, NextType: t}
	case I:
		// MEUSI: update request on an unshared line is granted in M, the
		// same optimization E provides for reads (Fig 6).
		if k.HasE() && !ctx.OthersHaveCopy {
			return Result{Next: M, Actions: ActFetch}
		}
		act := ActFetch | ActInitIdentity
		if ctx.OtherOwner {
			// Downgrade the remote owner M→U (Fig 5b).
			act |= ActDowngradeOwner
		} else if ctx.OthersHaveCopy {
			if !curTypeIsUpdate(ctx) {
				// Invalidate read-only copies (Fig 5a).
				act |= ActInvOthers | ActTypeSwitch
			} else if ctx.CurType != t {
				act |= ActReduceOthers | ActTypeSwitch
			}
		}
		return Result{Next: U, Actions: act, NextType: t}
	}
	panic(fmt.Sprintf("coherence: update in invalid state %v", s))
}

func transitionInv(s State) Result {
	switch s {
	case I:
		return Result{Next: I}
	case S:
		return Result{Next: I}
	case U:
		// Invalidation of an update-only copy carries the partial update
		// back to the reduction unit.
		return Result{Next: I, Actions: ActWBPartial}
	case E:
		return Result{Next: I} // clean: no data needed (dir has it)
	case M:
		return Result{Next: I, Actions: ActWBData}
	}
	panic("unreachable")
}

func transitionDownS(s State) Result {
	switch s {
	case M:
		return Result{Next: S, Actions: ActWBData}
	case E:
		return Result{Next: S}
	case S:
		return Result{Next: S}
	}
	panic(fmt.Sprintf("coherence: DownS in state %v", s))
}

func transitionDownU(s State, t ops.Type) Result {
	switch s {
	case M:
		// Fig 5b: writeback the value, restart the local buffer at identity.
		return Result{Next: U, Actions: ActWBData | ActInitIdentity, NextType: t}
	case E:
		return Result{Next: U, Actions: ActInitIdentity, NextType: t}
	case U:
		return Result{Next: U, NextType: t}
	}
	panic(fmt.Sprintf("coherence: DownU in state %v", s))
}

func transitionEvict(s State) Result {
	switch s {
	case I:
		return Result{Next: I}
	case S:
		return Result{Next: I} // Table 1: no silent drops — notify dir
	case E:
		return Result{Next: I}
	case U:
		// Partial reduction at the shared cache (Fig 5c).
		return Result{Next: I, Actions: ActWBPartial}
	case M:
		return Result{Next: I, Actions: ActWBData}
	}
	panic("unreachable")
}

// States returns the stable states protocol k uses, in a canonical order.
func (k Kind) States() []State {
	switch k {
	case MSI:
		return []State{I, S, M}
	case MESI:
		return []State{I, S, E, M}
	case MUSI:
		return []State{I, S, U, M}
	case MEUSI:
		return []State{I, S, U, E, M}
	}
	return nil
}
