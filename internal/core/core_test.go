package core

import (
	"testing"
	"testing/quick"

	"repro/internal/ops"
)

func TestStateStringsAndPredicates(t *testing.T) {
	for _, s := range []State{I, S, U, E, M} {
		if !s.Valid() {
			t.Fatalf("%v invalid", s)
		}
		if s.String() == "" {
			t.Fatalf("empty name for %v", s)
		}
	}
	if !M.CanRead() || !M.CanWrite() || !M.CanUpdate() {
		t.Error("M must satisfy all request kinds")
	}
	if !E.CanRead() || E.CanWrite() || !E.CanUpdate() {
		t.Error("E: read+update (silent upgrade), not write without upgrade")
	}
	if !S.CanRead() || S.CanWrite() || S.CanUpdate() {
		t.Error("S: read-only")
	}
	if U.CanRead() || U.CanWrite() || !U.CanUpdate() {
		t.Error("U: update-only; caches with U cannot satisfy reads")
	}
	if I.CanRead() || I.CanWrite() || I.CanUpdate() {
		t.Error("I: nothing")
	}
	if !M.Exclusive() || !E.Exclusive() || S.Exclusive() || U.Exclusive() {
		t.Error("exclusivity predicate wrong")
	}
}

func TestKindPredicates(t *testing.T) {
	if MSI.HasE() || MSI.HasU() || MESI.HasU() || !MESI.HasE() {
		t.Error("baseline kind predicates wrong")
	}
	if !MUSI.HasU() || MUSI.HasE() || !MEUSI.HasU() || !MEUSI.HasE() {
		t.Error("COUP kind predicates wrong")
	}
	wantStates := map[Kind]int{MSI: 3, MESI: 4, MUSI: 4, MEUSI: 5}
	for k, n := range wantStates {
		if got := len(k.States()); got != n {
			t.Errorf("%v: %d states, want %d", k, got, n)
		}
	}
}

// TestMESIBasics checks the canonical MESI arcs.
func TestMESIBasics(t *testing.T) {
	// Read miss, line unshared: grant E.
	r := Transition(MESI, I, ops.Read, ReqR, ops.Read, LineCtx{})
	if r.Next != E || !r.Actions.Has(ActFetch) {
		t.Errorf("I+R unshared: got %v/%v, want E/Fetch", r.Next, r.Actions)
	}
	// Read miss, line shared elsewhere: grant S.
	r = Transition(MESI, I, ops.Read, ReqR, ops.Read, LineCtx{OthersHaveCopy: true})
	if r.Next != S {
		t.Errorf("I+R shared: got %v, want S", r.Next)
	}
	// Read miss with remote owner: downgrade the owner.
	r = Transition(MESI, I, ops.Read, ReqR, ops.Read, LineCtx{OthersHaveCopy: true, OtherOwner: true})
	if r.Next != S || !r.Actions.Has(ActDowngradeOwner) {
		t.Errorf("I+R owned: got %v/%v", r.Next, r.Actions)
	}
	// Write in S: upgrade, invalidate others.
	r = Transition(MESI, S, ops.Read, ReqW, ops.Read, LineCtx{OthersHaveCopy: true})
	if r.Next != M || !r.Actions.Has(ActUpgrade|ActInvOthers) {
		t.Errorf("S+W: got %v/%v", r.Next, r.Actions)
	}
	// Silent E->M.
	r = Transition(MESI, E, ops.Read, ReqW, ops.Read, LineCtx{})
	if r.Next != M || r.Actions != 0 {
		t.Errorf("E+W: got %v/%v, want M/none (silent)", r.Next, r.Actions)
	}
	// MSI never grants E.
	r = Transition(MSI, I, ops.Read, ReqR, ops.Read, LineCtx{})
	if r.Next != S {
		t.Errorf("MSI I+R: got %v, want S", r.Next)
	}
}

// TestMEUSIUpdatePaths checks the U-state arcs from Figs. 4–6.
func TestMEUSIUpdatePaths(t *testing.T) {
	// Fig 6: update request on an unshared line is granted M directly.
	r := Transition(MEUSI, I, ops.Read, ReqC, ops.AddI32, LineCtx{})
	if r.Next != M {
		t.Errorf("MEUSI I+C unshared: got %v, want M", r.Next)
	}
	// MUSI (no E): same request enters U.
	r = Transition(MUSI, I, ops.Read, ReqC, ops.AddI32, LineCtx{})
	if r.Next != U || !r.Actions.Has(ActInitIdentity) || r.NextType != ops.AddI32 {
		t.Errorf("MUSI I+C: got %v/%v/%v", r.Next, r.Actions, r.NextType)
	}
	// Fig 5a: upgrade to U with other updaters present, same type: join them.
	r = Transition(MEUSI, I, ops.Read, ReqC, ops.AddI32,
		LineCtx{OthersHaveCopy: true, CurType: ops.AddI32})
	if r.Next != U || !r.Actions.Has(ActInitIdentity) || r.Actions.Has(ActReduceOthers) {
		t.Errorf("I+C join: got %v/%v", r.Next, r.Actions)
	}
	// Fig 5b: remote M owner downgraded to U.
	r = Transition(MEUSI, I, ops.Read, ReqC, ops.AddI32,
		LineCtx{OthersHaveCopy: true, OtherOwner: true})
	if r.Next != U || !r.Actions.Has(ActDowngradeOwner) {
		t.Errorf("I+C owned: got %v/%v", r.Next, r.Actions)
	}
	// The owner side of that downgrade: M -> U with writeback + identity.
	r = Transition(MEUSI, M, ops.Read, ReqDownU, ops.AddI32, LineCtx{})
	if r.Next != U || !r.Actions.Has(ActWBData|ActInitIdentity) || r.NextType != ops.AddI32 {
		t.Errorf("M+DownU: got %v/%v", r.Next, r.Actions)
	}
	// Fig 5d: read while others hold U: full reduction.
	r = Transition(MEUSI, I, ops.Read, ReqR, ops.Read,
		LineCtx{OthersHaveCopy: true, CurType: ops.AddI32})
	if r.Next != S || !r.Actions.Has(ActReduceOthers|ActTypeSwitch) {
		t.Errorf("I+R vs updaters: got %v/%v", r.Next, r.Actions)
	}
	// Update hit in U (same type): no actions.
	r = Transition(MEUSI, U, ops.AddI32, ReqC, ops.AddI32, LineCtx{OthersHaveCopy: true, CurType: ops.AddI32})
	if r.Next != U || r.Actions != 0 {
		t.Errorf("U+C same type: got %v/%v, want U/none", r.Next, r.Actions)
	}
	// Update in U with a different type: full reduction + type switch.
	r = Transition(MEUSI, U, ops.AddI32, ReqC, ops.Or64, LineCtx{OthersHaveCopy: true, CurType: ops.AddI32})
	if r.Next != U || !r.Actions.Has(ActReduceOthers|ActTypeSwitch) || r.NextType != ops.Or64 {
		t.Errorf("U+C diff type: got %v/%v/%v", r.Next, r.Actions, r.NextType)
	}
	// M satisfies commutative updates in place (Sec 3.1.1).
	r = Transition(MEUSI, M, ops.Read, ReqC, ops.AddF64, LineCtx{})
	if r.Next != M || r.Actions != 0 {
		t.Errorf("M+C: got %v/%v, want M/none", r.Next, r.Actions)
	}
	// Fig 6: E + C silently upgrades to M.
	r = Transition(MEUSI, E, ops.Read, ReqC, ops.AddF64, LineCtx{})
	if r.Next != M || r.Actions != 0 {
		t.Errorf("E+C: got %v/%v, want M/none", r.Next, r.Actions)
	}
	// Eviction from U: partial reduction (Fig 5c).
	r = Transition(MEUSI, U, ops.AddI32, ReqEvict, ops.Read, LineCtx{})
	if r.Next != I || !r.Actions.Has(ActWBPartial) {
		t.Errorf("U+Evict: got %v/%v", r.Next, r.Actions)
	}
	// Invalidation of U copy: partial update travels with the ack.
	r = Transition(MEUSI, U, ops.AddI32, ReqInvOther, ops.Read, LineCtx{})
	if r.Next != I || !r.Actions.Has(ActWBPartial) {
		t.Errorf("U+Inv: got %v/%v", r.Next, r.Actions)
	}
	// Write while in U: reduction then M.
	r = Transition(MEUSI, U, ops.AddI32, ReqW, ops.Read, LineCtx{OthersHaveCopy: true, CurType: ops.AddI32})
	if r.Next != M || !r.Actions.Has(ActReduceOthers|ActWBPartial) {
		t.Errorf("U+W: got %v/%v", r.Next, r.Actions)
	}
	// Read while in U (own core): reduction, then read-only grant.
	r = Transition(MEUSI, U, ops.AddI32, ReqR, ops.Read, LineCtx{})
	if r.Next != E || !r.Actions.Has(ActReduceOthers|ActWBPartial|ActTypeSwitch) {
		t.Errorf("U+R alone: got %v/%v, want E", r.Next, r.Actions)
	}
	r = Transition(MEUSI, U, ops.AddI32, ReqR, ops.Read, LineCtx{OthersHaveCopy: true, CurType: ops.AddI32})
	if r.Next != S {
		t.Errorf("U+R shared: got %v, want S", r.Next)
	}
	// S + C with no other sharers: MEUSI grants M via upgrade.
	r = Transition(MEUSI, S, ops.Read, ReqC, ops.AddI32, LineCtx{})
	if r.Next != M {
		t.Errorf("S+C alone: got %v, want M", r.Next)
	}
	// S + C with other readers: invalidate them, enter U.
	r = Transition(MEUSI, S, ops.Read, ReqC, ops.AddI32, LineCtx{OthersHaveCopy: true, CurType: ops.Read})
	if r.Next != U || !r.Actions.Has(ActInvOthers|ActInitIdentity) {
		t.Errorf("S+C shared: got %v/%v", r.Next, r.Actions)
	}
}

// TestSymmetrySU verifies the S/U symmetry the paper exploits (Sec 3.1.1):
// in MUSI, transitions caused by R/C requests in and out of S match those
// caused by C/R requests in and out of U — reads are just another
// commutative operation type over the generalized non-exclusive state.
func TestSymmetrySU(t *testing.T) {
	const ut = ops.AddI64
	cases := []struct {
		name   string
		a, b   Result
		sameTo func(Result, Result) bool
	}{
		{
			// I --R--> S (others read-only) vs I --C--> U (others same type)
			name: "enter nonexclusive among same-type sharers",
			a:    Transition(MUSI, I, ops.Read, ReqR, ops.Read, LineCtx{OthersHaveCopy: true, CurType: ops.Read}),
			b:    Transition(MUSI, I, ops.Read, ReqC, ut, LineCtx{OthersHaveCopy: true, CurType: ut}),
			sameTo: func(a, b Result) bool {
				return a.Next == S && b.Next == U &&
					!a.Actions.Has(ActInvOthers|ActReduceOthers) &&
					!b.Actions.Has(ActInvOthers|ActReduceOthers)
			},
		},
		{
			// S --C--> U (invalidate readers) vs U --R--> S (reduce updaters)
			name: "type switch across the S/U boundary",
			a:    Transition(MUSI, S, ops.Read, ReqC, ut, LineCtx{OthersHaveCopy: true, CurType: ops.Read}),
			b:    Transition(MUSI, U, ut, ReqR, ops.Read, LineCtx{OthersHaveCopy: true, CurType: ut}),
			sameTo: func(a, b Result) bool {
				// Both must displace the other-type sharers and land in the
				// opposite non-exclusive state.
				return a.Next == U && b.Next == S &&
					a.Actions.Has(ActInvOthers) && b.Actions.Has(ActReduceOthers)
			},
		},
		{
			// M --DownS--> S vs M --DownU--> U: both write the value back.
			name: "owner downgrade mirror",
			a:    Transition(MUSI, M, ops.Read, ReqDownS, ops.Read, LineCtx{}),
			b:    Transition(MUSI, M, ops.Read, ReqDownU, ut, LineCtx{}),
			sameTo: func(a, b Result) bool {
				return a.Next == S && b.Next == U &&
					a.Actions.Has(ActWBData) && b.Actions.Has(ActWBData)
			},
		},
	}
	for _, c := range cases {
		if !c.sameTo(c.a, c.b) {
			t.Errorf("%s: a=%v/%v b=%v/%v", c.name, c.a.Next, c.a.Actions, c.b.Next, c.b.Actions)
		}
	}
}

// TestTransitionsTotal: every (protocol, state, own-request) combination the
// protocol admits must produce a defined result with a valid next state —
// the tables are total over their domains.
func TestTransitionsTotal(t *testing.T) {
	ctxs := []LineCtx{
		{},
		{OthersHaveCopy: true, CurType: ops.Read},
		{OthersHaveCopy: true, CurType: ops.AddI32},
		{OthersHaveCopy: true, OtherOwner: true},
	}
	for _, k := range []Kind{MSI, MESI, MUSI, MEUSI} {
		for _, s := range k.States() {
			for _, r := range []Req{ReqR, ReqW, ReqC, ReqInvOther, ReqEvict} {
				if r == ReqC && !k.HasU() {
					continue
				}
				curType := ops.Read
				if s == U {
					curType = ops.AddI32
				}
				for _, ctx := range ctxs {
					res := Transition(k, s, curType, r, ops.AddI32, ctx)
					if !res.Next.Valid() {
						t.Errorf("%v %v %v: invalid next %v", k, s, r, res.Next)
					}
					if res.Next == U && !k.HasU() {
						t.Errorf("%v produced U", k)
					}
					if res.Next == E && !k.HasE() {
						t.Errorf("%v produced E", k)
					}
				}
			}
		}
	}
}

// TestInvalidationAlwaysInvalidates: ReqInvOther from any valid state ends
// in I, and carries data (M) or a partial update (U) with it.
func TestInvalidationAlwaysInvalidates(t *testing.T) {
	f := func(sRaw uint8) bool {
		s := State(sRaw % uint8(numStates))
		curType := ops.Read
		if s == U {
			curType = ops.Xor64
		}
		res := Transition(MEUSI, s, curType, ReqInvOther, ops.Read, LineCtx{})
		if res.Next != I {
			return false
		}
		if s == M && !res.Actions.Has(ActWBData) {
			return false
		}
		if s == U && !res.Actions.Has(ActWBPartial) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOwnRequestsGainPermission: after an own-core request completes, the
// resulting state can satisfy that same request locally.
func TestOwnRequestsGainPermission(t *testing.T) {
	ctxs := []LineCtx{
		{},
		{OthersHaveCopy: true, CurType: ops.Read},
		{OthersHaveCopy: true, CurType: ops.And64},
		{OthersHaveCopy: true, OtherOwner: true},
	}
	for _, k := range []Kind{MSI, MESI, MUSI, MEUSI} {
		for _, s := range k.States() {
			curType := ops.Read
			if s == U {
				curType = ops.And64
			}
			for _, ctx := range ctxs {
				if r := Transition(k, s, curType, ReqR, ops.Read, ctx); !r.Next.CanRead() {
					t.Errorf("%v %v+R -> %v cannot read", k, s, r.Next)
				}
				if r := Transition(k, s, curType, ReqW, ops.Read, ctx); !r.Next.CanWrite() {
					t.Errorf("%v %v+W -> %v cannot write", k, s, r.Next)
				}
				if k.HasU() {
					if r := Transition(k, s, curType, ReqC, ops.And64, ctx); !r.Next.CanUpdate() {
						t.Errorf("%v %v+C -> %v cannot update", k, s, r.Next)
					}
				}
			}
		}
	}
}

func TestActionString(t *testing.T) {
	a := ActFetch | ActReduceOthers
	if a.String() != "Fetch+ReduceOthers" {
		t.Errorf("got %q", a.String())
	}
	if Action(0).String() != "none" {
		t.Errorf("zero action: %q", Action(0).String())
	}
}

func TestReqStrings(t *testing.T) {
	for _, r := range []Req{ReqR, ReqW, ReqC, ReqInvOther, ReqDownS, ReqDownU, ReqEvict} {
		if r.String() == "" {
			t.Errorf("empty name for req %d", r)
		}
	}
	if !ReqR.OwnRequest() || !ReqC.OwnRequest() || ReqInvOther.OwnRequest() || ReqEvict.OwnRequest() {
		t.Error("OwnRequest classification wrong")
	}
}

func TestPanicsOnUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MESI must reject ReqC")
		}
	}()
	Transition(MESI, I, ops.Read, ReqC, ops.AddI32, LineCtx{})
}
