// Package stats provides the small statistical helpers the evaluation
// uses: means, 95% confidence intervals over repeated seeded runs
// (following Alameldeen & Wood's methodology for multiprocessor
// simulation, Sec 5.1), and text-table formatting for experiment output.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tCrit95 holds two-sided 95% Student-t critical values by degrees of
// freedom (1-based index). Truncating the table early understates the
// interval — the old df-10 cutoff was ~11% narrow at df 11 (t=2.201 vs
// 1.96) — so exact values run through df 30 and larger df use an
// asymptotic correction instead of the bare normal value.
var tCrit95 = []float64{0,
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit returns the two-sided 95% critical value for df degrees of
// freedom: exact through df 30, then 1.96 + 2.42/df, which tracks the
// true value within 0.1% (the bare 1.96 is still 4% narrow at df 31).
func tCrit(df int) float64 {
	if df < len(tCrit95) {
		return tCrit95[df]
	}
	return 1.96 + 2.42/float64(df)
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return tCrit(n-1) * Stddev(xs) / math.Sqrt(float64(n))
}

// Table is a simple experiment-output table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote shown below the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers + rows).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
