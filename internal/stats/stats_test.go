package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean %v, want 5", m)
	}
	if s := Stddev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("stddev %v, want ~2.138", s)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Error("degenerate cases must be 0")
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{5}) != 0 {
		t.Error("single sample has no CI")
	}
	// Two identical samples: zero-width CI.
	if CI95([]float64{3, 3}) != 0 {
		t.Error("equal samples have zero CI")
	}
	ci := CI95([]float64{10, 12, 14})
	if ci <= 0 {
		t.Error("CI must be positive for spread samples")
	}
	// More samples with same spread narrow the interval.
	wide := CI95([]float64{10, 14})
	narrow := CI95([]float64{10, 14, 10, 14, 10, 14, 10, 14, 10, 14, 10, 14})
	if narrow >= wide {
		t.Errorf("CI should narrow with more samples: %v vs %v", narrow, wide)
	}
}

// TestCI95CriticalValues pins the Student-t critical value CI95 applies at
// each sample count: exact table values through df = 30, the asymptotic
// correction beyond. The df 11–30 band is the regression target — the
// old table fell back to 1.96 there, understating the interval by up to ~11%.
func TestCI95CriticalValues(t *testing.T) {
	cases := []struct {
		n int     // sample count (df = n-1)
		t float64 // two-sided 95% critical value
	}{
		{2, 12.706}, {3, 4.303}, {4, 3.182}, {6, 2.571},
		{11, 2.228},
		{12, 2.201}, {13, 2.179}, {16, 2.131}, {21, 2.086},
		{26, 2.060}, {31, 2.042},
		// Beyond the table: 1.96 + 2.42/df, within 0.1% of the exact
		// values (df 40: 2.021, df 60: 2.000, df 120: 1.980).
		{41, 1.96 + 2.42/40}, {61, 1.96 + 2.42/60}, {121, 1.96 + 2.42/120},
	}
	for _, tc := range cases {
		// Alternating ±1 around 10 gives a known nonzero spread at any n.
		xs := make([]float64, tc.n)
		for i := range xs {
			xs[i] = 10 + float64(1-2*(i%2))
		}
		want := tc.t * Stddev(xs) / math.Sqrt(float64(tc.n))
		if got := CI95(xs); math.Abs(got-want) > 1e-12 {
			t.Errorf("CI95 with n=%d (df %d): got %v, want %v (t=%v)", tc.n, tc.n-1, got, want, tc.t)
		}
	}
}

func TestCIMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := float64(a), float64(b)
		ci := CI95([]float64{x, y})
		return ci >= 0 && (x != y) == (ci > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Headers: []string{"a", "longheader"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.AddNote("hello %d", 42)
	s := tb.String()
	for _, want := range []string{"demo", "longheader", "333", "note: hello 42", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,longheader\n1,2\n") {
		t.Errorf("csv wrong: %q", csv)
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234:    "1234",
		42.42:   "42.4",
		1.2345:  "1.23",
		-1234.5: "-1234", // %.0f rounds half to even
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%v) = %q, want %q", v, got, want)
		}
	}
}
