// Package proto implements the detailed, message-level MESI and MEUSI
// coherence protocols of Sec 3.4: L1 controllers and an LLC controller with
// an in-cache directory, communicating over unordered point-to-point
// networks with two virtual networks (requests and responses) and no silent
// drops. Realistic transient states cover the races the paper discusses —
// invalidations overtaking grants (ISI/INI), upgrades raced by conflicting
// requests, writebacks raced by recalls (WBI), and MEUSI's operation-type
// switches (the NN transient, the single state MEUSI adds over MESI at the
// L1).
//
// The protocol is modelled over a single cache line with a small (mod-4)
// value domain, the standard Murphi-style reduction the paper also applies
// ("caches with a single 1-bit line; self-eviction rules model a limited
// capacity"). Commutative updates are increments tagged with one of K
// operation types; MEUSI must serialize updates of different types through
// full reductions, which is exactly the machinery the type tags exercise.
//
// A ghost (specification-level) value tracks every applied write and
// update. Safety is expressed as:
//
//   - exclusivity: at most one authoritative copy (an E/M cache or an
//     ownership-carrying message) exists at any time;
//   - type uniformity: all non-exclusive copies are under one operation
//     type;
//   - conservation: authoritative value plus all outstanding partial
//     updates (in caches and in flight) equals the ghost value;
//   - data-value: every read hit and every read grant returns exactly the
//     ghost value.
//
// internal/check explores this system exhaustively (the Fig 8 experiment);
// the tests in this package additionally stress it with long random walks.
package proto

import "fmt"

// MaxCores bounds the modelled system size (Murphi verified up to 9).
const MaxCores = 10

// Kind selects the protocol family.
type Kind uint8

const (
	// MESI is the baseline two-level protocol (Fig 7a).
	MESI Kind = iota
	// MEUSI is MESI plus COUP's generalized non-exclusive state (Fig 7b).
	MEUSI
)

func (k Kind) String() string {
	if k == MEUSI {
		return "MEUSI"
	}
	return "MESI"
}

// L1State enumerates L1 controller states: 4 stable plus transients.
type L1State uint8

const (
	L1I L1State = iota
	L1N         // non-exclusive: read-only (type 0) or update-only (type>0)
	L1E
	L1M
	L1IN  // I, GetN sent, awaiting grant
	L1IM  // I, GetM sent, awaiting data
	L1NM  // N, GetM sent (upgrade), awaiting data
	L1NN  // N under one type, GetN for another type sent (MEUSI only)
	L1INI // invalidated while IN: consume grant once, ack, die
	L1IMI // invalidated while IM/NM: consume data once, ack with data, die
	L1WB  // writeback/eviction notice sent, awaiting PutAck
	L1WBI // invalidated (or downgraded) while WB
	L1WBW // PutAck received but a stale demand is still in flight; absorb it

	numL1States
)

var l1Names = [numL1States]string{
	"I", "N", "E", "M", "IN", "IM", "NM", "NN", "INI", "IMI", "WB", "WBI", "WBW",
}

func (s L1State) String() string {
	if int(s) < len(l1Names) {
		return l1Names[s]
	}
	return fmt.Sprintf("L1(%d)", uint8(s))
}

// stable reports whether the L1 can issue a new transaction or evict.
func (s L1State) stable() bool { return s == L1I || s == L1N || s == L1E || s == L1M }

// DirState enumerates LLC/directory controller states: 3 stable, 3
// transient (as in the paper's two-level LLC: 6 states).
type DirState uint8

const (
	DirI        DirState = iota // no cached copies; LLC data current
	DirN                        // non-exclusive sharers under one type
	DirX                        // one owner cache in E/M; LLC stale
	DirWaitAcks                 // collecting invalidation acks / partials
	DirWaitDown                 // waiting for an owner downgrade reply
	DirWaitData                 // waiting for an owner invalidation (data) reply

	numDirStates
)

var dirNames = [numDirStates]string{"DI", "DN", "DX", "DWA", "DWD", "DWX"}

func (s DirState) String() string {
	if int(s) < len(dirNames) {
		return dirNames[s]
	}
	return fmt.Sprintf("Dir(%d)", uint8(s))
}

// MsgKind enumerates protocol messages. GetN/GetM/PutN/PutM/PutE travel on
// the request virtual network; the rest on the response network.
type MsgKind uint8

const (
	MGetN    MsgKind = iota // non-exclusive request, typed (read = type 0)
	MGetM                   // exclusive request
	MPutN                   // eviction of a non-exclusive copy (+partial)
	MPutM                   // eviction of M (+data)
	MPutE                   // eviction of clean E
	MInv                    // demand invalidation
	MDownS                  // demand downgrade to read-only
	MDownU                  // demand downgrade to update-only (typed)
	MDataRP                 // data + read permission (Flag: exclusive/E grant)
	MGrantU                 // update-only permission, no data
	MDataM                  // data + M
	MPutAck                 // eviction acknowledged
	MInvAck                 // invalidation ack (Flag: carries data; else may carry partial)
	MDownAck                // downgrade ack (Flag: carries data)

	numMsgKinds
)

var msgNames = [numMsgKinds]string{
	"GetN", "GetM", "PutN", "PutM", "PutE", "Inv", "DownS", "DownU",
	"DataRP", "GrantU", "DataM", "PutAck", "InvAck", "DownAck",
}

func (k MsgKind) String() string {
	if int(k) < len(msgNames) {
		return msgNames[k]
	}
	return fmt.Sprintf("Msg(%d)", uint8(k))
}

// request reports whether the message travels on the request virtual
// network (consumed by the directory only when it is in a stable state).
// Writeback/eviction notices (Put*) travel with the responses: the
// directory must be able to consume them while collecting acks, or a
// sharer that evicted concurrently with an invalidation would deadlock it.
func (k MsgKind) request() bool { return k <= MGetM }

// Msg is one in-flight message. Src/Dst -1 denotes the directory.
type Msg struct {
	Kind MsgKind
	Src  int8
	Dst  int8
	T    uint8 // operation type (0 = read)
	Val  uint8 // data, partial update, or written value (mod 4)
	Flag bool  // DataRP: exclusive grant; InvAck/DownAck: carries data
	Part bool  // InvAck/PutN: carries a partial update in Val
}

// Op is a core operation: read, write, or a typed commutative update.
type Op uint8

const (
	OpNone  Op = 0
	OpRead  Op = 1
	OpWrite Op = 2
	// OpUpdate+t-1 for update type t in 1..K.
	OpUpdate Op = 3
)

// UpdateType returns the commutative-update type (1-based) if o is an
// update, else 0.
func (o Op) UpdateType() uint8 {
	if o >= OpUpdate {
		return uint8(o-OpUpdate) + 1
	}
	return 0
}

// L1 is one L1 controller plus its core's pending operation.
type L1 struct {
	St   L1State
	T    uint8 // current/requested operation type
	OldT uint8 // NN: the type still held
	Val  uint8 // data (E/M, N-read) or partial (N-update, NN old partial)
	Pend Op
}

// Dir is the LLC/directory controller.
type Dir struct {
	St      DirState
	T       uint8 // operation type when DirN
	Sharers uint16
	Owner   int8
	LLC     uint8 // LLC data value
	Req     int8  // pending requester (-1: external, for 3-level modelling)
	ReqOp   Op
	Acks    uint8
	Ext     uint8 // pending external action: 0 none, 1 recall, 2 downgrade
	// OwnerGone marks that the downgraded owner evicted its fresh copy
	// while its DownAck is still in flight (PutN overtook DownAck).
	OwnerGone bool
	// PendPart buffers a partial update that arrived (via that racing PutN)
	// before the DownAck's data; folding it into the still-stale LLC would
	// lose it when the data lands.
	PendPart uint8
}

// State is a complete protocol configuration. It is a value type: Step
// functions copy it.
type State struct {
	L1    [MaxCores]L1
	Dir   Dir
	Net   []Msg
	Ghost uint8
}

// System fixes the protocol parameters.
type System struct {
	Kind   Kind
	NCores int
	NOps   int // number of commutative-update types (MEUSI; 0 for MESI)
	// Level3 adds externally-issued recall and downgrade rules, the paper's
	// device for modelling the traffic a middle-level controller sees from
	// its parent in three-level hierarchies (Sec 3.4).
	Level3 bool
	// BugDropPartials deliberately discards partial updates carried on
	// invalidation acks. Used to validate that the checker and the stress
	// tests actually catch protocol bugs.
	BugDropPartials bool
}

// Validate reports configuration errors.
func (sy *System) Validate() error {
	if sy.NCores < 1 || sy.NCores > MaxCores {
		return fmt.Errorf("proto: NCores must be 1..%d", MaxCores)
	}
	if sy.Kind == MESI && sy.NOps != 0 {
		return fmt.Errorf("proto: MESI supports no commutative updates")
	}
	if sy.NOps < 0 || sy.NOps > 20 {
		return fmt.Errorf("proto: NOps must be 0..20")
	}
	return nil
}

// Initial returns the reset state: every cache invalid, line value 0.
func (sy *System) Initial() State {
	var s State
	s.Dir = Dir{St: DirI, Owner: -1, Req: -1}
	return s
}

// Quiescent reports whether no transaction is in flight.
func (s *State) Quiescent(sy *System) bool {
	if len(s.Net) != 0 {
		return false
	}
	for i := 0; i < sy.NCores; i++ {
		if !s.L1[i].St.stable() || s.L1[i].Pend != OpNone {
			return false
		}
	}
	return s.Dir.St == DirI || s.Dir.St == DirN || s.Dir.St == DirX
}

func (s *State) send(m Msg) { s.Net = append(s.Net, m) }

// removeMsg deletes the i-th message.
func (s *State) removeMsg(i int) {
	s.Net = append(append([]Msg{}, s.Net[:i]...), s.Net[i+1:]...)
}

const dirID = int8(-1)

func bitOf(c int) uint16 { return 1 << uint(c) }
