package proto

import (
	"fmt"
	"sort"
)

// ownershipMsg reports whether m carries the line's authoritative value
// (exclusive ownership in flight).
func ownershipMsg(m *Msg) bool {
	switch m.Kind {
	case MDataM, MPutM:
		return true
	case MInvAck, MDownAck:
		return m.Flag
	}
	return false
}

// CheckInvariants validates the COUP safety properties on s:
// single-authoritative-copy, non-exclusive type uniformity, and value
// conservation (authoritative value plus outstanding partials equals the
// ghost value). The data-value property is checked inline by Apply at read
// hits and read grants.
func (sy *System) CheckInvariants(s *State) error {
	owners := 0
	auth := s.Dir.LLC
	for c := 0; c < sy.NCores; c++ {
		if s.L1[c].St == L1E || s.L1[c].St == L1M {
			owners++
			auth = s.L1[c].Val
		}
	}
	for i := range s.Net {
		if ownershipMsg(&s.Net[i]) {
			owners++
			auth = s.Net[i].Val
		}
	}
	if owners > 1 {
		return fmt.Errorf("%d authoritative copies", owners)
	}

	// Non-exclusive copies must coexist under a single operation type, and
	// never alongside an exclusive cache copy.
	curType := -1
	nonExcl := 0
	for c := 0; c < sy.NCores; c++ {
		if s.L1[c].St != L1N {
			continue
		}
		nonExcl++
		t := int(s.L1[c].T)
		if curType == -1 {
			curType = t
		} else if curType != t {
			return fmt.Errorf("mixed non-exclusive types %d and %d", curType, t)
		}
	}
	for c := 0; c < sy.NCores; c++ {
		if (s.L1[c].St == L1E || s.L1[c].St == L1M) && nonExcl > 0 {
			return fmt.Errorf("core %d exclusive while %d non-exclusive copies exist", c, nonExcl)
		}
	}

	// Conservation: every applied update is somewhere — in the
	// authoritative value, a cache's partial buffer, or an in-flight
	// partial.
	sum := auth
	for c := 0; c < sy.NCores; c++ {
		l := &s.L1[c]
		switch l.St {
		case L1N:
			if l.T > 0 {
				sum = (sum + l.Val) & 3
			}
		case L1NN, L1NM:
			if l.OldT > 0 {
				sum = (sum + l.Val) & 3
			}
		}
	}
	for i := range s.Net {
		if s.Net[i].Part {
			sum = (sum + s.Net[i].Val) & 3
		}
	}
	sum = (sum + s.Dir.PendPart) & 3
	if sum != s.Ghost {
		return fmt.Errorf("conservation: accounted %d, ghost %d", sum, s.Ghost)
	}
	return nil
}

// Encode produces a canonical, hashable key for s (messages are order-
// normalized because the networks are unordered).
func (sy *System) Encode(s *State) string {
	b := make([]byte, 0, 5*sy.NCores+13+6*len(s.Net))
	for c := 0; c < sy.NCores; c++ {
		l := &s.L1[c]
		b = append(b, byte(l.St), l.T, l.OldT, l.Val, byte(l.Pend))
	}
	d := &s.Dir
	og := byte(0)
	if d.OwnerGone {
		og = 1
	}
	b = append(b, byte(d.St), d.T, byte(d.Sharers), byte(d.Sharers>>8),
		byte(d.Owner), d.LLC, byte(d.Req), byte(d.ReqOp), d.Acks, d.Ext, og,
		d.PendPart, s.Ghost)
	msgs := append([]Msg(nil), s.Net...)
	sort.Slice(msgs, func(i, j int) bool { return msgKey(&msgs[i]) < msgKey(&msgs[j]) })
	for i := range msgs {
		m := &msgs[i]
		var fl byte
		if m.Flag {
			fl |= 1
		}
		if m.Part {
			fl |= 2
		}
		b = append(b, byte(m.Kind), byte(m.Src), byte(m.Dst), m.T, m.Val, fl)
	}
	return string(b)
}

func msgKey(m *Msg) uint64 {
	k := uint64(m.Kind)
	k = k<<8 | uint64(uint8(m.Src))
	k = k<<8 | uint64(uint8(m.Dst))
	k = k<<8 | uint64(m.T)
	k = k<<8 | uint64(m.Val)
	if m.Flag {
		k = k<<1 | 1
	} else {
		k <<= 1
	}
	if m.Part {
		k = k<<1 | 1
	} else {
		k <<= 1
	}
	return k
}

// Deadlocked reports whether s can never make progress: some controller is
// mid-transaction but no message can be delivered.
func (sy *System) Deadlocked(s *State) bool {
	stuck := false
	for c := 0; c < sy.NCores; c++ {
		if !s.L1[c].St.stable() {
			stuck = true
		}
	}
	dirStable := s.Dir.St == DirI || s.Dir.St == DirN || s.Dir.St == DirX
	if !dirStable {
		stuck = true
	}
	if !stuck {
		return false
	}
	for i := range s.Net {
		m := &s.Net[i]
		if m.Dst == dirID && m.Kind.request() && !dirStable {
			continue
		}
		return false // something can still be delivered
	}
	return true
}
