package proto

import "fmt"

// EventKind classifies the nondeterministic events the checker explores.
type EventKind uint8

const (
	// EvIssue: an idle core issues a read, write, or typed update.
	EvIssue EventKind = iota
	// EvEvict: a cache in a valid stable state self-evicts (models limited
	// capacity, as in the paper's Murphi setup).
	EvEvict
	// EvDeliver: one in-flight message is delivered (unordered networks:
	// any message may arrive next; directory consumes requests only when
	// in a stable state).
	EvDeliver
	// EvExternal: three-level modelling only — the parent level demands a
	// recall (Ext=1) or a downgrade (Ext=2) of the whole line, the paper's
	// device for simulating traffic from other mid-level controllers.
	EvExternal
)

// Event is one enabled transition.
type Event struct {
	Kind   EventKind
	Core   int
	Op     Op
	MsgIdx int
	Ext    uint8
}

func (e Event) String() string {
	switch e.Kind {
	case EvIssue:
		return fmt.Sprintf("issue(core=%d,op=%d)", e.Core, e.Op)
	case EvEvict:
		return fmt.Sprintf("evict(core=%d)", e.Core)
	case EvDeliver:
		return fmt.Sprintf("deliver(msg=%d)", e.MsgIdx)
	case EvExternal:
		return fmt.Sprintf("external(%d)", e.Ext)
	}
	return "?"
}

func (s State) clone() State {
	ns := s
	ns.Net = append([]Msg(nil), s.Net...)
	return ns
}

// Events enumerates every enabled transition from s.
func (sy *System) Events(s *State) []Event {
	var evs []Event
	for c := 0; c < sy.NCores; c++ {
		if s.L1[c].St.stable() {
			evs = append(evs, Event{Kind: EvIssue, Core: c, Op: OpRead})
			evs = append(evs, Event{Kind: EvIssue, Core: c, Op: OpWrite})
			for t := 1; t <= sy.NOps; t++ {
				evs = append(evs, Event{Kind: EvIssue, Core: c, Op: OpUpdate + Op(t-1)})
			}
			if s.L1[c].St != L1I {
				evs = append(evs, Event{Kind: EvEvict, Core: c})
			}
		}
	}
	dirStable := s.Dir.St == DirI || s.Dir.St == DirN || s.Dir.St == DirX
	for i, m := range s.Net {
		if m.Dst == dirID && m.Kind.request() && !dirStable {
			continue // the network holds requests while the directory is busy
		}
		evs = append(evs, Event{Kind: EvDeliver, MsgIdx: i})
	}
	if sy.Level3 && dirStable {
		if s.Dir.St != DirI || s.Dir.LLC != 0 || s.Ghost != 0 {
			evs = append(evs, Event{Kind: EvExternal, Ext: 1}) // recall
		}
		if s.Dir.St == DirX {
			evs = append(evs, Event{Kind: EvExternal, Ext: 2}) // downgrade
		}
	}
	return evs
}

// Apply executes event e on a copy of s. The returned error reports an
// invariant violation detected during the action itself (a read observing
// a wrong value, or a protocol-impossible message).
func (sy *System) Apply(s State, e Event) (State, error) {
	ns := s.clone()
	var err error
	switch e.Kind {
	case EvIssue:
		err = sy.issue(&ns, e.Core, e.Op)
	case EvEvict:
		err = sy.evict(&ns, e.Core)
	case EvDeliver:
		m := ns.Net[e.MsgIdx]
		ns.removeMsg(e.MsgIdx)
		if m.Dst == dirID {
			if m.Kind <= MPutE {
				err = sy.dirRequest(&ns, m)
			} else {
				err = sy.dirResponse(&ns, m)
			}
		} else {
			err = sy.l1Deliver(&ns, m)
		}
	case EvExternal:
		err = sy.external(&ns, e.Ext)
	}
	return ns, err
}

// issue performs op on core c (hit: completes immediately; miss: starts a
// transaction and blocks the core).
func (sy *System) issue(ns *State, c int, op Op) error {
	l := &ns.L1[c]
	switch op {
	case OpRead:
		switch l.St {
		case L1N:
			if l.T == 0 {
				if l.Val != ns.Ghost {
					return fmt.Errorf("core %d read %d in N, ghost %d", c, l.Val, ns.Ghost)
				}
				return nil // hit
			}
			// Update-only copy cannot satisfy a read: type switch via NN.
			l.OldT, l.T, l.St, l.Pend = l.T, 0, L1NN, OpRead
			ns.send(Msg{Kind: MGetN, Src: int8(c), Dst: dirID, T: 0})
		case L1E, L1M:
			if l.Val != ns.Ghost {
				return fmt.Errorf("core %d read %d in %v, ghost %d", c, l.Val, l.St, ns.Ghost)
			}
		case L1I:
			l.T, l.St, l.Pend = 0, L1IN, OpRead
			ns.send(Msg{Kind: MGetN, Src: int8(c), Dst: dirID, T: 0})
		}
	case OpWrite:
		newv := uint8(c+1) & 3
		switch l.St {
		case L1M:
			l.Val, ns.Ghost = newv, newv
		case L1E:
			l.St, l.Val, ns.Ghost = L1M, newv, newv
		case L1N:
			l.OldT, l.St, l.Pend = l.T, L1NM, OpWrite
			ns.send(Msg{Kind: MGetM, Src: int8(c), Dst: dirID})
		case L1I:
			l.St, l.Pend = L1IM, OpWrite
			ns.send(Msg{Kind: MGetM, Src: int8(c), Dst: dirID})
		}
	default: // typed commutative update
		t := op.UpdateType()
		if t == 0 || int(t) > sy.NOps || sy.Kind != MEUSI {
			return fmt.Errorf("bad update op %d for %v/%d ops", op, sy.Kind, sy.NOps)
		}
		switch l.St {
		case L1M:
			l.Val = (l.Val + 1) & 3
			ns.Ghost = (ns.Ghost + 1) & 3
		case L1E:
			l.St = L1M
			l.Val = (l.Val + 1) & 3
			ns.Ghost = (ns.Ghost + 1) & 3
		case L1N:
			if l.T == t {
				l.Val = (l.Val + 1) & 3 // buffer and coalesce locally
				ns.Ghost = (ns.Ghost + 1) & 3
				return nil
			}
			l.OldT, l.T, l.St, l.Pend = l.T, t, L1NN, op
			ns.send(Msg{Kind: MGetN, Src: int8(c), Dst: dirID, T: t})
		case L1I:
			l.T, l.St, l.Pend = t, L1IN, op
			ns.send(Msg{Kind: MGetN, Src: int8(c), Dst: dirID, T: t})
		}
	}
	return nil
}

// evict starts a self-eviction from a valid stable state.
func (sy *System) evict(ns *State, c int) error {
	l := &ns.L1[c]
	switch l.St {
	case L1N:
		ns.send(Msg{Kind: MPutN, Src: int8(c), Dst: dirID, T: l.T, Val: l.Val, Part: l.T > 0})
		l.St, l.Val = L1WB, 0
	case L1E:
		ns.send(Msg{Kind: MPutE, Src: int8(c), Dst: dirID})
		l.St, l.Val = L1WB, 0
	case L1M:
		ns.send(Msg{Kind: MPutM, Src: int8(c), Dst: dirID, Val: l.Val})
		l.St, l.Val = L1WB, 0
	default:
		return fmt.Errorf("evict from %v", l.St)
	}
	return nil
}

// external injects the parent-level recall/downgrade rules (3-level model).
func (sy *System) external(ns *State, kind uint8) error {
	d := &ns.Dir
	switch kind {
	case 1: // recall the whole line
		switch d.St {
		case DirI:
			return sy.flushLine(ns)
		case DirN:
			d.Req, d.ReqOp, d.Ext = -1, OpNone, 1
			return sy.startInvAll(ns, 0)
		case DirX:
			owner := d.Owner
			d.Req, d.ReqOp, d.Ext = -1, OpNone, 1
			d.St = DirWaitData
			ns.send(Msg{Kind: MInv, Src: dirID, Dst: owner, Flag: true})
		}
	case 2: // downgrade the owner to read-only
		if d.St != DirX {
			return fmt.Errorf("external downgrade in %v", d.St)
		}
		d.Req, d.ReqOp, d.Ext = -1, OpRead, 2
		d.St = DirWaitDown
		ns.send(Msg{Kind: MDownS, Src: dirID, Dst: d.Owner})
	}
	return nil
}

// flushLine completes an external recall: the line leaves this subtree.
func (sy *System) flushLine(ns *State) error {
	if ns.Dir.LLC != ns.Ghost {
		return fmt.Errorf("flush with LLC %d != ghost %d", ns.Dir.LLC, ns.Ghost)
	}
	ns.Dir = Dir{St: DirI, Owner: -1, Req: -1}
	ns.Ghost = 0
	return nil
}

// startInvAll sends invalidations to every current sharer (except skip >= 0)
// and moves the directory to DirWaitAcks. Callers set Req/ReqOp/Ext first.
func (sy *System) startInvAll(ns *State, skipMask uint16) error {
	d := &ns.Dir
	targets := d.Sharers &^ skipMask
	if targets == 0 {
		return sy.completeAcks(ns)
	}
	n := uint8(0)
	for c := 0; c < sy.NCores; c++ {
		if targets&bitOf(c) != 0 {
			ns.send(Msg{Kind: MInv, Src: dirID, Dst: int8(c)})
			n++
		}
	}
	d.Acks = n
	d.St = DirWaitAcks
	return nil
}

// dirRequest handles request-network messages; only called in stable states.
func (sy *System) dirRequest(ns *State, m Msg) error {
	d := &ns.Dir
	c := int(m.Src)
	switch m.Kind {
	case MGetN:
		switch d.St {
		case DirI:
			// Unshared: exclusive grant — E for reads, M for updates (Fig 6).
			if d.LLC != ns.Ghost {
				return fmt.Errorf("grant from DirI with LLC %d != ghost %d", d.LLC, ns.Ghost)
			}
			if m.T == 0 {
				ns.send(Msg{Kind: MDataRP, Src: dirID, Dst: m.Src, Val: d.LLC, Flag: true})
			} else {
				ns.send(Msg{Kind: MDataM, Src: dirID, Dst: m.Src, Val: d.LLC})
			}
			d.St, d.Owner = DirX, m.Src
		case DirN:
			if d.T == m.T {
				d.Sharers |= bitOf(c)
				if m.T == 0 {
					if d.LLC != ns.Ghost {
						return fmt.Errorf("read grant with LLC %d != ghost %d", d.LLC, ns.Ghost)
					}
					ns.send(Msg{Kind: MDataRP, Src: dirID, Dst: m.Src, Val: d.LLC})
				} else {
					ns.send(Msg{Kind: MGrantU, Src: dirID, Dst: m.Src, T: m.T})
				}
				return nil
			}
			// Operation-type switch: full reduction/invalidation of every
			// current copy, including the requester's old-type copy.
			d.Req, d.ReqOp, d.Ext = m.Src, opForGetN(m.T), 0
			return sy.startInvAll(ns, 0)
		case DirX:
			d.Req, d.ReqOp, d.Ext = m.Src, opForGetN(m.T), 0
			d.St = DirWaitDown
			if m.T == 0 {
				ns.send(Msg{Kind: MDownS, Src: dirID, Dst: d.Owner})
			} else {
				ns.send(Msg{Kind: MDownU, Src: dirID, Dst: d.Owner, T: m.T})
			}
		}
	case MGetM:
		switch d.St {
		case DirI:
			if d.LLC != ns.Ghost {
				return fmt.Errorf("M grant from DirI with LLC %d != ghost %d", d.LLC, ns.Ghost)
			}
			ns.send(Msg{Kind: MDataM, Src: dirID, Dst: m.Src, Val: d.LLC})
			d.St, d.Owner = DirX, m.Src
		case DirN:
			d.Req, d.ReqOp, d.Ext = m.Src, OpWrite, 0
			if d.T == 0 && d.Sharers&bitOf(c) != 0 {
				// Classic upgrade: the read-only requester keeps its copy;
				// invalidate the others.
				d.Sharers &^= bitOf(c)
				return sy.startInvAll(ns, 0)
			}
			// Update-type sharers (or a non-sharer requester): collect
			// everything, including the requester's partial.
			return sy.startInvAll(ns, 0)
		case DirX:
			d.Req, d.ReqOp, d.Ext = m.Src, OpWrite, 0
			d.St = DirWaitData
			ns.send(Msg{Kind: MInv, Src: dirID, Dst: d.Owner, Flag: true})
		}
	case MPutN:
		switch d.St {
		case DirN:
			if d.Sharers&bitOf(c) == 0 {
				return fmt.Errorf("PutN from non-sharer %d", c)
			}
			if m.Part {
				sy.fold(ns, m.Val)
			}
			d.Sharers &^= bitOf(c)
			if d.Sharers == 0 {
				d.St, d.T = DirI, 0
			}
			ns.send(Msg{Kind: MPutAck, Src: dirID, Dst: m.Src})
		case DirWaitAcks:
			// The eviction raced with our invalidation: it is the ack, and
			// our Inv message is now stale — the flagged PutAck tells the
			// evictor to absorb it (WBW).
			if d.Sharers&bitOf(c) == 0 {
				return fmt.Errorf("PutN from uncounted sharer %d", c)
			}
			if m.Part {
				sy.fold(ns, m.Val)
			}
			d.Sharers &^= bitOf(c)
			d.Acks--
			ns.send(Msg{Kind: MPutAck, Src: dirID, Dst: m.Src, Flag: true})
			if d.Acks == 0 {
				return sy.completeAcks(ns)
			}
		case DirWaitDown:
			// The owner answered the downgrade (DownAck still in flight)
			// and then immediately evicted its fresh non-exclusive copy.
			// Buffer the partial: the LLC is stale until the DownAck data
			// arrives.
			if d.Owner != m.Src {
				return fmt.Errorf("PutN from non-owner during downgrade")
			}
			if m.Part {
				d.PendPart = (d.PendPart + m.Val) & 3
			}
			d.OwnerGone = true
			ns.send(Msg{Kind: MPutAck, Src: dirID, Dst: m.Src})
		default:
			return fmt.Errorf("PutN in %v", d.St)
		}
	case MPutM, MPutE:
		hasData := m.Kind == MPutM
		switch d.St {
		case DirX:
			if d.Owner != m.Src {
				return fmt.Errorf("Put%v from non-owner", m.Kind)
			}
			if hasData {
				d.LLC = m.Val
			}
			d.St, d.Owner = DirI, -1
			ns.send(Msg{Kind: MPutAck, Src: dirID, Dst: m.Src})
		case DirWaitDown, DirWaitData:
			// The owner evicted instead of answering the demand; the demand
			// message is stale, so the PutAck is flagged.
			if d.Owner != m.Src {
				return fmt.Errorf("Put%v from non-owner during wait", m.Kind)
			}
			if hasData {
				d.LLC = m.Val
			}
			d.Owner = -1
			ns.send(Msg{Kind: MPutAck, Src: dirID, Dst: m.Src, Flag: true})
			return sy.completeOwnerGone(ns)
		default:
			return fmt.Errorf("Put%v in %v", m.Kind, d.St)
		}
	default:
		return fmt.Errorf("request net got %v", m.Kind)
	}
	return nil
}

// dirResponse handles response-network messages addressed to the directory.
func (sy *System) dirResponse(ns *State, m Msg) error {
	d := &ns.Dir
	c := int(m.Src)
	switch m.Kind {
	case MInvAck:
		switch d.St {
		case DirWaitAcks:
			if d.Sharers&bitOf(c) == 0 {
				return fmt.Errorf("InvAck from uncounted sharer %d", c)
			}
			if m.Part {
				sy.fold(ns, m.Val)
			}
			if m.Flag {
				d.LLC = m.Val
			}
			d.Sharers &^= bitOf(c)
			d.Acks--
			if d.Acks == 0 {
				return sy.completeAcks(ns)
			}
		case DirWaitData, DirWaitDown:
			// The owner (or the pending grantee) gave the line up entirely.
			if d.Owner != m.Src {
				return fmt.Errorf("InvAck from non-owner %d in %v", c, d.St)
			}
			if m.Flag {
				d.LLC = m.Val
			}
			if m.Part {
				sy.fold(ns, m.Val)
			}
			d.Owner = -1
			return sy.completeOwnerGone(ns)
		default:
			return fmt.Errorf("InvAck in %v", d.St)
		}
	case MDownAck:
		if d.St != DirWaitDown {
			return fmt.Errorf("DownAck in %v", d.St)
		}
		if d.Owner != m.Src {
			return fmt.Errorf("DownAck from non-owner")
		}
		if m.Flag {
			d.LLC = m.Val
		}
		if d.OwnerGone {
			// The owner's post-downgrade eviction was already processed;
			// its copy no longer exists. Now that the authoritative data
			// has landed, fold the buffered partial.
			d.Owner = -1
			d.OwnerGone = false
			sy.fold(ns, d.PendPart)
			d.PendPart = 0
			return sy.completeOwnerGone(ns)
		}
		owner := d.Owner
		d.Owner = -1
		// The former owner keeps a copy under the new type.
		switch {
		case d.Req == -1: // external downgrade: no requester to grant
			d.St, d.T, d.Sharers = DirN, 0, bitOf(int(owner))
			d.Req, d.ReqOp, d.Ext = -1, OpNone, 0
		case d.ReqOp == OpRead:
			if d.LLC != ns.Ghost {
				return fmt.Errorf("read grant after downgrade: LLC %d != ghost %d", d.LLC, ns.Ghost)
			}
			ns.send(Msg{Kind: MDataRP, Src: dirID, Dst: d.Req, Val: d.LLC})
			d.St, d.T, d.Sharers = DirN, 0, bitOf(int(owner))|bitOf(int(d.Req))
			d.Req, d.ReqOp = -1, OpNone
		default: // update
			t := d.ReqOp.UpdateType()
			ns.send(Msg{Kind: MGrantU, Src: dirID, Dst: d.Req, T: t})
			d.St, d.T, d.Sharers = DirN, t, bitOf(int(owner))|bitOf(int(d.Req))
			d.Req, d.ReqOp = -1, OpNone
		}
	default:
		return fmt.Errorf("dir response net got %v", m.Kind)
	}
	return nil
}

// fold reduces a partial update into the LLC copy (the reduction unit).
func (sy *System) fold(ns *State, partial uint8) {
	if sy.BugDropPartials {
		return
	}
	ns.Dir.LLC = (ns.Dir.LLC + partial) & 3
}

// completeAcks finishes a DirWaitAcks collection: every outstanding copy is
// gone and all partials are folded, so the requester is granted exclusively
// (reads get E, writes and updates get M — Fig 6's unshared-line rule).
func (sy *System) completeAcks(ns *State) error {
	d := &ns.Dir
	if d.Req == -1 { // external recall
		if d.Ext != 1 {
			return fmt.Errorf("ack completion with ext=%d", d.Ext)
		}
		d.St, d.T, d.Sharers, d.Owner = DirI, 0, 0, -1
		d.Ext = 0
		return sy.flushLine(ns)
	}
	if d.LLC != ns.Ghost {
		return fmt.Errorf("exclusive grant: LLC %d != ghost %d", d.LLC, ns.Ghost)
	}
	if d.ReqOp == OpRead {
		ns.send(Msg{Kind: MDataRP, Src: dirID, Dst: d.Req, Val: d.LLC, Flag: true})
	} else {
		ns.send(Msg{Kind: MDataM, Src: dirID, Dst: d.Req, Val: d.LLC})
	}
	d.St, d.T, d.Sharers, d.Owner = DirX, 0, 0, d.Req
	d.Req, d.ReqOp = -1, OpNone
	return nil
}

// completeOwnerGone finishes DirWaitDown/DirWaitData when the owner's copy
// disappeared (invalidation ack, or a racing eviction): the requester is
// granted exclusively.
func (sy *System) completeOwnerGone(ns *State) error {
	d := &ns.Dir
	if d.Req == -1 { // external action and the owner vanished
		ext := d.Ext
		d.St, d.T, d.Sharers, d.Owner = DirI, 0, 0, -1
		d.Req, d.ReqOp, d.Ext = -1, OpNone, 0
		if ext == 1 {
			return sy.flushLine(ns)
		}
		// External downgrade degenerates to an empty line.
		return nil
	}
	if d.LLC != ns.Ghost {
		return fmt.Errorf("owner-gone grant: LLC %d != ghost %d", d.LLC, ns.Ghost)
	}
	if d.ReqOp == OpRead {
		ns.send(Msg{Kind: MDataRP, Src: dirID, Dst: d.Req, Val: d.LLC, Flag: true})
	} else {
		ns.send(Msg{Kind: MDataM, Src: dirID, Dst: d.Req, Val: d.LLC})
	}
	d.St, d.T, d.Sharers, d.Owner = DirX, 0, 0, d.Req
	d.Req, d.ReqOp, d.Ext = -1, OpNone, 0
	return nil
}

// l1Deliver handles messages addressed to an L1 controller.
func (sy *System) l1Deliver(ns *State, m Msg) error {
	c := int(m.Dst)
	l := &ns.L1[c]
	switch m.Kind {
	case MDataRP:
		switch l.St {
		case L1IN:
			if l.T != 0 {
				return fmt.Errorf("core %d got DataRP while requesting type %d", c, l.T)
			}
			if m.Flag {
				l.St = L1E
			} else {
				l.St = L1N
			}
			l.Val, l.Pend = m.Val, OpNone
		case L1INI:
			// Consume once (the read was satisfied at grant time), then ack
			// the pending demand: with data if the grant was exclusive.
			ns.send(Msg{Kind: MInvAck, Src: int8(c), Dst: dirID, Flag: m.Flag, Val: m.Val})
			*l = L1{St: L1I}
		default:
			return fmt.Errorf("DataRP in %v", l.St)
		}
	case MGrantU:
		switch l.St {
		case L1IN:
			if l.T != m.T {
				return fmt.Errorf("GrantU type %d but requested %d", m.T, l.T)
			}
			l.St, l.Val = L1N, 0
			// Apply the pending update into the fresh identity buffer.
			l.Val = 1
			ns.Ghost = (ns.Ghost + 1) & 3
			l.Pend = OpNone
		case L1INI:
			// Apply once, hand the partial back with the ack, die.
			ns.Ghost = (ns.Ghost + 1) & 3
			ns.send(Msg{Kind: MInvAck, Src: int8(c), Dst: dirID, Part: true, Val: 1})
			*l = L1{St: L1I}
		default:
			return fmt.Errorf("GrantU in %v", l.St)
		}
	case MDataM:
		apply := func(base uint8) (uint8, error) {
			switch {
			case l.Pend == OpWrite:
				nv := uint8(c+1) & 3
				ns.Ghost = nv
				return nv, nil
			case l.Pend >= OpUpdate:
				ns.Ghost = (ns.Ghost + 1) & 3
				return (base + 1) & 3, nil
			}
			return 0, fmt.Errorf("DataM with pending %d", l.Pend)
		}
		switch l.St {
		case L1IM, L1NM, L1IN:
			// L1IN receives DataM when an update request on an unshared
			// line is granted M directly (Fig 6).
			v, err := apply(m.Val)
			if err != nil {
				return err
			}
			l.St, l.Val, l.Pend = L1M, v, OpNone
		case L1IMI, L1INI:
			v, err := apply(m.Val)
			if err != nil {
				return err
			}
			ns.send(Msg{Kind: MInvAck, Src: int8(c), Dst: dirID, Flag: true, Val: v})
			*l = L1{St: L1I}
		default:
			return fmt.Errorf("DataM in %v", l.St)
		}
	case MInv:
		// m.Flag distinguishes an owner demand (the directory believes we
		// own the line — our exclusive grant may still be in flight) from a
		// collection invalidation (we are a counted sharer and must ack).
		switch l.St {
		case L1N:
			ns.send(Msg{Kind: MInvAck, Src: int8(c), Dst: dirID, Part: l.T > 0, Val: l.Val})
			*l = L1{St: L1I}
		case L1E:
			ns.send(Msg{Kind: MInvAck, Src: int8(c), Dst: dirID})
			*l = L1{St: L1I}
		case L1M:
			ns.send(Msg{Kind: MInvAck, Src: int8(c), Dst: dirID, Flag: true, Val: l.Val})
			*l = L1{St: L1I}
		case L1IN:
			l.St = L1INI
		case L1IM:
			l.St = L1IMI
		case L1NM:
			if m.Flag {
				// Owner demand: our DataM is in flight. Surrender the held
				// copy silently (read-type only — update-type upgrades were
				// collected before the grant) and ack once M arrives.
				if l.OldT > 0 {
					return fmt.Errorf("owner-demand Inv in NM with partial")
				}
				l.St, l.Val = L1IMI, 0
				break
			}
			// Collection: give up the held copy (with its partial) now and
			// keep waiting for the M grant.
			ns.send(Msg{Kind: MInvAck, Src: int8(c), Dst: dirID, Part: l.OldT > 0, Val: l.Val})
			l.St, l.Val, l.OldT = L1IM, 0, 0
		case L1NN:
			ns.send(Msg{Kind: MInvAck, Src: int8(c), Dst: dirID, Part: l.OldT > 0, Val: l.Val})
			l.St, l.Val, l.OldT = L1IN, 0, 0
		case L1WB:
			l.St = L1WBI // our Put message answers the demand
		case L1WBW:
			*l = L1{St: L1I} // the stale demand our flagged PutAck promised
		default:
			return fmt.Errorf("Inv in %v", l.St)
		}
	case MDownS, MDownU:
		newT := uint8(0)
		if m.Kind == MDownU {
			newT = m.T
		}
		switch l.St {
		case L1M:
			ns.send(Msg{Kind: MDownAck, Src: int8(c), Dst: dirID, Flag: true, Val: l.Val})
			if m.Kind == MDownU {
				l.St, l.T, l.Val = L1N, newT, 0 // identity buffer (Fig 5b)
			} else {
				l.St, l.T = L1N, 0 // keep the value as a read-only copy
			}
		case L1E:
			ns.send(Msg{Kind: MDownAck, Src: int8(c), Dst: dirID})
			if m.Kind == MDownU {
				l.St, l.T, l.Val = L1N, newT, 0
			} else {
				l.St, l.T = L1N, 0
			}
		case L1IN, L1IM:
			// Demand raced ahead of our exclusive grant: treat as an
			// invalidation (we give the copy up when it arrives).
			if l.St == L1IN {
				l.St = L1INI
			} else {
				l.St = L1IMI
			}
		case L1NM:
			// We won an upgrade (DataM in flight) and the next transaction's
			// downgrade overtook it. Surrender everything once M arrives.
			// Only the read-upgrade path can be here (update-type upgrades
			// are invalidated during collection), so no partial is lost.
			if l.OldT > 0 {
				return fmt.Errorf("%v in NM with partial", m.Kind)
			}
			l.St, l.Val = L1IMI, 0
		case L1WB:
			l.St = L1WBI
		case L1WBW:
			*l = L1{St: L1I} // stale downgrade absorbed
		default:
			return fmt.Errorf("%v in %v", m.Kind, l.St)
		}
	case MPutAck:
		switch l.St {
		case L1WB:
			if m.Flag {
				// A demand raced with our eviction and is still in flight;
				// wait for it and absorb it.
				l.St = L1WBW
			} else {
				*l = L1{St: L1I}
			}
		case L1WBI:
			*l = L1{St: L1I}
		default:
			return fmt.Errorf("PutAck in %v", l.St)
		}
	default:
		return fmt.Errorf("L1 got %v", m.Kind)
	}
	return nil
}

func opForGetN(t uint8) Op {
	if t == 0 {
		return OpRead
	}
	return OpUpdate + Op(t-1)
}
