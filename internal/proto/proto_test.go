package proto

import (
	"math/rand"
	"testing"
)

// walk performs a random walk of n steps, checking invariants at every
// state. It returns the first violation.
func walk(t *testing.T, sy *System, n int, seed int64) error {
	t.Helper()
	if err := sy.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	s := sy.Initial()
	for i := 0; i < n; i++ {
		if err := sy.CheckInvariants(&s); err != nil {
			return err
		}
		if sy.Deadlocked(&s) {
			t.Fatalf("step %d: deadlock", i)
		}
		evs := sy.Events(&s)
		if len(evs) == 0 {
			t.Fatalf("step %d: no enabled events", i)
		}
		ns, err := sy.Apply(s, evs[rng.Intn(len(evs))])
		if err != nil {
			return err
		}
		s = ns
	}
	return sy.CheckInvariants(&s)
}

func TestValidate(t *testing.T) {
	bad := []System{
		{Kind: MESI, NCores: 0},
		{Kind: MESI, NCores: MaxCores + 1},
		{Kind: MESI, NCores: 2, NOps: 1}, // MESI has no update types
		{Kind: MEUSI, NCores: 2, NOps: 21},
	}
	for _, sy := range bad {
		sy := sy
		if sy.Validate() == nil {
			t.Errorf("%+v should be invalid", sy)
		}
	}
	good := System{Kind: MEUSI, NCores: 4, NOps: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRandomWalksMESI(t *testing.T) {
	for _, cores := range []int{1, 2, 3, 4} {
		sy := &System{Kind: MESI, NCores: cores}
		for seed := int64(0); seed < 6; seed++ {
			if err := walk(t, sy, 3000, seed); err != nil {
				t.Errorf("MESI %d cores seed %d: %v", cores, seed, err)
			}
		}
	}
}

func TestRandomWalksMEUSI(t *testing.T) {
	for _, cfg := range []struct{ cores, ops int }{
		{1, 1}, {2, 1}, {2, 3}, {3, 2}, {4, 2}, {4, 5},
	} {
		sy := &System{Kind: MEUSI, NCores: cfg.cores, NOps: cfg.ops}
		for seed := int64(0); seed < 6; seed++ {
			if err := walk(t, sy, 3000, seed); err != nil {
				t.Errorf("MEUSI %d cores %d ops seed %d: %v", cfg.cores, cfg.ops, seed, err)
			}
		}
	}
}

func TestRandomWalksLevel3(t *testing.T) {
	for _, sy := range []*System{
		{Kind: MESI, NCores: 3, Level3: true},
		{Kind: MEUSI, NCores: 3, NOps: 2, Level3: true},
	} {
		for seed := int64(0); seed < 6; seed++ {
			if err := walk(t, sy, 3000, seed); err != nil {
				t.Errorf("%v 3-level seed %d: %v", sy.Kind, seed, err)
			}
		}
	}
}

// TestBugIsCaught injects the drop-partials bug and verifies the
// invariants actually catch it — the checker must have teeth.
func TestBugIsCaught(t *testing.T) {
	sy := &System{Kind: MEUSI, NCores: 3, NOps: 1, BugDropPartials: true}
	caught := false
	for seed := int64(0); seed < 30 && !caught; seed++ {
		if err := walk(t, sy, 4000, seed); err != nil {
			caught = true
		}
	}
	if !caught {
		t.Fatal("dropped partial updates were not detected by any invariant")
	}
}

// TestDirectedReduction drives the Fig 5 scenario deterministically: two
// cores buffer updates, a third reads, and the reduction must produce the
// exact total.
func TestDirectedReduction(t *testing.T) {
	sy := &System{Kind: MEUSI, NCores: 3, NOps: 1}
	s := sy.Initial()

	mustApply := func(e Event) {
		t.Helper()
		ns, err := sy.Apply(s, e)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		s = ns
		if err := sy.CheckInvariants(&s); err != nil {
			t.Fatalf("after %v: %v", e, err)
		}
	}
	deliverAll := func() {
		t.Helper()
		for guard := 0; len(s.Net) > 0; guard++ {
			if guard > 100 {
				t.Fatal("messages never drain")
			}
			evs := sy.Events(&s)
			applied := false
			for _, e := range evs {
				if e.Kind == EvDeliver {
					mustApply(e)
					applied = true
					break
				}
			}
			if !applied {
				t.Fatal("no deliverable message")
			}
		}
	}

	upd := OpUpdate // type 1
	// Core 0 updates: I -> (GetN) -> granted M (unshared line, Fig 6).
	mustApply(Event{Kind: EvIssue, Core: 0, Op: upd})
	deliverAll()
	if s.L1[0].St != L1M {
		t.Fatalf("core 0 in %v, want M (unshared update grants M)", s.L1[0].St)
	}
	// Core 1 updates: owner downgraded M->N(1) (Fig 5b), core 1 gets U.
	mustApply(Event{Kind: EvIssue, Core: 1, Op: upd})
	deliverAll()
	if s.L1[0].St != L1N || s.L1[0].T != 1 {
		t.Fatalf("core 0 in %v/T=%d, want N(1)", s.L1[0].St, s.L1[0].T)
	}
	if s.L1[1].St != L1N || s.L1[1].T != 1 {
		t.Fatalf("core 1 in %v/T=%d, want N(1)", s.L1[1].St, s.L1[1].T)
	}
	// More local updates: both cores buffer locally with no traffic.
	pre := len(s.Net)
	mustApply(Event{Kind: EvIssue, Core: 0, Op: upd})
	mustApply(Event{Kind: EvIssue, Core: 1, Op: upd})
	if len(s.Net) != pre {
		t.Fatal("local buffered updates must not generate traffic")
	}
	// Core 2 reads: full reduction (Fig 5d). Total updates: 4 -> value 0 mod 4...
	// issue one more to make the expected value distinct.
	mustApply(Event{Kind: EvIssue, Core: 1, Op: upd})
	mustApply(Event{Kind: EvIssue, Core: 2, Op: OpRead})
	deliverAll()
	// 5 updates mod 4 = 1.
	if s.Ghost != 1 {
		t.Fatalf("ghost %d, want 1", s.Ghost)
	}
	if s.L1[2].St != L1E && s.L1[2].St != L1N {
		t.Fatalf("core 2 in %v after read", s.L1[2].St)
	}
	if s.L1[2].Val != 1 {
		t.Fatalf("core 2 read %d, want 1 (reduction lost updates)", s.L1[2].Val)
	}
	// Updaters must have been invalidated by the reduction.
	if s.L1[0].St != L1I || s.L1[1].St != L1I {
		t.Fatalf("updaters in %v/%v, want I/I", s.L1[0].St, s.L1[1].St)
	}
}

// TestDirectedTypeSwitch checks the NN transient: a core holding an
// update-type copy that issues a different type must reduce first.
func TestDirectedTypeSwitch(t *testing.T) {
	sy := &System{Kind: MEUSI, NCores: 2, NOps: 2}
	s := sy.Initial()
	apply := func(e Event) {
		t.Helper()
		ns, err := sy.Apply(s, e)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		s = ns
	}
	drain := func() {
		for len(s.Net) > 0 {
			evs := sy.Events(&s)
			done := false
			for _, e := range evs {
				if e.Kind == EvDeliver {
					apply(e)
					done = true
					break
				}
			}
			if !done {
				t.Fatal("stuck")
			}
		}
	}
	// Two cores under type 1.
	apply(Event{Kind: EvIssue, Core: 0, Op: OpUpdate})
	drain()
	apply(Event{Kind: EvIssue, Core: 1, Op: OpUpdate})
	drain()
	// Core 0 issues type 2: must pass through NN.
	apply(Event{Kind: EvIssue, Core: 0, Op: OpUpdate + 1})
	if s.L1[0].St != L1NN {
		t.Fatalf("core 0 in %v, want NN", s.L1[0].St)
	}
	drain()
	if err := sy.CheckInvariants(&s); err != nil {
		t.Fatal(err)
	}
	// Core 0 ends exclusive (sole holder after the type switch).
	if s.L1[0].St != L1M {
		t.Fatalf("core 0 in %v after type switch, want M", s.L1[0].St)
	}
	if s.Ghost != 3 {
		t.Fatalf("ghost %d, want 3", s.Ghost)
	}
}

// TestStateNames ensures the debug strings exist for every state.
func TestStateNames(t *testing.T) {
	for st := L1State(0); st < numL1States; st++ {
		if st.String() == "" {
			t.Errorf("missing L1 state name %d", st)
		}
	}
	for st := DirState(0); st < numDirStates; st++ {
		if st.String() == "" {
			t.Errorf("missing dir state name %d", st)
		}
	}
	for k := MsgKind(0); k < numMsgKinds; k++ {
		if k.String() == "" {
			t.Errorf("missing msg name %d", k)
		}
	}
}

// TestL1StateCount documents the paper's claim: MEUSI adds exactly one
// transient state (NN) over MESI at the L1 (Sec 3.4).
func TestL1StateCount(t *testing.T) {
	// Our L1 machine: I,N,E,M stable; IN,IM,NM,INI,IMI,WB,WBI,WBW
	// transients shared with MESI (12 states — the paper's two-level MESI
	// L1 also has 12: 4 stable + 8 transient); NN is MEUSI-only, giving 13
	// (the paper's MEUSI L1: "only one extra transient state", Sec 3.4).
	if numL1States != 13 {
		t.Errorf("L1 state count %d, want 13 (12 MESI + NN)", numL1States)
	}
	if numDirStates != 6 {
		t.Errorf("dir state count %d, want 6 (3 stable + 3 transient)", numDirStates)
	}
}

// TestEncodeCanonical: states differing only in message order encode
// identically; different states differ.
func TestEncodeCanonical(t *testing.T) {
	sy := &System{Kind: MEUSI, NCores: 2, NOps: 1}
	a := sy.Initial()
	a.Net = []Msg{{Kind: MGetN, Src: 0, Dst: dirID}, {Kind: MGetM, Src: 1, Dst: dirID}}
	b := sy.Initial()
	b.Net = []Msg{{Kind: MGetM, Src: 1, Dst: dirID}, {Kind: MGetN, Src: 0, Dst: dirID}}
	if sy.Encode(&a) != sy.Encode(&b) {
		t.Error("message order changed the encoding")
	}
	c := sy.Initial()
	c.Ghost = 1
	if sy.Encode(&a) == sy.Encode(&c) {
		t.Error("distinct states encoded identically")
	}
}

// TestQuiescentInitial: the initial state is quiescent and clean.
func TestQuiescentInitial(t *testing.T) {
	sy := &System{Kind: MESI, NCores: 4}
	s := sy.Initial()
	if !s.Quiescent(sy) {
		t.Error("initial state not quiescent")
	}
	if err := sy.CheckInvariants(&s); err != nil {
		t.Error(err)
	}
}
