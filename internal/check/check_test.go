package check

import (
	"testing"
	"time"

	"repro/internal/proto"
)

func TestVerifyMESITwoCores(t *testing.T) {
	sy := &proto.System{Kind: proto.MESI, NCores: 2}
	r := Verify(sy, 5_000_000, 2*time.Minute)
	if !r.Verified() {
		t.Fatalf("MESI 2 cores not verified: %v", r)
	}
	if r.States < 100 {
		t.Errorf("suspiciously small state space: %d", r.States)
	}
	t.Logf("MESI 2 cores: %v", r)
}

func TestVerifyMEUSITwoCoresOneOp(t *testing.T) {
	sy := &proto.System{Kind: proto.MEUSI, NCores: 2, NOps: 1}
	r := Verify(sy, 5_000_000, 2*time.Minute)
	if !r.Verified() {
		t.Fatalf("MEUSI 2 cores 1 op not verified: %v", r)
	}
	t.Logf("MEUSI 2x1: %v", r)
}

func TestVerifyMEUSITwoCoresTwoOps(t *testing.T) {
	sy := &proto.System{Kind: proto.MEUSI, NCores: 2, NOps: 2}
	r := Verify(sy, 5_000_000, 2*time.Minute)
	if !r.Verified() {
		t.Fatalf("MEUSI 2 cores 2 ops not verified: %v", r)
	}
	t.Logf("MEUSI 2x2: %v", r)
}

// TestVerifyCatchesInjectedBug: dropping partial updates on invalidation
// acks must be found as a conservation violation — this is the test that
// proves the checker can actually falsify protocols.
func TestVerifyCatchesInjectedBug(t *testing.T) {
	sy := &proto.System{Kind: proto.MEUSI, NCores: 2, NOps: 1, BugDropPartials: true}
	r := Verify(sy, 5_000_000, 2*time.Minute)
	if r.Err == nil {
		t.Fatal("injected partial-dropping bug was not detected")
	}
	t.Logf("bug caught: %v", r.Err)
}

// TestVerifyLevel3 verifies the three-level models (externally-issued
// invalidations and downgrades, Sec 3.4).
func TestVerifyLevel3(t *testing.T) {
	for _, sy := range []*proto.System{
		{Kind: proto.MESI, NCores: 2, Level3: true},
		{Kind: proto.MEUSI, NCores: 2, NOps: 1, Level3: true},
	} {
		r := Verify(sy, 5_000_000, 2*time.Minute)
		if !r.Verified() {
			t.Errorf("%v 3-level not verified: %v", sy.Kind, r)
		}
		t.Logf("%v 3-level: %v", sy.Kind, r)
	}
}

// TestStateGrowthShape reproduces the Fig 8 observation in miniature:
// verification cost grows much faster with cores than with the number of
// commutative-update types.
func TestStateGrowthShape(t *testing.T) {
	states := func(cores, ops int) int {
		sy := &proto.System{Kind: proto.MEUSI, NCores: cores, NOps: ops}
		r := Verify(sy, 5_000_000, 2*time.Minute)
		if r.Err != nil {
			t.Fatalf("%d cores %d ops: %v", cores, ops, r)
		}
		return r.States
	}
	s21 := states(2, 1)
	s22 := states(2, 2)
	s31 := states(3, 1)
	coreGrowth := float64(s31) / float64(s21)
	opGrowth := float64(s22) / float64(s21)
	t.Logf("2x1=%d 2x2=%d 3x1=%d (core growth %.1fx, op growth %.1fx)",
		s21, s22, s31, coreGrowth, opGrowth)
	if coreGrowth <= opGrowth {
		t.Errorf("state space must grow faster with cores (%.1fx) than with op types (%.1fx)",
			coreGrowth, opGrowth)
	}
}

func TestVerifyCap(t *testing.T) {
	sy := &proto.System{Kind: proto.MEUSI, NCores: 3, NOps: 2}
	r := Verify(sy, 1000, time.Minute)
	if !r.Capped {
		t.Error("tiny state budget must cap")
	}
	if r.Verified() {
		t.Error("capped run must not claim verification")
	}
}

func TestVerifyRejectsBadConfig(t *testing.T) {
	sy := &proto.System{Kind: proto.MESI, NCores: 0}
	r := Verify(sy, 1000, time.Minute)
	if r.Err == nil {
		t.Error("invalid config must fail")
	}
}

func TestResultString(t *testing.T) {
	r := Result{States: 10, Transitions: 20, Depth: 3}
	if r.String() == "" {
		t.Error("empty result string")
	}
	r.Capped = true
	if r.Verified() {
		t.Error("capped is not verified")
	}
}
