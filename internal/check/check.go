// Package check is the repository's Murphi substitute: an explicit-state
// model checker that exhaustively enumerates the reachable states of the
// message-level protocols in internal/proto and validates their safety
// invariants and deadlock freedom. It reproduces the verification
// methodology of Sec 3.4 (Fig 8): breadth-first reachability over a
// single-line model with self-eviction rules, bounded by a state budget
// that stands in for Murphi's 16 GB memory limit.
package check

import (
	"fmt"
	"time"

	"repro/internal/proto"
)

// Result summarizes one verification run.
type Result struct {
	// States is the number of distinct reachable states visited.
	States int
	// Transitions is the number of state transitions explored.
	Transitions int
	// Depth is the BFS depth reached.
	Depth int
	// Capped reports that the state budget was exhausted before the space
	// was fully explored (the analogue of Murphi running out of memory).
	Capped bool
	// TimedOut reports that the time budget expired first.
	TimedOut bool
	// Err is the first invariant violation or deadlock found, nil if the
	// explored space is clean.
	Err error
	// Elapsed is the wall-clock verification time.
	Elapsed time.Duration
}

// Verified reports whether the protocol was exhaustively verified clean.
func (r Result) Verified() bool { return r.Err == nil && !r.Capped && !r.TimedOut }

// String renders the result like a Murphi summary line.
func (r Result) String() string {
	status := "verified"
	switch {
	case r.Err != nil:
		status = "VIOLATION: " + r.Err.Error()
	case r.Capped:
		status = "out of state budget"
	case r.TimedOut:
		status = "timed out"
	}
	return fmt.Sprintf("%d states, %d transitions, depth %d, %v: %s",
		r.States, r.Transitions, r.Depth, r.Elapsed.Round(time.Millisecond), status)
}

// Verify exhaustively explores sy's reachable state space by BFS, checking
// invariants at every state, up to maxStates distinct states and the given
// time budget (0 means no limit).
func Verify(sy *proto.System, maxStates int, timeout time.Duration) Result {
	start := time.Now()
	res := Result{}
	if err := sy.Validate(); err != nil {
		res.Err = err
		return res
	}
	init := sy.Initial()
	visited := map[string]struct{}{sy.Encode(&init): {}}
	frontier := []proto.State{init}
	deadline := time.Time{}
	if timeout > 0 {
		deadline = start.Add(timeout)
	}

	for len(frontier) > 0 {
		var next []proto.State
		for _, s := range frontier {
			if !deadline.IsZero() && time.Now().After(deadline) {
				res.TimedOut = true
				res.States = len(visited)
				res.Elapsed = time.Since(start)
				return res
			}
			if err := sy.CheckInvariants(&s); err != nil {
				res.Err = fmt.Errorf("depth %d: %w", res.Depth, err)
				res.States = len(visited)
				res.Elapsed = time.Since(start)
				return res
			}
			evs := sy.Events(&s)
			if len(evs) == 0 || sy.Deadlocked(&s) {
				if !s.Quiescent(sy) {
					res.Err = fmt.Errorf("depth %d: deadlock", res.Depth)
					res.States = len(visited)
					res.Elapsed = time.Since(start)
					return res
				}
			}
			for _, e := range evs {
				ns, err := sy.Apply(s, e)
				res.Transitions++
				if err != nil {
					res.Err = fmt.Errorf("depth %d, %v: %w", res.Depth, e, err)
					res.States = len(visited)
					res.Elapsed = time.Since(start)
					return res
				}
				key := sy.Encode(&ns)
				if _, ok := visited[key]; ok {
					continue
				}
				if len(visited) >= maxStates {
					res.Capped = true
					res.States = len(visited)
					res.Elapsed = time.Since(start)
					return res
				}
				visited[key] = struct{}{}
				next = append(next, ns)
			}
		}
		frontier = next
		if len(next) > 0 {
			res.Depth++
		}
	}
	res.States = len(visited)
	res.Elapsed = time.Since(start)
	return res
}
