package workloads

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/sim"
)

// SpMV is sparse matrix-vector multiplication with the matrix in compressed
// sparse column format, the paper's spmv benchmark (Table 2: rma10, 64-bit
// FP add). CSC parallelized over columns makes multiple threads perform
// scattered floating-point additions to overlapping elements of the output
// vector — COUP's commutative float adds versus CAS retry loops on MESI.
type SpMV struct {
	N         int // matrix dimension
	NNZPerCol int
	Seed      uint64

	mat *gen.CSC

	colPtrAddr uint64 // int32 per column + 1
	rowIdxAddr uint64 // int32 per nonzero
	valAddr    uint64 // float64 per nonzero
	xAddr      uint64 // float64 input vector
	yAddr      uint64 // float64 output vector (the scattered-add target)
}

// NewSpMV builds an rma10-like spmv instance.
func NewSpMV(n, nnzPerCol int, seed uint64) *SpMV {
	return &SpMV{N: n, NNZPerCol: nnzPerCol, Seed: seed}
}

// Name implements Workload.
func (s *SpMV) Name() string { return "spmv" }

// Setup implements Workload.
func (s *SpMV) Setup(m *sim.Machine) {
	s.mat = gen.SparseMatrix(s.N, s.NNZPerCol, s.Seed)
	nnz := s.mat.NNZ()

	s.colPtrAddr = m.Alloc(uint64(s.N+1)*4, 64)
	for j, v := range s.mat.ColPtr {
		m.WriteWord32(s.colPtrAddr+uint64(j)*4, uint32(v))
	}
	s.rowIdxAddr = m.Alloc(uint64(nnz)*4, 64)
	for k, v := range s.mat.RowIdx {
		m.WriteWord32(s.rowIdxAddr+uint64(k)*4, uint32(v))
	}
	s.valAddr = m.Alloc(uint64(nnz)*8, 64)
	for k, v := range s.mat.Val {
		m.WriteWord64(s.valAddr+uint64(k)*8, math.Float64bits(v))
	}
	s.xAddr = m.Alloc(uint64(s.N)*8, 64)
	r := gen.NewRNG(s.Seed + 1)
	for j := 0; j < s.N; j++ {
		m.WriteWord64(s.xAddr+uint64(j)*8, math.Float64bits(1+r.Float64()))
	}
	s.yAddr = m.Alloc(uint64(s.N)*8, 64)
}

// Kernel implements Workload.
func (s *SpMV) Kernel(c *sim.Ctx) {
	lo, hi := chunk(s.N, c.Tid(), c.NThreads())
	for j := lo; j < hi; j++ {
		start := c.Load32(s.colPtrAddr + uint64(j)*4)
		end := c.Load32(s.colPtrAddr + uint64(j+1)*4)
		xj := c.LoadF64(s.xAddr + uint64(j)*8)
		c.Work(4)
		for k := start; k < end; k++ {
			i := c.Load32(s.rowIdxAddr + uint64(k)*4)
			v := c.LoadF64(s.valAddr + uint64(k)*8)
			c.Work(3) // index arithmetic + FP multiply
			c.CommAddF64(s.yAddr+uint64(i)*8, v*mustF64(xj))
		}
	}
}

// mustF64 converts the loaded x value; Kernel keeps xj as float64 already,
// this adapter documents the raw-bits boundary.
func mustF64(v float64) float64 { return v }

// Validate implements Workload. Floating-point adds reorder across
// protocols, so compare with a relative tolerance (the paper makes the same
// reproducibility caveat for FP reductions, Sec 4.1).
func (s *SpMV) Validate(m *sim.Machine) error {
	x := make([]float64, s.N)
	for j := 0; j < s.N; j++ {
		x[j] = math.Float64frombits(m.ReadWord64(s.xAddr + uint64(j)*8))
	}
	ref := make([]float64, s.N)
	for j := 0; j < s.N; j++ {
		for k := s.mat.ColPtr[j]; k < s.mat.ColPtr[j+1]; k++ {
			ref[s.mat.RowIdx[k]] += s.mat.Val[k] * x[j]
		}
	}
	for i := 0; i < s.N; i++ {
		got := math.Float64frombits(m.ReadWord64(s.yAddr + uint64(i)*8))
		if !approxEq(got, ref[i], 1e-9) {
			return fmt.Errorf("y[%d]: got %g, want %g", i, got, ref[i])
		}
	}
	return nil
}

func approxEq(a, b, rel float64) bool {
	d := math.Abs(a - b)
	if d == 0 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d <= rel*scale
}

func init() {
	mustRegister("spmv",
		"sparse matrix-vector product with commutative FP adds (Table 2; Size=matrix dim, NNZPerCol, Seed)",
		func(p Params) (Workload, error) {
			n, err := p.def(p.Size, 6250)
			if err != nil {
				return nil, err
			}
			nnz, err := p.def(p.NNZPerCol, 24)
			if err != nil {
				return nil, err
			}
			return NewSpMV(n, nnz, p.seed(5)), nil
		})
}
