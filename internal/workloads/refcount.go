package workloads

import (
	"fmt"

	"repro/internal/sim"
)

// RefImpl selects the reference-counting implementation (Sec 5.4).
type RefImpl uint8

const (
	// RefPlain uses one shared counter per object, updated with
	// commutative adds: atomic XADD under MESI, COUP's commutative-add
	// under MEUSI. Decrements read the counter to detect zero.
	RefPlain RefImpl = iota
	// RefSNZI uses Scalable Non-Zero Indicator trees (Ellen et al., PODC
	// 2007): per-object binary trees of counters where threads update
	// leaves and propagate only zero/non-zero transitions, and readers
	// check the root.
	RefSNZI
)

func (i RefImpl) String() string {
	if i == RefSNZI {
		return "snzi"
	}
	return "plain"
}

// RefCount is the immediate-deallocation microbenchmark (Fig 13a/b): each
// thread performs a fixed number of increment or decrement-and-read
// operations over a fixed set of shared reference counters. In low-count
// mode each thread keeps 0 or 1 references per object; in high-count mode
// up to five, with the paper's increment probabilities (1.0, 0.7, 0.5, 0.5,
// 0.3, 0.0 for 0–5 held references).
type RefCount struct {
	Counters         int
	UpdatesPerThread int
	HighCount        bool
	Impl             RefImpl
	Seed             uint64

	ctrAddr  uint64 // one counter per line (objects are line-sized)
	treeAddr uint64 // SNZI: per-object trees, one node per line
	treeSize int    // nodes per tree
	leaves   int

	// outstanding[tid][k] is maintained Go-side during the run (it models
	// the references the thread holds in registers/stack) and summed during
	// validation.
	outstanding [][]int8
	zeroSeen    []uint64 // per-thread count of zero observations (keeps reads live)
}

// NewRefCount builds an immediate-deallocation instance.
func NewRefCount(counters, updates int, high bool, impl RefImpl, seed uint64) *RefCount {
	return &RefCount{Counters: counters, UpdatesPerThread: updates, HighCount: high, Impl: impl, Seed: seed}
}

// Name implements Workload.
func (r *RefCount) Name() string {
	mode := "low"
	if r.HighCount {
		mode = "high"
	}
	return fmt.Sprintf("refcount-%s-%s", r.Impl, mode)
}

// Setup implements Workload.
func (r *RefCount) Setup(m *sim.Machine) {
	n := m.Config().Cores
	r.outstanding = make([][]int8, n)
	for i := range r.outstanding {
		r.outstanding[i] = make([]int8, r.Counters)
	}
	r.zeroSeen = make([]uint64, n)
	r.ctrAddr = m.Alloc(uint64(r.Counters)*64, 64)
	if r.Impl == RefSNZI {
		// Complete binary tree with one leaf per thread: threads arrive and
		// depart at their own leaf; transitions propagate toward the root.
		r.leaves = 1
		for r.leaves < n {
			r.leaves *= 2
		}
		r.treeSize = 2*r.leaves - 1
		r.treeAddr = m.Alloc(uint64(r.Counters)*uint64(r.treeSize)*64, 64)
	}
}

func (r *RefCount) counter(k int) uint64 { return r.ctrAddr + uint64(k)*64 }

func (r *RefCount) node(k, i int) uint64 {
	return r.treeAddr + (uint64(k)*uint64(r.treeSize)+uint64(i))*64
}

// snziArrive increments node i of object k's tree, propagating the 0→1
// surplus transition to the parent.
func (r *RefCount) snziArrive(c *sim.Ctx, k, i int) {
	for {
		v := c.Load64(r.node(k, i))
		c.Work(3)
		if c.CAS64(r.node(k, i), v, v+1) {
			if v == 0 && i != 0 {
				r.snziArrive(c, k, (i-1)/2)
			}
			return
		}
		c.Work(10) // contention backoff
	}
}

// snziDepart decrements node i, propagating 1→0 to the parent.
func (r *RefCount) snziDepart(c *sim.Ctx, k, i int) {
	for {
		v := c.Load64(r.node(k, i))
		c.Work(3)
		if c.CAS64(r.node(k, i), v, v-1) {
			if v == 1 && i != 0 {
				r.snziDepart(c, k, (i-1)/2)
			}
			return
		}
		c.Work(10)
	}
}

// Kernel implements Workload.
func (r *RefCount) Kernel(c *sim.Ctx) {
	tid := c.Tid()
	held := r.outstanding[tid]
	leaf := r.treeSize - r.leaves + (tid % max(r.leaves, 1))
	for u := 0; u < r.UpdatesPerThread; u++ {
		k := int(c.RandN(uint64(r.Counters)))
		inc := r.decide(c, held[k])
		c.Work(6) // object selection, branch
		if r.Impl == RefSNZI {
			if inc {
				r.snziArrive(c, k, leaf)
				held[k]++
			} else {
				r.snziDepart(c, k, leaf)
				held[k]--
				// Non-zero check at the root only (SNZI's fast read).
				if c.Load64(r.node(k, 0)) == 0 {
					r.zeroSeen[tid]++
				}
			}
			continue
		}
		if inc {
			c.CommAdd64(r.counter(k), 1)
			held[k]++
		} else {
			c.CommAdd64(r.counter(k), ^uint64(0)) // -1
			held[k]--
			if c.Load64(r.counter(k)) == 0 {
				r.zeroSeen[tid]++
			}
		}
	}
}

// decide picks increment vs decrement under the paper's reference-holding
// rules.
func (r *RefCount) decide(c *sim.Ctx, held int8) bool {
	if !r.HighCount {
		// Low count: increment iff no reference held.
		return held == 0
	}
	// High count: probabilistic, capped at 5 references.
	probs := [6]uint64{100, 70, 50, 50, 30, 0} // percent, indexed by held
	h := held
	if h < 0 {
		h = 0
	}
	if h > 5 {
		h = 5
	}
	return c.RandN(100) < probs[h]
}

// Validate implements Workload.
func (r *RefCount) Validate(m *sim.Machine) error {
	for k := 0; k < r.Counters; k++ {
		var want int64
		for _, held := range r.outstanding {
			want += int64(held[k])
		}
		if r.Impl == RefSNZI {
			// Leaf sum must equal outstanding references, and the root must
			// be non-zero iff any are outstanding.
			var sum int64
			for l := 0; l < r.leaves; l++ {
				sum += int64(m.ReadWord64(r.node(k, r.treeSize-r.leaves+l)))
			}
			if sum != want {
				return fmt.Errorf("object %d: leaf sum %d, want %d", k, sum, want)
			}
			root := m.ReadWord64(r.node(k, 0))
			if (root != 0) != (want != 0) {
				return fmt.Errorf("object %d: root %d but outstanding %d", k, root, want)
			}
			continue
		}
		if got := int64(m.ReadWord64(r.counter(k))); got != want {
			return fmt.Errorf("counter %d: got %d, want %d", k, got, want)
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DelayedImpl selects the delayed-deallocation implementation (Fig 13c).
type DelayedImpl uint8

const (
	// DelayedCoup maintains shared counters updated with commutative adds
	// plus a shared "modified" bitmap updated with commutative ors; between
	// epochs, cores read marked counters with ordinary loads (Sec 5.4).
	DelayedCoup DelayedImpl = iota
	// DelayedRefcache models Refcache (Clements et al., EuroSys 2013):
	// per-thread software caches (hash tables) of counter deltas, flushed
	// to the global counters with atomic adds at epoch ends.
	DelayedRefcache
)

func (i DelayedImpl) String() string {
	if i == DelayedRefcache {
		return "refcache"
	}
	return "coup"
}

// RefCountDelayed is the delayed-deallocation microbenchmark: threads
// perform increments and decrements (never reads) during an epoch, then
// epoch-end bookkeeping detects zero counters.
type RefCountDelayed struct {
	Counters        int
	Epochs          int
	UpdatesPerEpoch int
	Impl            DelayedImpl
	Seed            uint64

	ctrAddr    uint64 // packed counters, 8 per line (no padding: footprint matters)
	bitmapAddr uint64 // modified bitmap (COUP variant)
	tableAddr  uint64 // per-thread hash tables (Refcache variant)
	tableSlots int    // slots per thread table (power of two)

	deltas   [][]int64 // Go-side per-thread net deltas for validation
	zeroSeen []uint64
}

// NewRefCountDelayed builds a delayed-deallocation instance.
func NewRefCountDelayed(counters, epochs, updatesPerEpoch int, impl DelayedImpl, seed uint64) *RefCountDelayed {
	return &RefCountDelayed{
		Counters: counters, Epochs: epochs, UpdatesPerEpoch: updatesPerEpoch,
		Impl: impl, Seed: seed,
	}
}

// Name implements Workload.
func (r *RefCountDelayed) Name() string { return "refcount-delayed-" + r.Impl.String() }

// Setup implements Workload.
func (r *RefCountDelayed) Setup(m *sim.Machine) {
	n := m.Config().Cores
	r.deltas = make([][]int64, n)
	for i := range r.deltas {
		r.deltas[i] = make([]int64, r.Counters)
	}
	r.zeroSeen = make([]uint64, n)
	r.ctrAddr = m.Alloc(uint64(r.Counters)*8, 64)
	words := uint64(r.Counters+63) / 64
	r.bitmapAddr = m.Alloc(words*8, 64)
	if r.Impl == DelayedRefcache {
		r.tableSlots = 256
		for r.tableSlots < 2*r.UpdatesPerEpoch && r.tableSlots < 4096 {
			r.tableSlots *= 2
		}
		// Two words per slot: key (counter index + 1) and delta.
		r.tableAddr = m.Alloc(uint64(n)*uint64(r.tableSlots)*16, 64)
	}
}

func (r *RefCountDelayed) table(tid, slot int) uint64 {
	return r.tableAddr + (uint64(tid)*uint64(r.tableSlots)+uint64(slot))*16
}

// Kernel implements Workload.
func (r *RefCountDelayed) Kernel(c *sim.Ctx) {
	tid := c.Tid()
	for ep := 0; ep < r.Epochs; ep++ {
		for u := 0; u < r.UpdatesPerEpoch; u++ {
			k := int(c.RandN(uint64(r.Counters)))
			delta := int64(1)
			if c.RandN(2) == 0 {
				delta = -1
			}
			r.deltas[tid][k] += delta
			c.Work(6)
			switch r.Impl {
			case DelayedCoup:
				c.CommAdd64(r.ctrAddr+uint64(k)*8, uint64(delta))
				c.CommOr64(r.bitmapAddr+uint64(k/64)*8, 1<<uint(k%64))
			case DelayedRefcache:
				r.refcacheUpdate(c, tid, k, delta)
			}
		}
		c.Barrier()
		switch r.Impl {
		case DelayedCoup:
			r.coupEpochScan(c, tid)
		case DelayedRefcache:
			r.refcacheFlush(c, tid)
		}
		c.Barrier()
	}
}

// refcacheUpdate buffers a delta in the thread's software cache, evicting
// (flushing) a colliding entry if the probe window is full.
func (r *RefCountDelayed) refcacheUpdate(c *sim.Ctx, tid, k int, delta int64) {
	key := uint64(k + 1)
	h := (uint64(k) * 0x9E3779B97F4A7C15) >> 40 % uint64(r.tableSlots)
	c.Work(5) // hashing
	const probe = 4
	for i := 0; i < probe; i++ {
		slot := (int(h) + i) % r.tableSlots
		sk := c.Load64(r.table(tid, slot))
		if sk == key {
			d := c.Load64(r.table(tid, slot) + 8)
			c.Store64(r.table(tid, slot)+8, uint64(int64(d)+delta))
			return
		}
		if sk == 0 {
			c.Store64(r.table(tid, slot), key)
			c.Store64(r.table(tid, slot)+8, uint64(delta))
			return
		}
	}
	// Probe window full: evict the first entry to the global counter.
	slot := int(h)
	ek := c.Load64(r.table(tid, slot))
	ed := c.Load64(r.table(tid, slot) + 8)
	if ed != 0 {
		c.AtomicAdd64(r.ctrAddr+(ek-1)*8, ed)
	}
	c.CommOr64(r.bitmapAddr+uint64((ek-1)/64)*8, 1<<uint((ek-1)%64))
	c.Store64(r.table(tid, slot), key)
	c.Store64(r.table(tid, slot)+8, uint64(delta))
}

// refcacheFlush drains the thread's cache into the global counters and
// checks flushed counters for zero.
func (r *RefCountDelayed) refcacheFlush(c *sim.Ctx, tid int) {
	for slot := 0; slot < r.tableSlots; slot++ {
		key := c.Load64(r.table(tid, slot))
		if key == 0 {
			continue
		}
		d := c.Load64(r.table(tid, slot) + 8)
		if d != 0 {
			c.AtomicAdd64(r.ctrAddr+(key-1)*8, d)
		}
		c.Store64(r.table(tid, slot), 0)
		c.Store64(r.table(tid, slot)+8, 0)
		if c.Load64(r.ctrAddr+(key-1)*8) == 0 {
			r.zeroSeen[tid]++
		}
		c.Work(4)
	}
}

// coupEpochScan reads this thread's shard of the modified bitmap with
// ordinary loads, checks marked counters for zero, and clears the shard.
func (r *RefCountDelayed) coupEpochScan(c *sim.Ctx, tid int) {
	words := (r.Counters + 63) / 64
	lo, hi := chunk(words, tid, c.NThreads())
	for w := lo; w < hi; w++ {
		m := c.Load64(r.bitmapAddr + uint64(w)*8)
		if m == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if m&(1<<uint(b)) == 0 {
				continue
			}
			k := w*64 + b
			if k >= r.Counters {
				break
			}
			if c.Load64(r.ctrAddr+uint64(k)*8) == 0 {
				r.zeroSeen[tid]++
			}
			c.Work(2)
		}
		c.Store64(r.bitmapAddr+uint64(w)*8, 0)
	}
}

// Validate implements Workload.
func (r *RefCountDelayed) Validate(m *sim.Machine) error {
	for k := 0; k < r.Counters; k++ {
		var want int64
		for _, d := range r.deltas {
			want += d[k]
		}
		if got := int64(m.ReadWord64(r.ctrAddr + uint64(k)*8)); got != want {
			return fmt.Errorf("counter %d: got %d, want %d", k, got, want)
		}
	}
	return nil
}

func refcountFactory(impl RefImpl) Factory {
	return func(p Params) (Workload, error) {
		counters, err := p.def(p.Counters, 1024)
		if err != nil {
			return nil, err
		}
		updates, err := p.def(p.Size, 2000)
		if err != nil {
			return nil, err
		}
		return NewRefCount(counters, updates, p.HighCount, impl, p.seed(21)), nil
	}
}

func delayedFactory(impl DelayedImpl) Factory {
	return func(p Params) (Workload, error) {
		counters, err := p.def(p.Counters, 8192)
		if err != nil {
			return nil, err
		}
		epochs, err := p.def(p.Iters, 2)
		if err != nil {
			return nil, err
		}
		upe, err := p.def(p.UpdatesPerEpoch, 300)
		if err != nil {
			return nil, err
		}
		return NewRefCountDelayed(counters, epochs, upe, impl, p.seed(27)), nil
	}
}

func init() {
	mustRegister("refcount",
		"shared reference counters, immediate dealloc, plain counters (Sec 5.4, Fig 13a/b; Counters, Size=updates/thread, HighCount, Seed)",
		refcountFactory(RefPlain))
	mustRegister("refcount-snzi",
		"reference counting via SNZI trees (Sec 5.4 software baseline; Counters, Size=updates/thread, HighCount, Seed)",
		refcountFactory(RefSNZI))
	mustRegister("counter",
		"one maximally-contended shared counter (Fig 1; Size=updates/thread, Seed)",
		func(p Params) (Workload, error) {
			updates, err := p.def(p.Size, 2000)
			if err != nil {
				return nil, err
			}
			return NewRefCount(1, updates, true, RefPlain, p.seed(3)), nil
		})
	mustRegister("refcount-delayed",
		"delayed deallocation with COUP counters + modified bitmap (Sec 5.4, Fig 13c; Counters, Iters=epochs, UpdatesPerEpoch, Seed)",
		delayedFactory(DelayedCoup))
	mustRegister("refcount-refcache",
		"delayed deallocation via Refcache per-thread delta caches (Sec 5.4 software baseline; Counters, Iters=epochs, UpdatesPerEpoch, Seed)",
		delayedFactory(DelayedRefcache))
}
