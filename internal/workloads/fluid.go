package workloads

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/sim"
)

// Fluid is the fluidanimate-like benchmark: a regular iterative 2-D
// diffusion stencil over a cell grid (Sec 4.1 "ghost cells"). Threads own
// horizontal slabs of rows; each iteration scatters flux contributions from
// every cell to its four neighbours. Contributions to cells inside the
// owner's slab use plain loads and stores; contributions that cross a slab
// boundary — the cells ghost-cell schemes replicate — use commutative
// float adds (atomics under MESI), matching the paper's optimized
// fluidanimate, which replaces the default locks with atomic updates.
// Shared cells are a small fraction of the grid and see few updates per
// phase, which is why the paper reports only a modest speedup (Fig 10e).
type Fluid struct {
	W, H  int
	Iters int
	Seed  uint64

	grid *gen.FluidGrid

	densAddr uint64 // float32 per cell
	accAddr  uint64 // float32 per cell, per-iteration flux accumulator

	// sharedRow[y] marks rows on slab edges: cells there can receive
	// contributions from two threads, so updates to them must be
	// commutative/atomic — exactly the cells ghost-cell schemes replicate.
	sharedRow []bool
}

// NewFluid builds a fluid stencil instance.
func NewFluid(w, h, iters int, seed uint64) *Fluid {
	return &Fluid{W: w, H: h, Iters: iters, Seed: seed}
}

// Name implements Workload.
func (f *Fluid) Name() string { return "fluidanimate" }

// Setup implements Workload.
func (f *Fluid) Setup(m *sim.Machine) {
	f.grid = gen.Fluid(f.W, f.H, f.Seed)
	n := uint64(f.W * f.H)
	f.densAddr = m.Alloc(n*4, 64)
	f.accAddr = m.Alloc(n*4, 64)
	for i, v := range f.grid.Density {
		m.WriteWord32(f.densAddr+uint64(i)*4, math.Float32bits(v))
	}
	f.sharedRow = make([]bool, f.H)
	for tid := 0; tid < m.Config().Cores; tid++ {
		lo, hi := chunk(f.H, tid, m.Config().Cores)
		if lo < hi {
			f.sharedRow[lo] = true
			f.sharedRow[hi-1] = true
		}
	}
}

func (f *Fluid) cell(base uint64, x, y int) uint64 {
	return base + uint64(y*f.W+x)*4
}

// Kernel implements Workload.
func (f *Fluid) Kernel(c *sim.Ctx) {
	rowLo, rowHi := chunk(f.H, c.Tid(), c.NThreads())
	for it := 0; it < f.Iters; it++ {
		// Scatter phase: each cell sends 1/8 of its density to each
		// neighbour. Cross-slab targets are shared cells.
		for y := rowLo; y < rowHi; y++ {
			for x := 0; x < f.W; x++ {
				d := c.LoadF32(f.cell(f.densAddr, x, y))
				flux := d * 0.125
				c.Work(6)
				for _, nb := range [4][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
					nx, ny := nb[0], nb[1]
					if nx < 0 || nx >= f.W || ny < 0 || ny >= f.H {
						continue
					}
					addr := f.cell(f.accAddr, nx, ny)
					if f.sharedRow[ny] {
						// Boundary cell: another thread may update it too.
						c.CommAddF32(addr, flux)
					} else {
						// Private to this slab: ordinary read-modify-write.
						v := c.LoadF32(addr)
						c.StoreF32(addr, v+flux)
					}
				}
			}
		}
		c.Barrier()
		// Update phase: fold accumulated flux into the density field and
		// clear the accumulator. Slab-private.
		for y := rowLo; y < rowHi; y++ {
			for x := 0; x < f.W; x++ {
				d := c.LoadF32(f.cell(f.densAddr, x, y))
				a := c.LoadF32(f.cell(f.accAddr, x, y))
				c.StoreF32(f.cell(f.densAddr, x, y), d*0.5+a)
				c.StoreF32(f.cell(f.accAddr, x, y), 0)
				c.Work(4)
			}
		}
		c.Barrier()
	}
}

// Validate implements Workload: compare against the sequential stencil with
// a relative tolerance (boundary adds reorder across threads).
func (f *Fluid) Validate(m *sim.Machine) error {
	w, h := f.W, f.H
	dens := make([]float32, w*h)
	copy(dens, f.grid.Density)
	acc := make([]float32, w*h)
	for it := 0; it < f.Iters; it++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				flux := dens[y*w+x] * 0.125
				for _, nb := range [4][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
					nx, ny := nb[0], nb[1]
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					acc[ny*w+nx] += flux
				}
			}
		}
		for i := range dens {
			dens[i] = dens[i]*0.5 + acc[i]
			acc[i] = 0
		}
	}
	for i := range dens {
		got := math.Float32frombits(m.ReadWord32(f.densAddr + uint64(i)*4))
		if !approxEq(float64(got), float64(dens[i]), 1e-3) {
			return fmt.Errorf("cell %d: got %g, want %g", i, got, dens[i])
		}
	}
	return nil
}

func init() {
	mustRegister("fluid",
		"fluidanimate-like stencil scattering commutative FP adds (Table 2; Size=grid side, Iters, Seed)",
		func(p Params) (Workload, error) {
			side, err := p.def(p.Size, 96)
			if err != nil {
				return nil, err
			}
			iters, err := p.def(p.Iters, 3)
			if err != nil {
				return nil, err
			}
			return NewFluid(side, side, iters, p.seed(17)), nil
		})
}
