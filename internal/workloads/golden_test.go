package workloads

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/sim"
)

// updateGolden regenerates testdata/golden_stats.json from the current
// engine. Run `go test ./internal/workloads -run TestGoldenStats -update`
// only when a change is *supposed* to alter simulated timing; engine
// optimizations must leave the file untouched.
var updateGolden = flag.Bool("update", false, "rewrite golden stats from the current engine")

const goldenPath = "testdata/golden_stats.json"

// goldenConfigs are the machine shapes pinned by the golden test: a
// single-chip machine and a two-chip machine (17 cores crosses the L4 /
// global-directory path), both with small caches so evictions, partial
// reductions and directory recalls all happen even at tiny workload sizes.
func goldenConfigs(p sim.Protocol) []sim.Config {
	var out []sim.Config
	for _, cores := range []int{4, 17} {
		cfg := sim.DefaultConfig(cores, p)
		cfg.L2Size = 4 << 10
		cfg.L3Size = 64 << 10
		cfg.L4Size = 256 << 10
		cfg.Seed = 3
		out = append(out, cfg)
	}
	return out
}

// goldenParams shrinks every workload far below demo size so the full
// grid stays fast enough for -race runs in CI.
func goldenParams() Params {
	return Params{
		Size:            72,
		Bins:            64,
		Scale:           6,
		EdgeFactor:      4,
		Iters:           2,
		Counters:        64,
		UpdatesPerEpoch: 50,
		NNZPerCol:       4,
		Seed:            11,
	}
}

// TestGoldenStats pins the engine: for every registered workload ×
// protocol × machine shape, the full Stats struct — cycles, hit
// distribution, latency breakdown, protocol events and traffic — must be
// byte-identical to the recorded values. Any engine change that shifts a
// single counter anywhere in the grid fails here, so scheduler and memory-
// system rewrites can be proven observation-equivalent.
func TestGoldenStats(t *testing.T) {
	got := map[string]sim.Stats{}
	for _, in := range All() {
		for _, p := range sim.ProtocolIDs() {
			for _, cfg := range goldenConfigs(p) {
				key := fmt.Sprintf("%s/%s/%dc", in.Name, p, cfg.Cores)
				w, err := in.New(goldenParams())
				if err != nil {
					t.Fatalf("%s: factory: %v", key, err)
				}
				st, err := Run(w, cfg)
				if err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				got[key] = st
			}
		}
	}

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]sim.Stats, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update): %v", err)
	}
	var want map[string]sim.Stats
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, run produced %d (regenerate with -update after registry changes)", len(want), len(got))
	}
	for key, g := range got {
		w, ok := want[key]
		if !ok {
			t.Errorf("%s: not in golden file (new workload/protocol? regenerate with -update)", key)
			continue
		}
		if g != w {
			t.Errorf("%s: stats diverged from golden engine\n got: %+v\nwant: %+v", key, g, w)
		}
	}
}
