// Package workloads implements the paper's five update-heavy benchmarks
// (Table 2) — hist, spmv, pgrank, bfs and a fluidanimate-like stencil —
// plus the reference-counting microbenchmarks of Sec 5.4, all written
// against the simulated ISA in internal/sim. Each workload is expressed
// once with commutative-update instructions; under the MESI baseline those
// transparently execute as the atomic operations the paper's baseline
// implementations use, so a single kernel compares fairly across protocols.
//
// The software-technique baselines the paper evaluates are implemented as
// separate workload variants: core- and socket-level privatization for hist
// (Sec 5.3), and SNZI and Refcache for reference counting (Sec 5.4).
//
// Every workload validates the simulated memory image against a sequential
// reference computation after the run; a protocol bug that corrupts values
// fails validation, not just performance expectations.
package workloads

import (
	"fmt"

	"repro/internal/sim"
)

// Workload is one benchmark instance: it sizes and initializes simulated
// memory, provides the per-thread kernel, and validates the result.
type Workload interface {
	// Name identifies the workload in tables (e.g. "hist", "spmv").
	Name() string
	// Setup allocates and initializes simulated memory. Called once, before
	// the machine runs.
	Setup(m *sim.Machine)
	// Kernel is the per-thread body; it runs once on every simulated core.
	Kernel(c *sim.Ctx)
	// Validate checks the final memory image against a reference
	// computation.
	Validate(m *sim.Machine) error
}

// Run executes w on a fresh machine built from cfg and validates the
// result.
func Run(w Workload, cfg sim.Config) (sim.Stats, error) { return RunIn(nil, w, cfg) }

// RunIn is Run on a machine drawn from (and released back to) arena, so
// repeated runs of same-geometry machines — a sweep worker's steady state
// — recycle all machine-sized scratch instead of reallocating it. A nil
// arena builds a fresh machine, exactly like Run. The machine returns to
// the pool only after it passed validation and the coherence invariants;
// a failed (or panicked) run's machine is dropped, so a suspect machine
// never re-enters the pool.
func RunIn(arena *sim.Arena, w Workload, cfg sim.Config) (sim.Stats, error) {
	m := sim.NewIn(arena, cfg)
	w.Setup(m)
	st := m.Run(w.Kernel)
	if err := w.Validate(m); err != nil {
		return st, fmt.Errorf("%s: %w", w.Name(), err)
	}
	if err := m.CheckInvariants(); err != nil {
		return st, fmt.Errorf("%s: coherence invariants: %w", w.Name(), err)
	}
	m.Release()
	return st, nil
}

// chunk returns the [lo, hi) range of n items assigned to thread tid of
// nthreads under a balanced static partition.
func chunk(n, tid, nthreads int) (lo, hi int) {
	per := n / nthreads
	rem := n % nthreads
	lo = tid*per + min(tid, rem)
	hi = lo + per
	if tid < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// padLines rounds size up to a whole number of 64-byte lines, used to keep
// per-thread private regions from false-sharing.
func padLines(size uint64) uint64 { return (size + 63) &^ 63 }
