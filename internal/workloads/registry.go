package workloads

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Params carries the size and shape knobs a registered workload factory
// understands. Every field has a per-workload default when left zero, so
// Params{} builds the workload at its standard demo size; factories reject
// negative values. Which fields a workload reads is documented in its
// registration description (and in each factory below).
type Params struct {
	// Size is the dominant input size: input values for hist, the matrix
	// dimension for spmv, the grid side for fluid, updates per thread for
	// the refcount family.
	Size int
	// Bins is the histogram bin count (hist family).
	Bins int
	// Scale is the log2 vertex count of R-MAT graphs (pgrank, bfs).
	Scale int
	// EdgeFactor is the average degree of R-MAT graphs (pgrank, bfs).
	EdgeFactor int
	// Iters is the iteration count (pgrank, fluid) or epoch count
	// (refcount-delayed family).
	Iters int
	// Counters sizes the shared counter pool (refcount family).
	Counters int
	// UpdatesPerEpoch is the refcount-delayed epoch length.
	UpdatesPerEpoch int
	// NNZPerCol is the nonzeros per column of the spmv matrix.
	NNZPerCol int
	// HighCount keeps refcount counters biased positive so decrements
	// rarely hit zero (Fig 13b's regime).
	HighCount bool
	// Seed drives the workload's deterministic input generation; zero
	// means the workload's canonical seed.
	Seed uint64
}

func (p Params) def(v, d int) (int, error) {
	if v < 0 {
		return 0, fmt.Errorf("negative size parameter %d", v)
	}
	if v == 0 {
		return d, nil
	}
	return v, nil
}

func (p Params) seed(d uint64) uint64 {
	if p.Seed == 0 {
		return d
	}
	return p.Seed
}

// Factory builds a fresh workload instance from run parameters. Factories
// are registered by name (Register) so callers — and the public pkg/coup
// facade — can construct any workload from a string.
type Factory func(p Params) (Workload, error)

// Info is one registry entry.
type Info struct {
	// Name is the registry key (unique, case-insensitively).
	Name string
	// Desc is a one-line description for listings, naming the paper
	// section/figure the workload reproduces and the Params fields it uses.
	Desc string
	// New builds a fresh instance; workloads are single-run, so every
	// simulation needs a new one.
	New Factory
}

var (
	regMu    sync.RWMutex
	registry = map[string]Info{} // keyed by lower-cased name
)

// Register adds a named workload factory. It fails on an empty or
// duplicate name (case-insensitive).
func Register(name, desc string, f Factory) error {
	if name == "" {
		return fmt.Errorf("workloads: name must be non-empty")
	}
	if f == nil {
		return fmt.Errorf("workloads: %q: nil factory", name)
	}
	key := strings.ToLower(name)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		return fmt.Errorf("workloads: %q already registered", name)
	}
	registry[key] = Info{Name: name, Desc: desc, New: f}
	return nil
}

// mustRegister is Register for the built-in init-time registrations.
func mustRegister(name, desc string, f Factory) {
	if err := Register(name, desc, f); err != nil {
		panic(err)
	}
}

// ByName looks up a registered workload case-insensitively.
func ByName(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	in, ok := registry[strings.ToLower(name)]
	return in, ok
}

// All returns every registered workload, sorted by name.
func All() []Info {
	regMu.RLock()
	out := make([]Info, 0, len(registry))
	for _, in := range registry {
		out = append(out, in)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted registered names (for error messages).
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, in := range all {
		names[i] = in.Name
	}
	return names
}
