package workloads

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/sim"
)

// HistMode selects how hist updates the shared histogram (Sec 5.3).
type HistMode uint8

const (
	// HistShared updates one shared histogram with commutative adds (COUP)
	// or atomic fetch-and-add (MESI baseline) — the OpenCV/TBB-style
	// implementation.
	HistShared HistMode = iota
	// HistPrivCore gives every thread a private histogram copy and reduces
	// them after the loop (core-level privatization, TBB reductions).
	HistPrivCore
	// HistPrivSocket gives every processor chip one histogram copy updated
	// with atomics by that chip's threads, then reduces per-socket copies.
	HistPrivSocket
)

func (m HistMode) String() string {
	switch m {
	case HistShared:
		return "shared"
	case HistPrivCore:
		return "priv-core"
	case HistPrivSocket:
		return "priv-socket"
	}
	return "?"
}

// Hist is the parallel histogramming benchmark: it buckets Pixels 16-bit
// input values into Bins counters. It reproduces the workload of Fig 2,
// Fig 10a, Fig 11a and Fig 12.
type Hist struct {
	Pixels int // number of input values
	Bins   int
	Skew   float64 // input value skew (photographs are skewed)
	Mode   HistMode
	Seed   uint64

	px []uint16 // generated input

	inputAddr uint64 // packed input, 4 values per 64-bit word
	histAddr  uint64 // global histogram, uint32 per bin
	privAddr  uint64 // per-thread or per-socket copies
	privStep  uint64 // bytes between copies
	nCopies   int
}

// NewHist builds a histogram workload with rounded, deterministic input.
func NewHist(pixels, bins int, mode HistMode, seed uint64) *Hist {
	return &Hist{Pixels: pixels, Bins: bins, Skew: 0.5, Mode: mode, Seed: seed}
}

// Name implements Workload.
func (h *Hist) Name() string { return "hist-" + h.Mode.String() }

// Setup implements Workload.
func (h *Hist) Setup(m *sim.Machine) {
	// 16-bit input values so bin counts up to 32K (Fig 2's sweep) stay
	// meaningfully populated.
	px8 := gen.Image(h.Pixels*2, h.Skew, h.Seed)
	h.px = make([]uint16, h.Pixels)
	for i := range h.px {
		h.px[i] = uint16(px8[2*i]) | uint16(px8[2*i+1])<<8
	}
	h.inputAddr = m.Alloc(uint64(h.Pixels)*2, 64)
	for i := 0; i < h.Pixels; i += 4 {
		var w uint64
		for k := 0; k < 4 && i+k < h.Pixels; k++ {
			w |= uint64(h.px[i+k]) << uint(16*k)
		}
		m.WriteWord64(h.inputAddr+uint64(i)*2, w)
	}
	h.histAddr = m.Alloc(padLines(uint64(h.Bins)*4), 64)

	cfg := m.Config()
	switch h.Mode {
	case HistPrivCore:
		h.nCopies = cfg.Cores
	case HistPrivSocket:
		h.nCopies = cfg.Chips()
	default:
		h.nCopies = 0
	}
	if h.nCopies > 0 {
		h.privStep = padLines(uint64(h.Bins) * 4)
		h.privAddr = m.Alloc(h.privStep*uint64(h.nCopies), 64)
	}
}

func (h *Hist) bin(p uint16) int { return int(uint32(p) * uint32(h.Bins) >> 16) }

// Kernel implements Workload.
func (h *Hist) Kernel(c *sim.Ctx) {
	lo, hi := chunk(h.Pixels, c.Tid(), c.NThreads())

	var target uint64
	switch h.Mode {
	case HistShared:
		target = h.histAddr
	case HistPrivCore:
		target = h.privAddr + uint64(c.Tid())*h.privStep
	case HistPrivSocket:
		target = h.privAddr + uint64(c.Chip())*h.privStep
	}

	for i := lo; i < hi; i++ {
		if i%4 == 0 || i == lo {
			c.Load64(h.inputAddr + uint64(i&^3)*2) // packed input word
		}
		b := h.bin(h.px[i])
		// Bin computation, bounds checks and parallel-loop machinery: the
		// paper's hist executes ~100 instructions per commutative update
		// (commutative ops are 1.0% of instructions, Sec 5.2).
		c.Work(95)
		switch h.Mode {
		case HistPrivCore:
			// Thread-private: plain load+add+store, no atomicity needed.
			v := c.Load32(target + uint64(b)*4)
			c.Store32(target+uint64(b)*4, v+1)
		default:
			// Shared or socket-shared: commutative add (atomics on MESI).
			c.CommAdd32(target+uint64(b)*4, 1)
		}
	}

	if h.Mode == HistShared {
		return
	}

	// Reduction phase: every thread reduces a contiguous bin range across
	// all copies into the global histogram (the parallel reduction tree's
	// final combine, which dominates at high bin counts, Sec 5.3).
	c.Barrier()
	blo, bhi := chunk(h.Bins, c.Tid(), c.NThreads())
	for b := blo; b < bhi; b++ {
		var sum uint32
		for copyi := 0; copyi < h.nCopies; copyi++ {
			sum += c.Load32(h.privAddr + uint64(copyi)*h.privStep + uint64(b)*4)
		}
		c.Work(4)
		c.Store32(h.histAddr+uint64(b)*4, sum)
	}
}

// Validate implements Workload.
func (h *Hist) Validate(m *sim.Machine) error {
	ref := make([]uint32, h.Bins)
	for _, p := range h.px {
		ref[h.bin(p)]++
	}
	for b := 0; b < h.Bins; b++ {
		if got := m.ReadWord32(h.histAddr + uint64(b)*4); got != ref[b] {
			return fmt.Errorf("bin %d: got %d, want %d", b, got, ref[b])
		}
	}
	return nil
}

func histFactory(mode HistMode) Factory {
	return func(p Params) (Workload, error) {
		pixels, err := p.def(p.Size, 100_000)
		if err != nil {
			return nil, err
		}
		bins, err := p.def(p.Bins, 512)
		if err != nil {
			return nil, err
		}
		return NewHist(pixels, bins, mode, p.seed(7)), nil
	}
}

func init() {
	mustRegister("hist",
		"parallel histogram, one shared copy (Fig 2, Fig 10a; Size=pixels, Bins, Seed)",
		histFactory(HistShared))
	mustRegister("hist-priv-core",
		"histogram with per-thread private copies (Sec 5.3 core-level privatization; Size=pixels, Bins, Seed)",
		histFactory(HistPrivCore))
	mustRegister("hist-priv-socket",
		"histogram with per-socket copies (Sec 5.3 socket-level privatization; Size=pixels, Bins, Seed)",
		histFactory(HistPrivSocket))
}
