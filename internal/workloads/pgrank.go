package workloads

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/sim"
)

// PgRank is the PageRank benchmark in the shared-memory-optimized style of
// Satish et al. (Table 2: Wikipedia graph, 64-bit integer add). Ranks are
// fixed-point int64 values (scaled by 2^20) so results are exact and
// order-independent — this matches the paper's use of integer adds for
// pgrank. Each iteration scatters rank/outdeg contributions over the
// irregular graph, a long update-only phase on the next-rank array
// (Sec 4.1, "ghost cells are harder to apply to irregular data").
type PgRank struct {
	Scale      int // graph has 2^Scale vertices
	EdgeFactor int
	Iters      int
	Seed       uint64

	g *gen.Graph

	offAddr  uint64 // int32 per vertex + 1
	dstAddr  uint64 // int32 per edge
	degAddr  uint64 // int32 per vertex
	curAddr  uint64 // int64 fixed-point rank
	nextAddr uint64 // int64 fixed-point accumulator (scatter target)
}

const pgFixedOne = int64(1) << 20
const pgDampNum, pgDampDen = 85, 100 // damping factor 0.85

// NewPgRank builds a PageRank instance on an R-MAT graph.
func NewPgRank(scale, edgeFactor, iters int, seed uint64) *PgRank {
	return &PgRank{Scale: scale, EdgeFactor: edgeFactor, Iters: iters, Seed: seed}
}

// Name implements Workload.
func (p *PgRank) Name() string { return "pgrank" }

// Setup implements Workload.
func (p *PgRank) Setup(m *sim.Machine) {
	p.g = gen.RMAT(p.Scale, p.EdgeFactor, p.Seed)
	n := p.g.N

	p.offAddr = m.Alloc(uint64(n+1)*4, 64)
	for i, v := range p.g.Off {
		m.WriteWord32(p.offAddr+uint64(i)*4, uint32(v))
	}
	p.dstAddr = m.Alloc(uint64(p.g.M())*4+8, 64)
	for i, v := range p.g.Dst {
		m.WriteWord32(p.dstAddr+uint64(i)*4, uint32(v))
	}
	p.degAddr = m.Alloc(uint64(n)*4, 64)
	for i, v := range p.g.OutDeg {
		m.WriteWord32(p.degAddr+uint64(i)*4, uint32(v))
	}
	p.curAddr = m.Alloc(uint64(n)*8, 64)
	p.nextAddr = m.Alloc(uint64(n)*8, 64)
	for i := 0; i < n; i++ {
		m.WriteWord64(p.curAddr+uint64(i)*8, uint64(pgFixedOne))
	}
}

// Kernel implements Workload.
func (p *PgRank) Kernel(c *sim.Ctx) {
	n := p.g.N
	lo, hi := chunk(n, c.Tid(), c.NThreads())
	for it := 0; it < p.Iters; it++ {
		// Scatter phase: push contributions along out-edges.
		for u := lo; u < hi; u++ {
			deg := int32(c.Load32(p.degAddr + uint64(u)*4))
			if deg == 0 {
				continue
			}
			rank := int64(c.Load64(p.curAddr + uint64(u)*8))
			contrib := rank / int64(deg)
			start := c.Load32(p.offAddr + uint64(u)*4)
			end := c.Load32(p.offAddr + uint64(u+1)*4)
			c.Work(6)
			for e := start; e < end; e++ {
				v := c.Load32(p.dstAddr + uint64(e)*4)
				c.Work(2)
				c.CommAdd64(p.nextAddr+uint64(v)*8, uint64(contrib))
			}
		}
		c.Barrier()
		// Apply phase: fold damping, swap in the new ranks, clear next.
		for u := lo; u < hi; u++ {
			acc := int64(c.Load64(p.nextAddr + uint64(u)*8))
			newRank := (pgFixedOne*(100-pgDampNum) + pgDampNum*acc) / pgDampDen
			c.Store64(p.curAddr+uint64(u)*8, uint64(newRank))
			c.Store64(p.nextAddr+uint64(u)*8, 0)
			c.Work(6)
		}
		c.Barrier()
	}
}

// Validate implements Workload: fixed-point integer PageRank is exact.
func (p *PgRank) Validate(m *sim.Machine) error {
	n := p.g.N
	cur := make([]int64, n)
	next := make([]int64, n)
	for i := range cur {
		cur[i] = pgFixedOne
	}
	for it := 0; it < p.Iters; it++ {
		for u := 0; u < n; u++ {
			if p.g.OutDeg[u] == 0 {
				continue
			}
			contrib := cur[u] / int64(p.g.OutDeg[u])
			for e := p.g.Off[u]; e < p.g.Off[u+1]; e++ {
				next[p.g.Dst[e]] += contrib
			}
		}
		for u := 0; u < n; u++ {
			cur[u] = (pgFixedOne*(100-pgDampNum) + pgDampNum*next[u]) / pgDampDen
			next[u] = 0
		}
	}
	for u := 0; u < n; u++ {
		if got := int64(m.ReadWord64(p.curAddr + uint64(u)*8)); got != cur[u] {
			return fmt.Errorf("rank[%d]: got %d, want %d", u, got, cur[u])
		}
	}
	return nil
}

func init() {
	mustRegister("pgrank",
		"PageRank on an R-MAT graph with commutative int adds (Table 2; Scale, EdgeFactor, Iters, Seed)",
		func(p Params) (Workload, error) {
			scale, err := p.def(p.Scale, 12)
			if err != nil {
				return nil, err
			}
			ef, err := p.def(p.EdgeFactor, 12)
			if err != nil {
				return nil, err
			}
			iters, err := p.def(p.Iters, 2)
			if err != nil {
				return nil, err
			}
			return NewPgRank(scale, ef, iters, p.seed(9)), nil
		})
}
