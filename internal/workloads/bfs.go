package workloads

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/sim"
)

// BFS is level-synchronous parallel breadth-first search with a visited
// bitmap (Table 2: cage15, 64-bit OR). Following the state-of-the-art
// implementations the paper cites, the frontier structure is PBFS-like
// (per-thread next queues) and a bitmap encodes the visited set to cut
// memory bandwidth: threads test a node's bit with an ordinary load and set
// it with an OR — an atomic-or under MESI, a commutative or under COUP.
// Lines of the bitmap therefore bounce between read-only and update-only
// modes, the finely-interleaved pattern of Sec 4.2.
//
// The test-then-set window means a node can be enqueued by several threads
// in the same level; as in the paper's discussion, the duplicates are
// benign (the node's level is identical) and merely cost repeat work.
type BFS struct {
	Scale      int
	EdgeFactor int
	Seed       uint64

	g    *gen.Graph
	root int32

	offAddr   uint64    // int32 per vertex + 1
	dstAddr   uint64    // int32 per edge
	visitAddr uint64    // visited bitmap, one bit per vertex
	distAddr  uint64    // int32 per vertex, ^0 = unreached
	frontAddr [2]uint64 // per-thread frontier segments (int32 slots)
	countAddr [2]uint64 // per-thread counts, one line each
	segCap    int
	anyAddr   uint64 // per-level "frontier nonempty" flag words
	maxLevels int
	nthreads  int
}

// NewBFS builds a BFS instance over an R-MAT graph.
func NewBFS(scale, edgeFactor int, seed uint64) *BFS {
	return &BFS{Scale: scale, EdgeFactor: edgeFactor, Seed: seed}
}

// Name implements Workload.
func (b *BFS) Name() string { return "bfs" }

// Setup implements Workload.
func (b *BFS) Setup(m *sim.Machine) {
	b.g = gen.RMAT(b.Scale, b.EdgeFactor, b.Seed)
	n := b.g.N
	b.nthreads = m.Config().Cores
	b.maxLevels = 64

	// Root: the highest-degree vertex, so the frontier grows quickly.
	for v := 0; v < n; v++ {
		if b.g.OutDeg[v] > b.g.OutDeg[b.root] {
			b.root = int32(v)
		}
	}

	b.offAddr = m.Alloc(uint64(n+1)*4, 64)
	for i, v := range b.g.Off {
		m.WriteWord32(b.offAddr+uint64(i)*4, uint32(v))
	}
	b.dstAddr = m.Alloc(uint64(b.g.M())*4+8, 64)
	for i, v := range b.g.Dst {
		m.WriteWord32(b.dstAddr+uint64(i)*4, uint32(v))
	}
	words := uint64(n+63) / 64
	b.visitAddr = m.Alloc(words*8, 64)
	b.distAddr = m.Alloc(uint64(n)*4, 64)
	for v := 0; v < n; v++ {
		m.WriteWord32(b.distAddr+uint64(v)*4, ^uint32(0))
	}
	b.segCap = n
	for i := 0; i < 2; i++ {
		b.frontAddr[i] = m.Alloc(uint64(b.nthreads)*uint64(b.segCap)*4, 64)
		b.countAddr[i] = m.Alloc(uint64(b.nthreads)*64, 64)
	}
	b.anyAddr = m.Alloc(uint64(b.maxLevels)*8, 64)

	// Seed the root in thread 0's current segment.
	m.WriteWord32(b.frontAddr[0], uint32(b.root))
	m.WriteWord64(b.countAddr[0], 1)
	m.WriteWord64(b.visitAddr+uint64(b.root/64)*8, 1<<uint(b.root%64))
	m.WriteWord32(b.distAddr+uint64(b.root)*4, 0)
}

func (b *BFS) seg(buf int, tid int) uint64 {
	return b.frontAddr[buf] + uint64(tid)*uint64(b.segCap)*4
}

// Kernel implements Workload. Each level, every thread reads all per-thread
// segment counts, takes a balanced slice of the combined frontier (the
// load-balancing PBFS's bag splitting provides), and appends discoveries to
// its own next-level segment.
func (b *BFS) Kernel(c *sim.Ctx) {
	tid := c.Tid()
	nt := c.NThreads()
	prefix := make([]uint64, nt+1)
	cur := 0
	for level := 0; level < b.maxLevels; level++ {
		next := 1 - cur
		outSeg := b.seg(next, tid)

		// Combined frontier size and per-segment prefix offsets.
		for t := 0; t < nt; t++ {
			prefix[t+1] = prefix[t] + c.Load64(b.countAddr[cur]+uint64(t)*64)
		}
		total := prefix[nt]
		lo := total * uint64(tid) / uint64(nt)
		hi := total * uint64(tid+1) / uint64(nt)
		seg := 0
		var outCnt uint64
		for g := lo; g < hi; g++ {
			for prefix[seg+1] <= g {
				seg++
			}
			u := c.Load32(b.seg(cur, seg) + (g-prefix[seg])*4)
			start := c.Load32(b.offAddr + uint64(u)*4)
			end := c.Load32(b.offAddr + uint64(u+1)*4)
			c.Work(4)
			for e := start; e < end; e++ {
				v := c.Load32(b.dstAddr + uint64(e)*4)
				word := b.visitAddr + uint64(v/64)*8
				mask := uint64(1) << uint(v%64)
				c.Work(3)
				if c.Load64(word)&mask != 0 {
					continue // already visited
				}
				c.CommOr64(word, mask)
				c.Store32(b.distAddr+uint64(v)*4, uint32(level+1))
				c.Store32(outSeg+outCnt*4, uint32(v))
				outCnt++
			}
		}
		c.Store64(b.countAddr[next]+uint64(tid)*64, outCnt)
		if outCnt > 0 {
			c.CommOr64(b.anyAddr+uint64(level)*8, 1)
		}
		c.Barrier()
		if c.Load64(b.anyAddr+uint64(level)*8) == 0 {
			return
		}
		// No count reset is needed: every thread unconditionally stores its
		// own slot of the out buffer before the next level reads it.
		cur = next
	}
}

// Validate implements Workload: distances must equal a sequential BFS.
func (b *BFS) Validate(m *sim.Machine) error {
	n := b.g.N
	ref := make([]int32, n)
	for i := range ref {
		ref[i] = -1
	}
	ref[b.root] = 0
	queue := []int32{b.root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := b.g.Off[u]; e < b.g.Off[u+1]; e++ {
			v := b.g.Dst[e]
			if ref[v] < 0 {
				ref[v] = ref[u] + 1
				queue = append(queue, v)
			}
		}
	}
	for v := 0; v < n; v++ {
		got := int32(m.ReadWord32(b.distAddr + uint64(v)*4))
		if got != ref[v] {
			return fmt.Errorf("dist[%d]: got %d, want %d", v, got, ref[v])
		}
	}
	return nil
}

func init() {
	mustRegister("bfs",
		"parallel BFS with a commutative-OR visited bitmap (Sec 4.2; Scale, EdgeFactor, Seed)",
		func(p Params) (Workload, error) {
			scale, err := p.def(p.Scale, 13)
			if err != nil {
				return nil, err
			}
			ef, err := p.def(p.EdgeFactor, 10)
			if err != nil {
				return nil, err
			}
			return NewBFS(scale, ef, p.seed(13)), nil
		})
}
