package workloads

import (
	"testing"

	"repro/internal/sim"
)

func testCfg(cores int, p sim.Protocol) sim.Config {
	cfg := sim.DefaultConfig(cores, p)
	cfg.L2Size = 16 << 10
	cfg.L3Size = 512 << 10
	cfg.L4Size = 2 << 20
	return cfg
}

func runBoth(t *testing.T, mk func() Workload, cores int) (mesi, meusi sim.Stats) {
	t.Helper()
	var err error
	mesi, err = Run(mk(), testCfg(cores, sim.MESI))
	if err != nil {
		t.Fatalf("MESI: %v", err)
	}
	meusi, err = Run(mk(), testCfg(cores, sim.MEUSI))
	if err != nil {
		t.Fatalf("MEUSI: %v", err)
	}
	return mesi, meusi
}

func TestChunkPartition(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, th := range []int{1, 3, 16} {
			covered := 0
			prevHi := 0
			for tid := 0; tid < th; tid++ {
				lo, hi := chunk(n, tid, th)
				if lo != prevHi {
					t.Fatalf("n=%d th=%d tid=%d: gap (lo=%d prevHi=%d)", n, th, tid, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("n=%d th=%d: covered %d", n, th, covered)
			}
		}
	}
}

func TestHistSharedBothProtocols(t *testing.T) {
	mesi, meusi := runBoth(t, func() Workload {
		return NewHist(20000, 256, HistShared, 7)
	}, 16)
	if mesi.CommUpdates == 0 && mesi.Atomics == 0 {
		t.Error("MESI hist issued no updates")
	}
	if meusi.ULocalHits == 0 {
		t.Error("MEUSI hist never hit the U fast path")
	}
	// COUP should not lose to atomics on an update-heavy histogram.
	if meusi.Cycles > mesi.Cycles {
		t.Errorf("MEUSI (%d cycles) slower than MESI (%d) on shared hist", meusi.Cycles, mesi.Cycles)
	}
}

func TestHistPrivCore(t *testing.T) {
	st, err := Run(NewHist(10000, 128, HistPrivCore, 7), testCfg(8, sim.MESI))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 {
		t.Error("no cycles")
	}
}

func TestHistPrivSocket(t *testing.T) {
	// 32 cores = 2 chips: socket-level copies really are shared per chip.
	st, err := Run(NewHist(20000, 128, HistPrivSocket, 7), testCfg(32, sim.MESI))
	if err != nil {
		t.Fatal(err)
	}
	if st.Atomics == 0 {
		t.Error("socket-level privatization must use atomics")
	}
}

func TestHistManyBinsFavorsShared(t *testing.T) {
	// The Fig 2 crossover: with many bins (few updates per bin), core-level
	// privatization pays reduction costs that the shared version avoids.
	bins := 8192
	pix := 16000
	shared, err := Run(NewHist(pix, bins, HistShared, 3), testCfg(16, sim.MEUSI))
	if err != nil {
		t.Fatal(err)
	}
	priv, err := Run(NewHist(pix, bins, HistPrivCore, 3), testCfg(16, sim.MEUSI))
	if err != nil {
		t.Fatal(err)
	}
	if shared.Cycles >= priv.Cycles {
		t.Errorf("COUP shared hist (%d cycles) should beat core privatization (%d) at %d bins",
			shared.Cycles, priv.Cycles, bins)
	}
}

func TestSpMV(t *testing.T) {
	mesi, meusi := runBoth(t, func() Workload {
		return NewSpMV(1500, 16, 5)
	}, 16)
	if mesi.Cycles == 0 || meusi.Cycles == 0 {
		t.Fatal("no cycles")
	}
	if meusi.CommUpdates == 0 {
		t.Error("spmv must issue commutative FP adds under MEUSI")
	}
	// The MESI baseline expresses FP adds as load+CAS loops.
	if mesi.Atomics == 0 {
		t.Error("spmv under MESI must use CAS")
	}
}

func TestPgRank(t *testing.T) {
	mesi, meusi := runBoth(t, func() Workload {
		return NewPgRank(10, 8, 2, 9)
	}, 16)
	if meusi.Cycles > mesi.Cycles {
		t.Errorf("MEUSI pgrank (%d) slower than MESI (%d)", meusi.Cycles, mesi.Cycles)
	}
}

func TestBFS(t *testing.T) {
	mesi, meusi := runBoth(t, func() Workload {
		return NewBFS(11, 8, 13)
	}, 16)
	_ = mesi
	if meusi.TypeSwitches == 0 {
		t.Error("bfs bitmap must bounce between read-only and update-only modes")
	}
}

func TestFluid(t *testing.T) {
	mesi, meusi := runBoth(t, func() Workload {
		return NewFluid(64, 64, 2, 17)
	}, 8)
	// Shared cells are rare: the two protocols should be close (Fig 10e).
	ratio := float64(mesi.Cycles) / float64(meusi.Cycles)
	if ratio < 0.8 || ratio > 2.0 {
		t.Errorf("fluid MESI/MEUSI ratio %.2f implausible (expected near 1)", ratio)
	}
}

func TestRefCountPlainLow(t *testing.T) {
	// Paper setup ratio: 1024 counters (Fig 13a). With far fewer counters
	// the read-per-decrement contention erodes COUP's edge, so keep the
	// paper's counter pool.
	mesi, meusi := runBoth(t, func() Workload {
		return NewRefCount(1024, 400, false, RefPlain, 21)
	}, 32)
	if meusi.Cycles > mesi.Cycles {
		t.Errorf("COUP refcount (%d) slower than XADD (%d) at 32 cores", meusi.Cycles, mesi.Cycles)
	}
}

func TestRefCountPlainHigh(t *testing.T) {
	_, err := Run(NewRefCount(64, 400, true, RefPlain, 23), testCfg(16, sim.MEUSI))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRefCountSNZI(t *testing.T) {
	st, err := Run(NewRefCount(32, 200, true, RefSNZI, 25), testCfg(16, sim.MESI))
	if err != nil {
		t.Fatal(err)
	}
	if st.Atomics == 0 {
		t.Error("SNZI must use CAS")
	}
}

func TestRefCountDelayedCoup(t *testing.T) {
	st, err := Run(NewRefCountDelayed(512, 3, 100, DelayedCoup, 27), testCfg(16, sim.MEUSI))
	if err != nil {
		t.Fatal(err)
	}
	if st.CommUpdates == 0 {
		t.Error("delayed COUP must use commutative updates")
	}
}

func TestRefCountDelayedRefcache(t *testing.T) {
	st, err := Run(NewRefCountDelayed(512, 3, 100, DelayedRefcache, 27), testCfg(16, sim.MESI))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

// TestDelayedCoupBeatsRefcache reproduces the Fig 13c shape at one point.
func TestDelayedCoupBeatsRefcache(t *testing.T) {
	coup, err := Run(NewRefCountDelayed(1024, 2, 200, DelayedCoup, 3), testCfg(16, sim.MEUSI))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(NewRefCountDelayed(1024, 2, 200, DelayedRefcache, 3), testCfg(16, sim.MESI))
	if err != nil {
		t.Fatal(err)
	}
	if coup.Cycles >= rc.Cycles {
		t.Errorf("COUP delayed refcount (%d) should beat Refcache (%d)", coup.Cycles, rc.Cycles)
	}
}

// TestWorkloadsSingleCore: every workload must be valid on one core too
// (the Fig 10 speedup baselines).
func TestWorkloadsSingleCore(t *testing.T) {
	wls := []Workload{
		NewHist(5000, 128, HistShared, 1),
		NewSpMV(600, 12, 1),
		NewPgRank(9, 6, 1, 1),
		NewBFS(9, 6, 1),
		NewFluid(32, 32, 1, 1),
		NewRefCount(32, 100, false, RefPlain, 1),
		NewRefCountDelayed(256, 2, 50, DelayedCoup, 1),
	}
	for _, w := range wls {
		if _, err := Run(w, testCfg(1, sim.MEUSI)); err != nil {
			t.Errorf("%s on 1 core: %v", w.Name(), err)
		}
	}
}

// TestWorkloadsCrossChip: all workloads across 2 chips under MEUSI.
func TestWorkloadsCrossChip(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-chip sweep is slow")
	}
	wls := []Workload{
		NewHist(8000, 128, HistShared, 2),
		NewSpMV(800, 12, 2),
		NewPgRank(9, 6, 1, 2),
		NewBFS(10, 6, 2),
		NewFluid(48, 48, 1, 2),
		NewRefCount(64, 150, true, RefPlain, 2),
	}
	for _, w := range wls {
		if _, err := Run(w, testCfg(32, sim.MEUSI)); err != nil {
			t.Errorf("%s on 32 cores: %v", w.Name(), err)
		}
	}
}
