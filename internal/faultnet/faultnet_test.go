package faultnet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// countingHandler records deliveries and answers a fixed JSON body.
func countingHandler(delivered *int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		*delivered++
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"applied":64}`)
	})
}

// TestScheduledFaults drives each fault through a real server and
// checks the caller-visible outcome and whether the request was
// delivered — the two properties the chaos accounting rests on.
func TestScheduledFaults(t *testing.T) {
	delivered := 0
	srv := httptest.NewServer(countingHandler(&delivered))
	defer srv.Close()

	ft := New(1, WithInner(srv.Client().Transport))
	client := ft.Client()
	post := func() (*http.Response, error) {
		return client.Post(srv.URL, "application/json", strings.NewReader(`{}`))
	}

	cases := []struct {
		fault     Fault
		wantErr   bool
		delivered bool
	}{
		{None, false, true},
		{DropBeforeSend, true, false},
		{DropResponse, true, true},
		{Reset, true, true},
		{Delay, false, true},
		{TruncateBody, false, true},
		{Inject500, false, false},
	}
	for _, tc := range cases {
		before := delivered
		ft.Schedule(tc.fault)
		resp, err := post()
		if (err != nil) != tc.wantErr {
			t.Fatalf("%v: err=%v, wantErr=%v", tc.fault, err, tc.wantErr)
		}
		gotDelivered := delivered > before
		if gotDelivered != tc.delivered {
			t.Errorf("%v: delivered=%v, want %v", tc.fault, gotDelivered, tc.delivered)
		}
		if tc.fault.Delivered() != tc.delivered {
			t.Errorf("%v: Delivered()=%v disagrees with observed %v", tc.fault, tc.fault.Delivered(), tc.delivered)
		}
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch tc.fault {
		case Inject500:
			if resp.StatusCode != http.StatusInternalServerError {
				t.Errorf("Inject500: status %d, want 500", resp.StatusCode)
			}
		case TruncateBody:
			if len(body) >= len(`{"applied":64}`) {
				t.Errorf("TruncateBody: body %q not truncated", body)
			}
		default:
			if string(body) != `{"applied":64}` {
				t.Errorf("%v: body %q, want full ack", tc.fault, body)
			}
		}
	}
	if got := ft.Requests(); got != int64(len(cases)) {
		t.Errorf("Requests()=%d, want %d", got, len(cases))
	}
	// None is not an injection.
	if got := ft.Injected(); got != int64(len(cases)-1) {
		t.Errorf("Injected()=%d, want %d", got, len(cases)-1)
	}
}

// TestSeededDeterminism: the same seed over the same single-goroutine
// request sequence draws the same faults.
func TestSeededDeterminism(t *testing.T) {
	draws := func(seed uint64) []Fault {
		ft := New(seed, WithRate(0.5))
		out := make([]Fault, 100)
		for i := range out {
			out[i] = ft.draw()
		}
		return out
	}
	a, b := draws(42), draws(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: seed 42 gave %v then %v", i, a[i], b[i])
		}
	}
	c := draws(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 drew identical fault sequences")
	}
	// The rate is honored within statistical slack.
	inj := 0
	for _, f := range a {
		if f != None {
			inj++
		}
	}
	if inj < 30 || inj > 70 {
		t.Errorf("rate 0.5 injected %d/100 faults", inj)
	}
}

func TestHooks(t *testing.T) {
	mustPanic := func(fn func()) (panicked bool) {
		defer func() { panicked = recover() != nil }()
		fn()
		return
	}
	h := PanicN(2)
	if !mustPanic(h) || !mustPanic(h) {
		t.Error("PanicN(2): first two calls must panic")
	}
	if mustPanic(h) {
		t.Error("PanicN(2): third call must pass")
	}
	e := PanicEvery(3)
	got := []bool{mustPanic(e), mustPanic(e), mustPanic(e), mustPanic(e)}
	want := []bool{false, false, true, false}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("PanicEvery(3) call %d: panicked=%v, want %v", i+1, got[i], want[i])
		}
	}
	s := StallEvery(1, 5*time.Millisecond)
	t0 := time.Now()
	s()
	if time.Since(t0) < 5*time.Millisecond {
		t.Error("StallEvery(1) did not stall")
	}
}
