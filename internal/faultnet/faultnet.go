// Package faultnet injects deterministic transport and server faults
// for chaos-testing the coupd write path.
//
// The core is Transport, an http.RoundTripper wrapper that flips a
// seeded coin per request and injects one of the classic network
// failure modes — each chosen to exercise a distinct branch of the
// client's retry classifier and the server's exactly-once dedup:
//
//	DropBeforeSend  request never delivered; server saw nothing
//	DropResponse    request delivered and applied; the ack is lost —
//	                the canonical duplicate-generating fault
//	Reset           delivered, then the connection dies mid-response
//	Delay           delivered after injected latency (timeout food)
//	TruncateBody    delivered; the response body arrives half-cut
//	Inject500       never delivered; a synthesized 500 comes back
//
// Seeding makes a run reproducible: the same seed over the same
// (single-goroutine) request sequence injects the same faults. Under
// concurrent load the draw order follows request arrival order, so a
// seed pins the fault *mix* exactly and the fault *placement*
// statistically; tests that need exact placement use Schedule, which
// overrides the coin with a per-request fault queue.
//
// The server half: PanicN, PanicEvery, and StallEvery build hook
// functions for coupd's WithApplyHook/WithReduceHook options, injecting
// process-internal faults (poisoned batches, GC-pause-shaped stalls) at
// the moments the exactly-once contract must survive them.
package faultnet

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault enumerates the injectable transport faults.
type Fault int

const (
	None Fault = iota
	DropBeforeSend
	DropResponse
	Reset
	Delay
	TruncateBody
	Inject500

	numFaults
)

// String names the fault for stats and test output.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case DropBeforeSend:
		return "drop-before-send"
	case DropResponse:
		return "drop-response"
	case Reset:
		return "reset"
	case Delay:
		return "delay"
	case TruncateBody:
		return "truncate-body"
	case Inject500:
		return "inject-500"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Delivered reports whether a request hit by this fault still reached
// the server — the property chaos equivalence accounting cares about:
// delivered faults can double-send, undelivered ones only under-send.
func (f Fault) Delivered() bool {
	switch f {
	case None, DropResponse, Reset, Delay, TruncateBody:
		return true
	}
	return false
}

// Transport is the chaos RoundTripper. Build with New; wrap it into an
// http.Client via Client or by hand. Safe for concurrent use.
type Transport struct {
	inner  http.RoundTripper
	delay  time.Duration // injected latency for Delay faults
	filter func(*http.Request) bool

	mu    sync.Mutex
	rng   *rand.Rand
	rate  float64 // per-request probability of injecting any fault
	mix   []Fault // faults eligible for random injection
	sched []Fault // per-request override queue (Schedule)

	counts [numFaults]atomic.Int64
	total  atomic.Int64
}

// Option configures New.
type Option func(*Transport)

// WithInner sets the wrapped RoundTripper (default
// http.DefaultTransport).
func WithInner(rt http.RoundTripper) Option {
	return func(t *Transport) { t.inner = rt }
}

// WithRate sets the per-request fault probability (default 0.2).
func WithRate(p float64) Option {
	return func(t *Transport) { t.rate = p }
}

// WithFaults restricts random injection to the given faults (default:
// every fault, uniformly).
func WithFaults(fs ...Fault) Option {
	return func(t *Transport) { t.mix = fs }
}

// WithDelay sets the latency a Delay fault injects (default 2ms).
func WithDelay(d time.Duration) Option {
	return func(t *Transport) { t.delay = d }
}

// WithFilter restricts injection to requests fn accepts; the rest pass
// through untouched and uncounted. The chaos suite uses it to storm the
// write path while its snapshot reads (the accounting instrument) stay
// clean.
func WithFilter(fn func(*http.Request) bool) Option {
	return func(t *Transport) { t.filter = fn }
}

// WritesOnly is a WithFilter predicate accepting only mutating methods.
func WritesOnly(req *http.Request) bool {
	switch req.Method {
	case http.MethodPost, http.MethodPut, http.MethodPatch, http.MethodDelete:
		return true
	}
	return false
}

// New builds a Transport seeded with seed.
func New(seed uint64, opts ...Option) *Transport {
	t := &Transport{
		inner: http.DefaultTransport,
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		rate:  0.2,
		delay: 2 * time.Millisecond,
		mix: []Fault{DropBeforeSend, DropResponse, Reset, Delay,
			TruncateBody, Inject500},
	}
	for _, opt := range opts {
		if opt != nil {
			opt(t)
		}
	}
	return t
}

// Client wraps t into an http.Client.
func (t *Transport) Client() *http.Client {
	return &http.Client{Transport: t}
}

// Schedule queues faults to inject on the next len(fs) requests, in
// order, bypassing the random coin (use None to force a clean pass).
// Deterministic by construction — for unit tests that need a fault on
// exactly the nth request.
func (t *Transport) Schedule(fs ...Fault) {
	t.mu.Lock()
	t.sched = append(t.sched, fs...)
	t.mu.Unlock()
}

// Requests returns how many requests passed through the transport.
func (t *Transport) Requests() int64 { return t.total.Load() }

// Injected returns how many requests had a fault injected.
func (t *Transport) Injected() int64 {
	var n int64
	for f := None + 1; f < numFaults; f++ {
		n += t.counts[f].Load()
	}
	return n
}

// Count returns how many times fault f was injected.
func (t *Transport) Count(f Fault) int64 { return t.counts[f].Load() }

// Stats renders the per-fault injection counts, for test logs.
func (t *Transport) Stats() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests, %d faults", t.Requests(), t.Injected())
	for f := None + 1; f < numFaults; f++ {
		if n := t.counts[f].Load(); n > 0 {
			fmt.Fprintf(&b, ", %s=%d", f, n)
		}
	}
	return b.String()
}

// draw picks the fault for one request: the scheduled override if one
// is queued, otherwise the seeded coin.
func (t *Transport) draw() Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.sched) > 0 {
		f := t.sched[0]
		t.sched = t.sched[1:]
		return f
	}
	if len(t.mix) == 0 || t.rng.Float64() >= t.rate {
		return None
	}
	return t.mix[t.rng.IntN(len(t.mix))]
}

// RoundTrip implements http.RoundTripper. Per the RoundTripper
// contract, the request body is closed on every path, delivered or not.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.filter != nil && !t.filter(req) {
		return t.inner.RoundTrip(req)
	}
	t.total.Add(1)
	f := t.draw()
	t.counts[f].Add(1)
	switch f {
	case None:
		return t.inner.RoundTrip(req)
	case DropBeforeSend:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultnet: %s: connection refused (injected)", f)
	case Inject500:
		if req.Body != nil {
			req.Body.Close()
		}
		return synth500(req), nil
	case Delay:
		timer := time.NewTimer(t.delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
		return t.inner.RoundTrip(req)
	case DropResponse, Reset:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			// The real transport failed underneath the injected fault;
			// either way the caller sees a retryable transport error.
			return nil, err
		}
		// Drain so the underlying connection can be reused, then lose
		// the response: to the caller this is indistinguishable from an
		// ack eaten by the network after the server applied the batch.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if f == Reset {
			return nil, fmt.Errorf("faultnet: %s: connection reset by peer (injected)", f)
		}
		return nil, fmt.Errorf("faultnet: %s: EOF (injected)", f)
	case TruncateBody:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := len(data) / 2
		resp.Body = io.NopCloser(strings.NewReader(string(data[:cut])))
		resp.ContentLength = int64(cut)
		return resp, nil
	}
	panic(fmt.Sprintf("faultnet: unhandled fault %v", f))
}

// synth500 fabricates a 500 response that never touched the server.
func synth500(req *http.Request) *http.Response {
	body := `{"error":"faultnet: injected internal error"}`
	return &http.Response{
		Status:        "500 Internal Server Error",
		StatusCode:    http.StatusInternalServerError,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// PanicN returns a hook (for coupd.WithApplyHook/WithReduceHook) that
// panics on its first n invocations, then passes forever — the poisoned
// batch that must become a recovered 500, not a dead process.
func PanicN(n int64) func() {
	var calls atomic.Int64
	return func() {
		if calls.Add(1) <= n {
			panic(fmt.Sprintf("faultnet: injected panic (%d of %d)", calls.Load(), n))
		}
	}
}

// PanicEvery returns a hook that panics on every nth invocation.
func PanicEvery(n int64) func() {
	var calls atomic.Int64
	return func() {
		if c := calls.Add(1); c%n == 0 {
			panic(fmt.Sprintf("faultnet: injected panic (call %d)", c))
		}
	}
}

// StallEvery returns a hook that sleeps d on every nth invocation — a
// GC-pause-shaped stall in the middle of the apply or reduce path.
func StallEvery(n int64, d time.Duration) func() {
	var calls atomic.Int64
	return func() {
		if calls.Add(1)%n == 0 {
			time.Sleep(d)
		}
	}
}
