package swbench

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
)

// TestRunEquivalence: every (kind, impl) pair must reduce to exactly
// threads*ops updates — the software form of the simulator workloads'
// Validate step.
func TestRunEquivalence(t *testing.T) {
	for _, kind := range Kinds() {
		for _, impl := range Impls() {
			c := Config{
				Kind: kind, Impl: impl,
				Threads: 4, Ops: 5_000,
				Cells: 8, Bins: 64,
				ZipfS: 1.07, ReadEvery: 64, Seed: 1,
			}
			res, err := Run(c)
			if err != nil {
				t.Errorf("%s/%s: %v", kind, impl, err)
				continue
			}
			if res.Total != 4*5_000 {
				t.Errorf("%s/%s: total %d", kind, impl, res.Total)
			}
			if res.NsPerOp <= 0 || res.MOpsPerSec <= 0 {
				t.Errorf("%s/%s: non-positive rates %+v", kind, impl, res)
			}
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Kind: KindCounter, Impl: ImplAtomic}); err == nil {
		t.Error("zero threads/ops accepted")
	}
	if _, err := Run(Config{Kind: KindCounter, Impl: "bogus", Threads: 1, Ops: 1}); err == nil {
		t.Error("unknown impl accepted")
	}
}

func TestMeasureCI(t *testing.T) {
	c := Config{Kind: KindCounter, Impl: ImplCommute, Threads: 2, Ops: 2_000, Cells: 1, Seed: 3}
	results, mean, ci, err := Measure(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || mean <= 0 || ci < 0 {
		t.Errorf("Measure: %d results, mean %v, ci %v", len(results), mean, ci)
	}
	// Seeds must differ per rep so the CI reflects real variation.
	if results[0].Seed == results[1].Seed {
		t.Error("reps share a seed")
	}
}

// TestTrafficGolden pins the generated target sequences against hashes
// recorded before the Driver refactor: the figsw traffic an in-process
// run drives is byte-identical to what the pre-Driver harness drove, so
// the refactor cannot have shifted the measured workload.
func TestTrafficGolden(t *testing.T) {
	for _, tc := range []struct {
		c    Config
		want uint64
	}{
		{Config{Kind: KindCounter, Threads: 4, Ops: 10_000, Cells: 8, ZipfS: 1.07, Seed: 1}, 0x721fb16ff6fe6747},
		{Config{Kind: KindHist, Threads: 8, Ops: 10_000, Bins: 512, ZipfS: 1.07, Seed: 1}, 0xbfaae0dbfa173b03},
		{Config{Kind: KindHist, Threads: 2, Ops: 5_000, Bins: 64, ZipfS: 0, Seed: 42}, 0xe5176407dd4d0c8f},
	} {
		cells := tc.c.Cells
		if tc.c.Kind == KindHist {
			cells = tc.c.Bins
		}
		h := fnv.New64a()
		for _, seq := range genTargets(tc.c, cells) {
			for _, v := range seq {
				h.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
			}
		}
		if got := h.Sum64(); got != tc.want {
			t.Errorf("%s threads=%d seed=%d: traffic hash %#x, want %#x",
				tc.c.Kind, tc.c.Threads, tc.c.Seed, got, tc.want)
		}
	}
}

// TestDefaultDriverShapes: a nil NewDriver must resolve to the shared
// in-process structures — the same concrete types the pre-Driver harness
// called directly, one interface dispatch on the hot path.
func TestDefaultDriverShapes(t *testing.T) {
	for _, tc := range []struct {
		impl Impl
		kind Kind
		want string
	}{
		{ImplCommute, KindCounter, "*swbench.commuteCells"},
		{ImplCommute, KindHist, "*swbench.commuteHist"},
		{ImplAtomic, KindCounter, "*swbench.atomicCells"},
		{ImplAtomic, KindHist, "*swbench.atomicHist"},
		{ImplMutex, KindCounter, "*swbench.mutexCells"},
		{ImplMutex, KindHist, "*swbench.mutexCells"},
	} {
		d, err := newInProcDriver(Config{Kind: tc.kind, Impl: tc.impl, Bins: 4, Cells: 4}, 4)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.kind, tc.impl, err)
		}
		sd, ok := d.(sharedDriver)
		if !ok {
			t.Fatalf("%s/%s: driver %T, want sharedDriver", tc.kind, tc.impl, d)
		}
		// Every worker must be the shared structure itself, not a wrapper.
		w := d.Worker(0)
		if w != sd.u || d.Worker(3) != sd.u {
			t.Errorf("%s/%s: worker %T is not the shared updater", tc.kind, tc.impl, w)
		}
		if got := typeName(w); got != tc.want {
			t.Errorf("%s/%s: updater %s, want %s", tc.kind, tc.impl, got, tc.want)
		}
	}
}

func typeName(v any) string { return fmt.Sprintf("%T", v) }

// TestParseNames: lookups are case-insensitive and unknown names carry
// the full valid set, pkg/coup registry style, under typed sentinels.
func TestParseNames(t *testing.T) {
	if i, err := ParseImpl("Commute"); err != nil || i != ImplCommute {
		t.Errorf("ParseImpl(Commute) = %v, %v", i, err)
	}
	if k, err := ParseKind("HIST"); err != nil || k != KindHist {
		t.Errorf("ParseKind(HIST) = %v, %v", k, err)
	}
	_, err := ParseImpl("bogus")
	if !errors.Is(err, ErrUnknownImpl) {
		t.Errorf("ParseImpl(bogus) err = %v, want ErrUnknownImpl", err)
	}
	for _, name := range Impls() {
		if !strings.Contains(err.Error(), string(name)) {
			t.Errorf("impl error %q does not list %q", err, name)
		}
	}
	_, err = ParseKind("bogus")
	if !errors.Is(err, ErrUnknownKind) {
		t.Errorf("ParseKind(bogus) err = %v, want ErrUnknownKind", err)
	}
	for _, name := range Kinds() {
		if !strings.Contains(err.Error(), string(name)) {
			t.Errorf("kind error %q does not list %q", err, name)
		}
	}
}

func TestDefaultThreads(t *testing.T) {
	got := DefaultThreads(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("DefaultThreads(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DefaultThreads(8) = %v, want %v", got, want)
		}
	}
	if got := DefaultThreads(12); got[len(got)-1] != 12 {
		t.Errorf("DefaultThreads(12) = %v, want trailing 12", got)
	}
}
