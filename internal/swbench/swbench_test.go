package swbench

import "testing"

// TestRunEquivalence: every (kind, impl) pair must reduce to exactly
// threads*ops updates — the software form of the simulator workloads'
// Validate step.
func TestRunEquivalence(t *testing.T) {
	for _, kind := range Kinds() {
		for _, impl := range Impls() {
			c := Config{
				Kind: kind, Impl: impl,
				Threads: 4, Ops: 5_000,
				Cells: 8, Bins: 64,
				ZipfS: 1.07, ReadEvery: 64, Seed: 1,
			}
			res, err := Run(c)
			if err != nil {
				t.Errorf("%s/%s: %v", kind, impl, err)
				continue
			}
			if res.Total != 4*5_000 {
				t.Errorf("%s/%s: total %d", kind, impl, res.Total)
			}
			if res.NsPerOp <= 0 || res.MOpsPerSec <= 0 {
				t.Errorf("%s/%s: non-positive rates %+v", kind, impl, res)
			}
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Kind: KindCounter, Impl: ImplAtomic}); err == nil {
		t.Error("zero threads/ops accepted")
	}
	if _, err := Run(Config{Kind: KindCounter, Impl: "bogus", Threads: 1, Ops: 1}); err == nil {
		t.Error("unknown impl accepted")
	}
}

func TestMeasureCI(t *testing.T) {
	c := Config{Kind: KindCounter, Impl: ImplCommute, Threads: 2, Ops: 2_000, Cells: 1, Seed: 3}
	results, mean, ci, err := Measure(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || mean <= 0 || ci < 0 {
		t.Errorf("Measure: %d results, mean %v, ci %v", len(results), mean, ci)
	}
	// Seeds must differ per rep so the CI reflects real variation.
	if results[0].Seed == results[1].Seed {
		t.Error("reps share a seed")
	}
}

func TestDefaultThreads(t *testing.T) {
	got := DefaultThreads(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("DefaultThreads(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DefaultThreads(8) = %v, want %v", got, want)
		}
	}
	if got := DefaultThreads(12); got[len(got)-1] != 12 {
		t.Errorf("DefaultThreads(12) = %v, want trailing 12", got)
	}
}
