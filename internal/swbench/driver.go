package swbench

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/pkg/commute"
)

// Driver is one implementation under test, decoupled from how updates
// reach it: the in-process drivers below call pkg/commute (or a baseline)
// directly, the HTTP driver ships the same traffic to a coupd server in
// batched requests. Run builds one Driver per measured run and asks it for
// one Worker per goroutine.
type Driver interface {
	// Worker returns the handle goroutine id drives its share of the
	// traffic through. Workers are not safe for concurrent use; distinct
	// workers are.
	Worker(id int) Worker
	// Total reduces the driven structures and returns the number of
	// updates applied through this driver instance (for drivers over
	// pre-existing state, the delta since construction), so Run can check
	// equivalence against the op count it issued.
	Total() (uint64, error)
	// Close releases driver resources after Total has been read.
	Close() error
}

// Worker is one goroutine's handle on a Driver. Update and Read mirror
// the simulator workloads' op mix; Flush commits any client-side buffered
// updates and is called once per worker inside the timed region, after
// its last Update.
type Worker interface {
	Update(cell int)
	Read(cell int) uint64
	Flush() error
}

// DriverMaker builds the Driver for one Run. cells is the resolved target
// count (Config.Cells for counters, Config.Bins for histograms).
type DriverMaker func(c Config, cells int) (Driver, error)

// Typed errors for implementation and kind lookups, in the pkg/coup
// registry style: match with errors.Is, the message lists what exists.
var (
	// ErrUnknownImpl is returned for implementation names not in Impls.
	ErrUnknownImpl = errors.New("unknown impl")
	// ErrUnknownKind is returned for workload-shape names not in Kinds.
	ErrUnknownKind = errors.New("unknown kind")
)

// ParseImpl resolves an implementation name case-insensitively.
func ParseImpl(s string) (Impl, error) {
	for _, i := range Impls() {
		if strings.EqualFold(s, string(i)) {
			return i, nil
		}
	}
	return "", fmt.Errorf("swbench: %w %q (have: %s)", ErrUnknownImpl, s, joinNames(Impls()))
}

// ParseKind resolves a workload-shape name case-insensitively.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(s, string(k)) {
			return k, nil
		}
	}
	return "", fmt.Errorf("swbench: %w %q (have: %s)", ErrUnknownKind, s, joinNames(Kinds()))
}

func joinNames[T ~string](names []T) string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = string(n)
	}
	return strings.Join(out, ", ")
}

// updater is the in-process form of a driver: one shared structure serves
// every worker directly, so the Worker methods live on the structure
// adapter itself (single dispatch on the hot path) and Flush is a no-op.
type updater interface {
	Worker
	total() uint64
}

// sharedDriver adapts an updater: every worker is the same shared handle.
type sharedDriver struct{ u updater }

func (d sharedDriver) Worker(int) Worker      { return d.u }
func (d sharedDriver) Total() (uint64, error) { return d.u.total(), nil }
func (d sharedDriver) Close() error           { return nil }

// noFlush marks in-process updaters, whose updates are never buffered.
type noFlush struct{}

func (noFlush) Flush() error { return nil }

// newInProcDriver is the default DriverMaker: the pkg/commute structures
// and their conventional baselines, selected by Config.Impl.
func newInProcDriver(c Config, cells int) (Driver, error) {
	switch c.Impl {
	case ImplCommute:
		if c.Kind == KindHist {
			return sharedDriver{&commuteHist{h: commute.MustHistogram(cells)}}, nil
		}
		u := &commuteCells{cs: make([]*commute.Counter, cells)}
		for i := range u.cs {
			u.cs[i] = commute.MustCounter()
		}
		return sharedDriver{u}, nil
	case ImplAtomic:
		if c.Kind == KindHist {
			return sharedDriver{&atomicHist{vs: make([]atomic.Uint64, cells)}}, nil
		}
		return sharedDriver{&atomicCells{vs: make([]padCell, cells)}}, nil
	case ImplMutex:
		return sharedDriver{&mutexCells{vs: make([]uint64, cells)}}, nil
	}
	_, err := ParseImpl(string(c.Impl))
	return nil, err
}

// commuteCells: one sharded counter per cell.
type commuteCells struct {
	noFlush
	cs []*commute.Counter
}

func (u *commuteCells) Update(cell int)      { u.cs[cell].Add(1) }
func (u *commuteCells) Read(cell int) uint64 { return uint64(u.cs[cell].Value()) }
func (u *commuteCells) total() uint64 {
	var s uint64
	for _, c := range u.cs {
		s += uint64(c.Value())
	}
	return s
}

// commuteHist: one sharded histogram.
type commuteHist struct {
	noFlush
	h *commute.Histogram
}

func (u *commuteHist) Update(cell int)      { u.h.Inc(cell) }
func (u *commuteHist) Read(cell int) uint64 { return u.h.Bin(cell) }
func (u *commuteHist) total() uint64 {
	var s uint64
	for _, v := range u.h.Snapshot(nil) {
		s += v
	}
	return s
}

// padCell pads counter-kind atomic cells to a line each (distinct
// counters should contend only when traffic collides, as in the
// simulator's one-counter-per-line layout); histogram-kind baselines
// deliberately stay packed, sharing lines like the real shared array.
type padCell struct {
	v atomic.Uint64
	_ [56]byte
}

type atomicCells struct {
	noFlush
	vs []padCell
}

func (u *atomicCells) Update(cell int)      { u.vs[cell].v.Add(1) }
func (u *atomicCells) Read(cell int) uint64 { return u.vs[cell].v.Load() }
func (u *atomicCells) total() uint64 {
	var s uint64
	for i := range u.vs {
		s += u.vs[i].v.Load()
	}
	return s
}

// atomicHist is the packed shared histogram updated with atomic adds —
// bins share cache lines, exactly like the OpenCV/TBB shared array the
// paper's MESI baseline models.
type atomicHist struct {
	noFlush
	vs []atomic.Uint64
}

func (u *atomicHist) Update(cell int)      { u.vs[cell].Add(1) }
func (u *atomicHist) Read(cell int) uint64 { return u.vs[cell].Load() }
func (u *atomicHist) total() uint64 {
	var s uint64
	for i := range u.vs {
		s += u.vs[i].Load()
	}
	return s
}

type mutexCells struct {
	noFlush
	mu sync.Mutex
	vs []uint64
}

func (u *mutexCells) Update(cell int) {
	u.mu.Lock()
	u.vs[cell]++
	u.mu.Unlock()
}

func (u *mutexCells) Read(cell int) uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.vs[cell]
}

func (u *mutexCells) total() uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	var s uint64
	for _, v := range u.vs {
		s += v
	}
	return s
}
