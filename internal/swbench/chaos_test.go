package swbench

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/pkg/coupd"
)

// chaosSeed picks the fault-injection seed: pinned in short mode (the
// PR-gate smoke must be reproducible byte for byte), randomized in full
// runs (the nightly pass walks fresh fault placements), overridable
// with CHAOS_SEED for replaying a failure.
func chaosSeed(t *testing.T) uint64 {
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", env, err)
		}
		t.Logf("chaos seed %d (from CHAOS_SEED)", seed)
		return seed
	}
	if testing.Short() {
		t.Log("chaos seed 3_14159 (pinned, -short)")
		return 3_14159
	}
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		t.Fatal(err)
	}
	seed := binary.LittleEndian.Uint64(b[:])
	t.Logf("chaos seed %d (randomized; replay with CHAOS_SEED=%d)", seed, seed)
	return seed
}

func isDrained(err error) bool {
	var re *coupd.RemoteError
	return errors.As(err, &re) && re.Status == http.StatusServiceUnavailable
}

// TestChaosEquivalence is the capstone: 8 concurrent sequenced writers
// push batches through a transport injecting ~20% faults (lost acks,
// dropped sends, resets, truncation, fake 500s) into a server that also
// panics every ~100th apply and stalls every ~50th reduce, while
// snapshot readers race the write storm and a Drain fires mid-run.
// Exactly-once must hold to the update: the final server-side reduction
// equals the client-acked total, exactly.
func TestChaosEquivalence(t *testing.T) {
	seed := chaosSeed(t)

	const (
		writers   = 8
		batchSize = 5
		batches   = 60 // per writer, upper bound — Drain cuts it short
	)

	srv, err := coupd.New(
		coupd.WithApplyHook(faultnet.PanicEvery(101)),
		coupd.WithReduceHook(faultnet.StallEvery(50, 200*time.Microsecond)),
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ft := faultnet.New(seed,
		faultnet.WithInner(http.DefaultTransport),
		faultnet.WithRate(0.2),
		faultnet.WithFilter(faultnet.WritesOnly),
		faultnet.WithDelay(500*time.Microsecond),
	)
	cl := coupd.NewClient(ts.URL,
		coupd.WithHTTPClient(ft.Client()),
		coupd.WithBackoff(500*time.Microsecond, 8*time.Millisecond),
		coupd.WithRetryBudget(30*time.Second),
	)

	var (
		ackedTotal atomic.Int64 // updates acked across all writers
		wg         sync.WaitGroup
		stop       = make(chan struct{}) // closed when writers finish
	)

	// Mid-storm Drain: fires once the writers have acked half their
	// planned updates, so the storm is provably in full swing.
	drainAt := int64(writers * batches * batchSize / 2)
	drained := make(chan error, 1)
	go func() {
		for {
			if ackedTotal.Load() >= drainAt {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				drained <- srv.Drain(ctx)
				return
			}
			select {
			case <-stop:
				drained <- fmt.Errorf("writers finished before the drain threshold")
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()

	// Racing readers: hammer the reduce path (single and bulk) with a
	// clean transport until the writers are done. Any non-2xx/404 is a
	// failure — the read plane must stay up through faults and drain.
	readerErr := make(chan error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(bulk bool) {
			defer wg.Done()
			url := ts.URL + "/v1/snapshot/chaos"
			if bulk {
				url = ts.URL + "/v1/snapshot"
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					readerErr <- err
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					readerErr <- fmt.Errorf("reader: %s: HTTP %d", url, resp.StatusCode)
					resp.Body.Close()
					return
				}
				json.NewDecoder(resp.Body).Decode(new(any))
				resp.Body.Close()
			}
		}(r == 0)
	}

	writerWg := sync.WaitGroup{}
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			sess := cl.Session("chaos-w" + strconv.Itoa(w))
			batch := make([]coupd.Update, batchSize)
			for i := range batch {
				batch[i] = coupd.Update{Name: "chaos", Kind: "counter", Op: "inc"}
			}
			for b := 0; b < batches; b++ {
				res, err := sess.Send(context.Background(), batch)
				if err != nil {
					if isDrained(err) {
						return // cleanly rejected, unacked: not counted
					}
					t.Errorf("writer %d batch %d: %v", w, b, err)
					return
				}
				if res.Applied != batchSize {
					t.Errorf("writer %d batch %d: acked %d of %d records", w, b, res.Applied, batchSize)
					return
				}
				ackedTotal.Add(int64(res.Applied))
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The equivalence: server-side reduction == client-acked total. Not
	// approximately — exactly, or exactly-once is broken somewhere.
	resp, err := http.Get(ts.URL + "/v1/snapshot/chaos")
	if err != nil {
		t.Fatal(err)
	}
	var snap coupd.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	acked := ackedTotal.Load()
	if snap.Value != acked {
		t.Errorf("server total %d != client-acked total %d (seed %d)", snap.Value, acked, seed)
	}
	t.Logf("equivalence: %d updates acked == %d applied; faultnet: %s", acked, snap.Value, ft.Stats())

	// The run must actually have been a storm: >= 10% of write requests
	// faulted (rate is 20%; 10% is a generous statistical floor), and the
	// drain fired mid-run (some writer was cut short).
	if reqs, inj := ft.Requests(), ft.Injected(); inj*10 < reqs {
		t.Errorf("only %d/%d requests faulted, want >= 10%%", inj, reqs)
	}
	if acked >= writers*batches*batchSize {
		t.Error("drain never interrupted the storm: every planned batch was acked")
	}

	var st coupd.Stats
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if st.Replays == 0 {
		t.Error("no replays recorded — the fault mix never forced a retry of a delivered batch?")
	}
	if st.Panics == 0 {
		t.Error("no recovered panics — the apply hook never fired?")
	}
	t.Logf("server stats: sessions=%d dedup_hits=%d replays=%d panics=%d updates=%d",
		st.Sessions, st.DedupHits, st.Replays, st.Panics, st.Updates)
}

// TestHTTPDriverChaosEquivalence runs the stock swbench closed loop —
// whose Run() already asserts total == threads*ops exactly — with the
// chaos transport underneath the HTTP driver: the benchmark rig itself
// is fault-tolerant now, losing and duplicating nothing.
func TestHTTPDriverChaosEquivalence(t *testing.T) {
	seed := chaosSeed(t)
	srv, err := coupd.New()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ft := faultnet.New(seed,
		faultnet.WithInner(http.DefaultTransport),
		faultnet.WithRate(0.15),
		faultnet.WithFilter(faultnet.WritesOnly),
		faultnet.WithDelay(500*time.Microsecond),
	)
	res, err := Run(Config{
		Kind:    KindCounter,
		Threads: 8,
		Ops:     400,
		Cells:   4,
		Seed:    seed,
		NewDriver: HTTPDriver(ts.URL, 16, ft.Client(),
			HTTPClientOptions(coupd.WithBackoff(500*time.Microsecond, 8*time.Millisecond))),
	})
	if err != nil {
		t.Fatalf("chaos run: %v (seed %d, faultnet: %s)", err, seed, ft.Stats())
	}
	if res.Total != 8*400 {
		t.Errorf("total %d != %d (seed %d)", res.Total, 8*400, seed)
	}
	if ft.Injected() == 0 {
		t.Error("no faults injected — the chaos transport never fired")
	}
	t.Logf("driver chaos run: total=%d, faultnet: %s", res.Total, ft.Stats())
}
