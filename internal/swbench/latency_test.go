package swbench

import "testing"

func TestRunRecordsLatency(t *testing.T) {
	res, err := Run(Config{
		Kind: KindCounter, Impl: ImplCommute,
		Threads: 2, Ops: 5000, Cells: 4, Seed: 1,
		RecordLatency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 2*5000 {
		t.Fatalf("Total = %d, want %d", res.Total, 2*5000)
	}
	if res.LatMaxNs <= 0 {
		t.Errorf("LatMaxNs = %v, want > 0", res.LatMaxNs)
	}
	if res.LatP50Ns <= 0 || res.LatP50Ns > res.LatMaxNs {
		t.Errorf("LatP50Ns = %v outside (0, max=%v]", res.LatP50Ns, res.LatMaxNs)
	}
	if res.LatP99Ns < res.LatP50Ns || res.LatP99Ns > res.LatMaxNs {
		t.Errorf("quantiles not ordered: p50=%v p99=%v max=%v", res.LatP50Ns, res.LatP99Ns, res.LatMaxNs)
	}
}

func TestRunWithoutLatencyLeavesZeros(t *testing.T) {
	res, err := Run(Config{
		Kind: KindCounter, Impl: ImplCommute,
		Threads: 1, Ops: 1000, Cells: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LatP50Ns != 0 || res.LatP99Ns != 0 || res.LatMaxNs != 0 {
		t.Errorf("latency fields populated without RecordLatency: %+v", res)
	}
}
