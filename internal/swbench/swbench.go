// Package swbench is the software-side benchmark harness shared by
// cmd/commutebench, cmd/coupload and the "figsw"/"figsvc" experiments: it
// drives commutative-update implementations with the same workload shapes
// the simulator runs — contended counters and histograms under
// Zipf-skewed traffic — and reports wall-clock throughput. Where pkg/coup
// measures simulated cycles, swbench measures the real machine; the two
// sides of the repo's hardware-vs-simulation cross-validation.
//
// The traffic shapes are decoupled from what they drive: Run generates
// each goroutine's target sequence, then pushes it through a Driver — by
// default the in-process pkg/commute structures and their atomic/mutex
// baselines, or (via Config.NewDriver) any other transport, such as the
// batched HTTP driver that turns this package into a closed-loop load
// generator for the coupd service.
package swbench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/pkg/obs"
)

// Impl selects the implementation under test.
type Impl string

const (
	// ImplCommute uses the pkg/commute sharded structures (software COUP).
	ImplCommute Impl = "commute"
	// ImplAtomic uses one shared word per cell updated with sync/atomic
	// RMWs — the MESI-atomics baseline.
	ImplAtomic Impl = "atomic"
	// ImplMutex guards the shared state with one sync.Mutex — the
	// pessimistic software baseline.
	ImplMutex Impl = "mutex"
)

// Impls lists the implementations in comparison order.
func Impls() []Impl { return []Impl{ImplCommute, ImplAtomic, ImplMutex} }

// Kind selects the workload shape.
type Kind string

const (
	// KindCounter updates Cells shared counters (Cells=1 is the paper's
	// Fig 1 maximally-contended counter).
	KindCounter Kind = "counter"
	// KindHist updates one shared histogram of Bins buckets (the Fig 2
	// shape).
	KindHist Kind = "hist"
)

// Kinds lists the workload shapes.
func Kinds() []Kind { return []Kind{KindCounter, KindHist} }

// Config describes one measured run.
type Config struct {
	Kind    Kind
	Impl    Impl
	Threads int // goroutines; GOMAXPROCS is not changed by the harness
	Ops     int // updates per goroutine
	Cells   int // counters for KindCounter (>= 1)
	Bins    int // buckets for KindHist (>= 1)
	// ZipfS skews target selection: > 1 draws cells/bins from a Zipf
	// distribution with exponent s (P(k) ∝ (1+k)^-s, so larger s = more
	// skew toward cell 0); <= 1 selects uniformly. 1.07 approximates
	// typical hot-key traffic.
	ZipfS float64
	// ReadEvery folds a reduce-on-read into the stream every N updates
	// (0 = update-only), pricing COUP's read path.
	ReadEvery int
	Seed      uint64
	// NewDriver overrides what the traffic drives. Nil selects the
	// in-process implementation named by Impl; cmd/coupload installs the
	// batched HTTP driver here.
	NewDriver DriverMaker `json:"-"`
	// RecordLatency times every Update call into a shared obs log2
	// histogram so the Result carries p50/p99/max alongside throughput.
	// Off by default: the two time.Now calls per op are noise for
	// nanosecond-scale in-process drivers, but cheap next to an RPC —
	// cmd/coupload turns this on. For batched transports the op that
	// triggers a flush absorbs the round-trip, so the tail quantiles
	// surface the RPC cost the mean hides.
	RecordLatency bool
}

// Result is one measured run.
type Result struct {
	Config
	Elapsed    time.Duration
	NsPerOp    float64
	MOpsPerSec float64
	// Total is the final reduced sum over all cells/bins, for validation:
	// it must equal Threads*Ops regardless of implementation.
	Total uint64
	// Per-update-call latency quantiles in nanoseconds, populated only
	// when Config.RecordLatency is set (p50/p99 interpolated within log2
	// buckets, max exact).
	LatP50Ns float64
	LatP99Ns float64
	LatMaxNs float64
}

// Run executes one configuration and returns its measurement. The target
// sequences are pre-generated outside the timed region so the loop
// measures only the update path, and every goroutine starts on a common
// barrier; each goroutine's final Flush (for drivers that buffer
// client-side) is inside the timed region, so batched transports pay for
// delivery. It returns an error if the driver's final reduction does not
// equal the number of updates issued (an equivalence failure).
func Run(c Config) (Result, error) {
	if c.Threads < 1 || c.Ops < 1 {
		return Result{}, fmt.Errorf("swbench: need threads >= 1 and ops >= 1, got %d, %d", c.Threads, c.Ops)
	}
	cells := c.Cells
	if c.Kind == KindHist {
		cells = c.Bins
	}
	if cells < 1 {
		cells = 1
	}
	targets := genTargets(c, cells)
	mk := c.NewDriver
	if mk == nil {
		mk = newInProcDriver
	}
	d, err := mk(c, cells)
	if err != nil {
		return Result{}, err
	}
	defer d.Close()

	workers := make([]Worker, c.Threads)
	for t := range workers {
		workers[t] = d.Worker(t)
	}
	var lat *obs.Histogram
	if c.RecordLatency {
		lat = obs.NewHistogram(latencyBins)
	}
	flushErrs := make([]error, c.Threads)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for t := 0; t < c.Threads; t++ {
		wg.Add(1)
		go func(w Worker, seq []uint32, errp *error) {
			defer wg.Done()
			<-start
			switch {
			case lat != nil:
				// Latency-recording variant: the histogram writes are the
				// sharded update-only path, so timing N workers into one
				// histogram adds no cross-worker contention.
				for i, cell := range seq {
					u0 := time.Now()
					w.Update(int(cell))
					lat.Observe(time.Since(u0).Nanoseconds())
					if c.ReadEvery > 0 && (i+1)%c.ReadEvery == 0 {
						w.Read(int(cell))
					}
				}
			case c.ReadEvery > 0:
				for i, cell := range seq {
					w.Update(int(cell))
					if (i+1)%c.ReadEvery == 0 {
						w.Read(int(cell))
					}
				}
			default:
				for _, cell := range seq {
					w.Update(int(cell))
				}
			}
			*errp = w.Flush()
		}(workers[t], targets[t], &flushErrs[t])
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	for t, ferr := range flushErrs {
		if ferr != nil {
			return Result{}, fmt.Errorf("swbench: worker %d flush: %w", t, ferr)
		}
	}
	total, err := d.Total()
	if err != nil {
		return Result{}, fmt.Errorf("swbench: total: %w", err)
	}
	want := uint64(c.Threads * c.Ops)
	if total != want {
		return Result{}, fmt.Errorf("swbench: %s/%s reduced to %d updates, want %d", c.Kind, c.Impl, total, want)
	}
	ops := float64(want)
	res := Result{
		Config:     c,
		Elapsed:    elapsed,
		NsPerOp:    float64(elapsed.Nanoseconds()) / ops,
		MOpsPerSec: ops / elapsed.Seconds() / 1e6,
		Total:      total,
	}
	if lat != nil {
		var s obs.HistSnapshot
		lat.Snapshot(&s)
		res.LatP50Ns = s.Quantile(0.50)
		res.LatP99Ns = s.Quantile(0.99)
		res.LatMaxNs = float64(s.Max)
	}
	return res, nil
}

// latencyBins spans 1ns to ~2s in log2 buckets, the full range a single
// update call (buffered append through blocking RPC) can take.
const latencyBins = 32

// Measure runs the configuration reps times (varying the seed) and
// returns the per-rep results plus the mean and CI95 half-width of
// ns/op, the same mean±CI reporting the simulator harness uses.
func Measure(c Config, reps int) (results []Result, meanNs, ci95 float64, err error) {
	if reps < 1 {
		reps = 1
	}
	// One untimed warmup at reduced size settles allocator and scheduler
	// state, which otherwise dominates the first rep's measurement.
	warm := c
	if warm.Ops > 1_000 {
		warm.Ops = 1_000
	}
	if _, werr := Run(warm); werr != nil {
		return nil, 0, 0, werr
	}
	ns := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		rc := c
		rc.Seed = c.Seed + uint64(r)
		res, rerr := Run(rc)
		if rerr != nil {
			return nil, 0, 0, rerr
		}
		results = append(results, res)
		ns = append(ns, res.NsPerOp)
	}
	return results, stats.Mean(ns), stats.CI95(ns), nil
}

// genTargets pre-draws each goroutine's cell sequence. Zipf skew uses
// math/rand's generator (rand/v2 has no Zipf); determinism per
// (seed, thread) keeps reruns comparable.
func genTargets(c Config, cells int) [][]uint32 {
	out := make([][]uint32, c.Threads)
	for t := range out {
		seq := make([]uint32, c.Ops)
		if cells > 1 {
			rng := rand.New(rand.NewSource(int64(c.Seed) + int64(t)*7919 + 1))
			if c.ZipfS > 1 {
				z := rand.NewZipf(rng, c.ZipfS, 1, uint64(cells-1))
				for i := range seq {
					seq[i] = uint32(z.Uint64())
				}
			} else {
				for i := range seq {
					seq[i] = uint32(rng.Intn(cells))
				}
			}
		}
		out[t] = seq
	}
	return out
}

// DefaultThreads returns the thread sweep 1,2,4,... capped at max (and at
// least reaching GOMAXPROCS, the point the -cpu axis of the package
// benchmarks sweeps to).
func DefaultThreads(max int) []int {
	if max < 1 {
		max = runtime.GOMAXPROCS(0)
		if max < 8 {
			max = 8
		}
	}
	var out []int
	for t := 1; t <= max; t *= 2 {
		out = append(out, t)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
