// Package swbench is the software-side benchmark harness shared by
// cmd/commutebench and the "figsw" experiment: it drives the pkg/commute
// structures and their conventional counterparts (a shared atomic, a
// mutex) with the same workload shapes the simulator runs — contended
// counters and histograms under Zipf-skewed traffic — and reports
// wall-clock throughput. Where pkg/coup measures simulated cycles,
// swbench measures the real machine; the two sides of the repo's
// hardware-vs-simulation cross-validation.
package swbench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/pkg/commute"
)

// Impl selects the implementation under test.
type Impl string

const (
	// ImplCommute uses the pkg/commute sharded structures (software COUP).
	ImplCommute Impl = "commute"
	// ImplAtomic uses one shared word per cell updated with sync/atomic
	// RMWs — the MESI-atomics baseline.
	ImplAtomic Impl = "atomic"
	// ImplMutex guards the shared state with one sync.Mutex — the
	// pessimistic software baseline.
	ImplMutex Impl = "mutex"
)

// Impls lists the implementations in comparison order.
func Impls() []Impl { return []Impl{ImplCommute, ImplAtomic, ImplMutex} }

// Kind selects the workload shape.
type Kind string

const (
	// KindCounter updates Cells shared counters (Cells=1 is the paper's
	// Fig 1 maximally-contended counter).
	KindCounter Kind = "counter"
	// KindHist updates one shared histogram of Bins buckets (the Fig 2
	// shape).
	KindHist Kind = "hist"
)

// Kinds lists the workload shapes.
func Kinds() []Kind { return []Kind{KindCounter, KindHist} }

// Config describes one measured run.
type Config struct {
	Kind    Kind
	Impl    Impl
	Threads int // goroutines; GOMAXPROCS is not changed by the harness
	Ops     int // updates per goroutine
	Cells   int // counters for KindCounter (>= 1)
	Bins    int // buckets for KindHist (>= 1)
	// ZipfS skews target selection: > 1 draws cells/bins from a Zipf
	// distribution with exponent s (P(k) ∝ (1+k)^-s, so larger s = more
	// skew toward cell 0); <= 1 selects uniformly. 1.07 approximates
	// typical hot-key traffic.
	ZipfS float64
	// ReadEvery folds a reduce-on-read into the stream every N updates
	// (0 = update-only), pricing COUP's read path.
	ReadEvery int
	Seed      uint64
}

// Result is one measured run.
type Result struct {
	Config
	Elapsed    time.Duration
	NsPerOp    float64
	MOpsPerSec float64
	// Total is the final reduced sum over all cells/bins, for validation:
	// it must equal Threads*Ops regardless of implementation.
	Total uint64
}

// Run executes one configuration and returns its measurement. The target
// sequences are pre-generated outside the timed region so the loop
// measures only the update path, and every goroutine starts on a common
// barrier. It returns an error if the final reduction does not equal the
// number of updates issued (an equivalence failure).
func Run(c Config) (Result, error) {
	if c.Threads < 1 || c.Ops < 1 {
		return Result{}, fmt.Errorf("swbench: need threads >= 1 and ops >= 1, got %d, %d", c.Threads, c.Ops)
	}
	cells := c.Cells
	if c.Kind == KindHist {
		cells = c.Bins
	}
	if cells < 1 {
		cells = 1
	}
	targets := genTargets(c, cells)
	u, err := newUpdater(c, cells)
	if err != nil {
		return Result{}, err
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for t := 0; t < c.Threads; t++ {
		wg.Add(1)
		go func(seq []uint32) {
			defer wg.Done()
			<-start
			if c.ReadEvery > 0 {
				for i, cell := range seq {
					u.update(int(cell))
					if (i+1)%c.ReadEvery == 0 {
						u.read(int(cell))
					}
				}
				return
			}
			for _, cell := range seq {
				u.update(int(cell))
			}
		}(targets[t])
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	total := u.total()
	want := uint64(c.Threads * c.Ops)
	if total != want {
		return Result{}, fmt.Errorf("swbench: %s/%s reduced to %d updates, want %d", c.Kind, c.Impl, total, want)
	}
	ops := float64(want)
	return Result{
		Config:     c,
		Elapsed:    elapsed,
		NsPerOp:    float64(elapsed.Nanoseconds()) / ops,
		MOpsPerSec: ops / elapsed.Seconds() / 1e6,
		Total:      total,
	}, nil
}

// Measure runs the configuration reps times (varying the seed) and
// returns the per-rep results plus the mean and CI95 half-width of
// ns/op, the same mean±CI reporting the simulator harness uses.
func Measure(c Config, reps int) (results []Result, meanNs, ci95 float64, err error) {
	if reps < 1 {
		reps = 1
	}
	// One untimed warmup at reduced size settles allocator and scheduler
	// state, which otherwise dominates the first rep's measurement.
	warm := c
	if warm.Ops > 1_000 {
		warm.Ops = 1_000
	}
	if _, werr := Run(warm); werr != nil {
		return nil, 0, 0, werr
	}
	ns := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		rc := c
		rc.Seed = c.Seed + uint64(r)
		res, rerr := Run(rc)
		if rerr != nil {
			return nil, 0, 0, rerr
		}
		results = append(results, res)
		ns = append(ns, res.NsPerOp)
	}
	return results, stats.Mean(ns), stats.CI95(ns), nil
}

// genTargets pre-draws each goroutine's cell sequence. Zipf skew uses
// math/rand's generator (rand/v2 has no Zipf); determinism per
// (seed, thread) keeps reruns comparable.
func genTargets(c Config, cells int) [][]uint32 {
	out := make([][]uint32, c.Threads)
	for t := range out {
		seq := make([]uint32, c.Ops)
		if cells > 1 {
			rng := rand.New(rand.NewSource(int64(c.Seed) + int64(t)*7919 + 1))
			if c.ZipfS > 1 {
				z := rand.NewZipf(rng, c.ZipfS, 1, uint64(cells-1))
				for i := range seq {
					seq[i] = uint32(z.Uint64())
				}
			} else {
				for i := range seq {
					seq[i] = uint32(rng.Intn(cells))
				}
			}
		}
		out[t] = seq
	}
	return out
}

// updater is one implementation of the update/read/total triple.
type updater interface {
	update(cell int)
	read(cell int) uint64
	total() uint64
}

func newUpdater(c Config, cells int) (updater, error) {
	switch c.Impl {
	case ImplCommute:
		if c.Kind == KindHist {
			return &commuteHist{h: commute.MustHistogram(cells)}, nil
		}
		u := &commuteCells{cs: make([]*commute.Counter, cells)}
		for i := range u.cs {
			u.cs[i] = commute.MustCounter()
		}
		return u, nil
	case ImplAtomic:
		if c.Kind == KindHist {
			return &atomicHist{vs: make([]atomic.Uint64, cells)}, nil
		}
		return &atomicCells{vs: make([]padCell, cells)}, nil
	case ImplMutex:
		return &mutexCells{vs: make([]uint64, cells)}, nil
	}
	return nil, fmt.Errorf("swbench: unknown impl %q (have: commute, atomic, mutex)", c.Impl)
}

// commuteCells: one sharded counter per cell.
type commuteCells struct{ cs []*commute.Counter }

func (u *commuteCells) update(cell int)      { u.cs[cell].Add(1) }
func (u *commuteCells) read(cell int) uint64 { return uint64(u.cs[cell].Value()) }
func (u *commuteCells) total() uint64 {
	var s uint64
	for _, c := range u.cs {
		s += uint64(c.Value())
	}
	return s
}

// commuteHist: one sharded histogram.
type commuteHist struct{ h *commute.Histogram }

func (u *commuteHist) update(cell int)      { u.h.Inc(cell) }
func (u *commuteHist) read(cell int) uint64 { return u.h.Bin(cell) }
func (u *commuteHist) total() uint64 {
	var s uint64
	for _, v := range u.h.Snapshot(nil) {
		s += v
	}
	return s
}

// padCell pads counter-kind atomic cells to a line each (distinct
// counters should contend only when traffic collides, as in the
// simulator's one-counter-per-line layout); histogram-kind baselines
// deliberately stay packed, sharing lines like the real shared array.
type padCell struct {
	v atomic.Uint64
	_ [56]byte
}

type atomicCells struct{ vs []padCell }

func (u *atomicCells) update(cell int)      { u.vs[cell].v.Add(1) }
func (u *atomicCells) read(cell int) uint64 { return u.vs[cell].v.Load() }
func (u *atomicCells) total() uint64 {
	var s uint64
	for i := range u.vs {
		s += u.vs[i].v.Load()
	}
	return s
}

// atomicHist is the packed shared histogram updated with atomic adds —
// bins share cache lines, exactly like the OpenCV/TBB shared array the
// paper's MESI baseline models.
type atomicHist struct{ vs []atomic.Uint64 }

func (u *atomicHist) update(cell int)      { u.vs[cell].Add(1) }
func (u *atomicHist) read(cell int) uint64 { return u.vs[cell].Load() }
func (u *atomicHist) total() uint64 {
	var s uint64
	for i := range u.vs {
		s += u.vs[i].Load()
	}
	return s
}

type mutexCells struct {
	mu sync.Mutex
	vs []uint64
}

func (u *mutexCells) update(cell int) {
	u.mu.Lock()
	u.vs[cell]++
	u.mu.Unlock()
}

func (u *mutexCells) read(cell int) uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.vs[cell]
}

func (u *mutexCells) total() uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	var s uint64
	for _, v := range u.vs {
		s += v
	}
	return s
}

// DefaultThreads returns the thread sweep 1,2,4,... capped at max (and at
// least reaching GOMAXPROCS, the point the -cpu axis of the package
// benchmarks sweeps to).
func DefaultThreads(max int) []int {
	if max < 1 {
		max = runtime.GOMAXPROCS(0)
		if max < 8 {
			max = 8
		}
	}
	var out []int
	for t := 1; t <= max; t *= 2 {
		out = append(out, t)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
