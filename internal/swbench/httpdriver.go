package swbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/pkg/coupd"
)

// HTTPDriver returns a DriverMaker that ships the traffic to a coupd
// server at baseURL as batched POST /v1/batch requests of batch records
// each — the closed-loop load-generator transport. Counter cells map to
// coupd counters "swc<i>", the histogram to one coupd histogram "swh";
// Total is measured as the delta of the server-side reduction across the
// run, so repeated runs against one server (and its accumulated state)
// still validate exactly.
//
// A nil client gets a transport sized for one keep-alive connection per
// worker. On 429 the worker backs off (jittered milliseconds, the
// header's whole-second Retry-After being a ceiling) and retries the
// same batch, so saturation throttles the closed loop instead of losing
// updates.
func HTTPDriver(baseURL string, batch int, client *http.Client) DriverMaker {
	return func(c Config, cells int) (Driver, error) {
		if batch < 1 {
			return nil, fmt.Errorf("swbench: http driver needs batch >= 1, got %d", batch)
		}
		if client == nil {
			client = &http.Client{
				Transport: &http.Transport{
					MaxIdleConns:        c.Threads + 2,
					MaxIdleConnsPerHost: c.Threads + 2,
				},
				Timeout: 30 * time.Second,
			}
		}
		d := &httpDriver{
			base:   strings.TrimRight(baseURL, "/"),
			client: client,
			batch:  batch,
			kind:   c.Kind,
			bins:   cells,
		}
		if c.Kind == KindHist {
			d.names = []string{"swh"}
		} else {
			d.names = make([]string, cells)
			for i := range d.names {
				d.names[i] = "swc" + strconv.Itoa(i)
			}
		}
		// Baseline the server-side totals so Total reports this run's delta.
		base, err := d.reduce()
		if err != nil {
			return nil, err
		}
		d.baseTotal = base
		return d, nil
	}
}

type httpDriver struct {
	base      string
	client    *http.Client
	batch     int
	kind      Kind
	names     []string
	bins      int
	baseTotal uint64
}

func (d *httpDriver) Worker(id int) Worker {
	w := &httpWorker{d: d}
	w.buf = make([]coupd.Update, 0, d.batch)
	return w
}

func (d *httpDriver) Total() (uint64, error) {
	now, err := d.reduce()
	if err != nil {
		return 0, err
	}
	return now - d.baseTotal, nil
}

func (d *httpDriver) Close() error {
	d.client.CloseIdleConnections()
	return nil
}

// reduce sums the server-side reductions over the driven structures.
// Structures the server has never seen count zero (first runs start from
// nothing).
func (d *httpDriver) reduce() (uint64, error) {
	var sum uint64
	for _, name := range d.names {
		snap, status, err := d.snapshot(name)
		if err != nil {
			return 0, err
		}
		if status == http.StatusNotFound {
			continue
		}
		if status != http.StatusOK {
			return 0, fmt.Errorf("swbench: snapshot %s: HTTP %d", name, status)
		}
		if d.kind == KindHist {
			sum += snap.Total
		} else {
			sum += uint64(snap.Value)
		}
	}
	return sum, nil
}

func (d *httpDriver) snapshot(name string) (coupd.Snapshot, int, error) {
	resp, err := d.client.Get(d.base + "/v1/snapshot/" + name)
	if err != nil {
		return coupd.Snapshot{}, 0, fmt.Errorf("swbench: snapshot %s: %w", name, err)
	}
	defer drainClose(resp.Body)
	var snap coupd.Snapshot
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			return coupd.Snapshot{}, 0, fmt.Errorf("swbench: snapshot %s: %w", name, err)
		}
	}
	return snap, resp.StatusCode, nil
}

// httpWorker buffers one goroutine's updates client-side — its U-state
// buffer — and flushes full batches over its keep-alive connection.
type httpWorker struct {
	d    *httpDriver
	buf  []coupd.Update
	body bytes.Buffer
	err  error
}

func (w *httpWorker) Update(cell int) {
	if w.err != nil {
		return // fail fast; Run surfaces the first error after the loop
	}
	var u coupd.Update
	if w.d.kind == KindHist {
		u = coupd.Update{Name: w.d.names[0], Kind: string(coupd.KindHist), Op: "inc",
			Args: []int64{int64(cell)}, Bins: w.d.bins}
	} else {
		u = coupd.Update{Name: w.d.names[cell], Kind: string(coupd.KindCounter), Op: "inc"}
	}
	w.buf = append(w.buf, u)
	if len(w.buf) >= w.d.batch {
		w.flushBatch()
	}
}

func (w *httpWorker) Read(cell int) uint64 {
	if w.err != nil {
		return 0
	}
	// A read must observe this worker's own prior updates, so deliver the
	// buffered batch first — the U->S downgrade a read forces.
	w.flushBatch()
	name := w.d.names[0]
	if w.d.kind != KindHist {
		name = w.d.names[cell]
	}
	snap, status, err := w.d.snapshot(name)
	if err != nil {
		w.err = err
		return 0
	}
	if status != http.StatusOK {
		w.err = fmt.Errorf("swbench: snapshot %s: HTTP %d", name, status)
		return 0
	}
	if w.d.kind == KindHist {
		if cell < len(snap.Bins) {
			return snap.Bins[cell]
		}
		return 0
	}
	return uint64(snap.Value)
}

func (w *httpWorker) Flush() error {
	if w.err == nil {
		w.flushBatch()
	}
	return w.err
}

// flushBatch POSTs the buffered records, retrying on 429 with a small
// backoff. It records the first hard failure in w.err and drops the
// batch (the run is already invalid at that point).
func (w *httpWorker) flushBatch() {
	if len(w.buf) == 0 || w.err != nil {
		return
	}
	w.body.Reset()
	if err := json.NewEncoder(&w.body).Encode(coupd.BatchRequest{Updates: w.buf}); err != nil {
		w.err = err
		return
	}
	payload := w.body.Bytes()
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		resp, err := w.d.client.Post(w.d.base+"/v1/batch", "application/json", bytes.NewReader(payload))
		if err != nil {
			w.err = fmt.Errorf("swbench: batch: %w", err)
			return
		}
		status := resp.StatusCode
		if status == http.StatusOK {
			var br coupd.BatchResponse
			err := json.NewDecoder(resp.Body).Decode(&br)
			drainClose(resp.Body)
			if err != nil {
				w.err = fmt.Errorf("swbench: batch response: %w", err)
			} else if br.Applied != len(w.buf) {
				w.err = fmt.Errorf("swbench: batch applied %d of %d records", br.Applied, len(w.buf))
			}
			w.buf = w.buf[:0]
			return
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		drainClose(resp.Body)
		if status != http.StatusTooManyRequests || attempt >= 10_000 {
			w.err = fmt.Errorf("swbench: batch: HTTP %d: %s", status, bytes.TrimSpace(msg))
			return
		}
		// Saturated: hold the batch in our buffer and retry. The server's
		// Retry-After is whole seconds; a closed-loop rig recovers much
		// sooner, so back off in milliseconds up to that ceiling.
		time.Sleep(backoff)
		if backoff < 32*time.Millisecond {
			backoff *= 2
		}
	}
}

func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}
