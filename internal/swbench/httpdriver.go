package swbench

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/pkg/coupd"
)

// httpDriverSeq distinguishes driver instances that share a process (a
// Measure run builds one driver per rep against the same server); it
// joins a random nonce in the dedup client IDs so seqs never collide.
var httpDriverSeq atomic.Uint64

// HTTPOption tunes the HTTP driver beyond its required arguments.
type HTTPOption func(*httpConfig)

type httpConfig struct {
	budget time.Duration
	clOpts []coupd.ClientOption
}

// HTTPRetryBudget caps how long one batch keeps retrying before the
// worker gives up and fails the run (default 30s — far above any
// transient saturation or injected-fault stretch, far below a hung rig).
func HTTPRetryBudget(d time.Duration) HTTPOption {
	return func(c *httpConfig) { c.budget = d }
}

// HTTPClientOptions forwards extra options to the underlying
// coupd.Client (backoff shape, jitter source — chaos tests pin these).
func HTTPClientOptions(opts ...coupd.ClientOption) HTTPOption {
	return func(c *httpConfig) { c.clOpts = append(c.clOpts, opts...) }
}

// HTTPDriver returns a DriverMaker that ships the traffic to a coupd
// server at baseURL as batched POST /v1/batch requests of batch records
// each — the closed-loop load-generator transport. Counter cells map to
// coupd counters "swc<i>", the histogram to one coupd histogram "swh";
// Total is measured as the delta of the server-side reduction across the
// run, so repeated runs against one server (and its accumulated state)
// still validate exactly.
//
// Every worker writes through its own coupd dedup session (a unique
// client ID plus a per-batch seq), so delivery is exactly once: the
// coupd.Client underneath retries transport errors, truncated
// responses, 5xx, and 429 saturation with capped full-jitter
// exponential backoff (429s floored by the server's Retry-After-Ms
// hint), and a retried batch that already landed is answered from the
// server's session table instead of double-applying. Saturation
// throttles the closed loop; faults never lose or duplicate updates.
//
// A nil client gets a transport sized for one keep-alive connection per
// worker.
func HTTPDriver(baseURL string, batch int, client *http.Client, opts ...HTTPOption) DriverMaker {
	return func(c Config, cells int) (Driver, error) {
		if batch < 1 {
			return nil, fmt.Errorf("swbench: http driver needs batch >= 1, got %d", batch)
		}
		cfg := httpConfig{budget: 30 * time.Second}
		for _, opt := range opts {
			if opt != nil {
				opt(&cfg)
			}
		}
		if client == nil {
			client = &http.Client{
				Transport: &http.Transport{
					MaxIdleConns:        c.Threads + 2,
					MaxIdleConnsPerHost: c.Threads + 2,
				},
				Timeout: 30 * time.Second,
			}
		}
		// Client IDs must be unique across every driver that ever talks to
		// this server — a reused ID would resume a stale session at seq 1
		// and have its fresh batches eaten as duplicates. Random nonce plus
		// an in-process instance counter covers both cross-process and
		// same-process (Measure reps) collisions.
		var nonce [8]byte
		if _, err := cryptorand.Read(nonce[:]); err != nil {
			return nil, fmt.Errorf("swbench: client nonce: %w", err)
		}
		clOpts := append([]coupd.ClientOption{
			coupd.WithHTTPClient(client),
			coupd.WithRetryBudget(cfg.budget),
		}, cfg.clOpts...)
		d := &httpDriver{
			base:   strings.TrimRight(baseURL, "/"),
			client: client,
			cl:     coupd.NewClient(strings.TrimRight(baseURL, "/"), clOpts...),
			idBase: fmt.Sprintf("swb-%s-%d", hex.EncodeToString(nonce[:]), httpDriverSeq.Add(1)),
			batch:  batch,
			kind:   c.Kind,
			bins:   cells,
		}
		if c.Kind == KindHist {
			d.names = []string{"swh"}
		} else {
			d.names = make([]string, cells)
			for i := range d.names {
				d.names[i] = "swc" + strconv.Itoa(i)
			}
		}
		// Baseline the server-side totals so Total reports this run's delta.
		base, err := d.reduce()
		if err != nil {
			return nil, err
		}
		d.baseTotal = base
		return d, nil
	}
}

type httpDriver struct {
	base      string
	client    *http.Client
	cl        *coupd.Client
	idBase    string
	batch     int
	kind      Kind
	names     []string
	bins      int
	baseTotal uint64
}

func (d *httpDriver) Worker(id int) Worker {
	w := &httpWorker{
		d:    d,
		sess: d.cl.Session(d.idBase + "-w" + strconv.Itoa(id)),
	}
	w.buf = make([]coupd.Update, 0, d.batch)
	return w
}

func (d *httpDriver) Total() (uint64, error) {
	now, err := d.reduce()
	if err != nil {
		return 0, err
	}
	return now - d.baseTotal, nil
}

func (d *httpDriver) Close() error {
	d.client.CloseIdleConnections()
	return nil
}

// reduce sums the server-side reductions over the driven structures.
// Structures the server has never seen count zero (first runs start from
// nothing).
func (d *httpDriver) reduce() (uint64, error) {
	var sum uint64
	for _, name := range d.names {
		snap, status, err := d.snapshot(name)
		if err != nil {
			return 0, err
		}
		if status == http.StatusNotFound {
			continue
		}
		if status != http.StatusOK {
			return 0, fmt.Errorf("swbench: snapshot %s: HTTP %d", name, status)
		}
		if d.kind == KindHist {
			sum += snap.Total
		} else {
			sum += uint64(snap.Value)
		}
	}
	return sum, nil
}

func (d *httpDriver) snapshot(name string) (coupd.Snapshot, int, error) {
	resp, err := d.client.Get(d.base + "/v1/snapshot/" + name)
	if err != nil {
		return coupd.Snapshot{}, 0, fmt.Errorf("swbench: snapshot %s: %w", name, err)
	}
	defer drainClose(resp.Body)
	var snap coupd.Snapshot
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			return coupd.Snapshot{}, 0, fmt.Errorf("swbench: snapshot %s: %w", name, err)
		}
	}
	return snap, resp.StatusCode, nil
}

// httpWorker buffers one goroutine's updates client-side — its U-state
// buffer — and flushes full batches through its dedup session.
type httpWorker struct {
	d    *httpDriver
	sess *coupd.Session
	buf  []coupd.Update
	err  error
}

func (w *httpWorker) Update(cell int) {
	if w.err != nil {
		return // fail fast; Run surfaces the first error after the loop
	}
	var u coupd.Update
	if w.d.kind == KindHist {
		u = coupd.Update{Name: w.d.names[0], Kind: string(coupd.KindHist), Op: "inc",
			Args: []int64{int64(cell)}, Bins: w.d.bins}
	} else {
		u = coupd.Update{Name: w.d.names[cell], Kind: string(coupd.KindCounter), Op: "inc"}
	}
	w.buf = append(w.buf, u)
	if len(w.buf) >= w.d.batch {
		w.flushBatch()
	}
}

func (w *httpWorker) Read(cell int) uint64 {
	if w.err != nil {
		return 0
	}
	// A read must observe this worker's own prior updates, so deliver the
	// buffered batch first — the U->S downgrade a read forces.
	w.flushBatch()
	name := w.d.names[0]
	if w.d.kind != KindHist {
		name = w.d.names[cell]
	}
	snap, status, err := w.d.snapshot(name)
	if err != nil {
		w.err = err
		return 0
	}
	if status != http.StatusOK {
		w.err = fmt.Errorf("swbench: snapshot %s: HTTP %d", name, status)
		return 0
	}
	if w.d.kind == KindHist {
		if cell < len(snap.Bins) {
			return snap.Bins[cell]
		}
		return 0
	}
	return uint64(snap.Value)
}

func (w *httpWorker) Flush() error {
	if w.err == nil {
		w.flushBatch()
	}
	return w.err
}

// flushBatch delivers the buffered records exactly once through the
// worker's dedup session. The session's Send owns every retry concern —
// transport faults, truncated acks, 429 backoff with jitter — so a
// returned error is final (budget exhausted or the server terminally
// rejected the batch); it is recorded in w.err and the batch dropped,
// the run being already invalid at that point.
func (w *httpWorker) flushBatch() {
	if len(w.buf) == 0 || w.err != nil {
		return
	}
	res, err := w.sess.Send(context.Background(), w.buf)
	if err != nil {
		w.err = fmt.Errorf("swbench: batch: %w", err)
	} else if res.Applied != len(w.buf) {
		w.err = fmt.Errorf("swbench: batch applied %d of %d records", res.Applied, len(w.buf))
	}
	w.buf = w.buf[:0]
}

func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}
