package sim

import (
	"container/heap"
	"fmt"
	"math/bits"

	"repro/internal/ops"
)

// opKind enumerates the primitive operations a simulated core can issue to
// the memory system.
type opKind uint8

const (
	opLoad opKind = iota
	opStore
	opRMW  // atomic read-modify-write (fetch-and-op); returns the old value
	opCAS  // compare-and-swap; may fail
	opComm // commutative update (COUP instruction)
	opBarrier
	opFinish
)

// rmwOp selects the function an opRMW applies.
type rmwOp uint8

const (
	rmwAdd rmwOp = iota
	rmwOr
	rmwAnd
	rmwXor
	rmwXchg
)

// request is the operation a core hands to the engine when it yields.
type request struct {
	kind  opKind
	addr  uint64
	val   uint64 // operand (store value, add delta, CAS new value)
	cmp   uint64 // CAS expected value
	width uint8  // access width in bytes (4 or 8)
	otype ops.Type
	rop   rmwOp

	// Results, filled by the engine before resuming the core.
	out uint64
	ok  bool
}

// core is one simulated hardware context.
type core struct {
	id, chip int
	time     uint64
	req      request
	resume   chan struct{}
	rng      rng
	instrs   uint64 // Work()-modelled instructions
}

// Machine is a configured simulated system. Build one with New, set up the
// memory image with Alloc/WriteWord64, then Run a kernel.
type Machine struct {
	cfg   Config
	cores []*core
	hier  *hierarchy
	opCh  chan *core
	pq    coreHeap
	stats Stats

	allocPtr uint64
	ran      bool

	// commNative caches Protocol.Spec().CommNative() so the per-operation
	// dispatch in Ctx.comm avoids the protocol-table lock.
	commNative bool
}

// New builds a machine for cfg. It panics on invalid configuration (a
// programming error in experiment setup, not a runtime condition).
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:        cfg,
		opCh:       make(chan *core),
		allocPtr:   1 << 20, // leave page zero unmapped
		commNative: cfg.Protocol.Spec().CommNative(),
	}
	m.cores = make([]*core, cfg.Cores)
	for i := range m.cores {
		m.cores[i] = &core{
			id:     i,
			chip:   i / cfg.CoresPerChip,
			resume: make(chan struct{}),
			rng:    newRNG(cfg.Seed*0x9E3779B97F4A7C15 + uint64(i) + 1),
		}
	}
	m.hier = newHierarchy(&m.cfg, &m.stats)
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Alloc reserves size bytes of simulated memory aligned to align (which
// must be a power of two, at least 8) and returns the base address.
// Allocation is only valid before Run.
func (m *Machine) Alloc(size, align uint64) uint64 {
	if align < 8 || align&(align-1) != 0 {
		panic(fmt.Sprintf("sim: bad alignment %d", align))
	}
	m.allocPtr = (m.allocPtr + align - 1) &^ (align - 1)
	base := m.allocPtr
	m.allocPtr += size
	return base
}

// AllocLines reserves n cache lines and returns the base address (64-byte
// aligned).
func (m *Machine) AllocLines(n uint64) uint64 { return m.Alloc(n*64, 64) }

// WriteWord64 initializes simulated memory before Run (no timing cost).
func (m *Machine) WriteWord64(addr, v uint64) { m.hier.store.write64(addr, v) }

// WriteWord32 initializes a 32-bit simulated memory word before Run.
func (m *Machine) WriteWord32(addr uint64, v uint32) { m.hier.store.write32(addr, v) }

// ReadWord64 inspects simulated memory. After Run the machine is drained,
// so this reflects all buffered commutative updates.
func (m *Machine) ReadWord64(addr uint64) uint64 { return m.hier.store.read64(addr) }

// ReadWord32 inspects a 32-bit simulated memory word.
func (m *Machine) ReadWord32(addr uint64) uint32 { return m.hier.store.read32(addr) }

// Stats returns the collected statistics. Valid after Run.
func (m *Machine) Stats() Stats { return m.stats }

// Run executes kernel once per core, each as a simulated thread, and
// returns the collected statistics. Run may be called once per Machine.
func (m *Machine) Run(kernel func(c *Ctx)) Stats {
	if m.ran {
		panic("sim: Machine.Run called twice")
	}
	m.ran = true

	for _, c := range m.cores {
		c := c
		go func() {
			ctx := &Ctx{m: m, c: c}
			<-c.resume // wait for the engine's first handoff
			kernel(ctx)
			c.req = request{kind: opFinish}
			m.opCh <- c
		}()
	}

	// Kick off every core and collect its first operation.
	m.pq = m.pq[:0]
	for _, c := range m.cores {
		c.resume <- struct{}{}
		rc := <-m.opCh
		heap.Push(&m.pq, rc)
	}

	live := len(m.cores)
	var barrierWait []*core
	var end uint64
	for live > 0 {
		c := heap.Pop(&m.pq).(*core)
		switch c.req.kind {
		case opFinish:
			live--
			if c.time > end {
				end = c.time
			}
			continue
		case opBarrier:
			barrierWait = append(barrierWait, c)
			if len(barrierWait) == live {
				m.releaseBarrier(barrierWait)
				barrierWait = barrierWait[:0]
			}
			continue
		}
		lat := m.hier.access(c)
		c.time += lat
		m.step(c)
	}
	if len(barrierWait) > 0 {
		panic("sim: deadlock — some cores finished while others wait at a barrier")
	}
	m.stats.Cycles = end
	for _, c := range m.cores {
		m.stats.Instrs += c.instrs
	}
	m.hier.drain()
	return m.stats
}

// step resumes core c, waits for its next operation, and requeues it.
func (m *Machine) step(c *core) {
	c.resume <- struct{}{}
	rc := <-m.opCh
	heap.Push(&m.pq, rc)
}

// releaseBarrier aligns all waiting cores to the barrier exit time and
// resumes them one at a time (deterministically, in core order).
func (m *Machine) releaseBarrier(waiting []*core) {
	var maxT uint64
	for _, c := range waiting {
		if c.time > maxT {
			maxT = c.time
		}
	}
	exit := maxT + m.cfg.BarrierBase + m.cfg.BarrierPerLog2Core*log2ceil(m.cfg.Cores)
	// Deterministic release order: core id.
	for id := 0; id < len(m.cores); id++ {
		for _, c := range waiting {
			if c.id == id {
				c.time = exit
				m.step(c)
			}
		}
	}
}

// coreHeap orders cores by (next-op issue time, id).
type coreHeap []*core

func (h coreHeap) Len() int { return len(h) }
func (h coreHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].id < h[j].id
}
func (h coreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x interface{}) { *h = append(*h, x.(*core)) }
func (h *coreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// rng is a splitmix64 generator; deterministic per core.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng { return rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n) via Lemire's multiply-shift
// reduction: the high 64 bits of next()*n. Unlike next()%n, which favors
// small residues for non-power-of-two n, the multiply spreads the 2^64
// input values across buckets that differ in size by at most one.
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	hi, _ := bits.Mul64(r.next(), n)
	return hi
}
