package sim

import (
	"fmt"
	"iter"
	"math/bits"

	"repro/internal/ops"
)

// opKind enumerates the primitive operations a simulated core can issue to
// the memory system.
type opKind uint8

const (
	opLoad opKind = iota
	opStore
	opRMW  // atomic read-modify-write (fetch-and-op); returns the old value
	opCAS  // compare-and-swap; may fail
	opComm // commutative update (COUP instruction)
	opBarrier
	opFinish
)

// rmwOp selects the function an opRMW applies.
type rmwOp uint8

const (
	rmwAdd rmwOp = iota
	rmwOr
	rmwAnd
	rmwXor
	rmwXchg
)

// request is the operation a core hands to the engine when it yields.
type request struct {
	kind  opKind
	addr  uint64
	val   uint64 // operand (store value, add delta, CAS new value)
	cmp   uint64 // CAS expected value
	width uint8  // access width in bytes (4 or 8)
	otype ops.Type
	rop   rmwOp

	// Results, filled by the engine before resuming the core.
	out uint64
	ok  bool
}

// core is one simulated hardware context. Its kernel runs inside a pulled
// iterator (iter.Pull), so suspending at a memory operation and resuming
// with the result is a direct coroutine switch on the engine's goroutine
// schedule — no channel operations and no Go-scheduler round trip.
type core struct {
	id, chip int
	time     uint64
	req      request
	pc       *privCache              // this core's private caches (hierarchy-owned)
	yield    func(struct{}) bool     // suspends the kernel, set once at spawn
	next     func() (struct{}, bool) // resumes the kernel until its next request
	rng      rng
	instrs   uint64 // Work()-modelled instructions
}

// Machine is a configured simulated system. Build one with New, set up the
// memory image with Alloc/WriteWord64, then Run a kernel.
type Machine struct {
	cfg   Config
	cores []*core
	hier  *hierarchy
	pq    coreHeap
	stats Stats

	allocPtr uint64
	ran      bool

	// arena/shape link a machine built by NewIn back to its pool; released
	// guards against double Release. Scheduler scratch (treeKeys, treeLos,
	// radix, barrier) is owned by the machine so recycled machines run
	// without per-Run allocations.
	arena    *Arena
	shape    machineShape
	released bool
	treeKeys []uint64
	treeLos  []int32
	radix    [][]uint64
	barrier  []*core

	// raH is the run-ahead horizon: the packed (time<<16 | id) key of the
	// earliest next operation among every core except the one currently
	// executing. Ctx.exec services operations inline — without a coroutine
	// switch — while the running core's own packed key stays below this
	// horizon. The zero value makes every core yield its first operation
	// to the scheduler. Only the scheduler loops update it.
	raH uint64

	// commNative caches Protocol.Spec().CommNative() so the per-operation
	// dispatch in Ctx.comm avoids the protocol-table lock.
	commNative bool
}

// New builds a machine for cfg. It panics on invalid configuration (a
// programming error in experiment setup, not a runtime condition).
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:        cfg,
		allocPtr:   1 << 20, // leave page zero unmapped
		commNative: cfg.Protocol.Spec().CommNative(),
	}
	m.cores = make([]*core, cfg.Cores)
	for i := range m.cores {
		m.cores[i] = &core{
			id:   i,
			chip: i / cfg.CoresPerChip,
			rng:  newRNG(cfg.Seed*0x9E3779B97F4A7C15 + uint64(i) + 1),
		}
	}
	m.hier = newHierarchy(&m.cfg, &m.stats)
	for i, c := range m.cores {
		c.pc = m.hier.priv[i]
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Alloc reserves size bytes of simulated memory aligned to align (which
// must be a power of two, at least 8) and returns the base address.
// Allocation is only valid before Run.
func (m *Machine) Alloc(size, align uint64) uint64 {
	if align < 8 || align&(align-1) != 0 {
		panic(fmt.Sprintf("sim: bad alignment %d", align))
	}
	m.allocPtr = (m.allocPtr + align - 1) &^ (align - 1)
	base := m.allocPtr
	m.allocPtr += size
	// The cache arrays store 31-bit hardware-style tags (line >> setBits),
	// exact only while line addresses fit 30 bits; cap the simulated
	// physical address space accordingly.
	if m.allocPtr > 1<<36 {
		panic("sim: simulated address space exceeds 64 GB")
	}
	return base
}

// AllocLines reserves n cache lines and returns the base address (64-byte
// aligned).
func (m *Machine) AllocLines(n uint64) uint64 { return m.Alloc(n*64, 64) }

// WriteWord64 initializes simulated memory before Run (no timing cost).
func (m *Machine) WriteWord64(addr, v uint64) { m.hier.store.write64(addr, v) }

// WriteWord32 initializes a 32-bit simulated memory word before Run.
func (m *Machine) WriteWord32(addr uint64, v uint32) { m.hier.store.write32(addr, v) }

// ReadWord64 inspects simulated memory. After Run the machine is drained,
// so this reflects all buffered commutative updates.
func (m *Machine) ReadWord64(addr uint64) uint64 { return m.hier.store.read64(addr) }

// ReadWord32 inspects a 32-bit simulated memory word.
func (m *Machine) ReadWord32(addr uint64) uint32 { return m.hier.store.read32(addr) }

// Stats returns the collected statistics. Valid after Run.
func (m *Machine) Stats() Stats { return m.stats }

// spawn starts kernel as a coroutine on core c and runs it to its first
// request. The kernel body executes inside the pulled iterator: Ctx.issue
// stores the request on the core and yields, and the engine resumes the
// core by pulling again after writing results into c.req.
func (m *Machine) spawn(c *core, kernel func(*Ctx)) {
	var stop func()
	c.next, stop = iter.Pull(func(yield func(struct{}) bool) {
		c.yield = yield
		kernel(&Ctx{m: m, c: c})
		c.req = request{kind: opFinish}
	})
	_ = stop // kernels always run to completion; the iterator exhausts itself
	c.next()
}

// treeSchedCores is the machine size up to which the scheduler uses the
// loser tree over packed keys (binary matches with path-loser replay
// stay ahead of wider scans at these sizes). The paper's sweeps top out
// at 128 cores, so every registered experiment runs on the tree.
const treeSchedCores = 256

// radixSchedCores is the machine size up to which the >treeSchedCores
// fallback uses the radix-16 min structure over packed keys — the limit
// is the packed key's 16-bit id field. Beyond it the pointer heap (no
// packed keys, no inline run-ahead) remains as the last resort; no
// registered experiment or Table-1 geometry gets anywhere near it.
const radixSchedCores = 1 << 16

// schedOverride forces a specific scheduler regardless of core count.
// Test hook only: the equivalence tests drive the same machine through
// two schedulers and require byte-identical stats.
type schedKind uint8

const (
	schedAuto schedKind = iota
	schedTree
	schedRadix
	schedHeap
)

var schedOverride = schedAuto

// Run executes kernel once per core, each as a simulated thread, and
// returns the collected statistics. Run may be called once per Machine.
func (m *Machine) Run(kernel func(c *Ctx)) Stats {
	if m.ran {
		panic("sim: Machine.Run called twice")
	}
	m.ran = true

	// Spawn every core's kernel coroutine, running each to its first
	// operation.
	for _, c := range m.cores {
		m.spawn(c, kernel)
	}

	var end uint64
	n := len(m.cores)
	switch {
	case schedOverride == schedTree || (schedOverride == schedAuto && n <= treeSchedCores):
		end = m.runTree()
	case schedOverride == schedRadix || (schedOverride == schedAuto && n <= radixSchedCores):
		end = m.runRadix()
	default:
		end = m.runHeap()
	}

	m.stats.Cycles = end
	for _, c := range m.cores {
		m.stats.Instrs += c.instrs
	}
	m.hier.drain()
	return m.stats
}

// notRunnable parks a core in the scheduler's key table (finished, or
// waiting at a barrier). As a packed key it compares after every real
// (time, id) key.
const notRunnable = ^uint64(0)

// runTree drives the simulation with a loser (tournament) tree over packed
// (time<<16 | id) keys, one leaf per core. Picking the earliest core is a
// root read; re-keying a serviced core replays log2(cores) matches; and the
// run-ahead horizon — the earliest op among every other core — is the best
// of the losers along the winner's path. The packed keys make every match a
// single uint64 compare with the (time, id) tie-break built in. The picked
// core is resumed with that horizon published in raT/raI, so it keeps
// servicing its own operations inline (in Ctx.exec, with no scheduler work
// and no coroutine switch) until it would overtake another core; a
// single-core machine runs its whole kernel inline. It returns the maximum
// core finish time.
func (m *Machine) runTree() uint64 {
	n := len(m.cores)
	p2 := 1
	for p2 < n {
		p2 <<= 1
	}
	if cap(m.treeKeys) < p2 {
		m.treeKeys = make([]uint64, p2)
		m.treeLos = make([]int32, max(p2, 2))
	}
	keys := m.treeKeys[:p2]
	for i := range keys {
		keys[i] = notRunnable
	}
	for i, c := range m.cores {
		keys[i] = packKey(c.time, i)
	}
	// los[1..p2-1] hold the loser of each internal match; los[0] the winner.
	los := m.treeLos[:max(p2, 2)]
	var build func(node int) int32
	build = func(node int) int32 {
		if node >= p2 {
			return int32(node - p2)
		}
		a, b := build(2*node), build(2*node+1)
		if keys[b] < keys[a] {
			a, b = b, a
		}
		los[node] = b
		return a
	}
	los[0] = build(1)

	// update replays leaf i's matches up the tree after its key changed.
	// Replay is only sound for the current winner's leaf (every loser
	// stored on the winner's path came from the opposing subtree); the
	// schedulers below re-key nothing else, and bulk re-keys (barrier
	// release) rebuild the whole tree instead.
	update := func(i int) {
		w := int32(i)
		for node := (p2 + i) >> 1; node >= 1; node >>= 1 {
			if keys[los[node]] < keys[w] {
				w, los[node] = los[node], w
			}
		}
		los[0] = w
	}

	live := n
	barrierWait := m.barrier[:0]
	var end uint64
	for live > 0 {
		i1 := int(los[0])
		c := m.cores[i1]
		if c.req.kind == opFinish {
			live--
			if c.time > end {
				end = c.time
			}
			keys[i1] = notRunnable
			update(i1)
			continue
		}
		if c.req.kind == opBarrier {
			keys[i1] = notRunnable
			update(i1)
			barrierWait = append(barrierWait, c)
			if len(barrierWait) == live {
				m.releaseBarrier(barrierWait, func(w *core) {
					keys[w.id] = packKey(w.time, w.id)
				})
				los[0] = build(1)
				barrierWait = barrierWait[:0]
			}
			continue
		}
		// Record the winner's path once: the losers and their keys feed both
		// the horizon (their minimum) and, after the service, the match
		// replay — nothing else can re-key a leaf in between, so the replay
		// reuses the recorded keys instead of re-walking the key table.
		// Path length is log2(p2) <= 8 (treeSchedCores == 256).
		var pathLos [8]int32
		var pathKeys [8]uint64
		h := notRunnable
		d := 0
		for node := (p2 + i1) >> 1; node >= 1; node >>= 1 {
			l := los[node]
			k := keys[l]
			pathLos[d&7], pathKeys[d&7] = l, k
			d++
			if k < h {
				h = k
			}
		}
		m.raH = h
		c.time += m.hier.access(c)
		c.next() // the kernel run-ahead services further ops inline
		// Re-key the winner and replay its matches against the recorded
		// path losers.
		nk := packKey(c.time, i1)
		keys[i1] = nk
		w, kw := int32(i1), nk
		d = 0
		for node := (p2 + i1) >> 1; node >= 1; node >>= 1 {
			l, kl := pathLos[d&7], pathKeys[d&7]
			d++
			if kl < kw {
				los[node] = w
				w, kw = l, kl
			}
		}
		los[0] = w
	}
	if len(barrierWait) > 0 {
		panic("sim: deadlock — some cores finished while others wait at a barrier")
	}
	m.barrier = barrierWait[:0]
	return end
}

// packKey packs a core's next-op time and id into one comparable word:
// smaller key == earlier (time, id). Times are bounded to 2^47 cycles —
// over a simulated day at Table-1 clock rates, far beyond any experiment —
// so the shift cannot overflow; ids are bounded by the schedulers (≤ 256
// cores on the tree, and the heap disables packing beyond 16-bit ids).
func packKey(t uint64, id int) uint64 {
	if t >= 1<<47 {
		panic("sim: simulated time exceeds 2^47 cycles")
	}
	return t<<16 | uint64(id)
}

// Radix scheduler geometry: every internal node covers radixD children,
// so a 65536-core machine is four levels deep. Nodes store the minimum
// packed key of their subtree — the (time, id) tie-break rides along in
// the key itself, and the winning leaf's id is just the low 16 bits of
// the root minimum.
const (
	radixBits = 4
	radixD    = 1 << radixBits
	radixMask = radixD - 1
	// radixMaxDepth bounds the per-pick sibling-min scratch: levels(2^16
	// leaves, radix 16) = 4.
	radixMaxDepth = 4
)

// radixLevels returns the machine's radix scratch sized for n leaves:
// level 0 holds one key per core and every level is padded to a multiple
// of radixD with notRunnable sentinels, so group scans never bounds-check
// and pad entries never win a match. The slices live on the machine and
// survive arena recycling.
func (m *Machine) radixLevels(n int) [][]uint64 {
	pad := func(k int) int { return (k + radixMask) &^ radixMask }
	var sizes []int
	for sz := pad(n); ; sz = pad((sz + radixMask) >> radixBits) {
		sizes = append(sizes, sz)
		if sz <= radixD {
			break
		}
	}
	if len(m.radix) != len(sizes) || len(m.radix[0]) != sizes[0] {
		m.radix = make([][]uint64, len(sizes))
		for l, sz := range sizes {
			m.radix[l] = make([]uint64, sz)
		}
	}
	return m.radix
}

// radixRebuild recomputes every internal level bottom-up (level 0 is
// already set). Used at startup and after bulk re-keys (barrier release).
// Only real groups — those whose children exist — are recomputed; pad
// entries past them hold notRunnable from the per-Run initialization and
// are never written, so levels shorter than radixD·len(parent) stay
// in-bounds.
func radixRebuild(lvl [][]uint64) {
	for l := 1; l < len(lvl); l++ {
		child, parent := lvl[l-1], lvl[l]
		for g := 0; g < len(child)>>radixBits; g++ {
			mn := notRunnable
			for _, k := range child[g<<radixBits : (g+1)<<radixBits] {
				if k < mn {
					mn = k
				}
			}
			parent[g] = mn
		}
	}
}

// radixUpdate replays leaf i's group minimums up the structure after its
// key changed, by rescanning each ancestor group. The hot path (picked
// winner) uses the cheaper sibling-min replay inside runRadix instead;
// this scan version serves the re-keys with no recorded path: finish,
// barrier park.
func radixUpdate(lvl [][]uint64, i int) {
	idx := i
	for l := 1; l < len(lvl); l++ {
		g := idx >> radixBits
		child := lvl[l-1]
		mn := notRunnable
		for _, k := range child[g<<radixBits : (g+1)<<radixBits] {
			if k < mn {
				mn = k
			}
		}
		lvl[l][g] = mn
		idx = g
	}
}

// runRadix drives the simulation with a radix-16 min structure over packed
// (time<<16 | id) keys — the d-ary port of the loser tree, used beyond
// treeSchedCores cores where the binary tree's fixed path scratch runs
// out. Picking the earliest core scans the sixteen top-level entries;
// re-keying the serviced core replays its ancestor path against recorded
// per-level sibling minimums (one compare per level, like the loser
// tree's path replay); and those same sibling minimums provide the
// run-ahead horizon — the earliest operation among every other core — so
// inline servicing in Ctx.exec works at any machine size with ids that
// fit the packed key, which the 4-ary pointer heap this replaced could
// not offer. It returns the maximum core finish time.
func (m *Machine) runRadix() uint64 {
	n := len(m.cores)
	lvl := m.radixLevels(n)
	// Clear every level — including pad entries, which nothing below ever
	// writes — so arena-recycled scratch carries no stale keys.
	for _, row := range lvl {
		for i := range row {
			row[i] = notRunnable
		}
	}
	leaves := lvl[0]
	for i, c := range m.cores {
		leaves[i] = packKey(c.time, i)
	}
	radixRebuild(lvl)
	depth := len(lvl)
	top := lvl[depth-1]

	live := n
	barrierWait := m.barrier[:0]
	var end uint64
	for live > 0 {
		// Pick: the root minimum IS the winning leaf's packed key.
		wk := top[0]
		for _, k := range top[1:] {
			if k < wk {
				wk = k
			}
		}
		i1 := int(wk & 0xFFFF)
		c := m.cores[i1]
		if c.req.kind == opFinish {
			live--
			if c.time > end {
				end = c.time
			}
			leaves[i1] = notRunnable
			radixUpdate(lvl, i1)
			continue
		}
		if c.req.kind == opBarrier {
			leaves[i1] = notRunnable
			radixUpdate(lvl, i1)
			barrierWait = append(barrierWait, c)
			if len(barrierWait) == live {
				m.releaseBarrier(barrierWait, func(w *core) {
					leaves[w.id] = packKey(w.time, w.id)
				})
				radixRebuild(lvl)
				barrierWait = barrierWait[:0]
			}
			continue
		}
		// Walk the winner's ancestor path once, recording each level's
		// sibling minimum: their combined minimum is the run-ahead horizon
		// (earliest op among every other core), and after the service each
		// ancestor's new value is min(propagated key, recorded sibling min)
		// — no rescan, exactly the loser tree's path-replay trick in d-ary
		// form. Nothing re-keys another leaf between recording and replay.
		var sib [radixMaxDepth]uint64
		h := notRunnable
		idx := i1
		for l := 0; l < depth; l++ {
			row := lvl[l]
			g := idx &^ radixMask
			mn := notRunnable
			for j, k := range row[g : g+radixD] {
				if g+j != idx && k < mn {
					mn = k
				}
			}
			sib[l&(radixMaxDepth-1)] = mn
			if mn < h {
				h = mn
			}
			idx >>= radixBits
		}
		m.raH = h
		c.time += m.hier.access(c)
		c.next() // the kernel run-ahead services further ops inline
		// Replay: propagate the winner's new key up against the recorded
		// sibling minimums.
		cur := packKey(c.time, i1)
		idx = i1
		for l := 0; l < depth; l++ {
			lvl[l][idx] = cur
			if s := sib[l&(radixMaxDepth-1)]; s < cur {
				cur = s
			}
			idx >>= radixBits
		}
	}
	if len(barrierWait) > 0 {
		panic("sim: deadlock — some cores finished while others wait at a barrier")
	}
	m.barrier = barrierWait[:0]
	return end
}

// runHeap drives the simulation with the 4-ary min-heap scheduler, the
// last-resort fallback beyond radixSchedCores cores, where core ids no
// longer fit a packed key's 16-bit id field (so neither the radix
// structure nor inline run-ahead apply). It returns the maximum core
// finish time.
func (m *Machine) runHeap() uint64 {
	// Packed horizons carry 16 id bits; on larger machines the running
	// core's id would truncate in Ctx.exec, so inline servicing is off.
	canPack := len(m.cores) <= 1<<16
	if cap(m.pq.a) < len(m.cores) {
		m.pq.a = make([]*core, 0, len(m.cores))
	} else {
		m.pq.a = m.pq.a[:0]
	}
	for _, c := range m.cores {
		m.pq.push(c)
	}
	live := len(m.cores)
	barrierWait := m.barrier[:0]
	var end uint64
	for live > 0 {
		c := m.pq.pop()
		if c.req.kind == opFinish {
			live--
			if c.time > end {
				end = c.time
			}
			continue
		}
		if c.req.kind == opBarrier {
			barrierWait = append(barrierWait, c)
			if len(barrierWait) == live {
				m.releaseBarrier(barrierWait, func(w *core) { m.pq.push(w) })
				barrierWait = barrierWait[:0]
			}
			continue
		}
		switch {
		case !canPack:
			m.raH = 0 // ids do not fit a packed key: no inline servicing
		case len(m.pq.a) == 0:
			m.raH = notRunnable
		default:
			m.raH = packKey(m.pq.a[0].time, m.pq.a[0].id)
		}
		c.time += m.hier.access(c)
		c.next() // the kernel run-ahead services further ops inline
		m.pq.push(c)
	}
	if len(barrierWait) > 0 {
		panic("sim: deadlock — some cores finished while others wait at a barrier")
	}
	m.barrier = barrierWait[:0]
	return end
}

// releaseBarrier aligns all waiting cores to the barrier exit time and
// resumes them one at a time (deterministically, in core order), each
// yielding its next operation back to the scheduler via reschedule.
func (m *Machine) releaseBarrier(waiting []*core, reschedule func(*core)) {
	var maxT uint64
	for _, c := range waiting {
		if c.time > maxT {
			maxT = c.time
		}
	}
	exit := maxT + m.cfg.BarrierBase + m.cfg.BarrierPerLog2Core*log2ceil(m.cfg.Cores)
	// Inline servicing is off during the release (a zero horizon fails
	// every run-ahead check), so resumed kernels stop at their next
	// operation and the scheduler interleaves the post-barrier ops in
	// global time order.
	m.raH = 0
	for id := 0; id < len(m.cores); id++ {
		for _, c := range waiting {
			if c.id == id {
				c.time = exit
				c.next()
				reschedule(c)
			}
		}
	}
}

// coreBefore is the scheduler's total order: earliest next-op time first,
// ties broken by core id.
func coreBefore(x, y *core) bool {
	return x.time < y.time || (x.time == y.time && x.id < y.id)
}

// coreHeap is a hand-rolled 4-ary min-heap of cores ordered by coreBefore.
// Compared to container/heap it avoids interface boxing and indirect
// Less/Swap calls, and the wider nodes halve the tree depth, which matters
// because the heap is touched up to twice per simulated memory operation.
type coreHeap struct{ a []*core }

func (h *coreHeap) push(c *core) {
	h.a = append(h.a, c)
	a := h.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !coreBefore(a[i], a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *coreHeap) pop() *core {
	a := h.a
	c := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	h.a = a[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return c
}

func (h *coreHeap) siftDown(i int) {
	a := h.a
	n := len(a)
	for {
		first := i<<2 + 1
		if first >= n {
			return
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for k := first + 1; k < last; k++ {
			if coreBefore(a[k], a[best]) {
				best = k
			}
		}
		if !coreBefore(a[best], a[i]) {
			return
		}
		a[i], a[best] = a[best], a[i]
		i = best
	}
}

// rng is a splitmix64 generator; deterministic per core.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng { return rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n) via Lemire's multiply-shift
// reduction: the high 64 bits of next()*n. Unlike next()%n, which favors
// small residues for non-power-of-two n, the multiply spreads the 2^64
// input values across buckets that differ in size by at most one.
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	hi, _ := bits.Mul64(r.next(), n)
	return hi
}
