package sim

import "math/bits"

// array is a set-associative cache array with LRU replacement, generic over
// the per-line payload (private-cache coherence state, or directory state at
// the shared levels).
//
// Layout is structure-of-arrays, paged: each page covers a power-of-two run
// of sets and stores tags, LRU stamps and payloads in three parallel flat
// slices. A lookup therefore scans only the 8 tag words of a set (one or
// two cache lines) instead of dragging every way's full slot through the
// cache, and a set access is two masks, a shift and a bounds-checked index.
// Small geometries (every L1/L2, and the shrunk shared caches tests use)
// are pre-sized as a single page, so their page-miss branch is never taken;
// full-size Table 1 L3/L4 geometries allocate pages lazily, costing memory
// only for the regions a workload touches.
type array[P any] struct {
	ways       int
	setMask    uint64
	setBits    uint   // log2(sets); tag = line >> setBits
	pageShift  uint   // log2(sets per page)
	pageSeMask uint64 // sets-per-page - 1
	tick       uint64 // LRU clock
	pages      []arrayPage[P]
}

// arrayPage holds one page's slots as parallel slices. A tag word is the
// line address with the set-index bits stripped (hardware-style) plus
// validBit; zero means empty, and the payload of an empty way is always
// the zero value. 32-bit tags keep a whole 16-way set's tags in a single
// cache line; they are exact because simulated physical addresses are
// bounded (Machine.Alloc caps the address space at 2^36 bytes, so
// line >> setBits always fits 31 bits).
type arrayPage[P any] struct {
	tags []uint32
	lru  []uint64
	pay  []P
}

// validBit marks an occupied way inside a tag word.
const validBit = 1 << 31

// eagerSlots bounds the geometries (sets × ways) that are pre-sized as a
// single page at construction. 4096 slots covers a Table-1 L2 (512 sets ×
// 8 ways); the 32 MB L3 and 128 MB L4 page lazily.
const eagerSlots = 4096

// lazyPageSlots is the target page size (in slots) for lazily paged
// geometries: big enough to amortize allocation, small enough that sparse
// footprints do not overcommit.
const lazyPageSlots = 1024

// newArray builds an array holding sizeBytes of 64-byte lines with the
// given associativity. The set count is rounded down to a power of two.
func newArray[P any](sizeBytes, ways int) *array[P] {
	lines := sizeBytes / 64
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for mask indexing.
	p2 := 1
	for p2*2 <= sets {
		p2 *= 2
	}
	a := &array[P]{ways: ways, setMask: uint64(p2 - 1), setBits: uint(bits.TrailingZeros(uint(p2)))}
	pageSets := p2
	if p2*ways > eagerSlots {
		pageSets = 1
		for pageSets*2*ways <= lazyPageSlots && pageSets*2 <= p2 {
			pageSets *= 2
		}
	}
	a.pageShift = uint(bits.TrailingZeros(uint(pageSets)))
	a.pageSeMask = uint64(pageSets - 1)
	a.pages = make([]arrayPage[P], p2/pageSets)
	if pageSets == p2 {
		a.allocPage(0)
	}
	return a
}

// setAt returns the page and intra-page slot offset of line's set.
func (a *array[P]) setAt(line uint64) (*arrayPage[P], uint64) {
	i := line & a.setMask
	pg := &a.pages[i>>a.pageShift]
	if pg.tags == nil {
		a.allocPage(i >> a.pageShift)
	}
	return pg, (i & a.pageSeMask) * uint64(a.ways)
}

// allocPage is the cold path of setAt: lazy page allocation for large
// geometries.
//
//go:noinline
func (a *array[P]) allocPage(pi uint64) {
	n := (a.pageSeMask + 1) * uint64(a.ways)
	a.pages[pi] = arrayPage[P]{tags: make([]uint32, n), lru: make([]uint64, n), pay: make([]P, n)}
}

// lookup returns the payload of the way holding line, updating LRU, or nil
// on a miss.
func (a *array[P]) lookup(line uint64) *P {
	pg, base := a.setAt(line)
	key := uint32(line>>a.setBits) | validBit
	tags := pg.tags[base : base+uint64(a.ways)]
	for w := range tags {
		if tags[w] == key {
			a.tick++
			pg.lru[base+uint64(w)] = a.tick
			return &pg.pay[base+uint64(w)]
		}
	}
	return nil
}

// peek returns the payload of the way holding line without touching LRU
// state.
func (a *array[P]) peek(line uint64) *P {
	pg, base := a.setAt(line)
	key := uint32(line>>a.setBits) | validBit
	tags := pg.tags[base : base+uint64(a.ways)]
	for w := range tags {
		if tags[w] == key {
			return &pg.pay[base+uint64(w)]
		}
	}
	return nil
}

// insert allocates a way for line, evicting the LRU way if the set is
// full. It returns the new way's payload (zero value) plus the victim's
// tag and payload if an eviction occurred. The caller must not insert a
// line that is already present.
func (a *array[P]) insert(line uint64) (p *P, victimTag uint64, victim P, evicted bool) {
	pg, base := a.setAt(line)
	vi, vlru := -1, ^uint64(0)
	for w := 0; w < a.ways; w++ {
		t := pg.tags[base+uint64(w)]
		if t&validBit == 0 {
			vi = w
			evicted = false
			break
		}
		if s := pg.lru[base+uint64(w)]; s < vlru {
			vi, vlru = w, s
			evicted = true
		}
	}
	i := base + uint64(vi)
	if evicted {
		victimTag = uint64(pg.tags[i]&^validBit)<<a.setBits | (line & a.setMask)
		victim = pg.pay[i]
	}
	a.tick++
	var zero P
	pg.tags[i] = uint32(line>>a.setBits) | validBit
	pg.lru[i] = a.tick
	pg.pay[i] = zero
	return &pg.pay[i], victimTag, victim, evicted
}

// invalidate removes line from the array if present.
func (a *array[P]) invalidate(line uint64) {
	pg, base := a.setAt(line)
	key := uint32(line>>a.setBits) | validBit
	for w := 0; w < a.ways; w++ {
		if pg.tags[base+uint64(w)] == key {
			var zero P
			pg.tags[base+uint64(w)] = 0
			pg.lru[base+uint64(w)] = 0
			pg.pay[base+uint64(w)] = zero
			return
		}
	}
}

// contains reports presence without touching LRU.
func (a *array[P]) contains(line uint64) bool { return a.peek(line) != nil }

// forEach visits every valid way, in set-major order. Used by drain and by
// invariant checks.
func (a *array[P]) forEach(f func(tag uint64, p *P)) {
	for pi := range a.pages {
		pg := &a.pages[pi]
		for i, t := range pg.tags {
			if t&validBit != 0 {
				set := uint64(pi)<<a.pageShift + uint64(i)/uint64(a.ways)
				f(uint64(t&^validBit)<<a.setBits|set, &pg.pay[i])
			}
		}
	}
}
