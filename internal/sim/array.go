package sim

// array is a set-associative cache array with LRU replacement, generic over
// the per-line payload (private-cache coherence state, or directory state at
// the shared levels). Sets are allocated lazily so that even full-size
// Table 1 geometries cost memory only for the sets actually touched.
type array[P any] struct {
	ways    int
	setMask uint64
	tick    uint64 // LRU clock
	sets    [][]slot[P]
}

// slot is one way of one set.
type slot[P any] struct {
	tag   uint64 // line address (full address >> 6)
	lru   uint64
	valid bool
	p     P
}

// newArray builds an array holding sizeBytes of 64-byte lines with the
// given associativity. The set count is rounded down to a power of two.
func newArray[P any](sizeBytes, ways int) *array[P] {
	lines := sizeBytes / 64
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for mask indexing.
	p2 := 1
	for p2*2 <= sets {
		p2 *= 2
	}
	return &array[P]{
		ways:    ways,
		setMask: uint64(p2 - 1),
		sets:    make([][]slot[P], p2),
	}
}

func (a *array[P]) set(line uint64) []slot[P] {
	i := line & a.setMask
	if a.sets[i] == nil {
		a.sets[i] = make([]slot[P], a.ways)
	}
	return a.sets[i]
}

// lookup returns the slot holding line, updating LRU, or nil on a miss.
func (a *array[P]) lookup(line uint64) *slot[P] {
	s := a.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			a.tick++
			s[i].lru = a.tick
			return &s[i]
		}
	}
	return nil
}

// peek returns the slot holding line without touching LRU state.
func (a *array[P]) peek(line uint64) *slot[P] {
	s := a.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			return &s[i]
		}
	}
	return nil
}

// insert allocates a slot for line, evicting the LRU way if the set is
// full. It returns the slot (valid, tagged, zero payload) plus the victim's
// tag and payload if an eviction occurred. The caller must not insert a
// line that is already present.
func (a *array[P]) insert(line uint64) (s *slot[P], victimTag uint64, victim P, evicted bool) {
	set := a.set(line)
	vi, vlru := -1, ^uint64(0)
	for i := range set {
		if !set[i].valid {
			vi = i
			evicted = false
			vlru = 0
			break
		}
		if set[i].lru < vlru {
			vi, vlru = i, set[i].lru
			evicted = true
		}
	}
	sl := &set[vi]
	if evicted {
		victimTag, victim = sl.tag, sl.p
	}
	a.tick++
	var zero P
	*sl = slot[P]{tag: line, lru: a.tick, valid: true, p: zero}
	return sl, victimTag, victim, evicted
}

// invalidate removes line from the array if present.
func (a *array[P]) invalidate(line uint64) {
	s := a.set(line)
	for i := range s {
		if s[i].valid && s[i].tag == line {
			var zero slot[P]
			s[i] = zero
			return
		}
	}
}

// contains reports presence without touching LRU.
func (a *array[P]) contains(line uint64) bool { return a.peek(line) != nil }

// forEach visits every valid slot. Used by drain and by invariant checks.
func (a *array[P]) forEach(f func(tag uint64, p *P)) {
	for _, set := range a.sets {
		for i := range set {
			if set[i].valid {
				f(set[i].tag, &set[i].p)
			}
		}
	}
}
