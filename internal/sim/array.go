package sim

import "math/bits"

// array is a set-associative cache array with LRU replacement, generic over
// the per-line payload (private-cache coherence state, or directory state at
// the shared levels).
//
// Layout is structure-of-arrays, paged: each page covers a power-of-two run
// of sets and stores tags, LRU stamps and payloads in three parallel flat
// slices. A lookup therefore scans only the 8 tag words of a set (one or
// two cache lines) instead of dragging every way's full slot through the
// cache, and a set access is two masks, a shift and a bounds-checked index.
// Small geometries (every L1/L2, and the shrunk shared caches tests use)
// are pre-sized as a single page, so their page-miss branch is never taken;
// full-size Table 1 L3/L4 geometries allocate pages lazily, costing memory
// only for the regions a workload touches.
type array[P any] struct {
	ways       int
	setMask    uint64
	setBits    uint   // log2(sets); tag = line >> setBits
	pageShift  uint   // log2(sets per page)
	pageSeMask uint64 // sets-per-page - 1
	tick       uint64 // LRU clock
	pages      []arrayPage[P]
}

// arrayPage holds one page's slots as parallel slices. A tag word is the
// line address with the set-index bits stripped (hardware-style) plus
// validBit; zero means empty, and the payload of an empty way is always
// the zero value. 32-bit tags keep a whole 16-way set's tags in a single
// cache line; they are exact because simulated physical addresses are
// bounded (Machine.Alloc caps the address space at 2^36 bytes, so
// line >> setBits always fits 31 bits).
type arrayPage[P any] struct {
	tags []uint32
	lru  []uint64
	pay  []P
}

// validBit marks an occupied way inside a tag word.
const validBit = 1 << 31

// eagerSlots bounds the geometries (sets × ways) that are pre-sized as a
// single page at construction. 4096 slots covers a Table-1 L2 (512 sets ×
// 8 ways); the 32 MB L3 and 128 MB L4 page lazily.
const eagerSlots = 4096

// lazyPageSlots is the target page size (in slots) for lazily paged
// geometries: big enough to amortize allocation, small enough that sparse
// footprints do not overcommit.
const lazyPageSlots = 1024

// newArray builds an array holding sizeBytes of 64-byte lines with the
// given associativity. The set count is rounded down to a power of two.
func newArray[P any](sizeBytes, ways int) *array[P] {
	lines := sizeBytes / 64
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for mask indexing.
	p2 := 1
	for p2*2 <= sets {
		p2 *= 2
	}
	a := &array[P]{ways: ways, setMask: uint64(p2 - 1), setBits: uint(bits.TrailingZeros(uint(p2)))}
	pageSets := p2
	if p2*ways > eagerSlots {
		pageSets = 1
		for pageSets*2*ways <= lazyPageSlots && pageSets*2 <= p2 {
			pageSets *= 2
		}
	}
	a.pageShift = uint(bits.TrailingZeros(uint(pageSets)))
	a.pageSeMask = uint64(pageSets - 1)
	a.pages = make([]arrayPage[P], p2/pageSets)
	if pageSets == p2 {
		a.allocPage(0)
	}
	return a
}

// setAt returns the page and intra-page slot offset of line's set.
func (a *array[P]) setAt(line uint64) (*arrayPage[P], uint64) {
	i := line & a.setMask
	pg := &a.pages[i>>a.pageShift]
	if pg.tags == nil {
		a.allocPage(i >> a.pageShift)
	}
	return pg, (i & a.pageSeMask) * uint64(a.ways)
}

// allocPage is the cold path of setAt: lazy page allocation for large
// geometries.
//
//go:noinline
func (a *array[P]) allocPage(pi uint64) {
	n := (a.pageSeMask + 1) * uint64(a.ways)
	a.pages[pi] = arrayPage[P]{tags: make([]uint32, n), lru: make([]uint64, n), pay: make([]P, n)}
}

// lookup returns the payload of the way holding line, updating LRU, or nil
// on a miss.
func (a *array[P]) lookup(line uint64) *P {
	pg, base := a.setAt(line)
	key := uint32(line>>a.setBits) | validBit
	tags := pg.tags[base : base+uint64(a.ways)]
	for w := range tags {
		if tags[w] == key {
			a.tick++
			pg.lru[base+uint64(w)] = a.tick
			return &pg.pay[base+uint64(w)]
		}
	}
	return nil
}

// peek returns the payload of the way holding line without touching LRU
// state.
func (a *array[P]) peek(line uint64) *P {
	pg, base := a.setAt(line)
	key := uint32(line>>a.setBits) | validBit
	tags := pg.tags[base : base+uint64(a.ways)]
	for w := range tags {
		if tags[w] == key {
			return &pg.pay[base+uint64(w)]
		}
	}
	return nil
}

// insert allocates a way for line, evicting the LRU way if the set is
// full. It returns the new way's payload (zero value) and way index, plus
// the victim's tag and payload if an eviction occurred. The caller must
// not insert a line that is already present.
func (a *array[P]) insert(line uint64) (p *P, victimTag uint64, victim P, evicted bool, way uint8) {
	pg, base := a.setAt(line)
	vi, vlru := -1, ^uint64(0)
	for w := 0; w < a.ways; w++ {
		t := pg.tags[base+uint64(w)]
		if t&validBit == 0 {
			vi = w
			evicted = false
			break
		}
		if s := pg.lru[base+uint64(w)]; s < vlru {
			vi, vlru = w, s
			evicted = true
		}
	}
	i := base + uint64(vi)
	if evicted {
		victimTag = uint64(pg.tags[i]&^validBit)<<a.setBits | (line & a.setMask)
		victim = pg.pay[i]
	}
	a.tick++
	var zero P
	pg.tags[i] = uint32(line>>a.setBits) | validBit
	pg.lru[i] = a.tick
	pg.pay[i] = zero
	return &pg.pay[i], victimTag, victim, evicted, uint8(vi)
}

// invalidate removes line from the array if present. The tick bump marks
// the mutation so outstanding slot handles (see probe) notice the set may
// have changed; it never reorders LRU decisions, because stored stamps are
// untouched and future stamps only grow.
func (a *array[P]) invalidate(line uint64) {
	pg, base := a.setAt(line)
	key := uint32(line>>a.setBits) | validBit
	for w := 0; w < a.ways; w++ {
		if pg.tags[base+uint64(w)] == key {
			var zero P
			pg.tags[base+uint64(w)] = 0
			pg.lru[base+uint64(w)] = 0
			pg.pay[base+uint64(w)] = zero
			a.tick++
			return
		}
	}
}

// slotRef is a handle to one way of an array, captured by probe or
// peekSlot and consumed together with the same line address. It stays
// valid — the payload pointer and the staged victim choice remain exact —
// until the array's tick changes (any hit, insert or invalidate);
// consumers re-check the tick and fall back to a fresh scan when it
// moved, so a stale handle can never change behaviour, only cost.
//
// The handle is one packed word so the hot paths that produce one but
// rarely use it (every private-cache probe) pay a single register, not a
// struct spill: [tick:32][slot:16][way:8][flags:8]. Slot indices fit 16
// bits because pages hold at most eagerSlots (4096) slots; the truncated
// tick is compared for equality only, and wrapping exactly 2^32 ticks
// inside one directory transaction is impossible.
type slotRef = uint64

const (
	slotHit   = 1 << 0 // the handle names line's own way
	slotEvict = 1 << 1 // staged miss in a full set: way holds the LRU victim
)

func packSlot(tick, idx uint64, way uint8, flags uint8) slotRef {
	return uint64(uint32(tick))<<32 | idx<<16 | uint64(way)<<8 | uint64(flags)
}

func (a *array[P]) slotCurrent(h slotRef) bool { return uint32(h>>32) == uint32(a.tick) }

func slotIdx(h slotRef) uint64 { return (h >> 16) & 0xFFFF }

// slotWay returns the way index recorded in a probe/peekSlot handle.
func slotWay(h slotRef) uint8 { return uint8(h >> 8) }

// wayUnknown marks a hint whose way index was not tracked; any
// out-of-range way simply fails peekAt's tag check, so unknown hints are
// safe everywhere a hint is.
const wayUnknown = ^uint8(0)

// probe scans line's set once, fusing lookup with the victim choice insert
// would otherwise rescan for. On a hit it behaves exactly like lookup (LRU
// touch) and returns the payload plus a handle to the hit way; on a miss
// it returns nil plus a handle staging the insertion — the way a fresh
// insert would choose — which commit turns into the actual insert without
// rescanning the tags. The hit path pays only a first-empty-way test over
// lookup; LRU stamps are consulted only for a miss in a full set, where
// insert would have read them anyway.
func (a *array[P]) probe(line uint64) (*P, slotRef) {
	pg, base := a.setAt(line)
	key := uint32(line>>a.setBits) | validBit
	tags := pg.tags[base : base+uint64(a.ways)]
	empty := -1
	for w := range tags {
		t := tags[w]
		if t == key {
			i := base + uint64(w)
			a.tick++
			pg.lru[i] = a.tick
			return &pg.pay[i], packSlot(a.tick, i, uint8(w), slotHit)
		}
		if empty < 0 && t&validBit == 0 {
			empty = w
		}
	}
	if empty >= 0 {
		return nil, packSlot(a.tick, base+uint64(empty), uint8(empty), 0)
	}
	// Full set: pick the LRU way, exactly as insert would.
	lru := pg.lru[base : base+uint64(a.ways)]
	vi, vlru := 0, lru[0]
	for w := 1; w < len(lru); w++ {
		if s := lru[w]; s < vlru {
			vi, vlru = w, s
		}
	}
	return nil, packSlot(a.tick, base+uint64(vi), uint8(vi), slotEvict)
}

// commit completes the insertion staged by a missing probe of line. While
// the array is untouched since the probe (the common case) it fills the
// staged way directly; otherwise it falls back to a full insert, so the
// result is always identical to calling insert fresh.
func (a *array[P]) commit(line uint64, h slotRef) (p *P, victimTag uint64, victim P, evicted bool, way uint8) {
	if h&slotHit != 0 || !a.slotCurrent(h) {
		return a.insert(line)
	}
	pg, _ := a.setAt(line)
	i := slotIdx(h)
	if h&slotEvict != 0 {
		victimTag = uint64(pg.tags[i]&^validBit)<<a.setBits | (line & a.setMask)
		victim = pg.pay[i]
		evicted = true
	}
	a.tick++
	var zero P
	pg.tags[i] = uint32(line>>a.setBits) | validBit
	pg.lru[i] = a.tick
	pg.pay[i] = zero
	return &pg.pay[i], victimTag, victim, evicted, slotWay(h)
}

// revalidate re-derives the payload pointer of a hit handle for line:
// nearly free while the array is untouched, one peek otherwise.
// Missing-probe handles (and lines invalidated since) return nil, like
// peek.
func (a *array[P]) revalidate(line uint64, h slotRef) *P {
	if h&slotHit != 0 && a.slotCurrent(h) {
		pg, _ := a.setAt(line)
		return &pg.pay[slotIdx(h)]
	}
	return a.peek(line)
}

// peekAt returns the payload of the way holding line when the hinted way
// index still does, falling back to a full peek otherwise. Hints are
// best-effort: the tag comparison validates them exactly (a set holds at
// most one way per line), so stale or unknown hints cost one extra scan
// and can never change the result.
func (a *array[P]) peekAt(line uint64, way uint8) *P {
	if uint64(way) < uint64(a.ways) {
		pg, base := a.setAt(line)
		i := base + uint64(way)
		if pg.tags[i] == uint32(line>>a.setBits)|validBit {
			return &pg.pay[i]
		}
	}
	return a.peek(line)
}

// peekSlot is peek returning a handle to the hit way, so a following
// invalidateAt avoids rescanning the set.
func (a *array[P]) peekSlot(line uint64) (*P, slotRef) {
	pg, base := a.setAt(line)
	key := uint32(line>>a.setBits) | validBit
	tags := pg.tags[base : base+uint64(a.ways)]
	for w := range tags {
		if tags[w] == key {
			i := base + uint64(w)
			return &pg.pay[i], packSlot(a.tick, i, uint8(w), slotHit)
		}
	}
	return nil, 0
}

// invalidateAt removes line, which the handle points at, without
// rescanning the set while the handle is still current.
func (a *array[P]) invalidateAt(line uint64, h slotRef) {
	if h&slotHit == 0 {
		return
	}
	if !a.slotCurrent(h) {
		a.invalidate(line)
		return
	}
	pg, _ := a.setAt(line)
	i := slotIdx(h)
	var zero P
	pg.tags[i] = 0
	pg.lru[i] = 0
	pg.pay[i] = zero
	a.tick++
}

// reset returns the array to its post-newArray state while keeping every
// allocated page for reuse (the arena's zero-on-reuse contract). Only
// occupied ways need clearing: insert and invalidate maintain the
// invariant that an empty way's tag, LRU stamp and payload are all zero,
// so the sweep reads one tag word per slot and writes only live ones.
func (a *array[P]) reset() {
	var zero P
	for pi := range a.pages {
		pg := &a.pages[pi]
		for i, t := range pg.tags {
			if t != 0 {
				pg.tags[i] = 0
				pg.lru[i] = 0
				pg.pay[i] = zero
			}
		}
	}
	a.tick = 0
}

// contains reports presence without touching LRU.
func (a *array[P]) contains(line uint64) bool { return a.peek(line) != nil }

// forEach visits every valid way, in set-major order. Used by drain and by
// invariant checks.
func (a *array[P]) forEach(f func(tag uint64, p *P)) {
	for pi := range a.pages {
		pg := &a.pages[pi]
		for i, t := range pg.tags {
			if t&validBit != 0 {
				set := uint64(pi)<<a.pageShift + uint64(i)/uint64(a.ways)
				f(uint64(t&^validBit)<<a.setBits|set, &pg.pay[i])
			}
		}
	}
}
