package sim

// Arena pools machine-sized scratch across Machine constructions, so a
// sweep of many small simulations (the fig2 protocol sweep, the fig13
// refcount grids) builds each distinct machine geometry once and then
// recycles it, instead of re-allocating cache arrays, directory pages,
// backing-store pages and bank tables for every spec.
//
// # Reset contract
//
// Machines are pooled whole, keyed by their geometry (machineShape): core
// counts and every cache/bank/channel dimension. Everything else in a
// Config — protocol, latencies, seed, jitter, flat-reductions — is run
// state, re-derived when a pooled machine is taken. Reuse is
// zero-on-reuse: NewIn resets the recycled machine to exactly the state
// New would have produced, with two deliberate exceptions that are
// invisible to simulation results:
//
//   - lazily allocated array pages, backing-store pages and grown bank
//     tables stay allocated (that is the point — their contents are
//     cleared, their capacity is kept), and
//   - the partial-update buffer pools keep their high-water population.
//
// Neither affects timing or statistics: an allocated-but-empty page
// behaves identically to an unallocated one, and table capacity never
// changes lookup results. TestArenaReuseIdentical pins this: stats from a
// recycled machine are byte-identical to a fresh machine's.
//
// An Arena is NOT safe for concurrent use. The intended pattern — used by
// pkg/coup's sweep engine — is one Arena per worker goroutine, living for
// the duration of the sweep. Dropping the Arena releases everything it
// holds to the garbage collector; SetCap bounds what it holds while alive.
type Arena struct {
	free map[machineShape][]*Machine
	// LRU cap state: pooled counts machines currently held across all
	// shapes, capMachines bounds it (0 = unlimited), and lastUse records
	// each shape's most recent NewIn/Release on a logical clock so
	// eviction can pick the least-recently-used shape.
	capMachines int
	pooled      int
	clock       uint64
	lastUse     map[machineShape]uint64
	// Pool effectiveness counters, read via PoolStats. Plain words: an
	// Arena is single-worker by contract, so these need no atomics; the
	// sweep layer reduces per-worker deltas into shared metrics.
	warm    uint64 // NewIn calls served from the pool
	cold    uint64 // NewIn calls that built a fresh machine
	evicted uint64 // pooled machines dropped by the LRU cap
}

// NewArena returns an empty machine arena.
func NewArena() *Arena {
	return &Arena{
		free:    map[machineShape][]*Machine{},
		lastUse: map[machineShape]uint64{},
	}
}

// PoolStats reports how many NewIn calls this arena served from its pool
// (warm) versus by building a fresh machine (cold). Monotonic over the
// arena's lifetime.
func (a *Arena) PoolStats() (warm, cold uint64) { return a.warm, a.cold }

// Evictions reports how many pooled machines the LRU cap has dropped.
// Monotonic; always zero on an uncapped arena.
func (a *Arena) Evictions() uint64 { return a.evicted }

// Pooled reports how many released machines the arena currently holds.
func (a *Arena) Pooled() int { return a.pooled }

// SetCap bounds the arena's resident pool at n machines across all
// geometries (n <= 0 removes the bound, the default). When a Release
// would exceed the cap, the arena drops a machine from the
// least-recently-used shape — wide multi-geometry sweeps keep their hot
// shapes warm without holding every shape they ever built resident. A
// lowered cap evicts immediately. Capping never changes simulation
// results, only the warm-hit rate.
func (a *Arena) SetCap(n int) {
	if n < 0 {
		n = 0
	}
	a.capMachines = n
	if n > 0 {
		for a.pooled > n {
			a.evictLRU()
		}
	}
}

// touch stamps shape as the arena's most recently used.
func (a *Arena) touch(shape machineShape) {
	a.clock++
	a.lastUse[shape] = a.clock
}

// evictLRU drops one pooled machine from the least-recently-used shape
// that has any. Within a shape the oldest release goes first (the list
// is a stack, so the front is the coldest scratch).
func (a *Arena) evictLRU() {
	var victim machineShape
	found := false
	var oldest uint64
	//coup:unordered-ok min over unique lastUse stamps (clock strictly increments per touch), so the victim is order-independent
	for shape, list := range a.free {
		if len(list) == 0 {
			continue
		}
		if t := a.lastUse[shape]; !found || t < oldest {
			victim, oldest, found = shape, t, true
		}
	}
	if !found {
		return
	}
	list := a.free[victim]
	copy(list, list[1:])
	list[len(list)-1] = nil
	if len(list) == 1 {
		delete(a.free, victim)
		delete(a.lastUse, victim)
	} else {
		a.free[victim] = list[:len(list)-1]
	}
	a.pooled--
	a.evicted++
}

// machineShape is the geometry key under which an Arena pools machines:
// every Config field that determines allocation sizes. Two configs with
// equal shapes build structurally identical machines.
type machineShape struct {
	cores, coresPerChip     int
	l1Size, l1Ways          int
	l2Size, l2Ways          int
	l3Size, l3Ways, l3Banks int
	l4Size, l4Ways, l4Banks int
	memChannels             int
}

func shapeOf(cfg *Config) machineShape {
	return machineShape{
		cores: cfg.Cores, coresPerChip: cfg.CoresPerChip,
		l1Size: cfg.L1Size, l1Ways: cfg.L1Ways,
		l2Size: cfg.L2Size, l2Ways: cfg.L2Ways,
		l3Size: cfg.L3Size, l3Ways: cfg.L3Ways, l3Banks: cfg.L3Banks,
		l4Size: cfg.L4Size, l4Ways: cfg.L4Ways, l4Banks: cfg.L4Banks,
		memChannels: cfg.MemChannels,
	}
}

// NewIn builds a machine for cfg like New, but recycles a pooled machine
// of the same geometry from a when one is available. A nil arena is
// allowed and makes NewIn identical to New. Machines built by NewIn
// return their scratch to a via Release.
func NewIn(a *Arena, cfg Config) *Machine {
	if a == nil {
		return New(cfg)
	}
	shape := shapeOf(&cfg)
	a.touch(shape)
	if list := a.free[shape]; len(list) > 0 {
		a.warm++
		a.pooled--
		m := list[len(list)-1]
		list[len(list)-1] = nil
		a.free[shape] = list[:len(list)-1]
		m.reset(cfg)
		return m
	}
	a.cold++
	m := New(cfg)
	m.arena = a
	m.shape = shape
	return m
}

// Release returns the machine's scratch to the arena it was built in, to
// be recycled by a later NewIn of the same geometry. The machine must not
// be used afterwards. Release on a machine built by New (or with a nil
// arena) is a no-op; releasing twice is a programming error and panics.
func (m *Machine) Release() {
	if m.arena == nil {
		return
	}
	if m.released {
		panic("sim: Machine.Release called twice")
	}
	m.released = true
	a := m.arena
	a.free[m.shape] = append(a.free[m.shape], m)
	a.pooled++
	a.touch(m.shape)
	if a.capMachines > 0 {
		for a.pooled > a.capMachines {
			a.evictLRU()
		}
	}
}

// reset returns a pooled machine to the state New(cfg) would produce,
// given that cfg's shape matches the machine's. See the Arena doc for the
// (result-invisible) capacity exceptions.
func (m *Machine) reset(cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m.cfg = cfg
	m.stats = Stats{}
	m.allocPtr = 1 << 20
	m.ran = false
	m.released = false
	m.raH = 0
	m.commNative = cfg.Protocol.Spec().CommNative()
	for i, c := range m.cores {
		c.time = 0
		c.req = request{}
		c.rng = newRNG(cfg.Seed*0x9E3779B97F4A7C15 + uint64(i) + 1)
		c.instrs = 0
		c.yield = nil
		c.next = nil
	}
	m.hier.reset(&m.cfg, &m.stats)
}

// reset rebinds the hierarchy to a new run's config and stats and clears
// all simulation state, keeping every allocation.
func (h *hierarchy) reset(cfg *Config, st *Stats) {
	h.cfg, h.st = cfg, st
	h.hasU = cfg.Protocol.HasU()
	h.hasE = cfg.Protocol.Kind().HasE()
	h.remote = cfg.Protocol.Remote()
	h.jrng = newRNG(cfg.Seed ^ 0xC0FFEE)
	h.now = 0
	h.store.reset()
	for _, pc := range h.priv {
		// Harvest the partial-update buffers of still-resident U lines into
		// the pool before their lines are wiped, so buffers survive reuse.
		pc.l2.forEach(func(_ uint64, p *privLine) {
			if p.buf != nil {
				pc.bufPool = append(pc.bufPool, p.buf)
				p.buf = nil
			}
		})
		pc.l1.reset()
		pc.l2.reset()
	}
	for _, ch := range h.chips {
		ch.arr.reset()
		for _, b := range ch.banks {
			b.reset()
		}
	}
	h.l4.arr.reset()
	for _, b := range h.l4.banks {
		b.reset()
	}
	clear(h.l4.chans)
}

// reset clears a bank's occupancy state, keeping the line table's grown
// capacity.
func (b *bank) reset() {
	b.busyUntil = 0
	b.redBusy = 0
	b.lineBusy.reset()
}

// reset empties the table in place, keeping capacity.
func (t *busyTable) reset() {
	clear(t.keys)
	clear(t.vals)
	t.n = 0
	t.gen++
}

// reset zeroes every materialized page, keeping them mapped for reuse.
func (b *backing) reset() {
	for _, pg := range b.pages {
		if pg != nil {
			*pg = backingPage{}
		}
	}
}
