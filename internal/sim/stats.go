package sim

import "fmt"

// Breakdown decomposes memory-access latency into the Fig 11 buckets. Each
// field is the summed critical-path cycles attributed to that part of the
// hierarchy across all accesses (e.g. L4Inval is not the cost of every
// invalidation, but the delay requests suffered because other sharers had
// to be invalidated, downgraded or reduced by the global directory).
type Breakdown struct {
	L1      uint64 // L1D hit time
	L2      uint64 // private L2
	L3      uint64 // L3 bank + in-chip directory actions (incl. in-chip invals)
	Net     uint64 // off-chip network traversals
	L4Inval uint64 // L4-orchestrated invalidations/downgrades/reductions + line serialization
	L4      uint64 // L4 bank + global directory access
	Mem     uint64 // main memory
}

// Total returns the summed cycles across all buckets.
func (b Breakdown) Total() uint64 {
	return b.L1 + b.L2 + b.L3 + b.Net + b.L4Inval + b.L4 + b.Mem
}

func (b *Breakdown) add(o Breakdown) {
	b.L1 += o.L1
	b.L2 += o.L2
	b.L3 += o.L3
	b.Net += o.Net
	b.L4Inval += o.L4Inval
	b.L4 += o.L4
	b.Mem += o.Mem
}

// Scale divides every bucket by n (for averaging).
func (b Breakdown) Scale(n float64) [7]float64 {
	return [7]float64{
		float64(b.L1) / n, float64(b.L2) / n, float64(b.L3) / n,
		float64(b.Net) / n, float64(b.L4Inval) / n, float64(b.L4) / n,
		float64(b.Mem) / n,
	}
}

// BreakdownLabels names Breakdown components in Scale/AMAT order.
var BreakdownLabels = [7]string{"L1", "L2", "L3", "OffChipNet", "L4Inval", "L4", "MainMem"}

// Stats aggregates everything a simulation run measures.
type Stats struct {
	// Cycles is the simulated end-to-end run time (max core finish time).
	Cycles uint64

	// Operation counts.
	Accesses    uint64 // all memory operations issued by cores
	Loads       uint64
	Stores      uint64
	Atomics     uint64 // atomic RMWs and CASes (incl. failed CASes)
	CommUpdates uint64 // commutative-update instructions
	Instrs      uint64 // ops + Work()-modelled instructions, for Table 2 fractions

	// Hit distribution (where each access was satisfied).
	L1Hits  uint64
	L2Hits  uint64
	L3Hits  uint64
	L4Hits  uint64
	MemAccs uint64

	// ULocalHits counts commutative updates satisfied in the private cache
	// (U or M/E state) — COUP's fast path.
	ULocalHits uint64

	// Latency decomposition (summed over all accesses).
	Breakdown Breakdown

	// Protocol events.
	Invalidations     uint64 // copies invalidated on behalf of other caches
	Downgrades        uint64 // M/E owners downgraded
	FullReductions    uint64 // reductions triggered by reads/writes/type switches
	PartialReductions uint64 // reductions triggered by evictions
	TypeSwitches      uint64 // non-exclusive operation-type changes
	UGrants           uint64 // update-only permissions granted

	// Traffic, split between on-chip (core<->L3) and off-chip
	// (chip<->L4 over the dancehall links).
	OnChipMsgs   uint64
	OnChipBytes  uint64
	OffChipMsgs  uint64
	OffChipBytes uint64
	MemBytes     uint64
}

// AMAT returns the average memory access time in cycles.
func (s *Stats) AMAT() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Breakdown.Total()) / float64(s.Accesses)
}

// AMATBreakdown returns the per-access average of each latency bucket.
func (s *Stats) AMATBreakdown() [7]float64 {
	if s.Accesses == 0 {
		return [7]float64{}
	}
	return s.Breakdown.Scale(float64(s.Accesses))
}

// CommFraction returns commutative updates as a fraction of all modelled
// instructions (Table 2 / Sec 5.2 reporting).
func (s *Stats) CommFraction() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.CommUpdates) / float64(s.Instrs)
}

// String summarizes the run for cmd/coupsim.
func (s *Stats) String() string {
	b := s.AMATBreakdown()
	return fmt.Sprintf(
		"cycles=%d accesses=%d (ld=%d st=%d at=%d cu=%d) hits L1=%d L2=%d L3=%d L4=%d mem=%d\n"+
			"AMAT=%.2f [L1=%.2f L2=%.2f L3=%.2f net=%.2f l4inv=%.2f L4=%.2f mem=%.2f]\n"+
			"inval=%d downg=%d fullred=%d partred=%d typesw=%d ugrants=%d ulocal=%d\n"+
			"traffic onchip=%dB offchip=%dB mem=%dB",
		s.Cycles, s.Accesses, s.Loads, s.Stores, s.Atomics, s.CommUpdates,
		s.L1Hits, s.L2Hits, s.L3Hits, s.L4Hits, s.MemAccs,
		s.AMAT(), b[0], b[1], b[2], b[3], b[4], b[5], b[6],
		s.Invalidations, s.Downgrades, s.FullReductions, s.PartialReductions,
		s.TypeSwitches, s.UGrants, s.ULocalHits,
		s.OnChipBytes, s.OffChipBytes, s.MemBytes)
}

// Message size constants for traffic accounting (64-byte lines plus an
// 8-byte control header; control-only messages are 8 bytes).
const (
	ctrlBytes = 8
	dataBytes = 64 + ctrlBytes
)
