package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func smallCfg(cores int, p Protocol) Config {
	cfg := DefaultConfig(cores, p)
	// Small caches so tests exercise evictions.
	cfg.L2Size = 4 << 10
	cfg.L3Size = 64 << 10
	cfg.L4Size = 256 << 10
	return cfg
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig(16, MESI)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := cfg
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores must be invalid")
	}
	bad = cfg
	bad.L3Banks = 0
	if bad.Validate() == nil {
		t.Error("zero banks must be invalid")
	}
	bad = cfg
	bad.L1Ways = 0
	if bad.Validate() == nil {
		t.Error("zero ways must be invalid")
	}
}

func TestChipsScaling(t *testing.T) {
	for _, c := range []struct{ cores, chips int }{
		{1, 1}, {8, 1}, {16, 1}, {17, 2}, {32, 2}, {64, 4}, {128, 8},
	} {
		cfg := DefaultConfig(c.cores, MESI)
		if got := cfg.Chips(); got != c.chips {
			t.Errorf("%d cores: %d chips, want %d", c.cores, got, c.chips)
		}
	}
}

func TestSingleCoreLoadStore(t *testing.T) {
	m := New(DefaultConfig(1, MESI))
	a := m.Alloc(1024, 64)
	m.WriteWord64(a, 7)
	var got uint64
	m.Run(func(c *Ctx) {
		got = c.Load64(a)
		c.Store64(a+8, got*3)
		c.Store32(a+16, 99)
	})
	if got != 7 {
		t.Errorf("load: got %d, want 7", got)
	}
	if v := m.ReadWord64(a + 8); v != 21 {
		t.Errorf("store: got %d, want 21", v)
	}
	if v := m.ReadWord32(a + 16); v != 99 {
		t.Errorf("store32: got %d, want 99", v)
	}
	st := m.Stats()
	if st.Accesses != 3 || st.Loads != 1 || st.Stores != 2 {
		t.Errorf("counts: %+v", st)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSub32Halves(t *testing.T) {
	m := New(DefaultConfig(1, MESI))
	a := m.Alloc(64, 64)
	m.Run(func(c *Ctx) {
		c.Store32(a, 0x11111111)
		c.Store32(a+4, 0x22222222)
	})
	if v := m.ReadWord64(a); v != 0x2222222211111111 {
		t.Errorf("packed word: %#x", v)
	}
	if m.ReadWord32(a) != 0x11111111 || m.ReadWord32(a+4) != 0x22222222 {
		t.Error("32-bit halves wrong")
	}
}

// TestSharedCounterAllProtocols: the flagship correctness property — N cores
// each add to one shared counter; the final value must be exact under MESI
// (atomics), MEUSI (buffered commutative updates + reductions) and RMO.
func TestSharedCounterAllProtocols(t *testing.T) {
	const perCore = 200
	for _, p := range []Protocol{MESI, MEUSI, RMO} {
		for _, cores := range []int{1, 4, 16, 32} {
			m := New(smallCfg(cores, p))
			ctr := m.Alloc(64, 64)
			m.Run(func(c *Ctx) {
				for i := 0; i < perCore; i++ {
					c.CommAdd64(ctr, 1)
				}
			})
			want := uint64(perCore * cores)
			if got := m.ReadWord64(ctr); got != want {
				t.Errorf("%v/%d cores: counter=%d, want %d", p, cores, got, want)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Errorf("%v/%d cores: %v", p, cores, err)
			}
		}
	}
}

// TestReadTriggersReduction: under MEUSI a read must observe every buffered
// update from every core, mid-run, not just at drain time.
func TestReadTriggersReduction(t *testing.T) {
	const cores = 8
	m := New(smallCfg(cores, MEUSI))
	ctr := m.Alloc(64, 64)
	reads := make([]uint64, cores)
	m.Run(func(c *Ctx) {
		for i := 0; i < 50; i++ {
			c.CommAdd64(ctr, 1)
		}
		c.Barrier()
		reads[c.Tid()] = c.Load64(ctr)
	})
	for tid, v := range reads {
		if v != 50*cores {
			t.Errorf("core %d read %d after barrier, want %d", tid, v, 50*cores)
		}
	}
	st := m.Stats()
	if st.FullReductions == 0 {
		t.Error("expected at least one full reduction")
	}
	if st.UGrants == 0 {
		t.Error("expected update-only grants")
	}
}

// TestMonotonicReads: for an increment-only counter, values observed by any
// single core must be non-decreasing — a consequence of coherence (Sec 3.3).
func TestMonotonicReads(t *testing.T) {
	for _, p := range []Protocol{MESI, MEUSI} {
		const cores = 8
		m := New(smallCfg(cores, p))
		ctr := m.Alloc(64, 64)
		bad := make([]bool, cores)
		m.Run(func(c *Ctx) {
			var last uint64
			for i := 0; i < 100; i++ {
				c.CommAdd64(ctr, 1)
				if i%7 == int(c.Rand()%7) {
					v := c.Load64(ctr)
					if v < last {
						bad[c.Tid()] = true
					}
					last = v
				}
			}
		})
		for tid, b := range bad {
			if b {
				t.Errorf("%v: core %d observed a decreasing counter", p, tid)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

// TestMixedTypesSerialize: different commutative-update types to the same
// line must serialize via reductions and still produce exact results.
func TestMixedTypesSerialize(t *testing.T) {
	const cores = 8
	m := New(smallCfg(cores, MEUSI))
	addA := m.Alloc(64, 64) // add64 target, word 0
	orB := addA + 8         // or64 target, word 1 of the same line!
	m.Run(func(c *Ctx) {
		for i := 0; i < 60; i++ {
			if i%2 == 0 {
				c.CommAdd64(addA, 1)
			} else {
				c.CommOr64(orB, 1<<uint(c.Tid()))
			}
		}
	})
	if got := m.ReadWord64(addA); got != 30*cores {
		t.Errorf("adds: got %d, want %d", got, 30*cores)
	}
	wantOr := uint64(1<<cores) - 1
	if got := m.ReadWord64(orB); got != wantOr {
		t.Errorf("ors: got %#x, want %#x", got, wantOr)
	}
	if m.Stats().TypeSwitches == 0 {
		t.Error("expected type switches between add64 and or64")
	}
}

// TestFloatCAS: floating-point commutative adds under MESI run as CAS retry
// loops; the sum must still be exact for integers-valued floats.
func TestFloatCAS(t *testing.T) {
	for _, p := range []Protocol{MESI, MEUSI} {
		const cores = 8
		m := New(smallCfg(cores, p))
		acc := m.Alloc(64, 64)
		m.Run(func(c *Ctx) {
			for i := 0; i < 50; i++ {
				c.CommAddF64(acc, 1.0)
			}
		})
		got := math.Float64frombits(m.ReadWord64(acc))
		if got != 50*cores {
			t.Errorf("%v: float sum %v, want %d", p, got, 50*cores)
		}
	}
}

// TestEvictionPartialReduction: a footprint far larger than the private
// caches forces U-line evictions; totals must survive partial reductions.
func TestEvictionPartialReduction(t *testing.T) {
	const cores = 4
	cfg := smallCfg(cores, MEUSI)
	cfg.L2Size = 1 << 10 // 16 lines: heavy eviction pressure
	m := New(cfg)
	const nctr = 4096
	base := m.Alloc(nctr*8, 64)
	const perCore = 8000
	m.Run(func(c *Ctx) {
		for i := 0; i < perCore; i++ {
			k := c.RandN(nctr)
			c.CommAdd64(base+8*k, 1)
		}
	})
	var total uint64
	for k := uint64(0); k < nctr; k++ {
		total += m.ReadWord64(base + 8*k)
	}
	if total != perCore*cores {
		t.Errorf("total=%d, want %d", total, perCore*cores)
	}
	if m.Stats().PartialReductions == 0 {
		t.Error("expected eviction-driven partial reductions")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCrossChip: cores on different chips contend on one line.
func TestCrossChip(t *testing.T) {
	for _, p := range []Protocol{MESI, MEUSI} {
		cfg := smallCfg(32, p) // 2 chips
		m := New(cfg)
		ctr := m.Alloc(64, 64)
		m.Run(func(c *Ctx) {
			for i := 0; i < 100; i++ {
				c.CommAdd64(ctr, 1)
			}
		})
		if got := m.ReadWord64(ctr); got != 3200 {
			t.Errorf("%v: got %d, want 3200", p, got)
		}
		st := m.Stats()
		if st.OffChipMsgs == 0 {
			t.Errorf("%v: expected off-chip traffic", p)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

// TestCoupBeatsAtomicsOnContention is the paper's headline shape: an
// update-heavy contended counter is much cheaper under MEUSI than MESI.
func TestCoupBeatsAtomicsOnContention(t *testing.T) {
	run := func(p Protocol) uint64 {
		m := New(smallCfg(32, p))
		ctr := m.Alloc(64, 64)
		m.Run(func(c *Ctx) {
			for i := 0; i < 300; i++ {
				c.CommAdd64(ctr, 1)
			}
		})
		return m.Stats().Cycles
	}
	mesi, meusi := run(MESI), run(MEUSI)
	if meusi*2 >= mesi {
		t.Errorf("MEUSI (%d cycles) should be >2x faster than MESI (%d) on a contended counter", meusi, mesi)
	}
}

// TestCoupTrafficReduction: the same workload must also produce far less
// off-chip traffic under MEUSI (paper: up to 20x less).
func TestCoupTrafficReduction(t *testing.T) {
	run := func(p Protocol) uint64 {
		m := New(smallCfg(32, p))
		ctr := m.Alloc(64, 64)
		m.Run(func(c *Ctx) {
			for i := 0; i < 300; i++ {
				c.CommAdd64(ctr, 1)
			}
		})
		return m.Stats().OffChipBytes
	}
	mesi, meusi := run(MESI), run(MEUSI)
	if meusi*4 >= mesi {
		t.Errorf("MEUSI off-chip bytes (%d) should be <1/4 of MESI (%d)", meusi, mesi)
	}
}

// TestDeterminism: identical configuration and seed must give identical
// cycle counts and stats.
func TestDeterminism(t *testing.T) {
	run := func() Stats {
		m := New(smallCfg(16, MEUSI))
		base := m.Alloc(64*64, 64)
		m.Run(func(c *Ctx) {
			for i := 0; i < 500; i++ {
				c.CommAdd64(base+64*(c.Rand()%64), 1)
				if i%10 == 0 {
					c.Load64(base + 64*(c.Rand()%64))
				}
			}
		})
		return m.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic stats:\n%+v\n%+v", a, b)
	}
}

// TestSeedChangesOutcome: different seeds must actually perturb timing
// (the Alameldeen-Wood mechanism needs real variation).
func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed uint64) uint64 {
		cfg := smallCfg(8, MESI)
		cfg.Seed = seed
		m := New(cfg)
		ctr := m.Alloc(64, 64)
		m.Run(func(c *Ctx) {
			for i := 0; i < 200; i++ {
				c.CommAdd64(ctr, 1)
			}
		})
		return m.Stats().Cycles
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical cycle counts (jitter not applied)")
	}
}

func TestBarrierAligns(t *testing.T) {
	m := New(smallCfg(4, MESI))
	after := make([]uint64, 4)
	m.Run(func(c *Ctx) {
		c.Work(uint64(c.Tid()) * 1000) // deliberately skewed
		c.Barrier()
		after[c.Tid()] = c.Now()
	})
	for i := 1; i < 4; i++ {
		if after[i] != after[0] {
			t.Errorf("barrier exit times differ: %v", after)
		}
	}
	if after[0] < 3000 {
		t.Errorf("barrier exited before slowest core arrived: %d", after[0])
	}
}

func TestSpinLock(t *testing.T) {
	const cores = 8
	m := New(smallCfg(cores, MESI))
	lock := m.Alloc(64, 64)
	val := m.Alloc(64, 64)
	m.Run(func(c *Ctx) {
		for i := 0; i < 20; i++ {
			c.SpinLock(lock)
			v := c.Load64(val) // non-atomic RMW under the lock
			c.Work(5)
			c.Store64(val, v+1)
			c.SpinUnlock(lock)
		}
	})
	if got := m.ReadWord64(val); got != 20*cores {
		t.Errorf("lock-protected counter: got %d, want %d", got, 20*cores)
	}
}

func TestAtomicsSemantics(t *testing.T) {
	m := New(smallCfg(2, MESI))
	a := m.Alloc(64, 64)
	olds := make([]uint64, 2)
	m.Run(func(c *Ctx) {
		olds[c.Tid()] = c.AtomicAdd64(a, 1)
	})
	// Exactly one core saw 0, the other saw 1.
	if !(olds[0]+olds[1] == 1) {
		t.Errorf("fetch-and-add olds: %v", olds)
	}
	if m.ReadWord64(a) != 2 {
		t.Errorf("final: %d", m.ReadWord64(a))
	}
}

func TestCASFailure(t *testing.T) {
	m := New(smallCfg(1, MESI))
	a := m.Alloc(64, 64)
	m.WriteWord64(a, 5)
	var ok1, ok2 bool
	m.Run(func(c *Ctx) {
		ok1 = c.CAS64(a, 4, 9) // must fail
		ok2 = c.CAS64(a, 5, 9) // must succeed
	})
	if ok1 || !ok2 || m.ReadWord64(a) != 9 {
		t.Errorf("CAS semantics: ok1=%v ok2=%v val=%d", ok1, ok2, m.ReadWord64(a))
	}
}

// TestAMATAccounting: breakdown totals must equal the per-access sums.
func TestAMATAccounting(t *testing.T) {
	m := New(smallCfg(8, MEUSI))
	base := m.Alloc(128*64, 64)
	m.Run(func(c *Ctx) {
		for i := 0; i < 300; i++ {
			c.CommAdd64(base+64*(c.Rand()%128), 1)
			c.Load64(base + 64*(c.Rand()%128))
		}
	})
	st := m.Stats()
	var sum uint64
	for _, v := range []uint64{st.Breakdown.L1, st.Breakdown.L2, st.Breakdown.L3,
		st.Breakdown.Net, st.Breakdown.L4Inval, st.Breakdown.L4, st.Breakdown.Mem} {
		sum += v
	}
	if sum != st.Breakdown.Total() {
		t.Errorf("breakdown total %d != sum %d", st.Breakdown.Total(), sum)
	}
	if st.AMAT() <= 0 {
		t.Error("AMAT must be positive")
	}
	lv := st.L1Hits + st.L2Hits
	if lv > st.Accesses {
		t.Errorf("hit counts exceed accesses: %d > %d", lv, st.Accesses)
	}
}

// TestRandomSoupInvariants: a property test — random mixes of commutative
// adds and loads over a small address pool keep every structural invariant
// and the exact total, under both protocols and across seeds.
func TestRandomSoupInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		for _, p := range []Protocol{MESI, MEUSI} {
			cfg := smallCfg(8, p)
			cfg.Seed = seed%1000 + 1
			m := New(cfg)
			const nAddr = 32
			base := m.Alloc(nAddr*8, 64) // several counters per line
			var issued [8]uint64
			m.Run(func(c *Ctx) {
				n := 100 + c.Rand()%100
				for i := uint64(0); i < n; i++ {
					a := base + 8*c.RandN(nAddr)
					switch c.Rand() % 4 {
					case 0, 1:
						c.CommAdd64(a, 1)
						issued[c.Tid()]++
					case 2:
						c.Load64(a)
					case 3:
						c.CommOr64(a, 0) // or-identity: value-neutral, type-churning
					}
				}
			})
			if err := m.CheckInvariants(); err != nil {
				t.Logf("%v seed %d: %v", p, seed, err)
				return false
			}
			var want, got uint64
			for _, n := range issued {
				want += n
			}
			for k := uint64(0); k < nAddr; k++ {
				got += m.ReadWord64(base + 8*k)
			}
			if got != want {
				t.Logf("%v seed %d: total %d want %d", p, seed, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestULocalHitRate: after warm-up, repeated commutative updates from many
// cores to one line must be satisfied locally under MEUSI.
func TestULocalHitRate(t *testing.T) {
	m := New(smallCfg(16, MEUSI))
	ctr := m.Alloc(64, 64)
	m.Run(func(c *Ctx) {
		for i := 0; i < 500; i++ {
			c.CommAdd64(ctr, 1)
		}
	})
	st := m.Stats()
	if st.ULocalHits < st.CommUpdates*9/10 {
		t.Errorf("local hits %d of %d updates — COUP's fast path is broken", st.ULocalHits, st.CommUpdates)
	}
}

// TestRunTwicePanics documents the single-run contract.
func TestRunTwicePanics(t *testing.T) {
	m := New(smallCfg(1, MESI))
	m.Run(func(c *Ctx) {})
	defer func() {
		if recover() == nil {
			t.Error("second Run must panic")
		}
	}()
	m.Run(func(c *Ctx) {})
}

func TestAllocAlignment(t *testing.T) {
	m := New(DefaultConfig(1, MESI))
	a := m.Alloc(10, 64)
	b := m.Alloc(10, 64)
	if a%64 != 0 || b%64 != 0 || b <= a {
		t.Errorf("alloc: a=%#x b=%#x", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad alignment must panic")
		}
	}()
	m.Alloc(8, 3)
}

func TestArrayLRU(t *testing.T) {
	a := newArray[int](4*64, 2) // 4 lines, 2 ways, 2 sets
	// Fill one set (lines 0 and 2 map to set 0 with 2 sets).
	s0, _, _, ev, _ := a.insert(0)
	if ev {
		t.Fatal("no eviction expected")
	}
	*s0 = 10
	s2, _, _, _, _ := a.insert(2)
	*s2 = 20
	a.lookup(0) // touch 0: now 2 is LRU
	_, vt, vp, ev, _ := a.insert(4)
	if !ev || vt != 2 || vp != 20 {
		t.Errorf("eviction: ev=%v tag=%d p=%d, want line 2", ev, vt, vp)
	}
	if a.peek(0) == nil || a.peek(4) == nil || a.peek(2) != nil {
		t.Error("array contents wrong after eviction")
	}
	a.invalidate(0)
	if a.peek(0) != nil {
		t.Error("invalidate failed")
	}
	if a.contains(4) != true {
		t.Error("contains failed")
	}
}

func TestRMOUpdatesCorrectAndRemote(t *testing.T) {
	m := New(smallCfg(16, RMO))
	ctr := m.Alloc(64, 64)
	m.Run(func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.CommAdd64(ctr, 2)
		}
	})
	if got := m.ReadWord64(ctr); got != 3200 {
		t.Errorf("RMO total: %d, want 3200", got)
	}
	st := m.Stats()
	// Remote updates never hit locally.
	if st.ULocalHits != 0 {
		t.Errorf("RMO must not have local update hits, got %d", st.ULocalHits)
	}
	if st.OffChipMsgs == 0 {
		t.Error("RMO updates must cross the network")
	}
}

func TestWorkAdvancesTime(t *testing.T) {
	m := New(DefaultConfig(1, MESI))
	var before, after uint64
	m.Run(func(c *Ctx) {
		before = c.Now()
		c.Work(1234)
		after = c.Now()
	})
	if after-before != 1234 {
		t.Errorf("Work: advanced %d, want 1234", after-before)
	}
}

// TestRNGIntnRangeAndUniformity covers the Lemire multiply-shift reduction
// in rng.intn: values stay in [0, n) for awkward (non-power-of-two) n, and
// buckets come out close to uniform — the property the old next()%n
// reduction violated by favoring small residues.
func TestRNGIntnRangeAndUniformity(t *testing.T) {
	r := newRNG(42)
	if r.intn(0) != 0 {
		t.Error("intn(0) must be 0")
	}
	if r.intn(1) != 0 {
		t.Error("intn(1) must be 0")
	}
	for _, n := range []uint64{2, 3, 5, 7, 100, 1000, 1 << 16, (1 << 40) + 17} {
		for i := 0; i < 200; i++ {
			if v := r.intn(n); v >= n {
				t.Fatalf("intn(%d) = %d out of range", n, v)
			}
		}
	}
	// Coarse uniformity over a prime bucket count: each bucket within 5%
	// of the expected draws (splitmix64 is far better than this bound).
	const n, draws = 7, 70_000
	var counts [n]uint64
	for i := 0; i < draws; i++ {
		counts[r.intn(n)]++
	}
	const want = draws / n
	for b, c := range counts {
		if c < want*95/100 || c > want*105/100 {
			t.Errorf("bucket %d: %d draws, want %d ±5%%", b, c, want)
		}
	}
}

// TestRNGIntnDeterministic pins that intn consumes exactly one next() per
// call, so the per-core random streams stay reproducible across runs.
func TestRNGIntnDeterministic(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		if av, bv := a.intn(97), b.intn(97); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
	a.next() // desync by one draw
	var diff bool
	for i := 0; i < 10; i++ {
		if a.intn(97) != b.intn(97) {
			diff = true
		}
	}
	if !diff {
		t.Error("streams identical after desync; intn is not consuming the generator")
	}
}
