// Package sim is an execution-driven, cycle-accounting simulator of the
// multi-socket cache-coherent system the paper evaluates (Table 1, Fig 9):
// 1–128 cores, 16 cores per processor chip, per-core L1D and L2, a banked
// per-chip L3 with an in-cache directory, a dancehall off-chip network to
// the same number of L4-and-global-directory chips, and DDR3-like memory
// channels. It implements both the MESI baseline and COUP's MEUSI, plus a
// remote-memory-operation (RMO) mode as an extra baseline for the Fig 1
// comparison.
//
// # Engine architecture
//
// Simulated threads are ordinary Go functions, each run inside a pulled
// iterator (iter.Pull), so suspending a thread at a memory operation and
// resuming it with the result is a direct coroutine switch — no channels
// and no Go-scheduler round trip. Exactly one thread executes at any
// instant: the engine services the thread whose next operation has the
// earliest (issue time, core id), applies it functionally, charges its
// latency, and resumes it. Execution is therefore deterministic, data-race
// free, and functionally exact: CAS failures, atomic interleavings and COUP
// reductions all happen for real, and every workload validates its final
// memory image against a sequential reference.
//
// Three structures keep the per-operation cost allocation-free: the
// scheduler is a loser tree over packed (time<<16 | id) keys whose root
// names the next core and whose path losers bound how far that core may
// run ahead — operations below that horizon are serviced inline in
// Ctx.exec with no coroutine switch at all (a single-core machine runs its
// whole kernel that way); the cache and directory arrays store 31-bit
// hardware-style tags structure-of-arrays in lazily allocated pages; and
// the backing memory image is a two-level paged table with lines embedded
// by value. Machines beyond 256 cores fall back to a radix-16 min
// structure over the same packed keys (same inline run-ahead, wider
// groups instead of binary matches), and only past 65536 cores — where
// ids no longer fit a packed key — to a 4-ary min-heap. See README.md
// for measured throughput.
//
// The simulator substitutes for zsim (Sanchez & Kozyrakis, ISCA'13), which
// is unavailable here; see DESIGN.md for the substitution argument.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	coh "repro/internal/core"
)

// Protocol selects the memory-system behaviour of a simulated machine. It
// is an index into an open protocol table: the five paper protocols are
// pre-registered, and new variants (different stable-state tables, remote
// execution, future N-state generalizations of Sec 3.4) plug in through
// RegisterProtocol without touching the engine, which only ever consults
// the behaviour axes of a ProtocolSpec.
type Protocol uint8

const (
	// MESI is the baseline protocol; commutative updates execute as atomic
	// read-modify-writes (or CAS loops for floating point).
	MESI Protocol = iota
	// MEUSI is MESI extended with COUP's update-only state (Fig 6).
	MEUSI
	// RMO models remote memory operations (Fig 1b): commutative updates are
	// shipped to the line's home L4 bank and executed by an ALU there; lines
	// being remotely updated are not cached by updaters.
	RMO
	// MSI is the E-less baseline (Sec 3.1's starting point); used to ablate
	// the exclusive-clean optimization.
	MSI
	// MUSI is MSI plus the update-only state (Fig 4): COUP without the
	// E-state optimization of Fig 6.
	MUSI
)

// ProtocolSpec describes a protocol variant along the behaviour axes the
// engine understands: which stable-state table private caches and
// directories run (internal/core), and whether commutative updates are
// shipped to the line's home L4 bank instead of being cached locally.
type ProtocolSpec struct {
	// Name is the registry key (unique, case-insensitively).
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Kind selects the stable-state table (MSI, MESI, MUSI or MEUSI).
	// Kinds with the U state give commutative updates the private-cache
	// fast path of Fig 4/Fig 6.
	Kind coh.Kind
	// Remote ships commutative updates to the line's home L4 bank (Fig 1b)
	// instead of executing them in the core. Requires a U-less Kind.
	Remote bool
}

// HasU reports whether the spec supports COUP's update-only state.
func (s ProtocolSpec) HasU() bool { return s.Kind.HasU() }

// CommNative reports whether commutative-update instructions are executed
// as such rather than falling back to conventional atomics.
func (s ProtocolSpec) CommNative() bool { return s.HasU() || s.Remote }

var (
	protocolMu sync.RWMutex
	// protocolTable is indexed by Protocol; the first five entries mirror
	// the MESI..MUSI constants above.
	protocolTable = []ProtocolSpec{
		MESI:  {Name: "MESI", Desc: "baseline; commutative updates run as atomics (Sec 2)", Kind: coh.MESI},
		MEUSI: {Name: "MEUSI", Desc: "COUP on MESI: update-only state with E optimization (Fig 6)", Kind: coh.MEUSI},
		RMO:   {Name: "RMO", Desc: "remote memory operations at the home L4 bank (Fig 1b)", Kind: coh.MESI, Remote: true},
		MSI:   {Name: "MSI", Desc: "E-less baseline (Sec 3.1 starting point)", Kind: coh.MSI},
		MUSI:  {Name: "MUSI", Desc: "COUP on MSI: update-only state without E (Fig 4)", Kind: coh.MUSI},
	}
)

// RegisterProtocol adds a protocol variant to the table and returns its
// Protocol id. It fails on an empty or duplicate name (case-insensitive)
// and on inconsistent axes (Remote with a U-state Kind). Registration must
// complete before machines using the new protocol are built; it is safe
// for concurrent use.
func RegisterProtocol(s ProtocolSpec) (Protocol, error) {
	if s.Name == "" {
		return 0, fmt.Errorf("sim: protocol name must be non-empty")
	}
	if s.Remote && s.Kind.HasU() {
		return 0, fmt.Errorf("sim: protocol %q: Remote requires a U-less Kind, got %v", s.Name, s.Kind)
	}
	protocolMu.Lock()
	defer protocolMu.Unlock()
	for _, have := range protocolTable {
		if strings.EqualFold(have.Name, s.Name) {
			return 0, fmt.Errorf("sim: protocol %q already registered", s.Name)
		}
	}
	if len(protocolTable) > int(^uint8(0)) {
		return 0, fmt.Errorf("sim: protocol table full")
	}
	protocolTable = append(protocolTable, s)
	return Protocol(len(protocolTable) - 1), nil
}

// ProtocolByName looks up a registered protocol case-insensitively.
func ProtocolByName(name string) (Protocol, bool) {
	protocolMu.RLock()
	defer protocolMu.RUnlock()
	for i, s := range protocolTable {
		if strings.EqualFold(s.Name, name) {
			return Protocol(i), true
		}
	}
	return 0, false
}

// ProtocolIDs returns the id of every registered protocol, sorted by name.
func ProtocolIDs() []Protocol {
	type entry struct {
		id   Protocol
		name string
	}
	protocolMu.RLock()
	entries := make([]entry, len(protocolTable))
	for i, s := range protocolTable {
		entries[i] = entry{id: Protocol(i), name: s.Name}
	}
	protocolMu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	ids := make([]Protocol, len(entries))
	for i, e := range entries {
		ids[i] = e.id
	}
	return ids
}

// Protocols returns the specs of every registered protocol, sorted by name.
func Protocols() []ProtocolSpec {
	protocolMu.RLock()
	out := append([]ProtocolSpec(nil), protocolTable...)
	protocolMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Spec returns the protocol's registered behaviour description. Unknown
// ids return a zero-valued spec (which validates as a broken config).
func (p Protocol) Spec() ProtocolSpec {
	protocolMu.RLock()
	defer protocolMu.RUnlock()
	if int(p) >= len(protocolTable) {
		return ProtocolSpec{}
	}
	return protocolTable[p]
}

func (p Protocol) String() string {
	if s := p.Spec(); s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("Protocol(%d)", uint8(p))
}

// Kind maps the protocol to its stable-state table kind.
func (p Protocol) Kind() coh.Kind { return p.Spec().Kind }

// HasU reports whether the protocol supports COUP's update-only state.
func (p Protocol) HasU() bool { return p.Spec().HasU() }

// Remote reports whether commutative updates execute at the home L4 bank.
func (p Protocol) Remote() bool { return p.Spec().Remote }

// Config describes a simulated machine. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Protocol Protocol
	// Cores is the total number of simulated cores (1–128 in the paper).
	Cores int
	// CoresPerChip is the number of cores per processor chip (Table 1: 16).
	CoresPerChip int

	// Latencies, in cycles at 2.4 GHz (Table 1).
	L1Lat   uint64 // L1D hit: 4
	L2Lat   uint64 // private L2: 7
	L3Lat   uint64 // shared L3 bank + in-cache directory: 27
	LinkLat uint64 // off-chip point-to-point link, each direction: 40
	L4Lat   uint64 // L4 bank + global directory: 35
	MemLat  uint64 // DDR3-1600-CL10 access: ~120 cycles

	// OnChipHop is the one-way on-chip network latency between an L3 bank
	// and a core's private L2, used for invalidation/reduction round trips.
	OnChipHop uint64
	// AtomicOverhead models the four-µop load-linked/execute/store-
	// conditional/fence sequence used for both atomic and commutative-update
	// instructions (Sec 5.1).
	AtomicOverhead uint64

	// Cache geometry. Sizes are in bytes; defaults are the unscaled Table 1
	// organization (cache arrays are lazily allocated per set, so full-size
	// geometry costs memory only for the sets a workload touches). Using the
	// real capacities keeps the key working sets — histograms, bitmaps,
	// counter pools — in the same fits-in-L2/L3 regimes as the paper even
	// though input streams are scaled down.
	//
	// Together with Cores/CoresPerChip and the bank/channel counts below,
	// these fields form the geometry key an Arena pools machines under
	// (see arena.go): two configs differing only in protocol, latencies,
	// seed or jitter recycle the same machine.
	L1Size, L1Ways   int // 32 KB, 8-way
	L2Size, L2Ways   int // 256 KB, 8-way
	L3Size, L3Ways   int // per chip; 32 MB, 16-way, 8 banks
	L4Size, L4Ways   int // per L4 chip; 128 MB, 16-way, 8 banks
	L3Banks, L4Banks int
	MemChannels      int // DDR3 channels per L4 chip: 4

	// DirBankService is the bank occupancy per directory transaction.
	DirBankService uint64
	// MemChannelService is the channel occupancy per memory access (burst).
	MemChannelService uint64

	// Reduction unit (Sec 5.1): a 2-stage pipelined 256-bit ALU reduces one
	// 64-byte line every 2 cycles with a 3-cycle latency. The Sec 5.5
	// sensitivity study compares against an unpipelined 64-bit ALU (one line
	// per 16 cycles).
	ReduceCyclesPerLine uint64
	ReduceLatency       uint64

	// FlatReductions disables hierarchical reductions (Sec 3.2): the L4
	// collects one partial per core rather than one per chip. Ablation only.
	FlatReductions bool

	// BarrierBase and BarrierPerLog2Core model a software tree barrier.
	BarrierBase        uint64
	BarrierPerLog2Core uint64

	// Seed drives the workload RNGs and the small non-determinism injection
	// (Alameldeen & Wood) used to compute confidence intervals.
	Seed uint64
	// Jitter is the maximum per-miss random latency perturbation, cycles.
	Jitter uint64
}

// DefaultConfig returns the Table 1 machine with the given core count and
// protocol, with cache capacities scaled as documented on Config.
func DefaultConfig(cores int, p Protocol) Config {
	return Config{
		Protocol:     p,
		Cores:        cores,
		CoresPerChip: 16,

		L1Lat: 4, L2Lat: 7, L3Lat: 27, LinkLat: 40, L4Lat: 35, MemLat: 120,
		OnChipHop:      6,
		AtomicOverhead: 10,

		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 256 << 10, L2Ways: 8,
		L3Size: 32 << 20, L3Ways: 16, L3Banks: 8,
		L4Size: 128 << 20, L4Ways: 16, L4Banks: 8,
		MemChannels: 4,

		DirBankService:    4,
		MemChannelService: 10,

		ReduceCyclesPerLine: 2,
		ReduceLatency:       3,

		BarrierBase:        300,
		BarrierPerLog2Core: 60,

		Seed:   1,
		Jitter: 3,
	}
}

// Chips returns the number of processor chips (== L4 chips; the paper
// scales both together, Sec 5.1).
func (c *Config) Chips() int {
	n := (c.Cores + c.CoresPerChip - 1) / c.CoresPerChip
	if n < 1 {
		n = 1
	}
	return n
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Protocol.Spec().Name == "" {
		return fmt.Errorf("sim: unregistered protocol id %d", uint8(c.Protocol))
	}
	if c.Cores < 1 {
		return fmt.Errorf("sim: Cores must be >= 1, got %d", c.Cores)
	}
	if c.CoresPerChip < 1 {
		return fmt.Errorf("sim: CoresPerChip must be >= 1")
	}
	if c.Cores > 64*c.CoresPerChip {
		return fmt.Errorf("sim: too many cores (%d)", c.Cores)
	}
	for _, g := range []struct {
		name       string
		size, ways int
	}{
		{"L1", c.L1Size, c.L1Ways}, {"L2", c.L2Size, c.L2Ways},
		{"L3", c.L3Size, c.L3Ways}, {"L4", c.L4Size, c.L4Ways},
	} {
		if g.size < 64*g.ways || g.ways < 1 {
			return fmt.Errorf("sim: bad %s geometry (%dB, %d ways)", g.name, g.size, g.ways)
		}
	}
	if c.L3Banks < 1 || c.L4Banks < 1 || c.MemChannels < 1 {
		return fmt.Errorf("sim: banks/channels must be >= 1")
	}
	if c.ReduceCyclesPerLine < 1 {
		return fmt.Errorf("sim: ReduceCyclesPerLine must be >= 1")
	}
	return nil
}

func log2ceil(n int) uint64 {
	var l uint64
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}
