package sim

import (
	"testing"
)

// arenaKernel is a small mixed workload tuned to touch every pooled
// structure: strided loads (L2/L3 evictions), contended commutative
// updates (U grants, reductions), stores (M lines, writebacks) and a
// barrier (scheduler park/release).
func arenaKernel(input, hist uint64, n int) func(c *Ctx) {
	return func(c *Ctx) {
		for i := 0; i < n; i++ {
			c.Load64(input + uint64(i%512)*64)
			c.CommAdd64(hist+uint64(c.Rand()%64)*8, 1)
			if i%8 == 0 {
				c.Store64(input+uint64(i%512)*64, uint64(i))
			}
		}
		c.Barrier()
		for i := 0; i < n/2; i++ {
			c.CommAdd64(hist+uint64(c.Rand()%8)*8, 1)
		}
	}
}

func runArenaKernel(t *testing.T, a *Arena, cfg Config) Stats {
	t.Helper()
	m := NewIn(a, cfg)
	input := m.Alloc(512*64, 64)
	hist := m.Alloc(64*8, 64)
	st := m.Run(arenaKernel(input, hist, 200))
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	m.Release()
	return st
}

func arenaConfigs() []Config {
	var out []Config
	for _, p := range []Protocol{MESI, MEUSI, MUSI, RMO} {
		for _, cores := range []int{4, 17} { // 17 crosses the chip boundary
			for _, seed := range []uint64{1, 9} {
				cfg := DefaultConfig(cores, p)
				cfg.L2Size = 4 << 10 // shrink so evictions happen
				cfg.L3Size = 64 << 10
				cfg.L4Size = 256 << 10
				cfg.Seed = seed
				out = append(out, cfg)
			}
		}
	}
	return out
}

// TestArenaReuseIdentical pins the arena's zero-on-reuse contract: a
// machine recycled through an arena — across protocol, seed AND shape
// changes — must produce byte-identical Stats to a fresh machine for
// every config. The config list deliberately interleaves shapes so the
// pool must reset rather than rebuild.
func TestArenaReuseIdentical(t *testing.T) {
	fresh := map[int]Stats{}
	for i, cfg := range arenaConfigs() {
		fresh[i] = runArenaKernel(t, nil, cfg)
	}
	a := NewArena()
	// Two passes through the same arena: the first pass populates the
	// pool (first occurrence of each shape builds, later ones recycle),
	// the second pass recycles everything.
	for pass := 0; pass < 2; pass++ {
		for i, cfg := range arenaConfigs() {
			got := runArenaKernel(t, a, cfg)
			if got != fresh[i] {
				t.Fatalf("pass %d cfg %d (%v, %d cores, seed %d): arena stats differ from fresh machine\narena: %+v\nfresh: %+v",
					pass, i, cfg.Protocol, cfg.Cores, cfg.Seed, got, fresh[i])
			}
		}
	}
}

// TestArenaConstructionAllocFree pins the arena's purpose: once a shape is
// pooled, taking and releasing a machine allocates nothing.
func TestArenaConstructionAllocFree(t *testing.T) {
	cfg := DefaultConfig(8, MEUSI)
	a := NewArena()
	NewIn(a, cfg).Release() // populate the pool
	allocs := testing.AllocsPerRun(10, func() {
		NewIn(a, cfg).Release()
	})
	if allocs > 0 {
		t.Errorf("recycled machine construction allocates %.1f objects/op, want 0", allocs)
	}
}

// TestArenaReleaseSemantics covers the Release edge cases: nil-arena
// machines ignore Release, double Release panics.
func TestArenaReleaseSemantics(t *testing.T) {
	New(DefaultConfig(1, MESI)).Release()        // no-op
	NewIn(nil, DefaultConfig(1, MESI)).Release() // no-op

	a := NewArena()
	m := NewIn(a, DefaultConfig(1, MESI))
	m.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	m.Release()
}

// TestArenaCapLRU pins the capped pool's eviction policy: with a cap of
// n machines, the pool never holds more than n, and the shape dropped is
// the one least recently used — recently touched shapes stay warm.
func TestArenaCapLRU(t *testing.T) {
	shapes := []Config{
		DefaultConfig(2, MESI),
		DefaultConfig(4, MESI),
		DefaultConfig(8, MESI),
	}
	a := NewArena()
	a.SetCap(2)
	// Release one machine of each shape in order: shape 0, 1, 2. The third
	// Release exceeds the cap and must evict shape 0 (LRU).
	for _, cfg := range shapes {
		NewIn(a, cfg).Release()
	}
	if got := a.Pooled(); got != 2 {
		t.Fatalf("pooled=%d after 3 releases with cap 2, want 2", got)
	}
	if got := a.Evictions(); got != 1 {
		t.Fatalf("evictions=%d, want 1", got)
	}
	warm0, cold0 := a.PoolStats()
	// Shape 0 was evicted: taking it again is a cold build. Shapes 1 and 2
	// survived: warm.
	NewIn(a, shapes[1]).Release()
	NewIn(a, shapes[2]).Release()
	NewIn(a, shapes[0]).Release()
	warm, cold := a.PoolStats()
	if warm-warm0 != 2 || cold-cold0 != 1 {
		t.Errorf("after evicting shape 0: warm+=%d cold+=%d, want warm+=2 cold+=1", warm-warm0, cold-cold0)
	}
	// That last round touched 1, 2, then 0 — so the over-cap release of
	// shape 0 must have evicted shape 1, now the LRU.
	if got := a.Evictions(); got != 2 {
		t.Fatalf("evictions=%d, want 2", got)
	}
	NewIn(a, shapes[2]).Release() // warm (stayed resident)
	NewIn(a, shapes[0]).Release() // warm (most recently released)
	warm2, cold2 := a.PoolStats()
	if warm2-warm != 2 || cold2 != cold {
		t.Errorf("hot shapes after LRU eviction: warm+=%d cold+=%d, want warm+=2 cold+=0", warm2-warm, cold2-cold)
	}

	// Lowering the cap evicts immediately; removing it stops evicting.
	a.SetCap(1)
	if got := a.Pooled(); got != 1 {
		t.Errorf("pooled=%d after SetCap(1), want 1", got)
	}
	a.SetCap(0)
	for _, cfg := range shapes {
		NewIn(a, cfg).Release()
	}
	if got := a.Pooled(); got != 3 {
		t.Errorf("pooled=%d with cap removed, want 3", got)
	}
}

// TestArenaCapIdenticalResults pins that capping changes only residency,
// never results: a multi-shape sweep through a cap-1 arena (every second
// take is a cold rebuild) matches the uncapped stats byte for byte.
func TestArenaCapIdenticalResults(t *testing.T) {
	fresh := map[int]Stats{}
	for i, cfg := range arenaConfigs() {
		fresh[i] = runArenaKernel(t, nil, cfg)
	}
	a := NewArena()
	a.SetCap(1)
	for pass := 0; pass < 2; pass++ {
		for i, cfg := range arenaConfigs() {
			got := runArenaKernel(t, a, cfg)
			if got != fresh[i] {
				t.Fatalf("pass %d cfg %d (%v, %d cores, seed %d): capped-arena stats differ from fresh\ncapped: %+v\nfresh:  %+v",
					pass, i, cfg.Protocol, cfg.Cores, cfg.Seed, got, fresh[i])
			}
		}
	}
	if a.Pooled() > 1 {
		t.Errorf("pooled=%d exceeds cap 1", a.Pooled())
	}
	if a.Evictions() == 0 {
		t.Error("multi-shape sweep through cap-1 arena never evicted")
	}
}

// TestArenaRunAfterReuse exercises the reused scheduler scratch: a pooled
// machine must run the >256-core heap scheduler and the barrier paths
// correctly on its second life.
func TestArenaRunAfterReuse(t *testing.T) {
	cfg := DefaultConfig(4, MEUSI)
	a := NewArena()
	first := runArenaKernel(t, a, cfg)
	second := runArenaKernel(t, a, cfg)
	if first != second {
		t.Errorf("same config twice through one arena differs:\n1st %+v\n2nd %+v", first, second)
	}
}
