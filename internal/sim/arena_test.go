package sim

import (
	"testing"
)

// arenaKernel is a small mixed workload tuned to touch every pooled
// structure: strided loads (L2/L3 evictions), contended commutative
// updates (U grants, reductions), stores (M lines, writebacks) and a
// barrier (scheduler park/release).
func arenaKernel(input, hist uint64, n int) func(c *Ctx) {
	return func(c *Ctx) {
		for i := 0; i < n; i++ {
			c.Load64(input + uint64(i%512)*64)
			c.CommAdd64(hist+uint64(c.Rand()%64)*8, 1)
			if i%8 == 0 {
				c.Store64(input+uint64(i%512)*64, uint64(i))
			}
		}
		c.Barrier()
		for i := 0; i < n/2; i++ {
			c.CommAdd64(hist+uint64(c.Rand()%8)*8, 1)
		}
	}
}

func runArenaKernel(t *testing.T, a *Arena, cfg Config) Stats {
	t.Helper()
	m := NewIn(a, cfg)
	input := m.Alloc(512*64, 64)
	hist := m.Alloc(64*8, 64)
	st := m.Run(arenaKernel(input, hist, 200))
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	m.Release()
	return st
}

func arenaConfigs() []Config {
	var out []Config
	for _, p := range []Protocol{MESI, MEUSI, MUSI, RMO} {
		for _, cores := range []int{4, 17} { // 17 crosses the chip boundary
			for _, seed := range []uint64{1, 9} {
				cfg := DefaultConfig(cores, p)
				cfg.L2Size = 4 << 10 // shrink so evictions happen
				cfg.L3Size = 64 << 10
				cfg.L4Size = 256 << 10
				cfg.Seed = seed
				out = append(out, cfg)
			}
		}
	}
	return out
}

// TestArenaReuseIdentical pins the arena's zero-on-reuse contract: a
// machine recycled through an arena — across protocol, seed AND shape
// changes — must produce byte-identical Stats to a fresh machine for
// every config. The config list deliberately interleaves shapes so the
// pool must reset rather than rebuild.
func TestArenaReuseIdentical(t *testing.T) {
	fresh := map[int]Stats{}
	for i, cfg := range arenaConfigs() {
		fresh[i] = runArenaKernel(t, nil, cfg)
	}
	a := NewArena()
	// Two passes through the same arena: the first pass populates the
	// pool (first occurrence of each shape builds, later ones recycle),
	// the second pass recycles everything.
	for pass := 0; pass < 2; pass++ {
		for i, cfg := range arenaConfigs() {
			got := runArenaKernel(t, a, cfg)
			if got != fresh[i] {
				t.Fatalf("pass %d cfg %d (%v, %d cores, seed %d): arena stats differ from fresh machine\narena: %+v\nfresh: %+v",
					pass, i, cfg.Protocol, cfg.Cores, cfg.Seed, got, fresh[i])
			}
		}
	}
}

// TestArenaConstructionAllocFree pins the arena's purpose: once a shape is
// pooled, taking and releasing a machine allocates nothing.
func TestArenaConstructionAllocFree(t *testing.T) {
	cfg := DefaultConfig(8, MEUSI)
	a := NewArena()
	NewIn(a, cfg).Release() // populate the pool
	allocs := testing.AllocsPerRun(10, func() {
		NewIn(a, cfg).Release()
	})
	if allocs > 0 {
		t.Errorf("recycled machine construction allocates %.1f objects/op, want 0", allocs)
	}
}

// TestArenaReleaseSemantics covers the Release edge cases: nil-arena
// machines ignore Release, double Release panics.
func TestArenaReleaseSemantics(t *testing.T) {
	New(DefaultConfig(1, MESI)).Release()        // no-op
	NewIn(nil, DefaultConfig(1, MESI)).Release() // no-op

	a := NewArena()
	m := NewIn(a, DefaultConfig(1, MESI))
	m.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	m.Release()
}

// TestArenaRunAfterReuse exercises the reused scheduler scratch: a pooled
// machine must run the >256-core heap scheduler and the barrier paths
// correctly on its second life.
func TestArenaRunAfterReuse(t *testing.T) {
	cfg := DefaultConfig(4, MEUSI)
	a := NewArena()
	first := runArenaKernel(t, a, cfg)
	second := runArenaKernel(t, a, cfg)
	if first != second {
		t.Errorf("same config twice through one arena differs:\n1st %+v\n2nd %+v", first, second)
	}
}
