package sim

import (
	"runtime"
	"testing"
)

// TestSteadyStateZeroAllocs pins the engine's allocation-free hot path: in
// the steady state of a contended-counter run (every structure warm), a
// block of simulated operations must not allocate. Measured inside the
// kernel via the monotonic Mallocs counter, so setup and drain are
// excluded.
func TestSteadyStateZeroAllocs(t *testing.T) {
	const cores = 16
	m := New(benchCfg(cores, MEUSI))
	ctr := m.Alloc(64, 64)
	var delta uint64
	m.Run(func(c *Ctx) {
		for i := 0; i < 2000; i++ { // warm caches, tables, pools
			c.CommAdd64(ctr, 1)
		}
		if c.Tid() == 0 {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < 20000; i++ {
				c.CommAdd64(ctr, 1)
			}
			runtime.ReadMemStats(&after)
			delta = after.Mallocs - before.Mallocs
		} else {
			for i := 0; i < 20000; i++ {
				c.CommAdd64(ctr, 1)
			}
		}
	})
	// Tid 0's measured block interleaves with every other core's ops, so
	// this covers the full scheduler + hierarchy fast path. ReadMemStats
	// itself may account a handful of runtime-internal objects.
	if delta > 8 {
		t.Errorf("steady state allocated %d objects across 20000 ops, want ~0", delta)
	}
}

// TestBusyTableBasics covers the open-addressed line-serialization table:
// lookups of absent lines, overwrite, and collision probing.
func TestBusyTableBasics(t *testing.T) {
	bt := newBusyTable()
	if got := bt.get(42); got != 0 {
		t.Errorf("absent line: got %d, want 0", got)
	}
	bt.put(42, 100, 0)
	bt.put(43, 200, 0)
	bt.put(42, 150, 0) // overwrite
	if got := bt.get(42); got != 150 {
		t.Errorf("line 42: got %d, want 150", got)
	}
	if got := bt.get(43); got != 200 {
		t.Errorf("line 43: got %d, want 200", got)
	}
}

// TestBusyTableBounded is the regression test for the unbounded-growth
// leak: streaming millions of distinct, short-lived lines through a bank
// must not grow the table, because expired entries are reclaimed in place
// once the watermark passes them.
func TestBusyTableBounded(t *testing.T) {
	bt := newBusyTable()
	for i := uint64(0); i < 1_000_000; i++ {
		bt.put(i, i+10, i) // entry expires 10 cycles later
	}
	if len(bt.keys) > 1024 {
		t.Errorf("table grew to %d slots on churn-only traffic (leak)", len(bt.keys))
	}
	// Live (unexpired) entries must survive purges triggered by churn.
	bt2 := newBusyTable()
	bt2.put(7, 1<<40, 0)
	for i := uint64(100); i < 10_000; i++ {
		bt2.put(i, i+1, i)
	}
	if got := bt2.get(7); got != 1<<40 {
		t.Errorf("live entry lost during purges: got %d", got)
	}
}

// TestBusyTableGrow forces genuine growth (many concurrently live lines)
// and checks every entry survives the rehash.
func TestBusyTableGrow(t *testing.T) {
	bt := newBusyTable()
	const n = 500
	for i := uint64(0); i < n; i++ {
		bt.put(i, 1<<30+i, 0) // all live far in the future
	}
	for i := uint64(0); i < n; i++ {
		if got := bt.get(i); got != 1<<30+i {
			t.Fatalf("line %d: got %d, want %d", i, got, 1<<30+i)
		}
	}
}

// TestBackingPaged exercises the paged memory image across page
// boundaries: untouched memory reads zero, and writes land on the right
// lines including the sub-word halves.
func TestBackingPaged(t *testing.T) {
	b := newBacking()
	if b.read64(1<<30) != 0 {
		t.Error("untouched memory must read 0")
	}
	// Straddle a page boundary (pages are pageLineCount lines).
	boundary := uint64(pageLineCount) * 64
	b.write64(boundary-8, 0xAAAA)
	b.write64(boundary, 0xBBBB)
	if b.read64(boundary-8) != 0xAAAA || b.read64(boundary) != 0xBBBB {
		t.Error("writes across a page boundary corrupted")
	}
	b.write32(boundary+4, 0x1234)
	if b.read32(boundary+4) != 0x1234 || b.read32(boundary) != 0xBBBB&0xFFFFFFFF {
		t.Error("32-bit halves wrong across pages")
	}
}

// TestArrayLazyEvictTagRoundTrip pins the 31-bit hardware-style tag
// reconstruction on a lazily paged geometry: evicting from a far set must
// return the victim's full line address.
func TestArrayLazyEvictTagRoundTrip(t *testing.T) {
	a := newArray[int](32<<20, 16) // Table-1 L3 geometry: lazily paged
	sets := a.setMask + 1
	base := uint64(0x3F00_0000) >> 6  // a large line address
	base -= base & a.setMask          // align to set 0
	for k := uint64(0); k < 17; k++ { // 17 lines, same set, 16 ways
		p, vtag, vp, evicted, _ := a.insert(base + k*sets)
		*p = int(k)
		if k < 16 && evicted {
			t.Fatalf("unexpected eviction at insert %d", k)
		}
		if k == 16 {
			if !evicted {
				t.Fatal("17th insert must evict")
			}
			if vtag != base {
				t.Errorf("victim tag %#x, want %#x (tag round-trip broken)", vtag, base)
			}
			if vp != 0 {
				t.Errorf("victim payload %d, want 0", vp)
			}
		}
	}
	if a.peek(base+16*sets) == nil {
		t.Error("newest line missing after eviction")
	}
}

// TestManyBarriers stresses the scheduler's park/release path (the loser
// tree is rebuilt on every release) with skewed per-core work between
// barriers; the shared counter must stay exact.
func TestManyBarriers(t *testing.T) {
	const cores = 8
	m := New(smallCfg(cores, MEUSI))
	ctr := m.Alloc(64, 64)
	m.Run(func(c *Ctx) {
		for round := 0; round < 10; round++ {
			c.Work(uint64(c.Tid()*37+round) * 13)
			for i := 0; i < 25; i++ {
				c.CommAdd64(ctr, 1)
			}
			c.Barrier()
		}
	})
	if got := m.ReadWord64(ctr); got != 10*25*cores {
		t.Errorf("counter=%d, want %d", got, 10*25*cores)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRadixSchedulerLargeMachine drives the >256-core radix scheduler
// path end to end: exact results, determinism and invariants at 272 cores.
func TestRadixSchedulerLargeMachine(t *testing.T) {
	run := func() (uint64, Stats) {
		cfg := smallCfg(272, MEUSI) // 17 chips: beyond treeSchedCores
		m := New(cfg)
		ctr := m.Alloc(64, 64)
		m.Run(func(c *Ctx) {
			for i := 0; i < 20; i++ {
				c.CommAdd64(ctr, 1)
			}
			c.Barrier()
			if c.Tid() == 0 {
				c.Load64(ctr)
			}
		})
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return m.ReadWord64(ctr), m.Stats()
	}
	v1, s1 := run()
	v2, s2 := run()
	if v1 != 20*272 {
		t.Errorf("counter=%d, want %d", v1, 20*272)
	}
	if v1 != v2 || s1 != s2 {
		t.Error("radix scheduler is non-deterministic")
	}
}

// TestSchedulerEquivalence pins the contract every scheduler shares: any
// exact min-extraction over (time, id) keys produces the same event order,
// so the loser tree, the radix structure and the 4-ary heap must yield
// byte-identical stats on the same machine. The kernel mixes skewed Work,
// commutative updates, plain loads/stores and barriers so the run-ahead
// horizon, park/release rebuilds and finish re-keys all get exercised on
// every structure.
func TestSchedulerEquivalence(t *testing.T) {
	kernel := func(shared uint64) func(*Ctx) {
		return func(c *Ctx) {
			for round := 0; round < 4; round++ {
				c.Work(uint64(c.Tid()*31+round) * 7)
				for i := 0; i < 30; i++ {
					c.CommAdd64(shared, 1)
				}
				if c.Tid()%3 == 0 {
					c.Load64(shared + 64)
					c.Store64(shared+64, uint64(c.Tid()))
				}
				c.Barrier()
			}
		}
	}
	run := func(cores int, kind schedKind) (uint64, Stats) {
		t.Helper()
		defer func(prev schedKind) { schedOverride = prev }(schedOverride)
		schedOverride = kind
		m := New(smallCfg(cores, MEUSI))
		shared := m.Alloc(128, 64)
		m.Run(kernel(shared))
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return m.ReadWord64(shared), m.Stats()
	}
	// 48 cores: all three structures apply (the tree's path scratch caps
	// it at treeSchedCores, so the three-way comparison runs below that).
	vTree, sTree := run(48, schedTree)
	vRadix, sRadix := run(48, schedRadix)
	vHeap, sHeap := run(48, schedHeap)
	if vTree != 4*30*48 {
		t.Errorf("counter=%d, want %d", vTree, 4*30*48)
	}
	if vTree != vRadix || sTree != sRadix {
		t.Errorf("tree vs radix diverge at 48 cores:\n tree  %+v\n radix %+v", sTree, sRadix)
	}
	if vTree != vHeap || sTree != sHeap {
		t.Errorf("tree vs heap diverge at 48 cores:\n tree %+v\n heap %+v", sTree, sHeap)
	}
	// 272 cores: past the tree; the auto-selected radix path must match
	// the heap it replaced as the first fallback.
	vR, sR := run(272, schedRadix)
	vH, sH := run(272, schedHeap)
	if vR != vH || sR != sH {
		t.Errorf("radix vs heap diverge at 272 cores:\n radix %+v\n heap  %+v", sR, sH)
	}
}

// TestTreeSchedulerAtBoundary pins the largest tree-scheduled machine
// (exactly treeSchedCores cores, the packed-key id limit) to the exact
// expected total.
func TestTreeSchedulerAtBoundary(t *testing.T) {
	cfg := smallCfg(256, MEUSI) // exactly treeSchedCores
	m := New(cfg)
	ctr := m.Alloc(64, 64)
	m.Run(func(c *Ctx) {
		for i := 0; i < 10; i++ {
			c.CommAdd64(ctr, 1)
		}
	})
	if got := m.ReadWord64(ctr); got != 10*256 {
		t.Errorf("counter=%d, want %d", got, 10*256)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
