package sim

import (
	"testing"
)

// benchCfg is the 16-core single-chip Table-1 machine the engine
// microbenchmarks run on; caches are shrunk so eviction paths stay warm.
func benchCfg(cores int, p Protocol) Config {
	cfg := DefaultConfig(cores, p)
	cfg.L2Size = 16 << 10
	cfg.L3Size = 1 << 20
	cfg.L4Size = 4 << 20
	return cfg
}

// BenchmarkEngineThroughput is the headline engine-speed number: a
// fig2-shaped histogramming kernel (strided input loads, modelled per-
// pixel work, commutative adds into a shared 512-bin histogram) on 16
// cores under MEUSI. ns/op is per simulated memory operation; simops/s is
// the aggregate simulated-operation rate. Steady-state allocs/op must be
// zero.
func BenchmarkEngineThroughput(b *testing.B) {
	const cores = 16
	const bins = 512
	m := New(benchCfg(cores, MEUSI))
	input := m.Alloc(1<<16, 64)
	hist := m.Alloc(bins*4, 64)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(func(c *Ctx) {
		for i := 0; i < b.N; i++ {
			if i%4 == 0 {
				c.Load64(input + uint64(i%8192)*8)
			}
			c.Work(10)
			c.CommAdd32(hist+uint64(c.Rand()%bins)*4, 1)
		}
	})
	b.StopTimer()
	ops := m.Stats().Accesses
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
}

// BenchmarkEngineContendedCounter measures the scheduler + hierarchy hot
// path with every core hammering one shared counter.
func BenchmarkEngineContendedCounter(b *testing.B) {
	for _, p := range []Protocol{MESI, MEUSI} {
		b.Run(p.String(), func(b *testing.B) {
			const cores = 16
			m := New(benchCfg(cores, p))
			ctr := m.Alloc(64, 64)
			b.ReportAllocs()
			b.ResetTimer()
			m.Run(func(c *Ctx) {
				for i := 0; i < b.N; i++ {
					c.CommAdd64(ctr, 1)
				}
			})
			b.StopTimer()
			ops := m.Stats().Accesses
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
		})
	}
}

// BenchmarkEngineLoadL1 isolates pure engine overhead: single core,
// L1-resident loads, no coherence traffic at all. This is the floor every
// scheduler handoff, heap operation and backing-store access sits on.
func BenchmarkEngineLoadL1(b *testing.B) {
	m := New(benchCfg(1, MESI))
	a := m.Alloc(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(func(c *Ctx) {
		for i := 0; i < b.N; i++ {
			c.Load64(a)
		}
	})
}

// BenchmarkEngineCrossChip exercises the two-chip L4/global-directory
// path, where bank line-serialization tables see the most churn.
func BenchmarkEngineCrossChip(b *testing.B) {
	const cores = 32
	m := New(benchCfg(cores, MEUSI))
	base := m.Alloc(64*64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(func(c *Ctx) {
		for i := 0; i < b.N; i++ {
			c.CommAdd64(base+64*(c.Rand()%64), 1)
			if i%16 == 0 {
				c.Load64(base + 64*(c.Rand()%64))
			}
		}
	})
	b.StopTimer()
	ops := m.Stats().Accesses
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simops/s")
}
