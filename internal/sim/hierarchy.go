package sim

import (
	"fmt"

	coh "repro/internal/core"
	"repro/internal/ops"
)

// backing is the authoritative simulated memory image. MESI transactions
// read and write it directly (legal because the engine applies operations
// atomically in global issue order); under MEUSI, lines held update-only
// additionally have real partial-update buffers in the private caches, and
// reductions fold those buffers into the backing image. Nothing reads the
// image for a line while partial updates are outstanding — the directory
// reduces first — so eager folding on evictions is functionally exact.
type backing struct{ lines map[uint64]*ops.Line }

func newBacking() *backing { return &backing{lines: make(map[uint64]*ops.Line)} }

func (b *backing) lineOf(addr uint64) *ops.Line {
	l := addr >> 6
	p := b.lines[l]
	if p == nil {
		p = new(ops.Line)
		b.lines[l] = p
	}
	return p
}

func (b *backing) read64(addr uint64) uint64 { return b.lineOf(addr)[(addr>>3)&7] }
func (b *backing) write64(addr, v uint64)    { b.lineOf(addr)[(addr>>3)&7] = v }
func (b *backing) read32(addr uint64) uint32 {
	w := b.lineOf(addr)[(addr>>3)&7]
	if addr&4 != 0 {
		return uint32(w >> 32)
	}
	return uint32(w)
}
func (b *backing) write32(addr uint64, v uint32) {
	p := b.lineOf(addr)
	i := (addr >> 3) & 7
	if addr&4 != 0 {
		p[i] = p[i]&0x00000000FFFFFFFF | uint64(v)<<32
	} else {
		p[i] = p[i]&^uint64(0xFFFFFFFF) | uint64(v)
	}
}

// privLine is the coherence payload of a private (L2) cache line.
type privLine struct {
	state coh.State
	otype ops.Type  // operation type when state == U
	buf   *ops.Line // partial updates when state == U
}

// dirLine is the payload of an L3/L4 in-cache-directory entry. At the L3 it
// tracks the cores of one chip; at the L4 it tracks chips. cstate is only
// meaningful at the L3: the chip's own permission granted by the global
// directory (S, U, E or M).
type dirLine struct {
	sharers uint64 // bitvector of children holding non-exclusive copies
	owner   int16  // child holding E/M, or -1
	otype   ops.Type
	dirty   bool
	cstate  coh.State
}

func (d *dirLine) hasChildren() bool { return d.sharers != 0 || d.owner >= 0 }

// bank models one L3/L4 bank: directory/tag pipeline occupancy, per-line
// transaction serialization, and the bank's reduction unit (Sec 3.1.1).
type bank struct {
	busyUntil uint64
	redBusy   uint64
	lineBusy  map[uint64]uint64
}

func newBank() *bank { return &bank{lineBusy: make(map[uint64]uint64)} }

type privCache struct {
	l1 *array[struct{}]
	l2 *array[privLine]
}

type l3cache struct {
	chip  int
	arr   *array[dirLine]
	banks []*bank
}

func (l *l3cache) bank(line uint64) *bank { return l.banks[mixLine(line)%uint64(len(l.banks))] }

type l4cache struct {
	arr   *array[dirLine]
	banks []*bank
	chans []uint64 // per-DRAM-channel busy-until
}

func (l *l4cache) bank(line uint64) *bank { return l.banks[mixLine(line)%uint64(len(l.banks))] }
func (l *l4cache) channel(line uint64) *uint64 {
	return &l.chans[(mixLine(line)>>8)%uint64(len(l.chans))]
}

// mixLine hashes a line address so banks interleave well even for strided
// footprints.
func mixLine(l uint64) uint64 {
	l ^= l >> 17
	l *= 0xED5AD4BB
	l ^= l >> 11
	return l
}

// shReq classifies the permission a private cache requests from the
// directory hierarchy.
type shReq uint8

const (
	shGetS shReq = iota // read permission
	shGetX              // exclusive permission
	shGetU              // update-only permission (COUP)
)

type hierarchy struct {
	cfg    *Config
	st     *Stats
	store  *backing
	priv   []*privCache
	chips  []*l3cache
	l4     *l4cache
	jrng   rng
	nChips int
	hasU   bool
	remote bool
}

func newHierarchy(cfg *Config, st *Stats) *hierarchy {
	n := cfg.Chips()
	h := &hierarchy{
		cfg:    cfg,
		st:     st,
		store:  newBacking(),
		nChips: n,
		hasU:   cfg.Protocol.HasU(),
		remote: cfg.Protocol.Remote(),
		jrng:   newRNG(cfg.Seed ^ 0xC0FFEE),
	}
	h.priv = make([]*privCache, cfg.Cores)
	for i := range h.priv {
		h.priv[i] = &privCache{
			l1: newArray[struct{}](cfg.L1Size, cfg.L1Ways),
			l2: newArray[privLine](cfg.L2Size, cfg.L2Ways),
		}
	}
	h.chips = make([]*l3cache, n)
	for i := range h.chips {
		c := &l3cache{chip: i, arr: newArray[dirLine](cfg.L3Size, cfg.L3Ways)}
		for b := 0; b < cfg.L3Banks; b++ {
			c.banks = append(c.banks, newBank())
		}
		h.chips[i] = c
	}
	h.l4 = &l4cache{arr: newArray[dirLine](cfg.L4Size*n, cfg.L4Ways)}
	for b := 0; b < cfg.L4Banks*n; b++ {
		h.l4.banks = append(h.l4.banks, newBank())
	}
	h.l4.chans = make([]uint64, cfg.MemChannels*n)
	return h
}

// txn threads time and latency attribution through one transaction.
type txn struct {
	now uint64
	bd  Breakdown
}

func (t *txn) adv(cycles uint64, bucket *uint64) {
	t.now += cycles
	*bucket += cycles
}

// waitUntil advances time to at least abs, charging the wait to bucket.
func (t *txn) waitUntil(abs uint64, bucket *uint64) {
	if abs > t.now {
		*bucket += abs - t.now
		t.now = abs
	}
}

func (h *hierarchy) jitter() uint64 {
	if h.cfg.Jitter == 0 {
		return 0
	}
	return h.jrng.intn(h.cfg.Jitter + 1)
}

const invalidOwner = -1

func bit(i int) uint64 { return 1 << uint(i) }

// invalRTT is the round-trip cost of the L3 directory invalidating or
// downgrading one of its cores' private caches.
func (h *hierarchy) invalRTT() uint64 { return 2*h.cfg.OnChipHop + h.cfg.L2Lat }

// access performs one core memory operation: functional effect plus
// critical-path latency. It returns the operation's total latency.
func (h *hierarchy) access(c *core) uint64 {
	r := &c.req
	h.st.Accesses++
	switch r.kind {
	case opLoad:
		h.st.Loads++
	case opStore:
		h.st.Stores++
	case opRMW, opCAS:
		h.st.Atomics++
	case opComm:
		h.st.CommUpdates++
	}

	if h.remote && r.kind == opComm {
		return h.rmoUpdate(c)
	}

	line := r.addr >> 6
	pc := h.priv[c.id]
	tx := txn{now: c.time}

	// Private-cache fast path.
	if l2s := pc.l2.lookup(line); l2s != nil && h.privSufficient(&l2s.p, r) {
		if pc.l1.lookup(line) != nil {
			h.st.L1Hits++
			tx.adv(h.cfg.L1Lat, &tx.bd.L1)
		} else {
			h.st.L2Hits++
			tx.adv(h.cfg.L1Lat, &tx.bd.L1)
			tx.adv(h.cfg.L2Lat, &tx.bd.L2)
			pc.l1.insert(line) // L1 fills silently; L2 is inclusive
		}
		if r.kind == opRMW || r.kind == opCAS || r.kind == opComm {
			tx.adv(h.cfg.AtomicOverhead, &tx.bd.L1)
		}
		if r.kind == opComm {
			h.st.ULocalHits++ // COUP's fast path: buffered locally
		}
		h.applyPriv(c, &l2s.p, r)
		h.st.Breakdown.add(tx.bd)
		return tx.now - c.time
	}

	// Miss path. First fold and drop our own insufficient copy: its partial
	// update (U) travels with the request and is folded by the reduction the
	// directory is about to run; a read-only copy (S) is dropped by the
	// upgrade.
	ci := c.id % h.cfg.CoresPerChip
	ch := h.chips[c.chip]
	if l2s := pc.l2.peek(line); l2s != nil {
		if l2s.p.state == coh.U {
			h.foldBufferAt(line, &l2s.p)
		}
		pc.l2.invalidate(line)
		pc.l1.invalidate(line)
		if e := ch.arr.peek(line); e != nil {
			e.p.sharers &^= bit(ci)
			if e.p.owner == int16(ci) {
				e.p.owner = invalidOwner
			}
		}
	}

	tx.adv(h.cfg.L1Lat, &tx.bd.L1)
	tx.adv(h.cfg.L2Lat, &tx.bd.L2)

	var rq shReq
	switch r.kind {
	case opLoad:
		rq = shGetS
	case opStore, opRMW, opCAS:
		rq = shGetX
	case opComm:
		rq = shGetU
	}

	grant := h.l3Access(c, line, rq, r.otype, &tx)

	// Fill the private cache with the granted line and apply the operation.
	h.fillPriv(c, line, grant, r.otype)
	if r.kind == opRMW || r.kind == opCAS || r.kind == opComm {
		tx.adv(h.cfg.AtomicOverhead, &tx.bd.L1)
	}
	l2s := pc.l2.peek(line)
	h.applyPriv(c, &l2s.p, r)
	h.st.Breakdown.add(tx.bd)
	return tx.now - c.time
}

// privSufficient reports whether the private line's permissions satisfy r
// locally.
func (h *hierarchy) privSufficient(p *privLine, r *request) bool {
	switch r.kind {
	case opLoad:
		return p.state.CanRead()
	case opStore, opRMW, opCAS:
		return p.state.Exclusive()
	case opComm:
		return p.state.Exclusive() || (p.state == coh.U && p.otype == r.otype)
	}
	return false
}

// applyPriv performs the functional effect of r against a line the private
// cache now has sufficient permission for.
func (h *hierarchy) applyPriv(c *core, p *privLine, r *request) {
	switch r.kind {
	case opLoad:
		if r.width == 4 {
			r.out = uint64(h.store.read32(r.addr))
		} else {
			r.out = h.store.read64(r.addr)
		}
	case opStore:
		if p.state == coh.E {
			p.state = coh.M
		}
		if r.width == 4 {
			h.store.write32(r.addr, uint32(r.val))
		} else {
			h.store.write64(r.addr, r.val)
		}
	case opRMW:
		if p.state == coh.E {
			p.state = coh.M
		}
		var old uint64
		if r.width == 4 {
			old = uint64(h.store.read32(r.addr))
		} else {
			old = h.store.read64(r.addr)
		}
		var nv uint64
		switch r.rop {
		case rmwAdd:
			nv = old + r.val
		case rmwOr:
			nv = old | r.val
		case rmwAnd:
			nv = old & r.val
		case rmwXor:
			nv = old ^ r.val
		case rmwXchg:
			nv = r.val
		}
		if r.width == 4 {
			h.store.write32(r.addr, uint32(nv))
		} else {
			h.store.write64(r.addr, nv)
		}
		r.out = old
	case opCAS:
		if p.state == coh.E {
			p.state = coh.M
		}
		var old uint64
		if r.width == 4 {
			old = uint64(h.store.read32(r.addr))
		} else {
			old = h.store.read64(r.addr)
		}
		r.out = old
		r.ok = old == r.cmp
		if r.ok {
			if r.width == 4 {
				h.store.write32(r.addr, uint32(r.val))
			} else {
				h.store.write64(r.addr, r.val)
			}
		}
	case opComm:
		if p.state == coh.U {
			// Buffer and coalesce locally (Sec 3.1.2).
			w := (r.addr >> 3) & 7
			p.buf[w] = ops.ApplyAt(r.otype, p.buf[w], uint(r.addr&7), r.val)
			return
		}
		// Exclusive states apply in place.
		if p.state == coh.E {
			p.state = coh.M
		}
		w := (r.addr >> 3) & 7
		ln := h.store.lineOf(r.addr)
		ln[w] = ops.ApplyAt(r.otype, ln[w], uint(r.addr&7), r.val)
	}
}

// fillPriv installs a line in the requesting core's L1/L2 with the granted
// state.
func (h *hierarchy) fillPriv(c *core, line uint64, grant coh.State, t ops.Type) {
	pc := h.priv[c.id]
	s, vtag, vp, evicted := pc.l2.insert(line)
	if evicted {
		h.evictPrivLine(c, vtag, &vp)
		pc.l1.invalidate(vtag)
	}
	s.p = privLine{state: grant}
	if grant == coh.U {
		b := ops.IdentityLine(t)
		s.p.buf = &b
		s.p.otype = t
	}
	pc.l1.insert(line)
}

// evictPrivLine handles an L2 capacity eviction: partial reduction for U
// lines (Fig 5c), writeback for M, and directory notification (no silent
// drops). These are off the requester's critical path; only traffic,
// reduction-unit occupancy and directory state are updated.
func (h *hierarchy) evictPrivLine(c *core, line uint64, p *privLine) {
	ch := h.chips[c.chip]
	ci := c.id % h.cfg.CoresPerChip
	e := ch.arr.peek(line)
	if e == nil {
		panic(fmt.Sprintf("sim: inclusion violated — L2 line %#x missing from L3", line))
	}
	switch p.state {
	case coh.U:
		h.foldBufferAt(line, p)
		h.st.PartialReductions++
		h.onChip(dataBytes) // partial update travels with the eviction
		ch.bank(line).redBusy += h.cfg.ReduceCyclesPerLine
		e.p.sharers &^= bit(ci)
	case coh.M:
		h.onChip(dataBytes)
		e.p.dirty = true
		if e.p.owner == int16(ci) {
			e.p.owner = invalidOwner
		}
	case coh.E:
		h.onChip(ctrlBytes)
		if e.p.owner == int16(ci) {
			e.p.owner = invalidOwner
		}
	case coh.S:
		h.onChip(ctrlBytes)
		e.p.sharers &^= bit(ci)
	}
}

// foldBufferAt folds the partial updates of a U line into the backing image.
func (h *hierarchy) foldBufferAt(line uint64, p *privLine) {
	if p.buf == nil || !p.otype.IsUpdate() {
		return
	}
	base := h.store.lines[line]
	if base == nil {
		base = new(ops.Line)
		h.store.lines[line] = base
	}
	ops.Reduce(p.otype, base, p.buf)
	p.buf = nil
}

func (h *hierarchy) onChip(bytes uint64) {
	h.st.OnChipMsgs++
	h.st.OnChipBytes += bytes
}

func (h *hierarchy) offChip(bytes uint64) {
	h.st.OffChipMsgs++
	h.st.OffChipBytes += bytes
}

// l3Access obtains the requested permission for core c from its chip's L3
// directory, escalating to the L4 global directory when the chip's own
// permission is insufficient. It returns the state to install in the
// private cache.
func (h *hierarchy) l3Access(c *core, line uint64, rq shReq, t ops.Type, tx *txn) coh.State {
	ch := h.chips[c.chip]
	b := ch.bank(line)
	ci := c.id % h.cfg.CoresPerChip

	// Serialize against other transactions on this line and this bank.
	tx.waitUntil(b.lineBusy[line], &tx.bd.L3)
	tx.waitUntil(b.busyUntil, &tx.bd.L3)
	b.busyUntil = tx.now + h.cfg.DirBankService
	tx.adv(h.cfg.L3Lat+h.jitter(), &tx.bd.L3)
	h.onChip(ctrlBytes)

	e := ch.arr.lookup(line)
	if e == nil {
		// Chip-level miss: obtain chip permission from the L4, then allocate
		// the (inclusive) L3 entry.
		cstate := h.l4Access(c, line, rq, t, tx)
		s, vtag, vp, evicted := ch.arr.insert(line)
		if evicted {
			h.evictL3Line(ch, vtag, &vp)
		}
		s.p = dirLine{owner: invalidOwner, cstate: cstate}
		e = s
	} else if !h.chipSufficient(&e.p, rq, t) {
		cstate := h.l4Access(c, line, rq, t, tx)
		e = ch.arr.peek(line) // l4Access may have invalidated our entry
		if e == nil {
			s, vtag, vp, evicted := ch.arr.insert(line)
			if evicted {
				h.evictL3Line(ch, vtag, &vp)
			}
			s.p = dirLine{owner: invalidOwner}
			e = s
		}
		e.p.cstate = cstate
	} else {
		h.st.L3Hits++
	}

	grant := h.resolveInChip(c, ch, b, &e.p, line, rq, t, tx, ci)
	b.lineBusy[line] = tx.now
	return grant
}

// chipSufficient reports whether the chip's global permission covers rq.
func (h *hierarchy) chipSufficient(d *dirLine, rq shReq, t ops.Type) bool {
	switch rq {
	case shGetS:
		return d.cstate == coh.S || d.cstate.Exclusive()
	case shGetX:
		return d.cstate.Exclusive()
	case shGetU:
		if d.cstate.Exclusive() {
			return true
		}
		return d.cstate == coh.U && d.otype == t
	}
	return false
}

// resolveInChip resolves the in-chip directory actions once the chip itself
// holds sufficient permission, and returns the state granted to the core.
func (h *hierarchy) resolveInChip(c *core, ch *l3cache, b *bank, d *dirLine, line uint64, rq shReq, t ops.Type, tx *txn, ci int) coh.State {
	switch rq {
	case shGetS:
		if d.owner >= 0 {
			// Downgrade the in-chip owner; it keeps a read-only copy.
			h.downgradeCore(ch.chip, int(d.owner), line, coh.S, ops.Read)
			tx.adv(h.invalRTT(), &tx.bd.L3)
			d.sharers |= bit(int(d.owner))
			d.owner = invalidOwner
			d.dirty = true
			d.otype = ops.Read
		} else if d.sharers != 0 && d.otype.IsUpdate() {
			// In-chip full reduction (Fig 5d), permitted because the chip is
			// exclusive (otherwise l4Access already ran a global reduction).
			h.reduceChipCores(ch, b, d, line, tx, &tx.bd.L3)
			d.otype = ops.Read
			h.st.TypeSwitches++
		}
		d.sharers |= bit(ci)
		d.otype = ops.Read
		if d.sharers == bit(ci) && d.cstate.Exclusive() && h.cfg.Protocol.Kind().HasE() {
			// Sole copy anywhere: exclusive-clean grant.
			d.sharers = 0
			d.owner = int16(ci)
			return coh.E
		}
		return coh.S

	case shGetX:
		if d.owner >= 0 {
			h.invalidateCore(ch.chip, int(d.owner), line)
			tx.adv(h.invalRTT(), &tx.bd.L3)
			d.dirty = true
			d.owner = invalidOwner
		}
		if d.sharers != 0 {
			if d.otype.IsUpdate() {
				h.reduceChipCores(ch, b, d, line, tx, &tx.bd.L3)
			} else {
				h.invalidateChipSharers(ch, d, line, tx, &tx.bd.L3)
			}
		}
		d.owner = int16(ci)
		d.sharers = 0
		d.cstate = coh.M
		d.dirty = true
		return coh.M

	case shGetU:
		if d.owner >= 0 {
			// Fig 5b: downgrade the owner M→U; it stays a sharer with an
			// identity buffer, and its value is written back (to the backing
			// image here).
			h.downgradeCore(ch.chip, int(d.owner), line, coh.U, t)
			tx.adv(h.invalRTT(), &tx.bd.L3)
			d.sharers |= bit(int(d.owner))
			d.owner = invalidOwner
			d.dirty = true
			d.otype = t
		} else if d.sharers != 0 {
			if !d.otype.IsUpdate() {
				// Invalidate read-only copies (Fig 5a).
				h.invalidateChipSharers(ch, d, line, tx, &tx.bd.L3)
				h.st.TypeSwitches++
			} else if d.otype != t {
				// Serialize different update types via full reduction.
				h.reduceChipCores(ch, b, d, line, tx, &tx.bd.L3)
				h.st.TypeSwitches++
			}
		}
		if d.sharers == 0 && d.owner < 0 && d.cstate.Exclusive() && h.cfg.Protocol.Kind().HasE() {
			// Fig 6: update request on an unshared line is granted in M.
			d.owner = int16(ci)
			d.dirty = true
			return coh.M
		}
		d.sharers |= bit(ci)
		d.otype = t
		h.st.UGrants++
		return coh.U
	}
	panic("unreachable")
}

// downgradeCore demotes a core's private copy from M/E to S or U.
func (h *hierarchy) downgradeCore(chip, ci int, line uint64, to coh.State, t ops.Type) {
	coreID := chip*h.cfg.CoresPerChip + ci
	pc := h.priv[coreID]
	s := pc.l2.peek(line)
	if s == nil {
		panic(fmt.Sprintf("sim: directory thinks core %d owns %#x but L2 misses", coreID, line))
	}
	h.st.Downgrades++
	if s.p.state == coh.M {
		h.onChip(dataBytes) // dirty value written back
	} else {
		h.onChip(ctrlBytes)
	}
	s.p.state = to
	if to == coh.U {
		b := ops.IdentityLine(t)
		s.p.buf = &b
		s.p.otype = t
	} else {
		s.p.buf = nil
		s.p.otype = ops.Read
	}
}

// invalidateCore removes a core's private copy, folding partial updates and
// accounting the ack traffic.
func (h *hierarchy) invalidateCore(chip, ci int, line uint64) {
	coreID := chip*h.cfg.CoresPerChip + ci
	pc := h.priv[coreID]
	s := pc.l2.peek(line)
	if s == nil {
		panic(fmt.Sprintf("sim: directory thinks core %d holds %#x but L2 misses", coreID, line))
	}
	h.st.Invalidations++
	switch s.p.state {
	case coh.U:
		h.foldBufferAt(line, &s.p)
		h.onChip(dataBytes)
	case coh.M:
		h.onChip(dataBytes)
	default:
		h.onChip(ctrlBytes)
	}
	pc.l2.invalidate(line)
	pc.l1.invalidate(line)
}

// invalidateChipSharers invalidates every in-chip non-exclusive copy.
// Critical path: one round trip plus a small fan-out cost per extra sharer.
func (h *hierarchy) invalidateChipSharers(ch *l3cache, d *dirLine, line uint64, tx *txn, bucket *uint64) {
	n := 0
	for ci := 0; ci < h.cfg.CoresPerChip; ci++ {
		if d.sharers&bit(ci) != 0 {
			h.invalidateCore(ch.chip, ci, line)
			n++
		}
	}
	d.sharers = 0
	if n > 0 {
		tx.adv(h.invalRTT()+uint64(n-1), bucket)
	}
}

// reduceChipCores performs an in-chip full reduction: every U copy is
// invalidated, its partial update folded by the bank's reduction unit.
func (h *hierarchy) reduceChipCores(ch *l3cache, b *bank, d *dirLine, line uint64, tx *txn, bucket *uint64) {
	n := 0
	for ci := 0; ci < h.cfg.CoresPerChip; ci++ {
		if d.sharers&bit(ci) != 0 {
			h.invalidateCore(ch.chip, ci, line)
			n++
		}
	}
	d.sharers = 0
	if n == 0 {
		return
	}
	h.st.FullReductions++
	tx.adv(h.invalRTT()+uint64(n-1), bucket)
	// Reduction unit occupancy: n partial lines through the pipelined ALU.
	start := tx.now
	if b.redBusy > start {
		tx.waitUntil(b.redBusy, bucket)
	}
	tx.adv(h.cfg.ReduceLatency+uint64(n)*h.cfg.ReduceCyclesPerLine, bucket)
	b.redBusy = tx.now
	d.dirty = true
}

// evictL3Line handles an inclusive L3 capacity eviction: recall every core
// copy in this chip, then notify/write back to the L4. Off the critical
// path; traffic and directory state only.
func (h *hierarchy) evictL3Line(ch *l3cache, line uint64, d *dirLine) {
	if d.owner >= 0 {
		h.invalidateCore(ch.chip, int(d.owner), line)
		d.dirty = true
	}
	nU := 0
	for ci := 0; ci < h.cfg.CoresPerChip; ci++ {
		if d.sharers&bit(ci) != 0 {
			cid := ch.chip*h.cfg.CoresPerChip + ci
			if s := h.priv[cid].l2.peek(line); s != nil && s.p.state == coh.U {
				nU++
			}
			h.invalidateCore(ch.chip, ci, line)
		}
	}
	if nU > 0 {
		h.st.PartialReductions++
		ch.bank(line).redBusy += uint64(nU) * h.cfg.ReduceCyclesPerLine
	}
	// Update the global directory: this chip no longer caches the line.
	ge := h.l4.arr.peek(line)
	if ge == nil {
		panic(fmt.Sprintf("sim: inclusion violated — L3 line %#x missing from L4", line))
	}
	if ge.p.owner == int16(ch.chip) {
		ge.p.owner = invalidOwner
		ge.p.dirty = true
	}
	ge.p.sharers &^= bit(ch.chip)
	if d.dirty || d.cstate == coh.U {
		h.offChip(dataBytes)
		ge.p.dirty = true
	} else {
		h.offChip(ctrlBytes)
	}
}

// l4Access obtains chip-level permission for c's chip from the global
// directory, performing cross-chip invalidations, downgrades and global
// reductions as needed. It returns the chip state granted (S, U, or M for
// exclusive).
func (h *hierarchy) l4Access(c *core, line uint64, rq shReq, t ops.Type, tx *txn) coh.State {
	b := h.l4.bank(line)
	p := c.chip

	tx.adv(2*h.cfg.LinkLat, &tx.bd.Net) // request + reply link traversals
	tx.waitUntil(b.lineBusy[line], &tx.bd.L4Inval)
	tx.waitUntil(b.busyUntil, &tx.bd.L4)
	b.busyUntil = tx.now + h.cfg.DirBankService
	tx.adv(h.cfg.L4Lat+h.jitter(), &tx.bd.L4)
	h.offChip(ctrlBytes)

	ge := h.l4.arr.lookup(line)
	if ge == nil {
		// Global miss: fetch from memory. Update-only requests need no data
		// (the line starts at the identity element); the fill happens off
		// the critical path.
		if rq == shGetU {
			h.memAccessBackground(line)
		} else {
			h.memAccess(line, tx)
		}
		s, vtag, vp, evicted := h.l4.arr.insert(line)
		if evicted {
			h.evictL4Line(vtag, &vp)
		}
		s.p = dirLine{owner: invalidOwner}
		ge = s
	} else {
		h.st.L4Hits++
	}

	d := &ge.p
	grant := h.resolveGlobal(p, d, line, rq, t, tx)
	b.lineBusy[line] = tx.now
	h.offChip(dataBytes) // grant reply (data or permission+identity metadata)
	return grant
}

// resolveGlobal applies the cross-chip directory actions for chip p's
// request and returns the granted chip state.
func (h *hierarchy) resolveGlobal(p int, d *dirLine, line uint64, rq shReq, t ops.Type, tx *txn) coh.State {
	hasE := h.cfg.Protocol.Kind().HasE()
	switch rq {
	case shGetS:
		if d.owner >= 0 && d.owner != int16(p) {
			h.downgradeChip(int(d.owner), line, coh.S, ops.Read, tx)
			d.sharers |= bit(int(d.owner))
			d.owner = invalidOwner
			d.dirty = true
			d.otype = ops.Read
		} else if d.owner == int16(p) {
			d.sharers |= bit(p)
			d.owner = invalidOwner
		}
		if d.sharers != 0 && d.otype.IsUpdate() {
			h.globalReduction(d, line, tx)
			h.st.TypeSwitches++
		}
		d.otype = ops.Read
		d.sharers |= bit(p)
		if d.sharers == bit(p) && hasE {
			d.sharers = 0
			d.owner = int16(p)
			return coh.M // chip-exclusive
		}
		return coh.S

	case shGetX:
		if d.owner >= 0 && d.owner != int16(p) {
			h.invalidateChip(int(d.owner), line, tx)
			d.dirty = true
			d.owner = invalidOwner
		}
		if d.sharers != 0 {
			if d.otype.IsUpdate() {
				h.globalReduction(d, line, tx)
			} else {
				h.invalidateGlobalSharers(d, line, p, tx)
			}
		}
		d.owner = int16(p)
		d.sharers = 0
		d.dirty = true
		return coh.M

	case shGetU:
		if d.owner >= 0 && d.owner != int16(p) {
			// Downgrade the owning chip to update-only; it keeps U copies.
			h.downgradeChip(int(d.owner), line, coh.U, t, tx)
			d.sharers |= bit(int(d.owner))
			d.owner = invalidOwner
			d.dirty = true
			d.otype = t
		} else if d.owner == int16(p) {
			d.sharers |= bit(p)
			d.owner = invalidOwner
			d.otype = t
		}
		if d.sharers != 0 {
			if !d.otype.IsUpdate() {
				h.invalidateGlobalSharers(d, line, p, tx)
				h.st.TypeSwitches++
			} else if d.otype != t {
				h.globalReduction(d, line, tx)
				h.st.TypeSwitches++
			}
		}
		if d.sharers&^bit(p) == 0 && d.owner < 0 && hasE {
			// Fig 6: no other chip holds a copy — exclusive chip grant.
			d.owner = int16(p)
			d.sharers = 0
			d.dirty = true
			return coh.M
		}
		d.sharers |= bit(p)
		d.otype = t
		return coh.U
	}
	panic("unreachable")
}

// downgradeChip demotes chip q's copy to S or U(t). Its in-chip owner (if
// any) is downgraded the same way; internal copies incompatible with the
// new chip state are reduced (U copies before a read grant) or invalidated
// (S copies before an update grant). The chip keeps its L3 entry.
func (h *hierarchy) downgradeChip(q int, line uint64, to coh.State, t ops.Type, tx *txn) {
	ch := h.chips[q]
	e := ch.arr.peek(line)
	if e == nil {
		panic(fmt.Sprintf("sim: L4 thinks chip %d owns %#x but L3 misses", q, line))
	}
	d := &e.p
	newType := ops.Read
	if to == coh.U {
		newType = t
	}
	cost := 2 * h.cfg.LinkLat
	if d.owner >= 0 {
		h.downgradeCore(q, int(d.owner), line, to, t)
		d.sharers |= bit(int(d.owner))
		d.owner = invalidOwner
		d.otype = newType
		d.dirty = true
		cost += h.invalRTT()
	} else if d.sharers != 0 && d.otype != newType {
		var sub txn
		sub.now = tx.now
		if d.otype.IsUpdate() {
			// Internal partial updates must be reduced before the chip's
			// permission weakens (hierarchical reduction, Sec 3.2).
			h.reduceChipCores(ch, ch.bank(line), d, line, &sub, &sub.bd.L4Inval)
		} else {
			// Internal read-only copies cannot survive an update-only grant.
			h.invalidateChipSharers(ch, d, line, &sub, &sub.bd.L4Inval)
		}
		cost += sub.now - tx.now
		d.otype = newType
	}
	d.cstate = to
	h.st.Downgrades++
	h.offChip(dataBytes)
	tx.adv(cost, &tx.bd.L4Inval)
}

// invalidateChip removes chip q's copy entirely (all core copies plus the
// L3 entry), folding partial updates.
func (h *hierarchy) invalidateChip(q int, line uint64, tx *txn) uint64 {
	ch := h.chips[q]
	e := ch.arr.peek(line)
	if e == nil {
		panic(fmt.Sprintf("sim: L4 thinks chip %d holds %#x but L3 misses", q, line))
	}
	cost := 2 * h.cfg.LinkLat
	if e.p.owner >= 0 {
		h.invalidateCore(q, int(e.p.owner), line)
		cost += h.invalRTT()
	}
	nU := 0
	for ci := 0; ci < h.cfg.CoresPerChip; ci++ {
		if e.p.sharers&bit(ci) != 0 {
			cid := q*h.cfg.CoresPerChip + ci
			if s := h.priv[cid].l2.peek(line); s != nil && s.p.state == coh.U {
				nU++
			}
			h.invalidateCore(q, ci, line)
		}
	}
	if e.p.sharers != 0 {
		cost += h.invalRTT()
	}
	if nU > 0 {
		// Hierarchical reduction: the chip's reduction unit aggregates its
		// cores' partials before one response crosses the link (Sec 3.2).
		cost += h.cfg.ReduceLatency + uint64(nU)*h.cfg.ReduceCyclesPerLine
	}
	dirty := e.p.dirty || e.p.cstate == coh.U || nU > 0
	ch.arr.invalidate(line)
	h.st.Invalidations++
	if dirty {
		h.offChip(dataBytes)
	} else {
		h.offChip(ctrlBytes)
	}
	tx.adv(cost, &tx.bd.L4Inval)
	return cost
}

// invalidateGlobalSharers invalidates every sharer chip except keep (the
// requester, which upgrades in place). Chips are invalidated in parallel;
// the critical path is the slowest chip plus a per-chip fan-out cycle.
func (h *hierarchy) invalidateGlobalSharers(d *dirLine, line uint64, keep int, tx *txn) {
	start := tx.now
	var maxEnd uint64
	n := 0
	for q := 0; q < h.nChips; q++ {
		if d.sharers&bit(q) == 0 {
			continue
		}
		if q == keep {
			// The requester chip's own non-exclusive copies are handled by
			// the in-chip resolution step; here it just upgrades.
			continue
		}
		var sub txn
		sub.now = start
		h.invalidateChip(q, line, &sub)
		if sub.now > maxEnd {
			maxEnd = sub.now
		}
		n++
	}
	d.sharers &= bit(keep)
	if n > 0 {
		tx.waitUntil(maxEnd+uint64(n-1), &tx.bd.L4Inval)
	}
}

// globalReduction gathers and reduces every chip's partial updates
// (hierarchically: each chip aggregates its own cores first), leaving the
// line uncached below the L4.
func (h *hierarchy) globalReduction(d *dirLine, line uint64, tx *txn) {
	start := tx.now
	var maxEnd uint64
	n := 0
	for q := 0; q < h.nChips; q++ {
		if d.sharers&bit(q) == 0 {
			continue
		}
		var sub txn
		sub.now = start
		h.invalidateChip(q, line, &sub)
		if sub.now > maxEnd {
			maxEnd = sub.now
		}
		n++
	}
	d.sharers = 0
	if n == 0 {
		return
	}
	h.st.FullReductions++
	tx.waitUntil(maxEnd+uint64(n-1), &tx.bd.L4Inval)
	// L4 reduction unit folds the per-chip partials.
	b := h.l4.bank(line)
	units := uint64(n)
	if h.cfg.FlatReductions {
		// Ablation: no per-chip aggregation; one partial per core instead.
		units = uint64(n * h.cfg.CoresPerChip)
	}
	if b.redBusy > tx.now {
		tx.waitUntil(b.redBusy, &tx.bd.L4Inval)
	}
	tx.adv(h.cfg.ReduceLatency+units*h.cfg.ReduceCyclesPerLine, &tx.bd.L4Inval)
	b.redBusy = tx.now
	d.dirty = true
}

// evictL4Line recalls a line from every chip and writes it back to memory
// if dirty. Off the critical path.
func (h *hierarchy) evictL4Line(line uint64, d *dirLine) {
	var scratch txn
	if d.owner >= 0 {
		h.invalidateChip(int(d.owner), line, &scratch)
		d.dirty = true
	}
	for q := 0; q < h.nChips; q++ {
		if d.sharers&bit(q) != 0 {
			h.invalidateChip(q, line, &scratch)
		}
	}
	if d.dirty {
		h.memWriteBackground(line)
	}
}

// memAccess charges a critical-path DRAM access.
func (h *hierarchy) memAccess(line uint64, tx *txn) {
	h.st.MemAccs++
	ch := h.l4.channel(line)
	tx.waitUntil(*ch, &tx.bd.Mem)
	*ch = tx.now + h.cfg.MemChannelService
	tx.adv(h.cfg.MemLat+h.jitter(), &tx.bd.Mem)
	h.st.MemBytes += 64
}

// memAccessBackground models a fill that is not on the critical path (the
// update-only grant does not wait for data, Sec 2.1's "updates need not
// read the data they update").
func (h *hierarchy) memAccessBackground(line uint64) {
	h.st.MemAccs++
	ch := h.l4.channel(line)
	*ch += h.cfg.MemChannelService
	h.st.MemBytes += 64
}

func (h *hierarchy) memWriteBackground(line uint64) {
	ch := h.l4.channel(line)
	*ch += h.cfg.MemChannelService
	h.st.MemBytes += 64
}

// rmoUpdate executes a commutative update remotely at the line's home L4
// bank (Fig 1b): no caching by the updater, every update crosses the
// network, and the bank ALU is the serialization point.
func (h *hierarchy) rmoUpdate(c *core) uint64 {
	r := &c.req
	line := r.addr >> 6
	tx := txn{now: c.time}
	tx.adv(h.cfg.L1Lat, &tx.bd.L1)

	// Drop any local copy; remote updates do not cache.
	pc := h.priv[c.id]
	if s := pc.l2.peek(line); s != nil {
		pc.l2.invalidate(line)
		pc.l1.invalidate(line)
		if e := h.chips[c.chip].arr.peek(line); e != nil {
			ci := c.id % h.cfg.CoresPerChip
			e.p.sharers &^= bit(ci)
			if e.p.owner == int16(ci) {
				e.p.owner = invalidOwner
			}
		}
	}

	b := h.l4.bank(line)
	tx.adv(2*h.cfg.LinkLat, &tx.bd.Net)
	tx.waitUntil(b.lineBusy[line], &tx.bd.L4Inval)
	tx.waitUntil(b.busyUntil, &tx.bd.L4)
	b.busyUntil = tx.now + h.cfg.DirBankService
	tx.adv(h.cfg.L4Lat, &tx.bd.L4)
	h.offChip(ctrlBytes + 8) // address + operand

	ge := h.l4.arr.lookup(line)
	if ge == nil {
		h.memAccess(line, &tx)
		s, vtag, vp, evicted := h.l4.arr.insert(line)
		if evicted {
			h.evictL4Line(vtag, &vp)
		}
		s.p = dirLine{owner: invalidOwner}
		ge = s
	} else if ge.p.hasChildren() {
		// Invalidate cached copies so the remote ALU operates on the only
		// valid version.
		if ge.p.owner >= 0 {
			h.invalidateChip(int(ge.p.owner), line, &tx)
			ge.p.owner = invalidOwner
		}
		h.invalidateGlobalSharers(&ge.p, line, -1, &tx)
		ge.p.sharers = 0
	}
	// Remote ALU occupancy: this is the hotspot RMOs suffer from.
	if b.redBusy > tx.now {
		tx.waitUntil(b.redBusy, &tx.bd.L4Inval)
	}
	tx.adv(2, &tx.bd.L4)
	b.redBusy = tx.now
	ge.p.dirty = true

	w := (r.addr >> 3) & 7
	ln := h.store.lineOf(r.addr)
	ln[w] = ops.ApplyAt(r.otype, ln[w], uint(r.addr&7), r.val)
	b.lineBusy[line] = tx.now

	h.st.Breakdown.add(tx.bd)
	return tx.now - c.time
}

// drain folds every outstanding private partial-update buffer into the
// backing image so post-run inspection sees final values. It models the
// reductions that the first post-run reads would trigger; no timing cost.
func (h *hierarchy) drain() {
	for _, pc := range h.priv {
		pc.l2.forEach(func(tag uint64, p *privLine) {
			if p.state == coh.U && p.buf != nil {
				h.foldBufferAt(tag, p)
				// Keep the line resident in U with a fresh identity buffer so
				// structural invariants still hold after draining.
				b := ops.IdentityLine(p.otype)
				p.buf = &b
			}
		})
	}
}

// checkInvariants validates the hierarchy's structural invariants; tests
// call this through Machine.CheckInvariants.
func (h *hierarchy) checkInvariants() error {
	// Private states must be mirrored by the chip directory, chip entries
	// by the global directory, and exclusivity must be unique.
	for cid, pc := range h.priv {
		chip := cid / h.cfg.CoresPerChip
		ci := cid % h.cfg.CoresPerChip
		var err error
		pc.l2.forEach(func(tag uint64, p *privLine) {
			if err != nil {
				return
			}
			e := h.chips[chip].arr.peek(tag)
			if e == nil {
				err = fmt.Errorf("core %d holds %#x in %v but L3 has no entry", cid, tag, p.state)
				return
			}
			switch p.state {
			case coh.M, coh.E:
				if e.p.owner != int16(ci) {
					err = fmt.Errorf("core %d holds %#x in %v but dir owner=%d", cid, tag, p.state, e.p.owner)
				}
			case coh.S:
				if e.p.sharers&bit(ci) == 0 || e.p.otype.IsUpdate() {
					err = fmt.Errorf("core %d holds %#x in S but dir sharers=%#x type=%v", cid, tag, e.p.sharers, e.p.otype)
				}
			case coh.U:
				if e.p.sharers&bit(ci) == 0 || e.p.otype != p.otype {
					err = fmt.Errorf("core %d holds %#x in U(%v) but dir sharers=%#x type=%v", cid, tag, p.otype, e.p.sharers, e.p.otype)
				}
				if p.buf == nil {
					err = fmt.Errorf("core %d U line %#x has no buffer", cid, tag)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	// L3 entries must appear in the L4 directory, and U-mode lines must have
	// a single operation type across all caches.
	for q, ch := range h.chips {
		var err error
		ch.arr.forEach(func(tag uint64, d *dirLine) {
			if err != nil {
				return
			}
			ge := h.l4.arr.peek(tag)
			if ge == nil {
				err = fmt.Errorf("chip %d caches %#x but L4 has no entry", q, tag)
				return
			}
			switch d.cstate {
			case coh.M, coh.E:
				if ge.p.owner != int16(q) {
					err = fmt.Errorf("chip %d exclusive on %#x but L4 owner=%d", q, tag, ge.p.owner)
				}
			case coh.S, coh.U:
				if ge.p.sharers&bit(q) == 0 {
					err = fmt.Errorf("chip %d shares %#x but L4 sharers=%#x", q, tag, ge.p.sharers)
				}
			}
			// Exclusivity within the chip.
			if d.owner >= 0 && d.sharers != 0 {
				err = fmt.Errorf("chip %d line %#x has owner %d and sharers %#x", q, tag, d.owner, d.sharers)
			}
		})
		if err != nil {
			return err
		}
	}
	// Global exclusivity: at most one chip owner per line; SWMR analogue.
	ownerCount := map[uint64]int{}
	h.l4.arr.forEach(func(tag uint64, d *dirLine) {
		if d.owner >= 0 {
			ownerCount[tag]++
			if d.sharers != 0 {
				ownerCount[tag] += 10 // flag: owner and sharers coexist
			}
		}
	})
	for tag, n := range ownerCount {
		if n > 1 {
			return fmt.Errorf("line %#x violates global exclusivity (%d)", tag, n)
		}
	}
	return nil
}

// CheckInvariants validates structural coherence invariants (inclusion,
// directory/cache agreement, exclusivity). Primarily for tests.
func (m *Machine) CheckInvariants() error { return m.hier.checkInvariants() }
