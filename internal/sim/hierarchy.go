package sim

import (
	"fmt"
	"math/bits"
	"slices"

	coh "repro/internal/core"
	"repro/internal/ops"
)

// backing is the authoritative simulated memory image. MESI transactions
// read and write it directly (legal because the engine applies operations
// atomically in global issue order); under MEUSI, lines held update-only
// additionally have real partial-update buffers in the private caches, and
// reductions fold those buffers into the backing image. Nothing reads the
// image for a line while partial updates are outstanding — the directory
// reduces first — so eager folding on evictions is functionally exact.
//
// Storage is a two-level paged table: a slice of fixed-size pages with
// lines embedded by value. Simulated allocation is dense from the 1 MB
// base, so indexing is a shift plus one predictable bounds check — no map
// hashing and no per-line pointer allocation on the access hot path.
type backing struct {
	pages []*backingPage
	// One-entry page cache: workloads stream lines sequentially, so the
	// vast majority of accesses land on the page of the previous one.
	// lastIdx is offset by one so the zero value never aliases page 0.
	lastIdx  uint64
	lastPage *backingPage
}

const (
	pageLineShift = 9                  // 512 lines per page
	pageLineCount = 1 << pageLineShift // 32 KB of simulated memory per page
)

type backingPage [pageLineCount]ops.Line

func newBacking() *backing { return &backing{} }

// line returns the backing line with index l (address >> 6), materializing
// its page on first touch.
func (b *backing) line(l uint64) *ops.Line {
	pi := l >> pageLineShift
	if pi+1 == b.lastIdx {
		return &b.lastPage[l&(pageLineCount-1)]
	}
	if pi >= uint64(len(b.pages)) || b.pages[pi] == nil {
		b.growTo(pi)
	}
	b.lastIdx = pi + 1
	b.lastPage = b.pages[pi]
	return &b.pages[pi][l&(pageLineCount-1)]
}

// growTo is the cold path of line: it extends the page directory and
// allocates page pi.
func (b *backing) growTo(pi uint64) {
	for uint64(len(b.pages)) <= pi {
		b.pages = append(b.pages, nil)
	}
	b.pages[pi] = new(backingPage)
}

func (b *backing) lineOf(addr uint64) *ops.Line { return b.line(addr >> 6) }

func (b *backing) read64(addr uint64) uint64 { return b.lineOf(addr)[(addr>>3)&7] }
func (b *backing) write64(addr, v uint64)    { b.lineOf(addr)[(addr>>3)&7] = v }
func (b *backing) read32(addr uint64) uint32 {
	w := b.lineOf(addr)[(addr>>3)&7]
	if addr&4 != 0 {
		return uint32(w >> 32)
	}
	return uint32(w)
}
func (b *backing) write32(addr uint64, v uint32) {
	p := b.lineOf(addr)
	i := (addr >> 3) & 7
	if addr&4 != 0 {
		p[i] = p[i]&0x00000000FFFFFFFF | uint64(v)<<32
	} else {
		p[i] = p[i]&^uint64(0xFFFFFFFF) | uint64(v)
	}
}

// privLine is the coherence payload of a private (L2) cache line. dirWay
// remembers which way of the L3 set held the line's directory entry when
// the line was filled — a best-effort hint (validated by tag on use, see
// array.peekAt) that lets the eviction path find the entry without a
// 16-way scan. It fits the struct's existing padding, costing nothing.
type privLine struct {
	state  coh.State
	otype  ops.Type // operation type when state == U
	dirWay uint8
	buf    *ops.Line // partial updates when state == U
}

// dirLine is the payload of an L3/L4 in-cache-directory entry. At the L3 it
// tracks the cores of one chip; at the L4 it tracks chips. cstate is only
// meaningful at the L3: the chip's own permission granted by the global
// directory (S, U, E or M).
type dirLine struct {
	sharers uint64 // bitvector of children holding non-exclusive copies
	owner   int16  // child holding E/M, or -1
	otype   ops.Type
	dirty   bool
	cstate  coh.State
}

func (d *dirLine) hasChildren() bool { return d.sharers != 0 || d.owner >= 0 }

// bank models one L3/L4 bank: directory/tag pipeline occupancy, per-line
// transaction serialization, and the bank's reduction unit (Sec 3.1.1).
type bank struct {
	busyUntil uint64
	redBusy   uint64
	lineBusy  busyTable
}

func newBank() *bank { return &bank{lineBusy: newBusyTable()} }

// busyTable maps a line address to the cycle its last bank transaction
// completes. It is an open-addressed linear-probe table (power-of-two
// capacity, keys stored as line+1 so zero marks an empty slot): lookups on
// the access hot path cost one multiply-hash and usually one probe, with
// no map-hashing or bucket allocation.
//
// Simulation time is globally non-decreasing at service points, so an
// entry whose busy-until cycle is ≤ the current watermark can never delay
// another transaction again. When the table needs room it first discards
// those expired entries and only doubles if the live set is genuinely
// large — long sweeps touching millions of distinct lines therefore keep
// a table sized by the *concurrently busy* lines instead of leaking an
// entry per line ever contended (the old map grew without bound).
type busyTable struct {
	keys []uint64 // line+1; 0 = empty
	vals []uint64 // busy-until cycle
	n    int      // occupied slots
	mask uint64
	gen  uint64 // bumped whenever slots move (insert/purge/grow/reset)
}

func newBusyTable() busyTable {
	const initialSlots = 32
	return busyTable{
		keys: make([]uint64, initialSlots),
		vals: make([]uint64, initialSlots),
		mask: initialSlots - 1,
	}
}

// get returns the busy-until cycle recorded for line, or 0 if none.
func (t *busyTable) get(line uint64) uint64 {
	k := line + 1
	for i := mixLine(line) & t.mask; ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			return t.vals[i]
		case 0:
			return 0
		}
	}
}

// busySlot is getSlot's handle: the slot where line was found, valid while
// the table's generation is unchanged.
type busySlot struct {
	idx     uint64
	gen     uint64
	present bool
}

// getSlot is get returning a handle that putAt can use to update the same
// entry without a second probe. Each bank transaction reads a line's
// busy-until on entry and writes the same line's on exit; fusing the pair
// halves the table probes on the miss path.
func (t *busyTable) getSlot(line uint64) (uint64, busySlot) {
	k := line + 1
	for i := mixLine(line) & t.mask; ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			return t.vals[i], busySlot{idx: i, gen: t.gen, present: true}
		case 0:
			return 0, busySlot{}
		}
	}
}

// putAt is put for the line s was probed at. While the table's slots have
// not moved since (same generation), an existing entry updates in place.
func (t *busyTable) putAt(s busySlot, line, until, watermark uint64) {
	if s.present && s.gen == t.gen {
		t.vals[s.idx] = until
		return
	}
	t.put(line, until, watermark)
}

// put records that line's current transaction completes at until. When the
// table gets crowded it first reclaims, in place and without allocating,
// entries expired relative to watermark (the engine's current service
// time), and only doubles capacity if the live set genuinely needs it.
func (t *busyTable) put(line, until, watermark uint64) {
	k := line + 1
	for i := mixLine(line) & t.mask; ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			t.vals[i] = until
			return
		case 0:
			if 4*(t.n+1) > 3*len(t.keys) {
				t.purge(watermark)
				// Purges that reclaim only a sliver leave the table on the
				// edge of the load threshold, triggering an O(capacity) purge
				// walk every few puts; demand real headroom (<=5/8 live)
				// before trusting the purge, else double. Capacity never
				// affects lookup results, only walk frequency.
				if 8*(t.n+1) > 5*len(t.keys) {
					t.grow()
				}
				t.put(line, until, watermark)
				return
			}
			t.keys[i] = k
			t.vals[i] = until
			t.n++
			t.gen++
			return
		}
	}
}

// purge deletes expired entries in place via backward-shift compaction.
// An entry shifted from the tail of a wrapping probe cluster can land
// behind the sweep cursor and survive one purge; that is harmless —
// expired entries never delay a transaction, they only occupy a slot.
func (t *busyTable) purge(watermark uint64) {
	for i := uint64(0); i < uint64(len(t.keys)); i++ {
		for t.keys[i] != 0 && t.vals[i] <= watermark {
			t.deleteAt(i) // may shift another (possibly expired) entry into i
		}
	}
}

// deleteAt empties slot i, backward-shifting the entries of its linear-
// probe cluster so every survivor stays reachable from its home slot.
func (t *busyTable) deleteAt(i uint64) {
	t.gen++
	mask := t.mask
	j := i
	for {
		t.keys[i] = 0
		for {
			j = (j + 1) & mask
			if t.keys[j] == 0 {
				t.n--
				return
			}
			home := mixLine(t.keys[j]-1) & mask
			// An entry whose home lies cyclically in (i, j] still reaches
			// slot j after i empties; anything else must shift into i.
			inHole := false
			if i <= j {
				inHole = i < home && home <= j
			} else {
				inHole = i < home || home <= j
			}
			if !inHole {
				t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
				break
			}
		}
		i = j
	}
}

// grow doubles capacity, rehashing every remaining entry.
func (t *busyTable) grow() {
	slots := 2 * len(t.keys)
	keys := make([]uint64, slots)
	vals := make([]uint64, slots)
	mask := uint64(slots - 1)
	for i, k := range t.keys {
		if k == 0 {
			continue
		}
		for j := mixLine(k-1) & mask; ; j = (j + 1) & mask {
			if keys[j] == 0 {
				keys[j] = k
				vals[j] = t.vals[i]
				break
			}
		}
	}
	t.keys, t.vals, t.mask = keys, vals, mask
	t.gen++
}

type privCache struct {
	l1 *array[struct{}]
	l2 *array[privLine]
	// bufPool recycles partial-update buffers: every U grant needs an
	// identity-initialized line buffer, and contended workloads cycle
	// through grants constantly. Pooling keeps the steady state free of
	// per-grant heap allocations.
	bufPool []*ops.Line
}

// newBuf returns an identity-initialized partial-update buffer for t,
// reusing a pooled one when available.
func (pc *privCache) newBuf(t ops.Type) *ops.Line {
	if n := len(pc.bufPool); n > 0 {
		b := pc.bufPool[n-1]
		pc.bufPool = pc.bufPool[:n-1]
		*b = ops.IdentityLine(t)
		return b
	}
	b := ops.IdentityLine(t)
	return &b
}

type l3cache struct {
	chip     int
	arr      *array[dirLine]
	banks    []*bank
	bankMask int // len(banks)-1 when a power of two, else -1 (modulo path)
}

func (l *l3cache) bank(line uint64) *bank {
	if l.bankMask >= 0 {
		return l.banks[mixLine(line)&uint64(l.bankMask)]
	}
	return l.banks[mixLine(line)%uint64(len(l.banks))]
}

type l4cache struct {
	arr      *array[dirLine]
	banks    []*bank
	chans    []uint64 // per-DRAM-channel busy-until
	bankMask int      // as l3cache.bankMask
	chanMask int
}

func (l *l4cache) bank(line uint64) *bank {
	if l.bankMask >= 0 {
		return l.banks[mixLine(line)&uint64(l.bankMask)]
	}
	return l.banks[mixLine(line)%uint64(len(l.banks))]
}

func (l *l4cache) channel(line uint64) *uint64 {
	if l.chanMask >= 0 {
		return &l.chans[(mixLine(line)>>8)&uint64(l.chanMask)]
	}
	return &l.chans[(mixLine(line)>>8)%uint64(len(l.chans))]
}

// powMask returns n-1 when n is a power of two (the bank/channel counts of
// every option-built machine), else -1 to select the modulo path. Both
// pick identical indices: x % n == x & (n-1) for powers of two.
func powMask(n int) int {
	if n&(n-1) == 0 {
		return n - 1
	}
	return -1
}

// mixLine hashes a line address so banks interleave well even for strided
// footprints.
func mixLine(l uint64) uint64 {
	l ^= l >> 17
	l *= 0xED5AD4BB
	l ^= l >> 11
	return l
}

// shReq classifies the permission a private cache requests from the
// directory hierarchy.
type shReq uint8

const (
	shGetS shReq = iota // read permission
	shGetX              // exclusive permission
	shGetU              // update-only permission (COUP)
)

type hierarchy struct {
	cfg    *Config
	st     *Stats
	store  *backing
	priv   []*privCache
	chips  []*l3cache
	l4     *l4cache
	jrng   rng
	nChips int
	hasU   bool
	hasE   bool
	remote bool

	// now is the engine's current service time (the issuing core's clock at
	// the top of access). It is globally non-decreasing and serves as the
	// expiry watermark for the banks' line-serialization tables.
	now uint64
}

func newHierarchy(cfg *Config, st *Stats) *hierarchy {
	n := cfg.Chips()
	h := &hierarchy{
		cfg:    cfg,
		st:     st,
		store:  newBacking(),
		nChips: n,
		hasU:   cfg.Protocol.HasU(),
		hasE:   cfg.Protocol.Kind().HasE(),
		remote: cfg.Protocol.Remote(),
		jrng:   newRNG(cfg.Seed ^ 0xC0FFEE),
	}
	h.priv = make([]*privCache, cfg.Cores)
	for i := range h.priv {
		h.priv[i] = &privCache{
			l1: newArray[struct{}](cfg.L1Size, cfg.L1Ways),
			l2: newArray[privLine](cfg.L2Size, cfg.L2Ways),
		}
	}
	h.chips = make([]*l3cache, n)
	for i := range h.chips {
		c := &l3cache{chip: i, arr: newArray[dirLine](cfg.L3Size, cfg.L3Ways), bankMask: powMask(cfg.L3Banks)}
		for b := 0; b < cfg.L3Banks; b++ {
			c.banks = append(c.banks, newBank())
		}
		h.chips[i] = c
	}
	h.l4 = &l4cache{arr: newArray[dirLine](cfg.L4Size*n, cfg.L4Ways), bankMask: powMask(cfg.L4Banks * n), chanMask: powMask(cfg.MemChannels * n)}
	for b := 0; b < cfg.L4Banks*n; b++ {
		h.l4.banks = append(h.l4.banks, newBank())
	}
	h.l4.chans = make([]uint64, cfg.MemChannels*n)
	return h
}

// txn threads time and latency attribution through one transaction.
type txn struct {
	now uint64
	bd  Breakdown
}

func (t *txn) adv(cycles uint64, bucket *uint64) {
	t.now += cycles
	*bucket += cycles
}

// waitUntil advances time to at least abs, charging the wait to bucket.
func (t *txn) waitUntil(abs uint64, bucket *uint64) {
	if abs > t.now {
		*bucket += abs - t.now
		t.now = abs
	}
}

func (h *hierarchy) jitter() uint64 {
	if h.cfg.Jitter == 0 {
		return 0
	}
	return h.jrng.intn(h.cfg.Jitter + 1)
}

const invalidOwner = -1

func bit(i int) uint64 { return 1 << uint(i) }

// invalRTT is the round-trip cost of the L3 directory invalidating or
// downgrading one of its cores' private caches.
func (h *hierarchy) invalRTT() uint64 { return 2*h.cfg.OnChipHop + h.cfg.L2Lat }

// access performs one core memory operation: functional effect plus
// critical-path latency. It returns the operation's total latency.
//
//coup:hotpath
func (h *hierarchy) access(c *core) uint64 {
	r := &c.req
	h.now = c.time
	h.st.Accesses++
	var atomicOp bool // RMW, CAS and commutative updates pay AtomicOverhead
	switch r.kind {
	case opLoad:
		h.st.Loads++
	case opStore:
		h.st.Stores++
	case opRMW, opCAS:
		h.st.Atomics++
		atomicOp = true
	case opComm:
		h.st.CommUpdates++
		atomicOp = true
		if h.remote {
			return h.rmoUpdate(c)
		}
	}

	line := r.addr >> 6
	pc := c.pc

	// Private-cache fast path. Latency accounting goes straight into the
	// global breakdown buckets — no per-transaction scratch to zero and
	// merge on the path that serves the overwhelming majority of accesses.
	// The probe doubles as the fill staging: on a clean miss the handle
	// carries the victim way, so fillPriv commits without rescanning.
	l2s, l2h := pc.l2.probe(line)
	if l2s != nil && h.privSufficient(l2s, r) {
		var lat uint64
		if l1s, l1h := pc.l1.probe(line); l1s != nil {
			h.st.L1Hits++
			lat = h.cfg.L1Lat
		} else {
			h.st.L2Hits++
			lat = h.cfg.L1Lat + h.cfg.L2Lat
			h.st.Breakdown.L2 += h.cfg.L2Lat
			pc.l1.commit(line, l1h) // L1 fills silently; L2 is inclusive
		}
		l1bd := h.cfg.L1Lat
		if atomicOp {
			lat += h.cfg.AtomicOverhead
			l1bd += h.cfg.AtomicOverhead
			if r.kind == opComm {
				h.st.ULocalHits++ // COUP's fast path: buffered locally
			}
		}
		h.st.Breakdown.L1 += l1bd
		if r.kind == opComm && l2s.state == coh.U {
			// COUP's hot loop — buffer and coalesce locally (Sec 3.1.2),
			// inlined here to spare the applyPriv dispatch.
			w := (r.addr >> 3) & 7
			l2s.buf[w] = ops.ApplyAt(r.otype, l2s.buf[w], uint(r.addr&7), r.val)
			return lat
		}
		h.applyPriv(c, l2s, r)
		return lat
	}
	tx := txn{now: c.time}

	// Miss path. First fold and drop our own insufficient copy (l2s, found
	// by the sufficiency probe above): its partial update (U) travels with
	// the request and is folded by the reduction the directory is about to
	// run; a read-only copy (S) is dropped by the upgrade. The matching
	// L3-directory drop rides l3Access's own probe (dropSelf) instead of a
	// separate tag scan here.
	if l2s != nil {
		if l2s.state == coh.U {
			h.foldBufferAt(pc, line, l2s)
		}
		pc.l2.invalidateAt(line, l2h)
		pc.l1.invalidate(line)
	}

	tx.adv(h.cfg.L1Lat, &tx.bd.L1)
	tx.adv(h.cfg.L2Lat, &tx.bd.L2)

	var rq shReq
	switch r.kind {
	case opLoad:
		rq = shGetS
	case opStore, opRMW, opCAS:
		rq = shGetX
	case opComm:
		rq = shGetU
	}

	grant, dirWay := h.l3Access(c, line, rq, r.otype, &tx, l2s != nil)

	// Fill the private cache with the granted line and apply the operation.
	filled := h.fillPriv(c, line, grant, r.otype, l2h, dirWay)
	if atomicOp {
		tx.adv(h.cfg.AtomicOverhead, &tx.bd.L1)
	}
	h.applyPriv(c, filled, r)
	h.st.Breakdown.add(tx.bd)
	return tx.now - c.time
}

// privSufficient reports whether the private line's permissions satisfy r
// locally.
func (h *hierarchy) privSufficient(p *privLine, r *request) bool {
	switch r.kind {
	case opLoad:
		return p.state.CanRead()
	case opStore, opRMW, opCAS:
		return p.state.Exclusive()
	case opComm:
		return p.state.Exclusive() || (p.state == coh.U && p.otype == r.otype)
	}
	return false
}

// word32 reads the 32-bit half of *w selected by addr bit 2.
func word32(w uint64, addr uint64) uint32 {
	if addr&4 != 0 {
		return uint32(w >> 32)
	}
	return uint32(w)
}

// setWord32 writes the 32-bit half of *w selected by addr bit 2.
func setWord32(w *uint64, addr uint64, v uint32) {
	if addr&4 != 0 {
		*w = *w&0x00000000FFFFFFFF | uint64(v)<<32
	} else {
		*w = *w&^uint64(0xFFFFFFFF) | uint64(v)
	}
}

// applyPriv performs the functional effect of r against a line the private
// cache now has sufficient permission for. The backing line is resolved
// once; read-modify-write kinds then work on the word in place instead of
// walking the page table per half-access.
func (h *hierarchy) applyPriv(c *core, p *privLine, r *request) {
	if r.kind == opComm && p.state == coh.U {
		// Buffer and coalesce locally (Sec 3.1.2).
		w := (r.addr >> 3) & 7
		p.buf[w] = ops.ApplyAt(r.otype, p.buf[w], uint(r.addr&7), r.val)
		return
	}
	ln := h.store.lineOf(r.addr)
	w := &ln[(r.addr>>3)&7]
	switch r.kind {
	case opLoad:
		if r.width == 4 {
			r.out = uint64(word32(*w, r.addr))
		} else {
			r.out = *w
		}
	case opStore:
		if p.state == coh.E {
			p.state = coh.M
		}
		if r.width == 4 {
			setWord32(w, r.addr, uint32(r.val))
		} else {
			*w = r.val
		}
	case opRMW:
		if p.state == coh.E {
			p.state = coh.M
		}
		var old uint64
		if r.width == 4 {
			old = uint64(word32(*w, r.addr))
		} else {
			old = *w
		}
		var nv uint64
		switch r.rop {
		case rmwAdd:
			nv = old + r.val
		case rmwOr:
			nv = old | r.val
		case rmwAnd:
			nv = old & r.val
		case rmwXor:
			nv = old ^ r.val
		case rmwXchg:
			nv = r.val
		}
		if r.width == 4 {
			setWord32(w, r.addr, uint32(nv))
		} else {
			*w = nv
		}
		r.out = old
	case opCAS:
		if p.state == coh.E {
			p.state = coh.M
		}
		var old uint64
		if r.width == 4 {
			old = uint64(word32(*w, r.addr))
		} else {
			old = *w
		}
		r.out = old
		r.ok = old == r.cmp
		if r.ok {
			if r.width == 4 {
				setWord32(w, r.addr, uint32(r.val))
			} else {
				*w = r.val
			}
		}
	case opComm:
		// Exclusive states apply in place.
		if p.state == coh.E {
			p.state = coh.M
		}
		*w = ops.ApplyAt(r.otype, *w, uint(r.addr&7), r.val)
	}
}

// fillPriv installs a line in the requesting core's L1/L2 with the granted
// state and returns the installed L2 way, so the caller can apply the
// operation without rescanning the set. fh is the handle from the miss
// probe in access: on a clean miss it still stages the victim way and the
// fill commits scan-free; after a same-set mutation (e.g. the requester
// dropped its own insufficient copy) commit falls back to a fresh insert.
func (h *hierarchy) fillPriv(c *core, line uint64, grant coh.State, t ops.Type, fh slotRef, dirWay uint8) *privLine {
	pc := h.priv[c.id]
	s, vtag, vp, evicted, _ := pc.l2.commit(line, fh)
	if evicted {
		h.evictPrivLine(c, vtag, &vp)
		pc.l1.invalidate(vtag)
	}
	*s = privLine{state: grant, dirWay: dirWay}
	if grant == coh.U {
		s.buf = pc.newBuf(t)
		s.otype = t
	}
	pc.l1.insert(line)
	return s
}

// evictPrivLine handles an L2 capacity eviction: partial reduction for U
// lines (Fig 5c), writeback for M, and directory notification (no silent
// drops). These are off the requester's critical path; only traffic,
// reduction-unit occupancy and directory state are updated.
func (h *hierarchy) evictPrivLine(c *core, line uint64, p *privLine) {
	ch := h.chips[c.chip]
	ci := c.id % h.cfg.CoresPerChip
	e := ch.arr.peekAt(line, p.dirWay)
	if e == nil {
		panic(fmt.Sprintf("sim: inclusion violated — L2 line %#x missing from L3", line))
	}
	switch p.state {
	case coh.U:
		h.foldBufferAt(h.priv[c.id], line, p)
		h.st.PartialReductions++
		h.onChip(dataBytes) // partial update travels with the eviction
		ch.bank(line).redBusy += h.cfg.ReduceCyclesPerLine
		e.sharers &^= bit(ci)
	case coh.M:
		h.onChip(dataBytes)
		e.dirty = true
		if e.owner == int16(ci) {
			e.owner = invalidOwner
		}
	case coh.E:
		h.onChip(ctrlBytes)
		if e.owner == int16(ci) {
			e.owner = invalidOwner
		}
	case coh.S:
		h.onChip(ctrlBytes)
		e.sharers &^= bit(ci)
	}
}

// foldBufferAt folds the partial updates of a U line into the backing
// image and returns the buffer to pc's pool.
func (h *hierarchy) foldBufferAt(pc *privCache, line uint64, p *privLine) {
	if p.buf == nil {
		return
	}
	if p.otype.IsUpdate() {
		ops.Reduce(p.otype, h.store.line(line), p.buf)
	}
	pc.bufPool = append(pc.bufPool, p.buf)
	p.buf = nil
}

func (h *hierarchy) onChip(bytes uint64) {
	h.st.OnChipMsgs++
	h.st.OnChipBytes += bytes
}

func (h *hierarchy) offChip(bytes uint64) {
	h.st.OffChipMsgs++
	h.st.OffChipBytes += bytes
}

// l3Access obtains the requested permission for core c from its chip's L3
// directory, escalating to the L4 global directory when the chip's own
// permission is insufficient. It returns the state to install in the
// private cache, plus the L3 way its directory entry landed in (a
// best-effort hint for the requester's later eviction of the line;
// wayUnknown on the rare re-scan paths). dropSelf marks a requester that
// just dropped its own insufficient private copy: the matching
// directory-entry cleanup happens on the entry found by this function's
// probe, instead of a separate tag scan in access.
func (h *hierarchy) l3Access(c *core, line uint64, rq shReq, t ops.Type, tx *txn, dropSelf bool) (coh.State, uint8) {
	ch := h.chips[c.chip]
	b := ch.bank(line)
	ci := c.id % h.cfg.CoresPerChip

	// Serialize against other transactions on this line and this bank.
	lineBusy, bslot := b.lineBusy.getSlot(line)
	tx.waitUntil(lineBusy, &tx.bd.L3)
	tx.waitUntil(b.busyUntil, &tx.bd.L3)
	b.busyUntil = tx.now + h.cfg.DirBankService
	tx.adv(h.cfg.L3Lat+h.jitter(), &tx.bd.L3)
	h.onChip(ctrlBytes)

	// One fused probe serves both outcomes: a hit yields the entry plus a
	// handle that survives l4Access untouched in the common case, and a miss
	// stages the insertion so the allocation after l4Access needs no second
	// 16-way tag scan.
	e, eh := ch.arr.probe(line)
	if e != nil && dropSelf {
		// The requester no longer holds its (just-dropped) private copy;
		// clear it before any directory decision reads the sharer set.
		e.sharers &^= bit(ci)
		if e.owner == int16(ci) {
			e.owner = invalidOwner
		}
	}
	way := slotWay(eh)
	if e == nil {
		// Chip-level miss: obtain chip permission from the L4, then allocate
		// the (inclusive) L3 entry.
		cstate := h.l4Access(c, line, rq, t, tx)
		s, vtag, vp, evicted, w := ch.arr.commit(line, eh)
		if evicted {
			h.evictL3Line(ch, vtag, &vp)
		}
		*s = dirLine{owner: invalidOwner, cstate: cstate}
		e, way = s, w
	} else if !h.chipSufficient(e, rq, t) {
		cstate := h.l4Access(c, line, rq, t, tx)
		e = ch.arr.revalidate(line, eh) // l4Access may have invalidated our entry
		if e == nil {
			s, vtag, vp, evicted, w := ch.arr.insert(line)
			if evicted {
				h.evictL3Line(ch, vtag, &vp)
			}
			*s = dirLine{owner: invalidOwner}
			e, way = s, w
		}
		e.cstate = cstate
	} else {
		h.st.L3Hits++
	}

	grant := h.resolveInChip(c, ch, b, e, line, rq, t, tx, ci)
	b.lineBusy.putAt(bslot, line, tx.now, h.now)
	return grant, way
}

// chipSufficient reports whether the chip's global permission covers rq.
func (h *hierarchy) chipSufficient(d *dirLine, rq shReq, t ops.Type) bool {
	switch rq {
	case shGetS:
		return d.cstate == coh.S || d.cstate.Exclusive()
	case shGetX:
		return d.cstate.Exclusive()
	case shGetU:
		if d.cstate.Exclusive() {
			return true
		}
		return d.cstate == coh.U && d.otype == t
	}
	return false
}

// resolveInChip resolves the in-chip directory actions once the chip itself
// holds sufficient permission, and returns the state granted to the core.
func (h *hierarchy) resolveInChip(c *core, ch *l3cache, b *bank, d *dirLine, line uint64, rq shReq, t ops.Type, tx *txn, ci int) coh.State {
	switch rq {
	case shGetS:
		if d.owner >= 0 {
			// Downgrade the in-chip owner; it keeps a read-only copy.
			h.downgradeCore(ch.chip, int(d.owner), line, coh.S, ops.Read)
			tx.adv(h.invalRTT(), &tx.bd.L3)
			d.sharers |= bit(int(d.owner))
			d.owner = invalidOwner
			d.dirty = true
			d.otype = ops.Read
		} else if d.sharers != 0 && d.otype.IsUpdate() {
			// In-chip full reduction (Fig 5d), permitted because the chip is
			// exclusive (otherwise l4Access already ran a global reduction).
			h.reduceChipCores(ch, b, d, line, tx, &tx.bd.L3)
			d.otype = ops.Read
			h.st.TypeSwitches++
		}
		d.sharers |= bit(ci)
		d.otype = ops.Read
		if d.sharers == bit(ci) && d.cstate.Exclusive() && h.hasE {
			// Sole copy anywhere: exclusive-clean grant.
			d.sharers = 0
			d.owner = int16(ci)
			return coh.E
		}
		return coh.S

	case shGetX:
		if d.owner >= 0 {
			h.invalidateCore(ch.chip, int(d.owner), line)
			tx.adv(h.invalRTT(), &tx.bd.L3)
			d.dirty = true
			d.owner = invalidOwner
		}
		if d.sharers != 0 {
			if d.otype.IsUpdate() {
				h.reduceChipCores(ch, b, d, line, tx, &tx.bd.L3)
			} else {
				h.invalidateChipSharers(ch, d, line, tx, &tx.bd.L3)
			}
		}
		d.owner = int16(ci)
		d.sharers = 0
		d.cstate = coh.M
		d.dirty = true
		return coh.M

	case shGetU:
		if d.owner >= 0 {
			// Fig 5b: downgrade the owner M→U; it stays a sharer with an
			// identity buffer, and its value is written back (to the backing
			// image here).
			h.downgradeCore(ch.chip, int(d.owner), line, coh.U, t)
			tx.adv(h.invalRTT(), &tx.bd.L3)
			d.sharers |= bit(int(d.owner))
			d.owner = invalidOwner
			d.dirty = true
			d.otype = t
		} else if d.sharers != 0 {
			if !d.otype.IsUpdate() {
				// Invalidate read-only copies (Fig 5a).
				h.invalidateChipSharers(ch, d, line, tx, &tx.bd.L3)
				h.st.TypeSwitches++
			} else if d.otype != t {
				// Serialize different update types via full reduction.
				h.reduceChipCores(ch, b, d, line, tx, &tx.bd.L3)
				h.st.TypeSwitches++
			}
		}
		if d.sharers == 0 && d.owner < 0 && d.cstate.Exclusive() && h.hasE {
			// Fig 6: update request on an unshared line is granted in M.
			d.owner = int16(ci)
			d.dirty = true
			return coh.M
		}
		d.sharers |= bit(ci)
		d.otype = t
		h.st.UGrants++
		return coh.U
	}
	panic("unreachable")
}

// downgradeCore demotes a core's private copy from M/E to S or U.
func (h *hierarchy) downgradeCore(chip, ci int, line uint64, to coh.State, t ops.Type) {
	coreID := chip*h.cfg.CoresPerChip + ci
	pc := h.priv[coreID]
	s := pc.l2.peek(line)
	if s == nil {
		panic(fmt.Sprintf("sim: directory thinks core %d owns %#x but L2 misses", coreID, line))
	}
	h.st.Downgrades++
	if s.state == coh.M {
		h.onChip(dataBytes) // dirty value written back
	} else {
		h.onChip(ctrlBytes)
	}
	s.state = to
	if to == coh.U {
		s.buf = pc.newBuf(t)
		s.otype = t
	} else {
		s.buf = nil
		s.otype = ops.Read
	}
}

// invalidateCore removes a core's private copy, folding partial updates and
// accounting the ack traffic. It returns the state the copy held, so
// callers that need it (the hierarchical-reduction counts in evictL3Line
// and invalidateChip) avoid a pre-peek of the same L2 set. The slot handle
// from the single peek also feeds the invalidation, so the victim L2 is
// walked once rather than twice.
func (h *hierarchy) invalidateCore(chip, ci int, line uint64) coh.State {
	coreID := chip*h.cfg.CoresPerChip + ci
	pc := h.priv[coreID]
	s, sh := pc.l2.peekSlot(line)
	if s == nil {
		panic(fmt.Sprintf("sim: directory thinks core %d holds %#x but L2 misses", coreID, line))
	}
	h.st.Invalidations++
	was := s.state
	switch was {
	case coh.U:
		h.foldBufferAt(pc, line, s)
		h.onChip(dataBytes)
	case coh.M:
		h.onChip(dataBytes)
	default:
		h.onChip(ctrlBytes)
	}
	pc.l2.invalidateAt(line, sh)
	pc.l1.invalidate(line)
	return was
}

// invalidateChipSharers invalidates every in-chip non-exclusive copy.
// Critical path: one round trip plus a small fan-out cost per extra sharer.
func (h *hierarchy) invalidateChipSharers(ch *l3cache, d *dirLine, line uint64, tx *txn, bucket *uint64) {
	n := 0
	for rem := d.sharers; rem != 0; rem &= rem - 1 {
		h.invalidateCore(ch.chip, bits.TrailingZeros64(rem), line)
		n++
	}
	d.sharers = 0
	if n > 0 {
		tx.adv(h.invalRTT()+uint64(n-1), bucket)
	}
}

// reduceChipCores performs an in-chip full reduction: every U copy is
// invalidated, its partial update folded by the bank's reduction unit.
func (h *hierarchy) reduceChipCores(ch *l3cache, b *bank, d *dirLine, line uint64, tx *txn, bucket *uint64) {
	n := 0
	for rem := d.sharers; rem != 0; rem &= rem - 1 {
		h.invalidateCore(ch.chip, bits.TrailingZeros64(rem), line)
		n++
	}
	d.sharers = 0
	if n == 0 {
		return
	}
	h.st.FullReductions++
	tx.adv(h.invalRTT()+uint64(n-1), bucket)
	// Reduction unit occupancy: n partial lines through the pipelined ALU.
	start := tx.now
	if b.redBusy > start {
		tx.waitUntil(b.redBusy, bucket)
	}
	tx.adv(h.cfg.ReduceLatency+uint64(n)*h.cfg.ReduceCyclesPerLine, bucket)
	b.redBusy = tx.now
	d.dirty = true
}

// evictL3Line handles an inclusive L3 capacity eviction: recall every core
// copy in this chip, then notify/write back to the L4. Off the critical
// path; traffic and directory state only.
func (h *hierarchy) evictL3Line(ch *l3cache, line uint64, d *dirLine) {
	if d.owner >= 0 {
		h.invalidateCore(ch.chip, int(d.owner), line)
		d.dirty = true
	}
	nU := 0
	for rem := d.sharers; rem != 0; rem &= rem - 1 {
		if h.invalidateCore(ch.chip, bits.TrailingZeros64(rem), line) == coh.U {
			nU++
		}
	}
	if nU > 0 {
		h.st.PartialReductions++
		ch.bank(line).redBusy += uint64(nU) * h.cfg.ReduceCyclesPerLine
	}
	// Update the global directory: this chip no longer caches the line.
	ge := h.l4.arr.peek(line)
	if ge == nil {
		panic(fmt.Sprintf("sim: inclusion violated — L3 line %#x missing from L4", line))
	}
	if ge.owner == int16(ch.chip) {
		ge.owner = invalidOwner
		ge.dirty = true
	}
	ge.sharers &^= bit(ch.chip)
	if d.dirty || d.cstate == coh.U {
		h.offChip(dataBytes)
		ge.dirty = true
	} else {
		h.offChip(ctrlBytes)
	}
}

// l4Access obtains chip-level permission for c's chip from the global
// directory, performing cross-chip invalidations, downgrades and global
// reductions as needed. It returns the chip state granted (S, U, or M for
// exclusive).
func (h *hierarchy) l4Access(c *core, line uint64, rq shReq, t ops.Type, tx *txn) coh.State {
	b := h.l4.bank(line)
	p := c.chip

	tx.adv(2*h.cfg.LinkLat, &tx.bd.Net) // request + reply link traversals
	lineBusy, bslot := b.lineBusy.getSlot(line)
	tx.waitUntil(lineBusy, &tx.bd.L4Inval)
	tx.waitUntil(b.busyUntil, &tx.bd.L4)
	b.busyUntil = tx.now + h.cfg.DirBankService
	tx.adv(h.cfg.L4Lat+h.jitter(), &tx.bd.L4)
	h.offChip(ctrlBytes)

	// Fused probe: the memory access between a global miss and the entry
	// allocation never touches the L4 array, so the staged insertion commits
	// without a second tag scan.
	ge, gh := h.l4.arr.probe(line)
	if ge == nil {
		// Global miss: fetch from memory. Update-only requests need no data
		// (the line starts at the identity element); the fill happens off
		// the critical path.
		if rq == shGetU {
			h.memAccessBackground(line)
		} else {
			h.memAccess(line, tx)
		}
		s, vtag, vp, evicted, _ := h.l4.arr.commit(line, gh)
		if evicted {
			h.evictL4Line(vtag, &vp)
		}
		*s = dirLine{owner: invalidOwner}
		ge = s
	} else {
		h.st.L4Hits++
	}

	d := ge
	grant := h.resolveGlobal(p, d, line, rq, t, tx)
	b.lineBusy.putAt(bslot, line, tx.now, h.now)
	h.offChip(dataBytes) // grant reply (data or permission+identity metadata)
	return grant
}

// resolveGlobal applies the cross-chip directory actions for chip p's
// request and returns the granted chip state.
func (h *hierarchy) resolveGlobal(p int, d *dirLine, line uint64, rq shReq, t ops.Type, tx *txn) coh.State {
	hasE := h.hasE
	switch rq {
	case shGetS:
		if d.owner >= 0 && d.owner != int16(p) {
			h.downgradeChip(int(d.owner), line, coh.S, ops.Read, tx)
			d.sharers |= bit(int(d.owner))
			d.owner = invalidOwner
			d.dirty = true
			d.otype = ops.Read
		} else if d.owner == int16(p) {
			d.sharers |= bit(p)
			d.owner = invalidOwner
		}
		if d.sharers != 0 && d.otype.IsUpdate() {
			h.globalReduction(d, line, tx)
			h.st.TypeSwitches++
		}
		d.otype = ops.Read
		d.sharers |= bit(p)
		if d.sharers == bit(p) && hasE {
			d.sharers = 0
			d.owner = int16(p)
			return coh.M // chip-exclusive
		}
		return coh.S

	case shGetX:
		if d.owner >= 0 && d.owner != int16(p) {
			h.invalidateChip(int(d.owner), line, tx)
			d.dirty = true
			d.owner = invalidOwner
		}
		if d.sharers != 0 {
			if d.otype.IsUpdate() {
				h.globalReduction(d, line, tx)
			} else {
				h.invalidateGlobalSharers(d, line, p, tx)
			}
		}
		d.owner = int16(p)
		d.sharers = 0
		d.dirty = true
		return coh.M

	case shGetU:
		if d.owner >= 0 && d.owner != int16(p) {
			// Downgrade the owning chip to update-only; it keeps U copies.
			h.downgradeChip(int(d.owner), line, coh.U, t, tx)
			d.sharers |= bit(int(d.owner))
			d.owner = invalidOwner
			d.dirty = true
			d.otype = t
		} else if d.owner == int16(p) {
			d.sharers |= bit(p)
			d.owner = invalidOwner
			d.otype = t
		}
		if d.sharers != 0 {
			if !d.otype.IsUpdate() {
				h.invalidateGlobalSharers(d, line, p, tx)
				h.st.TypeSwitches++
			} else if d.otype != t {
				h.globalReduction(d, line, tx)
				h.st.TypeSwitches++
			}
		}
		if d.sharers&^bit(p) == 0 && d.owner < 0 && hasE {
			// Fig 6: no other chip holds a copy — exclusive chip grant.
			d.owner = int16(p)
			d.sharers = 0
			d.dirty = true
			return coh.M
		}
		d.sharers |= bit(p)
		d.otype = t
		return coh.U
	}
	panic("unreachable")
}

// downgradeChip demotes chip q's copy to S or U(t). Its in-chip owner (if
// any) is downgraded the same way; internal copies incompatible with the
// new chip state are reduced (U copies before a read grant) or invalidated
// (S copies before an update grant). The chip keeps its L3 entry.
func (h *hierarchy) downgradeChip(q int, line uint64, to coh.State, t ops.Type, tx *txn) {
	ch := h.chips[q]
	e := ch.arr.peek(line)
	if e == nil {
		panic(fmt.Sprintf("sim: L4 thinks chip %d owns %#x but L3 misses", q, line))
	}
	d := e
	newType := ops.Read
	if to == coh.U {
		newType = t
	}
	cost := 2 * h.cfg.LinkLat
	if d.owner >= 0 {
		h.downgradeCore(q, int(d.owner), line, to, t)
		d.sharers |= bit(int(d.owner))
		d.owner = invalidOwner
		d.otype = newType
		d.dirty = true
		cost += h.invalRTT()
	} else if d.sharers != 0 && d.otype != newType {
		var sub txn
		sub.now = tx.now
		if d.otype.IsUpdate() {
			// Internal partial updates must be reduced before the chip's
			// permission weakens (hierarchical reduction, Sec 3.2).
			h.reduceChipCores(ch, ch.bank(line), d, line, &sub, &sub.bd.L4Inval)
		} else {
			// Internal read-only copies cannot survive an update-only grant.
			h.invalidateChipSharers(ch, d, line, &sub, &sub.bd.L4Inval)
		}
		cost += sub.now - tx.now
		d.otype = newType
	}
	d.cstate = to
	h.st.Downgrades++
	h.offChip(dataBytes)
	tx.adv(cost, &tx.bd.L4Inval)
}

// invalidateChip removes chip q's copy entirely (all core copies plus the
// L3 entry), folding partial updates.
func (h *hierarchy) invalidateChip(q int, line uint64, tx *txn) uint64 {
	ch := h.chips[q]
	e := ch.arr.peek(line)
	if e == nil {
		panic(fmt.Sprintf("sim: L4 thinks chip %d holds %#x but L3 misses", q, line))
	}
	cost := 2 * h.cfg.LinkLat
	if e.owner >= 0 {
		h.invalidateCore(q, int(e.owner), line)
		cost += h.invalRTT()
	}
	nU := 0
	for rem := e.sharers; rem != 0; rem &= rem - 1 {
		if h.invalidateCore(q, bits.TrailingZeros64(rem), line) == coh.U {
			nU++
		}
	}
	if e.sharers != 0 {
		cost += h.invalRTT()
	}
	if nU > 0 {
		// Hierarchical reduction: the chip's reduction unit aggregates its
		// cores' partials before one response crosses the link (Sec 3.2).
		cost += h.cfg.ReduceLatency + uint64(nU)*h.cfg.ReduceCyclesPerLine
	}
	dirty := e.dirty || e.cstate == coh.U || nU > 0
	ch.arr.invalidate(line)
	h.st.Invalidations++
	if dirty {
		h.offChip(dataBytes)
	} else {
		h.offChip(ctrlBytes)
	}
	tx.adv(cost, &tx.bd.L4Inval)
	return cost
}

// invalidateGlobalSharers invalidates every sharer chip except keep (the
// requester, which upgrades in place). Chips are invalidated in parallel;
// the critical path is the slowest chip plus a per-chip fan-out cycle.
func (h *hierarchy) invalidateGlobalSharers(d *dirLine, line uint64, keep int, tx *txn) {
	start := tx.now
	var maxEnd uint64
	n := 0
	for q := 0; q < h.nChips; q++ {
		if d.sharers&bit(q) == 0 {
			continue
		}
		if q == keep {
			// The requester chip's own non-exclusive copies are handled by
			// the in-chip resolution step; here it just upgrades.
			continue
		}
		var sub txn
		sub.now = start
		h.invalidateChip(q, line, &sub)
		if sub.now > maxEnd {
			maxEnd = sub.now
		}
		n++
	}
	d.sharers &= bit(keep)
	if n > 0 {
		tx.waitUntil(maxEnd+uint64(n-1), &tx.bd.L4Inval)
	}
}

// globalReduction gathers and reduces every chip's partial updates
// (hierarchically: each chip aggregates its own cores first), leaving the
// line uncached below the L4.
func (h *hierarchy) globalReduction(d *dirLine, line uint64, tx *txn) {
	start := tx.now
	var maxEnd uint64
	n := 0
	for q := 0; q < h.nChips; q++ {
		if d.sharers&bit(q) == 0 {
			continue
		}
		var sub txn
		sub.now = start
		h.invalidateChip(q, line, &sub)
		if sub.now > maxEnd {
			maxEnd = sub.now
		}
		n++
	}
	d.sharers = 0
	if n == 0 {
		return
	}
	h.st.FullReductions++
	tx.waitUntil(maxEnd+uint64(n-1), &tx.bd.L4Inval)
	// L4 reduction unit folds the per-chip partials.
	b := h.l4.bank(line)
	units := uint64(n)
	if h.cfg.FlatReductions {
		// Ablation: no per-chip aggregation; one partial per core instead.
		units = uint64(n * h.cfg.CoresPerChip)
	}
	if b.redBusy > tx.now {
		tx.waitUntil(b.redBusy, &tx.bd.L4Inval)
	}
	tx.adv(h.cfg.ReduceLatency+units*h.cfg.ReduceCyclesPerLine, &tx.bd.L4Inval)
	b.redBusy = tx.now
	d.dirty = true
}

// evictL4Line recalls a line from every chip and writes it back to memory
// if dirty. Off the critical path.
func (h *hierarchy) evictL4Line(line uint64, d *dirLine) {
	var scratch txn
	if d.owner >= 0 {
		h.invalidateChip(int(d.owner), line, &scratch)
		d.dirty = true
	}
	for q := 0; q < h.nChips; q++ {
		if d.sharers&bit(q) != 0 {
			h.invalidateChip(q, line, &scratch)
		}
	}
	if d.dirty {
		h.memWriteBackground(line)
	}
}

// memAccess charges a critical-path DRAM access.
func (h *hierarchy) memAccess(line uint64, tx *txn) {
	h.st.MemAccs++
	ch := h.l4.channel(line)
	tx.waitUntil(*ch, &tx.bd.Mem)
	*ch = tx.now + h.cfg.MemChannelService
	tx.adv(h.cfg.MemLat+h.jitter(), &tx.bd.Mem)
	h.st.MemBytes += 64
}

// memAccessBackground models a fill that is not on the critical path (the
// update-only grant does not wait for data, Sec 2.1's "updates need not
// read the data they update").
func (h *hierarchy) memAccessBackground(line uint64) {
	h.st.MemAccs++
	ch := h.l4.channel(line)
	*ch += h.cfg.MemChannelService
	h.st.MemBytes += 64
}

func (h *hierarchy) memWriteBackground(line uint64) {
	ch := h.l4.channel(line)
	*ch += h.cfg.MemChannelService
	h.st.MemBytes += 64
}

// rmoUpdate executes a commutative update remotely at the line's home L4
// bank (Fig 1b): no caching by the updater, every update crosses the
// network, and the bank ALU is the serialization point.
func (h *hierarchy) rmoUpdate(c *core) uint64 {
	r := &c.req
	line := r.addr >> 6
	tx := txn{now: c.time}
	tx.adv(h.cfg.L1Lat, &tx.bd.L1)

	// Drop any local copy; remote updates do not cache.
	pc := h.priv[c.id]
	if s, sh := pc.l2.peekSlot(line); s != nil {
		dirWay := s.dirWay
		pc.l2.invalidateAt(line, sh)
		pc.l1.invalidate(line)
		if e := h.chips[c.chip].arr.peekAt(line, dirWay); e != nil {
			ci := c.id % h.cfg.CoresPerChip
			e.sharers &^= bit(ci)
			if e.owner == int16(ci) {
				e.owner = invalidOwner
			}
		}
	}

	b := h.l4.bank(line)
	tx.adv(2*h.cfg.LinkLat, &tx.bd.Net)
	lineBusy, bslot := b.lineBusy.getSlot(line)
	tx.waitUntil(lineBusy, &tx.bd.L4Inval)
	tx.waitUntil(b.busyUntil, &tx.bd.L4)
	b.busyUntil = tx.now + h.cfg.DirBankService
	tx.adv(h.cfg.L4Lat, &tx.bd.L4)
	h.offChip(ctrlBytes + 8) // address + operand

	ge := h.l4.arr.lookup(line)
	if ge == nil {
		h.memAccess(line, &tx)
		s, vtag, vp, evicted, _ := h.l4.arr.insert(line)
		if evicted {
			h.evictL4Line(vtag, &vp)
		}
		*s = dirLine{owner: invalidOwner}
		ge = s
	} else if ge.hasChildren() {
		// Invalidate cached copies so the remote ALU operates on the only
		// valid version.
		if ge.owner >= 0 {
			h.invalidateChip(int(ge.owner), line, &tx)
			ge.owner = invalidOwner
		}
		h.invalidateGlobalSharers(ge, line, -1, &tx)
		ge.sharers = 0
	}
	// Remote ALU occupancy: this is the hotspot RMOs suffer from.
	if b.redBusy > tx.now {
		tx.waitUntil(b.redBusy, &tx.bd.L4Inval)
	}
	tx.adv(2, &tx.bd.L4)
	b.redBusy = tx.now
	ge.dirty = true

	w := (r.addr >> 3) & 7
	ln := h.store.lineOf(r.addr)
	ln[w] = ops.ApplyAt(r.otype, ln[w], uint(r.addr&7), r.val)
	b.lineBusy.putAt(bslot, line, tx.now, h.now)

	h.st.Breakdown.add(tx.bd)
	return tx.now - c.time
}

// drain folds every outstanding private partial-update buffer into the
// backing image so post-run inspection sees final values. It models the
// reductions that the first post-run reads would trigger; no timing cost.
func (h *hierarchy) drain() {
	for _, pc := range h.priv {
		pc.l2.forEach(func(tag uint64, p *privLine) {
			if p.state == coh.U && p.buf != nil {
				h.foldBufferAt(pc, tag, p)
				// Keep the line resident in U with a fresh identity buffer so
				// structural invariants still hold after draining.
				p.buf = pc.newBuf(p.otype)
			}
		})
	}
}

// checkInvariants validates the hierarchy's structural invariants; tests
// call this through Machine.CheckInvariants.
func (h *hierarchy) checkInvariants() error {
	// Private states must be mirrored by the chip directory, chip entries
	// by the global directory, and exclusivity must be unique.
	for cid, pc := range h.priv {
		chip := cid / h.cfg.CoresPerChip
		ci := cid % h.cfg.CoresPerChip
		var err error
		pc.l2.forEach(func(tag uint64, p *privLine) {
			if err != nil {
				return
			}
			e := h.chips[chip].arr.peek(tag)
			if e == nil {
				err = fmt.Errorf("core %d holds %#x in %v but L3 has no entry", cid, tag, p.state)
				return
			}
			switch p.state {
			case coh.M, coh.E:
				if e.owner != int16(ci) {
					err = fmt.Errorf("core %d holds %#x in %v but dir owner=%d", cid, tag, p.state, e.owner)
				}
			case coh.S:
				if e.sharers&bit(ci) == 0 || e.otype.IsUpdate() {
					err = fmt.Errorf("core %d holds %#x in S but dir sharers=%#x type=%v", cid, tag, e.sharers, e.otype)
				}
			case coh.U:
				if e.sharers&bit(ci) == 0 || e.otype != p.otype {
					err = fmt.Errorf("core %d holds %#x in U(%v) but dir sharers=%#x type=%v", cid, tag, p.otype, e.sharers, e.otype)
				}
				if p.buf == nil {
					err = fmt.Errorf("core %d U line %#x has no buffer", cid, tag)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	// L3 entries must appear in the L4 directory, and U-mode lines must have
	// a single operation type across all caches.
	for q, ch := range h.chips {
		var err error
		ch.arr.forEach(func(tag uint64, d *dirLine) {
			if err != nil {
				return
			}
			ge := h.l4.arr.peek(tag)
			if ge == nil {
				err = fmt.Errorf("chip %d caches %#x but L4 has no entry", q, tag)
				return
			}
			switch d.cstate {
			case coh.M, coh.E:
				if ge.owner != int16(q) {
					err = fmt.Errorf("chip %d exclusive on %#x but L4 owner=%d", q, tag, ge.owner)
				}
			case coh.S, coh.U:
				if ge.sharers&bit(q) == 0 {
					err = fmt.Errorf("chip %d shares %#x but L4 sharers=%#x", q, tag, ge.sharers)
				}
			}
			// Exclusivity within the chip.
			if d.owner >= 0 && d.sharers != 0 {
				err = fmt.Errorf("chip %d line %#x has owner %d and sharers %#x", q, tag, d.owner, d.sharers)
			}
		})
		if err != nil {
			return err
		}
	}
	// Global exclusivity: at most one chip owner per line; SWMR analogue.
	ownerCount := map[uint64]int{}
	h.l4.arr.forEach(func(tag uint64, d *dirLine) {
		if d.owner >= 0 {
			ownerCount[tag]++
			if d.sharers != 0 {
				ownerCount[tag] += 10 // flag: owner and sharers coexist
			}
		}
	})
	// Report the lowest violating tag so a broken run always produces the
	// same error text, not whichever map bucket came up first.
	tags := make([]uint64, 0, len(ownerCount))
	for tag := range ownerCount {
		tags = append(tags, tag)
	}
	slices.Sort(tags)
	for _, tag := range tags {
		if n := ownerCount[tag]; n > 1 {
			return fmt.Errorf("line %#x violates global exclusivity (%d)", tag, n)
		}
	}
	return nil
}

// CheckInvariants validates structural coherence invariants (inclusion,
// directory/cache agreement, exclusivity). Primarily for tests.
func (m *Machine) CheckInvariants() error { return m.hier.checkInvariants() }
