package sim

import (
	"math"

	"repro/internal/ops"
)

// Ctx is the interface a simulated thread uses to touch the memory system.
// Every method models one or more instructions of the simulated ISA:
// ordinary loads and stores, x86-style atomics, and COUP's commutative-
// update instructions (which take an address and a value and write no
// register, Sec 3.1.1).
//
// Under the MESI baseline the Comm* methods transparently fall back to the
// equivalent atomic read-modify-write (integer) or load+CAS retry loop
// (floating point), exactly how the paper's baseline benchmark
// implementations express the same updates. Under RMO they are shipped to
// the line's home bank. Workloads are therefore written once and run
// unmodified under every protocol.
type Ctx struct {
	m *Machine
	c *core
}

// Tid returns this thread's id (0..NThreads-1); one thread runs per core.
func (x *Ctx) Tid() int { return x.c.id }

// NThreads returns the number of simulated threads.
func (x *Ctx) NThreads() int { return len(x.m.cores) }

// Chip returns the processor chip this thread's core belongs to.
func (x *Ctx) Chip() int { return x.c.chip }

// NChips returns the number of processor chips.
func (x *Ctx) NChips() int { return x.m.cfg.Chips() }

// Now returns the core's current cycle count.
func (x *Ctx) Now() uint64 { return x.c.time }

// Rand returns a deterministic per-core pseudo-random value.
func (x *Ctx) Rand() uint64 { return x.c.rng.next() }

// RandN returns a deterministic per-core value in [0, n).
func (x *Ctx) RandN(n uint64) uint64 { return x.c.rng.intn(n) }

// Work advances the core's clock by n cycles of non-memory computation and
// accounts roughly one instruction per cycle for instruction-mix stats.
func (x *Ctx) Work(n uint64) {
	x.c.time += n
	x.c.instrs += n
}

// Barrier blocks until every thread reaches it. Cost models a software tree
// barrier (see Config.BarrierBase).
func (x *Ctx) Barrier() {
	x.c.req = request{kind: opBarrier}
	x.yield()
}

// yield suspends the kernel coroutine and hands x.c.req to the engine;
// when the engine resumes the core, results are already in x.c.req. This
// is a direct coroutine switch (iter.Pull), not a channel handoff.
func (x *Ctx) yield() {
	x.c.yield(struct{}{})
}

// exec services the operation already stored in c.req (writing the request
// directly into the core avoids copying it through a parameter) and returns
// it with its results filled in.
//
//coup:hotpath
func (x *Ctx) exec() *request {
	c := x.c
	c.instrs++
	m := x.m
	// Run-ahead fast path: while this core's clock is still ahead of every
	// other core's next operation (the packed horizon raH, maintained by
	// the scheduler and frozen while this core runs), the operation is the
	// next event in global order and can be serviced right here — no
	// coroutine switch, no scheduler touch. A single-core machine never
	// leaves this path.
	if c.time<<16|uint64(uint16(c.id)) < m.raH {
		c.time += m.hier.access(c)
		return &c.req
	}
	x.yield()
	return &c.req
}

// Load64 loads a 64-bit word.
func (x *Ctx) Load64(addr uint64) uint64 {
	x.c.req = request{kind: opLoad, addr: addr, width: 8}
	return x.exec().out
}

// Load32 loads a 32-bit word.
func (x *Ctx) Load32(addr uint64) uint32 {
	x.c.req = request{kind: opLoad, addr: addr, width: 4}
	return uint32(x.exec().out)
}

// LoadF64 loads a float64.
func (x *Ctx) LoadF64(addr uint64) float64 { return math.Float64frombits(x.Load64(addr)) }

// LoadF32 loads a float32.
func (x *Ctx) LoadF32(addr uint64) float32 { return math.Float32frombits(x.Load32(addr)) }

// Store64 stores a 64-bit word.
func (x *Ctx) Store64(addr, v uint64) {
	x.c.req = request{kind: opStore, addr: addr, val: v, width: 8}
	x.exec()
}

// Store32 stores a 32-bit word.
func (x *Ctx) Store32(addr uint64, v uint32) {
	x.c.req = request{kind: opStore, addr: addr, val: uint64(v), width: 4}
	x.exec()
}

// StoreF64 stores a float64.
func (x *Ctx) StoreF64(addr uint64, v float64) { x.Store64(addr, math.Float64bits(v)) }

// StoreF32 stores a float32.
func (x *Ctx) StoreF32(addr uint64, v float32) { x.Store32(addr, math.Float32bits(v)) }

// AtomicAdd64 is an atomic 64-bit fetch-and-add; it returns the old value.
func (x *Ctx) AtomicAdd64(addr, delta uint64) uint64 {
	x.c.req = request{kind: opRMW, addr: addr, val: delta, width: 8, rop: rmwAdd}
	return x.exec().out
}

// AtomicAdd32 is an atomic 32-bit fetch-and-add; it returns the old value.
func (x *Ctx) AtomicAdd32(addr uint64, delta uint32) uint32 {
	x.c.req = request{kind: opRMW, addr: addr, val: uint64(delta), width: 4, rop: rmwAdd}
	return uint32(x.exec().out)
}

// AtomicOr64 is an atomic 64-bit fetch-and-or; it returns the old value.
func (x *Ctx) AtomicOr64(addr, bits uint64) uint64 {
	x.c.req = request{kind: opRMW, addr: addr, val: bits, width: 8, rop: rmwOr}
	return x.exec().out
}

// AtomicXchg64 atomically exchanges a 64-bit word, returning the old value.
func (x *Ctx) AtomicXchg64(addr, v uint64) uint64 {
	x.c.req = request{kind: opRMW, addr: addr, val: v, width: 8, rop: rmwXchg}
	return x.exec().out
}

// CAS64 performs an atomic compare-and-swap on a 64-bit word and reports
// whether it succeeded.
func (x *Ctx) CAS64(addr, old, new uint64) bool {
	x.c.req = request{kind: opCAS, addr: addr, cmp: old, val: new, width: 8}
	return x.exec().ok
}

// CAS32 performs an atomic compare-and-swap on a 32-bit word.
func (x *Ctx) CAS32(addr uint64, old, new uint32) bool {
	x.c.req = request{kind: opCAS, addr: addr, cmp: uint64(old), val: uint64(new), width: 4}
	return x.exec().ok
}

// comm issues a commutative update, falling back per protocol.
//
//coup:hotpath
func (x *Ctx) comm(t ops.Type, addr, v uint64, width uint8) {
	if x.m.commNative {
		x.c.req = request{kind: opComm, addr: addr, val: v, width: width, otype: t}
		x.exec()
	} else {
		// MESI baseline: the same update expressed with conventional atomics.
		switch t {
		case ops.AddI16, ops.AddI32, ops.AddI64:
			x.c.req = request{kind: opRMW, addr: addr, val: v, width: width, rop: rmwAdd}
			x.exec()
		case ops.Or64:
			x.c.req = request{kind: opRMW, addr: addr, val: v, width: width, rop: rmwOr}
			x.exec()
		case ops.And64:
			x.c.req = request{kind: opRMW, addr: addr, val: v, width: width, rop: rmwAnd}
			x.exec()
		case ops.Xor64:
			x.c.req = request{kind: opRMW, addr: addr, val: v, width: width, rop: rmwXor}
			x.exec()
		case ops.AddF32:
			for {
				old := x.Load32(addr)
				nv := math.Float32bits(math.Float32frombits(old) + math.Float32frombits(uint32(v)))
				if x.CAS32(addr, old, nv) {
					return
				}
			}
		case ops.AddF64:
			for {
				old := x.Load64(addr)
				nv := math.Float64bits(math.Float64frombits(old) + math.Float64frombits(v))
				if x.CAS64(addr, old, nv) {
					return
				}
			}
		}
	}
}

// CommAdd64 issues a commutative 64-bit integer addition.
func (x *Ctx) CommAdd64(addr, delta uint64) { x.comm(ops.AddI64, addr, delta, 8) }

// CommAdd32 issues a commutative 32-bit integer addition.
func (x *Ctx) CommAdd32(addr uint64, delta uint32) { x.comm(ops.AddI32, addr, uint64(delta), 4) }

// CommAddF64 issues a commutative float64 addition.
func (x *Ctx) CommAddF64(addr uint64, v float64) { x.comm(ops.AddF64, addr, math.Float64bits(v), 8) }

// CommAddF32 issues a commutative float32 addition.
func (x *Ctx) CommAddF32(addr uint64, v float32) {
	x.comm(ops.AddF32, addr, uint64(math.Float32bits(v)), 4)
}

// CommOr64 issues a commutative 64-bit OR.
func (x *Ctx) CommOr64(addr, bits uint64) { x.comm(ops.Or64, addr, bits, 8) }

// CommAnd64 issues a commutative 64-bit AND.
func (x *Ctx) CommAnd64(addr, bits uint64) { x.comm(ops.And64, addr, bits, 8) }

// CommXor64 issues a commutative 64-bit XOR.
func (x *Ctx) CommXor64(addr, bits uint64) { x.comm(ops.Xor64, addr, bits, 8) }

// SpinLock acquires a test-and-test-and-set spinlock at addr (0 = free).
func (x *Ctx) SpinLock(addr uint64) {
	for {
		if x.Load64(addr) == 0 && x.CAS64(addr, 0, 1) {
			return
		}
		x.Work(20) // backoff
	}
}

// SpinUnlock releases a spinlock acquired with SpinLock.
func (x *Ctx) SpinUnlock(addr uint64) { x.Store64(addr, 0) }
