package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a single type-checked
// package through its Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (short, lower-case).
	Name string
	// Doc is the one-paragraph description shown by coupvet's usage text.
	Doc string
	// Run executes the check. Returning an error aborts the whole vet run
	// (a broken analyzer, not a finding); findings go through Pass.Reportf.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run (for diagnostic labels).
	Analyzer *Analyzer
	// Fset resolves token positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's expression, object and selection
	// tables for the package's syntax.
	Info *types.Info
	// Sizes gives target sizeof/alignof, for layout checks (padalign).
	Sizes types.Sizes

	diags *[]Diagnostic
}

// A Diagnostic is one finding, position-resolved for printing.
type Diagnostic struct {
	// Pos is the finding's resolved source position.
	Pos token.Position
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Message describes the finding and, where possible, the fix.
	Message string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunPass executes one analyzer over one package and returns its findings
// sorted by position. The inputs mirror load.Package's fields; cmd/coupvet
// and the antest harness both assemble passes through this single door.
func RunPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sizes types.Sizes) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		Sizes:    sizes,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path(), err)
	}
	Sort(diags)
	return diags, nil
}

// Sort orders diagnostics by file, line, column, then analyzer name, the
// stable order coupvet prints and CI diffs against.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Source markers. Both are comment directives in the gofmt-protected
// //lower:case form (no space after //), so formatting never rewrites
// them. doc.go documents the contract each one asserts.
const (
	// MarkerHotPath marks a function as allocation-free steady state; it
	// goes in the function's doc comment. hotalloc checks the body
	// statically and, in -escapes mode, against the compiler's real
	// escape analysis.
	MarkerHotPath = "//coup:hotpath"
	// MarkerUnorderedOK marks a range-over-map whose iteration order is
	// genuinely irrelevant to any output; it goes on the range statement's
	// line or the line above. detrange skips marked loops.
	MarkerUnorderedOK = "//coup:unordered-ok"
	// MarkerAllocOK marks a construct in a //coup:hotpath function that
	// hotalloc's conservative model would flag but the compiler's escape
	// analysis proves allocation-free (e.g. an interface argument the
	// callee does not leak, so the box stays on the stack); it goes on the
	// construct's line or the line above. -escapes keeps marked lines
	// honest: a marker never silences a real "escapes to heap".
	MarkerAllocOK = "//coup:alloc-ok"
)

// HasMarker reports whether the comment group carries the marker as a
// stand-alone directive line (exact, or followed by explanatory text).
func HasMarker(g *ast.CommentGroup, marker string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		text := strings.TrimRight(c.Text, " \t")
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// MarkedLines returns the set of line numbers in f whose comments carry
// marker, so statement-level markers work both trailing a line and on the
// line immediately above it.
func MarkedLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	var lines map[int]bool
	for _, g := range f.Comments {
		for _, c := range g.List {
			text := strings.TrimRight(c.Text, " \t")
			if text == marker || strings.HasPrefix(text, marker+" ") {
				if lines == nil {
					lines = map[int]bool{}
				}
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// LineMarked reports whether the line holding pos, or the line above it,
// carries a marker previously collected with MarkedLines.
func LineMarked(fset *token.FileSet, marked map[int]bool, pos token.Pos) bool {
	if len(marked) == 0 {
		return false
	}
	line := fset.Position(pos).Line
	return marked[line] || marked[line-1]
}
