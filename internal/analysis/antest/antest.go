// Package antest runs an analyzer over a fixture package and checks its
// findings against `// want` comments — the analysistest idiom from
// x/tools, reduced to what the repo's analyzers need. A fixture line that
// should be flagged carries a trailing comment of the form
//
//	code() // want `regexp`
//
// (one or more backquoted regexps; each must be matched by a distinct
// diagnostic on that line). Lines without a want comment must produce no
// diagnostics, so every fixture is simultaneously its analyzer's positive
// and negative case.
package antest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// wantRx pulls the backquoted patterns off a want comment.
var wantRx = regexp.MustCompile("`([^`]*)`")

// key locates one fixture line.
type key struct {
	file string
	line int
}

// Run loads the fixture package in dir under the import path pkgpath,
// runs a over it, and fails t on any mismatch between diagnostics and the
// fixture's want comments. pkgpath matters to path-scoped analyzers
// (detrange): the same fixture source can be run in and out of scope.
func Run(t *testing.T, dir, pkgpath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := load.Dir(dir, pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Sizes)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	// Collect want patterns per (file, line) from every comment.
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRx.FindAllStringSubmatch(text[i:], -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}

	// Match each diagnostic against that line's remaining patterns.
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		rxs := wants[k]
		matched := -1
		for i, rx := range rxs {
			if rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", fmtKey(k), d.Message)
			continue
		}
		wants[k] = append(rxs[:matched], rxs[matched+1:]...)
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("%s: no diagnostic matching %q", fmtKey(k), rx)
		}
	}
}

func fmtKey(k key) string { return fmt.Sprintf("%s:%d", k.file, k.line) }
