package poolhygiene_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/poolhygiene"
)

// TestPools runs the fixture's leaky and hygienic Put shapes — including
// the deferred-literal idiom the coupd server uses — through the
// analyzer in one pass.
func TestPools(t *testing.T) {
	antest.Run(t, "testdata/src/pools", "example.com/pools", poolhygiene.Analyzer)
}
