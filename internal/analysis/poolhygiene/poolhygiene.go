// Package poolhygiene checks sync.Pool discipline: when a pooled value's
// type holds slices or maps, the function returning it with Put must
// visibly reset those fields first. A pooled object that keeps its old
// slice contents leaks stale data into the next Get — in coupd's case,
// one request's update batch bleeding into another's — and silently pins
// the largest-ever backing array in the pool.
//
// For each Put(x) where x's (pointed-to) struct type has direct slice or
// map fields, the enclosing function — the innermost func declaration or
// literal containing the Put, so the `defer func() { reset; Put }()`
// idiom is scoped correctly — must contain, for every such field F, one
// of:
//
//   - an assignment to x.F (truncation `x.F = x.F[:0]`, nil-out, or
//     replacement all count: each breaks the stale-data carry);
//   - clear(x.F) or clear(x.F[...]) — zeroing in place;
//   - a whole-value reset `*x = T{}`;
//   - a call to a method on x whose name contains "reset" — the
//     type-owns-its-hygiene escape hatch, trusted to clear everything.
//
// Fields of other types (ints, atomics, arrays) are not tracked: carrying
// a stale counter is a logic choice, carrying a stale slice is a
// cross-request data leak. Put arguments the analyzer cannot name (calls,
// index expressions) are skipped rather than guessed at.
package poolhygiene

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the poolhygiene check.
var Analyzer = &analysis.Analyzer{
	Name: "poolhygiene",
	Doc: "sync.Pool.Put of a value whose type holds slice/map fields requires a visible " +
		"reset of each such field in the enclosing function",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Walk with an explicit stack of enclosing function bodies so a
			// Put inside a deferred literal is judged against that literal.
			var walk func(body *ast.BlockStmt)
			walk = func(body *ast.BlockStmt) {
				ast.Inspect(body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						walk(lit.Body)
						return false
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					checkPut(pass, body, call)
					return true
				})
			}
			walk(fd.Body)
		}
	}
	return nil
}

// checkPut inspects one call; if it is sync.Pool.Put of a trackable value
// with dirty-able fields, it verifies the resets within body.
func checkPut(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr) {
	if !isPoolMethod(pass, call, "Put") || len(call.Args) != 1 {
		return
	}
	obj := argObject(pass, call.Args[0])
	if obj == nil {
		return
	}
	st := pooledStruct(obj.Type())
	if st == nil {
		return
	}
	var dirty []string
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		switch fld.Type().Underlying().(type) {
		case *types.Slice, *types.Map:
			dirty = append(dirty, fld.Name())
		}
	}
	if len(dirty) == 0 {
		return
	}
	reset := resetFields(pass, body, obj)
	if reset == nil {
		reset = map[string]bool{}
	}
	var missing []string
	for _, f := range dirty {
		if !reset[f] && !reset["*"] {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(call.Pos(),
			"sync.Pool.Put(%s) without resetting slice/map field(s) %s of %s; stale contents will "+
				"resurface on the next Get — truncate, clear, or nil them before Put",
			obj.Name(), strings.Join(missing, ", "), types.TypeString(obj.Type(), nil))
	}
}

// resetFields scans body for field resets on obj; the "*" key marks a
// whole-value reset.
func resetFields(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) map[string]bool {
	reset := map[string]bool{}
	isObj := func(e ast.Expr) bool {
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = u.X
		}
		id, ok := e.(*ast.Ident)
		return ok && objOf(pass, id) == obj
	}
	fieldOf := func(e ast.Expr) (string, bool) {
		// Unwrap slicing/indexing: clear(x.F[:n]) still targets x.F.
		for {
			switch ee := e.(type) {
			case *ast.SliceExpr:
				e = ee.X
			case *ast.IndexExpr:
				e = ee.X
			default:
				sel, ok := e.(*ast.SelectorExpr)
				if !ok || !isObj(sel.X) {
					return "", false
				}
				return sel.Sel.Name, true
			}
		}
	}
	// isReset recognizes right-hand sides that break the stale-data carry:
	// nil, a re-slice of the field itself (truncation), an empty composite
	// literal, or a fresh make (always zeroed). Notably NOT append — growing
	// a field is the opposite of resetting it.
	isReset := func(rhs ast.Expr, field string) bool {
		if tv, ok := pass.Info.Types[rhs]; ok && tv.IsNil() {
			return true
		}
		switch r := rhs.(type) {
		case *ast.SliceExpr:
			name, ok := fieldOf(r)
			return ok && name == field
		case *ast.CompositeLit:
			return len(r.Elts) == 0
		case *ast.CallExpr:
			if id, ok := r.Fun.(*ast.Ident); ok {
				b, isB := pass.Info.Uses[id].(*types.Builtin)
				return isB && b.Name() == "make"
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if star, ok := lhs.(*ast.StarExpr); ok && isObj(star.X) {
					reset["*"] = true
					continue
				}
				if name, ok := fieldOf(lhs); ok && isReset(n.Rhs[i], name) {
					reset[name] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) == 1 {
				if b, isB := pass.Info.Uses[id].(*types.Builtin); isB && b.Name() == "clear" {
					if name, ok := fieldOf(n.Args[0]); ok {
						reset[name] = true
					}
				}
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isObj(sel.X) {
				if fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func); isFn &&
					strings.Contains(strings.ToLower(fn.Name()), "reset") {
					reset["*"] = true
				}
			}
		}
		return true
	})
	return reset
}

// isPoolMethod reports whether call invokes the named method of sync.Pool.
func isPoolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Pool"
}

// argObject names the variable being Put: a bare identifier or its
// address. Anything else is untrackable and yields nil.
func argObject(pass *analysis.Pass, e ast.Expr) types.Object {
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = u.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return objOf(pass, id)
}

// objOf resolves an identifier whether this is its defining or a using
// occurrence.
func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Uses[id]; o != nil {
		return o
	}
	return pass.Info.Defs[id]
}

// pooledStruct unwraps pointers to the struct type of a pooled value, or
// nil when the value is not (a pointer to) a struct.
func pooledStruct(t types.Type) *types.Struct {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return st
}
