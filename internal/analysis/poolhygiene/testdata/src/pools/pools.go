// Package pools exercises poolhygiene: Put of slice/map-bearing values
// needs a visible per-field reset in the enclosing function.
package pools

import "sync"

type buffer struct {
	data []byte
	n    int
}

type table struct {
	rows map[string]int
}

type scratch struct {
	i64 []int64
	u64 []uint64
}

type counter struct {
	n int64
}

func (b *buffer) Reset() { b.data = b.data[:0]; b.n = 0 }

var (
	bufPool     = sync.Pool{New: func() any { return new(buffer) }}
	tabPool     = sync.Pool{New: func() any { return &table{rows: map[string]int{}} }}
	scratchPool = sync.Pool{New: func() any { return new(scratch) }}
	ctrPool     = sync.Pool{New: func() any { return new(counter) }}
)

// leakyPut returns the buffer still holding this call's bytes.
func leakyPut(p []byte) {
	b := bufPool.Get().(*buffer)
	b.data = append(b.data, p...)
	bufPool.Put(b) // want `Put\(b\) without resetting slice/map field\(s\) data`
}

// truncatedPut is the idiomatic reuse: truncate, then return.
func truncatedPut(p []byte) {
	b := bufPool.Get().(*buffer)
	b.data = append(b.data, p...)
	b.data = b.data[:0]
	bufPool.Put(b)
}

// methodPut delegates hygiene to the type's own Reset.
func methodPut(p []byte) {
	b := bufPool.Get().(*buffer)
	b.data = append(b.data, p...)
	b.Reset()
	bufPool.Put(b)
}

// clearedPut zeroes the map in place; the allocation is kept, the
// entries are not.
func clearedPut() {
	t := tabPool.Get().(*table)
	t.rows["x"] = 1
	clear(t.rows)
	tabPool.Put(t)
}

// zeroedPut resets the whole value, covering every field at once.
func zeroedPut() {
	b := bufPool.Get().(*buffer)
	b.data = append(b.data, 1)
	*b = buffer{}
	bufPool.Put(b)
}

// deferredLeak mirrors the server idiom gone wrong: the deferred Put is
// its own function and performs no reset there.
func deferredLeak() {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc) // want `Put\(sc\) without resetting slice/map field\(s\) i64, u64`
	sc.i64 = append(sc.i64, 1)
}

// deferredReset is the same idiom done right: truncations share the
// deferred literal with the Put.
func deferredReset() {
	sc := scratchPool.Get().(*scratch)
	defer func() {
		sc.i64 = sc.i64[:0]
		sc.u64 = sc.u64[:0]
		scratchPool.Put(sc)
	}()
	sc.i64 = append(sc.i64, 1)
}

// partialReset truncates one slice but forgets the other.
func partialReset() {
	sc := scratchPool.Get().(*scratch)
	sc.i64 = append(sc.i64, 1)
	sc.u64 = append(sc.u64, 2)
	sc.i64 = sc.i64[:0]
	scratchPool.Put(sc) // want `without resetting slice/map field\(s\) u64`
}

// plainPut pools a value with no slice or map fields; stale ints are the
// caller's business, not a data leak.
func plainPut() {
	c := ctrPool.Get().(*counter)
	c.n++
	ctrPool.Put(c)
}
