// Package detrange flags range-over-map loops whose nondeterministic
// iteration order can leak into the repo's deterministic outputs.
//
// The golden contract — stats, experiment tables, and JSON byte-identical
// across parallelism and across runs (ROADMAP, PRs 2 and 4) — dies
// quietly the moment a map range feeds a table row, a stats field, or an
// encoder, because Go randomizes map iteration per run. In the packages
// that carry that contract, every map range is therefore guilty until
// shown order-free:
//
//   - keyless ranges (`for range m`) only count, so order cannot matter;
//   - bodies that only delete from the ranged map are the clear idiom;
//   - loops whose enclosing function later sorts (sort.* / slices.Sort*)
//     are the collect-then-sort idiom — order is washed out downstream;
//   - loops marked //coup:unordered-ok (on the range line or the line
//     above) are vouched for by a human.
//
// Everything else is reported. The scope is the golden-table-bearing
// packages only; elsewhere map ranges are unrestricted.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Scope lists the import-path prefixes carrying golden outputs. A package
// is in scope when its path equals a prefix or sits beneath it.
var Scope = []string{
	"repro/internal/sim",
	"repro/internal/exp",
	"repro/internal/workloads",
	"repro/pkg/coup",
	// pkg/obs exposition promises byte-identical pages for identical
	// registry state; its map iterations must be sorted or order-free.
	"repro/pkg/obs",
}

// Analyzer is the detrange check.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag range-over-map in golden-table-bearing packages unless keys " +
		"are sorted, the loop is order-free, or //coup:unordered-ok vouches for it",
	Run: run,
}

func inScope(path string) bool {
	for _, p := range Scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	// pkg/coupd sits under repro/pkg/coup only as a string prefix, not as
	// a path element; the "/" boundary in inScope keeps it out, and the
	// same goes for any future sibling.
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		marked := analysis.MarkedLines(pass.Fset, f, analysis.MarkerUnorderedOK)
		// funcs tracks the enclosing function bodies on the walk path, so
		// a range statement can look downstream for a sort call.
		var funcs []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				funcs = append(funcs, n.Body)
				ast.Inspect(n.Body, walk)
				funcs = funcs[:len(funcs)-1]
				return false
			case *ast.FuncLit:
				funcs = append(funcs, n.Body)
				ast.Inspect(n.Body, walk)
				funcs = funcs[:len(funcs)-1]
				return false
			case *ast.RangeStmt:
				check(pass, marked, funcs, n)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// check reports rng if it iterates a map in an order-sensitive way.
func check(pass *analysis.Pass, marked map[int]bool, funcs []*ast.BlockStmt, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// Keyless iteration observes only the element count.
	if rng.Key == nil && rng.Value == nil {
		return
	}
	if analysis.LineMarked(pass.Fset, marked, rng.Pos()) {
		return
	}
	if deleteOnly(pass, rng) {
		return
	}
	if len(funcs) > 0 && sortedAfter(pass, funcs[len(funcs)-1], rng.End()) {
		return
	}
	pass.Reportf(rng.Pos(), "range over map %s has nondeterministic order in a golden-output package; "+
		"iterate sorted keys, sort the result, or mark the loop %s",
		exprString(rng.X), analysis.MarkerUnorderedOK)
}

// deleteOnly reports whether the loop body is exactly the map-clear idiom:
// nothing but delete calls on the ranged map.
func deleteOnly(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return false
	}
	for _, st := range rng.Body.List {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "delete" {
			return false
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "delete" {
			return false
		}
		if exprString(call.Args[0]) != exprString(rng.X) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether body contains a sort call lexically after
// pos — the collect-then-sort idiom, where the loop's iteration order is
// erased before anything downstream can observe it.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[sel.Sel]
		if !ok || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort":
			found = true
		case "slices":
			if strings.HasPrefix(obj.Name(), "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprString renders a (small) expression for diagnostics and the
// delete-idiom comparison.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "expression"
}
