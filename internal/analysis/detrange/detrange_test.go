package detrange_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/detrange"
)

// TestScoped runs the fixture under a golden-output package path: the
// order-leaking loops must be flagged, the sanctioned idioms must not.
func TestScoped(t *testing.T) {
	antest.Run(t, "testdata/src/scoped", "repro/internal/sim", detrange.Analyzer)
}

// TestUnscoped runs the leaky loop under an out-of-scope path; detrange
// must stay silent.
func TestUnscoped(t *testing.T) {
	antest.Run(t, "testdata/src/unscoped", "example.com/unscoped", detrange.Analyzer)
}
