// Package unscoped holds the same order-leaking loop as the scoped
// fixture, but the test loads it under a path outside detrange's scope —
// nothing here may be flagged.
package unscoped

func leaky(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
