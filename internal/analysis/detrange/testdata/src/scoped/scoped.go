// Package scoped exercises detrange under a golden-output import path:
// the test loads it as repro/internal/sim, so every order-sensitive map
// range must be flagged and every sanctioned idiom must pass.
package scoped

import "sort"

var sink int

// leaky folds map values straight into an output — the bug class.
func leaky(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `nondeterministic order`
		out = append(out, v)
	}
	return out
}

// firstError returns an arbitrary entry — which one depends on iteration
// order, so it is flagged too.
func firstError(errs map[string]error) error {
	for _, err := range errs { // want `nondeterministic order`
		if err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys is the collect-then-sort idiom: the loop's order is erased
// by the sort below it.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// count observes only the element count; keyless ranges are order-free.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// reset is the map-clear idiom: a body of nothing but deletes on the
// ranged map.
func reset(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// vouched carries the marker: a commutative fold where order is
// genuinely irrelevant.
func vouched(m map[string]int) {
	//coup:unordered-ok commutative sum, order cannot reach output
	for _, v := range m {
		sink += v
	}
}

// vouchedTrailing carries the marker on the range line itself.
func vouchedTrailing(m map[string]int) {
	for _, v := range m { //coup:unordered-ok commutative sum
		sink += v
	}
}

// slices are always fine: iteration order is the index order.
func overSlice(s []int) {
	for _, v := range s {
		sink += v
	}
}
