// Package pads exercises padalign: shard-slot structs must fill exactly
// one 64-byte cache line (the fixture does not import internal/ops, so
// the analyzer's default line size applies).
package pads

import (
	"sync"
	"sync/atomic"
)

// goodPad is the padWord idiom done right: 8 bytes of atomic plus 56
// bytes of declared padding.
type goodPad struct {
	v atomic.Uint64
	_ [56]byte
}

// shortPad declares padding but comes up 16 bytes short of a line.
type shortPad struct { // want `48 bytes, want exactly 64`
	v atomic.Uint64
	_ [40]byte
}

// overPad overshoots into the next line.
type overPad struct { // want `72 bytes, want exactly 64`
	v atomic.Uint64
	_ [64]byte
}

// unpadded has an atomic field and is used as a slice element below, so
// adjacent elements would false-share a line.
type unpadded struct { // want `atomic fields.*slice/array element`
	n atomic.Int64
}

// lone has an atomic field but is never laid out side by side with its
// siblings; no layout hazard, no diagnostic.
type lone struct {
	n atomic.Int64
}

// vecShard holds a slice of atomics (the histShard idiom): the header is
// read-only and the backing array is owned elsewhere, so using vecShard
// as an element is fine.
type vecShard struct {
	counts []atomic.Uint64
}

// lockPad is the refShard idiom: a mutex-guarded shard padded to a line;
// no atomic fields, but the declared padding makes the size contract
// checkable.
type lockPad struct {
	mu sync.Mutex
	n  int64
	_  [48]byte
}

// holder pins the element-type usages the analyzer looks for.
type holder struct {
	good  []goodPad
	bad   []unpadded
	vecs  []vecShard
	locks [4]lockPad
	one   lone
}

var _ holder
