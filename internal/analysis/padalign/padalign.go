// Package padalign checks the padWord idiom: structs that serve as
// elements of per-shard / per-P arrays must fill exactly one cache line
// (ops.LineBytes), so neighbouring shards never false-share — the
// software requirement matching the paper's one-line-per-U-copy
// granularity (pkg/commute/shard.go).
//
// Two ways a struct becomes a shard-slot candidate:
//
//   - it carries an explicit padding field (a blank `_ [N]byte` member) —
//     declaring the intent makes the size contract checkable, so the
//     check always applies, array element or not;
//   - it has a direct sync/atomic value field and is used anywhere in the
//     package as the element type of a slice or array — the layout in
//     which adjacent elements of an unpadded struct share lines and turn
//     independent shard updates into coherence ping-pong.
//
// Either way the rule is the same: sizeof(struct) == LineBytes, with the
// compile-target's real layout (go/types.Sizes), not field arithmetic.
// Catching a violation here costs a review comment; catching it in
// production costs a bench regression hunt (PR 3 grew unsafe.Sizeof
// asserts in tests for exactly this — the analyzer generalizes them to
// every future shard struct, in every package).
//
// Struct fields of slice-of-atomic type (histShard's `[]atomic.Uint64`)
// are deliberately not candidates: the slice header is read-only after
// construction and the backing array is already line-rounded by its
// owner; sharing within a shard's own vector is locality, not false
// sharing.
package padalign

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
)

// DefaultLineBytes is the cache-line size assumed when the analyzed
// package does not import repro/internal/ops; when it does, the real
// ops.LineBytes constant is read out of the import.
const DefaultLineBytes = 64

// Analyzer is the padalign check.
var Analyzer = &analysis.Analyzer{
	Name: "padalign",
	Doc: "shard-slot structs (blank [N]byte padding, or atomic fields used as " +
		"slice/array elements) must be exactly ops.LineBytes to prevent false sharing",
	Run: run,
}

func run(pass *analysis.Pass) error {
	lineBytes := lineBytesFor(pass.Pkg)

	// Pass 1: find candidate structs declared in this package.
	type candidate struct {
		name   *ast.Ident
		typ    *types.Named
		padded bool // has a blank [N]byte padding field
		atomic bool // has a direct sync/atomic value field
	}
	var cands []candidate
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				c := candidate{name: ts.Name, typ: named}
				for i := 0; i < st.NumFields(); i++ {
					fld := st.Field(i)
					if fld.Name() == "_" && isByteArray(fld.Type()) {
						c.padded = true
					}
					if isAtomicValue(fld.Type()) {
						c.atomic = true
					}
				}
				if c.padded || c.atomic {
					cands = append(cands, c)
				}
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}

	// Pass 2: which candidate types appear as slice/array elements? Every
	// type expression the checker saw is in Info.Types, so composite types
	// in fields, variables, make calls, and literals are all covered.
	elem := map[*types.Named]bool{}
	for _, tv := range pass.Info.Types {
		var e types.Type
		switch t := tv.Type.Underlying().(type) {
		case *types.Slice:
			e = t.Elem()
		case *types.Array:
			e = t.Elem()
		default:
			continue
		}
		if n, ok := e.(*types.Named); ok {
			elem[n] = true
		}
	}

	for _, c := range cands {
		if !c.padded && !elem[c.typ] {
			// Atomic fields in a struct never laid out side by side are a
			// concurrency design, not a layout hazard.
			continue
		}
		size := pass.Sizes.Sizeof(c.typ.Underlying())
		if size == lineBytes {
			continue
		}
		switch {
		case c.padded:
			pass.Reportf(c.name.Pos(),
				"padded shard struct %s is %d bytes, want exactly %d (ops.LineBytes); "+
					"adjust the blank padding field to the real field layout",
				c.name.Name, size, lineBytes)
		default:
			pass.Reportf(c.name.Pos(),
				"struct %s (%d bytes) has atomic fields and is used as a slice/array element; "+
					"pad it to exactly %d bytes (ops.LineBytes) so neighbouring elements cannot false-share",
				c.name.Name, size, lineBytes)
		}
	}
	return nil
}

// lineBytesFor reads ops.LineBytes out of the analyzed package's imports
// when present, so the analyzer can never drift from the simulator's
// line-size constant; packages that don't import ops get the default.
func lineBytesFor(pkg *types.Package) int64 {
	for _, imp := range pkg.Imports() {
		if imp.Path() != "repro/internal/ops" {
			continue
		}
		if c, ok := imp.Scope().Lookup("LineBytes").(*types.Const); ok {
			if v, exact := constant.Int64Val(c.Val()); exact {
				return v
			}
		}
	}
	return DefaultLineBytes
}

// isByteArray reports whether t is [N]byte — the padding field shape.
func isByteArray(t types.Type) bool {
	arr, ok := t.Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// isAtomicValue reports whether t is a sync/atomic value type (or an
// array of them) embedded directly in the struct — the fields whose
// cache-line placement decides whether shard updates stay private.
func isAtomicValue(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		return isAtomicValue(arr.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}
