package padalign_test

import (
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/padalign"
)

// TestPads checks the fixture's positive cases (short, over, and missing
// padding) and negative cases (exact padding, slice-header shards,
// non-element structs) in one pass.
func TestPads(t *testing.T) {
	antest.Run(t, "testdata/src/pads", "example.com/pads", padalign.Analyzer)
}
