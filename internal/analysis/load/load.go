// Package load turns package patterns into parsed, type-checked packages
// for the analyzers, using only the standard library and the go tool.
//
// The usual door to type-checked packages, golang.org/x/tools/go/packages,
// is an external dependency this repository deliberately does not carry.
// The go tool alone is enough: `go list -export -deps -json` names every
// package's source files and its compiled export data in the build cache,
// source files parse with go/parser, and go/types checks them with an
// importer that feeds the gc export data back through go/importer. Targets
// are checked from source (the analyzers need syntax trees with comments);
// every dependency — standard library and in-module alike — is imported
// from export data, which is both exact and fast.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// A Package is one parsed, type-checked target package.
type Package struct {
	// Path is the package's import path (or the caller-chosen path for
	// fixture packages loaded with Dir).
	Path string
	// Dir is the directory holding the package's source files.
	Dir string
	// Fset resolves positions for Files.
	Fset *token.FileSet
	// Files are the parsed source files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info
	// Sizes is the target platform's sizeof/alignof model.
	Sizes types.Sizes
}

// listed is the subset of `go list -json` output the loader consumes.
type listed struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// exports caches import path -> export data file, shared process-wide so
// repeated fixture loads (the analyzer test suites) run go list once per
// missing path, not once per test.
var (
	exportsMu sync.Mutex
	exports   = map[string]string{}
)

// goList runs `go list -export -deps -json=...` in dir ("" = cwd) and
// returns the decoded packages, caching every export file it sees.
func goList(dir string, patterns ...string) ([]listed, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listed
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listed
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	exportsMu.Lock()
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	exportsMu.Unlock()
	return pkgs, nil
}

// lookupExport resolves one import path to its export data, running go
// list on a cache miss (fixture imports arrive one at a time this way).
func lookupExport(dir, path string) (io.ReadCloser, error) {
	exportsMu.Lock()
	file, ok := exports[path]
	exportsMu.Unlock()
	if !ok {
		if _, err := goList(dir, path); err != nil {
			return nil, fmt.Errorf("resolving import %q: %w", path, err)
		}
		exportsMu.Lock()
		file, ok = exports[path]
		exportsMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for import %q", path)
		}
	}
	return os.Open(file)
}

// newInfo allocates the fact tables the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// sizes is the gc layout model for the running platform — the same
// platform whose export data the build cache holds.
func sizes() types.Sizes { return types.SizesFor("gc", runtime.GOARCH) }

// Packages loads, parses, and type-checks every package matching patterns,
// resolved relative to dir ("" = current directory). Dependencies are
// imported from export data; the returned packages are the pattern
// matches only, in go list order.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	all, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		return lookupExport(dir, path)
	})
	var out []*Package
	for _, l := range all {
		if l.DepOnly {
			continue
		}
		if l.Error != nil {
			return nil, fmt.Errorf("package %s: %s", l.ImportPath, l.Error.Err)
		}
		if len(l.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, l.Dir, l.ImportPath, l.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Dir loads the single package formed by every .go file directly in dir,
// type-checked under the given import path. This is the fixture door: the
// analyzers' testdata packages live outside any module, and path lets a
// fixture claim the package identity (e.g. a detrange-scoped path) its
// test needs.
func Dir(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		return lookupExport("", p)
	})
	return check(fset, imp, dir, path, files)
}

// check parses files (named relative to dir) and type-checks them as one
// package under path.
func check(fset *token.FileSet, imp types.Importer, dir, path string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	conf := types.Config{Importer: imp, Sizes: sizes()}
	info := newInfo()
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
		Sizes: sizes(),
	}, nil
}
