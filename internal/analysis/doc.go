// Package analysis is the repo's static-analysis framework and the home
// of the coupvet analyzer suite: a minimal, dependency-free mirror of
// the golang.org/x/tools/go/analysis API shape (Analyzer, Pass,
// Diagnostic), built on the standard library's go/ast and go/types only,
// because this repository carries no external module dependencies. The
// concrete analyzers live in subpackages (detrange, padalign, hotalloc,
// poolhygiene) and the cmd/coupvet multichecker drives them over
// type-checked packages produced by internal/analysis/load.
//
// The repository's correctness and performance claims rest on a handful
// of cross-cutting invariants that no general-purpose linter knows about.
// Each has bitten (or nearly bitten) a past PR; each now has an analyzer,
// and CI runs all four on every change via `go tool coupvet -escapes ./...`:
//
//	detrange      Golden-table packages (internal/sim, internal/exp,
//	              internal/workloads, pkg/coup) must not let map iteration
//	              order reach any output: the figure grids are compared
//	              byte-for-byte against committed goldens, so one
//	              nondeterministic range is a flaky CI failure. Sanctioned
//	              idioms pass: iterating sorted keys, collecting then
//	              sorting (a sort.*/slices.Sort* call after the loop),
//	              delete-only bodies, keyless ranges.
//
//	padalign      Structs used as per-shard / per-P array elements (the
//	              padWord idiom in pkg/commute) must be exactly
//	              ops.LineBytes so neighbouring shards never false-share.
//	              Candidates are structs with a blank `_ [N]byte` padding
//	              field, or with direct sync/atomic value fields that are
//	              used as slice/array elements; the size check uses the
//	              compiler's real layout via go/types.Sizes.
//
//	hotalloc      Functions annotated //coup:hotpath must avoid
//	              allocation-prone constructs (fmt calls, interface
//	              boxing, non-inlined closures, uncapped append on fresh
//	              slices, map construction) outside error/cold paths.
//	              The -escapes mode is the ground truth: it reruns the
//	              annotated packages through `go build -gcflags=-m` and
//	              fails if the compiler reports a heap escape on a hot
//	              line.
//
//	poolhygiene   sync.Pool.Put of a value whose type holds slice or map
//	              fields requires a visible reset of each such field in
//	              the enclosing function, or stale data resurfaces on the
//	              next Get (a cross-request leak in coupd).
//
// # Source markers
//
// The analyzers honor three gofmt-protected comment directives:
//
//	//coup:hotpath
//	    In a function's doc comment: the function claims an
//	    allocation-free steady state. hotalloc checks the body statically
//	    and -escapes holds it to the compiler's escape analysis.
//
//	//coup:unordered-ok
//	    On a range-over-map statement's line (or the line above): the
//	    iteration order is genuinely irrelevant to any output. detrange
//	    skips the loop. Use sparingly; prefer sorting.
//
//	//coup:alloc-ok
//	    On a construct's line (or the line above) inside a hotpath
//	    function: hotalloc's conservative static model would flag it, but
//	    the compiler proves it allocation-free (e.g. an interface box the
//	    callee does not leak). -escapes still checks the line, so the
//	    marker can never hide a real escape.
//
// # Running
//
//	go tool coupvet ./...                 # the four static analyzers
//	go tool coupvet -escapes ./...        # + compiler escape cross-check
//
// coupvet prints file:line:col: message [analyzer] and exits 1 on any
// finding; CI gates on it directly. The framework itself (this package,
// load, antest) is dependency-free: packages are loaded through `go list
// -export` plus the standard library's gc importer, and analyzer tests
// assert fixtures with x/tools-style `// want` comments.
package analysis
