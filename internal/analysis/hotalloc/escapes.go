package hotalloc

// The static checks in hotalloc.go model the compiler's escape analysis;
// this file asks the compiler itself. CrossCheck rebuilds the annotated
// packages with -gcflags=-m, parses the escape diagnostics, and reports
// any "escapes to heap" / "moved to heap" landing on a hot line of a
// //coup:hotpath function. The build comes from the build cache on repeat
// runs (diagnostics replay), so the CI cost after the first compile is
// parse time only.

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Escape is one heap-allocation diagnostic from `go build -gcflags=-m`.
type Escape struct {
	Pkg  string // import path, from the preceding "# path" header
	File string // path as printed by the compiler (relative to the build dir)
	Line int
	Col  int
	Msg  string
}

var escRx = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// ParseEscapes extracts heap-escape diagnostics from -gcflags=-m output.
// "# import/path" headers attribute the lines that follow to a package;
// inlining and leaking-param chatter is ignored.
func ParseEscapes(out []byte) []Escape {
	var (
		escs []Escape
		pkg  string
	)
	for _, line := range strings.Split(string(out), "\n") {
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := escRx.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		escs = append(escs, Escape{Pkg: pkg, File: m[1], Line: ln, Col: col, Msg: m[4]})
	}
	return escs
}

// CrossCheck validates every //coup:hotpath annotation in pkgs against the
// compiler's escape analysis. It returns one diagnostic per heap escape on
// a hot line, plus the list of annotated functions that were checked (so
// callers can assert coverage). Packages with no annotations are skipped.
func CrossCheck(moduleDir string, pkgs []*load.Package) ([]analysis.Diagnostic, []string, error) {
	var (
		diags   []analysis.Diagnostic
		checked []string
		targets []*load.Package
	)
	// hot maps (pkg path, file basename, line) -> annotated function name.
	hot := map[string]map[string]map[int]string{}
	for _, pkg := range pkgs {
		m := hotLines(pkg)
		if len(m) == 0 {
			continue
		}
		hot[pkg.Path] = m
		targets = append(targets, pkg)
		for _, byLine := range m {
			seen := map[string]bool{}
			for _, fn := range byLine {
				if !seen[fn] {
					seen[fn] = true
					checked = append(checked, pkg.Path+"."+fn)
				}
			}
		}
	}
	if len(targets) == 0 {
		return nil, nil, nil
	}

	args := []string{"build", "-gcflags=-m"}
	for _, pkg := range targets {
		args = append(args, pkg.Path)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}

	for _, esc := range ParseEscapes(out) {
		byFile, ok := hot[esc.Pkg]
		if !ok {
			continue
		}
		fn, ok := byFile[filepath.Base(esc.File)][esc.Line]
		if !ok {
			continue
		}
		diags = append(diags, analysis.Diagnostic{
			Pos:      token.Position{Filename: filepath.Join(moduleDir, esc.File), Line: esc.Line, Column: esc.Col},
			Analyzer: "hotalloc",
			Message: fmt.Sprintf("%s is marked %s but the compiler reports %q on its hot path",
				fn, analysis.MarkerHotPath, esc.Msg),
		})
	}
	analysis.Sort(diags)
	return diags, checked, nil
}

// hotLines maps (file basename, line) to the enclosing //coup:hotpath
// function, covering each annotated body minus its cold spans and minus
// any nested function literal that is not immediately invoked (a separate
// function; the static check flags it independently).
func hotLines(pkg *load.Package) map[string]map[int]string {
	res := map[string]map[int]string{}
	for _, f := range pkg.Files {
		base := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasMarker(fd.Doc, analysis.MarkerHotPath) {
				continue
			}
			skip := coldSpans(pkg.Info, fd)
			skip = append(skip, litSpans(fd.Body)...)
			if res[base] == nil {
				res[base] = map[int]string{}
			}
			lo := pkg.Fset.Position(fd.Body.Pos()).Line
			hi := pkg.Fset.Position(fd.Body.End()).Line
			for ln := lo; ln <= hi; ln++ {
				res[base][ln] = funcName(fd)
			}
			for _, s := range skip {
				for ln := pkg.Fset.Position(s.lo).Line; ln <= pkg.Fset.Position(s.hi).Line; ln++ {
					delete(res[base], ln)
				}
			}
		}
	}
	return res
}

// litSpans returns the spans of function literals in body that are not
// immediately invoked.
func litSpans(body *ast.BlockStmt) []span {
	invoked := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		}
		return true
	})
	var spans []span
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && !invoked[lit] {
			spans = append(spans, span{lit.Pos(), lit.End()})
			return false
		}
		return true
	})
	return spans
}

// funcName renders "Recv.Name" for methods, "Name" for functions.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
