// Package hot exercises hotalloc: annotated functions are held to the
// zero-alloc contract outside error/cold paths; unannotated ones are not.
package hot

import (
	"errors"
	"fmt"
	"sync/atomic"
)

type sink interface{ feed(any) }

var out sink

type pair struct{ a, b uint64 }

var errBad = errors.New("bad")

// hotBad trips every construct the analyzer knows about.
//
//coup:hotpath
func hotBad(n uint64, s sink) error {
	fmt.Printf("n=%d\n", n) // want `fmt\.Printf call in hot non-error path`

	var acc []uint64
	for i := uint64(0); i < n; i++ {
		acc = append(acc, i) // want `append grows acc, a fresh uncapped slice`
	}

	counts := map[uint64]int{} // want `map literal allocates in the hot path`
	counts[n]++

	idx := make(map[string]int) // want `make\(map\) allocates in the hot path`
	idx["x"] = 1

	f := func() uint64 { return n } // want `function literal is a heap-allocated closure`
	_ = f

	s.feed(pair{a: n, b: n}) // want `boxes a .*pair into interface`
	return nil
}

// hotGood is the shape the repo's hot functions take: straight-line fast
// path, allocation confined to error and panic branches.
//
//coup:hotpath
func hotGood(v *atomic.Uint64, n uint64, buf []uint64) ([]uint64, error) {
	if n == 0 {
		return nil, fmt.Errorf("hotGood: zero n: %w", errBad)
	}
	switch {
	case n > 1<<40:
		return nil, fmt.Errorf("hotGood: n %d out of range", n)
	}
	if v == nil {
		panic(fmt.Sprintf("hotGood: nil counter (n=%d)", n))
	}
	v.Add(n)
	buf = append(buf, n)  // caller-owned buffer: not fresh, not flagged
	func() { v.Add(1) }() // immediately invoked: inline code, no closure
	out.feed(v)           // pointer in an interface: no boxing allocation
	return buf, nil
}

// hotMarked exercises the //coup:alloc-ok escape hatch: the marked boxing
// is exempt (the compiler's -escapes verdict still applies), the unmarked
// line next to it is not.
//
//coup:hotpath
func hotMarked(n uint64, s sink) {
	s.feed(pair{a: n}) //coup:alloc-ok -- callee proven not to leak

	s.feed(pair{b: n}) // want `boxes a .*pair into interface`
}

// notHot does all the same things with no annotation; hotalloc must not
// say a word.
func notHot(n uint64, s sink) {
	fmt.Println(n)
	var acc []uint64
	acc = append(acc, n)
	_ = map[uint64]int{}
	s.feed(pair{a: n})
}
