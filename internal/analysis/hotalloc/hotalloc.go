// Package hotalloc enforces the //coup:hotpath contract: a function so
// marked is claimed allocation-free at steady state — the property the
// zero-alloc tests (TestSteadyStateZeroAllocs, TestSweepZeroAllocsSteadyState,
// the coupd benchmarks) measure end to end, checked here construct by
// construct so a regression is caught at the offending line, not as a
// mysterious allocs/op delta in the CI perf gate.
//
// Inside an annotated function the analyzer flags the allocation-prone
// constructs that have actually bitten this repo:
//
//   - fmt.* calls (every call allocates its formatted result);
//   - interface boxing: passing a concrete non-pointer value (struct,
//     string, slice, basic) to an interface-typed parameter heap-allocates
//     the boxed copy — pointers, maps, chans, funcs, and constants ride in
//     the interface word and are exempt;
//   - function literals that are not immediately invoked (heap-allocated
//     closures); immediately invoked literals — including the
//     `defer func() { ... }()` idiom — are walked like inline code;
//   - append to a slice that the function itself created without capacity
//     (`var s []T`, `s := []T{}`, `make([]T, 0)`): every growth step
//     allocates; reused buffers and parameters are untouched;
//   - map/chan construction (literals or make).
//
// Error and cold paths may allocate: a construct is exempt when it sits in
// a return statement producing a non-nil error, in an if/switch block that
// (directly) returns a non-nil error, or in a block that panics. That is
// exactly the shape of the repo's hot functions — straight-line fast path,
// allocating error branches (e.g. coupd's Registry.Apply).
//
// The static list is a model of the compiler, and models drift; coupvet's
// -escapes mode (escapes.go) cross-checks every annotation against the
// real escape analysis in `go build -gcflags=-m` output.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the static half of the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation-prone constructs (fmt, interface boxing, escaping closures, " +
		"uncapped append, map literals) in //coup:hotpath functions, outside error/cold paths",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		marked := analysis.MarkedLines(pass.Fset, f, analysis.MarkerAllocOK)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasMarker(fd.Doc, analysis.MarkerHotPath) {
				continue
			}
			checkFunc(pass, fd, marked)
		}
	}
	return nil
}

// span is a half-open source range.
type span struct{ lo, hi token.Pos }

func inSpans(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if s.lo <= pos && pos < s.hi {
			return true
		}
	}
	return false
}

// reporter emits a diagnostic unless the line carries //coup:alloc-ok.
type reporter func(pos token.Pos, format string, args ...any)

// checkFunc walks one annotated function, flagging allocation-prone
// constructs outside its cold spans. Lines under a //coup:alloc-ok marker
// are exempt — the static model is conservative, and -escapes holds those
// lines to the compiler's verdict instead.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, marked map[int]bool) {
	cold := coldSpans(pass.Info, fd)
	fresh := freshUncapped(pass, fd)
	report := reporter(func(pos token.Pos, format string, args ...any) {
		if analysis.LineMarked(pass.Fset, marked, pos) {
			return
		}
		pass.Reportf(pos, format, args...)
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if inSpans(cold, n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// Walk an immediately invoked literal's body like inline code,
			// and check the call's own allocation behaviour below.
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				for _, arg := range n.Args {
					ast.Inspect(arg, walk)
				}
				ast.Inspect(lit.Body, walk)
				return false
			}
			checkCall(pass, fd, n, fresh, report)
		case *ast.FuncLit:
			report(n.Pos(),
				"%s: function literal is a heap-allocated closure; hoist it out of the hot path or inline the logic",
				fd.Name.Name)
			return false
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(n.Pos(), "%s: map literal allocates in the hot path", fd.Name.Name)
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkCall flags one call expression: fmt calls, allocating builtins,
// and interface-boxing arguments.
func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, fresh map[types.Object]bool, report reporter) {
	// Builtins: append-to-fresh and make(map/chan).
	if id, ok := calleeIdent(call.Fun); ok {
		if b, isB := pass.Info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "append":
				if len(call.Args) > 0 {
					if aid, ok := call.Args[0].(*ast.Ident); ok && fresh[pass.Info.Uses[aid]] {
						report(call.Pos(),
							"%s: append grows %s, a fresh uncapped slice; preallocate with a capacity or reuse a buffer",
							fd.Name.Name, aid.Name)
					}
				}
			case "make":
				if tv, ok := pass.Info.Types[call]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Map:
						report(call.Pos(), "%s: make(map) allocates in the hot path", fd.Name.Name)
					case *types.Chan:
						report(call.Pos(), "%s: make(chan) allocates in the hot path", fd.Name.Name)
					}
				}
			}
			return
		}
	}

	// fmt calls allocate their result; one report covers the call and its
	// boxed arguments both.
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(),
			"%s: fmt.%s call in hot non-error path allocates; format on the error/cold path instead",
			fd.Name.Name, fn.Name())
		return
	}

	// Interface boxing at ordinary call boundaries.
	sig, ok := calleeSignature(pass, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.IsNil() || tv.Value != nil {
			continue // untyped nil and constants box without allocating
		}
		if boxesWithoutAlloc(tv.Type) {
			continue
		}
		report(arg.Pos(),
			"%s: passing %s boxes a %s into interface %s (allocates); pass a pointer or restructure",
			fd.Name.Name, exprName(arg), tv.Type, pt)
	}
}

// boxesWithoutAlloc reports whether values of t fit an interface's data
// word directly: pointers, maps, chans, funcs, unsafe pointers — and
// interfaces, which are not boxed at all.
func boxesWithoutAlloc(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// freshUncapped collects the function's locals that are born as empty,
// capacity-free slices — the ones append must grow from nothing.
func freshUncapped(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	mark := func(id *ast.Ident) {
		if obj := pass.Info.Defs[id]; obj != nil {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != 0 {
						continue
					}
					for _, name := range vs.Names {
						mark(name)
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := n.Rhs[i].(type) {
				case *ast.CompositeLit:
					if len(rhs.Elts) == 0 {
						mark(id)
					}
				case *ast.CallExpr:
					// make([]T, 0) with no capacity.
					if mid, ok := calleeIdent(rhs.Fun); ok {
						if b, isB := pass.Info.Uses[mid].(*types.Builtin); isB && b.Name() == "make" && len(rhs.Args) == 2 {
							if tv, ok := pass.Info.Types[rhs.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
								mark(id)
							}
						}
					}
				}
			}
		}
		return true
	})
	return fresh
}

// coldSpans returns the ranges of fd where allocation is forgiven: return
// statements producing a non-nil error, blocks that (directly) contain
// such a return, and blocks that panic. Nested function literals are
// skipped — they are separate functions with their own rules.
func coldSpans(info *types.Info, fd *ast.FuncDecl) []span {
	errFn := lastResultIsError(info, fd)
	var spans []span

	coldReturn := func(st ast.Stmt) bool {
		switch st := st.(type) {
		case *ast.ReturnStmt:
			if !errFn || len(st.Results) == 0 {
				return false
			}
			last := st.Results[len(st.Results)-1]
			if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
				return false
			}
			return true
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return false
			}
			b, isB := info.Uses[id].(*types.Builtin)
			return isB && b.Name() == "panic"
		}
		return false
	}
	blockCold := func(list []ast.Stmt) bool {
		for _, st := range list {
			if coldReturn(st) {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if coldReturn(n) {
				spans = append(spans, span{n.Pos(), n.End()})
			}
		case *ast.IfStmt:
			if blockCold(n.Body.List) {
				spans = append(spans, span{n.Body.Pos(), n.Body.End()})
			}
			if els, ok := n.Else.(*ast.BlockStmt); ok && blockCold(els.List) {
				spans = append(spans, span{els.Pos(), els.End()})
			}
		case *ast.CaseClause:
			if blockCold(n.Body) {
				spans = append(spans, span{n.Pos(), n.End()})
			}
		case *ast.CommClause:
			if blockCold(n.Body) {
				spans = append(spans, span{n.Pos(), n.End()})
			}
		}
		return true
	})
	return spans
}

// lastResultIsError reports whether fd's final result type is error.
func lastResultIsError(info *types.Info, fd *ast.FuncDecl) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

// calleeIdent unwraps the call target to a bare identifier, if it is one.
func calleeIdent(fun ast.Expr) (*ast.Ident, bool) {
	for {
		switch f := fun.(type) {
		case *ast.Ident:
			return f, true
		case *ast.ParenExpr:
			fun = f.X
		default:
			return nil, false
		}
	}
}

// calleeFunc resolves the called function object, through selectors.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeSignature returns the call's signature when it is an ordinary
// function or method call (not a conversion, not a builtin).
func calleeSignature(pass *analysis.Pass, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

// exprName renders a short label for a flagged argument.
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	}
	return "value"
}
