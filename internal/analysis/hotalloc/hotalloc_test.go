package hotalloc_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/antest"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/load"
)

// TestHot checks the static half against the fixture: every known
// allocation construct flagged in the annotated function, error/cold
// paths and unannotated functions left alone.
func TestHot(t *testing.T) {
	antest.Run(t, "testdata/src/hot", "example.com/hot", hotalloc.Analyzer)
}

// TestParseEscapes feeds ParseEscapes a verbatim-shaped -gcflags=-m
// transcript: header lines set the package, only heap-escape lines
// survive, inlining and leaking-param chatter is dropped.
func TestParseEscapes(t *testing.T) {
	out := strings.Join([]string{
		"# repro/pkg/commute",
		"pkg/commute/op.go:63:6: can inline NewOp",
		"pkg/commute/shard.go:88:3: moved to heap: tok",
		"# repro/pkg/coupd",
		"pkg/coupd/server.go:120:14: req escapes to heap",
		"pkg/coupd/server.go:121:9: leaking param: w",
		"",
	}, "\n")
	escs := hotalloc.ParseEscapes([]byte(out))
	if len(escs) != 2 {
		t.Fatalf("got %d escapes, want 2: %+v", len(escs), escs)
	}
	if escs[0].Pkg != "repro/pkg/commute" || escs[0].File != "pkg/commute/shard.go" || escs[0].Line != 88 {
		t.Errorf("escape 0 = %+v, want shard.go:88 in repro/pkg/commute", escs[0])
	}
	if escs[1].Pkg != "repro/pkg/coupd" || escs[1].Line != 120 || !strings.Contains(escs[1].Msg, "escapes to heap") {
		t.Errorf("escape 1 = %+v, want server.go:120 escapes-to-heap", escs[1])
	}
}

// TestCrossCheckFlagsEscape builds a throwaway module whose one
// //coup:hotpath function forces a variable to the heap; the compiler
// cross-check must contradict the annotation.
func TestCrossCheckFlagsEscape(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module esc\n\ngo 1.24\n")
	write("esc.go", `// Package esc is an intentionally broken hot path.
package esc

// Leak claims a zero-alloc hot path but returns the address of a local,
// which escape analysis must move to the heap.
//
//coup:hotpath
func Leak(n int) *int {
	x := n + 1
	return &x
}
`)
	pkg, err := load.Dir(dir, "esc")
	if err != nil {
		t.Fatalf("loading temp module: %v", err)
	}
	diags, checked, err := hotalloc.CrossCheck(dir, []*load.Package{pkg})
	if err != nil {
		t.Fatalf("CrossCheck: %v", err)
	}
	if len(checked) != 1 || checked[0] != "esc.Leak" {
		t.Fatalf("checked = %v, want [esc.Leak]", checked)
	}
	if len(diags) == 0 {
		t.Fatalf("CrossCheck missed the escaping hot path")
	}
	if !strings.Contains(diags[0].Message, "Leak") || !strings.Contains(diags[0].Message, "heap") {
		t.Errorf("diagnostic %q does not name the function and the escape", diags[0].Message)
	}
}

// TestCrossCheckRepoHotPaths holds the real tree to its own annotations:
// every //coup:hotpath function in the simulator, the commutative
// aggregation library, and the coupd server must survive the compiler's
// escape analysis (these are the functions the zero-alloc tests time),
// and there must be enough of them that the contract means something.
func TestCrossCheckRepoHotPaths(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Packages(root, "./internal/sim", "./pkg/commute", "./pkg/coupd")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	diags, checked, err := hotalloc.CrossCheck(root, pkgs)
	if err != nil {
		t.Fatalf("CrossCheck: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s", d.Pos, d.Message)
	}
	if len(checked) < 6 {
		t.Errorf("only %d //coup:hotpath functions found (%v), want at least 6 across sim/commute/coupd",
			len(checked), checked)
	}
}
