package exp

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/pkg/coup"
)

func init() {
	registerSerial("fig8", "exhaustive verification cost of 2- and 3-level MESI/MEUSI vs cores and #commutative ops", fig8)
	register("sec55", "sensitivity to reduction unit throughput (256-bit pipelined vs 64-bit unpipelined ALU)", sec55)
	register("traffic", "Sec 5.2 off-chip traffic reduction of COUP over MESI at max cores", trafficExp)
	register("table2", "Table 2/Sec 5.2: per-application op types, sequential run time, commutative-op fraction", table2)
	register("ablation", "Fig 1 & design ablations: MESI vs RMO vs COUP; flat vs hierarchical reductions", ablation)
}

// fig8 reproduces Fig 8: reachable-state counts and verification times for
// two- and three-level MESI and MEUSI as cores and commutative-update types
// grow. The state budget stands in for Murphi's 16 GB memory limit. Unlike
// the simulation grids, fig8 stays serial: each core count's row decides
// whether the next one runs at all (the paper's OOM cutoff), so the cells
// are not independent.
func fig8(p Params) []*stats.Table {
	budget := int(float64(3_000_000) * p.Scale)
	if budget < 20_000 {
		budget = 20_000
	}
	timeout := time.Duration(float64(60*time.Second) * p.Scale)
	if timeout < 2*time.Second {
		timeout = 2 * time.Second
	}
	var tables []*stats.Table
	for _, level3 := range []bool{false, true} {
		levels := "two-level"
		if level3 {
			levels = "three-level"
		}
		t := &stats.Table{
			Title:   "Fig 8 (" + levels + "): exhaustive verification cost",
			Headers: []string{"protocol", "ops", "cores", "states", "time", "result"},
		}
		configs := []struct {
			kind proto.Kind
			ops  int
		}{
			{proto.MESI, 0},
			{proto.MEUSI, 2},
			{proto.MEUSI, 8},
			{proto.MEUSI, 20},
		}
		for _, cfg := range configs {
			for cores := 2; cores <= 6; cores++ {
				sy := &proto.System{Kind: cfg.kind, NCores: cores, NOps: cfg.ops, Level3: level3}
				r := check.Verify(sy, budget, timeout)
				status := "verified"
				if r.Err != nil {
					status = "VIOLATION"
				} else if r.Capped {
					status = "out of budget"
				} else if r.TimedOut {
					status = "timeout"
				}
				t.AddRow(cfg.kind.String(), fmt.Sprint(cfg.ops), fmt.Sprint(cores),
					fmt.Sprint(r.States), r.Elapsed.Round(time.Millisecond).String(), status)
				if r.Capped || r.TimedOut {
					break // larger core counts only get worse (paper: OOM)
				}
			}
		}
		t.AddNote("state budget %d (Murphi 16GB analogue), timeout %v per cell", budget, timeout)
		tables = append(tables, t)
	}
	return tables
}

// sec55 reproduces the Sec 5.5 sensitivity study: the default 2-stage
// pipelined 256-bit reduction ALU (1 line / 2 cycles) vs an unpipelined
// 64-bit ALU (1 line / 16 cycles). The paper's worst case is a 0.88%
// slowdown on bfs at 128 cores.
func sec55(p Params) []*stats.Table {
	cores := 64
	if cores > p.MaxCores {
		cores = p.MaxCores
	}
	g := newGrid(p)
	type row struct {
		name       string
		fast, slow *point
	}
	var rows []row
	for _, app := range apps(p) {
		rows = append(rows, row{
			name: app.Name,
			fast: g.add(app.W, cores, "MEUSI"),
			slow: g.add(app.W, cores, "MEUSI", coup.WithReductionALU(16, 16)),
		})
	}
	g.run()
	t := &stats.Table{
		Title:   fmt.Sprintf("Sec 5.5: reduction-unit throughput sensitivity (%d cores, COUP)", cores),
		Headers: []string{"app", "fast ALU (cycles)", "slow ALU (cycles)", "slowdown %"},
	}
	for _, r := range rows {
		t.AddRow(r.name, stats.F(r.fast.Cycles), stats.F(r.slow.Cycles), stats.F((r.slow.Cycles-r.fast.Cycles)/r.fast.Cycles*100))
	}
	t.AddNote("paper: max degradation 0.88%% (bfs at 128 cores)")
	g.note(t)
	return []*stats.Table{t}
}

// trafficExp reproduces the Sec 5.2 traffic numbers: COUP's off-chip
// traffic reduction factors over MESI (paper at 128 cores: hist 20.2x,
// spmv 1.18x, pgrank 4.9x, bfs 1.20x, fluidanimate 1.18x).
func trafficExp(p Params) []*stats.Table {
	cores := p.MaxCores
	g := newGrid(p)
	type row struct {
		name        string
		mesi, meusi *point
	}
	var rows []row
	for _, app := range apps(p) {
		rows = append(rows, row{
			name:  app.Name,
			mesi:  g.add(app.W, cores, "MESI"),
			meusi: g.add(app.W, cores, "MEUSI"),
		})
	}
	g.run()
	t := &stats.Table{
		Title:   fmt.Sprintf("Sec 5.2: off-chip traffic at %d cores", cores),
		Headers: []string{"app", "MESI bytes", "COUP bytes", "reduction x"},
	}
	for _, r := range rows {
		mesi, meusi := r.mesi.Stats.Traffic.OffChipBytes, r.meusi.Stats.Traffic.OffChipBytes
		t.AddRow(r.name, fmt.Sprint(mesi), fmt.Sprint(meusi),
			stats.F(float64(mesi)/float64(meusi)))
	}
	g.note(t)
	return []*stats.Table{t}
}

// table2 reproduces Table 2 plus the Sec 5.2 instruction-mix fractions.
func table2(p Params) []*stats.Table {
	ops := map[string]string{
		"hist": "32b int add", "spmv": "64b FP add", "pgrank": "64b int add",
		"bfs": "64b OR", "fluidanimate": "32b FP add",
	}
	g := newGrid(p)
	type row struct {
		name string
		pt   *point
	}
	var rows []row
	for _, app := range apps(p) {
		rows = append(rows, row{name: app.Name, pt: g.add(app.W, 1, "MEUSI")})
	}
	g.run()
	t := &stats.Table{
		Title:   "Table 2: benchmark characteristics (on synthetic substitute inputs)",
		Headers: []string{"app", "comm ops", "seq run-time (Mcycles)", "comm-op fraction %"},
	}
	for _, r := range rows {
		st := r.pt.Stats
		t.AddRow(r.name, ops[r.name],
			stats.F(float64(st.Cycles)/1e6),
			stats.F(st.CommFraction()*100))
	}
	t.AddNote("paper (full inputs): hist 2720 / spmv 94 / fluidanimate 5930 / pgrank 2850 / bfs 5764 Mcycles")
	t.AddNote("paper comm fractions at 128 cores: hist 1.0%%, spmv 2.4%%, pgrank 4.9%%, bfs 0.40%%, fluidanimate 0.96%%")
	g.note(t)
	return []*stats.Table{t}
}

// ablation covers the Fig 1 comparison and the design ablations DESIGN.md
// calls out: remote memory operations vs COUP, and flat vs hierarchical
// reductions.
func ablation(p Params) []*stats.Table {
	updates := p.scaleInt(2000)
	mk := workload("refcount", coup.WorkloadParams{Counters: 8, Size: updates, HighCount: true, Seed: 3})
	var counterCores []int
	for _, c := range []int{16, 64} {
		if c <= p.MaxCores {
			counterCores = append(counterCores, c)
		}
	}
	hierCores := p.MaxCores
	hierApps := []struct {
		Name string
		W    wl
	}{
		{"hist", histWorkload(p, 512, "hist")},
		{"bfs", bfsWorkload(p)},
	}

	// Enumerate all three ablations into one grid, then fan out.
	g := newGrid(p)
	type counterRow struct{ mesi, rmo, meusi, musi *point }
	counterRows := make([]counterRow, len(counterCores))
	for i, c := range counterCores {
		counterRows[i] = counterRow{
			mesi:  g.add(mk, c, "MESI"),
			rmo:   g.add(mk, c, "RMO"),
			meusi: g.add(mk, c, "MEUSI"),
			musi:  g.add(mk, c, "MUSI"),
		}
	}
	type hierRow struct{ hier, flat *point }
	hierRows := make([]hierRow, len(hierApps))
	for i, app := range hierApps {
		hierRows[i] = hierRow{
			hier: g.add(app.W, hierCores, "MEUSI"),
			flat: g.add(app.W, hierCores, "MEUSI", coup.WithFlatReductions(true)),
		}
	}
	g.run()

	var tables []*stats.Table

	// Fig 1: a single contended counter under the three schemes.
	counter := &stats.Table{
		Title:   "Fig 1 ablation: contended shared counter (cycles, lower is better)",
		Headers: []string{"cores", "MESI (a)", "RMO (b)", "COUP (c)", "COUP vs MESI", "COUP vs RMO"},
	}
	var counterPts []*point
	for i, c := range counterCores {
		r := counterRows[i]
		counter.AddRow(fmt.Sprint(c), stats.F(r.mesi.Cycles), stats.F(r.rmo.Cycles), stats.F(r.meusi.Cycles),
			stats.F(r.mesi.Cycles/r.meusi.Cycles), stats.F(r.rmo.Cycles/r.meusi.Cycles))
		counterPts = append(counterPts, r.mesi, r.rmo, r.meusi)
	}
	g.note(counter, counterPts...)
	tables = append(tables, counter)

	// E-state ablation: MUSI (Fig 4) vs MEUSI (Fig 6) — what the
	// exclusive-clean optimization buys for update-then-read patterns.
	eTable := &stats.Table{
		Title:   "Ablation: E-state optimization (MUSI vs MEUSI, cycles)",
		Headers: []string{"cores", "MUSI", "MEUSI", "MEUSI gain %"},
	}
	var ePts []*point
	for i, c := range counterCores {
		r := counterRows[i]
		eTable.AddRow(fmt.Sprint(c), stats.F(r.musi.Cycles), stats.F(r.meusi.Cycles),
			stats.F((r.musi.Cycles-r.meusi.Cycles)/r.musi.Cycles*100))
		ePts = append(ePts, r.musi, r.meusi)
	}
	g.note(eTable, ePts...)
	tables = append(tables, eTable)

	// Hierarchical vs flat reductions (Sec 3.2).
	hier := &stats.Table{
		Title:   fmt.Sprintf("Ablation: hierarchical vs flat reductions (%d cores, COUP)", hierCores),
		Headers: []string{"app", "hierarchical (cycles)", "flat (cycles)", "flat slowdown %"},
	}
	var hierPts []*point
	for i, app := range hierApps {
		r := hierRows[i]
		hier.AddRow(app.Name, stats.F(r.hier.Cycles), stats.F(r.flat.Cycles), stats.F((r.flat.Cycles-r.hier.Cycles)/r.hier.Cycles*100))
		hierPts = append(hierPts, r.hier, r.flat)
	}
	g.note(hier, hierPts...)
	tables = append(tables, hier)
	return tables
}
