package exp

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/pkg/coup"
)

func init() {
	register("fig8", "exhaustive verification cost of 2- and 3-level MESI/MEUSI vs cores and #commutative ops", fig8)
	register("sec55", "sensitivity to reduction unit throughput (256-bit pipelined vs 64-bit unpipelined ALU)", sec55)
	register("traffic", "Sec 5.2 off-chip traffic reduction of COUP over MESI at max cores", trafficExp)
	register("table2", "Table 2/Sec 5.2: per-application op types, sequential run time, commutative-op fraction", table2)
	register("ablation", "Fig 1 & design ablations: MESI vs RMO vs COUP; flat vs hierarchical reductions", ablation)
}

// fig8 reproduces Fig 8: reachable-state counts and verification times for
// two- and three-level MESI and MEUSI as cores and commutative-update types
// grow. The state budget stands in for Murphi's 16 GB memory limit.
func fig8(p Params) []*stats.Table {
	budget := int(float64(3_000_000) * p.Scale)
	if budget < 20_000 {
		budget = 20_000
	}
	timeout := time.Duration(float64(60*time.Second) * p.Scale)
	if timeout < 2*time.Second {
		timeout = 2 * time.Second
	}
	var tables []*stats.Table
	for _, level3 := range []bool{false, true} {
		levels := "two-level"
		if level3 {
			levels = "three-level"
		}
		t := &stats.Table{
			Title:   "Fig 8 (" + levels + "): exhaustive verification cost",
			Headers: []string{"protocol", "ops", "cores", "states", "time", "result"},
		}
		configs := []struct {
			kind proto.Kind
			ops  int
		}{
			{proto.MESI, 0},
			{proto.MEUSI, 2},
			{proto.MEUSI, 8},
			{proto.MEUSI, 20},
		}
		for _, cfg := range configs {
			for cores := 2; cores <= 6; cores++ {
				sy := &proto.System{Kind: cfg.kind, NCores: cores, NOps: cfg.ops, Level3: level3}
				r := check.Verify(sy, budget, timeout)
				status := "verified"
				if r.Err != nil {
					status = "VIOLATION"
				} else if r.Capped {
					status = "out of budget"
				} else if r.TimedOut {
					status = "timeout"
				}
				t.AddRow(cfg.kind.String(), fmt.Sprint(cfg.ops), fmt.Sprint(cores),
					fmt.Sprint(r.States), r.Elapsed.Round(time.Millisecond).String(), status)
				if r.Capped || r.TimedOut {
					break // larger core counts only get worse (paper: OOM)
				}
			}
		}
		t.AddNote("state budget %d (Murphi 16GB analogue), timeout %v per cell", budget, timeout)
		tables = append(tables, t)
	}
	return tables
}

// sec55 reproduces the Sec 5.5 sensitivity study: the default 2-stage
// pipelined 256-bit reduction ALU (1 line / 2 cycles) vs an unpipelined
// 64-bit ALU (1 line / 16 cycles). The paper's worst case is a 0.88%
// slowdown on bfs at 128 cores.
func sec55(p Params) []*stats.Table {
	cores := 64
	if cores > p.MaxCores {
		cores = p.MaxCores
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Sec 5.5: reduction-unit throughput sensitivity (%d cores, COUP)", cores),
		Headers: []string{"app", "fast ALU (cycles)", "slow ALU (cycles)", "slowdown %"},
	}
	run := func(mk func() coup.Workload, slow bool) float64 {
		opts := []coup.Option{coup.WithCores(cores), coup.WithProtocol("MEUSI"), coup.WithSeed(1)}
		if slow {
			opts = append(opts, coup.WithReductionALU(16, 16))
		}
		st, err := coup.RunWorkload(mk(), opts...)
		if err != nil {
			panic(err)
		}
		return float64(st.Cycles)
	}
	for _, app := range apps(p) {
		fast := run(app.Mk, false)
		slow := run(app.Mk, true)
		t.AddRow(app.Name, stats.F(fast), stats.F(slow), stats.F((slow-fast)/fast*100))
	}
	t.AddNote("paper: max degradation 0.88%% (bfs at 128 cores)")
	return []*stats.Table{t}
}

// trafficExp reproduces the Sec 5.2 traffic numbers: COUP's off-chip
// traffic reduction factors over MESI (paper at 128 cores: hist 20.2x,
// spmv 1.18x, pgrank 4.9x, bfs 1.20x, fluidanimate 1.18x).
func trafficExp(p Params) []*stats.Table {
	cores := p.MaxCores
	t := &stats.Table{
		Title:   fmt.Sprintf("Sec 5.2: off-chip traffic at %d cores", cores),
		Headers: []string{"app", "MESI bytes", "COUP bytes", "reduction x"},
	}
	for _, app := range apps(p) {
		_, mesi := measure(app.Mk, cores, "MESI", p)
		_, meusi := measure(app.Mk, cores, "MEUSI", p)
		t.AddRow(app.Name, fmt.Sprint(mesi.Traffic.OffChipBytes), fmt.Sprint(meusi.Traffic.OffChipBytes),
			stats.F(float64(mesi.Traffic.OffChipBytes)/float64(meusi.Traffic.OffChipBytes)))
	}
	return []*stats.Table{t}
}

// table2 reproduces Table 2 plus the Sec 5.2 instruction-mix fractions.
func table2(p Params) []*stats.Table {
	t := &stats.Table{
		Title:   "Table 2: benchmark characteristics (on synthetic substitute inputs)",
		Headers: []string{"app", "comm ops", "seq run-time (Mcycles)", "comm-op fraction %"},
	}
	ops := map[string]string{
		"hist": "32b int add", "spmv": "64b FP add", "pgrank": "64b int add",
		"bfs": "64b OR", "fluidanimate": "32b FP add",
	}
	for _, app := range apps(p) {
		_, st := measure(app.Mk, 1, "MEUSI", p)
		t.AddRow(app.Name, ops[app.Name],
			stats.F(float64(st.Cycles)/1e6),
			stats.F(st.CommFraction()*100))
	}
	t.AddNote("paper (full inputs): hist 2720 / spmv 94 / fluidanimate 5930 / pgrank 2850 / bfs 5764 Mcycles")
	t.AddNote("paper comm fractions at 128 cores: hist 1.0%%, spmv 2.4%%, pgrank 4.9%%, bfs 0.40%%, fluidanimate 0.96%%")
	return []*stats.Table{t}
}

// ablation covers the Fig 1 comparison and the design ablations DESIGN.md
// calls out: remote memory operations vs COUP, and flat vs hierarchical
// reductions.
func ablation(p Params) []*stats.Table {
	var tables []*stats.Table

	// Fig 1: a single contended counter under the three schemes.
	updates := p.scaleInt(2000)
	counter := &stats.Table{
		Title:   "Fig 1 ablation: contended shared counter (cycles, lower is better)",
		Headers: []string{"cores", "MESI (a)", "RMO (b)", "COUP (c)", "COUP vs MESI", "COUP vs RMO"},
	}
	mk := workload("refcount", coup.WorkloadParams{Counters: 8, Size: updates, HighCount: true, Seed: 3})
	for _, c := range []int{16, 64} {
		if c > p.MaxCores {
			continue
		}
		mesi, _ := measure(mk, c, "MESI", p)
		rmo, _ := measure(mk, c, "RMO", p)
		meusi, _ := measure(mk, c, "MEUSI", p)
		counter.AddRow(fmt.Sprint(c), stats.F(mesi), stats.F(rmo), stats.F(meusi),
			stats.F(mesi/meusi), stats.F(rmo/meusi))
	}
	tables = append(tables, counter)

	// E-state ablation: MUSI (Fig 4) vs MEUSI (Fig 6) — what the
	// exclusive-clean optimization buys for update-then-read patterns.
	eTable := &stats.Table{
		Title:   "Ablation: E-state optimization (MUSI vs MEUSI, cycles)",
		Headers: []string{"cores", "MUSI", "MEUSI", "MEUSI gain %"},
	}
	for _, c := range []int{16, 64} {
		if c > p.MaxCores {
			continue
		}
		musi, _ := measure(mk, c, "MUSI", p)
		meusi, _ := measure(mk, c, "MEUSI", p)
		eTable.AddRow(fmt.Sprint(c), stats.F(musi), stats.F(meusi),
			stats.F((musi-meusi)/musi*100))
	}
	tables = append(tables, eTable)

	// Hierarchical vs flat reductions (Sec 3.2).
	cores := p.MaxCores
	hier := &stats.Table{
		Title:   fmt.Sprintf("Ablation: hierarchical vs flat reductions (%d cores, COUP)", cores),
		Headers: []string{"app", "hierarchical (cycles)", "flat (cycles)", "flat slowdown %"},
	}
	for _, app := range []struct {
		Name string
		Mk   func() coup.Workload
	}{
		{"hist", histWorkload(p, 512, "hist")},
		{"bfs", bfsWorkload(p)},
	} {
		run := func(flat bool) float64 {
			st, err := coup.RunWorkload(app.Mk(),
				coup.WithCores(cores),
				coup.WithProtocol("MEUSI"),
				coup.WithSeed(1),
				coup.WithFlatReductions(flat),
			)
			if err != nil {
				panic(err)
			}
			return float64(st.Cycles)
		}
		h := run(false)
		f := run(true)
		hier.AddRow(app.Name, stats.F(h), stats.F(f), stats.F((f-h)/h*100))
	}
	tables = append(tables, hier)
	return tables
}
