// Package exp is the experiment harness: one runner per table and figure
// in the paper's evaluation (Sec 5), each regenerating the corresponding
// rows/series on the simulated system. Absolute cycle counts differ from
// the paper's testbed (see DESIGN.md); the harness exists to reproduce the
// *shape* of every result: who wins, by what factor, and where crossovers
// fall. EXPERIMENTS.md records paper-vs-measured for each row.
package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
	"repro/pkg/coup"
	"repro/pkg/obs"
)

// Params scales experiments. Scale 1.0 is the full (already
// simulation-sized) configuration; smaller values shrink inputs for quick
// runs and benchmarks. Reps is the number of seeded repetitions per data
// point (Alameldeen-Wood non-determinism injection); MaxCores caps the
// core-count sweeps. Parallel bounds the worker pool fanning independent
// simulations out (0 = GOMAXPROCS); it affects wall-clock time only,
// never results.
type Params struct {
	Scale    float64
	Reps     int
	MaxCores int
	Parallel int
	Verbose  bool
	// Progress, when non-nil, receives live sweep metrics (specs done,
	// busy time, arena warm/cold counts) via coup.WithSweepMetrics.
	// Because sweepers are cached per parallelism degree for the whole
	// process, the registry of the FIRST run at a given parallelism wins;
	// harnesses (cmd/coupbench) use one process-wide registry, so this
	// never bites in practice. Progress affects telemetry only, never
	// results.
	Progress *obs.Registry
	// Job, when non-nil, routes every grid sweep through the shard/
	// resume/merge job model: a shard job runs only its round-robin slice
	// of each grid (spilling results to its store, leaving the rest zero
	// and the tables unaggregated), a merge job resolves every grid from
	// the shard stores and yields the same tables a single-process run
	// produces. Only Shardable experiments honor it — the harness must
	// set the job's namespace to the experiment id before Run. Grids are
	// enumerated identically with or without a Job, so shard membership
	// and store keys are stable across processes.
	Job *coup.SweepJob
}

// Fingerprint digests every Params field that changes the enumerated
// specs — scale, reps, the core cap — for guarding SweepJob stores: a
// store recorded at one parameterization never resumes or merges into
// another. Parallel, Progress and Job are excluded; they never change
// results.
func (p Params) Fingerprint() string {
	return fmt.Sprintf("scale=%g,reps=%d,maxcores=%d", p.Scale, p.Reps, p.MaxCores)
}

// DefaultParams returns the full-run parameters.
func DefaultParams() Params {
	return Params{Scale: 1.0, Reps: 1, MaxCores: 128}
}

// BenchParams returns the benchmark-scale parameters every quick consumer
// shares — the root testing.B benchmarks and coupbench -quick: inputs
// shrunk 20x and core sweeps capped at 32, small enough for tight
// edit-run loops while still exercising every experiment's full code
// path.
func BenchParams() Params {
	p := DefaultParams()
	p.Scale = 0.05
	p.MaxCores = 32
	return p
}

func (p Params) scaleInt(n int) int {
	v := int(math.Round(float64(n) * p.Scale))
	if v < 1 {
		v = 1
	}
	return v
}

// coreSweep returns the paper's 1–128 core x-axis, capped by MaxCores.
func (p Params) coreSweep() []int {
	all := []int{1, 16, 32, 64, 96, 128}
	var out []int
	for _, c := range all {
		if c <= p.MaxCores {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// Experiment is one registered, named experiment. Shardable experiments
// derive every data point from deterministic simulation grids, so their
// sweeps can be partitioned across processes and merged (Params.Job);
// the rest measure wall-clock behavior or run serial model checks, which
// only make sense in one process.
type Experiment struct {
	ID        string
	Desc      string
	Shardable bool
	Run       func(p Params) []*stats.Table
}

var registry []Experiment

func register(id, desc string, run func(p Params) []*stats.Table) {
	registry = append(registry, Experiment{ID: id, Desc: desc, Shardable: true, Run: run})
}

// registerSerial registers an experiment that cannot shard: its results
// come from wall-clock measurement or serial exploration rather than a
// deterministic simulation grid.
func registerSerial(id, desc string, run func(p Params) []*stats.Table) {
	registry = append(registry, Experiment{ID: id, Desc: desc, Run: run})
}

// All returns every registered experiment, sorted by id.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment, case-insensitively and ignoring
// surrounding whitespace.
func ByID(id string) (Experiment, bool) {
	id = strings.TrimSpace(id)
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns the sorted registered experiment ids (for error messages).
func Names() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// Listing returns one "id — description" line per registered experiment,
// sorted by id, so listings and unknown-id errors show what each
// experiment is rather than bare names.
func Listing() []string {
	all := All()
	lines := make([]string, len(all))
	for i, e := range all {
		lines[i] = fmt.Sprintf("%-10s %s", e.ID, e.Desc)
	}
	return lines
}

// point is one aggregated data point: the mean cycle count and the CI95
// half-width over the seeded reps, plus rep-mean-aggregated stats
// (coup.MeanStats). Fields are filled in by grid.run.
type point struct {
	Cycles float64
	CI     float64
	Stats  coup.Stats
}

// grid is how experiment runners talk to the sweep engine: they enumerate
// their full data-point set up front with add, evaluate everything in one
// parallel coup.Sweep with run, then read results back through the
// returned points. Results are bit-identical to a serial evaluation at any
// parallelism: aggregation is keyed by spec index, and each rep's seed
// derives from its position in the spec list, never from worker identity.
type grid struct {
	p     Params
	reps  int
	specs []coup.RunSpec
	pts   []*point
}

func newGrid(p Params) *grid {
	reps := p.Reps
	if reps < 1 {
		reps = 1
	}
	return &grid{p: p, reps: reps}
}

// add registers one data point — reps seeded runs of w's workload under
// proto on cores — and returns the point run will fill in. Specs are
// registry-keyed (workload name + params, never a closure), so every
// grid spec has a durable content hash (coup.SpecKey) and sweeps can
// shard, resume and merge across processes.
func (g *grid) add(w wl, cores int, proto string, extra ...coup.Option) *point {
	pt := &point{}
	g.pts = append(g.pts, pt)
	for r := 0; r < g.reps; r++ {
		opts := append([]coup.Option{
			coup.WithCores(cores),
			coup.WithProtocol(proto),
			coup.WithSeed(uint64(r + 1)),
			coup.WithWorkloadParams(w.wp),
		}, extra...)
		g.specs = append(g.specs, coup.RunSpec{Workload: w.name, Options: opts})
	}
	return pt
}

// sweepers caches one Sweeper per parallelism degree for the whole
// process, so the per-worker machine arenas stay warm across grids AND
// across experiments: a "-exp all" run rebuilds each machine geometry
// once per worker, not once per experiment. Sweepers are not safe for
// concurrent Run calls, so sweeperMu serializes sweeps — experiments are
// sequential in every harness (coupbench, the root benchmarks), making
// the lock uncontended in practice.
var (
	sweeperMu sync.Mutex
	sweepers  = map[int]*coup.Sweeper{}
)

func sharedSweep(p Params, specs []coup.RunSpec) ([]coup.SweepResult, bool) {
	sweeperMu.Lock()
	defer sweeperMu.Unlock()
	s, ok := sweepers[p.Parallel]
	if !ok {
		var sopts []coup.SweepOption
		if p.Parallel > 0 {
			sopts = append(sopts, coup.WithParallelism(p.Parallel))
		}
		if p.Progress != nil {
			sopts = append(sopts, coup.WithSweepMetrics(p.Progress))
		}
		var err error
		s, err = coup.NewSweeper(sopts...)
		if err != nil {
			panic(fmt.Sprintf("exp: sweep: %v", err))
		}
		sweepers[p.Parallel] = s
	}
	if p.Job != nil {
		res, complete, err := p.Job.Sweep(s, specs)
		if err != nil {
			// Panic with the error value itself so harnesses that recover
			// can still errors.As into *coup.CoverageError etc.
			panic(fmt.Errorf("exp: sweep job: %w", err))
		}
		return res, complete
	}
	return s.Run(specs), true
}

// run fans the accumulated specs out across the worker pool and aggregates
// per point. It panics on any failed run (an experiment must not silently
// report results from a broken run). Under a shard job the sweep may be
// incomplete — foreign shards own some specs — in which case aggregation
// is skipped: points stay zero and the harness suppresses table output.
func (g *grid) run() {
	results, complete := sharedSweep(g.p, g.specs)
	for i, res := range results {
		if res.Err != nil {
			panic(fmt.Sprintf("exp: sweep spec %d of %d: %v", i, len(results), res.Err))
		}
	}
	if !complete {
		return
	}
	for pi, pt := range g.pts {
		cycles := make([]float64, g.reps)
		runs := make([]coup.Stats, g.reps)
		for r := 0; r < g.reps; r++ {
			st := results[pi*g.reps+r].Stats
			cycles[r] = float64(st.Cycles)
			runs[r] = st
		}
		*pt = point{
			Cycles: stats.Mean(cycles),
			CI:     stats.CI95(cycles),
			Stats:  coup.MeanStats(runs...),
		}
	}
}

// note records the rep count and the worst-case relative confidence
// interval on t when the experiment ran more than one rep per point, so
// multi-rep tables carry their measurement uncertainty. pts must be the
// points the table displays (for multi-table experiments, each table's own
// series); with none given the whole grid is summarized.
func (g *grid) note(t *stats.Table, pts ...*point) {
	if g.reps < 2 {
		return
	}
	if len(pts) == 0 {
		pts = g.pts
	}
	var worst float64
	for _, pt := range pts {
		if pt.Cycles > 0 && pt.CI/pt.Cycles > worst {
			worst = pt.CI / pt.Cycles
		}
	}
	t.AddNote("each point is the mean of %d seeded reps; worst-case ±CI95 is %.1f%% of the mean cycle count", g.reps, worst*100)
}

// measure evaluates a single data point: w's workload, reps times with
// different machine seeds, under proto on cores. It is a thin aggregation
// over a one-point grid; runners measuring more than one point should
// build a grid directly so the whole set fans out in one sweep. It panics
// on validation failures.
func measure(w wl, cores int, proto string, p Params, extra ...coup.Option) point {
	g := newGrid(p)
	pt := g.add(w, cores, proto, extra...)
	g.run()
	return *pt
}

// wl names a registered workload plus the parameters it runs with. Grids
// are built from wl values rather than factory closures so every spec
// carries its workload by registry name — the representation coup.SpecKey
// can hash, which is what makes sweeps shardable and resumable.
type wl struct {
	name string
	wp   coup.WorkloadParams
}

func workload(name string, wp coup.WorkloadParams) wl {
	return wl{name: name, wp: wp}
}

// The five applications (Table 2), sized for simulation at Scale 1.0.

func histWorkload(p Params, bins int, variant string) wl {
	return workload(variant, coup.WorkloadParams{Size: p.scaleInt(240_000), Bins: bins, Seed: 7})
}

func spmvWorkload(p Params) wl {
	return workload("spmv", coup.WorkloadParams{Size: p.scaleInt(8000), NNZPerCol: 24, Seed: 5})
}

func pgrankWorkload(p Params) wl {
	scale := 13
	if p.Scale < 0.5 {
		scale = 11
	}
	if p.Scale < 0.1 {
		scale = 9
	}
	return workload("pgrank", coup.WorkloadParams{Scale: scale, EdgeFactor: 12, Iters: 2, Seed: 9})
}

func bfsWorkload(p Params) wl {
	scale := 14
	if p.Scale < 0.5 {
		scale = 12
	}
	if p.Scale < 0.1 {
		scale = 10
	}
	return workload("bfs", coup.WorkloadParams{Scale: scale, EdgeFactor: 10, Seed: 13})
}

func fluidWorkload(p Params) wl {
	side := 128
	if p.Scale < 0.5 {
		side = 64
	}
	if p.Scale < 0.1 {
		side = 32
	}
	return workload("fluid", coup.WorkloadParams{Size: side, Iters: 3, Seed: 17})
}

// apps returns the Fig 10/11 application list.
func apps(p Params) []struct {
	Name string
	W    wl
} {
	return []struct {
		Name string
		W    wl
	}{
		{"hist", histWorkload(p, 512, "hist")},
		{"spmv", spmvWorkload(p)},
		{"pgrank", pgrankWorkload(p)},
		{"bfs", bfsWorkload(p)},
		{"fluidanimate", fluidWorkload(p)},
	}
}
