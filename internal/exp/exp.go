// Package exp is the experiment harness: one runner per table and figure
// in the paper's evaluation (Sec 5), each regenerating the corresponding
// rows/series on the simulated system. Absolute cycle counts differ from
// the paper's testbed (see DESIGN.md); the harness exists to reproduce the
// *shape* of every result: who wins, by what factor, and where crossovers
// fall. EXPERIMENTS.md records paper-vs-measured for each row.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
	"repro/pkg/coup"
)

// Params scales experiments. Scale 1.0 is the full (already
// simulation-sized) configuration; smaller values shrink inputs for quick
// runs and benchmarks. Reps is the number of seeded repetitions per data
// point (Alameldeen-Wood non-determinism injection); MaxCores caps the
// core-count sweeps.
type Params struct {
	Scale    float64
	Reps     int
	MaxCores int
	Verbose  bool
}

// DefaultParams returns the full-run parameters.
func DefaultParams() Params {
	return Params{Scale: 1.0, Reps: 1, MaxCores: 128}
}

func (p Params) scaleInt(n int) int {
	v := int(float64(n) * p.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// coreSweep returns the paper's 1–128 core x-axis, capped by MaxCores.
func (p Params) coreSweep() []int {
	all := []int{1, 16, 32, 64, 96, 128}
	var out []int
	for _, c := range all {
		if c <= p.MaxCores {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// Experiment is one registered, named experiment.
type Experiment struct {
	ID   string
	Desc string
	Run  func(p Params) []*stats.Table
}

var registry []Experiment

func register(id, desc string, run func(p Params) []*stats.Table) {
	registry = append(registry, Experiment{ID: id, Desc: desc, Run: run})
}

// All returns every registered experiment, sorted by id.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment, case-insensitively and ignoring
// surrounding whitespace.
func ByID(id string) (Experiment, bool) {
	id = strings.TrimSpace(id)
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns the sorted registered experiment ids (for error messages).
func Names() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// measure runs mk()'s workload reps times with different machine seeds and
// returns the mean cycle count plus the last run's stats. The protocol is
// a pkg/coup registry name. It panics on validation failures (an
// experiment must not silently report results from a broken run).
func measure(mk func() coup.Workload, cores int, proto string, p Params, extra ...coup.Option) (float64, coup.Stats) {
	var cycles []float64
	var last coup.Stats
	reps := p.Reps
	if reps < 1 {
		reps = 1
	}
	for r := 0; r < reps; r++ {
		opts := append([]coup.Option{
			coup.WithCores(cores),
			coup.WithProtocol(proto),
			coup.WithSeed(uint64(r + 1)),
		}, extra...)
		st, err := coup.RunWorkload(mk(), opts...)
		if err != nil {
			panic(fmt.Sprintf("measure %d cores %v: %v", cores, proto, err))
		}
		cycles = append(cycles, float64(st.Cycles))
		last = st
	}
	return stats.Mean(cycles), last
}

// workload returns a factory building the named registered workload; a
// lookup or parameter failure is an experiment-setup bug, so it panics.
func workload(name string, wp coup.WorkloadParams) func() coup.Workload {
	return func() coup.Workload {
		w, err := coup.NewWorkload(name, wp)
		if err != nil {
			panic(fmt.Sprintf("exp: %v", err))
		}
		return w
	}
}

// The five applications (Table 2), sized for simulation at Scale 1.0.

func histWorkload(p Params, bins int, variant string) func() coup.Workload {
	return workload(variant, coup.WorkloadParams{Size: p.scaleInt(240_000), Bins: bins, Seed: 7})
}

func spmvWorkload(p Params) func() coup.Workload {
	return workload("spmv", coup.WorkloadParams{Size: p.scaleInt(8000), NNZPerCol: 24, Seed: 5})
}

func pgrankWorkload(p Params) func() coup.Workload {
	scale := 13
	if p.Scale < 0.5 {
		scale = 11
	}
	if p.Scale < 0.1 {
		scale = 9
	}
	return workload("pgrank", coup.WorkloadParams{Scale: scale, EdgeFactor: 12, Iters: 2, Seed: 9})
}

func bfsWorkload(p Params) func() coup.Workload {
	scale := 14
	if p.Scale < 0.5 {
		scale = 12
	}
	if p.Scale < 0.1 {
		scale = 10
	}
	return workload("bfs", coup.WorkloadParams{Scale: scale, EdgeFactor: 10, Seed: 13})
}

func fluidWorkload(p Params) func() coup.Workload {
	side := 128
	if p.Scale < 0.5 {
		side = 64
	}
	if p.Scale < 0.1 {
		side = 32
	}
	return workload("fluid", coup.WorkloadParams{Size: side, Iters: 3, Seed: 17})
}

// apps returns the Fig 10/11 application list with constructors.
func apps(p Params) []struct {
	Name string
	Mk   func() coup.Workload
} {
	return []struct {
		Name string
		Mk   func() coup.Workload
	}{
		{"hist", histWorkload(p, 512, "hist")},
		{"spmv", spmvWorkload(p)},
		{"pgrank", pgrankWorkload(p)},
		{"bfs", bfsWorkload(p)},
		{"fluidanimate", fluidWorkload(p)},
	}
}
