package exp

import (
	"testing"

	"repro/pkg/coup"
)

func tinyParams() Params {
	return Params{Scale: 0.02, Reps: 1, MaxCores: 16}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure and table of the paper's evaluation must have a runner,
	// plus figsw, the repo's software-vs-simulation cross-validation.
	want := []string{
		"fig2", "fig8", "fig10", "fig11", "fig12",
		"fig13a", "fig13b", "fig13c",
		"sec55", "traffic", "table2", "ablation",
		"figsw", "figsvc",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("bogus id must not resolve")
	}
}

func TestCoreSweepRespectsCap(t *testing.T) {
	p := DefaultParams()
	p.MaxCores = 32
	sweep := p.coreSweep()
	for _, c := range sweep {
		if c > 32 {
			t.Errorf("sweep includes %d cores beyond the cap", c)
		}
	}
	if len(sweep) != 3 { // 1, 16, 32
		t.Errorf("sweep %v, want [1 16 32]", sweep)
	}
	p.MaxCores = 0
	if got := p.coreSweep(); len(got) != 1 || got[0] != 1 {
		t.Errorf("degenerate sweep %v", got)
	}
}

func TestScaleInt(t *testing.T) {
	p := Params{Scale: 0.1}
	if p.scaleInt(1000) != 100 {
		t.Error("scaleInt wrong")
	}
	if p.scaleInt(1) != 1 {
		t.Error("scaleInt must floor at 1")
	}
	// Regression: truncation collapsed small sweeps (0.3 of 5 floored to 1).
	if got := (Params{Scale: 0.3}).scaleInt(5); got != 2 {
		t.Errorf("scaleInt(5) at 0.3 = %d, want 2 (round, not floor)", got)
	}
	if got := (Params{Scale: 0.3}).scaleInt(10); got != 3 {
		t.Errorf("scaleInt(10) at 0.3 = %d, want 3", got)
	}
}

func TestMeasureValidatesAndAverages(t *testing.T) {
	p := tinyParams()
	p.Reps = 3
	mk := workload("hist", coup.WorkloadParams{Size: 2000, Bins: 64, Seed: 1})
	pt := measure(mk, 4, "MEUSI", p)
	if pt.Cycles <= 0 || pt.Stats.Cycles == 0 {
		t.Fatal("measure returned nothing")
	}
	if pt.CI <= 0 {
		t.Error("three seeded reps with jitter must have a positive CI95")
	}
	// The aggregated stats must be the rep mean, not any single rep: the
	// mean cycle count agrees with the cycles aggregate (within rounding).
	if d := pt.Cycles - float64(pt.Stats.Cycles); d > 0.5 || d < -0.5 {
		t.Errorf("mean stats cycles %d disagree with mean cycles %v", pt.Stats.Cycles, pt.Cycles)
	}
}

// TestGridMatchesMeasure pins the aggregation path: points evaluated
// through a multi-point grid must be identical to one-point measure calls.
func TestGridMatchesMeasure(t *testing.T) {
	p := tinyParams()
	p.Reps = 2
	mk := histWorkload(p, 64, "hist")
	g := newGrid(p)
	a := g.add(mk, 2, "MESI")
	b := g.add(mk, 4, "MEUSI")
	g.run()
	for _, tc := range []struct {
		got   point
		cores int
		proto string
	}{{*a, 2, "MESI"}, {*b, 4, "MEUSI"}} {
		want := measure(mk, tc.cores, tc.proto, p)
		if tc.got != want {
			t.Errorf("grid point (%d cores, %s) = %+v, want %+v", tc.cores, tc.proto, tc.got, want)
		}
	}
}

// TestTablesIdenticalSerialVsParallel is the determinism contract of the
// sweep rewrite: the rendered tables must be byte-identical whether the
// grid runs on one worker or many. It covers every experiment except
// those with measured wall-clock columns, which differ even between two
// serial runs: fig8 (the model checker's verification times), figsw and
// figsvc (the software benchmarks' ns/op).
func TestTablesIdenticalSerialVsParallel(t *testing.T) {
	p := Params{Scale: 0.01, Reps: 2, MaxCores: 8}
	wallClock := map[string]bool{"fig8": true, "figsw": true, "figsvc": true}
	ids := []string{"fig2", "traffic"}
	if !testing.Short() {
		ids = ids[:0]
		for _, e := range All() {
			if !wallClock[e.ID] {
				ids = append(ids, e.ID)
			}
		}
	}
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		render := func(parallel int) string {
			pp := p
			pp.Parallel = parallel
			var out string
			for _, tb := range e.Run(pp) {
				out += tb.String() + "\n"
			}
			return out
		}
		serial := render(1)
		parallel := render(8)
		if serial != parallel {
			t.Errorf("%s: tables differ between -parallel 1 and -parallel 8:\n--- serial ---\n%s--- parallel ---\n%s",
				id, serial, parallel)
		}
	}
}

// TestShardMergeTablesIdentical is the sharding contract end to end:
// running an experiment as four shard processes-worth of jobs (each
// spilling its slice to a result store) and then merging must render
// tables byte-identical to a plain single-process run. It also pins that
// the wall-clock experiments are the exact non-Shardable set.
func TestShardMergeTablesIdentical(t *testing.T) {
	wallClock := map[string]bool{"fig8": true, "figsw": true, "figsvc": true}
	for _, e := range All() {
		if e.Shardable == wallClock[e.ID] {
			t.Errorf("experiment %s: Shardable=%v, want %v", e.ID, e.Shardable, !wallClock[e.ID])
		}
	}

	p := Params{Scale: 0.01, Reps: 2, MaxCores: 8}
	ids := []string{"fig2", "traffic"}
	if !testing.Short() {
		ids = ids[:0]
		for _, e := range All() {
			if e.Shardable {
				ids = append(ids, e.ID)
			}
		}
	}
	render := func(job *coup.SweepJob) map[string]string {
		out := map[string]string{}
		for _, id := range ids {
			e, _ := ByID(id)
			if job != nil {
				if err := job.SetNamespace(id); err != nil {
					t.Fatalf("%s: %v", id, err)
				}
			}
			pp := p
			pp.Job = job
			var s string
			for _, tb := range e.Run(pp) {
				s += tb.String() + "\n"
			}
			out[id] = s
		}
		if job != nil {
			if err := job.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}

	want := render(nil)
	dir := t.TempDir()
	const shards = 4
	for k := 0; k < shards; k++ {
		job, err := coup.NewShardJob(dir, p.Fingerprint(), k, shards)
		if err != nil {
			t.Fatal(err)
		}
		render(job) // shard mode: tables are unaggregated, ignored
	}
	got := render(coup.NewMergeJob(dir, p.Fingerprint()))
	for _, id := range ids {
		if got[id] != want[id] {
			t.Errorf("%s: merged tables differ from single-process run:\n--- single ---\n%s--- merged ---\n%s",
				id, want[id], got[id])
		}
	}
}

// TestEveryExperimentRunsTiny executes the whole registry at minuscule
// scale: every runner must produce at least one non-empty table without
// panicking (validation failures inside measure panic).
func TestEveryExperimentRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	p := tinyParams()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(p)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %q has no rows", tb.Title)
				}
				if len(tb.Headers) == 0 {
					t.Errorf("table %q has no headers", tb.Title)
				}
				for _, r := range tb.Rows {
					if len(r) != len(tb.Headers) {
						t.Errorf("table %q: row width %d != headers %d", tb.Title, len(r), len(tb.Headers))
					}
				}
			}
		})
	}
}
