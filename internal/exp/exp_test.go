package exp

import (
	"testing"

	"repro/pkg/coup"
)

func tinyParams() Params {
	return Params{Scale: 0.02, Reps: 1, MaxCores: 16}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure and table of the paper's evaluation must have a runner.
	want := []string{
		"fig2", "fig8", "fig10", "fig11", "fig12",
		"fig13a", "fig13b", "fig13c",
		"sec55", "traffic", "table2", "ablation",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("bogus id must not resolve")
	}
}

func TestCoreSweepRespectsCap(t *testing.T) {
	p := DefaultParams()
	p.MaxCores = 32
	sweep := p.coreSweep()
	for _, c := range sweep {
		if c > 32 {
			t.Errorf("sweep includes %d cores beyond the cap", c)
		}
	}
	if len(sweep) != 3 { // 1, 16, 32
		t.Errorf("sweep %v, want [1 16 32]", sweep)
	}
	p.MaxCores = 0
	if got := p.coreSweep(); len(got) != 1 || got[0] != 1 {
		t.Errorf("degenerate sweep %v", got)
	}
}

func TestScaleInt(t *testing.T) {
	p := Params{Scale: 0.1}
	if p.scaleInt(1000) != 100 {
		t.Error("scaleInt wrong")
	}
	if p.scaleInt(1) != 1 {
		t.Error("scaleInt must floor at 1")
	}
}

func TestMeasureValidatesAndAverages(t *testing.T) {
	p := tinyParams()
	p.Reps = 2
	mk := workload("hist", coup.WorkloadParams{Size: 2000, Bins: 64, Seed: 1})
	mean, st := measure(mk, 4, "MEUSI", p)
	if mean <= 0 || st.Cycles == 0 {
		t.Fatal("measure returned nothing")
	}
}

// TestEveryExperimentRunsTiny executes the whole registry at minuscule
// scale: every runner must produce at least one non-empty table without
// panicking (validation failures inside measure panic).
func TestEveryExperimentRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	p := tinyParams()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(p)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %q has no rows", tb.Title)
				}
				if len(tb.Headers) == 0 {
					t.Errorf("table %q has no headers", tb.Title)
				}
				for _, r := range tb.Rows {
					if len(r) != len(tb.Headers) {
						t.Errorf("table %q: row width %d != headers %d", tb.Title, len(r), len(tb.Headers))
					}
				}
			}
		})
	}
}
