package exp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"

	"repro/internal/stats"
	"repro/internal/swbench"
	"repro/pkg/coupd"
)

func init() {
	registerSerial("figsvc",
		"coupd service closed loop: in-process pkg/commute next to batched-HTTP coupd on the same Zipf traffic, plus the server's own reduce-latency telemetry",
		figsvc)
}

// figsvcBatch is the client-side batch size: the network U-state buffer
// depth. 256 records amortizes one HTTP round trip over 256 updates.
const figsvcBatch = 256

// figsvc extends the figsw cross-validation one layer up the stack: the
// same Zipf-skewed histogram and contended-counter streams that figsw
// runs in-process are driven through a coupd server over HTTP with
// client-side batching, closing the loop on ROADMAP's "U-state made
// internet-facing" direction. The in-process column is the same
// pkg/commute fast path; the service column adds JSON encode, one HTTP
// round trip per batch, server decode, and the fan-in — so the ratio
// prices the network boundary, and the batch size is the lever that
// amortizes it (the wire image of the paper's per-line U buffering).
// Every service run is equivalence-checked: the server-side reduction
// must match the client-side applied-op count exactly.
func figsvc(p Params) []*stats.Table {
	srv, err := coupd.New()
	if err != nil {
		panic(fmt.Sprintf("exp: figsvc: %v", err))
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sweep := p.coreSweep()
	ops := p.scaleInt(100_000)
	reps := p.Reps
	if reps < 1 {
		reps = 1
	}
	var worstCI float64
	measure := func(kind swbench.Kind, mk swbench.DriverMaker, threads int) (ns, ups float64) {
		c := swbench.Config{
			Kind: kind, Impl: swbench.ImplCommute, Threads: threads, Ops: ops,
			Cells: 8, Bins: figswBins, ZipfS: 1.07, Seed: 1,
			NewDriver: mk,
		}
		results, mean, ci, err := swbench.Measure(c, reps)
		if err != nil {
			panic(fmt.Sprintf("exp: figsvc: %v", err))
		}
		if mean > 0 && ci/mean > worstCI {
			worstCI = ci / mean
		}
		var mops float64
		for _, r := range results {
			mops += r.MOpsPerSec
		}
		return mean, mops / float64(len(results)) * 1e6
	}

	mkTable := func(title string, kind swbench.Kind) *stats.Table {
		t := &stats.Table{
			Title: title,
			Headers: []string{"workers",
				"in-proc ns/op", "coupd ns/op", "coupd updates/s", "svc/in-proc"},
		}
		for _, th := range sweep {
			inprocNs, _ := measure(kind, nil, th)
			svcNs, svcUps := measure(kind, swbench.HTTPDriver(ts.URL, figsvcBatch, nil), th)
			ratio := 0.0
			if inprocNs > 0 {
				ratio = svcNs / inprocNs
			}
			t.AddRow(fmt.Sprint(th),
				stats.F(inprocNs), stats.F(svcNs), stats.F(svcUps), stats.F(ratio)+"x")
		}
		t.AddNote("batch=%d updates per POST /v1/batch; %d updates/worker, Zipf s=1.07, GOMAXPROCS=%d; every service run equivalence-checked against the server-side reduction",
			figsvcBatch, ops, runtime.GOMAXPROCS(0))
		if reps > 1 {
			t.AddNote("cells are means of %d seeded reps; worst-case ±CI95 is %.1f%% of the mean ns/op", reps, worstCI*100)
		}
		return t
	}

	tables := []*stats.Table{
		mkTable(fmt.Sprintf("Fig SVC-a: shared histogram (%d bins) — in-process pkg/commute vs coupd over HTTP", figswBins), swbench.KindHist),
		mkTable("Fig SVC-b: contended counters (8 cells) — in-process vs coupd over HTTP", swbench.KindCounter),
	}

	// Dogfood column: the server's own /v1/stats, kept in pkg/commute
	// structures, after absorbing the load above.
	if st, err := fetchStats(ts.URL); err == nil {
		t := &stats.Table{
			Title:   "Fig SVC-c: coupd self-telemetry after the load (served from its own commute structures)",
			Headers: []string{"metric", "value"},
		}
		t.AddRow("batches accepted", fmt.Sprint(st.Batches))
		t.AddRow("updates applied", fmt.Sprint(st.Updates))
		t.AddRow("batches rejected (429)", fmt.Sprint(st.Rejected))
		t.AddRow("snapshot requests", fmt.Sprint(st.Snapshots))
		t.AddRow("reduce ns min/mean/max", fmt.Sprintf("%d / %s / %d", st.ReduceNsMin, stats.F(st.ReduceNsMean), st.ReduceNsMax))
		t.AddRow("structures", fmt.Sprint(st.Structures))
		tables = append(tables, t)
	}
	return tables
}

func fetchStats(base string) (coupd.Stats, error) {
	var st coupd.Stats
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}
