package exp

import (
	"fmt"
	"runtime"

	"repro/internal/stats"
	"repro/internal/swbench"
	"repro/pkg/coup"
)

func init() {
	registerSerial("figsw",
		"software-vs-simulation cross-validation: pkg/commute on the real machine next to MESI-vs-MEUSI on the simulator, same workload shapes",
		figsw)
}

// figsw is the repo's first hardware-vs-simulation cross-validation: the
// same two workload shapes — the Fig 1 maximally-contended counter and
// the Fig 2 shared histogram — run twice. On the simulator, MESI
// (atomics) against MEUSI (COUP), in simulated cycles; on the real
// machine, the shared-atomic baseline against pkg/commute's sharded
// structures, in wall-clock ns/op. Each table pairs the two speedup
// columns so the shapes can be compared directly: both mechanisms
// privatize commutative updates and pay a reduction on reads, so both
// should win where update contention dominates (many threads, few hot
// lines) and fade where it does not (one thread, or GOMAXPROCS exhausted).
//
// The x-axes differ in nature — simulated cores are real parallel
// hardware, software threads beyond the host's GOMAXPROCS only
// time-share — so the table records GOMAXPROCS and the absolute numbers
// rather than pretending the rows are the same machine.
func figsw(p Params) []*stats.Table {
	sweep := p.coreSweep()

	// Simulated side: one grid, fanned out in one parallel sweep.
	g := newGrid(p)
	type cell struct{ mesi, coup *point }
	simCounter := make([]cell, len(sweep))
	simHist := make([]cell, len(sweep))
	counterMk := workload("counter", counterParams(p))
	histMk := histWorkload(p, figswBins, "hist")
	for i, c := range sweep {
		simCounter[i] = cell{mesi: g.add(counterMk, c, "MESI"), coup: g.add(counterMk, c, "MEUSI")}
		simHist[i] = cell{mesi: g.add(histMk, c, "MESI"), coup: g.add(histMk, c, "MEUSI")}
	}
	g.run()

	// Software side: same shapes on the host, serially (the measurement
	// needs the CPUs to itself). Thread counts mirror the core sweep.
	swOps := p.scaleInt(200_000)
	reps := p.Reps
	if reps < 1 {
		reps = 1
	}
	type swCell struct{ atomicNs, commuteNs float64 }
	var worstSwCI float64 // worst ±CI95 relative to its mean, over all sw cells
	measure := func(kind swbench.Kind, impl swbench.Impl, threads int) float64 {
		c := swbench.Config{
			Kind: kind, Impl: impl, Threads: threads, Ops: swOps,
			Cells: 1, Bins: figswBins, ZipfS: 1.07, Seed: 1,
		}
		_, mean, ci, err := swbench.Measure(c, reps)
		if err != nil {
			panic(fmt.Sprintf("exp: figsw: %v", err))
		}
		if mean > 0 && ci/mean > worstSwCI {
			worstSwCI = ci / mean
		}
		return mean
	}
	swFor := func(kind swbench.Kind) []swCell {
		out := make([]swCell, len(sweep))
		for i, th := range sweep {
			out[i] = swCell{
				atomicNs:  measure(kind, swbench.ImplAtomic, th),
				commuteNs: measure(kind, swbench.ImplCommute, th),
			}
		}
		return out
	}
	swCounter := swFor(swbench.KindCounter)
	swHist := swFor(swbench.KindHist)

	mkTable := func(title string, sim []cell, sw []swCell) *stats.Table {
		t := &stats.Table{
			Title: title,
			Headers: []string{"cores/threads",
				"sim MESI cyc", "sim COUP cyc", "sim speedup",
				"sw atomic ns/op", "sw commute ns/op", "sw speedup"},
		}
		pts := make([]*point, 0, 2*len(sim))
		for i, c := range sweep {
			s := sim[i]
			w := sw[i]
			t.AddRow(fmt.Sprint(c),
				stats.F(s.mesi.Cycles), stats.F(s.coup.Cycles), stats.F(s.mesi.Cycles/s.coup.Cycles)+"x",
				stats.F(w.atomicNs), stats.F(w.commuteNs), stats.F(w.atomicNs/w.commuteNs)+"x")
			pts = append(pts, s.mesi, s.coup)
		}
		t.AddNote("sim speedup = MESI/MEUSI simulated cycles; sw speedup = atomic/commute wall-clock ns per update on this host (GOMAXPROCS=%d, %d updates/thread, Zipf s=1.07); sw threads beyond GOMAXPROCS time-share",
			runtime.GOMAXPROCS(0), swOps)
		if reps > 1 {
			t.AddNote("sw cells are means of %d seeded reps; worst-case ±CI95 is %.1f%% of the mean ns/op", reps, worstSwCI*100)
		}
		g.note(t, pts...)
		return t
	}
	return []*stats.Table{
		mkTable("Fig SW-a: contended counter — simulated MESI vs MEUSI next to measured atomic vs pkg/commute", simCounter, swCounter),
		mkTable(fmt.Sprintf("Fig SW-b: shared histogram (%d bins) — simulated next to measured", figswBins), simHist, swHist),
	}
}

// figswBins keeps the simulated and software histograms the same shape.
const figswBins = 512

// counterParams sizes the Fig 1 counter workload for figsw.
func counterParams(p Params) coup.WorkloadParams {
	return coup.WorkloadParams{Size: p.scaleInt(2000), Seed: 3}
}
