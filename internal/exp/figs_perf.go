package exp

import (
	"fmt"

	"repro/internal/stats"
	"repro/pkg/coup"
)

func init() {
	register("fig2", "hist relative performance vs #bins (COUP, MESI atomics, MESI software privatization) at 64 cores", fig2)
	register("fig10", "per-application speedups of COUP and MESI on 1-128 cores", fig10)
	register("fig11", "AMAT breakdown of COUP and MESI at 8/32/128 cores", fig11)
	register("fig12", "hist: COUP vs core- and socket-level privatization, 512 and 16K bins", fig12)
	register("fig13a", "reference counting, immediate dealloc, low count: COUP vs SNZI vs XADD", fig13a)
	register("fig13b", "reference counting, immediate dealloc, high count: COUP vs SNZI vs XADD", fig13b)
	register("fig13c", "reference counting, delayed dealloc: COUP vs Refcache vs updates/epoch", fig13c)
}

// fig2 reproduces Fig 2: all schemes process a fixed input; performance is
// reported relative to COUP at 32 bins (higher is better). The paper's
// shape: privatization wins at few bins, atomics at many bins, COUP beats
// both across the range.
func fig2(p Params) []*stats.Table {
	cores := 64
	if cores > p.MaxCores {
		cores = p.MaxCores
	}
	bins := []int{32, 128, 512, 2048, 8192, 32768}
	g := newGrid(p)
	type row struct{ coup, atom, priv *point }
	rows := make([]row, len(bins))
	for i, b := range bins {
		rows[i] = row{
			coup: g.add(histWorkload(p, b, "hist"), cores, "MEUSI"),
			atom: g.add(histWorkload(p, b, "hist"), cores, "MESI"),
			priv: g.add(histWorkload(p, b, "hist-priv-core"), cores, "MESI"),
		}
	}
	g.run()
	t := &stats.Table{
		Title:   fmt.Sprintf("Fig 2: hist relative performance vs bins (%d cores)", cores),
		Headers: []string{"bins", "COUP", "MESI-atomics", "MESI-sw-privatization"},
	}
	base := rows[0].coup.Cycles
	for i, b := range bins {
		r := rows[i]
		t.AddRow(fmt.Sprint(b), stats.F(base/r.coup.Cycles), stats.F(base/r.atom.Cycles), stats.F(base/r.priv.Cycles))
	}
	t.AddNote("performance relative to COUP at 32 bins; higher is better (paper Fig 2)")
	g.note(t)
	return []*stats.Table{t}
}

// fig10 reproduces Fig 10: per-application speedups over the application's
// single-core MESI run.
func fig10(p Params) []*stats.Table {
	g := newGrid(p)
	type cell struct{ mesi, coup *point }
	type series struct {
		name string
		base *point
		rows []cell
	}
	sweep := p.coreSweep()
	var all []series
	for _, app := range apps(p) {
		s := series{name: app.Name, base: g.add(app.W, 1, "MESI")}
		for _, c := range sweep {
			s.rows = append(s.rows, cell{
				mesi: g.add(app.W, c, "MESI"),
				coup: g.add(app.W, c, "MEUSI"),
			})
		}
		all = append(all, s)
	}
	g.run()
	var tables []*stats.Table
	for _, s := range all {
		t := &stats.Table{
			Title:   "Fig 10: " + s.name + " speedup (vs 1-core MESI)",
			Headers: []string{"cores", "MESI", "COUP", "COUP/MESI"},
		}
		base := s.base.Cycles
		pts := []*point{s.base}
		for i, c := range sweep {
			r := s.rows[i]
			t.AddRow(fmt.Sprint(c), stats.F(base/r.mesi.Cycles), stats.F(base/r.coup.Cycles), stats.F(r.mesi.Cycles/r.coup.Cycles))
			pts = append(pts, r.mesi, r.coup)
		}
		g.note(t, pts...)
		tables = append(tables, t)
	}
	return tables
}

// fig11 reproduces Fig 11: the average memory access time decomposition,
// normalized to COUP's AMAT at 8 cores (lower is better).
func fig11(p Params) []*stats.Table {
	sizes := []int{8, 32, 128}
	protos := []string{"MEUSI", "MESI"}
	g := newGrid(p)
	type row struct {
		cores int
		proto string
		pt    *point
	}
	type series struct {
		name string
		rows []row
	}
	var all []series
	for _, app := range apps(p) {
		s := series{name: app.Name}
		for _, c := range sizes {
			if c > p.MaxCores {
				continue
			}
			for _, proto := range protos {
				s.rows = append(s.rows, row{cores: c, proto: proto, pt: g.add(app.W, c, proto)})
			}
		}
		all = append(all, s)
	}
	g.run()
	var tables []*stats.Table
	for _, s := range all {
		t := &stats.Table{
			Title:   "Fig 11: " + s.name + " AMAT breakdown (normalized to COUP @ 8 cores)",
			Headers: []string{"cores", "proto", "total", "L2", "L3", "net", "L4inval", "L4", "mem"},
		}
		var norm float64
		var pts []*point
		for _, r := range s.rows {
			st := r.pt.Stats
			b := st.Breakdown
			if norm == 0 {
				norm = st.AMAT // first row: COUP at the smallest size
			}
			t.AddRow(fmt.Sprint(r.cores), protoName(r.proto),
				stats.F(st.AMAT/norm),
				stats.F(b.L2/norm), stats.F(b.L3/norm), stats.F(b.OffChipNet/norm),
				stats.F(b.L4Inval/norm), stats.F(b.L4/norm), stats.F(b.MainMem/norm))
			pts = append(pts, r.pt)
		}
		g.note(t, pts...)
		tables = append(tables, t)
	}
	return tables
}

func protoName(pr string) string {
	if pr == "MEUSI" {
		return "COUP"
	}
	return pr
}

// fig12 reproduces Fig 12: hist as an explicit reduction variable, COUP vs
// core-level and socket-level privatization, at 512 and 16K bins.
func fig12(p Params) []*stats.Table {
	binSet := []int{512, 16384}
	sweep := p.coreSweep()
	g := newGrid(p)
	type cell struct{ coup, core, sock *point }
	type series struct {
		bins int
		base *point
		rows []cell
	}
	var all []series
	for _, bins := range binSet {
		s := series{bins: bins, base: g.add(histWorkload(p, bins, "hist"), 1, "MEUSI")}
		for _, c := range sweep {
			s.rows = append(s.rows, cell{
				coup: g.add(histWorkload(p, bins, "hist"), c, "MEUSI"),
				core: g.add(histWorkload(p, bins, "hist-priv-core"), c, "MESI"),
				sock: g.add(histWorkload(p, bins, "hist-priv-socket"), c, "MESI"),
			})
		}
		all = append(all, s)
	}
	g.run()
	var tables []*stats.Table
	for _, s := range all {
		t := &stats.Table{
			Title:   fmt.Sprintf("Fig 12: hist privatization comparison, %d bins (speedup vs 1-core COUP)", s.bins),
			Headers: []string{"cores", "COUP", "core-priv", "socket-priv"},
		}
		base := s.base.Cycles
		pts := []*point{s.base}
		for i, c := range sweep {
			r := s.rows[i]
			t.AddRow(fmt.Sprint(c), stats.F(base/r.coup.Cycles), stats.F(base/r.core.Cycles), stats.F(base/r.sock.Cycles))
			pts = append(pts, r.coup, r.core, r.sock)
		}
		g.note(t, pts...)
		tables = append(tables, t)
	}
	return tables
}

func refcountImmediate(p Params, high bool, title string) []*stats.Table {
	// The paper runs 1M updates/thread over 1024 counters; updates must be
	// several times the counter pool so that high-count mode actually
	// accumulates per-thread surpluses (which is what lets SNZI stop
	// propagating to the root).
	updates := p.scaleInt(8192)
	counters := 1024
	wp := coup.WorkloadParams{Counters: counters, Size: updates, HighCount: high, Seed: 21}
	mk := workload("refcount", wp)
	mkSnzi := workload("refcount-snzi", wp)
	sweep := p.coreSweep()
	g := newGrid(p)
	type cell struct{ xadd, coup, snzi *point }
	base := g.add(mk, 1, "MESI")
	rows := make([]cell, len(sweep))
	for i, c := range sweep {
		rows[i] = cell{
			xadd: g.add(mk, c, "MESI"),
			coup: g.add(mk, c, "MEUSI"),
			snzi: g.add(mkSnzi, c, "MESI"),
		}
	}
	g.run()
	t := &stats.Table{
		Title:   title,
		Headers: []string{"cores", "XADD", "COUP", "SNZI"},
	}
	// Each thread performs a fixed number of updates, so the figure's
	// speedup is aggregate throughput relative to one XADD thread.
	for i, c := range sweep {
		fc := float64(c)
		r := rows[i]
		t.AddRow(fmt.Sprint(c), stats.F(fc*base.Cycles/r.xadd.Cycles), stats.F(fc*base.Cycles/r.coup.Cycles), stats.F(fc*base.Cycles/r.snzi.Cycles))
	}
	t.AddNote("throughput speedup vs 1-core XADD; %d counters, %d updates/thread", counters, updates)
	g.note(t)
	return []*stats.Table{t}
}

func fig13a(p Params) []*stats.Table {
	return refcountImmediate(p, false, "Fig 13a: refcount immediate dealloc, low count")
}

func fig13b(p Params) []*stats.Table {
	return refcountImmediate(p, true, "Fig 13b: refcount immediate dealloc, high count")
}

// fig13c reproduces Fig 13c: delayed deallocation, performance (updates per
// kilocycle) as updates/epoch grows.
func fig13c(p Params) []*stats.Table {
	cores := p.MaxCores
	if cores > 128 {
		cores = 128
	}
	counters := p.scaleInt(8192)
	epochs := 2
	g := newGrid(p)
	type row struct {
		upe          int
		coup, refcch *point
	}
	var rows []row
	for _, upe := range []int{10, 50, 100, 300, 1000} {
		upe := p.scaleInt(upe)
		wp := coup.WorkloadParams{Counters: counters, Iters: epochs, UpdatesPerEpoch: upe, Seed: 27}
		rows = append(rows, row{
			upe:    upe,
			coup:   g.add(workload("refcount-delayed", wp), cores, "MEUSI"),
			refcch: g.add(workload("refcount-refcache", wp), cores, "MESI"),
		})
	}
	g.run()
	t := &stats.Table{
		Title:   fmt.Sprintf("Fig 13c: refcount delayed dealloc (%d threads, %d counters)", cores, counters),
		Headers: []string{"updates/epoch", "COUP", "Refcache", "COUP/Refcache"},
	}
	for _, r := range rows {
		work := float64(r.upe * epochs * cores)
		t.AddRow(fmt.Sprint(r.upe), stats.F(work/r.coup.Cycles*1000), stats.F(work/r.refcch.Cycles*1000), stats.F(r.refcch.Cycles/r.coup.Cycles))
	}
	t.AddNote("performance in updates per kilocycle (higher is better); paper reports COUP up to 2.3x over Refcache")
	g.note(t)
	return []*stats.Table{t}
}
