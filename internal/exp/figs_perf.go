package exp

import (
	"fmt"

	"repro/internal/stats"
	"repro/pkg/coup"
)

func init() {
	register("fig2", "hist relative performance vs #bins (COUP, MESI atomics, MESI software privatization) at 64 cores", fig2)
	register("fig10", "per-application speedups of COUP and MESI on 1-128 cores", fig10)
	register("fig11", "AMAT breakdown of COUP and MESI at 8/32/128 cores", fig11)
	register("fig12", "hist: COUP vs core- and socket-level privatization, 512 and 16K bins", fig12)
	register("fig13a", "reference counting, immediate dealloc, low count: COUP vs SNZI vs XADD", fig13a)
	register("fig13b", "reference counting, immediate dealloc, high count: COUP vs SNZI vs XADD", fig13b)
	register("fig13c", "reference counting, delayed dealloc: COUP vs Refcache vs updates/epoch", fig13c)
}

// fig2 reproduces Fig 2: all schemes process a fixed input; performance is
// reported relative to COUP at 32 bins (higher is better). The paper's
// shape: privatization wins at few bins, atomics at many bins, COUP beats
// both across the range.
func fig2(p Params) []*stats.Table {
	cores := 64
	if cores > p.MaxCores {
		cores = p.MaxCores
	}
	bins := []int{32, 128, 512, 2048, 8192, 32768}
	t := &stats.Table{
		Title:   fmt.Sprintf("Fig 2: hist relative performance vs bins (%d cores)", cores),
		Headers: []string{"bins", "COUP", "MESI-atomics", "MESI-sw-privatization"},
	}
	var base float64
	for i, b := range bins {
		coup, _ := measure(histWorkload(p, b, "hist"), cores, "MEUSI", p)
		atom, _ := measure(histWorkload(p, b, "hist"), cores, "MESI", p)
		priv, _ := measure(histWorkload(p, b, "hist-priv-core"), cores, "MESI", p)
		if i == 0 {
			base = coup
		}
		t.AddRow(fmt.Sprint(b), stats.F(base/coup), stats.F(base/atom), stats.F(base/priv))
	}
	t.AddNote("performance relative to COUP at 32 bins; higher is better (paper Fig 2)")
	return []*stats.Table{t}
}

// fig10 reproduces Fig 10: per-application speedups over the application's
// single-core MESI run.
func fig10(p Params) []*stats.Table {
	var tables []*stats.Table
	for _, app := range apps(p) {
		t := &stats.Table{
			Title:   "Fig 10: " + app.Name + " speedup (vs 1-core MESI)",
			Headers: []string{"cores", "MESI", "COUP", "COUP/MESI"},
		}
		base, _ := measure(app.Mk, 1, "MESI", p)
		for _, c := range p.coreSweep() {
			mesi, _ := measure(app.Mk, c, "MESI", p)
			coup, _ := measure(app.Mk, c, "MEUSI", p)
			t.AddRow(fmt.Sprint(c), stats.F(base/mesi), stats.F(base/coup), stats.F(mesi/coup))
		}
		tables = append(tables, t)
	}
	return tables
}

// fig11 reproduces Fig 11: the average memory access time decomposition,
// normalized to COUP's AMAT at 8 cores (lower is better).
func fig11(p Params) []*stats.Table {
	var tables []*stats.Table
	sizes := []int{8, 32, 128}
	for _, app := range apps(p) {
		t := &stats.Table{
			Title:   "Fig 11: " + app.Name + " AMAT breakdown (normalized to COUP @ 8 cores)",
			Headers: []string{"cores", "proto", "total", "L2", "L3", "net", "L4inval", "L4", "mem"},
		}
		var norm float64
		for _, c := range sizes {
			if c > p.MaxCores {
				continue
			}
			for _, proto := range []string{"MEUSI", "MESI"} {
				_, st := measure(app.Mk, c, proto, p)
				b := st.Breakdown
				if norm == 0 {
					norm = st.AMAT // first row: COUP at the smallest size
				}
				t.AddRow(fmt.Sprint(c), protoName(proto),
					stats.F(st.AMAT/norm),
					stats.F(b.L2/norm), stats.F(b.L3/norm), stats.F(b.OffChipNet/norm),
					stats.F(b.L4Inval/norm), stats.F(b.L4/norm), stats.F(b.MainMem/norm))
			}
		}
		tables = append(tables, t)
	}
	return tables
}

func protoName(pr string) string {
	if pr == "MEUSI" {
		return "COUP"
	}
	return pr
}

// fig12 reproduces Fig 12: hist as an explicit reduction variable, COUP vs
// core-level and socket-level privatization, at 512 and 16K bins.
func fig12(p Params) []*stats.Table {
	var tables []*stats.Table
	for _, bins := range []int{512, 16384} {
		t := &stats.Table{
			Title:   fmt.Sprintf("Fig 12: hist privatization comparison, %d bins (speedup vs 1-core COUP)", bins),
			Headers: []string{"cores", "COUP", "core-priv", "socket-priv"},
		}
		base, _ := measure(histWorkload(p, bins, "hist"), 1, "MEUSI", p)
		for _, c := range p.coreSweep() {
			coup, _ := measure(histWorkload(p, bins, "hist"), c, "MEUSI", p)
			core, _ := measure(histWorkload(p, bins, "hist-priv-core"), c, "MESI", p)
			sock, _ := measure(histWorkload(p, bins, "hist-priv-socket"), c, "MESI", p)
			t.AddRow(fmt.Sprint(c), stats.F(base/coup), stats.F(base/core), stats.F(base/sock))
		}
		tables = append(tables, t)
	}
	return tables
}

func refcountImmediate(p Params, high bool, title string) []*stats.Table {
	// The paper runs 1M updates/thread over 1024 counters; updates must be
	// several times the counter pool so that high-count mode actually
	// accumulates per-thread surpluses (which is what lets SNZI stop
	// propagating to the root).
	updates := p.scaleInt(8192)
	counters := 1024
	wp := coup.WorkloadParams{Counters: counters, Size: updates, HighCount: high, Seed: 21}
	mk := workload("refcount", wp)
	mkSnzi := workload("refcount-snzi", wp)
	t := &stats.Table{
		Title:   title,
		Headers: []string{"cores", "XADD", "COUP", "SNZI"},
	}
	base, _ := measure(mk, 1, "MESI", p)
	// Each thread performs a fixed number of updates, so the figure's
	// speedup is aggregate throughput relative to one XADD thread.
	for _, c := range p.coreSweep() {
		fc := float64(c)
		xadd, _ := measure(mk, c, "MESI", p)
		coup, _ := measure(mk, c, "MEUSI", p)
		snzi, _ := measure(mkSnzi, c, "MESI", p)
		t.AddRow(fmt.Sprint(c), stats.F(fc*base/xadd), stats.F(fc*base/coup), stats.F(fc*base/snzi))
	}
	t.AddNote("throughput speedup vs 1-core XADD; %d counters, %d updates/thread", counters, updates)
	return []*stats.Table{t}
}

func fig13a(p Params) []*stats.Table {
	return refcountImmediate(p, false, "Fig 13a: refcount immediate dealloc, low count")
}

func fig13b(p Params) []*stats.Table {
	return refcountImmediate(p, true, "Fig 13b: refcount immediate dealloc, high count")
}

// fig13c reproduces Fig 13c: delayed deallocation, performance (updates per
// kilocycle) as updates/epoch grows.
func fig13c(p Params) []*stats.Table {
	cores := p.MaxCores
	if cores > 128 {
		cores = 128
	}
	counters := p.scaleInt(8192)
	epochs := 2
	t := &stats.Table{
		Title:   fmt.Sprintf("Fig 13c: refcount delayed dealloc (%d threads, %d counters)", cores, counters),
		Headers: []string{"updates/epoch", "COUP", "Refcache", "COUP/Refcache"},
	}
	for _, upe := range []int{10, 50, 100, 300, 1000} {
		upe := p.scaleInt(upe)
		wp := coup.WorkloadParams{Counters: counters, Iters: epochs, UpdatesPerEpoch: upe, Seed: 27}
		cycCoup, _ := measure(workload("refcount-delayed", wp), cores, "MEUSI", p)
		rc, _ := measure(workload("refcount-refcache", wp), cores, "MESI", p)
		work := float64(upe * epochs * cores)
		t.AddRow(fmt.Sprint(upe), stats.F(work/cycCoup*1000), stats.F(work/rc*1000), stats.F(rc/cycCoup))
	}
	t.AddNote("performance in updates per kilocycle (higher is better); paper reports COUP up to 2.3x over Refcache")
	return []*stats.Table{t}
}
