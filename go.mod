module repro

go 1.24

// In-module developer tools, runnable as `go tool <name>`. Both live in
// this repository, so pinning them here adds no external requirement and
// keeps offline builds working. External tools (staticcheck, govulncheck)
// are pinned in go.tools.mod — see that file for why they are split out.
tool (
	repro/cmd/benchjson
	repro/cmd/coupvet
)
