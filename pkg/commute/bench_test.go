package commute

import (
	"sync"
	"sync/atomic"
	"testing"
)

// The contended benchmarks compare each structure against the two
// conventional implementations the paper's baselines correspond to: a
// single atomic (MESI atomics: every update is an RMW on one shared
// line) and a mutex (the pessimistic software fallback). Run across
// processor counts with:
//
//	go test -bench 'Counter|Histogram|MinMax|RefCount' -cpu 1,2,4,8,16 ./pkg/commute/
//
// b.RunParallel distributes the loop over GOMAXPROCS goroutines, so the
// -cpu sweep is the software analogue of the core-count x-axis in
// Fig 10/Fig 13.

func BenchmarkCounterCommute(b *testing.B) {
	c := MustCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("count %d, want %d", c.Value(), b.N)
	}
}

func BenchmarkCounterAtomic(b *testing.B) {
	var c atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	if c.Load() != int64(b.N) {
		b.Fatalf("count %d, want %d", c.Load(), b.N)
	}
}

func BenchmarkCounterMutex(b *testing.B) {
	var mu sync.Mutex
	var c int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			c++
			mu.Unlock()
		}
	})
}

// benchBins is small enough that the atomic baseline's histogram fits in
// L1 — contention, not capacity, is what is being measured.
const benchBins = 64

func BenchmarkHistogramCommute(b *testing.B) {
	h := MustHistogram(benchBins)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Inc(i % benchBins)
			i++
		}
	})
}

func BenchmarkHistogramAtomic(b *testing.B) {
	counts := make([]atomic.Uint64, benchBins)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			counts[i%benchBins].Add(1)
			i++
		}
	})
}

func BenchmarkHistogramMutex(b *testing.B) {
	counts := make([]uint64, benchBins)
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			mu.Lock()
			counts[i%benchBins]++
			mu.Unlock()
		}
	})
}

func BenchmarkMinMaxCommute(b *testing.B) {
	m := MustMinMax()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			m.Observe(v % 1024)
			v++
		}
	})
}

func BenchmarkMinMaxAtomic(b *testing.B) {
	// CAS-loop max on a single shared word — the conventional pattern.
	var max atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			x := v % 1024
			for {
				cur := max.Load()
				if x <= cur || max.CompareAndSwap(cur, x) {
					break
				}
			}
			v++
		}
	})
}

func BenchmarkRefCountSharded(b *testing.B) {
	r := MustRefCount(1, RefSharded)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Inc()
			r.Dec()
		}
	})
}

func BenchmarkRefCountPlain(b *testing.B) {
	r := MustRefCount(1, RefPlain)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Inc()
			r.Dec()
		}
	})
}

// BenchmarkCounterRead prices the reduction: reads get more expensive as
// shards multiply, which is the trade Read pays for Apply's locality.
func BenchmarkCounterRead(b *testing.B) {
	c := MustCounter()
	c.Add(123)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += c.Value()
	}
	_ = sink
}

func BenchmarkHistogramSnapshot(b *testing.B) {
	h := MustHistogram(benchBins)
	h.Inc(1)
	buf := make([]uint64, benchBins)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = h.Snapshot(buf)
	}
}
