package commute

import (
	"math"
	"sync/atomic"

	"repro/internal/ops"
)

// minmaxShard tracks one shard's running extremes plus an observation
// count, padded to its own cache line.
type minmaxShard struct {
	n   atomic.Uint64
	min atomic.Int64
	max atomic.Int64
	_   [ops.LineBytes - 24]byte
}

// MinMax tracks the minimum and maximum of observed int64 values. Min and
// max are idempotent commutative ops — the degenerate case where COUP's
// update buffering shines brightest, because a value that does not improve
// the running extreme completes as a pure load with no write at all (the
// software image of a silent U hit).
type MinMax struct {
	mask   uint32
	shards []minmaxShard
}

// NewMinMax builds an empty tracker: shards start at the Min64/Max64
// identities, so untouched shards never win the fold.
func NewMinMax(opts ...Option) (*MinMax, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	n := c.nshards()
	m := &MinMax{mask: uint32(n - 1), shards: make([]minmaxShard, n)}
	for i := range m.shards {
		m.shards[i].min.Store(math.MaxInt64)
		m.shards[i].max.Store(math.MinInt64)
	}
	return m, nil
}

// MustMinMax is NewMinMax, panicking on bad options.
func MustMinMax(opts ...Option) *MinMax {
	m, err := NewMinMax(opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// Observe folds v into the calling goroutine's shard. The extremes are
// installed before the observation count, so a reader that sees n > 0 is
// guaranteed to see at least one real value, never a bare identity.
//
//coup:hotpath
func (m *MinMax) Observe(v int64) {
	t := tokenPool.Get().(*token)
	s := &m.shards[t.idx&m.mask]
	for {
		cur := s.min.Load()
		if v >= cur || s.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			break
		}
	}
	s.n.Add(1)
	tokenPool.Put(t)
}

// N reduces the observation count.
func (m *MinMax) N() uint64 {
	var n uint64
	for i := range m.shards {
		n += m.shards[i].n.Load()
	}
	return n
}

// Min reduces the shards' minima. ok is false when nothing has been
// observed.
func (m *MinMax) Min() (v int64, ok bool) {
	v = math.MaxInt64
	for i := range m.shards {
		if s := m.shards[i].min.Load(); s < v {
			v = s
		}
		ok = ok || m.shards[i].n.Load() > 0
	}
	return v, ok
}

// Max reduces the shards' maxima. ok is false when nothing has been
// observed.
func (m *MinMax) Max() (v int64, ok bool) {
	v = math.MinInt64
	for i := range m.shards {
		if s := m.shards[i].max.Load(); s > v {
			v = s
		}
		ok = ok || m.shards[i].n.Load() > 0
	}
	return v, ok
}

// Snapshot reduces the tracker into dst and returns dst[:3], allocating
// only when cap(dst) < 3 — the same reuse-a-buffer signature as
// Histogram.Snapshot. The layout is [n, min, max]; when n is 0 nothing
// has been observed and min/max hold the fold identities
// (math.MaxInt64 / math.MinInt64), exactly as Min and Max report ok=false.
func (m *MinMax) Snapshot(dst []int64) []int64 {
	if cap(dst) < 3 {
		dst = make([]int64, 3)
	}
	dst = dst[:3]
	var n uint64
	mn, mx := int64(math.MaxInt64), int64(math.MinInt64)
	for i := range m.shards {
		s := &m.shards[i]
		n += s.n.Load()
		if v := s.min.Load(); v < mn {
			mn = v
		}
		if v := s.max.Load(); v > mx {
			mx = v
		}
	}
	dst[0], dst[1], dst[2] = int64(n), mn, mx
	return dst
}

// Shards returns the shard count.
func (m *MinMax) Shards() int { return len(m.shards) }
