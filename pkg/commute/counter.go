package commute

// Counter is a sharded 64-bit counter: the software form of the paper's
// Fig 1 contended counter, with COUP's asymmetry — adds are the cheap
// update-only path (one uncontended atomic add on a private line), reads
// pay the reduction. Deltas may be negative; the count wraps modulo 2^64
// exactly like ops.AddI64.
type Counter struct {
	mask   uint32
	shards []padWord
}

// NewCounter builds a counter at zero.
func NewCounter(opts ...Option) (*Counter, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	n := c.nshards()
	return &Counter{mask: uint32(n - 1), shards: make([]padWord, n)}, nil
}

// MustCounter is NewCounter, panicking on bad options.
func MustCounter(opts ...Option) *Counter {
	c, err := NewCounter(opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Add folds delta into the calling goroutine's shard. Unlike the generic
// Sharded.Apply, addition needs no CAS loop: the shard add is a single
// atomic instruction, uncontended as long as the shard stays P-private.
//
//coup:hotpath
func (c *Counter) Add(delta int64) {
	t := tokenPool.Get().(*token)
	c.shards[t.idx&c.mask].v.Add(uint64(delta))
	tokenPool.Put(t)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Dec subtracts one.
func (c *Counter) Dec() { c.Add(-1) }

// Value reduces the shards and returns the count. It observes every Add
// that happened-before the call.
func (c *Counter) Value() int64 {
	var acc uint64
	for i := range c.shards {
		acc += c.shards[i].v.Load()
	}
	return int64(acc)
}

// Drain returns the count and resets the counter to zero; every
// concurrent Add lands in exactly one drain.
func (c *Counter) Drain() int64 {
	var acc uint64
	for i := range c.shards {
		acc += c.shards[i].v.Swap(0)
	}
	return int64(acc)
}

// Snapshot reduces the counter into dst and returns dst[:1], allocating
// only when cap(dst) < 1: the wire-format read-side helper, sharing
// Histogram.Snapshot's reuse-a-buffer signature. dst[0] is Value().
func (c *Counter) Snapshot(dst []int64) []int64 {
	if cap(dst) < 1 {
		dst = make([]int64, 1)
	}
	dst = dst[:1]
	dst[0] = c.Value()
	return dst
}

// Shards returns the shard count.
func (c *Counter) Shards() int { return len(c.shards) }
