package commute

import (
	"fmt"

	"repro/internal/ops"
)

// Op is a commutative monoid over 64-bit words: the software form of a
// COUP commutative-update type. Combine must be commutative and
// associative, and Identity must be its neutral element — the same laws
// the protocol needs to buffer updates privately and fold them in any
// order (paper, Sec 3.2). Implementations must be stateless and safe for
// concurrent use.
type Op interface {
	// Name is a short mnemonic for listings and benchmarks.
	Name() string
	// Identity returns the neutral element: Combine(Identity(), x) == x.
	// Shards are initialized to it on construction, mirroring lines
	// initialized to the identity on a transition into U.
	Identity() uint64
	// Combine merges two partial values. For sub-word ops the word packs
	// independent lanes, as in internal/ops.
	Combine(a, b uint64) uint64
}

// taxonomyOp adapts one internal/ops update type to the Op interface, so
// the simulator and the software runtime share one op table.
type taxonomyOp struct{ t ops.Type }

func (o taxonomyOp) Name() string               { return o.t.String() }
func (o taxonomyOp) Identity() uint64           { return o.t.Identity() }
func (o taxonomyOp) Combine(a, b uint64) uint64 { return ops.Apply(o.t, a, b) }

// The eight paper operation types (Sec 5.1), derived from the
// internal/ops taxonomy: integer adds at three widths, float adds at two,
// and the three bitwise ops.
var (
	Add16  Op = taxonomyOp{ops.AddI16}
	Add32  Op = taxonomyOp{ops.AddI32}
	Add64  Op = taxonomyOp{ops.AddI64}
	AddF32 Op = taxonomyOp{ops.AddF32}
	AddF64 Op = taxonomyOp{ops.AddF64}
	And64  Op = taxonomyOp{ops.And64}
	Or64   Op = taxonomyOp{ops.Or64}
	Xor64  Op = taxonomyOp{ops.Xor64}
)

// funcOp is a user- or library-defined op.
type funcOp struct {
	name     string
	identity uint64
	combine  func(a, b uint64) uint64
}

func (o funcOp) Name() string               { return o.name }
func (o funcOp) Identity() uint64           { return o.identity }
func (o funcOp) Combine(a, b uint64) uint64 { return o.combine(a, b) }

// NewOp defines a custom commutative op. The caller is responsible for the
// monoid laws; OpLawsOK spot-checks them and the package tests run it over
// every built-in.
func NewOp(name string, identity uint64, combine func(a, b uint64) uint64) Op {
	if combine == nil {
		panic("commute: NewOp with nil combine")
	}
	return funcOp{name: name, identity: identity, combine: combine}
}

// Min64 and Max64 extend the taxonomy with the idempotent ops MinMax
// uses. They interpret words as int64 (two's complement); their identities
// are the extreme values, so untouched shards never win a fold.
var (
	Min64 = NewOp("min64", 0x7FFFFFFFFFFFFFFF, func(a, b uint64) uint64 {
		if int64(a) < int64(b) {
			return a
		}
		return b
	})
	Max64 = NewOp("max64", 0x8000000000000000, func(a, b uint64) uint64 {
		if int64(a) > int64(b) {
			return a
		}
		return b
	})
)

// Ops returns the full built-in op table: the eight paper types from
// internal/ops plus the min/max extensions, in a stable order. It is the
// software counterpart of the directory's four-bit op-type table.
func Ops() []Op {
	out := make([]Op, 0, len(ops.UpdateTypes())+2)
	for _, t := range ops.UpdateTypes() {
		out = append(out, taxonomyOp{t})
	}
	return append(out, Min64, Max64)
}

// OpByName resolves a built-in op by its mnemonic (as printed by Name).
func OpByName(name string) (Op, error) {
	for _, o := range Ops() {
		if o.Name() == name {
			return o, nil
		}
	}
	return nil, fmt.Errorf("commute: unknown op %q", name)
}

// OpLawsOK spot-checks the monoid laws on sample words: identity on both
// sides and commutativity. It cannot prove associativity for float ops
// (the paper accepts FP addition despite rounding, Sec 4.1), so it checks
// exact laws only where they hold bit-for-bit.
func OpLawsOK(o Op, samples ...uint64) error {
	id := o.Identity()
	for _, x := range samples {
		if got := o.Combine(id, x); got != x {
			return fmt.Errorf("commute: op %s: Combine(identity, %#x) = %#x", o.Name(), x, got)
		}
		if got := o.Combine(x, id); got != x {
			return fmt.Errorf("commute: op %s: Combine(%#x, identity) = %#x", o.Name(), x, got)
		}
		for _, y := range samples {
			if ab, ba := o.Combine(x, y), o.Combine(y, x); ab != ba {
				return fmt.Errorf("commute: op %s: not commutative on %#x, %#x: %#x vs %#x",
					o.Name(), x, y, ab, ba)
			}
		}
	}
	return nil
}
