package commute

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"repro/internal/ops"
)

// stressDims picks goroutine and per-goroutine op counts: heavy enough to
// force shard contention and escalation races, small enough for -race CI.
func stressDims(t *testing.T) (goroutines, opsPer int) {
	if testing.Short() {
		return 8, 2_000
	}
	return 16, 20_000
}

func TestShardPadding(t *testing.T) {
	if s := unsafe.Sizeof(padWord{}); s != ops.LineBytes {
		t.Errorf("padWord is %d bytes, want %d", s, ops.LineBytes)
	}
	if s := unsafe.Sizeof(minmaxShard{}); s != ops.LineBytes {
		t.Errorf("minmaxShard is %d bytes, want %d", s, ops.LineBytes)
	}
	if s := unsafe.Sizeof(refShard{}); s != ops.LineBytes {
		t.Errorf("refShard is %d bytes, want %d", s, ops.LineBytes)
	}
}

func TestOpLaws(t *testing.T) {
	// Integer samples for the exact ops; the float ops get small-integer
	// float bit patterns in both lanes so addition is exact and the
	// identity laws hold bit-for-bit.
	intSamples := []uint64{0, 1, 2, 0xFFFF, 0x1234_5678_9ABC_DEF0, ^uint64(0)}
	f32 := func(lo, hi float32) uint64 {
		return uint64(*(*uint32)(unsafe.Pointer(&hi)))<<32 | uint64(*(*uint32)(unsafe.Pointer(&lo)))
	}
	f64 := func(v float64) uint64 { return *(*uint64)(unsafe.Pointer(&v)) }
	samples := map[string][]uint64{
		"addf32": {0, f32(1, 2), f32(3, 4), f32(100, 0.5)},
		"addf64": {0, f64(1), f64(2), f64(1024.25)},
	}
	for _, o := range Ops() {
		s, ok := samples[o.Name()]
		if !ok {
			s = intSamples
		}
		if err := OpLawsOK(o, s...); err != nil {
			t.Error(err)
		}
	}
}

func TestOpByName(t *testing.T) {
	for _, o := range Ops() {
		got, err := OpByName(o.Name())
		if err != nil || got.Name() != o.Name() {
			t.Errorf("OpByName(%q) = %v, %v", o.Name(), got, err)
		}
	}
	if _, err := OpByName("nope"); err == nil {
		t.Error("OpByName(nope) succeeded")
	}
}

func TestWithShards(t *testing.T) {
	if _, err := NewCounter(WithShards(0)); err == nil {
		t.Error("WithShards(0) accepted")
	}
	for n, want := range map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16} {
		c := MustCounter(WithShards(n))
		if c.Shards() != want {
			t.Errorf("WithShards(%d): %d shards, want %d", n, c.Shards(), want)
		}
	}
}

// parallel runs fn on n goroutines with a common start barrier.
func parallel(n int, fn func(g int)) {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			fn(g)
		}()
	}
	close(start)
	wg.Wait()
}

// TestShardedEquivalence: for every built-in op, a concurrent Apply storm
// must reduce to exactly the sequential fold of the same operand
// multiset — the defining property of a commutative monoid, and the
// correctness claim COUP's verification establishes for the protocol.
func TestShardedEquivalence(t *testing.T) {
	goroutines, opsPer := stressDims(t)
	for _, o := range Ops() {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			t.Parallel()
			// Operand streams: exact-integer floats for the FP adds (so the
			// fold is order-insensitive bit-for-bit), full-width randoms for
			// the bitwise and integer ops.
			operands := make([][]uint64, goroutines)
			for g := range operands {
				rng := rand.New(rand.NewPCG(uint64(g), 42))
				operands[g] = make([]uint64, opsPer)
				for i := range operands[g] {
					switch o.Name() {
					case "addf32":
						// Small enough that each lane's total stays under
						// 2^24, where float32 integers are exact.
						lo, hi := float32(rng.IntN(32)), float32(rng.IntN(32))
						operands[g][i] = uint64(*(*uint32)(unsafe.Pointer(&hi)))<<32 |
							uint64(*(*uint32)(unsafe.Pointer(&lo)))
					case "addf64":
						v := float64(rng.IntN(1024))
						operands[g][i] = *(*uint64)(unsafe.Pointer(&v))
					default:
						operands[g][i] = rng.Uint64()
					}
				}
			}
			want := o.Identity()
			for _, row := range operands {
				for _, v := range row {
					want = o.Combine(want, v)
				}
			}
			s := MustSharded(o, WithShards(8))
			parallel(goroutines, func(g int) {
				for _, v := range operands[g] {
					s.Apply(v)
				}
			})
			if got := s.Read(); got != want {
				t.Errorf("concurrent %s fold = %#x, sequential = %#x", o.Name(), got, want)
			}
		})
	}
}

func TestShardedDrainConcurrent(t *testing.T) {
	goroutines, opsPer := stressDims(t)
	s := MustSharded(Add64, WithShards(4))
	var drained atomic.Uint64
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				drained.Add(s.Drain())
			}
		}
	}()
	parallel(goroutines, func(g int) {
		for i := 0; i < opsPer; i++ {
			s.Apply(1)
		}
	})
	close(done)
	total := drained.Load() + s.Drain()
	if want := uint64(goroutines * opsPer); total != want {
		t.Errorf("drained total %d, want %d (updates lost or double-counted)", total, want)
	}
}

func TestCounterEquivalence(t *testing.T) {
	goroutines, opsPer := stressDims(t)
	c := MustCounter()
	var want atomic.Int64
	parallel(goroutines, func(g int) {
		rng := rand.New(rand.NewPCG(uint64(g), 7))
		var local int64
		for i := 0; i < opsPer; i++ {
			d := rng.Int64N(21) - 10 // [-10, 10]
			c.Add(d)
			local += d
		}
		want.Add(local)
	})
	if got := c.Value(); got != want.Load() {
		t.Errorf("Counter.Value = %d, want %d", got, want.Load())
	}
	if got := c.Drain(); got != want.Load() {
		t.Errorf("Counter.Drain = %d, want %d", got, want.Load())
	}
	if got := c.Value(); got != 0 {
		t.Errorf("Counter.Value after Drain = %d, want 0", got)
	}
}

func TestHistogramEquivalence(t *testing.T) {
	goroutines, opsPer := stressDims(t)
	const bins = 97 // deliberately not line-aligned
	h := MustHistogram(bins)
	want := make([]uint64, bins)
	var mu sync.Mutex
	parallel(goroutines, func(g int) {
		rng := rand.New(rand.NewPCG(uint64(g), 11))
		local := make([]uint64, bins)
		for i := 0; i < opsPer; i++ {
			b := rng.IntN(bins)
			d := rng.Uint64N(4) + 1
			h.Add(b, d)
			local[b] += d
		}
		mu.Lock()
		for b := range want {
			want[b] += local[b]
		}
		mu.Unlock()
	})
	got := h.Snapshot(nil)
	for b := range want {
		if got[b] != want[b] {
			t.Fatalf("bin %d: concurrent %d, sequential %d", b, got[b], want[b])
		}
		if one := h.Bin(b); one != want[b] {
			t.Fatalf("Bin(%d) = %d, want %d", b, one, want[b])
		}
	}
}

func TestMinMaxEquivalence(t *testing.T) {
	goroutines, opsPer := stressDims(t)
	m := MustMinMax()
	if _, ok := m.Min(); ok {
		t.Error("empty MinMax reports an observation")
	}
	wantMin := make([]int64, goroutines)
	wantMax := make([]int64, goroutines)
	parallel(goroutines, func(g int) {
		rng := rand.New(rand.NewPCG(uint64(g), 13))
		lo, hi := int64(1<<62), int64(-1<<62)
		for i := 0; i < opsPer; i++ {
			v := rng.Int64() - (1 << 62)
			m.Observe(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		wantMin[g], wantMax[g] = lo, hi
	})
	lo, hi := wantMin[0], wantMax[0]
	for g := 1; g < goroutines; g++ {
		if wantMin[g] < lo {
			lo = wantMin[g]
		}
		if wantMax[g] > hi {
			hi = wantMax[g]
		}
	}
	if v, ok := m.Min(); !ok || v != lo {
		t.Errorf("Min = %d,%v want %d,true", v, ok, lo)
	}
	if v, ok := m.Max(); !ok || v != hi {
		t.Errorf("Max = %d,%v want %d,true", v, ok, hi)
	}
	if n := m.N(); n != uint64(goroutines*opsPer) {
		t.Errorf("N = %d, want %d", n, goroutines*opsPer)
	}
}

// TestCustomOpGCD exercises a user-defined op end to end: gcd is a
// commutative, associative monoid with identity 0.
func TestCustomOpGCD(t *testing.T) {
	gcd := NewOp("gcd", 0, func(a, b uint64) uint64 {
		for b != 0 {
			a, b = b, a%b
		}
		return a
	})
	if err := OpLawsOK(gcd, 0, 6, 10, 15, 1024); err != nil {
		t.Fatal(err)
	}
	s := MustSharded(gcd, WithShards(4))
	const k = 12
	parallel(8, func(g int) {
		for i := 1; i <= 100; i++ {
			s.Apply(uint64(i) * k * uint64(g+1))
		}
	})
	if got := s.Read(); got != k {
		t.Errorf("gcd fold = %d, want %d", got, k)
	}
}

// refcountContract runs the reference-counting usage contract: every
// goroutine starts holding one reference (initial = goroutines), briefly
// acquires and releases extra references, then drops its own. The count
// never touches zero before the last release.
func refcountContract(t *testing.T, r *RefCount, goroutines, opsPer int) int64 {
	var zeroReports atomic.Int64
	parallel(goroutines, func(g int) {
		for i := 0; i < opsPer; i++ {
			r.Inc()
			if r.Dec() {
				zeroReports.Add(1)
			}
		}
		if r.Dec() {
			zeroReports.Add(1)
		}
	})
	if got := r.Read(); got != 0 {
		t.Errorf("final count %d, want 0", got)
	}
	return zeroReports.Load()
}

func TestRefCountPlainExactZero(t *testing.T) {
	goroutines, opsPer := stressDims(t)
	r := MustRefCount(int64(goroutines), RefPlain)
	if !r.Escalated() {
		t.Error("plain refcount not in exact mode")
	}
	if got := refcountContract(t, r, goroutines, opsPer); got != 1 {
		t.Errorf("plain: %d zero reports, want exactly 1", got)
	}
}

func TestRefCountShardedZeroAtMostOnce(t *testing.T) {
	goroutines, opsPer := stressDims(t)
	r := MustRefCount(int64(goroutines), RefSharded)
	got := refcountContract(t, r, goroutines, opsPer)
	if got > 1 {
		t.Errorf("sharded: %d zero reports, want at most 1", got)
	}
	// Detection may have been deferred by cross-shard cancellation; the
	// escalated fold must then confirm zero exactly.
	if v := r.Escalate(); v != 0 {
		t.Errorf("Escalate = %d, want 0", v)
	}
	if !r.Escalated() {
		t.Error("not escalated after Escalate")
	}
}

// TestRefCountSingleShardExactZero: with one shard the SNZI-style
// indicator is exact, so the zero must be detected without any explicit
// escalation — and the detection itself must have escalated the counter.
func TestRefCountSingleShardExactZero(t *testing.T) {
	goroutines, opsPer := stressDims(t)
	r := MustRefCount(int64(goroutines), RefSharded, WithShards(1))
	if got := refcountContract(t, r, goroutines, opsPer); got != 1 {
		t.Errorf("single-shard: %d zero reports, want exactly 1", got)
	}
	if !r.Escalated() {
		t.Error("zero detection did not escalate")
	}
}

// TestRefCountEscalateMidFlight folds the shards while updates are in
// flight: no delta may be lost or double-counted across the switch.
func TestRefCountEscalateMidFlight(t *testing.T) {
	goroutines, opsPer := stressDims(t)
	r := MustRefCount(1, RefSharded)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Escalate() // idempotent; first call wins
			}
		}
	}()
	const extra = 3
	parallel(goroutines, func(g int) {
		for i := 0; i < opsPer; i++ {
			r.Inc()
			r.Dec()
		}
		for i := 0; i < extra; i++ {
			r.Inc()
		}
	})
	close(done)
	want := int64(1 + goroutines*extra)
	if got := r.Read(); got != want {
		t.Errorf("count after racing escalation = %d, want %d", got, want)
	}
	if got := r.Escalate(); got != want {
		t.Errorf("Escalate = %d, want %d", got, want)
	}
}

func TestRefCountReadAndAdd(t *testing.T) {
	for _, style := range []RefStyle{RefPlain, RefSharded} {
		r := MustRefCount(5, style)
		r.Add(10)
		r.Add(-3)
		if got := r.Read(); got != 12 {
			t.Errorf("%v: Read = %d, want 12", style, got)
		}
	}
	if _, err := NewRefCount(-1, RefPlain); err == nil {
		t.Error("negative initial refcount accepted")
	}
}

func TestShardedRejectsNilOp(t *testing.T) {
	if _, err := NewSharded(nil); err == nil {
		t.Error("NewSharded(nil) accepted")
	}
}

// TestSnapshotHelpers: every structure's Snapshot reduces into a reused
// buffer with one consistent contract — fill the prefix, allocate only
// when the buffer is too small, observe all prior updates.
func TestSnapshotHelpers(t *testing.T) {
	c := MustCounter()
	c.Add(41)
	c.Inc()
	if got := c.Snapshot(nil); len(got) != 1 || got[0] != 42 {
		t.Errorf("Counter.Snapshot(nil) = %v, want [42]", got)
	}
	buf := make([]int64, 8)
	if got := c.Snapshot(buf); len(got) != 1 || got[0] != 42 || &got[0] != &buf[0] {
		t.Errorf("Counter.Snapshot did not reuse the buffer: %v", got)
	}

	m := MustMinMax()
	if got := m.Snapshot(buf); got[0] != 0 {
		t.Errorf("empty MinMax.Snapshot n = %d, want 0", got[0])
	}
	m.Observe(-3)
	m.Observe(7)
	m.Observe(5)
	if got := m.Snapshot(buf); len(got) != 3 || got[0] != 3 || got[1] != -3 || got[2] != 7 {
		t.Errorf("MinMax.Snapshot = %v, want [3 -3 7]", got)
	}

	r := MustRefCount(2, RefSharded)
	r.Inc()
	if got := r.Snapshot(buf); len(got) != 2 || got[0] != 3 || got[1] != 0 {
		t.Errorf("RefCount.Snapshot = %v, want [3 0]", got)
	}
	r.Escalate()
	if got := r.Snapshot(buf); got[0] != 3 || got[1] != 1 {
		t.Errorf("escalated RefCount.Snapshot = %v, want [3 1]", got)
	}
}

// TestSnapshotHelpersNoAlloc pins the no-alloc contract: with a large
// enough destination buffer, no Snapshot allocates.
func TestSnapshotHelpersNoAlloc(t *testing.T) {
	c := MustCounter()
	c.Inc()
	h := MustHistogram(64)
	h.Inc(3)
	m := MustMinMax()
	m.Observe(9)
	r := MustRefCount(1, RefSharded)
	i64 := make([]int64, 8)
	u64 := make([]uint64, 64)
	for name, fn := range map[string]func(){
		"Counter.Snapshot":   func() { c.Snapshot(i64) },
		"Histogram.Snapshot": func() { h.Snapshot(u64) },
		"MinMax.Snapshot":    func() { m.Snapshot(i64) },
		"RefCount.Snapshot":  func() { r.Snapshot(i64) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.0f per call with a sized buffer", name, allocs)
		}
	}
}
