package commute

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ops"
)

// padWord is one shard slot: a 64-bit word alone on its cache line, so
// shards never false-share — the software requirement matching the
// protocol's one-line-per-U-copy granularity.
type padWord struct {
	v atomic.Uint64
	_ [ops.LineBytes - 8]byte
}

// token carries a goroutine's preferred shard index between calls. Tokens
// live in a sync.Pool, whose per-P caching is what biases a goroutine
// toward "its" shard: the pool hands back the slot last used on the
// current P, so updates from one P keep hitting one shard — the software
// image of the line staying in that core's private cache in U state. The
// authoritative data lives in the shard arrays, never in the token, so a
// token dropped by the garbage collector loses nothing: the next Apply
// just draws a fresh index.
type token struct{ idx uint32 }

var tokenPool = sync.Pool{New: func() any { return &token{idx: rand.Uint32()} }}

// config carries the construction knobs shared by every structure.
type config struct{ shards int }

// Option configures a structure at construction.
type Option func(*config) error

// WithShards sets the shard count (rounded up to a power of two, >= 1).
// The default is the next power of two >= GOMAXPROCS at construction
// time. More shards cut update contention; fewer shrink every read's
// reduction — the paper's Sec 3.3 trade.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("commute: shard count must be >= 1, got %d", n)
		}
		c.shards = n
		return nil
	}
}

// nshards resolves the configured shard count to a power of two.
func (c config) nshards() int {
	n := c.shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > 1 && n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	return n
}

func buildConfig(opts []Option) (config, error) {
	var c config
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&c); err != nil {
			return config{}, err
		}
	}
	return c, nil
}

// Sharded is the core cell: one logical 64-bit word under a commutative
// monoid, physically replicated across cache-line-padded shards. Apply is
// the update-only fast path (it never reads the logical value, just as a
// U-state core never has read permission); Read folds every shard, the
// merge-on-read that mirrors the protocol's full reduction on a GetS.
type Sharded struct {
	op     Op
	id     uint64
	mask   uint32
	shards []padWord
}

// NewSharded builds a sharded cell under op with every shard initialized
// to op's identity.
func NewSharded(op Op, opts ...Option) (*Sharded, error) {
	if op == nil {
		return nil, fmt.Errorf("commute: NewSharded with nil op")
	}
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	n := c.nshards()
	s := &Sharded{op: op, id: op.Identity(), mask: uint32(n - 1), shards: make([]padWord, n)}
	for i := range s.shards {
		s.shards[i].v.Store(s.id)
	}
	return s, nil
}

// MustSharded is NewSharded, panicking on bad options (for package-level
// variables).
func MustSharded(op Op, opts ...Option) *Sharded {
	s, err := NewSharded(op, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Op returns the cell's operation.
func (s *Sharded) Op() Op { return s.op }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Apply folds v into the calling goroutine's shard: the update-only fast
// path. When the combined value equals the shard's current value (an
// idempotent op re-observing old news) it completes without writing — the
// software image of a silent hit on a line already in U.
//
//coup:hotpath
func (s *Sharded) Apply(v uint64) {
	t := tokenPool.Get().(*token)
	i := t.idx & s.mask
	for {
		w := &s.shards[i]
		old := w.v.Load()
		nw := s.op.Combine(old, v)
		if nw == old || w.v.CompareAndSwap(old, nw) {
			break
		}
		// CAS lost: another goroutine shares this shard. Re-home the token
		// on a fresh shard instead of spinning on the contended line.
		t.idx = rand.Uint32()
		i = t.idx & s.mask
	}
	tokenPool.Put(t)
}

// Read folds every shard under the op and returns the logical value: the
// full reduction a GetS triggers in hardware (Fig 5). It observes every
// Apply that happened-before the call; updates racing with the fold may
// or may not be included, the usual parallel-reduction guarantee.
func (s *Sharded) Read() uint64 {
	acc := s.id
	for i := range s.shards {
		acc = s.op.Combine(acc, s.shards[i].v.Load())
	}
	return acc
}

// Drain folds every shard into the returned value and resets the shards
// to the identity, like the U->S downgrade that leaves sharers with clean
// copies. Concurrent Applies remain safe: each shard is atomically swapped
// out, so every update lands in exactly one drain or the next. Callers
// that need an exact total must quiesce writers first, as with Read.
func (s *Sharded) Drain() uint64 {
	acc := s.id
	for i := range s.shards {
		acc = s.op.Combine(acc, s.shards[i].v.Swap(s.id))
	}
	return acc
}
