package commute

import (
	"fmt"
	"sync/atomic"

	"repro/internal/ops"
)

// histShard is one private copy of the bucket vector. Buckets within a
// shard share lines (they share a P, so that is locality, not false
// sharing); the slice length is rounded up to whole cache lines so
// neighbouring shards' vectors never share a line.
type histShard struct {
	counts []atomic.Uint64
}

// Histogram is a sharded bucket-count vector: the hist family of the
// paper (Fig 2, Fig 10a, Fig 12) as a library structure. Add is a vector
// element's update-only fast path; Snapshot is the reduction that
// privatization schemes run after the loop and COUP runs on demand.
type Histogram struct {
	bins   int
	mask   uint32
	shards []histShard
}

// NewHistogram builds a histogram with bins zeroed buckets.
func NewHistogram(bins int, opts ...Option) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("commute: histogram needs >= 1 bin, got %d", bins)
	}
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	n := c.nshards()
	h := &Histogram{bins: bins, mask: uint32(n - 1), shards: make([]histShard, n)}
	const wordsPerLine = ops.LineBytes / 8
	padded := (bins + wordsPerLine - 1) / wordsPerLine * wordsPerLine
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, padded)
	}
	return h, nil
}

// MustHistogram is NewHistogram, panicking on errors.
func MustHistogram(bins int, opts ...Option) *Histogram {
	h, err := NewHistogram(bins, opts...)
	if err != nil {
		panic(err)
	}
	return h
}

// Bins returns the bucket count.
func (h *Histogram) Bins() int { return h.bins }

// Shards returns the shard count.
func (h *Histogram) Shards() int { return len(h.shards) }

// Add folds delta into bucket bin on the calling goroutine's shard.
//
//coup:hotpath
func (h *Histogram) Add(bin int, delta uint64) {
	t := tokenPool.Get().(*token)
	h.shards[t.idx&h.mask].counts[bin].Add(delta)
	tokenPool.Put(t)
}

// Inc adds one to bucket bin.
func (h *Histogram) Inc(bin int) { h.Add(bin, 1) }

// Bin reduces one bucket across the shards. It is a partial reduction:
// only the requested element is folded, the way a word-granular reduction
// unit would serve a single-word read.
func (h *Histogram) Bin(bin int) uint64 {
	var acc uint64
	for i := range h.shards {
		acc += h.shards[i].counts[bin].Load()
	}
	return acc
}

// Snapshot reduces every bucket into dst and returns it, allocating when
// dst is too small. It observes every Add that happened-before the call.
func (h *Histogram) Snapshot(dst []uint64) []uint64 {
	if cap(dst) < h.bins {
		dst = make([]uint64, h.bins)
	}
	dst = dst[:h.bins]
	for i := range dst {
		dst[i] = 0
	}
	for s := range h.shards {
		counts := h.shards[s].counts
		for i := 0; i < h.bins; i++ {
			dst[i] += counts[i].Load()
		}
	}
	return dst
}
