// Package commute is a software Coup runtime: concurrent data structures
// that buffer commutative updates in cache-line-padded private shards and
// fold them with a reduction only when someone reads — the same
// privatize-then-merge strategy the COUP coherence protocol (Zhang,
// Harrison & Sanchez, MICRO 2015) implements in hardware with its
// update-only U state, and that this repository otherwise only simulates.
//
// Where pkg/coup measures the protocol on a simulated machine, pkg/commute
// delivers the same win on the real one: updates touch a shard biased to
// the calling goroutine's processor, so concurrent writers stop fighting
// over one cache line, and the cost of merging is paid by readers, who are
// rare in update-heavy phases. The cmd/commutebench CLI and the "figsw"
// experiment in the harness cross-validate the two: measured software
// scaling next to the simulator's MESI-vs-MEUSI curves on the same
// workload shapes.
//
// # Protocol concepts, library concepts
//
// Every mechanism here is the software image of a protocol mechanism:
//
//	coherence protocol (paper)          pkg/commute
//	----------------------------------  ----------------------------------
//	U state: private, update-only copy  private shard: padded per-P slot
//	line initialized to identity on     shard initialized to Op.Identity
//	  transition into U (Sec 3.1.2)       at construction and after drains
//	commutative-update instruction      Apply/Add/Observe: update-only
//	  (no read permission needed)         fast path, never reads the total
//	reduction unit folding U copies     Op.Combine folding shards
//	GetS triggering a full reduction,   Read/Value/Snapshot: merge-on-read
//	  U->S downgrade (Fig 5 flows)        over every shard
//	single-sharer partial reduction     uncontended shard: the fold
//	  (Sec 3.3)                           degenerates to one load
//	op-type table per line (Sec 3.2)    Op, derived from the internal/ops
//	                                      taxonomy plus library extensions
//	SNZI / escalation for zero checks   RefCount: nonzero-shard indicator
//	  (Sec 5.4)                           plus Escalate() to an exact mode
//
// # Structures
//
// Four structures cover the paper's workload families, plus the generic
// cell they are built from:
//
//   - Sharded: one logical 64-bit word under any commutative monoid Op —
//     the software U-state cell everything else specializes.
//   - Counter: sharded add (the Fig 1 contended counter).
//   - Histogram: vector add over buckets (the Fig 2/Fig 10 hist family).
//   - MinMax: idempotent min/max — updates that already hold are pure
//     loads, the software image of a silent U hit.
//   - RefCount: reference counting with zero-detection escalation,
//     mirroring internal/workloads/refcount.go's plain vs SNZI variants.
//
// All structures are safe for concurrent use by any number of goroutines.
// Updates are linearizable per shard; Read folds the shards and is exact
// whenever it does not race with in-flight updates (e.g. at any quiescent
// point, or under external synchronization), which is the same guarantee a
// parallel reduction gives. Counter.Value and Histogram.Snapshot observe
// every update that happened-before the call.
//
// # Read-side snapshot helpers
//
// Every structure exposes a Snapshot method with one signature shape:
// reduce the structure's full state into a caller-owned buffer, allocate
// only when the buffer is too small, return the filled prefix. These are
// the wire-format read path — a server (pkg/coupd) snapshotting thousands
// of structures per second reuses one buffer and never allocates:
//
//	Histogram.Snapshot(dst []uint64) []uint64  // one element per bin
//	Counter.Snapshot(dst []int64) []int64      // [value]
//	MinMax.Snapshot(dst []int64) []int64       // [n, min, max]
//	RefCount.Snapshot(dst []int64) []int64     // [count, escalated 0/1]
//
// Each Snapshot observes every update that happened-before the call, the
// same guarantee as the structure's scalar readers.
//
// # Choosing shard counts
//
// Structures default to the next power of two >= GOMAXPROCS shards, the
// software analogue of one U copy per private cache. WithShards overrides
// it: fewer shards shrink the merge cost of reads, more shards reduce
// update contention — exactly the paper's reduction-cost vs
// update-locality trade (Sec 3.3).
package commute
