package commute

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ops"
)

// RefStyle selects a RefCount implementation, mirroring the Sec 5.4
// variants in internal/workloads/refcount.go.
type RefStyle uint8

const (
	// RefSharded buffers increments and decrements in private shards and
	// keeps an SNZI-style nonzero-shard indicator for cheap zero checks;
	// Escalate folds the shards into one exact central counter for the
	// object's endgame. This is the library form of the paper's
	// COUP-vs-SNZI comparison: updates commute and stay private, reads
	// (zero checks) are served by an indicator instead of a full fold.
	RefSharded RefStyle = iota
	// RefPlain keeps one central counter from the start: every operation
	// is an atomic RMW on one shared line and Dec's zero check is exact
	// and immediate — the paper's XADD baseline.
	RefPlain
)

func (s RefStyle) String() string {
	if s == RefPlain {
		return "plain"
	}
	return "sharded"
}

// refShard is one private slice of the count. The shard mutex orders the
// count update with the indicator update and with escalation; it is
// uncontended as long as the shard stays P-private, so the fast path is
// one cheap lock plus two plain stores.
type refShard struct {
	mu        sync.Mutex
	n         int64
	escalated bool
	_         [ops.LineBytes - 24]byte
}

// RefCount is a reference counter with zero-detection escalation. While
// an object is hot, increments and decrements are commutative updates
// buffered in private shards (RefSharded) and zero detection runs through
// a conservative SNZI-style indicator: the root counts shards holding a
// nonzero value, so indicator == 0 proves the count is zero under the
// usual contract (a goroutine only decrements references it holds, and
// never resurrects from zero). When surpluses and deficits sit on
// different shards the indicator stays nonzero and detection is deferred
// — call Escalate (the percpu-ref "kill" moment, when the last known
// handle is dropped) to fold the shards into one exact central counter,
// after which Dec detects zero immediately.
type RefCount struct {
	style   RefStyle
	mask    uint32
	mode    atomic.Uint32 // 0 = sharded fast path, 1 = escalated
	central atomic.Int64  // authoritative once escalated
	root    atomic.Int64  // SNZI-style: number of shards with n != 0
	zeroed  atomic.Bool   // dedupes the sharded-mode zero report
	big     sync.Mutex    // serializes escalation and exact folds
	shards  []refShard
}

// NewRefCount builds a counter holding initial references (>= 0).
func NewRefCount(initial int64, style RefStyle, opts ...Option) (*RefCount, error) {
	if initial < 0 {
		return nil, fmt.Errorf("commute: negative initial refcount %d", initial)
	}
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	n := c.nshards()
	r := &RefCount{style: style, mask: uint32(n - 1), shards: make([]refShard, n)}
	if style == RefPlain {
		r.central.Store(initial)
		r.mode.Store(1)
		for i := range r.shards {
			r.shards[i].escalated = true
		}
	} else if initial != 0 {
		r.shards[0].n = initial
		r.root.Store(1)
	}
	return r, nil
}

// MustRefCount is NewRefCount, panicking on errors.
func MustRefCount(initial int64, style RefStyle, opts ...Option) *RefCount {
	r, err := NewRefCount(initial, style, opts...)
	if err != nil {
		panic(err)
	}
	return r
}

// Style returns the implementation variant.
func (r *RefCount) Style() RefStyle { return r.style }

// Escalated reports whether the counter has switched to the exact central
// mode (always true for RefPlain).
func (r *RefCount) Escalated() bool { return r.mode.Load() == 1 }

// Inc adds one reference.
func (r *RefCount) Inc() { r.add(1) }

// add applies delta on the fast path. In sharded mode the shard count and
// the indicator move together under the shard lock; escalation is checked
// under the same lock, so a delta lands either in the shard (and is later
// folded) or in the central counter, never both and never neither.
//
//coup:hotpath
func (r *RefCount) add(delta int64) {
	if r.mode.Load() == 1 {
		r.central.Add(delta)
		return
	}
	t := tokenPool.Get().(*token)
	s := &r.shards[t.idx&r.mask]
	s.mu.Lock()
	if s.escalated {
		s.mu.Unlock()
		tokenPool.Put(t)
		r.central.Add(delta)
		return
	}
	old := s.n
	s.n = old + delta
	if (old == 0) != (s.n == 0) {
		if old == 0 {
			r.root.Add(1)
		} else {
			r.root.Add(-1)
		}
	}
	s.mu.Unlock()
	tokenPool.Put(t)
}

// Dec drops one reference and reports whether the count is now known to
// be zero. RefPlain reports every touch of zero, exactly and immediately.
// RefSharded reports the object's death at most once: a true return is
// always correct; before escalation the check runs through the
// conservative indicator (the counter self-escalates when the indicator
// proves zero), and cross-shard cancellation can defer detection until
// Escalate is called, after which Dec is exact.
func (r *RefCount) Dec() bool {
	if r.style == RefPlain {
		// Plain counters report every touch of zero, like the XADD baseline.
		return r.central.Add(-1) == 0
	}
	if r.mode.Load() == 1 {
		return r.central.Add(-1) == 0 && !r.zeroed.Swap(true)
	}
	r.add(-1)
	if r.mode.Load() == 1 {
		// Raced with an escalation; the fold saw our delta.
		return r.central.Load() == 0 && !r.zeroed.Swap(true)
	}
	if r.root.Load() != 0 {
		return false
	}
	// Indicator hints every shard is individually zero. Confirm exactly;
	// only a confirmed zero escalates (the object is dead), so a transient
	// indicator read racing an in-flight transition cannot demote a live
	// counter off its sharded fast path.
	return r.zeroCheck() && !r.zeroed.Swap(true)
}

// zeroCheck verifies the indicator's zero hint exactly: it sums the
// shards and the central counter with every shard lock held. A confirmed
// zero folds and escalates (like escalate); a refuted hint unlocks
// without changing modes.
func (r *RefCount) zeroCheck() bool {
	r.big.Lock()
	defer r.big.Unlock()
	if r.mode.Load() == 1 {
		return r.central.Load() == 0
	}
	// Holding all shard locks at once is deadlock-free: the fast paths
	// only ever hold one shard lock and acquire nothing else under it.
	sum := r.central.Load()
	for i := range r.shards {
		r.shards[i].mu.Lock()
		sum += r.shards[i].n
	}
	if sum != 0 {
		for i := range r.shards {
			r.shards[i].mu.Unlock()
		}
		return false
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.escalated = true
		if s.n != 0 {
			r.central.Add(s.n)
			r.root.Add(-1)
			s.n = 0
		}
		s.mu.Unlock()
	}
	r.mode.Store(1)
	return true
}

// Add adjusts the count by delta (for batched handoffs). Positive or
// negative; zero detection follows Dec's rules only for Dec, so batched
// decrements should finish with Dec if the caller needs the zero event.
func (r *RefCount) Add(delta int64) { r.add(delta) }

// Read folds the shards and the central counter into the exact current
// count, under the same quiescence caveat as every reduction here.
func (r *RefCount) Read() int64 {
	if r.mode.Load() == 1 {
		return r.central.Load()
	}
	r.big.Lock()
	defer r.big.Unlock()
	acc := r.central.Load()
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		acc += s.n
		s.mu.Unlock()
	}
	return acc
}

// Snapshot reduces the counter into dst and returns dst[:2], allocating
// only when cap(dst) < 2 — the same reuse-a-buffer signature as
// Histogram.Snapshot. The layout is [count, escalated]: dst[0] is Read()
// and dst[1] is 1 once the counter has switched to exact central mode.
func (r *RefCount) Snapshot(dst []int64) []int64 {
	if cap(dst) < 2 {
		dst = make([]int64, 2)
	}
	dst = dst[:2]
	dst[0] = r.Read()
	dst[1] = 0
	if r.Escalated() {
		dst[1] = 1
	}
	return dst
}

// Escalate folds every shard into the central counter and switches the
// counter to exact mode permanently — the percpu-ref kill: call it when
// the object leaves its hot phase and exact zero detection starts to
// matter. It returns the count at the fold. Escalating twice is a no-op
// returning the current count.
func (r *RefCount) Escalate() int64 { return r.escalate() }

func (r *RefCount) escalate() int64 {
	r.big.Lock()
	defer r.big.Unlock()
	if r.mode.Load() == 1 {
		return r.central.Load()
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.escalated = true
		r.central.Add(s.n)
		if s.n != 0 {
			r.root.Add(-1)
		}
		s.n = 0
		s.mu.Unlock()
	}
	r.mode.Store(1)
	return r.central.Load()
}
