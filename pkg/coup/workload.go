package coup

import (
	"fmt"

	"repro/internal/workloads"
)

// Workload is one benchmark instance: it sizes and initializes simulated
// memory, provides the per-thread kernel, and validates the final memory
// image against a sequential reference. It is the simulator-facing
// interface from internal/workloads, re-exported so registered factories
// and Run share one type.
type Workload = workloads.Workload

// WorkloadParams carries the size and shape knobs a registered workload
// factory understands (pixels, bins, graph scale, ...). Zero fields take
// per-workload defaults; each workload's Description names the fields it
// reads.
type WorkloadParams = workloads.Params

// WorkloadFactory builds a fresh workload instance from run parameters.
// Workloads are single-run, so every simulation gets a new instance.
type WorkloadFactory func(p WorkloadParams) (Workload, error)

// WorkloadInfo describes one registered workload.
type WorkloadInfo struct {
	// Name is the registry key, e.g. "hist".
	Name string
	// Description is a one-line summary naming the paper table/figure the
	// workload reproduces and the WorkloadParams fields it uses.
	Description string

	factory workloads.Factory
}

// New builds a fresh instance of the workload.
func (w WorkloadInfo) New(p WorkloadParams) (Workload, error) { return w.factory(p) }

// RegisterWorkload adds a named workload factory to the registry, making
// it selectable by name in Run and the command-line tools. It returns
// ErrDuplicateName (wrapped) if the name is already taken
// (case-insensitively).
func RegisterWorkload(name, description string, f WorkloadFactory) error {
	if f == nil {
		return fmt.Errorf("coup: workload %q: nil factory", name)
	}
	if err := workloads.Register(name, description, workloads.Factory(f)); err != nil {
		// Classify after the fact so concurrent registrations of the same
		// name still surface the documented sentinel: the registry only
		// grows, so if the name resolves now, a duplicate is why we lost.
		if _, taken := workloads.ByName(name); taken {
			return fmt.Errorf("coup: workload %q: %w", name, ErrDuplicateName)
		}
		return fmt.Errorf("coup: %w", err)
	}
	return nil
}

// Workloads returns every registered workload, sorted by name. The
// built-ins are the Table 2 applications and the Sec 5.4
// reference-counting family, self-registered by internal/workloads.
func Workloads() []WorkloadInfo {
	all := workloads.All()
	out := make([]WorkloadInfo, len(all))
	for i, in := range all {
		out[i] = WorkloadInfo{Name: in.Name, Description: in.Desc, factory: in.New}
	}
	return out
}

// WorkloadNames returns the sorted names of every registered workload.
func WorkloadNames() []string { return workloads.Names() }

// LookupWorkload resolves a workload by name, case-insensitively. Unknown
// names return an error wrapping ErrUnknownWorkload that lists the
// registered names.
func LookupWorkload(name string) (WorkloadInfo, error) {
	in, ok := workloads.ByName(name)
	if !ok {
		return WorkloadInfo{}, unknownNameError(ErrUnknownWorkload, name, WorkloadNames())
	}
	return WorkloadInfo{Name: in.Name, Description: in.Desc, factory: in.New}, nil
}

// NewWorkload builds a fresh instance of the named workload.
func NewWorkload(name string, p WorkloadParams) (Workload, error) {
	in, err := LookupWorkload(name)
	if err != nil {
		return nil, err
	}
	return in.New(p)
}
