package coup

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestProtocolRegistryHasPaperProtocols(t *testing.T) {
	for _, name := range []string{"MSI", "MESI", "MUSI", "MEUSI", "RMO"} {
		p, err := LookupProtocol(name)
		if err != nil {
			t.Fatalf("LookupProtocol(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("LookupProtocol(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := LookupProtocol("meusi"); err != nil || p.Name() != "MEUSI" {
		t.Errorf("case-insensitive lookup failed: %v, %v", p, err)
	}
	names := ProtocolNames()
	if len(names) < 5 {
		t.Fatalf("ProtocolNames() = %v, want at least the five paper protocols", names)
	}
}

func TestProtocolSemantics(t *testing.T) {
	for _, tc := range []struct {
		name        string
		hasU, remot bool
	}{
		{"MESI", false, false},
		{"MSI", false, false},
		{"MUSI", true, false},
		{"MEUSI", true, false},
		{"RMO", false, true},
	} {
		p, err := LookupProtocol(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if p.HasUpdateState() != tc.hasU || p.RemoteUpdates() != tc.remot {
			t.Errorf("%s: HasUpdateState=%v RemoteUpdates=%v, want %v %v",
				tc.name, p.HasUpdateState(), p.RemoteUpdates(), tc.hasU, tc.remot)
		}
	}
}

func TestLookupProtocolUnknownListsNames(t *testing.T) {
	_, err := LookupProtocol("MOESI")
	if !errors.Is(err, ErrUnknownProtocol) {
		t.Fatalf("err = %v, want ErrUnknownProtocol", err)
	}
	for _, name := range []string{"MESI", "MEUSI", "RMO"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered protocol %s", err, name)
		}
	}
}

func TestRegisterProtocolDuplicateAndVariants(t *testing.T) {
	// Duplicate of a built-in, case-insensitively.
	if _, err := RegisterProtocol(ProtocolSpec{Name: "mesi"}); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate registration err = %v, want ErrDuplicateName", err)
	}
	// A new variant plugs in and becomes selectable by name.
	p, err := RegisterProtocol(ProtocolSpec{
		Name:        "MUSI-remote",
		Description: "test variant: MSI states with remote execution",
		Base:        BaseMSI,
		Remote:      true,
	})
	if err != nil {
		t.Fatalf("RegisterProtocol: %v", err)
	}
	if p.HasUpdateState() || !p.RemoteUpdates() {
		t.Errorf("variant axes wrong: hasU=%v remote=%v", p.HasUpdateState(), p.RemoteUpdates())
	}
	if _, err := LookupProtocol("musi-REMOTE"); err != nil {
		t.Errorf("registered variant not found: %v", err)
	}
	// Inconsistent axes: remote execution needs a U-less base.
	if _, err := RegisterProtocol(ProtocolSpec{Name: "bad", Base: BaseMEUSI, Remote: true}); err == nil {
		t.Error("Remote+MEUSI registered, want error")
	}
}

func TestWorkloadRegistryBuiltins(t *testing.T) {
	want := []string{
		"hist", "hist-priv-core", "hist-priv-socket", "spmv", "pgrank",
		"bfs", "fluid", "refcount", "refcount-snzi", "counter",
		"refcount-delayed", "refcount-refcache",
	}
	for _, name := range want {
		if _, err := LookupWorkload(name); err != nil {
			t.Errorf("built-in workload %q not registered: %v", name, err)
		}
	}
	if _, err := LookupWorkload("HIST"); err != nil {
		t.Errorf("case-insensitive workload lookup failed: %v", err)
	}
}

func TestLookupWorkloadUnknownListsNames(t *testing.T) {
	_, err := LookupWorkload("nbody")
	if !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("err = %v, want ErrUnknownWorkload", err)
	}
	if !strings.Contains(err.Error(), "hist") || !strings.Contains(err.Error(), "bfs") {
		t.Errorf("error %q does not list registered workloads", err)
	}
}

func TestRegisterWorkloadDuplicate(t *testing.T) {
	err := RegisterWorkload("Hist", "dup", func(p WorkloadParams) (Workload, error) { return nil, nil })
	if !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate workload registration err = %v, want ErrDuplicateName", err)
	}
	if err := RegisterWorkload("", "empty", func(p WorkloadParams) (Workload, error) { return nil, nil }); err == nil {
		t.Error("empty-name registration succeeded, want error")
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want error
	}{
		{"zero cores", []Option{WithCores(0)}, ErrInvalidOption},
		{"negative cores", []Option{WithCores(-4)}, ErrInvalidOption},
		{"non-pow2 cores per chip", []Option{WithCoresPerChip(12)}, ErrInvalidOption},
		{"non-pow2 L3 banks", []Option{WithL3Banks(6)}, ErrInvalidOption},
		{"non-pow2 L4 banks", []Option{WithL4Banks(3)}, ErrInvalidOption},
		{"non-pow2 channels", []Option{WithMemChannels(5)}, ErrInvalidOption},
		{"zero reduction throughput", []Option{WithReductionALU(0, 3)}, ErrInvalidOption},
		{"tiny L1", []Option{WithL1(64, 8)}, ErrInvalidOption},
		{"unknown protocol", []Option{WithProtocol("MOESI")}, ErrUnknownProtocol},
		{"conflicting cores", []Option{WithCores(16), WithCores(32)}, ErrConflictingOptions},
		{"conflicting protocols", []Option{WithProtocol("MESI"), WithProtocol("MEUSI")}, ErrConflictingOptions},
		{"too many cores", []Option{WithCores(100_000)}, ErrInvalidOption},
	}
	for _, tc := range cases {
		if _, err := NewMachine(tc.opts...); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Repeating the same value is not a conflict; non-power-of-two total
	// core counts are fine (the paper measures 96).
	if _, err := NewMachine(WithCores(96), WithCores(96), WithProtocol("mesi"), WithProtocol("MESI")); err != nil {
		t.Errorf("repeated identical options: %v", err)
	}
}

func TestNewMachineDefaultsAndKernel(t *testing.T) {
	m, err := NewMachine(WithCores(8), WithProtocol("MEUSI"), WithL3PerChip(20<<20))
	if err != nil {
		t.Fatal(err)
	}
	if m.Cores() != 8 || m.Protocol().Name() != "MEUSI" {
		t.Fatalf("machine = %d cores %s", m.Cores(), m.Protocol().Name())
	}
	ctr := m.Alloc(64, 64)
	st := m.Run(func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.CommAdd64(ctr, 1)
		}
	})
	if got := m.ReadWord64(ctr); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
	if st.Cycles == 0 || st.CommUpdates != 800 {
		t.Errorf("stats: cycles=%d commUpdates=%d", st.Cycles, st.CommUpdates)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// TestRunGoldenPath is the smoke test of the facade: a tiny hist under
// MESI and MEUSI, checking validation runs and COUP helps.
func TestRunGoldenPath(t *testing.T) {
	params := WorkloadParams{Size: 8000, Bins: 128, Seed: 7}
	run := func(proto string) Stats {
		st, err := Run("hist",
			WithCores(16),
			WithProtocol(proto),
			WithWorkloadParams(params),
		)
		if err != nil {
			t.Fatalf("Run(hist, %s): %v", proto, err)
		}
		return st
	}
	mesi := run("MESI")
	meusi := run("MEUSI")
	if mesi.Workload != "hist" || mesi.Protocol != "MESI" || mesi.Cores != 16 {
		t.Errorf("stats identity wrong: %+v", mesi)
	}
	if mesi.Atomics == 0 {
		t.Error("MESI run should execute commutative updates as atomics")
	}
	if meusi.ULocalHits == 0 {
		t.Error("MEUSI run should satisfy updates in the private cache")
	}
	if meusi.Cycles >= mesi.Cycles {
		t.Errorf("COUP (%d cycles) should beat MESI atomics (%d cycles) on contended hist",
			meusi.Cycles, mesi.Cycles)
	}
}

func TestRunUnknownNamesAndBadParams(t *testing.T) {
	if _, err := Run("nope"); !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("err = %v, want ErrUnknownWorkload", err)
	}
	if _, err := Run("hist", WithProtocol("nope")); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("err = %v, want ErrUnknownProtocol", err)
	}
	if _, err := Run("hist", WithWorkloadParams(WorkloadParams{Size: -1})); err == nil {
		t.Error("negative workload size accepted, want error")
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	st, err := Run("counter",
		WithCores(4),
		WithProtocol("MEUSI"),
		WithWorkloadParams(WorkloadParams{Size: 50}),
	)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := st.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != st {
		t.Errorf("JSON round trip changed stats:\n got %+v\nwant %+v", back, st)
	}
	for _, field := range []string{`"protocol"`, `"cycles"`, `"amat_breakdown"`, `"off_chip_bytes"`} {
		if !strings.Contains(string(blob), field) {
			t.Errorf("JSON missing %s:\n%s", field, blob)
		}
	}
}

// TestRegisteredVariantRuns drives a workload under a protocol registered
// through the public API — the engine never heard of it at compile time.
func TestRegisteredVariantRuns(t *testing.T) {
	if _, err := LookupProtocol("MESI-flat"); err == nil {
		t.Skip("variant already registered by another test run")
	}
	p, err := RegisterProtocol(ProtocolSpec{
		Name:        "MESI-flat",
		Description: "test variant: plain MESI registered at runtime",
		Base:        BaseMESI,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run("counter",
		WithCores(4),
		WithProtocol(p.Name()),
		WithWorkloadParams(WorkloadParams{Size: 50}),
	)
	if err != nil {
		t.Fatalf("run under registered variant: %v", err)
	}
	if st.Protocol != "MESI-flat" || st.Atomics == 0 {
		t.Errorf("variant run stats: %+v", st)
	}
}
