package coup

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// ShardSpecs returns the k-th of n shards of specs under the stable
// round-robin partition: spec i belongs to shard i mod n (k is
// zero-based, 0 <= k < n). Round-robin — rather than contiguous blocks —
// is the contract because experiment grids enumerate related points
// consecutively (a core sweep, the reps of one point), so striding
// balances work across shards even when cost grows along the list.
//
// The assignment is a pure function of list position: every (k, n)
// partition of the same spec list covers it exactly once, re-enumeration
// is stable, and the mapping never changes across releases
// (TestShardSpecsGolden pins it). Anything downstream — result-store
// keys, merge coverage — may therefore assume shard membership is
// reproducible from the spec list alone.
func ShardSpecs(specs []RunSpec, k, n int) ([]RunSpec, error) {
	if err := validShard(k, n); err != nil {
		return nil, err
	}
	var out []RunSpec
	for i := k; i < len(specs); i += n {
		out = append(out, specs[i])
	}
	return out, nil
}

// ShardIndices is ShardSpecs on positions: the indices of specs (of the
// given total count) that shard k of n owns, in increasing order.
func ShardIndices(total, k, n int) ([]int, error) {
	if err := validShard(k, n); err != nil {
		return nil, err
	}
	var out []int
	for i := k; i < total; i += n {
		out = append(out, i)
	}
	return out, nil
}

func validShard(k, n int) error {
	if n < 1 || k < 0 || k >= n {
		return fmt.Errorf("coup: %w: shard %d of %d (need 0 <= k < n)", ErrInvalidShard, k, n)
	}
	return nil
}

// ParseShard parses the command-line shard syntax "k/n" with k counted
// from 1 (so "-shard 1/4" … "-shard 4/4" name the four quarters) and
// returns the zero-based shard index and the shard count.
func ParseShard(s string) (k, n int, err error) {
	bad := func() (int, int, error) {
		return 0, 0, fmt.Errorf("coup: %w: %q (want k/n with 1 <= k <= n)", ErrInvalidShard, s)
	}
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return bad()
	}
	k1, err1 := strconv.Atoi(strings.TrimSpace(a))
	n, err2 := strconv.Atoi(strings.TrimSpace(b))
	if err1 != nil || err2 != nil || k1 < 1 || n < 1 || k1 > n {
		return bad()
	}
	return k1 - 1, n, nil
}

// SpecKey returns the spec's durable identity for result stores and
// merge coverage: an explicit RunSpec.Key when set, otherwise a content
// hash over everything that determines the run's results — the resolved
// workload name, the protocol name, the full machine configuration and
// the workload parameters. Two specs that would produce identical stats
// hash identically no matter how their option lists are spelled, and
// any change to a knob changes the key, so a store can never serve
// stale results to a reconfigured sweep.
//
// Specs built around a Make closure have no hashable content; they need
// an explicit Key to participate in store-backed sweeps (ErrSpecUnkeyed
// otherwise). Plain Sweep/Run never needs keys.
func SpecKey(s RunSpec) (string, error) {
	if s.Key != "" {
		return s.Key, nil
	}
	if s.Make != nil {
		return "", fmt.Errorf("coup: %w: RunSpec with a Make closure needs an explicit Key", ErrSpecUnkeyed)
	}
	if s.Workload == "" {
		return "", fmt.Errorf("coup: %w: RunSpec needs Workload or Make", ErrInvalidOption)
	}
	info, err := LookupWorkload(s.Workload)
	if err != nil {
		return "", err
	}
	b, err := newBuilder(s.Options)
	if err != nil {
		return "", err
	}
	// Hash the protocol by registry name, not numeric id: ids depend on
	// registration order for plugged-in protocols, names do not.
	cfg := b.cfg
	proto := cfg.Protocol.Spec().Name
	cfg.Protocol = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%+v|%+v", info.Name, proto, cfg, b.wp)
	return fmt.Sprintf("%s-%016x", info.Name, h.Sum64()), nil
}

// SpecKeys returns one key per spec (SpecKey), disambiguating repeats:
// the j-th occurrence of the same content (j >= 2) gets a "#j" ordinal
// suffix, so a list that deliberately measures one configuration twice
// still yields unique keys and merge coverage stays exact. Key order
// follows list order, making the keys as stable as the enumeration.
func SpecKeys(specs []RunSpec) ([]string, error) {
	out := make([]string, len(specs))
	seen := make(map[string]int, len(specs))
	for i, s := range specs {
		k, err := SpecKey(s)
		if err != nil {
			return nil, fmt.Errorf("spec %d: %w", i, err)
		}
		seen[k]++
		if j := seen[k]; j > 1 {
			k = fmt.Sprintf("%s#%d", k, j)
		}
		out[i] = k
	}
	return out, nil
}
