package coup

import (
	"fmt"
	"testing"
)

// benchSpecs is a fig13-shaped batch of repeated small simulations: one
// machine shape, many seeds — the workload the per-worker machine arenas
// exist for.
func benchSpecs(cores, n int) []RunSpec {
	specs := make([]RunSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, RunSpec{
			Workload: "hist",
			Options: []Option{
				WithCores(cores),
				WithProtocol("MEUSI"),
				WithSeed(uint64(i + 1)),
				WithWorkloadParams(WorkloadParams{Size: 400, Bins: 128}),
			},
		})
	}
	return specs
}

// BenchmarkSweepSteadyState measures the sweep engine's per-spec cost on
// repeated small machines, with the per-worker arenas on and off. ns/op
// is one whole sweep (12 specs); allocs/op shows the arena removing the
// machine-sized share. CI tracks the arena=on numbers in BENCH_baseline.
func BenchmarkSweepSteadyState(b *testing.B) {
	for _, arena := range []bool{true, false} {
		b.Run(fmt.Sprintf("arena=%v", arena), func(b *testing.B) {
			specs := benchSpecs(16, 12)
			s, err := NewSweeper(WithParallelism(1), WithMachineArena(arena))
			if err != nil {
				b.Fatal(err)
			}
			warm := s.Run(specs) // warm pools, surface spec errors
			for i, r := range warm {
				if r.Err != nil {
					b.Fatalf("spec %d: %v", i, r.Err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(specs)
			}
			b.StopTimer()
			specsPerSec := float64(b.N) * float64(len(specs)) / b.Elapsed().Seconds()
			b.ReportMetric(specsPerSec, "specs/s")
		})
	}
}
