package coup

import (
	"testing"
)

// benchSpecs is a fig13-shaped batch of repeated small simulations: one
// machine shape, many seeds — the workload the per-worker machine arenas
// exist for.
func benchSpecs(cores, n int) []RunSpec {
	specs := make([]RunSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, RunSpec{
			Workload: "hist",
			Options: []Option{
				WithCores(cores),
				WithProtocol("MEUSI"),
				WithSeed(uint64(i + 1)),
				WithWorkloadParams(WorkloadParams{Size: 400, Bins: 128}),
			},
		})
	}
	return specs
}

// BenchmarkSweepSteadyState measures the sweep engine's per-spec cost on
// repeated small machines: per-worker arenas on, capped (arena=capped
// bounds each arena to one pooled machine, exercising the LRU-eviction
// bookkeeping while the single shape here still always hits warm), and
// off. ns/op is one whole sweep (12 specs); allocs/op shows the arena
// removing the machine-sized share. CI tracks all three in
// BENCH_baseline.
func BenchmarkSweepSteadyState(b *testing.B) {
	for _, bc := range []struct {
		name string
		opts []SweepOption
	}{
		{"arena=true", []SweepOption{WithMachineArena(true)}},
		{"arena=capped", []SweepOption{WithMachineArena(true), WithArenaCap(1)}},
		{"arena=false", []SweepOption{WithMachineArena(false)}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			specs := benchSpecs(16, 12)
			s, err := NewSweeper(append([]SweepOption{WithParallelism(1)}, bc.opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			warm := s.Run(specs) // warm pools, surface spec errors
			for i, r := range warm {
				if r.Err != nil {
					b.Fatalf("spec %d: %v", i, r.Err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(specs)
			}
			b.StopTimer()
			specsPerSec := float64(b.N) * float64(len(specs)) / b.Elapsed().Seconds()
			b.ReportMetric(specsPerSec, "specs/s")
		})
	}
}
