package coup

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// TestShardSpecsCoverExactlyOnce is the partition law: for every n, the
// n shards of a spec list cover it exactly once, in order, and the
// assignment is stable under re-enumeration.
func TestShardSpecsCoverExactlyOnce(t *testing.T) {
	specs := make([]RunSpec, 13)
	for i := range specs {
		specs[i] = RunSpec{Key: fmt.Sprintf("s%d", i)}
	}
	for n := 1; n <= len(specs)+2; n++ {
		counts := make(map[string]int)
		for k := 0; k < n; k++ {
			first, err := ShardSpecs(specs, k, n)
			if err != nil {
				t.Fatalf("ShardSpecs(%d, %d): %v", k, n, err)
			}
			again, _ := ShardSpecs(specs, k, n)
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("shard %d/%d unstable under re-enumeration", k, n)
			}
			for _, s := range first {
				counts[s.Key]++
			}
		}
		for _, s := range specs {
			if counts[s.Key] != 1 {
				t.Errorf("n=%d: spec %s covered %d times, want exactly once", n, s.Key, counts[s.Key])
			}
		}
	}
}

// TestShardSpecsGolden pins the round-robin assignment itself, so shard
// membership can never silently drift across releases: stores recorded
// by one build must stay mergeable with sweeps enumerated by the next.
func TestShardSpecsGolden(t *testing.T) {
	specs := make([]RunSpec, 10)
	for i := range specs {
		specs[i] = RunSpec{Key: fmt.Sprintf("s%d", i)}
	}
	golden := map[string][]string{
		"0/3": {"s0", "s3", "s6", "s9"},
		"1/3": {"s1", "s4", "s7"},
		"2/3": {"s2", "s5", "s8"},
		"0/4": {"s0", "s4", "s8"},
		"3/4": {"s3", "s7"},
		"0/1": {"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"},
	}
	for coord, want := range golden {
		var k, n int
		fmt.Sscanf(coord, "%d/%d", &k, &n)
		got, err := ShardSpecs(specs, k, n)
		if err != nil {
			t.Fatalf("%s: %v", coord, err)
		}
		keys := make([]string, len(got))
		for i, s := range got {
			keys[i] = s.Key
		}
		if !reflect.DeepEqual(keys, want) {
			t.Errorf("shard %s: got %v, want %v (round-robin assignment drifted)", coord, keys, want)
		}
	}
}

// TestShardValidation covers the typed rejection of bad coordinates.
func TestShardValidation(t *testing.T) {
	for _, bad := range [][2]int{{-1, 4}, {4, 4}, {0, 0}, {1, -2}} {
		if _, err := ShardSpecs(nil, bad[0], bad[1]); !errors.Is(err, ErrInvalidShard) {
			t.Errorf("ShardSpecs(%d, %d): err=%v, want ErrInvalidShard", bad[0], bad[1], err)
		}
		if _, err := ShardIndices(10, bad[0], bad[1]); !errors.Is(err, ErrInvalidShard) {
			t.Errorf("ShardIndices(%d, %d): err=%v, want ErrInvalidShard", bad[0], bad[1], err)
		}
	}
}

// TestParseShard covers the "k/n" flag syntax (1-based on the command
// line, zero-based internally).
func TestParseShard(t *testing.T) {
	k, n, err := ParseShard("1/4")
	if err != nil || k != 0 || n != 4 {
		t.Errorf("ParseShard(1/4) = (%d, %d, %v), want (0, 4, nil)", k, n, err)
	}
	k, n, err = ParseShard("4/4")
	if err != nil || k != 3 || n != 4 {
		t.Errorf("ParseShard(4/4) = (%d, %d, %v), want (3, 4, nil)", k, n, err)
	}
	for _, bad := range []string{"", "3", "0/4", "5/4", "a/b", "1/0", "-1/4", "1/4/2"} {
		if _, _, err := ParseShard(bad); !errors.Is(err, ErrInvalidShard) {
			t.Errorf("ParseShard(%q): err=%v, want ErrInvalidShard", bad, err)
		}
	}
}

// TestSpecKeyContent pins the content-hash contract: keys depend on what
// the spec runs, not how it is spelled; any knob change changes the key.
func TestSpecKeyContent(t *testing.T) {
	base := RunSpec{
		Workload: "hist",
		Options: []Option{
			WithCores(4),
			WithProtocol("MEUSI"),
			WithSeed(3),
			WithWorkloadParams(WorkloadParams{Size: 100, Bins: 16}),
		},
	}
	k1, err := SpecKey(base)
	if err != nil {
		t.Fatal(err)
	}
	// Same content, different spelling: reordered options, case-folded
	// names.
	respelled := RunSpec{
		Workload: "HIST",
		Options: []Option{
			WithWorkloadParams(WorkloadParams{Size: 100, Bins: 16}),
			WithSeed(3),
			WithProtocol("meusi"),
			WithCores(4),
		},
	}
	if k2, _ := SpecKey(respelled); k2 != k1 {
		t.Errorf("respelled spec hashes differently: %s vs %s", k1, k2)
	}
	// Any knob change must change the key.
	variants := map[string]RunSpec{
		"cores": {Workload: "hist", Options: []Option{WithCores(8), WithProtocol("MEUSI"), WithSeed(3), WithWorkloadParams(WorkloadParams{Size: 100, Bins: 16})}},
		"proto": {Workload: "hist", Options: []Option{WithCores(4), WithProtocol("MESI"), WithSeed(3), WithWorkloadParams(WorkloadParams{Size: 100, Bins: 16})}},
		"seed":  {Workload: "hist", Options: []Option{WithCores(4), WithProtocol("MEUSI"), WithSeed(4), WithWorkloadParams(WorkloadParams{Size: 100, Bins: 16})}},
		"wp":    {Workload: "hist", Options: []Option{WithCores(4), WithProtocol("MEUSI"), WithSeed(3), WithWorkloadParams(WorkloadParams{Size: 100, Bins: 32})}},
		"wl":    {Workload: "counter", Options: []Option{WithCores(4), WithProtocol("MEUSI"), WithSeed(3), WithWorkloadParams(WorkloadParams{Size: 100, Bins: 16})}},
	}
	for what, s := range variants {
		kv, err := SpecKey(s)
		if err != nil {
			t.Fatalf("%s variant: %v", what, err)
		}
		if kv == k1 {
			t.Errorf("changing %s did not change the key %s", what, k1)
		}
	}
	// Explicit keys win; Make specs without one are typed errors.
	if k, _ := SpecKey(RunSpec{Key: "custom", Make: func() (Workload, error) { return nil, nil }}); k != "custom" {
		t.Errorf("explicit key not honored: got %s", k)
	}
	if _, err := SpecKey(RunSpec{Make: func() (Workload, error) { return nil, nil }}); !errors.Is(err, ErrSpecUnkeyed) {
		t.Errorf("keyless Make spec: err=%v, want ErrSpecUnkeyed", err)
	}
}

// TestSpecKeysOrdinals pins the duplicate handling: a list measuring one
// configuration twice still gets unique keys, with stable ordinals.
func TestSpecKeysOrdinals(t *testing.T) {
	s := counterSpec(2, 1)
	keys, err := SpecKeys([]RunSpec{s, counterSpec(4, 1), s, s})
	if err != nil {
		t.Fatal(err)
	}
	if keys[0] == keys[1] {
		t.Errorf("distinct specs share key %s", keys[0])
	}
	if keys[2] != keys[0]+"#2" || keys[3] != keys[0]+"#3" {
		t.Errorf("duplicate ordinals wrong: %v", keys)
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %s in %v", k, keys)
		}
		seen[k] = true
	}
}
