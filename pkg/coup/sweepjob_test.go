package coup

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/pkg/obs"
)

// jobSpecs is a small two-grid workload mix exercising distinct shapes
// and a deliberate duplicate (the same content twice, keyed by ordinal).
func jobSpecs() [][]RunSpec {
	g1 := []RunSpec{
		counterSpec(1, 1),
		counterSpec(2, 1),
		counterSpec(2, 2),
		counterSpec(4, 1),
		counterSpec(2, 1), // duplicate of specs[1], distinct ordinal key
	}
	g2 := []RunSpec{
		{Workload: "hist", Options: []Option{WithCores(2), WithProtocol("MESI"), WithSeed(1), WithWorkloadParams(WorkloadParams{Size: 80, Bins: 16})}},
		{Workload: "hist", Options: []Option{WithCores(2), WithProtocol("MEUSI"), WithSeed(1), WithWorkloadParams(WorkloadParams{Size: 80, Bins: 16})}},
	}
	return [][]RunSpec{g1, g2}
}

func newTestSweeper(t *testing.T, opts ...SweepOption) *Sweeper {
	t.Helper()
	s, err := NewSweeper(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runJob drives job through the whole two-grid "experiment" under ns,
// returning per-grid results and completeness.
func runJob(t *testing.T, job *SweepJob, s *Sweeper, ns string) ([][]SweepResult, bool) {
	t.Helper()
	if err := job.SetNamespace(ns); err != nil {
		t.Fatal(err)
	}
	var out [][]SweepResult
	all := true
	for _, specs := range jobSpecs() {
		res, complete, err := job.Sweep(s, specs)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
		all = all && complete
	}
	if err := job.Close(); err != nil {
		t.Fatal(err)
	}
	return out, all
}

// TestSweepJobShardMergeIdentical is the tentpole's acceptance shape in
// miniature: specs split across shard jobs, run in separate job
// instances, merged — and the merged results are identical to a plain
// single-process sweep, grid by grid, spec by spec.
func TestSweepJobShardMergeIdentical(t *testing.T) {
	s := newTestSweeper(t)
	var ref [][]SweepResult
	for _, specs := range jobSpecs() {
		ref = append(ref, s.Run(specs))
	}

	dir := t.TempDir()
	const n = 3
	for k := 0; k < n; k++ {
		job, err := NewShardJob(dir, "fp", k, n)
		if err != nil {
			t.Fatal(err)
		}
		_, complete := runJob(t, job, s, "mini")
		if complete {
			t.Errorf("shard %d of %d reported complete", k+1, n)
		}
	}

	merge := NewMergeJob(dir, "fp")
	got, complete := runJob(t, merge, s, "mini")
	if !complete {
		t.Fatal("merge reported incomplete")
	}
	for g := range ref {
		for i := range ref[g] {
			if got[g][i].Stats != ref[g][i].Stats || got[g][i].Err != nil != (ref[g][i].Err != nil) {
				t.Errorf("grid %d spec %d: merged result differs from single-process:\nmerged %+v\nsingle %+v",
					g, i, got[g][i], ref[g][i])
			}
		}
	}
	if rep := merge.Report(); rep.Computed != 0 || rep.Reused != 7 {
		t.Errorf("merge report %+v, want 0 computed / 7 reused", rep)
	}
}

// TestSweepJobResume pins resume: a second run of the same shard over
// the same stores recomputes nothing.
func TestSweepJobResume(t *testing.T) {
	s := newTestSweeper(t)
	dir := t.TempDir()
	job1, _ := NewShardJob(dir, "fp", 0, 2)
	runJob(t, job1, s, "mini")
	first := job1.Report()
	if first.Computed == 0 || first.Reused != 0 {
		t.Fatalf("first run report %+v, want all computed", first)
	}

	job2, _ := NewShardJob(dir, "fp", 0, 2)
	res, _ := runJob(t, job2, s, "mini")
	second := job2.Report()
	if second.Computed != 0 || second.Reused != first.Computed {
		t.Errorf("resume report %+v, want 0 computed / %d reused", second, first.Computed)
	}
	// Resumed results match a fresh sweep of the shard's own specs.
	for g, specs := range jobSpecs() {
		fresh := s.Run(specs)
		for i := range specs {
			if i%2 != 0 {
				continue // shard 0 of 2 owns even indices
			}
			if res[g][i].Stats != fresh[i].Stats {
				t.Errorf("grid %d spec %d: resumed stats differ from fresh run", g, i)
			}
		}
	}
}

// TestSweepJobCrashResume is the torn-store integration path: kill a
// shard mid-write (the store ends in a torn record), resume it, and the
// merged results must be identical to an uninterrupted run's.
func TestSweepJobCrashResume(t *testing.T) {
	s := newTestSweeper(t)

	// Uninterrupted reference: both shards complete, then merge.
	refDir := t.TempDir()
	for k := 0; k < 2; k++ {
		job, _ := NewShardJob(refDir, "fp", k, 2)
		runJob(t, job, s, "mini")
	}
	refMerge := NewMergeJob(refDir, "fp")
	want, _ := runJob(t, refMerge, s, "mini")

	// Interrupted run: shard 0 completes, then its store loses bytes from
	// the tail — the last record torn mid-line, as a kill during an
	// unsynced append would leave it.
	dir := t.TempDir()
	for k := 0; k < 2; k++ {
		job, _ := NewShardJob(dir, "fp", k, 2)
		runJob(t, job, s, "mini")
	}
	store := filepath.Join(dir, "mini.shard-1-of-2.json")
	data, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(data) - 17 // mid-way through the final record's line
	if err := os.WriteFile(store, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	// A merge over the torn store must fail coverage, naming the victim.
	merge := NewMergeJob(dir, "fp")
	if err := merge.SetNamespace("mini"); err != nil {
		t.Fatal(err)
	}
	sawCoverage := false
	for _, specs := range jobSpecs() {
		if _, _, err := merge.Sweep(s, specs); err != nil {
			var cov *CoverageError
			if !errors.As(err, &cov) {
				t.Fatalf("torn merge error %v, want *CoverageError", err)
			}
			if len(cov.Missing) == 0 {
				t.Fatal("coverage error lists no missing specs")
			}
			sawCoverage = true
		}
	}
	if !sawCoverage {
		t.Fatal("merge over a torn store raised no coverage error")
	}

	// Resume shard 0: only the torn spec is recomputed.
	resume, _ := NewShardJob(dir, "fp", 0, 2)
	runJob(t, resume, s, "mini")
	if rep := resume.Report(); rep.Computed != 1 {
		t.Errorf("resume recomputed %d specs, want exactly the 1 torn one (report %+v)", rep.Computed, rep)
	}

	// And the merge now matches the uninterrupted reference exactly.
	merge2 := NewMergeJob(dir, "fp")
	got, complete := runJob(t, merge2, s, "mini")
	if !complete {
		t.Fatal("post-resume merge incomplete")
	}
	for g := range want {
		for i := range want[g] {
			if got[g][i].Stats != want[g][i].Stats {
				t.Errorf("grid %d spec %d: post-resume merge differs from uninterrupted run", g, i)
			}
		}
	}
}

// TestSweepJobCoverageDuplicates pins the duplicate arm of coverage:
// stores from overlapping shard layouts in one directory are a typed
// error listing the twice-recorded keys.
func TestSweepJobCoverageDuplicates(t *testing.T) {
	s := newTestSweeper(t)
	dir := t.TempDir()
	for k := 0; k < 2; k++ {
		job, _ := NewShardJob(dir, "fp", k, 2)
		runJob(t, job, s, "mini")
	}
	// Forge an overlapping store: shard 2's keys re-recorded under a
	// fabricated extra store for the same layout.
	_, recs, err := ReadResultStore(filepath.Join(dir, "mini.shard-2-of-2.json"))
	if err != nil {
		t.Fatal(err)
	}
	forged, err := OpenResultStore(filepath.Join(dir, "mini.shard-1-of-2.extra.json"), StoreHeader{
		Namespace: "mini", Fingerprint: "fp", Shard: 0, ShardCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		forged.Put(rec)
	}
	forged.Close()

	merge := NewMergeJob(dir, "fp")
	if err := merge.SetNamespace("mini"); err != nil {
		t.Fatal(err)
	}
	var cov *CoverageError
	for _, specs := range jobSpecs() {
		if _, _, err := merge.Sweep(s, specs); err != nil && errors.As(err, &cov) {
			break
		}
	}
	if cov == nil || len(cov.Duplicate) == 0 {
		t.Fatalf("overlapping stores: no duplicate coverage error (got %v)", cov)
	}
	if !strings.Contains(cov.Error(), "duplicated") {
		t.Errorf("coverage error %q does not name duplicates", cov.Error())
	}
}

// TestSweepJobFingerprintGuard pins the parameterization guard: stores
// recorded under one fingerprint neither resume nor merge under another.
func TestSweepJobFingerprintGuard(t *testing.T) {
	s := newTestSweeper(t)
	dir := t.TempDir()
	job, _ := NewShardJob(dir, "fp-scale1", 0, 1)
	runJob(t, job, s, "mini")

	other, _ := NewShardJob(dir, "fp-scale2", 0, 1)
	if err := other.SetNamespace("mini"); !errors.Is(err, ErrStoreMismatch) {
		t.Errorf("resume across fingerprints: err=%v, want ErrStoreMismatch", err)
	}
	merge := NewMergeJob(dir, "fp-scale2")
	if err := merge.SetNamespace("mini"); !errors.Is(err, ErrStoreMismatch) {
		t.Errorf("merge across fingerprints: err=%v, want ErrStoreMismatch", err)
	}
}

// TestSweepPanickedSpecIsDone pins the done-with-error contract end to
// end: a panicking spec counts in coup_sweep_specs_total exactly like a
// clean one, lands in the result store as done (Panicked set), resume
// does not re-run it, and the merge coverage path surfaces it in the
// report instead of failing or silently zeroing.
func TestSweepPanickedSpecIsDone(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestSweeper(t, WithSweepMetrics(reg))
	specs := []RunSpec{
		counterSpec(2, 1),
		{Key: "boom", Make: func() (Workload, error) { panic("kernel bug") }},
		counterSpec(2, 2),
	}
	dir := t.TempDir()
	job, _ := NewShardJob(dir, "fp", 0, 1)
	if err := job.SetNamespace("panics"); err != nil {
		t.Fatal(err)
	}
	res, complete, err := job.Sweep(s, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Error("1-of-1 shard should be complete")
	}
	if !res[1].Panicked || res[1].Err == nil {
		t.Fatalf("spec 1 result %+v, want recovered panic", res[1])
	}
	if got := reg.Counter("coup_sweep_specs_total", "").Value(); got != int64(len(specs)) {
		t.Errorf("coup_sweep_specs_total=%d, want %d (panicked spec must count as done)", got, len(specs))
	}
	rep := job.Report()
	if len(rep.Panicked) != 1 || !strings.Contains(rep.Panicked[0], "boom") {
		t.Errorf("report %+v does not surface the panicked spec", rep)
	}
	job.Close()

	// The store agrees with the counter: all three specs recorded.
	h, recs, err := ReadResultStore(storePath(dir, "panics", 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if h.Namespace != "panics" || len(recs) != len(specs) {
		t.Fatalf("store holds %d records under %q, want %d under panics", len(recs), h.Namespace, len(specs))
	}

	// Resume: the panicked spec is done — nothing recomputes.
	resume, _ := NewShardJob(dir, "fp", 0, 1)
	if err := resume.SetNamespace("panics"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := resume.Sweep(s, specs); err != nil {
		t.Fatal(err)
	}
	if rep := resume.Report(); rep.Computed != 0 || len(rep.Panicked) != 1 {
		t.Errorf("resume report %+v, want 0 computed and the panic surfaced again", rep)
	}
	resume.Close()

	// Merge: coverage passes (done-with-error counts), report surfaces it.
	merge := NewMergeJob(dir, "fp")
	if err := merge.SetNamespace("panics"); err != nil {
		t.Fatal(err)
	}
	if _, complete, err := merge.Sweep(s, specs); err != nil || !complete {
		t.Fatalf("merge over panicked spec: complete=%v err=%v, want clean coverage", complete, err)
	}
	if rep := merge.Report(); len(rep.Panicked) != 1 {
		t.Errorf("merge report %+v does not surface the panicked spec", rep)
	}
}
