package coup

import (
	"errors"
	"strings"
	"testing"
)

func counterSpec(cores int, seed uint64) RunSpec {
	return RunSpec{
		Workload: "counter",
		Options: []Option{
			WithCores(cores),
			WithProtocol("MEUSI"),
			WithSeed(seed),
			WithWorkloadParams(WorkloadParams{Size: 50}),
		},
	}
}

// TestSweepOrderAndDeterminism is the engine's core contract: results come
// back in input order, and every spec's stats are identical no matter how
// many workers the sweep fans out over — seeds live in the specs, never in
// worker identity.
func TestSweepOrderAndDeterminism(t *testing.T) {
	coreCounts := []int{1, 2, 3, 4, 6, 8}
	var specs []RunSpec
	for i, c := range coreCounts {
		specs = append(specs, counterSpec(c, uint64(i+1)))
	}
	serial, err := Sweep(specs, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(specs, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(specs) || len(parallel) != len(specs) {
		t.Fatalf("result lengths %d/%d, want %d", len(serial), len(parallel), len(specs))
	}
	for i, c := range coreCounts {
		if serial[i].Err != nil {
			t.Fatalf("spec %d: %v", i, serial[i].Err)
		}
		if serial[i].Stats.Cores != c {
			t.Errorf("result %d has %d cores, want %d: results out of input order", i, serial[i].Stats.Cores, c)
		}
		if serial[i] != parallel[i] {
			t.Errorf("spec %d differs between 1 and 8 workers:\nserial   %+v\nparallel %+v",
				i, serial[i], parallel[i])
		}
	}
}

// TestSweepDefaultParallelism checks the no-options path (GOMAXPROCS
// workers) against the serial path.
func TestSweepDefaultParallelism(t *testing.T) {
	specs := []RunSpec{counterSpec(2, 1), counterSpec(4, 2)}
	def, err := Sweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Sweep(specs, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if def[i] != serial[i] {
			t.Errorf("spec %d: default parallelism result differs from serial", i)
		}
	}
}

// TestSweepPerSpecErrors: one broken spec must fail alone, in place, while
// its neighbors complete — and panics out of workload factories become
// that spec's error.
func TestSweepPerSpecErrors(t *testing.T) {
	specs := []RunSpec{
		counterSpec(2, 1),
		{Workload: "no-such-workload", Options: []Option{WithCores(2)}},
		{Make: func() (Workload, error) { panic("factory exploded") }},
		{Make: func() (Workload, error) { return nil, errors.New("deliberate factory error") }},
		{}, // neither Workload nor Make
		{Workload: "counter", Make: func() (Workload, error) { return nil, nil }}, // both
		{Workload: "counter", Options: []Option{WithCores(0)}},                    // option error
		counterSpec(3, 2),
	}
	results, err := Sweep(specs, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[7].Err != nil {
		t.Fatalf("healthy specs failed: %v / %v", results[0].Err, results[7].Err)
	}
	if results[0].Stats.Cycles == 0 || results[7].Stats.Cycles == 0 {
		t.Error("healthy specs returned no stats")
	}
	if !errors.Is(results[1].Err, ErrUnknownWorkload) {
		t.Errorf("unknown workload err = %v, want ErrUnknownWorkload", results[1].Err)
	}
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "panicked") {
		t.Errorf("panicking factory err = %v, want recovered panic", results[2].Err)
	}
	if results[3].Err == nil || !strings.Contains(results[3].Err.Error(), "deliberate factory error") {
		t.Errorf("factory error = %v, want wrapped deliberate error", results[3].Err)
	}
	if !errors.Is(results[4].Err, ErrInvalidOption) {
		t.Errorf("empty spec err = %v, want ErrInvalidOption", results[4].Err)
	}
	if !errors.Is(results[5].Err, ErrInvalidOption) {
		t.Errorf("both-set spec err = %v, want ErrInvalidOption", results[5].Err)
	}
	if !errors.Is(results[6].Err, ErrInvalidOption) {
		t.Errorf("bad option err = %v, want ErrInvalidOption", results[6].Err)
	}
}

func TestSweepMakeSpecs(t *testing.T) {
	// Make-based specs run pre-built workloads, one fresh instance per run.
	spec := RunSpec{
		Make: func() (Workload, error) {
			return NewWorkload("counter", WorkloadParams{Size: 25})
		},
		Options: []Option{WithCores(2), WithProtocol("MESI"), WithSeed(9)},
	}
	results, err := Sweep([]RunSpec{spec, spec})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("run %d: %v", i, res.Err)
		}
		if res.Stats.Protocol != "MESI" || res.Stats.Cycles == 0 {
			t.Errorf("run %d stats: %+v", i, res.Stats)
		}
	}
	if results[0] != results[1] {
		t.Error("identical specs must produce identical results")
	}
}

func TestSweepEmptyAndOptionValidation(t *testing.T) {
	results, err := Sweep(nil)
	if err != nil || len(results) != 0 {
		t.Errorf("empty sweep: %v, %v", results, err)
	}
	for _, n := range []int{0, -3} {
		_, err := Sweep(nil, WithParallelism(n))
		// The typed sentinel must match, and so must the broader
		// ErrInvalidOption it wraps (older callers match on that).
		if !errors.Is(err, ErrInvalidParallelism) {
			t.Errorf("WithParallelism(%d) err = %v, want ErrInvalidParallelism", n, err)
		}
		if !errors.Is(err, ErrInvalidOption) {
			t.Errorf("WithParallelism(%d) err = %v, want ErrInvalidOption", n, err)
		}
		if _, err := NewSweeper(WithParallelism(n)); !errors.Is(err, ErrInvalidParallelism) {
			t.Errorf("NewSweeper(WithParallelism(%d)) err = %v, want ErrInvalidParallelism", n, err)
		}
	}
}

// sweepGoldenSpecs is a mixed grid — workloads × protocols × shapes ×
// seeds — exercising registry and Make specs, chip-crossing machines and
// repeated shapes (so arenas actually recycle).
func sweepGoldenSpecs() []RunSpec {
	var specs []RunSpec
	for _, wl := range []string{"counter", "hist"} {
		for _, proto := range []string{"MEUSI", "MESI"} {
			for _, cores := range []int{2, 4, 17} {
				for seed := uint64(1); seed <= 2; seed++ {
					specs = append(specs, RunSpec{
						Workload: wl,
						Options: []Option{
							WithCores(cores),
							WithProtocol(proto),
							WithSeed(seed),
							WithWorkloadParams(WorkloadParams{Size: 60, Bins: 32}),
						},
					})
				}
			}
		}
	}
	return specs
}

// TestSweepArenaGolden is the sweep-level golden test: the full result
// table must be byte-identical at parallelism 1 vs 8 and with machine
// arenas on vs off. Neither scheduling nor scratch reuse may leak into
// results.
func TestSweepArenaGolden(t *testing.T) {
	specs := sweepGoldenSpecs()
	base, err := Sweep(specs, WithParallelism(1), WithMachineArena(false))
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		opts []SweepOption
	}{
		{"parallel1+arena", []SweepOption{WithParallelism(1)}},
		{"parallel8+arena", []SweepOption{WithParallelism(8)}},
		{"parallel8+noarena", []SweepOption{WithParallelism(8), WithMachineArena(false)}},
		{"default", nil},
	}
	for _, v := range variants {
		got, err := Sweep(specs, v.opts...)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		for i := range specs {
			if base[i].Err != nil || got[i].Err != nil {
				t.Fatalf("%s spec %d: errs %v / %v", v.name, i, base[i].Err, got[i].Err)
			}
			if got[i] != base[i] {
				t.Errorf("%s: spec %d differs from serial no-arena baseline:\nbase %+v\ngot  %+v",
					v.name, i, base[i], got[i])
			}
		}
	}
}

// TestSweeperReuse pins the hoisted configuration: one Sweeper carried
// across Run calls (its arenas staying warm) returns the same results as
// fresh sweeps.
func TestSweeperReuse(t *testing.T) {
	specs := []RunSpec{counterSpec(2, 1), counterSpec(17, 2), counterSpec(2, 3)}
	s, err := NewSweeper(WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	first := s.Run(specs)
	second := s.Run(specs)
	for i := range specs {
		if first[i].Err != nil {
			t.Fatalf("spec %d: %v", i, first[i].Err)
		}
		if first[i] != second[i] {
			t.Errorf("spec %d: warm-arena rerun differs:\n1st %+v\n2nd %+v", i, first[i], second[i])
		}
	}
}

// TestSweepZeroAllocsSteadyState pins the arena's end-to-end effect: at
// steady state (arenas warm), a sweep spec's allocations no longer scale
// with the machine — what remains is per-spec harness overhead (kernel
// coroutines, option application, the workload instance), the same ~dozens
// of small objects for a 4-core and a 64-core machine. Without the arena a
// single 64-core machine costs megabytes and thousands of objects per
// spec.
func TestSweepZeroAllocsSteadyState(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cores int
	}{
		{"small-4core", 4},
		{"large-64core", 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var specs []RunSpec
			for i := 0; i < 6; i++ {
				specs = append(specs, counterSpec(tc.cores, uint64(i+1)))
			}
			s, err := NewSweeper(WithParallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			s.Run(specs) // warm the arena
			allocs := testing.AllocsPerRun(3, func() { s.Run(specs) })
			perSpec := allocs / float64(len(specs))
			t.Logf("%s: %.1f allocs/spec steady state", tc.name, perSpec)
			// What remains per spec is bounded harness overhead: ~60 small
			// objects of option/workload plumbing plus the per-core kernel
			// coroutines (iter.Pull spawns ~14 objects per simulated thread —
			// the documented engine floor). Nothing may scale with cache or
			// directory sizes: a 64-core Table-1 machine is ~12 MB of arrays,
			// and before the arena a spec allocated all of it. The bound is
			// ~2x the measured steady state; failing it means machine-sized
			// allocations crept back into the sweep loop.
			budget := 150 + 25*float64(tc.cores)
			if perSpec > budget {
				t.Errorf("steady-state sweep allocates %.1f objects/spec, want < %.0f (harness + coroutine overhead only)", perSpec, budget)
			}
		})
	}
}

func TestMeanStats(t *testing.T) {
	if (MeanStats()) != (Stats{}) {
		t.Error("MeanStats() must be zero")
	}
	a := Stats{Protocol: "MEUSI", Workload: "hist", Cores: 8, Cycles: 100, AMAT: 2.0,
		Breakdown: AMATBreakdown{L2: 1.0}, Traffic: Traffic{OffChipBytes: 10}}
	if MeanStats(a) != a {
		t.Error("MeanStats of one run must be the identity")
	}
	b := a
	b.Cycles, b.AMAT, b.Breakdown.L2, b.Traffic.OffChipBytes = 201, 4.0, 3.0, 21
	m := MeanStats(a, b)
	if m.Protocol != "MEUSI" || m.Workload != "hist" || m.Cores != 8 {
		t.Errorf("identity fields changed: %+v", m)
	}
	if m.Cycles != 151 { // mean 150.5 rounds to nearest
		t.Errorf("mean cycles %d, want 151", m.Cycles)
	}
	if m.AMAT != 3.0 || m.Breakdown.L2 != 2.0 {
		t.Errorf("float means wrong: AMAT=%v L2=%v", m.AMAT, m.Breakdown.L2)
	}
	if m.Traffic.OffChipBytes != 16 { // mean 15.5 rounds up
		t.Errorf("nested counter mean %d, want 16", m.Traffic.OffChipBytes)
	}
}

func TestCyclesCI95(t *testing.T) {
	if CyclesCI95() != 0 || CyclesCI95(Stats{Cycles: 5}) != 0 {
		t.Error("fewer than two runs must have no CI")
	}
	if CyclesCI95(Stats{Cycles: 7}, Stats{Cycles: 7}) != 0 {
		t.Error("identical runs must have zero-width CI")
	}
	// Two runs at 90/110: half-width = t(df=1) * sd/sqrt(2) = 12.706 * 10.
	ci := CyclesCI95(Stats{Cycles: 90}, Stats{Cycles: 110})
	if ci < 127.0 || ci > 127.1 {
		t.Errorf("CI = %v, want ~127.06", ci)
	}
}
