package coup

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// SweepJob is the shardable, resumable job model over Sweeper: it
// intercepts a harness's sweeps and routes them through durable result
// stores, in one of two modes.
//
// A shard job (NewShardJob) owns the round-robin slice k of n of every
// spec list it is handed. It runs only its own specs, spills each
// completed spec to a per-namespace ResultStore as it lands (fsync'd,
// so a kill loses at most the in-flight specs), and on restart resumes
// from the store instead of recomputing. Results for foreign specs stay
// zero and the sweep reports incomplete, telling the harness to skip
// aggregation.
//
// A merge job (NewMergeJob) runs nothing: it loads every shard store in
// its directory and resolves each sweep entirely from records, after
// verifying coverage — every spec present exactly once, with missing or
// duplicated specs reported as a typed *CoverageError listing the
// offending keys. A complete merge hands the harness exactly the
// results a single-process sweep would have produced, so downstream
// tables are byte-identical (TestShardMergeTablesIdentical pins this).
//
// Spec identity is SpecKeys — content hashes with ordinal suffixes —
// prefixed per sweep ("g1:", "g2:", …) in call order, so a harness
// issuing several sweeps per namespace keeps them apart; the harness
// must therefore enumerate the same sweeps in the same order in every
// shard and in the merge, which deterministic experiment code does by
// construction. Namespaces (one per experiment) map to store files;
// Fingerprint guards against mixing stores from different
// parameterizations (scale, reps, core caps).
//
// A SweepJob is not safe for concurrent use; harnesses drive it from
// their (serial) experiment loop.
type SweepJob struct {
	dir         string
	fingerprint string
	shard       int
	shardCount  int
	merge       bool

	ns    string
	seq   int
	store *ResultStore           // shard mode: the open store for ns
	recs  map[string]StoreRecord // merge mode: union of all shard stores
	dups  map[string]bool        // merge mode: keys seen in >1 store
	rep   JobReport
}

// JobReport summarizes what a job did in its current namespace:
// freshly computed specs, specs served from a store, and the keys of
// specs that finished by panicking (done-with-error — counted and
// stored like any other completion, but surfaced here so a merge never
// silently passes their zero stats off as results).
type JobReport struct {
	Namespace string
	Computed  int
	Reused    int
	Panicked  []string
	Failed    []string
}

// String renders the report's one-line summary plus any failure detail.
func (r JobReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d computed, %d reused", r.Namespace, r.Computed, r.Reused)
	if len(r.Panicked) > 0 {
		fmt.Fprintf(&b, ", %d PANICKED (%s)", len(r.Panicked), strings.Join(r.Panicked, ", "))
	}
	if len(r.Failed) > 0 {
		fmt.Fprintf(&b, ", %d failed (%s)", len(r.Failed), strings.Join(r.Failed, ", "))
	}
	return b.String()
}

// CoverageError is the merge-time verification failure: the union of
// shard stores does not cover the enumerated specs exactly once.
// Missing lists keys no store recorded (a shard that never ran or never
// finished); Duplicate lists keys recorded by more than one store
// (stores from overlapping shard layouts mixed in one directory).
type CoverageError struct {
	Namespace string
	Missing   []string
	Duplicate []string
}

func (e *CoverageError) Error() string {
	var parts []string
	if n := len(e.Missing); n > 0 {
		parts = append(parts, fmt.Sprintf("%d missing (%s)", n, strings.Join(e.Missing, ", ")))
	}
	if n := len(e.Duplicate); n > 0 {
		parts = append(parts, fmt.Sprintf("%d duplicated (%s)", n, strings.Join(e.Duplicate, ", ")))
	}
	return fmt.Sprintf("coup: merge coverage for %s: %s", e.Namespace, strings.Join(parts, "; "))
}

// NewShardJob returns a job that owns shard k of n (zero-based) and
// journals results under dir, guarded by fingerprint.
func NewShardJob(dir, fingerprint string, k, n int) (*SweepJob, error) {
	if err := validShard(k, n); err != nil {
		return nil, err
	}
	return &SweepJob{dir: dir, fingerprint: fingerprint, shard: k, shardCount: n}, nil
}

// NewMergeJob returns a job that resolves every sweep from the shard
// stores under dir, guarded by fingerprint.
func NewMergeJob(dir, fingerprint string) *SweepJob {
	return &SweepJob{dir: dir, fingerprint: fingerprint, merge: true}
}

// storePath names the store file for namespace ns and shard k of n:
// "<ns>.shard-<k+1>-of-<n>.json" (human shard numbering, matching the
// -shard flag).
func storePath(dir, ns string, k, n int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.shard-%d-of-%d.json", ns, k+1, n))
}

// SetNamespace switches the job to namespace ns (one experiment id in
// the coupbench consumer), resetting the per-namespace sweep sequence
// and report. Shard mode opens (or resumes) this shard's store for ns;
// merge mode loads every "<ns>.shard-*.json" store in the directory,
// verifying each header against the namespace and fingerprint.
func (j *SweepJob) SetNamespace(ns string) error {
	if ns == "" || strings.ContainsAny(ns, "/\\ \t\n*?") {
		return fmt.Errorf("coup: %w: bad job namespace %q", ErrInvalidOption, ns)
	}
	if err := j.Close(); err != nil {
		return err
	}
	j.ns = ns
	j.seq = 0
	j.rep = JobReport{Namespace: ns}
	if !j.merge {
		st, err := OpenResultStore(storePath(j.dir, ns, j.shard, j.shardCount), StoreHeader{
			Namespace:   ns,
			Fingerprint: j.fingerprint,
			Shard:       j.shard,
			ShardCount:  j.shardCount,
		})
		if err != nil {
			return err
		}
		j.store = st
		return nil
	}
	paths, err := filepath.Glob(filepath.Join(j.dir, ns+".shard-*.json"))
	if err != nil {
		return fmt.Errorf("coup: merge: %w", err)
	}
	sort.Strings(paths)
	j.recs = map[string]StoreRecord{}
	j.dups = map[string]bool{}
	shardCount := 0
	for _, p := range paths {
		h, recs, err := ReadResultStore(p)
		if err != nil {
			return err
		}
		if h.Namespace != ns || h.Fingerprint != j.fingerprint {
			return fmt.Errorf("coup: %w: %s holds %+v, want namespace %q fingerprint %q",
				ErrStoreMismatch, p, h, ns, j.fingerprint)
		}
		if shardCount == 0 {
			shardCount = h.ShardCount
		} else if h.ShardCount != shardCount {
			return fmt.Errorf("coup: %w: %s is shard %d of %d amid stores of %d shards (overlapping layouts)",
				ErrStoreMismatch, p, h.Shard+1, h.ShardCount, shardCount)
		}
		for _, rec := range recs {
			if _, seen := j.recs[rec.Key]; seen {
				j.dups[rec.Key] = true
			}
			j.recs[rec.Key] = rec
		}
	}
	return nil
}

// Report returns what the job has done in the current namespace.
func (j *SweepJob) Report() JobReport { return j.rep }

// Close releases the current namespace's store, if any. Safe to call
// repeatedly; SetNamespace calls it implicitly.
func (j *SweepJob) Close() error {
	if j.store != nil {
		err := j.store.Close()
		j.store = nil
		if err != nil {
			return fmt.Errorf("coup: result store: %w", err)
		}
	}
	return nil
}

// Sweep is the job-routed replacement for Sweeper.Run: it resolves the
// specs from stores where possible, runs (and journals) what this
// shard owns and hasn't recorded, and returns one result per spec in
// input order. complete reports whether every result is real — false
// in shard mode when foreign shards own some specs (their slots are
// zero), in which case the harness must skip aggregation. Merge mode is
// always complete or fails with a *CoverageError.
func (j *SweepJob) Sweep(s *Sweeper, specs []RunSpec) (results []SweepResult, complete bool, err error) {
	if j.ns == "" {
		return nil, false, fmt.Errorf("coup: %w: SweepJob.Sweep before SetNamespace", ErrInvalidOption)
	}
	j.seq++
	keys, err := SpecKeys(specs)
	if err != nil {
		return nil, false, fmt.Errorf("coup: sweep job %s: %w", j.ns, err)
	}
	for i := range keys {
		keys[i] = fmt.Sprintf("g%d:%s", j.seq, keys[i])
	}
	if j.merge {
		return j.resolveMerge(specs, keys)
	}
	return j.runShard(s, specs, keys)
}

// resolveMerge serves every spec from the loaded records, verifying
// exactly-once coverage first.
func (j *SweepJob) resolveMerge(specs []RunSpec, keys []string) ([]SweepResult, bool, error) {
	cov := &CoverageError{Namespace: j.ns}
	for _, k := range keys {
		if _, ok := j.recs[k]; !ok {
			cov.Missing = append(cov.Missing, k)
		}
		if j.dups[k] {
			cov.Duplicate = append(cov.Duplicate, k)
		}
	}
	if len(cov.Missing) > 0 || len(cov.Duplicate) > 0 {
		return nil, false, cov
	}
	out := make([]SweepResult, len(specs))
	for i, k := range keys {
		out[i] = j.noteResult(k, resultFrom(j.recs[k]))
		j.rep.Reused++
	}
	return out, true, nil
}

// runShard serves this shard's recorded specs from the store, runs the
// rest through the sweeper — journalling each completion as it lands —
// and leaves foreign shards' slots zero.
func (j *SweepJob) runShard(s *Sweeper, specs []RunSpec, keys []string) ([]SweepResult, bool, error) {
	out := make([]SweepResult, len(specs))
	mine, err := ShardIndices(len(specs), j.shard, j.shardCount)
	if err != nil {
		return nil, false, err
	}
	var todo []int
	for _, i := range mine {
		if rec, ok := j.store.Get(keys[i]); ok {
			out[i] = j.noteResult(keys[i], resultFrom(rec))
			j.rep.Reused++
		} else {
			todo = append(todo, i)
		}
	}
	if len(todo) > 0 {
		run := make([]RunSpec, len(todo))
		for t, i := range todo {
			run[t] = specs[i]
		}
		var mu sync.Mutex
		var putErr error
		res := s.RunEach(run, func(t int, r SweepResult) {
			rec := StoreRecord{Key: keys[todo[t]], Stats: r.Stats, Panicked: r.Panicked}
			if r.Err != nil {
				rec.Err = r.Err.Error()
			}
			if err := j.store.Put(rec); err != nil {
				mu.Lock()
				if putErr == nil {
					putErr = err
				}
				mu.Unlock()
			}
		})
		if putErr != nil {
			return nil, false, putErr
		}
		for t, i := range todo {
			out[i] = j.noteResult(keys[i], res[t])
			j.rep.Computed++
		}
	}
	return out, j.shardCount == 1, nil
}

// noteResult records a result's failure state in the report.
func (j *SweepJob) noteResult(key string, r SweepResult) SweepResult {
	switch {
	case r.Panicked:
		j.rep.Panicked = append(j.rep.Panicked, key)
	case r.Err != nil:
		j.rep.Failed = append(j.rep.Failed, key)
	}
	return r
}

// resultFrom rehydrates a stored record into a sweep result.
func resultFrom(rec StoreRecord) SweepResult {
	res := SweepResult{Stats: rec.Stats, Panicked: rec.Panicked}
	if rec.Err != "" {
		res.Err = errors.New(rec.Err)
	}
	return res
}
