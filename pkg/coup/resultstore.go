package coup

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// StoreHeader identifies what a result store holds, written as the first
// line of the file and verified on every open and merge. Namespace names
// the producing job (one experiment, one grid family); Fingerprint is an
// opaque digest of everything that parameterizes the spec list (scale,
// reps, core caps — whatever the producer folds in), so a store recorded
// under one parameterization can never resume or merge into another.
// Shard/ShardCount are the round-robin coordinates the store's producer
// ran under (0/1 for an unsharded store).
type StoreHeader struct {
	Namespace   string `json:"namespace"`
	Fingerprint string `json:"fingerprint"`
	Shard       int    `json:"shard"`
	ShardCount  int    `json:"shard_count"`
}

// StoreRecord is one completed spec in a result store: its durable key
// (SpecKey), its stats, and its failure state. Err is the error text
// ("" for a clean run) and Panicked marks recovered panics, so merge
// coverage can surface them instead of silently treating zero stats as
// results. A recorded failure is still "done" — resume does not re-run
// it, and the merge coverage check counts it.
type StoreRecord struct {
	Key      string `json:"key"`
	Stats    Stats  `json:"stats"`
	Err      string `json:"err,omitempty"`
	Panicked bool   `json:"panicked,omitempty"`
}

// ResultStore is the spill-to-disk journal a store-backed sweep writes:
// a header line followed by one JSON record line per completed spec,
// each append fsync'd before Put returns, so every record that Put
// acknowledged survives a crash. Opening an existing store replays it —
// tolerating a torn final record from a killed writer by truncating it
// away — which is exactly the resume path: completed specs come from
// the map, everything else gets recomputed and appended.
//
// Put is safe for concurrent use (sweep workers complete specs in
// parallel); everything else follows the single-coordinator pattern.
type ResultStore struct {
	mu   sync.Mutex
	f    *os.File
	path string
	recs map[string]StoreRecord
}

// OpenResultStore opens or creates the store at path for the given
// header. A fresh file is created with the header as its first line; an
// existing file must carry exactly this header (ErrStoreMismatch
// otherwise — a store from a different namespace, parameterization or
// shard never silently resumes) and has its records loaded, with a
// corrupt tail truncated in place.
func OpenResultStore(path string, h StoreHeader) (*ResultStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("coup: result store: %w", err)
	}
	s := &ResultStore{f: f, path: path, recs: map[string]StoreRecord{}}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("coup: result store: %w", err)
	}
	if info.Size() == 0 {
		line, err := json.Marshal(h)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("coup: result store: %w", err)
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("coup: result store %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("coup: result store %s: %w", path, err)
		}
		return s, nil
	}
	got, recs, good, err := replayStore(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if got != h {
		f.Close()
		return nil, fmt.Errorf("coup: %w: %s holds %+v, want %+v", ErrStoreMismatch, path, got, h)
	}
	// Drop any torn tail so subsequent appends extend a clean journal.
	if good < info.Size() {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("coup: result store %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("coup: result store %s: %w", path, err)
	}
	s.recs = recs
	return s, nil
}

// replayStore reads a store from the start: the header, every complete
// record, and the byte offset up to which the file parsed cleanly. A
// line that fails to parse — the torn final append of a killed writer —
// ends the replay; everything before it stands. Within one store a
// later record for the same key wins (resume never re-runs a recorded
// key, so this only matters for hand-edited files).
func replayStore(r io.Reader) (h StoreHeader, recs map[string]StoreRecord, good int64, err error) {
	br := bufio.NewReader(r)
	recs = map[string]StoreRecord{}
	readLine := func() ([]byte, bool) {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return nil, false // no trailing newline: torn write
		}
		return line, true
	}
	line, ok := readLine()
	if !ok || json.Unmarshal(line, &h) != nil {
		return h, nil, 0, fmt.Errorf("coup: %w: unreadable store header", ErrStoreMismatch)
	}
	good = int64(len(line))
	for {
		line, ok := readLine()
		if !ok {
			return h, recs, good, nil
		}
		var rec StoreRecord
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" {
			return h, recs, good, nil
		}
		recs[rec.Key] = rec
		good += int64(len(line))
	}
}

// Put appends one completed spec's record and fsyncs before returning:
// once Put returns, the record survives a crash. Safe for concurrent
// callers.
func (s *ResultStore) Put(rec StoreRecord) error {
	if rec.Key == "" {
		return fmt.Errorf("coup: %w: store record needs a key", ErrInvalidOption)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("coup: result store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("coup: result store %s: %w", s.path, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("coup: result store %s: %w", s.path, err)
	}
	s.recs[rec.Key] = rec
	return nil
}

// Get returns the recorded result for key, if any.
func (s *ResultStore) Get(key string) (StoreRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[key]
	return rec, ok
}

// Len returns the number of completed specs the store holds.
func (s *ResultStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Close flushes and closes the underlying file. The store is unusable
// afterwards.
func (s *ResultStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// ReadResultStore loads a store read-only — the merge path. It returns
// the header and every complete record, tolerating (skipping, not
// repairing) a torn final record.
func ReadResultStore(path string) (StoreHeader, []StoreRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return StoreHeader{}, nil, fmt.Errorf("coup: result store: %w", err)
	}
	defer f.Close()
	h, recs, _, err := replayStore(f)
	if err != nil {
		return StoreHeader{}, nil, fmt.Errorf("coup: result store %s: %w", path, err)
	}
	out := make([]StoreRecord, 0, len(recs))
	for _, rec := range recs {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return h, out, nil
}
