package coup

import (
	"fmt"

	coh "repro/internal/core"
	"repro/internal/sim"
)

// Protocol is one coherence protocol selectable by name. The five paper
// protocols (MSI, MESI, MUSI, MEUSI, RMO) self-register from the simulator
// core; RegisterProtocol adds variants.
type Protocol interface {
	// Name is the registry key, e.g. "MEUSI".
	Name() string
	// Description is a one-line summary naming the paper figure/section
	// the protocol comes from.
	Description() string
	// HasUpdateState reports whether the protocol supports COUP's
	// update-only (U) state — the private-cache fast path of Fig 4/Fig 6.
	HasUpdateState() bool
	// RemoteUpdates reports whether commutative updates are shipped to the
	// line's home L4 bank (the Fig 1b remote-memory-operation scheme).
	RemoteUpdates() bool
}

// simProtocol adapts a registered simulator protocol id to the Protocol
// interface.
type simProtocol struct{ id sim.Protocol }

func (p simProtocol) Name() string         { return p.id.Spec().Name }
func (p simProtocol) Description() string  { return p.id.Spec().Desc }
func (p simProtocol) HasUpdateState() bool { return p.id.HasU() }
func (p simProtocol) RemoteUpdates() bool  { return p.id.Remote() }

// BaseStates names the stable-state table a protocol variant runs, i.e.
// which of the paper's transition tables private caches and directories
// follow.
type BaseStates string

const (
	// BaseMSI is the three-state table (Sec 3.1's starting point).
	BaseMSI BaseStates = "MSI"
	// BaseMESI adds the exclusive-clean E state.
	BaseMESI BaseStates = "MESI"
	// BaseMUSI is MSI plus COUP's update-only U state (Fig 4).
	BaseMUSI BaseStates = "MUSI"
	// BaseMEUSI is MESI plus the update-only state (Fig 6, full COUP).
	BaseMEUSI BaseStates = "MEUSI"
)

func (b BaseStates) kind() (coh.Kind, error) {
	switch b {
	case BaseMSI:
		return coh.MSI, nil
	case BaseMESI, "":
		return coh.MESI, nil
	case BaseMUSI:
		return coh.MUSI, nil
	case BaseMEUSI:
		return coh.MEUSI, nil
	}
	return 0, fmt.Errorf("coup: unknown base-state table %q (have: MSI, MESI, MUSI, MEUSI)", string(b))
}

// ProtocolSpec declares a protocol variant along the behaviour axes the
// engine understands. Register one with RegisterProtocol; the returned
// Protocol is immediately selectable by name everywhere (WithProtocol,
// command-line flags, ...).
type ProtocolSpec struct {
	// Name is the registry key; required, unique case-insensitively.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Base selects the stable-state table. Empty defaults to BaseMESI.
	Base BaseStates
	// Remote ships commutative updates to the line's home L4 bank instead
	// of caching them; requires a U-less Base (MSI or MESI).
	Remote bool
}

// RegisterProtocol adds a protocol variant to the registry. It returns
// ErrDuplicateName (wrapped) if the name is taken, and a plain error for
// inconsistent specs. Registration is safe for concurrent use but must
// complete before machines using the protocol are built.
func RegisterProtocol(s ProtocolSpec) (Protocol, error) {
	kind, err := s.Base.kind()
	if err != nil {
		return nil, err
	}
	id, err := sim.RegisterProtocol(sim.ProtocolSpec{
		Name:   s.Name,
		Desc:   s.Description,
		Kind:   kind,
		Remote: s.Remote,
	})
	if err != nil {
		// Classify after the fact so concurrent registrations of the same
		// name still surface the documented sentinel: the registry only
		// grows, so if the name resolves now, a duplicate is why we lost.
		if _, taken := sim.ProtocolByName(s.Name); taken {
			return nil, fmt.Errorf("coup: protocol %q: %w", s.Name, ErrDuplicateName)
		}
		return nil, fmt.Errorf("coup: %w", err)
	}
	return simProtocol{id: id}, nil
}

// Protocols returns every registered protocol, sorted by name.
func Protocols() []Protocol {
	ids := sim.ProtocolIDs()
	out := make([]Protocol, len(ids))
	for i, id := range ids {
		out[i] = simProtocol{id: id}
	}
	return out
}

// ProtocolNames returns the sorted names of every registered protocol.
func ProtocolNames() []string {
	specs := sim.Protocols()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// LookupProtocol resolves a protocol by name, case-insensitively. Unknown
// names return an error wrapping ErrUnknownProtocol that lists the
// registered names.
func LookupProtocol(name string) (Protocol, error) {
	id, ok := sim.ProtocolByName(name)
	if !ok {
		return nil, unknownNameError(ErrUnknownProtocol, name, ProtocolNames())
	}
	return simProtocol{id: id}, nil
}
