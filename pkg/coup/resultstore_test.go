package coup

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testHeader() StoreHeader {
	return StoreHeader{Namespace: "exp1", Fingerprint: "fp-abc", Shard: 0, ShardCount: 2}
}

func testRecord(key string, cycles uint64) StoreRecord {
	return StoreRecord{
		Key: key,
		Stats: Stats{
			Protocol: "MEUSI", Workload: "hist", Cores: 4,
			Cycles: cycles, AMAT: 3.25,
		},
	}
}

// TestResultStoreRoundTrip pins the journal's basic contract: records
// put before Close come back exactly — stats byte-identical — on reopen
// with the same header.
func TestResultStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	st, err := OpenResultStore(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	want := []StoreRecord{
		testRecord("a", 100),
		testRecord("b", 200),
		{Key: "c", Err: "validation failed", Stats: Stats{Cycles: 7}},
		{Key: "d", Err: "coup: sweep run panicked: boom", Panicked: true},
	}
	for _, rec := range want {
		if err := st.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenResultStore(path, testHeader())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if st2.Len() != len(want) {
		t.Fatalf("reopened store holds %d records, want %d", st2.Len(), len(want))
	}
	for _, rec := range want {
		got, ok := st2.Get(rec.Key)
		if !ok {
			t.Fatalf("record %s lost on reopen", rec.Key)
		}
		if got != rec {
			t.Errorf("record %s changed across reopen:\ngot  %+v\nwant %+v", rec.Key, got, rec)
		}
	}
}

// TestResultStoreHeaderMismatch pins the guard against mixing stores:
// reopening under a different namespace, fingerprint or shard layout is
// a typed error, never a silent resume.
func TestResultStoreHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	st, err := OpenResultStore(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	for _, h := range []StoreHeader{
		{Namespace: "exp2", Fingerprint: "fp-abc", ShardCount: 2},
		{Namespace: "exp1", Fingerprint: "fp-OTHER", ShardCount: 2},
		{Namespace: "exp1", Fingerprint: "fp-abc", Shard: 1, ShardCount: 2},
		{Namespace: "exp1", Fingerprint: "fp-abc", ShardCount: 4},
	} {
		if _, err := OpenResultStore(path, h); !errors.Is(err, ErrStoreMismatch) {
			t.Errorf("reopen with %+v: err=%v, want ErrStoreMismatch", h, err)
		}
	}
}

// TestResultStoreTornTail pins crash tolerance: a partial final line (a
// killed writer's torn append) is dropped on reopen, every record before
// it survives, and the store keeps working — including across a second
// reopen, proving the truncation repaired the file on disk.
func TestResultStoreTornTail(t *testing.T) {
	for _, tail := range []string{
		`{"key":"torn","st`,        // cut mid-record, no newline
		`{"key":"torn","st` + "\n", // cut mid-record, with newline
		"\x00\x01garbage",          // not JSON at all
	} {
		path := filepath.Join(t.TempDir(), "s.json")
		st, err := OpenResultStore(path, testHeader())
		if err != nil {
			t.Fatal(err)
		}
		st.Put(testRecord("a", 100))
		st.Put(testRecord("b", 200))
		st.Close()

		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString(tail)
		f.Close()

		st2, err := OpenResultStore(path, testHeader())
		if err != nil {
			t.Fatalf("tail %q: reopen: %v", tail, err)
		}
		if st2.Len() != 2 {
			t.Fatalf("tail %q: %d records after torn reopen, want 2", tail, st2.Len())
		}
		if _, ok := st2.Get("torn"); ok {
			t.Errorf("tail %q: torn record resurrected", tail)
		}
		if err := st2.Put(testRecord("c", 300)); err != nil {
			t.Fatalf("tail %q: put after repair: %v", tail, err)
		}
		st2.Close()

		st3, err := OpenResultStore(path, testHeader())
		if err != nil {
			t.Fatalf("tail %q: second reopen: %v", tail, err)
		}
		if st3.Len() != 3 {
			t.Errorf("tail %q: %d records after repair+append, want 3", tail, st3.Len())
		}
		st3.Close()
	}
}

// TestReadResultStore covers the merge-side reader: same tolerance, no
// repair, header passthrough.
func TestReadResultStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	st, _ := OpenResultStore(path, testHeader())
	st.Put(testRecord("a", 100))
	st.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString(`{"key":"torn`)
	f.Close()
	before, _ := os.Stat(path)

	h, recs, err := ReadResultStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if h != testHeader() {
		t.Errorf("header %+v, want %+v", h, testHeader())
	}
	if len(recs) != 1 || recs[0].Key != "a" {
		t.Errorf("records %+v, want just a", recs)
	}
	after, _ := os.Stat(path)
	if before.Size() != after.Size() {
		t.Error("read-only load modified the file")
	}
}
