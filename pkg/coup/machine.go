package coup

import (
	"repro/internal/sim"
)

// Ctx is the interface a simulated thread uses to touch the memory system:
// loads, stores, x86-style atomics, and COUP's commutative-update
// instructions (CommAdd64, CommOr64, ...). Kernels passed to Machine.Run
// receive one Ctx per simulated core.
type Ctx = sim.Ctx

// Machine is a configured simulated system: the multi-socket,
// four-level-hierarchy machine of Table 1 / Fig 9. Build one with
// NewMachine, set up simulated memory with Alloc/WriteWord64, then Run a
// kernel once. Machines are single-run.
type Machine struct {
	m    *sim.Machine
	prot Protocol
}

// NewMachine builds a machine from the Table 1 defaults (64 cores, MEUSI)
// plus the given options. It returns a typed error (ErrInvalidOption,
// ErrConflictingOptions, ErrUnknownProtocol) on bad option lists.
func NewMachine(opts ...Option) (*Machine, error) {
	b, err := newBuilder(opts)
	if err != nil {
		return nil, err
	}
	return &Machine{m: sim.New(b.cfg), prot: simProtocol{id: b.cfg.Protocol}}, nil
}

// Protocol returns the protocol the machine runs.
func (m *Machine) Protocol() Protocol { return m.prot }

// Cores returns the simulated core count.
func (m *Machine) Cores() int { return m.m.Config().Cores }

// Chips returns the number of processor chips (== memory chips; the paper
// scales both together, Sec 5.1).
func (m *Machine) Chips() int {
	cfg := m.m.Config()
	return cfg.Chips()
}

// Alloc reserves size bytes of simulated memory aligned to align (a power
// of two, at least 8) and returns the base address. Valid before Run only.
func (m *Machine) Alloc(size, align uint64) uint64 { return m.m.Alloc(size, align) }

// AllocLines reserves n cache lines and returns the 64-byte-aligned base
// address.
func (m *Machine) AllocLines(n uint64) uint64 { return m.m.AllocLines(n) }

// WriteWord64 initializes a 64-bit simulated memory word before Run (no
// timing cost).
func (m *Machine) WriteWord64(addr, v uint64) { m.m.WriteWord64(addr, v) }

// WriteWord32 initializes a 32-bit simulated memory word before Run.
func (m *Machine) WriteWord32(addr uint64, v uint32) { m.m.WriteWord32(addr, v) }

// ReadWord64 inspects simulated memory. After Run the machine is drained,
// so the value reflects all buffered commutative updates.
func (m *Machine) ReadWord64(addr uint64) uint64 { return m.m.ReadWord64(addr) }

// ReadWord32 inspects a 32-bit simulated memory word.
func (m *Machine) ReadWord32(addr uint64) uint32 { return m.m.ReadWord32(addr) }

// Run executes kernel once per simulated core, each as a simulated thread,
// and returns the run's statistics. Run may be called once per Machine.
func (m *Machine) Run(kernel func(c *Ctx)) Stats {
	st := m.m.Run(kernel)
	return statsFrom(st, m.m.Config(), "")
}

// CheckInvariants verifies protocol coherence invariants over the final
// cache and directory state. Valid after Run.
func (m *Machine) CheckInvariants() error { return m.m.CheckInvariants() }
