package coup

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// Run builds the named workload (WithWorkloadParams sets its size knobs),
// builds a machine from the remaining options, executes the workload and
// validates its final memory image plus the protocol's coherence
// invariants. The returned Stats are valid even when validation fails, so
// callers can report partial results alongside the error.
func Run(workload string, opts ...Option) (Stats, error) {
	return runIn(nil, workload, opts)
}

// RunWorkload is Run for a pre-built workload instance — use it for
// workloads constructed directly rather than through the registry.
// Workloads are single-run; build a fresh instance for every call.
func RunWorkload(w Workload, opts ...Option) (Stats, error) {
	return runWorkloadIn(nil, w, opts)
}

// runIn is Run drawing the machine from arena (nil means a fresh machine);
// the sweep workers pass their per-worker arenas through here.
func runIn(arena *sim.Arena, workload string, opts []Option) (Stats, error) {
	info, err := LookupWorkload(workload)
	if err != nil {
		return Stats{}, err
	}
	b, err := newBuilder(opts)
	if err != nil {
		return Stats{}, err
	}
	w, err := info.New(b.wp)
	if err != nil {
		// Bad factory parameters are an option error (they arrived via
		// WithWorkloadParams), so callers can errors.Is them as usage.
		return Stats{}, fmt.Errorf("coup: workload %q: %w: %w", info.Name, ErrInvalidOption, err)
	}
	return runOn(arena, w, info.Name, b)
}

// runWorkloadIn is RunWorkload with an optional machine arena.
func runWorkloadIn(arena *sim.Arena, w Workload, opts []Option) (Stats, error) {
	b, err := newBuilder(opts)
	if err != nil {
		return Stats{}, err
	}
	return runOn(arena, w, w.Name(), b)
}

func runOn(arena *sim.Arena, w Workload, name string, b *builder) (Stats, error) {
	st, err := workloads.RunIn(arena, w, b.cfg)
	out := statsFrom(st, b.cfg, name)
	if err != nil {
		return out, fmt.Errorf("coup: %w", err)
	}
	return out, nil
}
