// Package coup is the public API of the COUP reproduction (Zhang,
// Harrison & Sanchez, "Exploiting Commutativity to Reduce the Cost of
// Updates to Shared Data in Cache-Coherent Systems", MICRO 2015). It
// exposes the execution-driven simulator, the paper's protocols and
// benchmarks, and the experiment entry points behind a stable facade so
// that new protocols and workloads plug in by name without touching the
// engine.
//
// # Concepts and where they come from in the paper
//
//   - Protocol: a coherence protocol variant, selected by name. The five
//     built-ins are the paper's: MESI (the Sec 2 baseline, commutative
//     updates run as atomics), MSI (the E-less starting point of Sec 3.1),
//     MUSI (MSI plus COUP's update-only U state, Fig 4), MEUSI (the full
//     COUP protocol with the exclusive-clean optimization, Fig 6), and RMO
//     (remote memory operations executed at the line's home L4 bank,
//     Fig 1b). RegisterProtocol adds new variants — e.g. the N-state
//     generalizations sketched in Sec 3.4 — by declaring their behaviour
//     axes; the engine consults only those axes.
//
//   - Workload: one benchmark instance. The built-ins are the Table 2
//     applications (hist, spmv, pgrank, bfs, fluid) and the Sec 5.4
//     reference-counting family (refcount, refcount-snzi, counter,
//     refcount-delayed, refcount-refcache), each expressed once with
//     commutative-update instructions so a single kernel runs unmodified
//     under every protocol. Every run validates its final memory image
//     against a sequential reference. RegisterWorkload adds new ones.
//
//   - Machine: the simulated multi-socket system of Table 1 / Fig 9,
//     built with functional options: NewMachine(WithCores(64),
//     WithProtocol("MEUSI"), ...). Alloc simulated memory, Run a kernel,
//     read the final image back.
//
//   - Stats: one run's measurements — cycles, the Fig 11 AMAT breakdown,
//     protocol events (reductions, invalidations, U grants) and the
//     Sec 5.2 traffic split. The type is stable and JSON-serializable.
//     MeanStats aggregates repeated seeded runs of one configuration.
//
//   - Sweep: the parallel experiment engine. An evaluation grid —
//     workloads × protocols × core counts × seeded reps — is a list of
//     independent simulations; Sweep executes a []RunSpec across a bounded
//     worker pool (WithParallelism, default GOMAXPROCS) and returns one
//     SweepResult per spec, in input order, with per-spec errors. Every
//     machine is isolated and every seed lives in its spec, so results are
//     identical at any parallelism; only wall-clock time changes.
//
//     Each worker owns a machine arena (internal/sim.Arena): machine-sized
//     scratch — cache and directory arrays, backing-store pages, bank
//     tables — is built once per geometry per worker and recycled across
//     the specs that worker executes, zeroed on reuse. Repeated small
//     simulations (the fig13 refcount grids) therefore run allocation-free
//     at steady state, ~2.7x faster than with per-spec construction.
//     Arenas never change results (pinned byte-identical by
//     TestSweepArenaGolden); WithMachineArena(false) trades the speed back
//     for minimal peak memory, and WithArenaCap(n) bounds each arena to n
//     pooled machines with LRU eviction for wide multi-geometry grids.
//     Callers issuing many sweeps can hoist the validated configuration
//     with NewSweeper and reuse one Sweeper — its arenas stay warm across
//     Run calls. Invalid parallelism is a typed error,
//     ErrInvalidParallelism.
//
//   - Job: the multi-process layer over Sweep. Because every spec is
//     independent and seeded, a sweep can be partitioned across
//     processes (or machines, or CI jobs) and reassembled exactly.
//     ShardSpecs deterministically round-robins a spec list into shard k
//     of n; SpecKey gives each registry-named spec a durable content
//     hash (workload, protocol, cores, seed, workload params — not its
//     spelling); a ResultStore journals one JSON record per completed
//     spec, fsync'd, tolerating a torn final line so a killed process
//     resumes from its last completed spec instead of recomputing.
//     SweepJob ties them together: a shard job (NewShardJob) runs and
//     journals only its own slice, a merge job (NewMergeJob) verifies
//     the union of stores covers every spec exactly once — missing or
//     duplicated specs become a typed *CoverageError listing offenders —
//     and rehydrates results byte-identical to a single-process sweep.
//     Specs that fail or panic still count as done ("done-with-error"):
//     they are journalled, never re-run on resume, and surfaced in the
//     JobReport so zero stats can't silently pass as results. cmd/coupbench
//     is the reference consumer (-shard k/n, -merge dir, -fanout n).
//
// # Quickstart
//
// Run a registered workload by name under two protocols and compare:
//
//	for _, p := range []string{"MESI", "MEUSI"} {
//		st, err := coup.Run("hist",
//			coup.WithCores(64),
//			coup.WithProtocol(p),
//			coup.WithWorkloadParams(coup.WorkloadParams{Size: 100_000, Bins: 512}),
//		)
//		if err != nil {
//			log.Fatal(err)
//		}
//		fmt.Printf("%-6s %d cycles\n", p, st.Cycles)
//	}
//
// Or build a machine and drive a custom kernel (the Fig 1 contended
// counter):
//
//	m, err := coup.NewMachine(coup.WithCores(64), coup.WithProtocol("MEUSI"))
//	if err != nil {
//		log.Fatal(err)
//	}
//	ctr := m.Alloc(64, 64)
//	st := m.Run(func(c *coup.Ctx) {
//		for i := 0; i < 1000; i++ {
//			c.CommAdd64(ctr, 1)
//		}
//	})
//	fmt.Println(st.Cycles, m.ReadWord64(ctr))
//
// Fan a grid of independent runs out over all CPUs (results in input
// order, per-spec errors):
//
//	var specs []coup.RunSpec
//	for _, cores := range []int{1, 16, 32, 64, 96, 128} {
//		for seed := uint64(1); seed <= 5; seed++ {
//			specs = append(specs, coup.RunSpec{
//				Workload: "hist",
//				Options: []coup.Option{
//					coup.WithCores(cores), coup.WithProtocol("MEUSI"), coup.WithSeed(seed),
//				},
//			})
//		}
//	}
//	results, err := coup.Sweep(specs) // or coup.WithParallelism(n)
//
// All lookups by name (protocols, workloads) are case-insensitive, and
// unknown names return typed errors (ErrUnknownProtocol,
// ErrUnknownWorkload) listing what is registered.
//
// # Related: pkg/commute, the software Coup runtime
//
// This package measures COUP on a simulated machine; its sibling
// pkg/commute delivers the same privatize-then-merge strategy as a
// concurrent data-structure library on the real one. The protocol
// concepts map one-to-one — the U state becomes a cache-line-padded
// private shard, the reduction unit becomes merge-on-read, the Fig 5
// GetS flows become the Read path — and the "figsw" experiment
// (coupbench -exp figsw, backed by cmd/commutebench) runs the two side
// by side on the same workload shapes as a
// hardware-vs-simulation cross-validation. See pkg/commute's package
// documentation for the full mapping table.
package coup
