package coup

import (
	"fmt"
	"runtime"
	"sync"
)

// RunSpec describes one simulation in a Sweep: which workload to run and
// how to configure the machine. Exactly one of Workload and Make must be
// set. Everything that shapes the run — cores, protocol, seed, workload
// parameters — lives in the spec itself, so a sweep's results depend only
// on its spec list, never on how the runs are scheduled across workers.
type RunSpec struct {
	// Workload names a registered workload, built with the parameters from
	// Options (WithWorkloadParams), exactly as Run would.
	Workload string
	// Make builds the workload instance directly, bypassing the registry.
	// Workloads are single-run; Make is called once, inside the worker
	// executing the spec.
	Make func() (Workload, error)
	// Options configure the machine, as in Run/RunWorkload.
	Options []Option
}

// SweepResult pairs one spec's stats with its error. As with Run, Stats
// may hold partial results even when Err is non-nil (e.g. a validation
// failure after a completed simulation).
type SweepResult struct {
	Stats Stats
	Err   error
}

// sweepConfig carries sweep-level knobs.
type sweepConfig struct {
	parallelism int
}

// SweepOption configures a Sweep (not the machines inside it).
type SweepOption func(*sweepConfig) error

// WithParallelism bounds the sweep's worker pool at n concurrent
// simulations (n >= 1). The default is runtime.GOMAXPROCS(0); 1 yields a
// fully serial sweep. Parallelism never changes results, only wall-clock
// time.
func WithParallelism(n int) SweepOption {
	return func(c *sweepConfig) error {
		if n < 1 {
			return fmt.Errorf("coup: %w: parallelism must be >= 1, got %d", ErrInvalidOption, n)
		}
		c.parallelism = n
		return nil
	}
}

// Sweep executes every spec on its own isolated machine, fanning the runs
// out across a bounded worker pool, and returns one result per spec in
// input order. Failures — bad specs, option errors, validation failures,
// even panics out of a workload factory or kernel — are captured as that
// spec's Err; one broken run never takes down the sweep. The returned
// error reports only sweep-level misuse (bad SweepOptions).
func Sweep(specs []RunSpec, opts ...SweepOption) ([]SweepResult, error) {
	cfg := sweepConfig{parallelism: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	out := make([]SweepResult, len(specs))
	workers := cfg.parallelism
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i := range specs {
			out[i] = runSpec(specs[i])
		}
		return out, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = runSpec(specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out, nil
}

// runSpec executes one spec, converting panics (workload factories and
// kernels are allowed to panic on setup bugs) into errors.
func runSpec(s RunSpec) (res SweepResult) {
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("coup: sweep run panicked: %v", r)
		}
	}()
	switch {
	case s.Workload != "" && s.Make != nil:
		res.Err = fmt.Errorf("coup: %w: RunSpec sets both Workload and Make", ErrInvalidOption)
	case s.Make != nil:
		w, err := s.Make()
		if err != nil {
			res.Err = fmt.Errorf("coup: sweep workload factory: %w", err)
			return
		}
		res.Stats, res.Err = RunWorkload(w, s.Options...)
	case s.Workload != "":
		res.Stats, res.Err = Run(s.Workload, s.Options...)
	default:
		res.Err = fmt.Errorf("coup: %w: RunSpec needs Workload or Make", ErrInvalidOption)
	}
	return
}
