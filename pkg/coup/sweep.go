package coup

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/pkg/obs"
)

// RunSpec describes one simulation in a Sweep: which workload to run and
// how to configure the machine. Exactly one of Workload and Make must be
// set. Everything that shapes the run — cores, protocol, seed, workload
// parameters — lives in the spec itself, so a sweep's results depend only
// on its spec list, never on how the runs are scheduled across workers.
type RunSpec struct {
	// Workload names a registered workload, built with the parameters from
	// Options (WithWorkloadParams), exactly as Run would.
	Workload string
	// Make builds the workload instance directly, bypassing the registry.
	// Workloads are single-run; Make is called once, inside the worker
	// executing the spec.
	Make func() (Workload, error)
	// Options configure the machine, as in Run/RunWorkload.
	Options []Option
	// Key overrides the spec's durable identity in result stores and
	// merge coverage (see SpecKey). Registry specs derive a content hash
	// automatically and can leave it empty; Make specs participating in
	// store-backed sweeps must set it. Plain Sweep ignores it.
	Key string
}

// SweepResult pairs one spec's stats with its error. As with Run, Stats
// may hold partial results even when Err is non-nil (e.g. a validation
// failure after a completed simulation). Panicked distinguishes the
// recovered-panic flavor of Err (a workload factory or kernel panic) so
// store-backed sweeps and merge coverage can surface those specs
// explicitly rather than passing their zero stats off as results.
type SweepResult struct {
	Stats    Stats
	Err      error
	Panicked bool
}

// sweepConfig carries sweep-level knobs.
type sweepConfig struct {
	parallelism int
	arena       bool
	arenaCap    int
	metrics     *obs.Registry
}

// SweepOption configures a Sweep (not the machines inside it).
type SweepOption func(*sweepConfig) error

// WithParallelism bounds the sweep's worker pool at n concurrent
// simulations (n >= 1). The default is runtime.GOMAXPROCS(0); 1 yields a
// fully serial sweep. Parallelism never changes results, only wall-clock
// time. n < 1 is an error (ErrInvalidParallelism), never a silent clamp.
func WithParallelism(n int) SweepOption {
	return func(c *sweepConfig) error {
		if n < 1 {
			return fmt.Errorf("coup: %w: parallelism must be >= 1, got %d", ErrInvalidParallelism, n)
		}
		c.parallelism = n
		return nil
	}
}

// WithMachineArena toggles the per-worker machine arenas (default on).
// With arenas on, each worker recycles machine-sized scratch — cache and
// directory arrays, backing-store pages, bank tables — across the specs
// it executes, making repeated small simulations allocation-free at
// steady state. Arenas never change results (sweep tables are
// byte-identical either way, which TestSweepArenaGolden pins); turn them
// off only to trade that speed for the lowest possible peak memory.
func WithMachineArena(on bool) SweepOption {
	return func(c *sweepConfig) error {
		c.arena = on
		return nil
	}
}

// WithArenaCap bounds each worker's machine arena at n resident machines
// (n >= 1), evicting the least-recently-used geometry when a release
// would exceed it. Wide multi-geometry sweeps — many core counts × cache
// shapes — otherwise keep one pooled machine per shape per worker
// resident for the sweep's lifetime; a cap trades warm-hit rate for
// bounded peak memory. Capping never changes results (the arena rebuilds
// evicted shapes cold), only speed. Requires arenas on (the default);
// n < 1 is an error (ErrInvalidOption).
func WithArenaCap(n int) SweepOption {
	return func(c *sweepConfig) error {
		if n < 1 {
			return fmt.Errorf("coup: %w: arena cap must be >= 1, got %d", ErrInvalidOption, n)
		}
		c.arenaCap = n
		return nil
	}
}

// WithSweepMetrics publishes sweep progress into reg as it happens:
// coup_sweep_specs_total (specs finished), coup_sweep_busy_ns_total
// (summed per-worker simulation time), and coup_sweep_arena_warm_total /
// coup_sweep_arena_cold_total (machine pool hits vs fresh builds, the
// arena warm-hit rate). The counters are obs update-only writes from
// each worker, so a progress reader (cmd/coupbench -progress) can reduce
// them live without perturbing the sweep. Nil reg disables metrics (the
// default); metrics never change results.
func WithSweepMetrics(reg *obs.Registry) SweepOption {
	return func(c *sweepConfig) error {
		c.metrics = reg
		return nil
	}
}

// Sweeper is a validated, reusable sweep engine. NewSweeper derives the
// worker count and builds the per-worker machine arenas once; every Run
// then fans its specs out over that fixed pool, so repeated sweeps (a
// benchmark loop, an experiment series) keep their recycled machines
// across calls instead of re-deriving configuration per sweep. A Sweeper
// is safe for sequential reuse, not for concurrent Run calls (the
// per-worker arenas are single-threaded by design).
type Sweeper struct {
	parallelism int
	arenas      []*sim.Arena // one per worker slot; nil when arenas are off

	// Progress metrics; all nil unless WithSweepMetrics was given.
	specsDone  *obs.Counter
	busyNs     *obs.Counter
	arenaWarm  *obs.Counter
	arenaCold  *obs.Counter
	arenaSyncs []arenaSync // per-worker last-published pool stats
}

// arenaSync tracks what a worker's arena counters last published, so
// each spec's finish adds only the delta to the shared totals.
type arenaSync struct{ warm, cold uint64 }

// NewSweeper validates opts and returns a reusable Sweeper. Option errors
// (e.g. WithParallelism(0)) surface here, typed, rather than inside every
// sweep call.
func NewSweeper(opts ...SweepOption) (*Sweeper, error) {
	cfg := sweepConfig{parallelism: runtime.GOMAXPROCS(0), arena: true}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	s := &Sweeper{parallelism: cfg.parallelism}
	if cfg.arenaCap > 0 && !cfg.arena {
		return nil, fmt.Errorf("coup: %w: WithArenaCap requires machine arenas on", ErrInvalidOption)
	}
	if cfg.arena {
		s.arenas = make([]*sim.Arena, cfg.parallelism)
		for i := range s.arenas {
			s.arenas[i] = sim.NewArena()
			s.arenas[i].SetCap(cfg.arenaCap)
		}
	}
	if m := cfg.metrics; m != nil {
		s.specsDone = m.Counter("coup_sweep_specs_total", "Sweep specs finished.")
		s.busyNs = m.Counter("coup_sweep_busy_ns_total", "Summed per-worker simulation time in nanoseconds.")
		s.arenaWarm = m.Counter("coup_sweep_arena_warm_total", "Machines served from a worker's arena pool.")
		s.arenaCold = m.Counter("coup_sweep_arena_cold_total", "Machines built fresh (arena pool miss).")
		s.arenaSyncs = make([]arenaSync, cfg.parallelism)
	}
	return s, nil
}

// Run executes every spec on its own isolated machine, fanning the runs
// out across the Sweeper's worker pool, and returns one result per spec
// in input order. Failures — bad specs, option errors, validation
// failures, even panics out of a workload factory or kernel — are
// captured as that spec's Err; one broken run never takes down the sweep.
func (s *Sweeper) Run(specs []RunSpec) []SweepResult {
	return s.RunEach(specs, nil)
}

// RunEach is Run with a completion callback: done(i, r) fires once per
// spec as its result lands, before Run returns, so callers can spill
// results durably (the SweepJob result store) while the sweep is still
// in flight — an interrupted sweep then keeps everything finished so
// far. done may be called concurrently from worker goroutines and must
// be safe for that; i is the spec's input index. A nil done makes
// RunEach identical to Run.
func (s *Sweeper) RunEach(specs []RunSpec, done func(i int, r SweepResult)) []SweepResult {
	out := make([]SweepResult, len(specs))
	finish := func(i int, r SweepResult) {
		out[i] = r
		if done != nil {
			done(i, r)
		}
	}
	workers := s.parallelism
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		a := s.arena(0)
		for i := range specs {
			finish(i, s.runCounted(0, a, specs[i]))
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := s.arena(w)
			for i := range idx {
				finish(i, s.runCounted(w, a, specs[i]))
			}
		}(w)
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// arena returns worker w's machine arena, or nil when arenas are off.
func (s *Sweeper) arena(w int) *sim.Arena {
	if s.arenas == nil {
		return nil
	}
	return s.arenas[w]
}

// runCounted executes one spec and, when progress metrics are on,
// publishes its completion: busy time, the spec count, and the worker
// arena's pool-stat deltas since its last publish. Each write is an obs
// update-only add on the worker's own shard, so progress costs the sweep
// nothing measurable and a concurrent reader sees live totals.
//
// "Done" deliberately includes failures: a spec that errored — or
// panicked and was recovered — counts in coup_sweep_specs_total exactly
// like a clean run, and the result store records it the same way
// (done-with-error). The counter, the store and the merge coverage
// report therefore always agree on how many specs finished;
// TestSweepPanickedSpecIsDone pins this.
func (s *Sweeper) runCounted(w int, a *sim.Arena, spec RunSpec) SweepResult {
	if s.specsDone == nil {
		return runSpec(a, spec)
	}
	t0 := time.Now()
	res := runSpec(a, spec)
	s.busyNs.Add(time.Since(t0).Nanoseconds())
	s.specsDone.Inc()
	if a != nil {
		warm, cold := a.PoolStats()
		last := &s.arenaSyncs[w]
		s.arenaWarm.Add(int64(warm - last.warm))
		s.arenaCold.Add(int64(cold - last.cold))
		last.warm, last.cold = warm, cold
	}
	return res
}

// Sweep executes every spec across a bounded worker pool and returns one
// result per spec in input order; see Sweeper.Run for the execution
// contract. The returned error reports only sweep-level misuse (bad
// SweepOptions). Callers issuing many sweeps can build one Sweeper and
// reuse it, keeping the per-worker machine arenas warm across calls.
func Sweep(specs []RunSpec, opts ...SweepOption) ([]SweepResult, error) {
	s, err := NewSweeper(opts...)
	if err != nil {
		return nil, err
	}
	return s.Run(specs), nil
}

// runSpec executes one spec, converting panics (workload factories and
// kernels are allowed to panic on setup bugs) into errors. Machines come
// from arena when non-nil.
func runSpec(arena *sim.Arena, s RunSpec) (res SweepResult) {
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("coup: sweep run panicked: %v", r)
			res.Panicked = true
		}
	}()
	switch {
	case s.Workload != "" && s.Make != nil:
		res.Err = fmt.Errorf("coup: %w: RunSpec sets both Workload and Make", ErrInvalidOption)
	case s.Make != nil:
		w, err := s.Make()
		if err != nil {
			res.Err = fmt.Errorf("coup: sweep workload factory: %w", err)
			return
		}
		res.Stats, res.Err = runWorkloadIn(arena, w, s.Options)
	case s.Workload != "":
		res.Stats, res.Err = runIn(arena, s.Workload, s.Options)
	default:
		res.Err = fmt.Errorf("coup: %w: RunSpec needs Workload or Make", ErrInvalidOption)
	}
	return
}
