package coup

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors returned by the registries and the machine builder.
// Match them with errors.Is; the wrapped messages carry specifics (which
// name, which option, what is registered).
var (
	// ErrUnknownProtocol is returned by protocol lookups for names no
	// registered protocol answers to.
	ErrUnknownProtocol = errors.New("unknown protocol")
	// ErrUnknownWorkload is returned by workload lookups for names no
	// registered workload answers to.
	ErrUnknownWorkload = errors.New("unknown workload")
	// ErrDuplicateName is returned when registering a protocol or workload
	// under a name that is already taken (names are compared
	// case-insensitively).
	ErrDuplicateName = errors.New("name already registered")
	// ErrInvalidOption is returned by NewMachine and Run when an option's
	// value is out of range (zero cores, non-power-of-two bank counts, ...).
	ErrInvalidOption = errors.New("invalid option")
	// ErrConflictingOptions is returned when the same knob is set twice
	// with different values in one option list.
	ErrConflictingOptions = errors.New("conflicting options")
	// ErrInvalidParallelism is returned by NewSweeper and Sweep for
	// WithParallelism(n) with n < 1. It wraps ErrInvalidOption, so callers
	// matching the broader sentinel keep working.
	ErrInvalidParallelism = fmt.Errorf("%w: invalid parallelism", ErrInvalidOption)
	// ErrInvalidShard is returned by ShardSpecs/ParseShard for shard
	// coordinates outside 0 <= k < n (or unparseable "k/n" syntax).
	ErrInvalidShard = errors.New("invalid shard")
	// ErrSpecUnkeyed is returned by SpecKey for a RunSpec whose identity
	// cannot be derived (a Make closure with no explicit Key); such specs
	// cannot participate in store-backed sweeps.
	ErrSpecUnkeyed = errors.New("spec has no durable key")
	// ErrStoreMismatch is returned when opening or merging a result store
	// whose header (namespace, fingerprint, shard coordinates) does not
	// match what the job expects — results from a different grid or
	// parameterization never silently mix.
	ErrStoreMismatch = errors.New("result store mismatch")
)

// unknownNameError formats "unknown X "name" (have: a, b, c)" wrapping the
// given sentinel.
func unknownNameError(sentinel error, name string, have []string) error {
	return fmt.Errorf("coup: %w %q (have: %s)", sentinel, name, strings.Join(have, ", "))
}
