package coup

import (
	"testing"

	"repro/pkg/obs"
)

// TestSweepMetrics pins the progress-metrics contract: a metered sweep
// publishes one spec completion per spec, busy time, and arena pool
// stats whose warm+cold total equals the machines built — while results
// stay identical to an unmetered sweep.
func TestSweepMetrics(t *testing.T) {
	var specs []RunSpec
	for i := 0; i < 6; i++ {
		specs = append(specs, counterSpec(2, uint64(i+1)))
	}

	reg := obs.NewRegistry()
	s, err := NewSweeper(WithParallelism(2), WithSweepMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	metered := s.Run(specs)
	bare, err := Sweep(specs, WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if metered[i].Err != nil || bare[i].Err != nil {
			t.Fatalf("spec %d errored: metered=%v bare=%v", i, metered[i].Err, bare[i].Err)
		}
		if metered[i].Stats != bare[i].Stats {
			t.Errorf("spec %d: metrics changed results", i)
		}
	}

	if got := reg.Counter("coup_sweep_specs_total", "").Value(); got != int64(len(specs)) {
		t.Errorf("coup_sweep_specs_total = %d, want %d", got, len(specs))
	}
	if got := reg.Counter("coup_sweep_busy_ns_total", "").Value(); got <= 0 {
		t.Errorf("coup_sweep_busy_ns_total = %d, want > 0", got)
	}
	warm := reg.Counter("coup_sweep_arena_warm_total", "").Value()
	cold := reg.Counter("coup_sweep_arena_cold_total", "").Value()
	if warm+cold != int64(len(specs)) {
		t.Errorf("arena warm+cold = %d+%d, want %d machine constructions", warm, cold, len(specs))
	}
	if cold < 1 {
		t.Errorf("arena cold = %d, want >= 1 (first build per worker is always cold)", cold)
	}

	// A second Run on the same Sweeper keeps accumulating, and its warm
	// arenas now serve every machine.
	warmBefore := warm
	_ = s.Run(specs)
	if got := reg.Counter("coup_sweep_specs_total", "").Value(); got != int64(2*len(specs)) {
		t.Errorf("after reuse, coup_sweep_specs_total = %d, want %d", got, 2*len(specs))
	}
	warm = reg.Counter("coup_sweep_arena_warm_total", "").Value()
	if warm-warmBefore != int64(len(specs)) {
		t.Errorf("reused sweep warm hits = %d, want %d (all pooled)", warm-warmBefore, len(specs))
	}
}
