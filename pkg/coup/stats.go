package coup

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"

	"repro/internal/sim"
	"repro/internal/stats"
)

// AMATBreakdown is the Fig 11 decomposition of average memory access time,
// in cycles per access attributed to each level of the hierarchy.
type AMATBreakdown struct {
	L1         float64 `json:"l1"`
	L2         float64 `json:"l2"`
	L3         float64 `json:"l3"`
	OffChipNet float64 `json:"off_chip_net"`
	L4Inval    float64 `json:"l4_inval"`
	L4         float64 `json:"l4"`
	MainMem    float64 `json:"main_mem"`
}

// Traffic is the Sec 5.2 traffic split: on-chip (core↔L3), off-chip
// (chip↔L4 over the dancehall links) and memory.
type Traffic struct {
	OnChipMsgs   uint64 `json:"on_chip_msgs"`
	OnChipBytes  uint64 `json:"on_chip_bytes"`
	OffChipMsgs  uint64 `json:"off_chip_msgs"`
	OffChipBytes uint64 `json:"off_chip_bytes"`
	MemBytes     uint64 `json:"mem_bytes"`
}

// Stats aggregates everything one simulation run measures. The type is
// stable and JSON-serializable; it is the unit of output for Run,
// Machine.Run, and downstream experiment harnesses.
type Stats struct {
	// Protocol and Workload name the run (Workload is empty for custom
	// kernels driven through Machine.Run).
	Protocol string `json:"protocol"`
	Workload string `json:"workload,omitempty"`
	Cores    int    `json:"cores"`

	// Cycles is the simulated end-to-end run time (max core finish time).
	Cycles uint64 `json:"cycles"`
	// Instructions counts memory operations plus Work()-modelled
	// computation, for the Table 2 instruction-mix fractions.
	Instructions uint64 `json:"instructions"`

	// Operation counts.
	Accesses    uint64 `json:"accesses"`
	Loads       uint64 `json:"loads"`
	Stores      uint64 `json:"stores"`
	Atomics     uint64 `json:"atomics"`
	CommUpdates uint64 `json:"comm_updates"`

	// Hit distribution (where each access was satisfied).
	L1Hits      uint64 `json:"l1_hits"`
	L2Hits      uint64 `json:"l2_hits"`
	L3Hits      uint64 `json:"l3_hits"`
	L4Hits      uint64 `json:"l4_hits"`
	MemAccesses uint64 `json:"mem_accesses"`
	// ULocalHits counts commutative updates satisfied in the private cache
	// (U or M/E state) — COUP's fast path.
	ULocalHits uint64 `json:"u_local_hits"`

	// AMAT is the average memory access time in cycles; Breakdown
	// decomposes it per hierarchy level (Fig 11).
	AMAT      float64       `json:"amat"`
	Breakdown AMATBreakdown `json:"amat_breakdown"`

	// Protocol events.
	Invalidations     uint64 `json:"invalidations"`
	Downgrades        uint64 `json:"downgrades"`
	FullReductions    uint64 `json:"full_reductions"`
	PartialReductions uint64 `json:"partial_reductions"`
	TypeSwitches      uint64 `json:"type_switches"`
	UGrants           uint64 `json:"u_grants"`

	Traffic Traffic `json:"traffic"`
}

// statsFrom converts the simulator's raw counters to the public type.
func statsFrom(st sim.Stats, cfg sim.Config, workload string) Stats {
	b := st.AMATBreakdown()
	return Stats{
		Protocol:     cfg.Protocol.String(),
		Workload:     workload,
		Cores:        cfg.Cores,
		Cycles:       st.Cycles,
		Instructions: st.Instrs,
		Accesses:     st.Accesses,
		Loads:        st.Loads,
		Stores:       st.Stores,
		Atomics:      st.Atomics,
		CommUpdates:  st.CommUpdates,
		L1Hits:       st.L1Hits,
		L2Hits:       st.L2Hits,
		L3Hits:       st.L3Hits,
		L4Hits:       st.L4Hits,
		MemAccesses:  st.MemAccs,
		ULocalHits:   st.ULocalHits,
		AMAT:         st.AMAT(),
		Breakdown: AMATBreakdown{
			L1: b[0], L2: b[1], L3: b[2], OffChipNet: b[3],
			L4Inval: b[4], L4: b[5], MainMem: b[6],
		},
		Invalidations:     st.Invalidations,
		Downgrades:        st.Downgrades,
		FullReductions:    st.FullReductions,
		PartialReductions: st.PartialReductions,
		TypeSwitches:      st.TypeSwitches,
		UGrants:           st.UGrants,
		Traffic: Traffic{
			OnChipMsgs:   st.OnChipMsgs,
			OnChipBytes:  st.OnChipBytes,
			OffChipMsgs:  st.OffChipMsgs,
			OffChipBytes: st.OffChipBytes,
			MemBytes:     st.MemBytes,
		},
	}
}

// MeanStats aggregates repeated seeded runs of the same configuration into
// one Stats whose numeric fields are per-field means (integer counters
// rounded to nearest). Identity fields (Protocol, Workload, Cores) are
// taken from the first run. It is the aggregation the experiment harness
// applies across a data point's reps; with a single run it is the
// identity.
func MeanStats(runs ...Stats) Stats {
	if len(runs) == 0 {
		return Stats{}
	}
	out := runs[0]
	if len(runs) == 1 {
		return out
	}
	srcs := make([]reflect.Value, len(runs))
	for i := range runs {
		srcs[i] = reflect.ValueOf(&runs[i]).Elem()
	}
	meanFields(reflect.ValueOf(&out).Elem(), srcs)
	return out
}

// meanFields recursively averages uint64 and float64 fields of dst across
// srcs, leaving every other kind (strings, ints) at dst's current — first
// run's — value.
func meanFields(dst reflect.Value, srcs []reflect.Value) {
	switch dst.Kind() {
	case reflect.Struct:
		for i := 0; i < dst.NumField(); i++ {
			subs := make([]reflect.Value, len(srcs))
			for j, s := range srcs {
				subs[j] = s.Field(i)
			}
			meanFields(dst.Field(i), subs)
		}
	case reflect.Uint64:
		var sum float64
		for _, s := range srcs {
			sum += float64(s.Uint())
		}
		dst.SetUint(uint64(math.Round(sum / float64(len(srcs)))))
	case reflect.Float64:
		var sum float64
		for _, s := range srcs {
			sum += s.Float()
		}
		dst.SetFloat(sum / float64(len(srcs)))
	}
}

// CyclesCI95 returns the half-width of the 95% confidence interval of the
// mean cycle count across repeated seeded runs (Student-t; 0 for fewer
// than two runs). Pair it with MeanStats to report a data point as
// mean ± CI, following Alameldeen & Wood's simulation methodology.
func CyclesCI95(runs ...Stats) float64 {
	cycles := make([]float64, len(runs))
	for i, st := range runs {
		cycles[i] = float64(st.Cycles)
	}
	return stats.CI95(cycles)
}

// CommFraction returns commutative updates as a fraction of all modelled
// instructions (Table 2 / Sec 5.2 reporting).
func (s Stats) CommFraction() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.CommUpdates) / float64(s.Instructions)
}

// JSON returns the stats as indented JSON.
func (s Stats) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// String summarizes the run for command-line output.
func (s Stats) String() string {
	b := s.Breakdown
	head := s.Protocol
	if s.Workload != "" {
		head = s.Workload + " under " + s.Protocol
	}
	return fmt.Sprintf(
		"%s on %d cores:\n"+
			"cycles=%d accesses=%d (ld=%d st=%d at=%d cu=%d) hits L1=%d L2=%d L3=%d L4=%d mem=%d\n"+
			"AMAT=%.2f [L1=%.2f L2=%.2f L3=%.2f net=%.2f l4inv=%.2f L4=%.2f mem=%.2f]\n"+
			"inval=%d downg=%d fullred=%d partred=%d typesw=%d ugrants=%d ulocal=%d\n"+
			"traffic onchip=%dB offchip=%dB mem=%dB",
		head, s.Cores,
		s.Cycles, s.Accesses, s.Loads, s.Stores, s.Atomics, s.CommUpdates,
		s.L1Hits, s.L2Hits, s.L3Hits, s.L4Hits, s.MemAccesses,
		s.AMAT, b.L1, b.L2, b.L3, b.OffChipNet, b.L4Inval, b.L4, b.MainMem,
		s.Invalidations, s.Downgrades, s.FullReductions, s.PartialReductions,
		s.TypeSwitches, s.UGrants, s.ULocalHits,
		s.Traffic.OnChipBytes, s.Traffic.OffChipBytes, s.Traffic.MemBytes)
}
