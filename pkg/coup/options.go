package coup

import (
	"fmt"

	"repro/internal/sim"
)

// Option configures a machine being built by NewMachine or Run. Options
// are applied in order; setting the same knob twice with different values
// is an error (ErrConflictingOptions) rather than a silent last-wins, so
// composed option lists fail loudly.
type Option func(*builder) error

// builder accumulates options on top of the Table 1 defaults.
type builder struct {
	cfg  sim.Config
	wp   WorkloadParams
	seen map[string]any
}

func newBuilder(opts []Option) (*builder, error) {
	b := &builder{
		cfg:  sim.DefaultConfig(64, sim.MEUSI),
		seen: map[string]any{},
	}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(b); err != nil {
			return nil, err
		}
	}
	if err := b.cfg.Validate(); err != nil {
		return nil, fmt.Errorf("coup: %w: %v", ErrInvalidOption, err)
	}
	return b, nil
}

// set records a knob assignment, rejecting a second assignment with a
// different value.
func (b *builder) set(key string, v any) error {
	if old, dup := b.seen[key]; dup && old != v {
		return fmt.Errorf("coup: %w: %s set to %v and then %v", ErrConflictingOptions, key, old, v)
	}
	b.seen[key] = v
	return nil
}

func positive(key string, n int) error {
	if n < 1 {
		return fmt.Errorf("coup: %w: %s must be >= 1, got %d", ErrInvalidOption, key, n)
	}
	return nil
}

func powerOfTwo(key string, n int) error {
	if err := positive(key, n); err != nil {
		return err
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("coup: %w: %s must be a power of two, got %d", ErrInvalidOption, key, n)
	}
	return nil
}

// WithProtocol selects the coherence protocol by registry name
// (case-insensitive). The default is "MEUSI", the full COUP protocol.
func WithProtocol(name string) Option {
	return func(b *builder) error {
		id, ok := sim.ProtocolByName(name)
		if !ok {
			return unknownNameError(ErrUnknownProtocol, name, ProtocolNames())
		}
		if err := b.set("protocol", id.Spec().Name); err != nil {
			return err
		}
		b.cfg.Protocol = id
		return nil
	}
}

// WithCores sets the total simulated core count (the paper sweeps 1–128;
// any count ≥ 1 up to 64 chips' worth is accepted, powers of two not
// required — the paper itself measures 96).
func WithCores(n int) Option {
	return func(b *builder) error {
		if err := positive("cores", n); err != nil {
			return err
		}
		if err := b.set("cores", n); err != nil {
			return err
		}
		b.cfg.Cores = n
		return nil
	}
}

// WithCoresPerChip sets the cores per processor chip (Table 1: 16). Must
// be a power of two.
func WithCoresPerChip(n int) Option {
	return func(b *builder) error {
		if err := powerOfTwo("cores per chip", n); err != nil {
			return err
		}
		if err := b.set("cores per chip", n); err != nil {
			return err
		}
		b.cfg.CoresPerChip = n
		return nil
	}
}

// WithSeed sets the machine seed driving workload RNGs and the
// non-determinism injection used for confidence intervals.
func WithSeed(seed uint64) Option {
	return func(b *builder) error {
		if err := b.set("seed", seed); err != nil {
			return err
		}
		b.cfg.Seed = seed
		return nil
	}
}

// WithJitter sets the maximum per-miss random latency perturbation in
// cycles (Alameldeen-Wood non-determinism injection; 0 disables it).
func WithJitter(cycles uint64) Option {
	return func(b *builder) error {
		if err := b.set("jitter", cycles); err != nil {
			return err
		}
		b.cfg.Jitter = cycles
		return nil
	}
}

// WithL1 sets the per-core L1D geometry (Table 1: 32 KB, 8-way).
func WithL1(sizeBytes, ways int) Option {
	return cacheOption("L1", sizeBytes, ways, func(cfg *sim.Config) (*int, *int) { return &cfg.L1Size, &cfg.L1Ways })
}

// WithL2 sets the per-core private L2 geometry (Table 1: 256 KB, 8-way).
func WithL2(sizeBytes, ways int) Option {
	return cacheOption("L2", sizeBytes, ways, func(cfg *sim.Config) (*int, *int) { return &cfg.L2Size, &cfg.L2Ways })
}

func cacheOption(level string, sizeBytes, ways int, fields func(*sim.Config) (*int, *int)) Option {
	return func(b *builder) error {
		if err := positive(level+" ways", ways); err != nil {
			return err
		}
		if sizeBytes < 64*ways {
			return fmt.Errorf("coup: %w: %s size %dB below one line per way", ErrInvalidOption, level, sizeBytes)
		}
		if err := b.set(level, [2]int{sizeBytes, ways}); err != nil {
			return err
		}
		sz, w := fields(&b.cfg)
		*sz, *w = sizeBytes, ways
		return nil
	}
}

// WithL3PerChip sets the shared L3 capacity per processor chip in bytes
// (Table 1: 32 MB). Associativity stays at the Table 1 default.
func WithL3PerChip(bytes int) Option {
	return func(b *builder) error {
		if bytes < 64*b.cfg.L3Ways {
			return fmt.Errorf("coup: %w: L3 per chip %dB too small", ErrInvalidOption, bytes)
		}
		if err := b.set("L3 per chip", bytes); err != nil {
			return err
		}
		b.cfg.L3Size = bytes
		return nil
	}
}

// WithL4PerChip sets the L4 capacity per memory chip in bytes (Table 1:
// 128 MB).
func WithL4PerChip(bytes int) Option {
	return func(b *builder) error {
		if bytes < 64*b.cfg.L4Ways {
			return fmt.Errorf("coup: %w: L4 per chip %dB too small", ErrInvalidOption, bytes)
		}
		if err := b.set("L4 per chip", bytes); err != nil {
			return err
		}
		b.cfg.L4Size = bytes
		return nil
	}
}

// WithL3Banks sets the L3 bank count per chip (Table 1: 8). Must be a
// power of two.
func WithL3Banks(n int) Option {
	return func(b *builder) error {
		if err := powerOfTwo("L3 banks", n); err != nil {
			return err
		}
		if err := b.set("L3 banks", n); err != nil {
			return err
		}
		b.cfg.L3Banks = n
		return nil
	}
}

// WithL4Banks sets the L4 bank count per chip (Table 1: 8). Must be a
// power of two.
func WithL4Banks(n int) Option {
	return func(b *builder) error {
		if err := powerOfTwo("L4 banks", n); err != nil {
			return err
		}
		if err := b.set("L4 banks", n); err != nil {
			return err
		}
		b.cfg.L4Banks = n
		return nil
	}
}

// WithMemChannels sets the DDR3 channel count per memory chip (Table 1:
// 4). Must be a power of two.
func WithMemChannels(n int) Option {
	return func(b *builder) error {
		if err := powerOfTwo("memory channels", n); err != nil {
			return err
		}
		if err := b.set("memory channels", n); err != nil {
			return err
		}
		b.cfg.MemChannels = n
		return nil
	}
}

// WithFlatReductions disables hierarchical reductions (Sec 3.2 ablation):
// the L4 collects one partial per core instead of one per chip.
func WithFlatReductions(flat bool) Option {
	return func(b *builder) error {
		if err := b.set("flat reductions", flat); err != nil {
			return err
		}
		b.cfg.FlatReductions = flat
		return nil
	}
}

// WithReductionALU sets the reduction unit's throughput and latency
// (Sec 5.1: the default 2-stage pipelined 256-bit ALU reduces one line
// every 2 cycles with 3-cycle latency; Sec 5.5 compares an unpipelined
// 64-bit ALU at one line per 16 cycles).
func WithReductionALU(cyclesPerLine, latency uint64) Option {
	return func(b *builder) error {
		if cyclesPerLine < 1 {
			return fmt.Errorf("coup: %w: reduction cycles/line must be >= 1", ErrInvalidOption)
		}
		if err := b.set("reduction ALU", [2]uint64{cyclesPerLine, latency}); err != nil {
			return err
		}
		b.cfg.ReduceCyclesPerLine = cyclesPerLine
		b.cfg.ReduceLatency = latency
		return nil
	}
}

// WithWorkloadParams sets the size and shape parameters handed to the
// workload factory when Run builds the workload by name. It has no effect
// on NewMachine.
func WithWorkloadParams(p WorkloadParams) Option {
	return func(b *builder) error {
		if err := b.set("workload params", p); err != nil {
			return err
		}
		b.wp = p
		return nil
	}
}
