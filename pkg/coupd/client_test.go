package coupd

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// noJitter pins the backoff to its upper bound's floor: rand(0,n) -> 0,
// so sleeps collapse to the Retry-After-Ms floor (or zero).
func noJitter(int64) int64 { return 0 }

func chaosClient(ts *httptest.Server, ft *faultnet.Transport, opts ...ClientOption) *Client {
	base := []ClientOption{
		WithHTTPClient(ft.Client()),
		WithJitterSource(noJitter),
		WithBackoff(time.Millisecond, 4*time.Millisecond),
		WithRetryBudget(10 * time.Second),
	}
	return NewClient(ts.URL, append(base, opts...)...)
}

// TestClientRetriesLostAck pins the canonical duplicate-generating
// fault: the batch applies, the ack is lost, the retry is answered from
// the server's dedup session — applied exactly once.
func TestClientRetriesLostAck(t *testing.T) {
	_, ts := newTestServer(t)
	ft := faultnet.New(1, faultnet.WithInner(http.DefaultTransport), faultnet.WithRate(0))
	sess := chaosClient(ts, ft).Session("lost-ack")

	ft.Schedule(faultnet.DropResponse)
	res, err := sess.Send(context.Background(), []Update{inc("la"), inc("la")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 || !res.Deduped || res.Applied != 2 || res.Seq != 1 {
		t.Fatalf("lost-ack send: %+v, want 2 attempts, deduped, applied 2, seq 1", res)
	}
	if v := counterValue(t, ts.URL, "la"); v != 2 {
		t.Errorf("counter = %d, want 2 (no double apply)", v)
	}
}

// TestClientRetriesUndelivered: faults where the server never saw the
// batch (connection refused, synthesized 500) retry to a first-time
// apply, not a dedup answer.
func TestClientRetriesUndelivered(t *testing.T) {
	_, ts := newTestServer(t)
	ft := faultnet.New(1, faultnet.WithInner(http.DefaultTransport), faultnet.WithRate(0))
	sess := chaosClient(ts, ft).Session("undelivered")

	ft.Schedule(faultnet.DropBeforeSend, faultnet.Inject500)
	res, err := sess.Send(context.Background(), []Update{inc("ud")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 || res.Deduped {
		t.Fatalf("send through 2 undelivered faults: %+v, want 3 attempts, not deduped", res)
	}
	if v := counterValue(t, ts.URL, "ud"); v != 1 {
		t.Errorf("counter = %d, want 1", v)
	}
}

// TestClientRetriesTruncatedAck: a 200 with a half-cut body is not an
// ack; the retry resolves it through the dedup session.
func TestClientRetriesTruncatedAck(t *testing.T) {
	_, ts := newTestServer(t)
	ft := faultnet.New(1, faultnet.WithInner(http.DefaultTransport), faultnet.WithRate(0))
	sess := chaosClient(ts, ft).Session("truncated")

	ft.Schedule(faultnet.TruncateBody)
	res, err := sess.Send(context.Background(), []Update{inc("tr")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 || !res.Deduped || res.Applied != 1 {
		t.Fatalf("truncated-ack send: %+v, want 2 attempts, deduped, applied 1", res)
	}
	if v := counterValue(t, ts.URL, "tr"); v != 1 {
		t.Errorf("counter = %d, want 1", v)
	}
}

// TestClient429HonorsRetryAfterMs pins the backpressure hint: with the
// jitter pinned to zero, the retry sleep is exactly the server's
// Retry-After-Ms floor.
func TestClient429HonorsRetryAfterMs(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Retry-After-Ms", "30")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"saturated"}`))
			return
		}
		w.Write([]byte(`{"applied":1}`))
	}))
	defer srv.Close()

	cl := NewClient(srv.URL, WithJitterSource(noJitter), WithBackoff(time.Millisecond, 4*time.Millisecond))
	t0 := time.Now()
	res, err := cl.Session("ra").Send(context.Background(), []Update{inc("x")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	// Jitter is pinned to 0, so the only sleep is the 30ms floor; the
	// whole-second Retry-After must NOT be the floor used.
	if elapsed := time.Since(t0); elapsed < 30*time.Millisecond || elapsed > 900*time.Millisecond {
		t.Errorf("429 retry took %v, want ~30ms (Retry-After-Ms, not the 1s Retry-After)", elapsed)
	}
}

// TestClientTerminalRejections: 400, 409, and 503 answered definitively
// are not retried and surface as RemoteError.
func TestClientTerminalRejections(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusConflict, http.StatusServiceUnavailable} {
		var calls int
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls++
			w.WriteHeader(status)
			w.Write([]byte(`{"error":"no"}`))
		}))
		cl := NewClient(srv.URL, WithJitterSource(noJitter))
		_, err := cl.Session("term").Send(context.Background(), []Update{inc("x")})
		var re *RemoteError
		if !errors.As(err, &re) || re.Status != status {
			t.Errorf("status %d: err %v, want RemoteError with that status", status, err)
		}
		if calls != 1 {
			t.Errorf("status %d: %d requests, want 1 (no retry)", status, calls)
		}
		srv.Close()
	}
}

// TestClientSeqReuseAfterRejection: a terminal rejection does not burn
// the seq — the corrected batch reuses it, keeping the server's dedup
// window aligned with what actually applied.
func TestClientSeqReuseAfterRejection(t *testing.T) {
	_, ts := newTestServer(t)
	sess := NewClient(ts.URL).Session("seq-reuse")

	bad := []Update{{Name: "sr", Kind: "counter", Op: "no-such-op"}}
	if _, err := sess.Send(context.Background(), bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	res, err := sess.Send(context.Background(), []Update{inc("sr")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 1 {
		t.Fatalf("corrected batch landed at seq %d, want the reused seq 1", res.Seq)
	}
	res, err = sess.Send(context.Background(), []Update{inc("sr")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 2 {
		t.Fatalf("next batch at seq %d, want 2", res.Seq)
	}
	if v := counterValue(t, ts.URL, "sr"); v != 2 {
		t.Errorf("counter = %d, want 2", v)
	}
}

// TestClientBudgetExhaustion: a transport that never delivers makes
// Send fail once the retry budget burns down, with the last transport
// error in the message.
func TestClientBudgetExhaustion(t *testing.T) {
	_, ts := newTestServer(t)
	ft := faultnet.New(1, faultnet.WithInner(http.DefaultTransport),
		faultnet.WithRate(1), faultnet.WithFaults(faultnet.DropBeforeSend))
	cl := chaosClient(ts, ft, WithRetryBudget(50*time.Millisecond))
	_, err := cl.Session("budget").Send(context.Background(), []Update{inc("bx")})
	if err == nil {
		t.Fatal("Send succeeded through a 100% drop transport")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want a deadline-exceeded wrap", err)
	}
	if v := counterValue(t, ts.URL, "bx"); v != 0 {
		t.Errorf("counter = %d, want 0", v)
	}
}
