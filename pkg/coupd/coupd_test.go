package coupd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postBatch(t *testing.T, url string, b BatchRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestE2EConcurrentBatchedWriters is the service's equivalence suite: N
// concurrent writers each POST batched updates to shared structures
// while a reader takes periodic snapshots; afterwards every server-side
// reduction must equal exactly the applied update count. Run under
// -race this also stresses the full handler/registry/commute stack.
func TestE2EConcurrentBatchedWriters(t *testing.T) {
	_, ts := newTestServer(t)
	const (
		writers = 8
		batches = 20
		perB    = 50 // records per batch
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // periodic snapshots racing the writers
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var snap Snapshot
			getJSON(t, ts.URL+"/v1/snapshot/hits", &snap)
			var bulk BulkSnapshot
			getJSON(t, ts.URL+"/v1/snapshot", &bulk)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				var req BatchRequest
				for i := 0; i < perB; i++ {
					req.Updates = append(req.Updates,
						Update{Name: "hits", Kind: "counter", Op: "inc"},
						Update{Name: "lat", Kind: "hist", Op: "add", Args: []int64{int64(i % 32), 2}, Bins: 32},
						Update{Name: "span", Kind: "minmax", Op: "observe", Args: []int64{int64(w*1000 + i)}},
						Update{Name: "refs", Kind: "refcount", Op: "inc"},
					)
				}
				resp, out := postBatch(t, ts.URL, req)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("writer %d batch %d: HTTP %d: %s", w, b, resp.StatusCode, out)
					return
				}
				var br BatchResponse
				if err := json.Unmarshal(out, &br); err != nil || br.Applied != 4*perB {
					t.Errorf("writer %d batch %d: applied %d, err %v", w, b, br.Applied, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	want := int64(writers * batches * perB)
	var snap Snapshot
	if code := getJSON(t, ts.URL+"/v1/snapshot/hits", &snap); code != http.StatusOK {
		t.Fatalf("snapshot hits: HTTP %d", code)
	}
	if snap.Value != want {
		t.Errorf("counter reduced to %d, want %d", snap.Value, want)
	}
	if code := getJSON(t, ts.URL+"/v1/snapshot/lat", &snap); code != http.StatusOK {
		t.Fatalf("snapshot lat: HTTP %d", code)
	}
	if snap.Total != uint64(2*want) || len(snap.Bins) != 32 {
		t.Errorf("hist total %d (bins %d), want %d (32)", snap.Total, len(snap.Bins), 2*want)
	}
	if code := getJSON(t, ts.URL+"/v1/snapshot/span", &snap); code != http.StatusOK {
		t.Fatalf("snapshot span: HTTP %d", code)
	}
	if snap.N != uint64(want) || snap.Min != 0 || snap.Max != int64((writers-1)*1000+perB-1) {
		t.Errorf("minmax n=%d min=%d max=%d, want n=%d min=0 max=%d", snap.N, snap.Min, snap.Max, want, (writers-1)*1000+perB-1)
	}
	if code := getJSON(t, ts.URL+"/v1/snapshot/refs", &snap); code != http.StatusOK {
		t.Fatalf("snapshot refs: HTTP %d", code)
	}
	if snap.Value != want {
		t.Errorf("refcount reduced to %d, want %d", snap.Value, want)
	}

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Updates != 4*want {
		t.Errorf("stats.Updates = %d, want %d", st.Updates, 4*want)
	}
	if st.Batches != writers*batches {
		t.Errorf("stats.Batches = %d, want %d", st.Batches, writers*batches)
	}
	if st.Structures != 4 {
		t.Errorf("stats.Structures = %d, want 4", st.Structures)
	}
	if st.Snapshots == 0 || st.ReduceNsMax == 0 {
		t.Errorf("read-plane telemetry empty: %+v", st)
	}
	if st.InFlight != 0 {
		t.Errorf("stats.InFlight = %d after quiescence", st.InFlight)
	}
}

// slowBatch opens a batch request whose body stalls until release is
// called: the handler acquires its in-flight slot, then blocks in
// decode, deterministically holding the semaphore.
func slowBatch(t *testing.T, url string) (release func(), done <-chan *http.Response) {
	t.Helper()
	pr, pw := io.Pipe()
	ch := make(chan *http.Response, 1)
	go func() {
		req, _ := http.NewRequest("POST", url+"/v1/batch", pr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			ch <- nil
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ch <- resp
	}()
	// Feed the opening of a valid body so the handler is inside Decode.
	if _, err := pw.Write([]byte(`{"updates":[{"name":"x","kind":"counter","op":"inc"}`)); err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			pw.Write([]byte(`]}`))
			pw.Close()
		})
	}, ch
}

// TestBackpressure429 pins saturation behavior: with MaxInFlight(1) and
// one batch deterministically stalled in the handler, the next batch
// must get 429 with a Retry-After header and count as rejected; after
// the stall clears, batches flow again.
func TestBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, WithMaxInFlight(1))
	release, done := slowBatch(t, ts.URL)
	defer release()

	// Wait until the stalled batch holds the slot (visible in stats).
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st Stats
		getJSON(t, ts.URL+"/v1/stats", &st)
		if st.InFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled batch never acquired the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, out := postBatch(t, ts.URL, BatchRequest{Updates: []Update{{Name: "y", Kind: "counter", Op: "inc"}}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: HTTP %d: %s", resp.StatusCode, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(out, &er); err != nil || !strings.Contains(er.Error, "saturated") {
		t.Errorf("429 body %q, err %v", out, err)
	}

	release()
	if resp := <-done; resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stalled batch resolved to %+v", resp)
	}
	resp, out = postBatch(t, ts.URL, BatchRequest{Updates: []Update{{Name: "y", Kind: "counter", Op: "inc"}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-stall batch: HTTP %d: %s", resp.StatusCode, out)
	}
	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Rejected != 1 {
		t.Errorf("stats.Rejected = %d, want 1", st.Rejected)
	}
}

// TestGracefulDrain pins shutdown semantics: Drain waits for in-flight
// batches (which land and are acknowledged), rejects new batches with
// 503, and leaves the read plane serving.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t)
	release, done := slowBatch(t, ts.URL)
	defer release()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st Stats
		getJSON(t, ts.URL+"/v1/stats", &st)
		if st.InFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled batch never acquired the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Drain with the batch still stalled: must time out, not return early.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	err := s.Drain(ctx)
	cancel()
	if err == nil {
		t.Fatal("Drain returned with a batch still in flight")
	}

	// New batches are rejected while draining.
	resp, out := postBatch(t, ts.URL, BatchRequest{Updates: []Update{{Name: "z", Kind: "counter", Op: "inc"}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining batch: HTTP %d: %s", resp.StatusCode, out)
	}

	// Release the stalled batch: Drain completes, the update landed.
	release()
	if resp := <-done; resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight batch resolved to %+v during drain", resp)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	var snap Snapshot
	if code := getJSON(t, ts.URL+"/v1/snapshot/x", &snap); code != http.StatusOK || snap.Value != 1 {
		t.Errorf("drained snapshot x: HTTP %d, value %d (want 200, 1)", code, snap.Value)
	}
	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if !st.Draining {
		t.Error("stats does not report draining")
	}
}

// TestRegistryTypedErrors pins the error taxonomy and its pkg/coup-style
// messages (unknown names list the valid set).
func TestRegistryTypedErrors(t *testing.T) {
	g := NewRegistry()
	cases := []struct {
		u    Update
		want error
	}{
		{Update{Name: "a", Kind: "bogus", Op: "inc"}, ErrUnknownKind},
		{Update{Name: "", Kind: "counter", Op: "inc"}, ErrBadUpdate},
		{Update{Name: "a/b", Kind: "counter", Op: "inc"}, ErrBadUpdate},
		{Update{Name: "c", Kind: "counter", Op: "observe"}, ErrUnknownOp},
		{Update{Name: "c", Kind: "counter", Op: "add"}, ErrBadUpdate},                 // missing delta
		{Update{Name: "h", Kind: "hist", Op: "inc", Args: []int64{99}}, ErrBadUpdate}, // bin >= DefaultBins
		{Update{Name: "h", Kind: "hist", Op: "add", Args: []int64{1, -2}}, ErrBadUpdate},
		{Update{Name: "m", Kind: "minmax", Op: "inc"}, ErrUnknownOp},
		{Update{Name: "r", Kind: "refcount", Op: "observe", Args: []int64{1}}, ErrUnknownOp},
	}
	// Seed the entries the arg-error cases assume exist.
	for _, u := range []Update{
		{Name: "c", Kind: "counter", Op: "inc"},
		{Name: "h", Kind: "hist", Op: "inc", Args: []int64{0}},
		{Name: "m", Kind: "minmax", Op: "observe", Args: []int64{1}},
		{Name: "r", Kind: "refcount", Op: "inc"},
	} {
		if err := g.Apply(&u); err != nil {
			t.Fatalf("seed %v: %v", u, err)
		}
	}
	for _, tc := range cases {
		err := g.Apply(&tc.u)
		if !errors.Is(err, tc.want) {
			t.Errorf("Apply(%+v) = %v, want %v", tc.u, err, tc.want)
		}
	}
	// Kind mismatch on an existing name.
	err := g.Apply(&Update{Name: "c", Kind: "hist", Op: "inc", Args: []int64{0}})
	if !errors.Is(err, ErrKindMismatch) {
		t.Errorf("kind mismatch = %v", err)
	}
	// Unknown-kind errors list the valid kinds, pkg/coup style.
	err = g.Apply(&Update{Name: "a", Kind: "bogus", Op: "inc"})
	for _, k := range Kinds() {
		if !strings.Contains(err.Error(), string(k)) {
			t.Errorf("unknown-kind error %q does not list %q", err, k)
		}
	}
	// Unknown-op errors list the kind's ops.
	err = g.Apply(&Update{Name: "c", Kind: "counter", Op: "bogus"})
	if !strings.Contains(err.Error(), "inc, dec, add") {
		t.Errorf("unknown-op error %q does not list counter ops", err)
	}
	// Snapshot of a never-updated name.
	var sc snapScratch
	var snap Snapshot
	if err := g.Snapshot("nope", &sc, &snap); !errors.Is(err, ErrUnknownName) {
		t.Errorf("Snapshot(nope) = %v, want ErrUnknownName", err)
	}
}

// TestBatchPartialApplication pins non-atomic batch semantics: records
// apply in order up to the first bad one, and the 400 reports both.
func TestBatchPartialApplication(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := postBatch(t, ts.URL, BatchRequest{Updates: []Update{
		{Name: "p", Kind: "counter", Op: "inc"},
		{Name: "p", Kind: "counter", Op: "inc"},
		{Name: "p", Kind: "counter", Op: "warp"}, // bad
		{Name: "p", Kind: "counter", Op: "inc"},  // never applied
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, out)
	}
	var er ErrorResponse
	if err := json.Unmarshal(out, &er); err != nil {
		t.Fatal(err)
	}
	if er.Applied != 2 || !strings.Contains(er.Error, "record 2") {
		t.Errorf("partial batch reported %+v", er)
	}
	var snap Snapshot
	getJSON(t, ts.URL+"/v1/snapshot/p", &snap)
	if snap.Value != 2 {
		t.Errorf("counter p = %d, want 2", snap.Value)
	}
}

// TestBatchDecodeReuseIsolation pins the pooled-decode fix: a record
// that omits optional fields must not inherit them from a previous
// batch decoded into the same pooled buffer.
func TestBatchDecodeReuseIsolation(t *testing.T) {
	_, ts := newTestServer(t)
	// First batch: hist records with Args set.
	resp, out := postBatch(t, ts.URL, BatchRequest{Updates: []Update{
		{Name: "h1", Kind: "hist", Op: "inc", Args: []int64{3}},
		{Name: "h1", Kind: "hist", Op: "inc", Args: []int64{5}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hist batch: HTTP %d: %s", resp.StatusCode, out)
	}
	// Until the pool round-trips (single-threaded here, so it does), a
	// counter inc with no args decoded into the same buffer would have
	// seen the stale Args and been rejected.
	for i := 0; i < 4; i++ {
		resp, out = postBatch(t, ts.URL, BatchRequest{Updates: []Update{
			{Name: "c1", Kind: "counter", Op: "inc"},
			{Name: "c1", Kind: "counter", Op: "inc"},
		}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("counter batch %d: HTTP %d: %s", i, resp.StatusCode, out)
		}
	}
	var snap Snapshot
	getJSON(t, ts.URL+"/v1/snapshot/c1", &snap)
	if snap.Value != 8 {
		t.Errorf("counter c1 = %d, want 8", snap.Value)
	}
}

// TestOptionValidation: bad options are rejected at New.
func TestOptionValidation(t *testing.T) {
	if _, err := New(WithMaxInFlight(0)); err == nil {
		t.Error("WithMaxInFlight(0) accepted")
	}
	s, err := New(WithMaxInFlight(7), nil)
	if err != nil || s.maxInFlight != 7 {
		t.Errorf("New = %v, maxInFlight %d", err, s.maxInFlight)
	}
}

// TestCreateRace: concurrent first updates to one name must converge on
// one structure (no lost updates from a discarded creation-race loser).
func TestCreateRace(t *testing.T) {
	g := NewRegistry()
	const gr = 16
	var wg sync.WaitGroup
	for i := 0; i < gr; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				u := Update{Name: "shared", Kind: "counter", Op: "inc"}
				if err := g.Apply(&u); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var sc snapScratch
	var snap Snapshot
	if err := g.Snapshot("shared", &sc, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Value != gr*100 {
		t.Errorf("raced counter = %d, want %d", snap.Value, gr*100)
	}
	if g.Len() != 1 {
		t.Errorf("registry has %d structures, want 1", g.Len())
	}
}

// TestHistBinsFixedAtCreation: the first update sizes the histogram;
// later Bins values are ignored, later out-of-range bins rejected.
func TestHistBinsFixedAtCreation(t *testing.T) {
	g := NewRegistry()
	if err := g.Apply(&Update{Name: "h", Kind: "hist", Op: "inc", Args: []int64{7}, Bins: 8}); err != nil {
		t.Fatal(err)
	}
	if err := g.Apply(&Update{Name: "h", Kind: "hist", Op: "inc", Args: []int64{3}, Bins: 4096}); err != nil {
		t.Fatalf("resize attempt must be ignored, got %v", err)
	}
	if err := g.Apply(&Update{Name: "h", Kind: "hist", Op: "inc", Args: []int64{8}}); !errors.Is(err, ErrBadUpdate) {
		t.Errorf("out-of-range bin = %v, want ErrBadUpdate", err)
	}
	if err := g.Apply(&Update{Name: "big", Kind: "hist", Op: "inc", Args: []int64{0}, Bins: MaxBins + 1}); !errors.Is(err, ErrBadUpdate) {
		t.Errorf("oversized create = %v, want ErrBadUpdate", err)
	}
	var sc snapScratch
	var snap Snapshot
	if err := g.Snapshot("h", &sc, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Bins) != 8 || snap.Total != 2 {
		t.Errorf("hist snapshot bins=%d total=%d, want 8, 2", len(snap.Bins), snap.Total)
	}
}

// TestBulkSnapshot: every structure appears once, sorted, with
// independent (non-aliased) histogram bin slices.
func TestBulkSnapshot(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := postBatch(t, ts.URL, BatchRequest{Updates: []Update{
		{Name: "b", Kind: "hist", Op: "inc", Args: []int64{1}, Bins: 4},
		{Name: "a", Kind: "hist", Op: "inc", Args: []int64{2}, Bins: 8},
		{Name: "c", Kind: "counter", Op: "add", Args: []int64{5}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, out)
	}
	var bulk BulkSnapshot
	if code := getJSON(t, ts.URL+"/v1/snapshot", &bulk); code != http.StatusOK {
		t.Fatalf("bulk: HTTP %d", code)
	}
	if len(bulk.Structures) != 3 {
		t.Fatalf("bulk has %d structures, want 3", len(bulk.Structures))
	}
	names := make([]string, len(bulk.Structures))
	for i, s := range bulk.Structures {
		names[i] = s.Name
	}
	if fmt.Sprint(names) != "[a b c]" {
		t.Errorf("bulk order %v, want [a b c]", names)
	}
	if len(bulk.Structures[0].Bins) != 8 || len(bulk.Structures[1].Bins) != 4 {
		t.Errorf("bulk bins aliased or wrong: a=%d b=%d", len(bulk.Structures[0].Bins), len(bulk.Structures[1].Bins))
	}
}
