package coupd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// Client-side retry defaults; override with ClientOptions.
const (
	// DefaultRetryBudget caps how long one Send keeps retrying before it
	// gives up (tightened further by the caller's context deadline).
	DefaultRetryBudget = 10 * time.Second
	// DefaultBackoffBase and DefaultBackoffCap bound the full-jitter
	// exponential schedule: attempt n sleeps rand(0, min(cap, base<<n)).
	DefaultBackoffBase = time.Millisecond
	DefaultBackoffCap  = 64 * time.Millisecond
)

// RemoteError is a server rejection the client will not retry: the
// request was delivered and answered, and the answer says no. Status
// carries the HTTP code (400 bad batch, 409 stale seq, 503 draining)
// and Msg the server's ErrorResponse body.
type RemoteError struct {
	Status int
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("coupd client: server rejected batch (%d): %s", e.Status, e.Msg)
}

// Client speaks the coupd wire protocol with exactly-once retry
// semantics. It is cheap and safe for concurrent use; per-writer state
// lives in the Sessions it mints. The zero Client is unusable; build
// with NewClient.
type Client struct {
	base    string
	hc      *http.Client
	budget  time.Duration
	backoff time.Duration // base of the exponential schedule
	cap     time.Duration // ceiling of the exponential schedule
	randN   func(int64) int64
}

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithHTTPClient substitutes the transport-owning *http.Client —
// the seam fault injection uses (internal/faultnet wraps the transport).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithRetryBudget bounds how long one Send retries before giving up
// (<= 0 means a single attempt, no retries).
func WithRetryBudget(d time.Duration) ClientOption {
	return func(c *Client) { c.budget = d }
}

// WithBackoff sets the full-jitter exponential schedule: attempt n
// sleeps rand(0, min(ceil, base<<n)), floored by any Retry-After-Ms
// hint the server sent.
func WithBackoff(base, ceil time.Duration) ClientOption {
	return func(c *Client) { c.backoff, c.cap = base, ceil }
}

// WithJitterSource substitutes the uniform-random source behind the
// backoff jitter (fn(n) must return a value in [0, n)). Deterministic
// tests pin it; everyone else keeps the seeded-by-runtime default.
func WithJitterSource(fn func(n int64) int64) ClientOption {
	return func(c *Client) { c.randN = fn }
}

// NewClient builds a Client for the coupd server at baseURL (scheme and
// host, no path — "http://127.0.0.1:8080").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base:    baseURL,
		hc:      http.DefaultClient,
		budget:  DefaultRetryBudget,
		backoff: DefaultBackoffBase,
		cap:     DefaultBackoffCap,
		randN:   rand.Int64N,
	}
	for _, opt := range opts {
		if opt != nil {
			opt(c)
		}
	}
	return c
}

// Session mints the dedup session named id: a sequence of batches the
// server deduplicates by (id, seq). IDs must be unique per live writer —
// two writers sharing one id would interleave seqs and eat each other's
// batches as duplicates. A Session is not safe for concurrent use; give
// each writer goroutine its own.
func (c *Client) Session(id string) *Session {
	return &Session{c: c, id: id}
}

// Session is one writer's exactly-once stream of batches.
type Session struct {
	c   *Client
	id  string
	seq uint64 // last successfully acknowledged seq
}

// SendResult reports one acknowledged batch.
type SendResult struct {
	Applied  int    // records applied (echoed from the server's ack)
	Seq      uint64 // the seq this batch landed under
	Deduped  bool   // the ack came from the server's dedup session
	Attempts int    // POSTs it took (1 = no faults)
}

// Send delivers one batch exactly once: it assigns the session's next
// seq, POSTs, and retries transport errors, truncated responses, 429s,
// and 5xx answers with capped full-jitter exponential backoff until the
// server acknowledges, the retry budget or ctx expires, or the server
// terminally rejects the batch (*RemoteError: 400 invalid, 409 stale,
// 503 draining — all of which applied nothing, by the server's
// validate-then-apply contract).
//
// On success the session's seq advances. On failure it does not: the
// next Send reuses the same seq, so a corrected batch replaces the
// rejected one and the server's dedup window stays aligned.
func (s *Session) Send(ctx context.Context, updates []Update) (SendResult, error) {
	seq := s.seq + 1
	body, err := json.Marshal(&BatchRequest{Updates: updates, Client: s.id, Seq: seq})
	if err != nil {
		return SendResult{}, fmt.Errorf("coupd client: marshal batch: %w", err)
	}
	if s.c.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.c.budget)
		defer cancel()
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := s.c.sleep(ctx, attempt-1, lastErr); err != nil {
				return SendResult{}, fmt.Errorf("coupd client: session %q seq %d: gave up after %d attempts (%w); last error: %v",
					s.id, seq, attempt, err, lastErr)
			}
		}
		res, err := s.c.post(ctx, body)
		if err == nil {
			s.seq = seq
			res.Seq = seq
			res.Attempts = attempt + 1
			return res, nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			// Terminal: the server answered and applied nothing (400
			// invalid, 409 stale, 503 draining — validate-then-apply
			// guarantees the "applied nothing" half). Not retried.
			return SendResult{}, fmt.Errorf("coupd client: session %q seq %d: %w", s.id, seq, err)
		}
		lastErr = err
		if ctx.Err() != nil {
			return SendResult{}, fmt.Errorf("coupd client: session %q seq %d: gave up after %d attempts (%w); last error: %v",
				s.id, seq, attempt+1, ctx.Err(), lastErr)
		}
	}
}

// retryHintError wraps a retryable rejection that carried a server
// backpressure hint (429 Retry-After-Ms / Retry-After); the hint floors
// the next backoff sleep.
type retryHintError struct {
	err   error
	floor time.Duration
}

func (e *retryHintError) Error() string { return e.err.Error() }
func (e *retryHintError) Unwrap() error { return e.err }

// sleep blocks for the full-jitter backoff of the given retry (0-based),
// floored by any server hint attached to lastErr, or returns early with
// ctx's error.
func (c *Client) sleep(ctx context.Context, retry int, lastErr error) error {
	d := c.backoff << min(retry, 30)
	if d <= 0 || d > c.cap {
		d = c.cap
	}
	sleep := time.Duration(c.randN(int64(d) + 1))
	if hint, ok := lastErr.(*retryHintError); ok && sleep < hint.floor {
		sleep = hint.floor
	}
	t := time.NewTimer(sleep)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// post runs one POST /v1/batch attempt and classifies the outcome:
// (result, nil) on an acknowledged batch, a *RemoteError for terminal
// rejections (including an unbuildable request — deterministic, never
// worth retrying), any other error (transport failure, truncated or
// garbled body, 429, 5xx) for retryable ones.
func (c *Client) post(ctx context.Context, body []byte) (SendResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return SendResult{}, &RemoteError{Status: 0, Msg: fmt.Sprintf("build request: %v", err)}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return SendResult{}, fmt.Errorf("transport: %w", err)
	}
	defer resp.Body.Close()
	// Read fully before classifying: a 200 status line with a truncated
	// body is NOT an ack — the batch may or may not have applied, which
	// is exactly what the dedup session exists to disambiguate on retry.
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxBatchBytes))
	if err != nil {
		return SendResult{}, fmt.Errorf("read response (status %d): %w", resp.StatusCode, err)
	}

	switch {
	case resp.StatusCode == http.StatusOK:
		var br BatchResponse
		if err := json.Unmarshal(data, &br); err != nil {
			return SendResult{}, fmt.Errorf("garbled 200 body (%d bytes): %w", len(data), err)
		}
		return SendResult{Applied: br.Applied, Deduped: br.Deduped}, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		return SendResult{}, &retryHintError{
			err:   fmt.Errorf("saturated (429): %s", errorBody(data)),
			floor: retryAfterFloor(resp.Header),
		}
	case resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable:
		return SendResult{}, fmt.Errorf("server error (%d): %s", resp.StatusCode, errorBody(data))
	default:
		// 400, 409, 503 and anything else that answered definitively.
		return SendResult{}, &RemoteError{Status: resp.StatusCode, Msg: errorBody(data)}
	}
}

// errorBody extracts the server's error string from an ErrorResponse
// body, falling back to the raw bytes.
func errorBody(data []byte) string {
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err == nil && er.Error != "" {
		return er.Error
	}
	return string(bytes.TrimSpace(data))
}

// retryAfterFloor reads the server's backpressure hint: Retry-After-Ms
// (milliseconds, coupd's extension) wins over Retry-After (whole
// seconds, standard); absent both, no floor.
func retryAfterFloor(h http.Header) time.Duration {
	if ms := h.Get("Retry-After-Ms"); ms != "" {
		if n, err := strconv.Atoi(ms); err == nil && n >= 0 {
			return time.Duration(n) * time.Millisecond
		}
	}
	if sec := h.Get("Retry-After"); sec != "" {
		if n, err := strconv.Atoi(sec); err == nil && n >= 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 0
}
