package coupd

// Wire types: the JSON bodies the four endpoints exchange. They are
// plain data so cmd/coupload, the swbench HTTP driver, and any other
// client can share them with the server.

// Update is one record of a batch: apply Op with Args to the structure
// Name of kind Kind, creating the structure on first touch. Args is a
// small positional list (see the per-kind op tables in registry.go);
// Bins sizes a histogram at creation time only and is ignored after.
type Update struct {
	Name string  `json:"name"`
	Kind string  `json:"kind"`
	Op   string  `json:"op"`
	Args []int64 `json:"args,omitempty"`
	Bins int     `json:"bins,omitempty"`
}

// BatchRequest is the POST /v1/batch body: many updates, one request.
//
// A bare batch (empty Client) keeps the original semantics: records
// apply in order and the batch is not atomic (see BatchResponse).
//
// Setting Client and Seq makes the batch *sequenced*, which upgrades
// delivery to exactly-once: the server keeps a per-client dedup session
// (last seq + sliding ack window), answers a re-POSTed acknowledged
// batch with its original Applied without re-applying, and applies the
// batch validate-then-apply — every record is checked before any is
// applied, so a rejected batch applies nothing and the same seq can be
// retried after correction. Seq starts at 1 and each client sends its
// batches in seq order (retries resend the same seq with the same
// records); a seq that has fallen out of the ack window is answered
// 409 + ErrStaleSeq.
type BatchRequest struct {
	Updates []Update `json:"updates"`
	// Client names the dedup session, typically one per writer
	// connection/goroutine. Empty means unsequenced (no dedup).
	Client string `json:"client,omitempty"`
	// Seq is the 1-based batch sequence number within the session.
	// Sequenced batches with Seq 0 are rejected as ErrBadUpdate.
	Seq uint64 `json:"seq,omitempty"`
}

// BatchResponse acknowledges a batch. Applied counts the records that
// landed; on success it equals len(Updates). Deduped reports that the
// server recognized a sequenced batch as already applied and answered
// from its dedup session without re-applying anything.
type BatchResponse struct {
	Applied int  `json:"applied"`
	Deduped bool `json:"deduped,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer. Applied carries the
// records applied before a mid-batch failure (0 for rejected batches).
type ErrorResponse struct {
	Error   string `json:"error"`
	Applied int    `json:"applied"`
}

// Snapshot is one structure's reduced state: the server folds every
// shard at request time (reduce-on-read), so the values observe every
// update acknowledged before the request. Which fields are meaningful
// depends on Kind:
//
//	counter:  Value
//	hist:     Bins (one element per bucket), Total (their sum)
//	minmax:   N, Min, Max (Min/Max only meaningful when N > 0)
//	refcount: Value, Escalated
type Snapshot struct {
	Name      string   `json:"name"`
	Kind      string   `json:"kind"`
	Value     int64    `json:"value,omitempty"`
	Escalated bool     `json:"escalated,omitempty"`
	Bins      []uint64 `json:"bins,omitempty"`
	Total     uint64   `json:"total,omitempty"`
	N         uint64   `json:"n,omitempty"`
	Min       int64    `json:"min,omitempty"`
	Max       int64    `json:"max,omitempty"`
}

// BulkSnapshot is the GET /v1/snapshot body: every structure, sorted by
// name.
type BulkSnapshot struct {
	Structures []Snapshot `json:"structures"`
}

// Stats is the GET /v1/stats body: service self-telemetry, itself kept
// in pkg/commute structures and reduced on read like any snapshot.
type Stats struct {
	UptimeSec  float64 `json:"uptime_sec"`
	Structures int64   `json:"structures"`
	// Batch plane.
	Batches       int64   `json:"batches"`  // accepted batches
	Updates       int64   `json:"updates"`  // records applied
	Rejected      int64   `json:"rejected"` // 429s (saturation)
	BatchesPerSec float64 `json:"batches_per_sec"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// BatchLenLog2[i] counts accepted batches with 2^i <= len < 2^(i+1)
	// (index 0 is the empty-or-single-record bucket).
	BatchLenLog2 []uint64 `json:"batch_len_log2"`
	// Read plane.
	Snapshots    int64   `json:"snapshots"`      // snapshot requests served
	ReduceNsMin  int64   `json:"reduce_ns_min"`  // fastest single reduction
	ReduceNsMax  int64   `json:"reduce_ns_max"`  // slowest
	ReduceNsMean float64 `json:"reduce_ns_mean"` // total/snapshots
	// Queue plane.
	InFlight    int64 `json:"in_flight"`     // batches being processed now
	MaxInFlight int   `json:"max_in_flight"` // the semaphore bound
	Draining    bool  `json:"draining"`
	// Exactly-once plane.
	Sessions  int64 `json:"sessions"`   // live dedup sessions
	DedupHits int64 `json:"dedup_hits"` // duplicate batches answered without re-applying
	Replays   int64 `json:"replays"`    // sequenced batches re-presenting a seen seq
	Panics    int64 `json:"panics"`     // handler panics recovered to 500s
}
