package coupd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/pkg/obs"
)

// MaxBatchBytes bounds a batch request body.
const MaxBatchBytes = 8 << 20

// RetryAfterMs is the millisecond backpressure hint a 429 carries in its
// Retry-After-Ms header. The standard Retry-After header only speaks
// whole seconds — three orders of magnitude coarser than the closed-loop
// recovery time of a batching client — so saturation responses carry
// both: the second-granular ceiling for generic clients and this hint
// for clients that understand it (coupd.Session does).
const RetryAfterMs = 2

// Server serves a Registry over HTTP. Build one with New, mount it
// anywhere an http.Handler goes (it routes /v1/... itself), and call
// Drain before process exit so in-flight batches land.
type Server struct {
	reg         *Registry
	maxInFlight int
	sem         chan struct{}

	// Exactly-once plane: per-client dedup sessions (see session.go).
	sessions *sessionTable
	sessMax  int
	sessTTL  time.Duration

	// Chaos hooks (WithApplyHook/WithReduceHook): called at the start of
	// batch application and snapshot reduction when set. They exist for
	// fault injection — internal/faultnet builds panic/stall hooks — and
	// fire before any record lands, so a hook-induced panic applies
	// nothing and the batch stays safe to retry.
	applyHook  func()
	reduceHook func()

	drainMu  sync.RWMutex // write-held only to flip draining
	draining bool
	inflight sync.WaitGroup

	mux   *http.ServeMux
	start time.Time

	// Self-telemetry, dogfooded through pkg/obs (itself pkg/commute
	// underneath): the server's hottest metadata words take the same
	// update-only fast path it serves; /v1/stats and GET /metrics are
	// both just reduce-on-read views of the same registry.
	metrics     *obs.Registry
	trace       *obs.Ring      // per-P span/batch/reduce event ring
	batches     *obs.Counter   // accepted batches
	updates     *obs.Counter   // records applied
	rejected    *obs.Counter   // 429s
	snapshots   *obs.Counter   // snapshot requests served
	reduceNs    *obs.Histogram // per-request reduce latency, log2 buckets
	batchLen    *obs.Histogram // log2-bucketed accepted batch sizes
	depth       *obs.Counter   // in-flight batches right now
	panics      *obs.Counter   // handler panics recovered to 500s
	batchReqs   sync.Pool      // *BatchRequest, decode reuse
	entScratch  sync.Pool      // *entScratch, validate-then-apply reuse
	snapScratch sync.Pool      // *snapScratch, reduction reuse
}

// entScratch carries the resolved-entry slice between a sequenced
// batch's validate pass and its apply pass, pooled so the steady-state
// sequenced path allocates nothing.
type entScratch struct {
	ents []*entry
}

// Trace span ids, the ID field of the server's obs.Ring records.
const (
	traceBatch    uint16 = 1 // POST /v1/batch
	traceSnapshot uint16 = 2 // GET /v1/snapshot[/{name}]
)

// traceSlotsPerShard bounds the trace ring's memory: shards × slots ×
// 32 bytes, a few hundred KiB at worst.
const traceSlotsPerShard = 1024

// Option configures New.
type Option func(*Server) error

// WithMaxInFlight bounds concurrently-processed batches (the
// backpressure knob). The default is 4*GOMAXPROCS.
func WithMaxInFlight(n int) Option {
	return func(s *Server) error {
		if n < 1 {
			return fmt.Errorf("coupd: max in-flight must be >= 1, got %d", n)
		}
		s.maxInFlight = n
		return nil
	}
}

// WithDedupSessions bounds the exactly-once session table: at most max
// client sessions, each evicted after ttl idle. Eviction trades memory
// for the dedup horizon — a client idle past the TTL (or LRU-evicted
// under a burst of more than max distinct clients) that then retries an
// old seq gets ErrStaleSeq instead of a dedup answer — so keep the TTL
// far above any client's retry budget. Defaults: DefaultMaxSessions,
// DefaultSessionTTL.
func WithDedupSessions(max int, ttl time.Duration) Option {
	return func(s *Server) error {
		if max < 1 {
			return fmt.Errorf("coupd: dedup session cap must be >= 1, got %d", max)
		}
		if ttl <= 0 {
			return fmt.Errorf("coupd: dedup session TTL must be > 0, got %v", ttl)
		}
		s.sessMax, s.sessTTL = max, ttl
		return nil
	}
}

// WithApplyHook installs fn at the head of batch application: it runs
// after a sequenced batch validates (or before an unsequenced batch's
// first record), so a panicking hook aborts the batch before any record
// lands. For fault injection — see internal/faultnet's PanicN/StallEvery
// — a panic surfaces as a recovered 500 (coupd_panics_total), never a
// dead process or a half-applied sequenced batch.
func WithApplyHook(fn func()) Option {
	return func(s *Server) error {
		s.applyHook = fn
		return nil
	}
}

// WithReduceHook installs fn at the head of snapshot reduction, the
// read-plane counterpart of WithApplyHook.
func WithReduceHook(fn func()) Option {
	return func(s *Server) error {
		s.reduceHook = fn
		return nil
	}
}

// New builds a Server over a fresh registry.
func New(opts ...Option) (*Server, error) {
	m := obs.NewRegistry()
	s := &Server{
		reg:       NewRegistry(),
		start:     time.Now(),
		metrics:   m,
		trace:     obs.NewRing(traceSlotsPerShard),
		batches:   m.Counter("coupd_batches_total", "Accepted update batches."),
		updates:   m.Counter("coupd_updates_total", "Update records applied."),
		rejected:  m.Counter("coupd_rejected_total", "Batches rejected with 429 (saturated)."),
		snapshots: m.Counter("coupd_snapshots_total", "Snapshot requests served."),
		reduceNs:  m.Histogram("coupd_reduce_ns", "Snapshot reduce-on-read latency in nanoseconds.", 32),
		batchLen:  m.Histogram("coupd_batch_size", "Applied records per accepted batch.", 16),
		depth:     m.UpDownCounter("coupd_in_flight", "Batches being processed right now."),
		panics:    m.Counter("coupd_panics_total", "Handler panics recovered to 500 responses."),
	}
	m.Gauge("coupd_structures", "Registered commutative structures.",
		func() int64 { return int64(s.reg.Len()) })
	m.Gauge("coupd_uptime_seconds", "Seconds since the server was built.",
		func() int64 { return int64(time.Since(s.start).Seconds()) })
	obs.RegisterRuntimeMetrics(m)
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.maxInFlight == 0 {
		s.maxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if s.sessMax == 0 {
		s.sessMax = DefaultMaxSessions
	}
	if s.sessTTL == 0 {
		s.sessTTL = DefaultSessionTTL
	}
	s.sessions = newSessionTable(s.sessMax, s.sessTTL, m)
	s.sem = make(chan struct{}, s.maxInFlight)
	s.batchReqs.New = func() any { return &BatchRequest{} }
	s.entScratch.New = func() any { return &entScratch{} }
	s.snapScratch.New = func() any { return &snapScratch{} }
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/snapshot/{name}", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleBulkSnapshot)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.Handle("GET /metrics", m.Handler())
	return s, nil
}

// Registry exposes the server's structure registry (for embedding the
// server in a larger process that also updates in-process).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the server's telemetry registry, the same families
// served at GET /metrics (for embedding processes that add their own).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Trace exposes the server's span/batch/reduce event ring; Dump it (or
// obs.WriteTrace it) to capture recent request activity.
func (s *Server) Trace() *obs.Ring { return s.trace }

// ServeHTTP makes Server an http.Handler. It recovers handler panics —
// a poisoned batch, a chaos hook — into a 500 ErrorResponse and a
// coupd_panics_total tick, so one bad request cannot kill the process;
// the in-flight semaphore and WaitGroup release on the unwind (their
// releases are deferred below the recovery point). Sequenced batches
// stay exactly-once through a panic: acks are recorded only after the
// last record lands, so an un-acked 500 is safe to retry.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if err, ok := p.(error); ok && errors.Is(err, http.ErrAbortHandler) {
			panic(p) // net/http's own abort idiom: let the server suppress it
		}
		s.panics.Inc()
		writeJSON(w, http.StatusInternalServerError,
			ErrorResponse{Error: fmt.Sprintf("coupd: recovered handler panic: %v", p)})
	}()
	s.mux.ServeHTTP(w, r)
}

// Drain stops accepting batches (they get 503 + ErrDraining) and waits
// for every in-flight batch to land or ctx to expire. Snapshots and
// stats keep serving, so an operator can read final state after the
// write plane is quiesced. Draining is permanent for this Server.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	// The flag flip above synchronizes with every in-flight Add: once the
	// write lock is held, no handler is between its draining check and
	// its WaitGroup.Add, so Wait cannot race a zero-to-one Add.
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("coupd: drain: %w (in-flight batches still running)", ctx.Err())
	}
}

// enterBatch gates one batch past the draining flag and the in-flight
// semaphore; it returns the error that should be served, or nil with a
// release func the handler must call when the batch lands.
func (s *Server) enterBatch() (release func(), err error) {
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		return nil, ErrDraining
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.drainMu.RUnlock()
		s.rejected.Inc()
		return nil, ErrSaturated
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	s.depth.Inc()
	return func() {
		s.depth.Dec()
		<-s.sem
		s.inflight.Done()
	}, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.trace.Record(obs.EvSpanBegin, traceBatch, 0, 0)
	defer func() {
		s.trace.Record(obs.EvSpanEnd, traceBatch, uint64(time.Since(t0).Nanoseconds()), 0)
	}()
	release, gateErr := s.enterBatch()
	if gateErr != nil && errors.Is(gateErr, ErrSaturated) {
		// Whole seconds are not expressible backpressure for a closed
		// loop that recovers in milliseconds; alongside the standard
		// ceiling, Retry-After-Ms hints the real scale (coupd.Session
		// and the swbench driver honor it).
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Retry-After-Ms", retryAfterMsValue)
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: gateErr.Error()})
		return
	}
	if release != nil {
		defer release()
	}
	// gateErr != nil here means draining: fall through to decode anyway
	// (outside the semaphore — drain is terminal, so the unbounded-decode
	// window is one shutdown long and each body is MaxBatchBytes-capped)
	// so an already-acknowledged sequenced batch can still be answered
	// from its dedup session. That answer applies nothing, which is what
	// makes it safe during shutdown — and what lets a client whose ack
	// was lost in transit resolve its batch instead of losing it.

	req := s.batchReqs.Get().(*BatchRequest)
	defer func() {
		req.Updates = req.Updates[:0]
		s.batchReqs.Put(req)
	}()
	// json.Decode merges into pre-existing slice elements, so a record
	// that omits a field would inherit the previous batch's value; zero
	// the pooled backing array so reuse can't leak records across
	// batches, and reset the session fields the same way.
	clear(req.Updates[:cap(req.Updates)])
	req.Client, req.Seq = "", 0
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBatchBytes))
	if err := dec.Decode(req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("coupd: %v: bad batch body: %v", ErrBadUpdate, err)})
		return
	}
	if gateErr != nil { // draining
		if req.Client != "" {
			if applied, ok := s.sessions.replayAck(req.Client, req.Seq); ok {
				writeJSON(w, http.StatusOK, BatchResponse{Applied: applied, Deduped: true})
				return
			}
		}
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: gateErr.Error()})
		return
	}

	if req.Client != "" {
		applied, deduped, err := s.applySequencedBatch(req)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrStaleSeq) {
				status = http.StatusConflict
			}
			// Validate-then-apply: a rejected sequenced batch applied
			// nothing, so Applied is always 0 here and the client may
			// retry the same seq after correcting the batch.
			writeJSON(w, status, ErrorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, BatchResponse{Applied: applied, Deduped: deduped})
		return
	}

	if s.applyHook != nil {
		s.applyHook()
	}
	applied, err := s.applyBatch(req)
	s.countBatch(applied)
	if err != nil {
		// Bare batches are not atomic: report how far we got and stop.
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Applied: applied})
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Applied: applied})
}

// retryAfterMsValue is RetryAfterMs pre-rendered for the 429 header.
const retryAfterMsValue = "2"

// applySequencedBatch runs one sequenced batch through its dedup
// session: duplicate seqs are answered from the session's ack window
// without touching the registry, new or retried seqs go through
// validate-then-apply — every record is checked (and its structure
// resolved) before any is applied, so a failed batch applies nothing —
// and the seq is acknowledged only after the last record lands.
func (s *Server) applySequencedBatch(req *BatchRequest) (applied int, deduped bool, err error) {
	if req.Seq == 0 {
		return 0, false, fmt.Errorf("coupd: %w: sequenced batch (client %q) needs seq >= 1", ErrBadUpdate, req.Client)
	}
	sess := s.sessions.get(req.Client, true)
	// The session lock spans check-validate-apply-ack: two racing POSTs
	// of one (client, seq) — a client retrying into its own still-running
	// first attempt — serialize here, and the loser sees the ack.
	sess.mu.Lock()
	defer sess.mu.Unlock()
	state, prior := sess.check(req.Seq)
	switch state {
	case seqStale:
		return 0, false, fmt.Errorf("coupd: %w: client %q seq %d is beyond the %d-batch window below seq %d",
			ErrStaleSeq, req.Client, req.Seq, sessionWindow, sess.maxSeq)
	case seqDup:
		s.sessions.dedupHits.Inc()
		s.sessions.replays.Inc()
		return prior, true, nil
	case seqRetry:
		s.sessions.replays.Inc()
	}
	sc := s.entScratch.Get().(*entScratch)
	defer func() {
		sc.ents = sc.ents[:0]
		s.entScratch.Put(sc)
	}()
	sc.ents, err = s.validateBatch(req, sc.ents)
	if err != nil {
		return 0, false, err
	}
	if s.applyHook != nil {
		s.applyHook()
	}
	s.applyValidated(req, sc.ents)
	sess.ack(req.Seq, len(req.Updates))
	s.countBatch(len(req.Updates))
	return len(req.Updates), false, nil
}

// validateBatch resolves and checks every record without applying any,
// appending the resolved entries to ents (a pooled scratch slice, so the
// steady-state pass allocates nothing). Resolution creates structures on
// first touch exactly like application would — creation is part of name
// resolution, not value mutation, so a batch that fails validation may
// leave new (zero-valued) structures behind but never a partial update.
//
//coup:hotpath
func (s *Server) validateBatch(req *BatchRequest, ents []*entry) ([]*entry, error) {
	for i := range req.Updates {
		ent, err := s.reg.validate(&req.Updates[i])
		if err != nil {
			return ents, fmt.Errorf("record %d: %v (validate-then-apply: nothing applied; correct and resend seq %d)", i, err, req.Seq)
		}
		ents = append(ents, ent)
	}
	return ents, nil
}

// applyValidated lands every record of a batch validateBatch accepted.
// It cannot fail: validation ran every check against the same entries,
// entries never change kind, and the checks are deterministic — a
// failure here is a bug worth crashing the request over (the recovery
// middleware turns it into an un-acked 500).
//
//coup:hotpath
func (s *Server) applyValidated(req *BatchRequest, ents []*entry) {
	for i := range req.Updates {
		if err := ents[i].apply(&req.Updates[i], false); err != nil {
			panic(fmt.Sprintf("coupd: validated record %d failed apply: %v", i, err))
		}
	}
}

// applyBatch applies the decoded records in order, returning how many
// succeeded and the error that stopped it. This is the per-update inner
// loop of the write path — everything allocation-prone (JSON decode,
// response encode, pool bookkeeping) stays in handleBatch.
//
//coup:hotpath
func (s *Server) applyBatch(req *BatchRequest) (int, error) {
	for i := range req.Updates {
		if err := s.reg.Apply(&req.Updates[i]); err != nil {
			return i, fmt.Errorf("record %d: %v", i, err)
		}
	}
	return len(req.Updates), nil
}

// countBatch records one accepted batch in the telemetry structures:
// two counter adds, one histogram observe (obs uses the same floor-log2
// bucketing countBatch used to compute by hand), one trace record.
//
//coup:hotpath
func (s *Server) countBatch(applied int) {
	s.batches.Inc()
	s.updates.Add(int64(applied))
	s.batchLen.Observe(int64(applied))
	s.trace.Record(obs.EvBatchApply, traceBatch, uint64(applied), 0)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	span := time.Now()
	s.trace.Record(obs.EvSpanBegin, traceSnapshot, 0, 0)
	defer func() {
		s.trace.Record(obs.EvSpanEnd, traceSnapshot, uint64(time.Since(span).Nanoseconds()), 0)
	}()
	sc := s.snapScratch.Get().(*snapScratch)
	defer func() {
		// Truncate before Put: a pooled scratch that kept its length would
		// hand the next Get a view of this request's partial sums.
		sc.i64 = sc.i64[:0]
		sc.u64 = sc.u64[:0]
		s.snapScratch.Put(sc)
	}()
	if s.reduceHook != nil {
		s.reduceHook()
	}
	var snap Snapshot
	t0 := time.Now()
	err := s.reg.Snapshot(r.PathValue("name"), sc, &snap)
	s.countReduce(time.Since(t0))
	if err != nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, &snap)
}

func (s *Server) handleBulkSnapshot(w http.ResponseWriter, r *http.Request) {
	span := time.Now()
	s.trace.Record(obs.EvSpanBegin, traceSnapshot, 0, 0)
	defer func() {
		s.trace.Record(obs.EvSpanEnd, traceSnapshot, uint64(time.Since(span).Nanoseconds()), 0)
	}()
	sc := s.snapScratch.Get().(*snapScratch)
	defer func() {
		sc.i64 = sc.i64[:0]
		sc.u64 = sc.u64[:0]
		s.snapScratch.Put(sc)
	}()
	if s.reduceHook != nil {
		s.reduceHook()
	}
	names := s.reg.Names()
	bulk := BulkSnapshot{Structures: make([]Snapshot, 0, len(names))}
	t0 := time.Now()
	for _, name := range names {
		var snap Snapshot
		// The snapshot borrows sc's buffers, which the next iteration
		// reuses; histogram bins must survive until the response is
		// serialized, so clone them.
		if err := s.reg.Snapshot(name, sc, &snap); err != nil {
			continue // deleted between Names and here: impossible today, harmless
		}
		if snap.Bins != nil {
			snap.Bins = append([]uint64(nil), snap.Bins...)
		}
		bulk.Structures = append(bulk.Structures, snap)
	}
	s.countReduce(time.Since(t0))
	writeJSON(w, http.StatusOK, &bulk)
}

// countReduce records one snapshot request's reduction latency into the
// log2 histogram — the full distribution, not just extremes — plus the
// trace ring.
//
//coup:hotpath
func (s *Server) countReduce(d time.Duration) {
	s.snapshots.Inc()
	s.reduceNs.Observe(d.Nanoseconds())
	s.trace.Record(obs.EvReduce, traceSnapshot, uint64(d.Nanoseconds()), 0)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start).Seconds()
	var batchLen obs.HistSnapshot
	s.batchLen.Snapshot(&batchLen)
	st := Stats{
		UptimeSec:    uptime,
		Structures:   int64(s.reg.Len()),
		Batches:      s.batches.Value(),
		Updates:      s.updates.Value(),
		Rejected:     s.rejected.Value(),
		Snapshots:    s.snapshots.Value(),
		InFlight:     s.depth.Value(),
		MaxInFlight:  s.maxInFlight,
		BatchLenLog2: batchLen.Buckets,
		Sessions:     s.sessions.size(),
		DedupHits:    s.sessions.dedupHits.Value(),
		Replays:      s.sessions.replays.Value(),
		Panics:       s.panics.Value(),
	}
	s.drainMu.RLock()
	st.Draining = s.draining
	s.drainMu.RUnlock()
	if uptime > 0 {
		st.BatchesPerSec = float64(st.Batches) / uptime
		st.UpdatesPerSec = float64(st.Updates) / uptime
	}
	var reduce obs.HistSnapshot
	s.reduceNs.Snapshot(&reduce)
	if reduce.Count > 0 {
		st.ReduceNsMin, st.ReduceNsMax = reduce.Min, reduce.Max
		st.ReduceNsMean = reduce.Mean()
	}
	writeJSON(w, http.StatusOK, &st)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode errors past the header write are undeliverable; the client
	// sees a truncated body and reports the transport error.
	_ = json.NewEncoder(w).Encode(body)
}
