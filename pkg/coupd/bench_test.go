package coupd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// BenchmarkCoupdBatch measures the full server-side batch path — HTTP
// routing, pooled decode, per-record registry fan-in — for a 256-record
// mixed batch through ServeHTTP (no network), the same shape coupload
// sends. Tracked in BENCH_baseline.json: a decode-path or fan-in
// regression shows up as allocs/op or ns/op drift.
func BenchmarkCoupdBatch(b *testing.B) {
	s, err := New(WithMaxInFlight(64))
	if err != nil {
		b.Fatal(err)
	}
	var req BatchRequest
	for i := 0; i < 64; i++ {
		req.Updates = append(req.Updates,
			Update{Name: "hits", Kind: "counter", Op: "inc"},
			Update{Name: "lat", Kind: "hist", Op: "inc", Args: []int64{int64(i % 512)}, Bins: 512},
			Update{Name: "span", Kind: "minmax", Op: "observe", Args: []int64{int64(i)}},
			Update{Name: "refs", Kind: "refcount", Op: "inc"},
		)
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		r := httptest.NewRequest("POST", "/v1/batch", rd)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", w.Code, w.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(req.Updates)*b.N)/b.Elapsed().Seconds(), "updates/s")
	if got := s.updates.Value(); got != int64(len(req.Updates)*b.N) {
		b.Fatalf("server reduced %d updates, applied %d", got, len(req.Updates)*b.N)
	}
}

// BenchmarkCoupdBatchSequenced is BenchmarkCoupdBatch with the
// exactly-once plane on: the same 256-record mixed batch, now carrying
// client+seq through the dedup session table and the validate-then-apply
// double pass. The delta against BenchmarkCoupdBatch prices the
// exactly-once upgrade; tracked in BENCH_baseline.json like its bare
// sibling. The seq is patched into the pre-marshaled body in place, so
// the loop measures the server, not the encoder.
func BenchmarkCoupdBatchSequenced(b *testing.B) {
	s, err := New(WithMaxInFlight(64))
	if err != nil {
		b.Fatal(err)
	}
	req := BatchRequest{Client: "bench", Seq: 100_000_000_000}
	for i := 0; i < 64; i++ {
		req.Updates = append(req.Updates,
			Update{Name: "hits", Kind: "counter", Op: "inc"},
			Update{Name: "lat", Kind: "hist", Op: "inc", Args: []int64{int64(i % 512)}, Bins: 512},
			Update{Name: "span", Kind: "minmax", Op: "observe", Args: []int64{int64(i)}},
			Update{Name: "refs", Kind: "refcount", Op: "inc"},
		)
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	// The placeholder seq is 12 digits; successive seqs stay 12 digits, so
	// each iteration overwrites it in place (no re-marshal, no alloc).
	pos := bytes.Index(body, []byte("100000000000"))
	if pos < 0 {
		b.Fatal("seq placeholder not found in marshaled body")
	}
	var seqBuf [12]byte
	rd := bytes.NewReader(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(body[pos:pos+12], strconv.AppendInt(seqBuf[:0], 100_000_000_001+int64(i), 10))
		rd.Reset(body)
		r := httptest.NewRequest("POST", "/v1/batch", rd)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", w.Code, w.Body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(req.Updates)*b.N)/b.Elapsed().Seconds(), "updates/s")
	if got := s.updates.Value(); got != int64(len(req.Updates)*b.N) {
		b.Fatalf("server reduced %d updates, applied %d", got, len(req.Updates)*b.N)
	}
	if got := s.sessions.dedupHits.Value(); got != 0 {
		b.Fatalf("%d dedup hits in a fresh-seq benchmark (seq patching broken)", got)
	}
}

// BenchmarkCoupdSnapshot measures reduce-on-read for a 512-bin histogram
// through the handler (pooled scratch, no per-request allocation of the
// reduction buffers).
func BenchmarkCoupdSnapshot(b *testing.B) {
	s, err := New()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		u := Update{Name: "lat", Kind: "hist", Op: "inc", Args: []int64{int64(i)}, Bins: 512}
		if err := s.reg.Apply(&u); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("GET", "/v1/snapshot/lat", nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", w.Code, w.Body)
		}
	}
}

// BenchmarkRegistryApply isolates the registry fan-in (no HTTP, no
// decode): one pre-parsed counter update through Apply.
func BenchmarkRegistryApply(b *testing.B) {
	g := NewRegistry()
	u := Update{Name: "hits", Kind: "counter", Op: "inc"}
	if err := g.Apply(&u); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Apply(&u); err != nil {
			b.Fatal(err)
		}
	}
	if got := fmt.Sprint(g.Len()); got != "1" {
		b.Fatalf("registry grew to %s structures", got)
	}
}
