package coupd

import (
	"strconv"
	"testing"
	"time"

	"repro/pkg/obs"
)

func newTestTable(max int, ttl time.Duration) *sessionTable {
	return newSessionTable(max, ttl, obs.NewRegistry())
}

func TestSessionWindowSemantics(t *testing.T) {
	var s session
	if st, _ := s.check(1); st != seqNew {
		t.Fatalf("fresh session seq 1: %v, want seqNew", st)
	}
	s.ack(1, 10)
	if st, applied := s.check(1); st != seqDup || applied != 10 {
		t.Fatalf("acked seq 1: %v/%d, want seqDup/10", st, applied)
	}
	if st, _ := s.check(2); st != seqNew {
		t.Fatalf("seq 2 after ack 1: %v, want seqNew", st)
	}

	// Skip ahead: 3 acked, 2 left un-acked in the window.
	s.ack(3, 30)
	if st, _ := s.check(2); st != seqRetry {
		t.Fatalf("unacked in-window seq 2: %v, want seqRetry", st)
	}
	s.ack(2, 20)
	if st, applied := s.check(2); st != seqDup || applied != 20 {
		t.Fatalf("late-acked seq 2: %v/%d, want seqDup/20", st, applied)
	}
	if st, applied := s.check(3); st != seqDup || applied != 30 {
		t.Fatalf("seq 3 still acked: %v/%d, want seqDup/30", st, applied)
	}

	// Slide the window one past seq 3: seq 3 stays in, old bits shift.
	for seq := uint64(4); seq <= 3+sessionWindow-1; seq++ {
		s.ack(seq, int(seq))
	}
	if st, applied := s.check(3); st != seqDup || applied != 30 {
		t.Fatalf("seq 3 at window edge: %v/%d, want seqDup/30", st, applied)
	}
	s.ack(3+sessionWindow, 99)
	if st, _ := s.check(3); st != seqStale {
		t.Fatalf("seq 3 past the window: %v, want seqStale", st)
	}
	if st, applied := s.check(4); st != seqDup || applied != 4 {
		t.Fatalf("seq 4 still in window: %v/%d, want seqDup/4", st, applied)
	}

	// A jump wider than the window clears every old ack bit.
	s.ack(s.maxSeq+2*sessionWindow, 7)
	for seq := s.maxSeq - sessionWindow + 1; seq < s.maxSeq; seq++ {
		if st, _ := s.check(seq); st != seqRetry {
			t.Fatalf("seq %d after wide jump: %v, want seqRetry", seq, st)
		}
	}
	if st, applied := s.check(s.maxSeq); st != seqDup || applied != 7 {
		t.Fatalf("jumped-to seq: %v/%d, want seqDup/7", st, applied)
	}
}

func TestSessionTableLRUEviction(t *testing.T) {
	tab := newTestTable(3, time.Hour)
	a := tab.get("a", true)
	tab.get("b", true)
	tab.get("c", true)
	// Touch a so b is the LRU tail, then force an eviction.
	if got := tab.get("a", false); got != a {
		t.Fatal("hit on a returned a different session")
	}
	tab.get("d", true)
	if tab.get("b", false) != nil {
		t.Error("b (LRU tail) survived eviction")
	}
	for _, id := range []string{"a", "c", "d"} {
		if tab.get(id, false) == nil {
			t.Errorf("%s evicted, want kept", id)
		}
	}
	if n := tab.size(); n != 3 {
		t.Errorf("table size %d, want 3", n)
	}
}

func TestSessionTableTTL(t *testing.T) {
	tab := newTestTable(10, 10*time.Millisecond)
	s := tab.get("a", true)
	s.ack(5, 1)
	time.Sleep(20 * time.Millisecond)
	// An expired hit must not resurrect the old ack window.
	if got := tab.get("a", false); got != nil {
		t.Fatal("expired session returned on a non-creating get")
	}
	fresh := tab.get("a", true)
	if fresh == s {
		t.Fatal("create reused the expired session")
	}
	if fresh.maxSeq != 0 {
		t.Fatalf("fresh session inherited maxSeq %d", fresh.maxSeq)
	}
	// Expired tails are evicted on create even when under capacity... only
	// when making room; verify the expired-sweep at least bounds growth.
	for i := 0; i < 5; i++ {
		tab.get("x"+strconv.Itoa(i), true)
	}
	time.Sleep(20 * time.Millisecond)
	tab.get("fresh", true)
	if n := tab.size(); n != 1 {
		t.Errorf("after TTL sweep on create: size %d, want 1 (only the fresh session)", n)
	}
}

func TestReplayAck(t *testing.T) {
	tab := newTestTable(10, time.Hour)
	if _, ok := tab.replayAck("ghost", 1); ok {
		t.Fatal("replayAck invented a session")
	}
	if tab.get("ghost", false) != nil {
		t.Fatal("replayAck created session state")
	}
	s := tab.get("a", true)
	s.mu.Lock()
	s.ack(2, 8)
	s.mu.Unlock()
	if applied, ok := tab.replayAck("a", 2); !ok || applied != 8 {
		t.Fatalf("replayAck(a, 2) = %d/%v, want 8/true", applied, ok)
	}
	if _, ok := tab.replayAck("a", 1); ok {
		t.Fatal("replayAck answered an un-acked seq")
	}
	if got := tab.dedupHits.Value(); got != 1 {
		t.Errorf("dedupHits %d, want 1", got)
	}
}
