//go:build race

package coupd

// raceEnabled reports that the race detector is instrumenting this
// build. Under race, sync.Pool deliberately drops a fraction of Puts
// (to shake out lifetime bugs), so alloc-pinned tests over pooled paths
// must skip — the instrumentation itself allocates.
const raceEnabled = true
