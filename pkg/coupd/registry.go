package coupd

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/pkg/commute"
)

// Kind names a served structure family, one per pkg/commute structure.
type Kind string

const (
	// KindCounter is a commute.Counter: ops inc, dec, add(delta).
	KindCounter Kind = "counter"
	// KindHist is a commute.Histogram: ops inc(bin), add(bin, delta).
	// The first update creates it with Update.Bins buckets (DefaultBins
	// when unset); later Bins values are ignored.
	KindHist Kind = "hist"
	// KindMinMax is a commute.MinMax: op observe(v).
	KindMinMax Kind = "minmax"
	// KindRefCount is a sharded commute.RefCount: ops inc, dec,
	// add(delta), escalate.
	KindRefCount Kind = "refcount"
)

// Kinds lists the served kinds in wire order.
func Kinds() []Kind { return []Kind{KindCounter, KindHist, KindMinMax, KindRefCount} }

// DefaultBins sizes a histogram whose creating update carries no Bins.
const DefaultBins = 64

// MaxBins bounds create-time histogram sizes, so one bad record cannot
// allocate unbounded server memory.
const MaxBins = 1 << 20

// Typed errors, in the pkg/coup registry style: match with errors.Is,
// the wrapped messages carry specifics (which name, which op, what the
// valid set is).
var (
	// ErrUnknownKind is returned for Update.Kind values no structure
	// family answers to.
	ErrUnknownKind = errors.New("unknown kind")
	// ErrUnknownOp is returned for an op its kind does not serve.
	ErrUnknownOp = errors.New("unknown op")
	// ErrUnknownName is returned by snapshots of names never updated
	// (updates never see it: they create on first touch).
	ErrUnknownName = errors.New("unknown structure")
	// ErrKindMismatch is returned when an update names an existing
	// structure under a different kind.
	ErrKindMismatch = errors.New("kind mismatch")
	// ErrBadUpdate is returned for malformed records: empty or illegal
	// names, wrong argument count, out-of-range arguments.
	ErrBadUpdate = errors.New("invalid update")
	// ErrStaleSeq maps to 409: a sequenced batch's seq has fallen out of
	// its session's sliding ack window (or the session was evicted), so
	// the server can no longer tell whether it was applied.
	ErrStaleSeq = errors.New("stale seq: batch fell out of the dedup window")
	// ErrSaturated maps to 429: the in-flight batch semaphore is full.
	ErrSaturated = errors.New("saturated: too many in-flight batches")
	// ErrDraining maps to 503: the server is shutting down and accepts
	// no new batches.
	ErrDraining = errors.New("draining")
)

func kindNames() string {
	names := make([]string, len(Kinds()))
	for i, k := range Kinds() {
		names[i] = string(k)
	}
	return strings.Join(names, ", ")
}

// opsFor lists a kind's ops, for ErrUnknownOp messages.
func opsFor(k Kind) string {
	switch k {
	case KindCounter:
		return "inc, dec, add"
	case KindHist:
		return "inc, add"
	case KindMinMax:
		return "observe"
	case KindRefCount:
		return "inc, dec, add, escalate"
	}
	return ""
}

// entry is one named structure. Exactly one of the pointers is set,
// selected by kind; the structures themselves are safe for any
// concurrency, so entries are shared freely once published.
type entry struct {
	kind Kind
	c    *commute.Counter
	h    *commute.Histogram
	m    *commute.MinMax
	r    *commute.RefCount
}

// Registry maps names to structures with create-on-first-update
// semantics. The name table is a sync.Map — the hot path is a read of a
// long-lived name, creation is rare — and every method is safe for
// concurrent use.
type Registry struct {
	entries sync.Map // string -> *entry
	created *commute.Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{created: commute.MustCounter()}
}

// Len returns the number of structures created so far.
func (g *Registry) Len() int { return int(g.created.Value()) }

// Names returns every structure name, sorted.
func (g *Registry) Names() []string {
	var names []string
	g.entries.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// parseKind resolves a wire kind name.
func parseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(s, string(k)) {
			return k, nil
		}
	}
	return "", fmt.Errorf("coupd: %w %q (have: %s)", ErrUnknownKind, s, kindNames())
}

// validName bounds what a structure may be called: non-empty, at most
// 256 bytes, no '/' (names travel in URL paths).
func validName(name string) error {
	if name == "" || len(name) > 256 || strings.ContainsRune(name, '/') {
		return fmt.Errorf("coupd: %w: bad structure name %q (need 1-256 bytes, no '/')", ErrBadUpdate, name)
	}
	return nil
}

// lookup returns the entry for an update's name, creating it on first
// touch. A creation race is settled by LoadOrStore: the loser's
// structure is discarded before any update lands in it.
func (g *Registry) lookup(u *Update) (*entry, error) {
	if e, ok := g.entries.Load(u.Name); ok {
		ent := e.(*entry)
		if !strings.EqualFold(u.Kind, string(ent.kind)) {
			return nil, fmt.Errorf("coupd: %w: structure %q is %q, update says %q", ErrKindMismatch, u.Name, ent.kind, u.Kind)
		}
		return ent, nil
	}
	kind, err := parseKind(u.Kind)
	if err != nil {
		return nil, err
	}
	if err := validName(u.Name); err != nil {
		return nil, err
	}
	ent := &entry{kind: kind}
	switch kind {
	case KindCounter:
		ent.c = commute.MustCounter()
	case KindHist:
		bins := u.Bins
		if bins <= 0 {
			bins = DefaultBins
		}
		if bins > MaxBins {
			return nil, fmt.Errorf("coupd: %w: histogram %q wants %d bins, max %d", ErrBadUpdate, u.Name, bins, MaxBins)
		}
		ent.h = commute.MustHistogram(bins)
	case KindMinMax:
		ent.m = commute.MustMinMax()
	case KindRefCount:
		ent.r = commute.MustRefCount(0, commute.RefSharded)
	}
	if prev, loaded := g.entries.LoadOrStore(u.Name, ent); loaded {
		ent = prev.(*entry)
		if ent.kind != kind {
			return nil, fmt.Errorf("coupd: %w: structure %q is %q, update says %q", ErrKindMismatch, u.Name, ent.kind, u.Kind)
		}
		return ent, nil
	}
	g.created.Inc()
	return ent, nil
}

// args checks an update's argument arity.
func args(u *Update, want int) error {
	if len(u.Args) != want {
		return fmt.Errorf("coupd: %w: %s/%s wants %d args, got %d", ErrBadUpdate, u.Kind, u.Op, want, len(u.Args))
	}
	return nil
}

// Apply lands one update: the fan-in from a wire record to the sharded
// cell's update-only fast path.
//
//coup:hotpath
func (g *Registry) Apply(u *Update) error {
	ent, err := g.lookup(u)
	if err != nil {
		return err
	}
	return ent.apply(u, false)
}

// validate resolves one update — creating its structure on first touch,
// exactly like Apply would — and runs every check Apply runs, without
// mutating any value. It returns the resolved entry so a following wet
// apply can skip the lookup. Because the checks are deterministic in
// (entry, record) and a structure's kind never changes once created, a
// wet apply over a record validate accepted cannot fail.
func (g *Registry) validate(u *Update) (*entry, error) {
	ent, err := g.lookup(u)
	if err != nil {
		return nil, err
	}
	if err := ent.apply(u, true); err != nil {
		return nil, err
	}
	return ent, nil
}

// apply checks one update against this entry and, unless dry, lands it.
// The dry pass is the validate half of the sequenced batches'
// validate-then-apply contract: every check runs, nothing mutates.
//
//coup:hotpath
func (e *entry) apply(u *Update, dry bool) error {
	ent := e
	switch ent.kind {
	case KindCounter:
		switch u.Op {
		case "inc":
			if err := args(u, 0); err != nil {
				return err
			}
			if !dry {
				ent.c.Inc()
			}
		case "dec":
			if err := args(u, 0); err != nil {
				return err
			}
			if !dry {
				ent.c.Dec()
			}
		case "add":
			if err := args(u, 1); err != nil {
				return err
			}
			if !dry {
				ent.c.Add(u.Args[0])
			}
		default:
			return fmt.Errorf("coupd: %w %q for counter %q (have: %s)", ErrUnknownOp, u.Op, u.Name, opsFor(KindCounter))
		}
	case KindHist:
		var bin, delta int64
		switch u.Op {
		case "inc":
			if err := args(u, 1); err != nil {
				return err
			}
			bin, delta = u.Args[0], 1
		case "add":
			if err := args(u, 2); err != nil {
				return err
			}
			bin, delta = u.Args[0], u.Args[1]
		default:
			return fmt.Errorf("coupd: %w %q for hist %q (have: %s)", ErrUnknownOp, u.Op, u.Name, opsFor(KindHist))
		}
		if bin < 0 || bin >= int64(ent.h.Bins()) {
			return fmt.Errorf("coupd: %w: hist %q bin %d out of range [0, %d)", ErrBadUpdate, u.Name, bin, ent.h.Bins())
		}
		if delta < 0 {
			return fmt.Errorf("coupd: %w: hist %q negative delta %d", ErrBadUpdate, u.Name, delta)
		}
		if !dry {
			ent.h.Add(int(bin), uint64(delta))
		}
	case KindMinMax:
		if u.Op != "observe" {
			return fmt.Errorf("coupd: %w %q for minmax %q (have: %s)", ErrUnknownOp, u.Op, u.Name, opsFor(KindMinMax))
		}
		if err := args(u, 1); err != nil {
			return err
		}
		if !dry {
			ent.m.Observe(u.Args[0])
		}
	case KindRefCount:
		switch u.Op {
		case "inc":
			if err := args(u, 0); err != nil {
				return err
			}
			if !dry {
				ent.r.Inc()
			}
		case "dec":
			if err := args(u, 0); err != nil {
				return err
			}
			if !dry {
				ent.r.Dec()
			}
		case "add":
			if err := args(u, 1); err != nil {
				return err
			}
			if !dry {
				ent.r.Add(u.Args[0])
			}
		case "escalate":
			if err := args(u, 0); err != nil {
				return err
			}
			if !dry {
				ent.r.Escalate()
			}
		default:
			return fmt.Errorf("coupd: %w %q for refcount %q (have: %s)", ErrUnknownOp, u.Op, u.Name, opsFor(KindRefCount))
		}
	}
	return nil
}

// snapScratch is the per-snapshot reduction buffer set, pooled by the
// server so steady-state snapshots reuse the pkg/commute no-alloc
// read-side helpers.
type snapScratch struct {
	i64 []int64
	u64 []uint64
}

// Snapshot reduces one structure into out using scratch buffers. The
// histogram bin slice in out aliases sc.u64 — callers must serialize the
// response before reusing sc.
//
// Not //coup:hotpath: the reductions grow sc on first use (make escapes),
// so the zero-alloc claim only holds once the pooled scratch has warmed
// up — an amortized property the per-call contract cannot express.
func (g *Registry) Snapshot(name string, sc *snapScratch, out *Snapshot) error {
	// Load's key box stays on the stack ("name does not escape" per
	// -gcflags=-m); -escapes re-verifies this line every CI run.
	e, ok := g.entries.Load(name) //coup:alloc-ok
	if !ok {
		return fmt.Errorf("coupd: %w %q", ErrUnknownName, name)
	}
	ent := e.(*entry)
	*out = Snapshot{Name: name, Kind: string(ent.kind)}
	switch ent.kind {
	case KindCounter:
		sc.i64 = ent.c.Snapshot(sc.i64)
		out.Value = sc.i64[0]
	case KindHist:
		sc.u64 = ent.h.Snapshot(sc.u64)
		out.Bins = sc.u64
		for _, v := range sc.u64 {
			out.Total += v
		}
	case KindMinMax:
		sc.i64 = ent.m.Snapshot(sc.i64)
		out.N = uint64(sc.i64[0])
		if out.N > 0 {
			out.Min, out.Max = sc.i64[1], sc.i64[2]
		}
	case KindRefCount:
		sc.i64 = ent.r.Snapshot(sc.i64)
		out.Value = sc.i64[0]
		out.Escalated = sc.i64[1] == 1
	}
	return nil
}
