// Package coupd is the commutative-aggregation service: pkg/commute's
// sharded structures — counters, histograms, min/max trackers, reference
// counts — served over HTTP/JSON as named, durable-for-the-process
// aggregation cells, so the paper's update/read asymmetry survives a
// network boundary. The cmd/coupd binary wraps this package; cmd/coupload
// is its closed-loop load generator.
//
// # The paper's states, one layer up
//
// The COUP protocol (Zhang, Harrison & Sanchez, MICRO 2015) lets cores
// hold a line in U state: private, update-only, no read permission, with
// a reduction folding the copies when someone finally reads. Every layer
// of this server replays that shape at a coarser grain:
//
//	coherence protocol (paper)       pkg/commute (process)   pkg/coupd (network)
//	-------------------------------  ----------------------  -------------------------
//	U state: private update-only     per-P padded shard      client-side batch buffer:
//	  copy of a line                                           updates held locally,
//	                                                           invisible until flushed
//	commutative-update instruction   Apply/Add/Observe       one Update record in a
//	                                                           POST /v1/batch body
//	reduction unit folding U copies  Op.Combine over shards  GET /v1/snapshot: the
//	  on a GetS                                                server folds shards into
//	                                                           the response (S state)
//	bounded U-buffer capacity        shard count             bounded in-flight batch
//	  (Sec 3.2 structures)                                     semaphore; 429 is the
//	                                                           capacity eviction
//
// A batch is the network image of an update stream: records carry an
// operation and its arguments, never a read, so the server fans them into
// the sharded cells without ever serializing on the aggregate value.
// Reads (snapshots) are rare and pay the whole reduction, exactly the
// asymmetry Sec 3 argues update-heavy sharing wants. The batched-delta
// framing also matches Shapiro & Preguiça's op-based commutative
// replicated data types (arXiv:0710.1784): because the ops commute,
// per-connection batch order is irrelevant and no cross-client
// coordination is needed.
//
// # Endpoints
//
//	POST /v1/batch             apply a BatchRequest of Update records
//	GET  /v1/snapshot/{name}   reduce one structure into a Snapshot
//	GET  /v1/snapshot          reduce every structure (BulkSnapshot)
//	GET  /v1/stats             service self-telemetry (Stats)
//	GET  /metrics              Prometheus text exposition (pkg/obs)
//
// Structures are created on first update (create-on-first-update, like a
// metrics library's GetOrRegister); a later update naming the same
// structure with a different kind is rejected with ErrKindMismatch.
// Batches apply in order. An unsequenced batch (no client field) is not
// atomic: on the first bad record the server stops, reports the count
// applied so far, and returns 400. A sequenced batch is validated before
// anything applies, so a rejected batch applies nothing (see below). The
// typed sentinels in errors.go name every failure class.
//
// # Exactly-once replay
//
// Commutative is not idempotent: a counter increment replayed by a
// well-meaning retry double-counts. The wire format therefore carries an
// optional exactly-once plane — two BatchRequest fields:
//
//	client   string   stable writer identity opening a dedup session
//	seq      uint64   1-based, strictly in-order per client; a retry
//	                  resends the SAME seq
//
// A batch carrying a client id is sequenced. The server keeps a bounded
// session table (WithDedupSessions: LRU-evicted beyond a max, TTL-evicted
// when idle) holding, per client, the highest seq applied, a 64-deep
// sliding ack window, and the Applied answer for each windowed seq. A
// re-POSTed seq inside the window is answered from the table — original
// Applied count, Deduped=true, nothing re-applied; a seq below the window
// gets 409 ErrStaleSeq. Sequenced batches are validate-then-apply: every
// record is checked (and its cell created) in a dry pass first, so a 400
// rejection applies nothing and the client may correct and resend under
// the same seq. The Client type implements the other end — per-session
// monotonic seqs, full-jitter retry on transport faults, 5xx and
// truncated acks — and internal/faultnet is the seeded chaos transport
// the contract is proven against.
//
// # Backpressure and shutdown
//
// At most MaxInFlight batches are processed concurrently (including
// request-body decode); beyond that the server answers 429 with both a
// Retry-After header (whole seconds, for generic HTTP clients) and a
// finer-grained Retry-After-Ms header (milliseconds, RetryAfterMs) that
// this package's Client honors as a backoff floor — saturation is pushed
// back to clients, who hold their batches in their own U-state buffers
// and retry. Drain flips the server into a draining state (new batches
// get 503), waits for in-flight batches to land, and leaves snapshots
// serving, so a shutdown loses no acknowledged update. Draining still
// answers already-acked sequenced replays from the session table, so a
// retry whose original landed just before the drain reconciles instead
// of erroring.
//
// # Observability
//
// The server's own telemetry — batch and update counters, reduce-latency
// and batch-size histograms, in-flight depth, runtime gauges — lives in
// a pkg/obs registry (pkg/commute underneath), so the service's hottest
// metadata words enjoy the same commutative treatment it sells: handlers
// write update-only, and both GET /metrics and /v1/stats are
// reduce-on-read views of one state. A per-P obs.Ring additionally
// records request span, batch-apply, and reduce events; Server.Trace
// exposes it for capture. See the pkg/obs package docs for how these map
// onto the paper's U-state/S-state vocabulary.
package coupd
