package coupd

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"testing"
	"time"
)

func seqBatch(client string, seq uint64, updates ...Update) BatchRequest {
	return BatchRequest{Client: client, Seq: seq, Updates: updates}
}

func inc(name string) Update {
	return Update{Name: name, Kind: "counter", Op: "inc"}
}

func counterValue(t *testing.T, url, name string) int64 {
	t.Helper()
	var snap Snapshot
	status := getJSON(t, url+"/v1/snapshot/"+name, &snap)
	if status == http.StatusNotFound {
		return 0
	}
	if status != http.StatusOK {
		t.Fatalf("snapshot %s: HTTP %d", name, status)
	}
	return snap.Value
}

// TestSequencedDedupReplay pins the tentpole contract: a re-POSTed
// sequenced batch is answered with its original Applied and applies
// nothing the second time.
func TestSequencedDedupReplay(t *testing.T) {
	_, ts := newTestServer(t)
	b := seqBatch("c1", 1, inc("sq"), inc("sq"), inc("sq"))

	resp, out := postBatch(t, ts.URL, b)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first POST: HTTP %d: %s", resp.StatusCode, out)
	}
	var br BatchResponse
	if err := json.Unmarshal(out, &br); err != nil || br.Applied != 3 || br.Deduped {
		t.Fatalf("first ack %s (err %v), want applied 3, not deduped", out, err)
	}

	resp, out = postBatch(t, ts.URL, b)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed POST: HTTP %d: %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &br); err != nil || br.Applied != 3 || !br.Deduped {
		t.Fatalf("replay ack %s (err %v), want applied 3, deduped", out, err)
	}
	if v := counterValue(t, ts.URL, "sq"); v != 3 {
		t.Errorf("counter after replay = %d, want 3 (no double apply)", v)
	}

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Sessions != 1 || st.DedupHits != 1 || st.Replays != 1 {
		t.Errorf("stats sessions/dedup/replays = %d/%d/%d, want 1/1/1",
			st.Sessions, st.DedupHits, st.Replays)
	}
	if st.Updates != 3 {
		t.Errorf("stats.Updates = %d, want 3", st.Updates)
	}
}

// TestSequencedValidateThenApply pins atomicity: a sequenced batch with
// a bad record in the middle applies nothing, and the same seq can be
// retried with the corrected batch.
func TestSequencedValidateThenApply(t *testing.T) {
	_, ts := newTestServer(t)
	bad := seqBatch("c2", 1, inc("vta"),
		Update{Name: "vta", Kind: "counter", Op: "no-such-op"}, inc("vta"))

	resp, out := postBatch(t, ts.URL, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch: HTTP %d: %s", resp.StatusCode, out)
	}
	var er ErrorResponse
	if err := json.Unmarshal(out, &er); err != nil || er.Applied != 0 {
		t.Fatalf("bad batch body %s (err %v), want applied 0", out, err)
	}
	if v := counterValue(t, ts.URL, "vta"); v != 0 {
		t.Fatalf("counter after rejected batch = %d, want 0 (validate-then-apply)", v)
	}

	good := seqBatch("c2", 1, inc("vta"), inc("vta"), inc("vta"))
	resp, out = postBatch(t, ts.URL, good)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corrected retry of seq 1: HTTP %d: %s", resp.StatusCode, out)
	}
	if v := counterValue(t, ts.URL, "vta"); v != 3 {
		t.Errorf("counter after corrected retry = %d, want 3", v)
	}
}

// Contrast case: bare (unsequenced) batches keep the historical
// partial-application semantics, sequenced ones don't.
func TestSequencedSeqValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := postBatch(t, ts.URL, seqBatch("c3", 0, inc("z")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("seq 0: HTTP %d: %s, want 400", resp.StatusCode, out)
	}
}

func TestSequencedStaleSeq409(t *testing.T) {
	_, ts := newTestServer(t)
	for seq := uint64(1); seq <= sessionWindow+1; seq++ {
		resp, out := postBatch(t, ts.URL, seqBatch("c4", seq, inc("st")))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seq %d: HTTP %d: %s", seq, resp.StatusCode, out)
		}
	}
	resp, out := postBatch(t, ts.URL, seqBatch("c4", 1, inc("st")))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale seq 1: HTTP %d: %s, want 409", resp.StatusCode, out)
	}
	if v := counterValue(t, ts.URL, "st"); v != sessionWindow+1 {
		t.Errorf("counter = %d, want %d (stale batch applied nothing)", v, sessionWindow+1)
	}
}

// TestPanicRecovery pins the recovery middleware: an injected panic at
// the apply point becomes a 500 and a coupd_panics_total tick, the
// semaphore slot is released, and — because the panic fired before any
// ack — the same seq retries to success with no double apply.
func TestPanicRecovery(t *testing.T) {
	var calls int
	hook := func() {
		calls++
		if calls == 1 {
			panic("poisoned batch")
		}
	}
	_, ts := newTestServer(t, WithMaxInFlight(1), WithApplyHook(hook))

	b := seqBatch("c5", 1, inc("pr"), inc("pr"))
	resp, out := postBatch(t, ts.URL, b)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned batch: HTTP %d: %s, want 500", resp.StatusCode, out)
	}
	if v := counterValue(t, ts.URL, "pr"); v != 0 {
		t.Fatalf("counter after panic = %d, want 0 (hook fires before records land)", v)
	}

	// Retry same seq: proves both exactly-once-through-panic and that the
	// MaxInFlight(1) slot was released on the unwind.
	resp, out = postBatch(t, ts.URL, b)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after panic: HTTP %d: %s", resp.StatusCode, out)
	}
	if v := counterValue(t, ts.URL, "pr"); v != 2 {
		t.Errorf("counter after retry = %d, want 2", v)
	}

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Panics != 1 {
		t.Errorf("stats.Panics = %d, want 1", st.Panics)
	}
	if st.InFlight != 0 {
		t.Errorf("stats.InFlight = %d after unwind, want 0", st.InFlight)
	}
}

// TestDrainAnswersAckedSequenced pins the drain-time dedup answer: a
// draining server still acknowledges an already-applied sequenced batch
// from its session table (applying nothing), while unseen batches get
// 503 — the property that reconciles applied-but-unacked retries with a
// mid-storm shutdown.
func TestDrainAnswersAckedSequenced(t *testing.T) {
	s, ts := newTestServer(t)
	b := seqBatch("c6", 1, inc("dd"), inc("dd"))
	if resp, out := postBatch(t, ts.URL, b); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain batch: HTTP %d: %s", resp.StatusCode, out)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	resp, out := postBatch(t, ts.URL, b) // the retry whose ack was "lost"
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain-time replay: HTTP %d: %s, want 200", resp.StatusCode, out)
	}
	var br BatchResponse
	if err := json.Unmarshal(out, &br); err != nil || br.Applied != 2 || !br.Deduped {
		t.Fatalf("drain-time replay ack %s (err %v), want applied 2, deduped", out, err)
	}
	resp, out = postBatch(t, ts.URL, seqBatch("c6", 2, inc("dd")))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new batch while draining: HTTP %d: %s, want 503", resp.StatusCode, out)
	}
	if v := counterValue(t, ts.URL, "dd"); v != 2 {
		t.Errorf("counter = %d, want 2", v)
	}
}

// TestDrainRacingRetryNeverSplits is the satellite race: a sequenced
// writer stuck in 429 backoff while Drain flips. The batch must end
// fully applied (acked) or cleanly rejected (unacked) — never split —
// and here, since the in-flight slot is held until after the flip, it
// must be the clean rejection.
func TestDrainRacingRetryNeverSplits(t *testing.T) {
	s, ts := newTestServer(t, WithMaxInFlight(1))
	release, done := slowBatch(t, ts.URL)
	defer release()
	waitStats(t, ts.URL, func(st Stats) bool { return st.InFlight == 1 })

	cl := NewClient(ts.URL,
		WithBackoff(time.Millisecond, 4*time.Millisecond),
		WithRetryBudget(10*time.Second))
	sess := cl.Session("drain-race")
	sendErr := make(chan error, 1)
	go func() {
		_, err := sess.Send(context.Background(), []Update{inc("race")})
		sendErr <- err
	}()
	// The writer is provably in its 429 retry loop once a rejection shows.
	waitStats(t, ts.URL, func(st Stats) bool { return st.Rejected >= 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitStats(t, ts.URL, func(st Stats) bool { return st.Draining })

	release() // let the slot-holding batch land so Drain completes
	if resp := <-done; resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("slot-holding batch resolved to %+v", resp)
	}
	if err := <-drained; err != nil {
		t.Fatal(err)
	}

	err := <-sendErr
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Fatalf("racing Send returned %v, want a 503 RemoteError", err)
	}
	// Never split: the rejected batch applied nothing at all (the counter
	// was never even created), and the slot-holder's update is intact.
	var snap Snapshot
	if status := getJSON(t, ts.URL+"/v1/snapshot/race", &snap); status != http.StatusNotFound {
		t.Errorf("rejected batch left structure 'race' behind (HTTP %d, value %d)", status, snap.Value)
	}
	if v := counterValue(t, ts.URL, "x"); v != 1 {
		t.Errorf("slot-holder counter = %d, want 1", v)
	}
}

func waitStats(t *testing.T, url string, ok func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st Stats
		getJSON(t, url+"/v1/stats", &st)
		if ok(st) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition never held; last stats %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetryAfterMsHeader pins the millisecond backpressure hint riding
// alongside the whole-second standard header on 429s.
func TestRetryAfterMsHeader(t *testing.T) {
	_, ts := newTestServer(t, WithMaxInFlight(1))
	release, done := slowBatch(t, ts.URL)
	defer release()
	waitStats(t, ts.URL, func(st Stats) bool { return st.InFlight == 1 })

	resp, out := postBatch(t, ts.URL, BatchRequest{Updates: []Update{inc("ra")}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d: %s, want 429", resp.StatusCode, out)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	if got := resp.Header.Get("Retry-After-Ms"); got != strconv.Itoa(RetryAfterMs) {
		t.Errorf("Retry-After-Ms = %q, want %d", got, RetryAfterMs)
	}
	release()
	<-done
}

// TestSequencedApplyZeroAllocs alloc-pins the steady-state sequenced
// apply path — session lookup, dedup check, validate-then-apply, ack,
// telemetry — at zero allocations per batch once structures, session,
// and scratch buffers exist. The static half of this guarantee is
// coupvet's hotalloc/-escapes pass over the //coup:hotpath annotations.
func TestSequencedApplyZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates (and sync.Pool drops Puts under race)")
	}
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	req := &BatchRequest{Client: "alloc-pin", Updates: make([]Update, 64)}
	for i := range req.Updates {
		req.Updates[i] = inc("za" + strconv.Itoa(i%4))
	}
	var seq uint64
	run := func() {
		seq++
		req.Seq = seq
		applied, deduped, err := s.applySequencedBatch(req)
		if err != nil || deduped || applied != len(req.Updates) {
			t.Fatalf("seq %d: applied=%d deduped=%v err=%v", seq, applied, deduped, err)
		}
	}
	run() // create structures, session, and scratch capacity
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Errorf("sequenced apply path allocates %.1f/op at steady state, want 0", avg)
	}
}
