//go:build !race

package coupd

// raceEnabled: see race_on_test.go.
const raceEnabled = false
