package coupd

import (
	"sync"
	"time"

	"repro/pkg/obs"
)

// sessionWindow is the width of a session's sliding ack window: how many
// of a client's most recent seqs the server remembers as applied. A
// retry must arrive within sessionWindow batches of the client's newest
// seq — far beyond what the one-outstanding-batch-per-session clients
// (coupd.Session, the swbench HTTP driver) ever need.
const sessionWindow = 64

// Default dedup-session bounds; override with WithDedupSessions.
const (
	// DefaultMaxSessions bounds the session table; at ~200 bytes per
	// session the default table tops out around 13 MB.
	DefaultMaxSessions = 65536
	// DefaultSessionTTL evicts sessions idle this long. The TTL trades
	// memory for the exactly-once horizon: a client that goes silent
	// longer than this loses its dedup state, so it must be far larger
	// than any client's retry budget.
	DefaultSessionTTL = 10 * time.Minute
)

// session is one client's dedup state: the highest acknowledged seq and
// a sliding window of ack bits below it. mu also serializes the client's
// batch applications, so two racing POSTs of the same seq cannot both
// miss the dedup check and double-apply.
type session struct {
	id         string
	prev, next *session // LRU list, most-recent at table head
	touched    int64    // unix nanos of last use, TTL eviction input

	mu     sync.Mutex
	maxSeq uint64 // highest acked seq (0 = none yet)
	acked  uint64 // bit i set => seq maxSeq-i acked (bit 0 = maxSeq)
	// applied[seq%sessionWindow] is the Applied count acked for seq, the
	// answer a duplicate POST of that seq gets.
	applied [sessionWindow]uint32
}

// seqState classifies an incoming seq against the session's window.
type seqState int

const (
	seqNew   seqState = iota // beyond maxSeq: apply and advance
	seqRetry                 // within the window, not acked: apply
	seqDup                   // within the window, acked: answer stored
	seqStale                 // below the window: unanswerable, 409
)

// check classifies seq and, for seqDup, returns the originally-acked
// Applied count. Callers hold s.mu.
//
//coup:hotpath
func (s *session) check(seq uint64) (seqState, int) {
	if seq > s.maxSeq {
		return seqNew, 0
	}
	delta := s.maxSeq - seq
	if delta >= sessionWindow {
		return seqStale, 0
	}
	if s.acked&(1<<delta) != 0 {
		return seqDup, int(s.applied[seq%sessionWindow])
	}
	return seqRetry, 0
}

// ack records seq as applied with the given Applied count. Callers hold
// s.mu and have already classified seq as seqNew or seqRetry.
//
//coup:hotpath
func (s *session) ack(seq uint64, applied int) {
	if seq > s.maxSeq {
		shift := seq - s.maxSeq
		if shift >= sessionWindow {
			s.acked = 0
		} else {
			s.acked <<= shift
		}
		s.acked |= 1
		s.maxSeq = seq
	} else {
		s.acked |= 1 << (s.maxSeq - seq)
	}
	s.applied[seq%sessionWindow] = uint32(applied)
}

// sessionTable maps client IDs to sessions, bounded by an LRU list and a
// TTL. The zero table is unusable; build with newSessionTable.
type sessionTable struct {
	mu         sync.Mutex
	byID       map[string]*session
	head, tail *session // LRU: head most recent, tail next to evict
	max        int
	ttl        time.Duration

	dedupHits *obs.Counter // duplicate batches answered from the table
	replays   *obs.Counter // sequenced batches re-presenting a seen seq
}

func newSessionTable(max int, ttl time.Duration, m *obs.Registry) *sessionTable {
	t := &sessionTable{
		byID:      make(map[string]*session, 64),
		max:       max,
		ttl:       ttl,
		dedupHits: m.Counter("coupd_dedup_hits_total", "Duplicate sequenced batches answered from the session table without re-applying."),
		replays:   m.Counter("coupd_replays_total", "Sequenced batches that re-presented an already-seen seq (acked or not)."),
	}
	m.Gauge("coupd_sessions", "Live dedup sessions in the bounded table.",
		func() int64 { return t.size() })
	return t
}

func (t *sessionTable) size() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(len(t.byID))
}

// unlink removes s from the LRU list. Callers hold t.mu.
func (t *sessionTable) unlink(s *session) {
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		t.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		t.tail = s.prev
	}
	s.prev, s.next = nil, nil
}

// pushFront makes s the most-recently-used session. Callers hold t.mu.
func (t *sessionTable) pushFront(s *session) {
	s.next = t.head
	if t.head != nil {
		t.head.prev = s
	}
	t.head = s
	if t.tail == nil {
		t.tail = s
	}
}

// get returns the session for id, creating it when create is set. On
// every hit it refreshes the LRU position and the TTL clock; on create
// it evicts expired sessions and, if still over capacity, the LRU tail.
// A nil return (create false) means the id has no live session.
//
// Deliberately not //coup:hotpath: the create path allocates the session
// (once per client lifetime), like Registry.lookup's create path. The
// steady-state hit path is allocation-free and the alloc-pinned test in
// server_chaos_test.go holds it to that.
func (t *sessionTable) get(id string, create bool) *session {
	now := time.Now().UnixNano()
	t.mu.Lock()
	if s, ok := t.byID[id]; ok {
		// An expired session still present in the table is dead state: a
		// hit must not resurrect its ack window (the client that owned it
		// is long gone; a new client reusing the id starts fresh).
		if now-s.touched <= int64(t.ttl) {
			s.touched = now
			if t.head != s {
				t.unlink(s)
				t.pushFront(s)
			}
			t.mu.Unlock()
			return s
		}
		t.unlink(s)
		delete(t.byID, id)
	}
	if !create {
		t.mu.Unlock()
		return nil
	}
	// Evict expired tails first (cheapest accounting), then make room.
	for t.tail != nil && now-t.tail.touched > int64(t.ttl) {
		old := t.tail
		t.unlink(old)
		delete(t.byID, old.id)
	}
	for len(t.byID) >= t.max && t.tail != nil {
		old := t.tail
		t.unlink(old)
		delete(t.byID, old.id)
	}
	s := &session{id: id, touched: now}
	t.byID[id] = s
	t.pushFront(s)
	t.mu.Unlock()
	return s
}

// replayAck answers a sequenced batch without creating session state:
// if (client, seq) is recorded as applied, it returns the original
// Applied count. The draining server uses this so an applied-but-
// unacknowledged batch can still be acknowledged during shutdown —
// answering it applies nothing, so it is as safe as a snapshot read.
func (t *sessionTable) replayAck(client string, seq uint64) (int, bool) {
	s := t.get(client, false)
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	state, applied := s.check(seq)
	if state != seqDup {
		return 0, false
	}
	t.dedupHits.Inc()
	t.replays.Inc()
	return applied, true
}
