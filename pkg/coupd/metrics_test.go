package coupd

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/pkg/obs"
)

// postTestBatch sends one small batch through the full handler path.
func postTestBatch(t *testing.T, s *Server, body string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body))
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("batch returned %d: %s", rr.Code, rr.Body.String())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	postTestBatch(t, s, `{"updates":[
		{"kind":"counter","name":"hits","op":"add","args":[3]},
		{"kind":"counter","name":"hits","op":"add","args":[4]}]}`)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/snapshot/hits", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("snapshot returned %d", rr.Code)
	}

	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics returned %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	page := rr.Body.String()
	for _, want := range []string{
		"# TYPE coupd_batches_total counter\ncoupd_batches_total 1\n",
		"coupd_updates_total 2\n",
		"coupd_snapshots_total 1\n",
		"# TYPE coupd_batch_size histogram\n",
		"# TYPE coupd_reduce_ns histogram\n",
		"# TYPE coupd_in_flight gauge\n",
		"coupd_structures 1\n",
		"# TYPE go_goroutines gauge\n",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q\npage:\n%s", want, page)
		}
	}
}

func TestMetricsMatchesStatsView(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	postTestBatch(t, s, `{"updates":[{"kind":"counter","name":"a","op":"inc"}]}`)
	postTestBatch(t, s, `{"updates":[{"kind":"counter","name":"a","op":"inc"},{"kind":"counter","name":"a","op":"inc"}]}`)

	// The obs registry and /v1/stats are two reductions of one state.
	if got := s.Metrics().Counter("coupd_batches_total", "").Value(); got != 2 {
		t.Errorf("coupd_batches_total = %d, want 2", got)
	}
	if got := s.Metrics().Counter("coupd_updates_total", "").Value(); got != 3 {
		t.Errorf("coupd_updates_total = %d, want 3", got)
	}
}

func TestRequestTraceSpans(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	postTestBatch(t, s, `{"updates":[{"kind":"counter","name":"x","op":"inc"}]}`)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/snapshot/x", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("snapshot returned %d", rr.Code)
	}

	events := s.Trace().Dump()
	var batchBegin, batchEnd, apply, reduce, snapBegin, snapEnd int
	for _, e := range events {
		switch {
		case e.Kind == obs.EvSpanBegin && e.ID == traceBatch:
			batchBegin++
		case e.Kind == obs.EvSpanEnd && e.ID == traceBatch:
			batchEnd++
		case e.Kind == obs.EvBatchApply:
			apply++
			if e.Arg1 != 1 {
				t.Errorf("batch apply recorded %d updates, want 1", e.Arg1)
			}
		case e.Kind == obs.EvReduce:
			reduce++
		case e.Kind == obs.EvSpanBegin && e.ID == traceSnapshot:
			snapBegin++
		case e.Kind == obs.EvSpanEnd && e.ID == traceSnapshot:
			snapEnd++
		}
	}
	if batchBegin != 1 || batchEnd != 1 || apply != 1 {
		t.Errorf("batch span events = %d/%d/%d begin/end/apply, want 1/1/1", batchBegin, batchEnd, apply)
	}
	if snapBegin != 1 || snapEnd != 1 || reduce != 1 {
		t.Errorf("snapshot span events = %d/%d/%d begin/end/reduce, want 1/1/1", snapBegin, snapEnd, reduce)
	}

	// The span ring round-trips through the binary trace format.
	var buf bytes.Buffer
	wrote, err := s.Trace().DumpTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(wrote) {
		t.Errorf("trace round-trip %d -> %d events", len(wrote), len(back))
	}
}
