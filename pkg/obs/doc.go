// Package obs is the repo's observability layer, built on pkg/commute so
// that metrics are themselves an instance of the paper's claim: updates
// to shared data can be nearly free when the operations commute.
//
// # U-state and S-state, applied to telemetry
//
// In the paper's vocabulary, a cache line in U-state holds a private,
// update-only copy: cores apply commutative updates locally and a reader
// forces a reduction back to S-state. Every obs write maps onto that
// split:
//
//   - Counter.Inc / Counter.Add and Histogram.Observe are U-state
//     operations — each lands on the calling goroutine's private shard
//     (commute's per-P cache-line-padded copies) as one uncontended
//     atomic, with no cross-core communication.
//   - Reading a metric — Counter.Value, Histogram.Snapshot, a scrape of
//     Registry.WriteMetrics — is the S-state transition: a
//     reduce-on-read fold over the shards, paid only when someone
//     actually looks.
//   - MinMax is the degenerate idempotent case: an observation that
//     does not improve the running extreme completes as a pure load (a
//     silent U hit).
//
// Because an always-on metrics layer updates far more often than it is
// scraped, this asymmetry is exactly the right trade — which is why the
// repo dogfoods its own commutative structures as the telemetry
// substrate rather than guarding plain counters with locks.
//
// # Registry and exposition
//
// A Registry maps names to metric families (Counter, UpDownCounter,
// Gauge, MinMax, log2-bucket Histogram) with GetOrCreate semantics.
// WriteMetrics emits the Prometheus text exposition format (0.0.4) in
// sorted-name order, so identical registry state produces byte-identical
// pages; Handler mounts that at GET /metrics. Runtime gauges (GC
// cycles, goroutines, heap bytes) come from runtime/metrics via
// RegisterRuntimeMetrics.
//
// # Trace ring
//
// Ring is a per-P buffer of fixed-size binary event records (span
// begin/end, batch apply, reduce): Record is an update-only append to
// the caller's shard — one cursor bump and five word stores, zero
// allocations — and Dump is the reduction, reconstructing a
// time-ordered event list with seqlock validation so torn slots are
// dropped, never misread. WriteTrace/ReadTrace give the records a
// stable binary file format, seeding ROADMAP's trace capture-and-replay
// direction.
//
// Every write path carries //coup:hotpath and is vetted by coupvet
// -escapes; the instrumented-vs-bare benchmarks in this package and
// pkg/coupd quantify the overhead the design keeps low.
package obs
