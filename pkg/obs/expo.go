package obs

import (
	"io"
	"net/http"
	"strconv"
	"strings"
)

// This file is the read side of the metrics layer: the Prometheus text
// exposition format, version 0.0.4. Families are emitted in sorted-name
// order so identical registry state always produces byte-identical
// output — exposition is a reduction, and reductions here are
// deterministic by contract (the same rule detrange enforces on the
// simulator's stats paths).

// appendHeader appends the # HELP / # TYPE preamble for one family.
func appendHeader(b []byte, name, help, kind string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = appendEscapedHelp(b, help)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, kind...)
	b = append(b, '\n')
	return b
}

// appendEscapedHelp escapes backslash and newline, as the format
// requires in HELP text.
func appendEscapedHelp(b []byte, help string) []byte {
	if !strings.ContainsAny(help, "\\\n") {
		return append(b, help...)
	}
	for i := 0; i < len(help); i++ {
		switch help[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, help[i])
		}
	}
	return b
}

func appendInt(b []byte, v int64) []byte   { return strconv.AppendInt(b, v, 10) }
func appendUint(b []byte, v uint64) []byte { return strconv.AppendUint(b, v, 10) }

func appendSampleInt(b []byte, name string, v int64) []byte {
	b = append(b, name...)
	b = append(b, ' ')
	b = appendInt(b, v)
	b = append(b, '\n')
	return b
}

func appendSampleUint(b []byte, name string, v uint64) []byte {
	b = append(b, name...)
	b = append(b, ' ')
	b = appendUint(b, v)
	b = append(b, '\n')
	return b
}

// WriteMetrics reduces every registered metric and writes the full
// exposition page to w. Output is deterministic for identical registry
// state: families appear in sorted-name order and every figure is a
// point-in-time reduction.
func (r *Registry) WriteMetrics(w io.Writer) error {
	var b []byte
	for _, m := range r.sorted() {
		b = m.writeExpo(b)
	}
	_, err := w.Write(b)
	return err
}

// Handler returns an http.Handler serving the exposition page with the
// text-format content type, suitable for mounting at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteMetrics(w)
	})
}
