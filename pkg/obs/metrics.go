package obs

import (
	"repro/pkg/commute"
)

// Counter is a named, registry-owned counter over commute.Counter: adds
// take the sharded update-only path, reads reduce. The same type backs
// both monotonic counters and up/down counters (queue depths); only the
// exposition TYPE differs.
type Counter struct {
	name  string
	help  string
	gauge bool
	c     *commute.Counter
}

func newCounter(name, help string, gauge bool) *Counter {
	return &Counter{name: name, help: help, gauge: gauge, c: commute.MustCounter()}
}

// Inc adds one.
//
//coup:hotpath
func (c *Counter) Inc() { c.c.Add(1) }

// Dec subtracts one (up/down counters only by convention; the type does
// not enforce monotonicity).
//
//coup:hotpath
func (c *Counter) Dec() { c.c.Add(-1) }

// Add folds delta in on the calling goroutine's shard.
//
//coup:hotpath
func (c *Counter) Add(delta int64) { c.c.Add(delta) }

// Value reduces the shards and returns the count.
func (c *Counter) Value() int64 { return c.c.Value() }

func (c *Counter) expoName() string { return c.name }
func (c *Counter) expoHelp() string { return c.help }

func (c *Counter) writeExpo(b []byte) []byte {
	kind := "counter"
	if c.gauge {
		kind = "gauge"
	}
	b = appendHeader(b, c.name, c.help, kind)
	b = appendSampleInt(b, c.name, c.c.Value())
	return b
}

// Gauge is a sampled-on-read metric: fn is evaluated when the gauge is
// read or exposed, never stored. It suits facts that already live
// elsewhere (goroutine counts, heap bytes, registry sizes) — the metric
// layer only needs a window onto them, not a copy.
type Gauge struct {
	name string
	help string
	fn   func() int64
}

// Value samples the gauge.
func (g *Gauge) Value() int64 { return g.fn() }

func (g *Gauge) expoName() string { return g.name }
func (g *Gauge) expoHelp() string { return g.help }

func (g *Gauge) writeExpo(b []byte) []byte {
	b = appendHeader(b, g.name, g.help, "gauge")
	b = appendSampleInt(b, g.name, g.fn())
	return b
}

// MinMax tracks running extremes plus an observation count over
// commute.MinMax. It is exposed as three gauge families — name_count,
// name_max, name_min — since Prometheus has no native extremes type.
type MinMax struct {
	name string
	help string
	m    *commute.MinMax
}

func newMinMax(name, help string) *MinMax {
	return &MinMax{name: name, help: help, m: commute.MustMinMax()}
}

// Observe folds v into the calling goroutine's shard.
//
//coup:hotpath
func (m *MinMax) Observe(v int64) { m.m.Observe(v) }

// N reduces the observation count.
func (m *MinMax) N() uint64 { return m.m.N() }

// Min reduces the shards' minima; ok is false when nothing has been
// observed.
func (m *MinMax) Min() (int64, bool) { return m.m.Min() }

// Max reduces the shards' maxima; ok is false when nothing has been
// observed.
func (m *MinMax) Max() (int64, bool) { return m.m.Max() }

func (m *MinMax) expoName() string { return m.name }
func (m *MinMax) expoHelp() string { return m.help }

func (m *MinMax) writeExpo(b []byte) []byte {
	min, ok := m.m.Min()
	max, _ := m.m.Max()
	if !ok {
		min, max = 0, 0
	}
	b = appendHeader(b, m.name+"_count", m.help+" (observations)", "gauge")
	b = appendSampleUint(b, m.name+"_count", m.m.N())
	b = appendHeader(b, m.name+"_max", m.help+" (maximum)", "gauge")
	b = appendSampleInt(b, m.name+"_max", max)
	b = appendHeader(b, m.name+"_min", m.help+" (minimum)", "gauge")
	b = appendSampleInt(b, m.name+"_min", min)
	return b
}
