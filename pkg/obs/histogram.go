package obs

import (
	"math"
	"math/bits"

	"repro/pkg/commute"
)

// Histogram is a log2-bucket value histogram over commute structures:
// bucket counts in a commute.Histogram, the running sum in a
// commute.Counter, exact extremes in a commute.MinMax. Observe touches
// only the caller's private shards; every read-side figure (quantiles,
// mean, the exposition block) is a reduce-on-demand.
//
// Bucket i holds values v with floor(log2(v)) == i: bucket 0 is v <= 1,
// bucket i (i >= 1) is 2^i <= v < 2^(i+1), and the last bucket absorbs
// everything at or beyond its lower bound. This is exactly coupd's
// BatchLenLog2 bucketing, promoted to a shared type.
type Histogram struct {
	name string
	help string
	bins int
	h    *commute.Histogram
	sum  *commute.Counter
	mm   *commute.MinMax
}

func newHistogram(name, help string, bins int) *Histogram {
	return &Histogram{
		name: name,
		help: help,
		bins: bins,
		h:    commute.MustHistogram(bins),
		sum:  commute.MustCounter(),
		mm:   commute.MustMinMax(),
	}
}

// NewHistogram builds a standalone (unregistered) histogram, for callers
// like swbench that want the bucketing and quantile math without a
// registry or a name.
func NewHistogram(bins int) *Histogram {
	if bins < 1 {
		panic("obs: histogram needs >= 1 bin")
	}
	return newHistogram("", "", bins)
}

// Bins returns the bucket count.
func (h *Histogram) Bins() int { return h.bins }

// bucketOf maps a value to its floor-log2 bucket, clamped to the bucket
// range. Negative values land in bucket 0 with v <= 1.
func (h *Histogram) bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1
	if b >= h.bins {
		b = h.bins - 1
	}
	return b
}

// Observe folds v into the calling goroutine's shards: one bucket
// increment, one sum add, one extremes fold — three update-only writes,
// no reduction.
//
//coup:hotpath
func (h *Histogram) Observe(v int64) {
	h.h.Add(h.bucketOf(v), 1)
	h.sum.Add(v)
	h.mm.Observe(v)
}

// Count reduces the total number of observations.
func (h *Histogram) Count() uint64 { return h.mm.N() }

// Sum reduces the running sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Value() }

// HistSnapshot is a reduced view of a Histogram, reusable across
// snapshots: Buckets is resized in place when capacity allows.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Min     int64 // exact observed minimum; 0 when Count == 0
	Max     int64 // exact observed maximum; 0 when Count == 0
	Buckets []uint64
}

// Snapshot reduces the histogram into s, reusing s.Buckets when it is
// large enough.
func (h *Histogram) Snapshot(s *HistSnapshot) {
	s.Buckets = h.h.Snapshot(s.Buckets)
	s.Count = h.mm.N()
	s.Sum = h.sum.Value()
	min, ok := h.mm.Min()
	max, _ := h.mm.Max()
	if !ok {
		min, max = 0, 0
	}
	s.Min, s.Max = min, max
}

// Mean returns the mean observed value, or 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketBounds returns bucket i's value range [lo, hi) under floor-log2
// bucketing, ignoring the last-bucket clamp.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 2
	}
	return math.Ldexp(1, i), math.Ldexp(1, i+1)
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation within the log2 bucket holding the target rank, clamped
// to the exact observed [Min, Max]. With power-of-two-wide buckets the
// estimate is coarse by construction — within a factor of two — but the
// clamp makes p0 and p100 exact.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + n
		if float64(next) >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - float64(cum)) / float64(n)
			v := lo + frac*(hi-lo)
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		cum = next
	}
	return float64(s.Max)
}

func (h *Histogram) expoName() string { return h.name }
func (h *Histogram) expoHelp() string { return h.help }

func (h *Histogram) writeExpo(b []byte) []byte {
	var s HistSnapshot
	h.Snapshot(&s)
	b = appendHeader(b, h.name, h.help, "histogram")
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		b = append(b, h.name...)
		b = append(b, `_bucket{le="`...)
		if i == h.bins-1 {
			b = append(b, "+Inf"...)
		} else {
			// Upper-inclusive integer bound of bucket i: 2^(i+1)-1.
			b = appendUint(b, uint64(1)<<uint(i+1)-1)
		}
		b = append(b, `"} `...)
		b = appendUint(b, cum)
		b = append(b, '\n')
	}
	b = append(b, h.name...)
	b = append(b, "_sum "...)
	b = appendInt(b, s.Sum)
	b = append(b, '\n')
	b = append(b, h.name...)
	b = append(b, "_count "...)
	b = appendUint(b, s.Count)
	b = append(b, '\n')
	return b
}
