package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestRingRecordDump(t *testing.T) {
	r := NewRing(128)
	r.Record(EvSpanBegin, 7, 100, 0)
	r.Record(EvBatchApply, 7, 64, 0)
	r.Record(EvReduce, 7, 12345, 0)
	r.Record(EvSpanEnd, 7, 100, 0)

	events := r.Dump()
	if len(events) != 4 {
		t.Fatalf("Dump returned %d events, want 4", len(events))
	}
	wantKinds := []EventKind{EvSpanBegin, EvBatchApply, EvReduce, EvSpanEnd}
	var last int64 = -1
	for i, e := range events {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
		if e.ID != 7 {
			t.Errorf("event %d id = %d, want 7", i, e.ID)
		}
		if e.TimeNs < last {
			t.Errorf("event %d out of time order: %d after %d", i, e.TimeNs, last)
		}
		last = e.TimeNs
	}
	if events[1].Arg1 != 64 || events[2].Arg1 != 12345 {
		t.Errorf("args not preserved: %+v", events[1:3])
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(8) // 8 slots per shard
	total := 8 * r.Shards() * 4
	for i := 0; i < total; i++ {
		r.Record(EvBatchApply, 0, uint64(i), 0)
	}
	events := r.Dump()
	if len(events) == 0 {
		t.Fatal("Dump returned nothing after wrap")
	}
	if max := 8 * r.Shards(); len(events) > max {
		t.Fatalf("Dump returned %d events, capacity is %d", len(events), max)
	}
	// Every surviving record must be from the newest writes through its
	// shard: seq within the last 8 of that shard's cursor.
	for _, e := range events {
		if e.Arg1 < uint64(total)-uint64(8*r.Shards()*2) {
			t.Errorf("stale record survived wrap: %+v", e)
		}
	}
}

func TestTraceBinaryRoundTrip(t *testing.T) {
	r := NewRing(64)
	r.Record(EvSpanBegin, 1, 11, 22)
	r.Record(EvReduce, 2, 33, 44)
	r.Record(EvSpanEnd, 1, 11, 55)

	var buf bytes.Buffer
	wrote, err := r.DumpTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 3 {
		t.Fatalf("DumpTo wrote %d events, want 3", len(wrote))
	}
	if want := 16 + 3*traceRecBytes; buf.Len() != want {
		t.Errorf("trace stream is %d bytes, want %d", buf.Len(), want)
	}

	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(wrote) {
		t.Fatalf("ReadTrace returned %d events, want %d", len(back), len(wrote))
	}
	for i := range back {
		if back[i] != wrote[i] {
			t.Errorf("event %d round-trip mismatch:\n wrote %+v\n read  %+v", i, wrote[i], back[i])
		}
	}
}

func TestReadTraceRejectsBadMagic(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("NOTATRACEFILE...."))); err == nil {
		t.Error("ReadTrace accepted bad magic")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("ReadTrace accepted empty stream")
	}
}

// TestRingConcurrent hammers the ring from many goroutines while dumping,
// for -race and for the torn-read guarantee: every returned event must
// be internally consistent (args echo the kind's contract below).
func TestRingConcurrent(t *testing.T) {
	r := NewRing(256)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// arg2 = arg1 + 1: the invariant a torn read would break.
				v := uint64(w*perWorker + i)
				r.Record(EvBatchApply, uint16(w), v, v+1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Dump() {
				if e.Arg2 != e.Arg1+1 {
					t.Errorf("torn record surfaced: %+v", e)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done

	for _, e := range r.Dump() {
		if e.Arg2 != e.Arg1+1 {
			t.Errorf("torn record in final dump: %+v", e)
		}
	}
}
