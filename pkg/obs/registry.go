package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Registry holds named metrics. Creation is GetOrCreate — asking for an
// existing name with the same kind returns the same handle, so callers
// anywhere in a process converge on one structure per name (the coupd
// registry's create-on-first-touch semantics, applied to telemetry).
// Asking for an existing name with a different kind panics: that is a
// naming bug in the program, not a runtime condition.
//
// The registry itself is never on a hot path: callers hold the returned
// handles and update through them; the registry is consulted only at
// creation and at exposition time.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

// Default is the process-wide registry, for packages that want shared
// metrics without threading a *Registry through their constructors.
var Default = NewRegistry()

// metric is one registered family: anything that can describe itself and
// write its exposition block.
type metric interface {
	expoName() string
	expoHelp() string
	// writeExpo appends the family's full text-format block (HELP, TYPE,
	// samples) to b and returns it; buf is reusable number scratch.
	writeExpo(b []byte) []byte
}

// validName reports whether name is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register installs m under name, or returns the existing metric. The
// caller type-asserts the result and panics on kind mismatch.
func (r *Registry) register(name string, mk func() metric) metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want [a-zA-Z_:][a-zA-Z0-9_:]*)", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Counter returns the registered counter name, creating it with help on
// first use (later help values are ignored, like coupd's
// create-on-first-update Bins). It panics if name is invalid or already
// registered as a different kind.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return newCounter(name, help, false) })
	c, ok := m.(*Counter)
	if !ok || c.gauge {
		panic(fmt.Sprintf("obs: metric %q already registered as a different kind", name))
	}
	return c
}

// UpDownCounter is Counter for values that may decrease (queue depths,
// in-flight counts); it is exposed with TYPE gauge, as Prometheus
// requires for non-monotonic series.
func (r *Registry) UpDownCounter(name, help string) *Counter {
	m := r.register(name, func() metric { return newCounter(name, help, true) })
	c, ok := m.(*Counter)
	if !ok || !c.gauge {
		panic(fmt.Sprintf("obs: metric %q already registered as a different kind", name))
	}
	return c
}

// Gauge registers a sampled-on-read gauge: fn is evaluated at exposition
// or Value time, never stored — the natural shape for runtime facts
// (goroutine counts, heap sizes) that already live somewhere else.
func (r *Registry) Gauge(name, help string, fn func() int64) *Gauge {
	m := r.register(name, func() metric { return &Gauge{name: name, help: help, fn: fn} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as a different kind", name))
	}
	return g
}

// MinMax returns the registered min/max tracker name, creating it on
// first use. It is exposed as three gauge families: name_count, name_max,
// name_min.
func (r *Registry) MinMax(name, help string) *MinMax {
	m := r.register(name, func() metric { return newMinMax(name, help) })
	mm, ok := m.(*MinMax)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as a different kind", name))
	}
	return mm
}

// Histogram returns the registered log2-bucket histogram name, creating
// it with bins buckets on first use (later bins values are ignored).
func (r *Registry) Histogram(name, help string, bins int) *Histogram {
	m := r.register(name, func() metric { return newHistogram(name, help, bins) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as a different kind", name))
	}
	return h
}

// Names returns every registered family name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// sorted returns the registered metrics in sorted-name order — the one
// iteration order every reader (WriteMetrics, tests) observes, so
// exposition output is byte-identical for identical registry state.
func (r *Registry) sorted() []metric {
	r.mu.RLock()
	out := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].expoName() < out[j].expoName() })
	return out
}
