package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ops"
)

// The trace ring is the capture half of ROADMAP's trace-format
// direction: a per-P array of fixed-size binary event records that a hot
// path can append to with one uncontended atomic add and four plain
// stores — the update-only discipline again, applied to event streams
// instead of counters. Readers reconstruct a globally ordered event list
// on demand; a torn or overwritten slot is detected and dropped, never
// misread.

// EventKind tags one trace record.
type EventKind uint8

const (
	// EvSpanBegin / EvSpanEnd bracket a logical operation (a request, a
	// snapshot). Arg1 carries a caller-chosen span tag.
	EvSpanBegin EventKind = 1
	EvSpanEnd   EventKind = 2
	// EvBatchApply marks one applied update batch; Arg1 is the number of
	// updates applied.
	EvBatchApply EventKind = 3
	// EvReduce marks one reduce-on-read; Arg1 is the reduce latency in
	// nanoseconds.
	EvReduce EventKind = 4
)

func (k EventKind) String() string {
	switch k {
	case EvSpanBegin:
		return "span_begin"
	case EvSpanEnd:
		return "span_end"
	case EvBatchApply:
		return "batch_apply"
	case EvReduce:
		return "reduce"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record layout inside a shard's buf: recWords uint64 words per slot.
// meta is written twice — zeroed before the payload stores, installed
// (nonzero) after them — so a reader that sees the same nonzero meta on
// both sides of its payload reads knows the slot was not being rewritten
// underneath it (a seqlock with the sequence number stored per record).
const (
	recWords = 4
	metaOff  = 0
	timeOff  = 1
	arg1Off  = 2
	arg2Off  = 3
)

// meta packs seq+1 (40 bits), kind (8 bits), and id (16 bits). seq+1
// keeps meta nonzero for every valid record, reserving 0 for "slot being
// written or never written".
func packMeta(seq uint64, kind EventKind, id uint16) uint64 {
	return (seq+1)<<24 | uint64(kind)<<16 | uint64(id)
}

func unpackMeta(m uint64) (seq uint64, kind EventKind, id uint16) {
	return m>>24 - 1, EventKind(m >> 16 & 0xff), uint16(m)
}

// ringShard is one P's private record buffer: a write cursor and the
// slot words. Exactly one cache line of header state per shard so
// neighbouring cursors never false-share.
type ringShard struct {
	pos atomic.Uint64
	buf []uint64
	_   [ops.LineBytes - 32]byte
}

// ringToken is the pool token biasing a goroutine to one shard,
// mirroring pkg/commute's unexported token idiom.
type ringToken struct{ idx uint32 }

var ringTokSeq atomic.Uint32

var ringTokenPool = sync.Pool{New: func() any {
	return &ringToken{idx: ringTokSeq.Add(1)}
}}

// Ring is a per-P trace ring: each shard holds the newest slotsPerShard
// records written through it, oldest overwritten first. Record never
// blocks, never allocates, and touches only the caller's shard.
type Ring struct {
	mask  uint32 // shard index mask
	smask uint64 // slot index mask within a shard
	slots uint64 // slots per shard (power of two)
	start time.Time
	shard []ringShard
}

// NewRing builds a trace ring with at least slotsPerShard records per
// shard (rounded up to a power of two), one shard per P.
func NewRing(slotsPerShard int) *Ring {
	if slotsPerShard < 1 {
		panic("obs: ring needs >= 1 slot per shard")
	}
	slots := uint64(1)
	for slots < uint64(slotsPerShard) {
		slots <<= 1
	}
	nshards := 1
	for nshards < runtime.GOMAXPROCS(0) {
		nshards <<= 1
	}
	r := &Ring{
		mask:  uint32(nshards - 1),
		smask: slots - 1,
		slots: slots,
		start: time.Now(),
		shard: make([]ringShard, nshards),
	}
	for i := range r.shard {
		r.shard[i].buf = make([]uint64, slots*recWords)
	}
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return len(r.shard) }

// SlotsPerShard returns the per-shard record capacity.
func (r *Ring) SlotsPerShard() int { return int(r.slots) }

// Record appends one event to the calling goroutine's shard: an
// uncontended cursor bump, then the seqlock store sequence. The
// timestamp is nanoseconds since the ring was built, so records from
// different shards order on one clock.
//
//coup:hotpath
func (r *Ring) Record(kind EventKind, id uint16, arg1, arg2 uint64) {
	t := ringTokenPool.Get().(*ringToken)
	s := &r.shard[t.idx&r.mask]
	seq := s.pos.Add(1) - 1
	base := (seq & r.smask) * recWords
	buf := s.buf
	now := uint64(time.Since(r.start).Nanoseconds())
	atomic.StoreUint64(&buf[base+metaOff], 0)
	atomic.StoreUint64(&buf[base+timeOff], now)
	atomic.StoreUint64(&buf[base+arg1Off], arg1)
	atomic.StoreUint64(&buf[base+arg2Off], arg2)
	atomic.StoreUint64(&buf[base+metaOff], packMeta(seq, kind, id))
	ringTokenPool.Put(t)
}

// Event is one decoded trace record.
type Event struct {
	TimeNs int64     // nanoseconds since the ring was built
	Seq    uint64    // per-shard sequence number
	Shard  int       // shard the record was written through
	Kind   EventKind // record type
	ID     uint16    // caller-chosen stream id (e.g. span family)
	Arg1   uint64
	Arg2   uint64
}

// Dump reduces the ring into a time-ordered event list. Records being
// rewritten during the read, or overwritten since their cursor position,
// are dropped; everything returned was read whole. Dump allocates — it
// is the read side, not the hot path.
func (r *Ring) Dump() []Event {
	var out []Event
	for si := range r.shard {
		s := &r.shard[si]
		n := s.pos.Load()
		lo := uint64(0)
		if n > r.slots {
			lo = n - r.slots
		}
		for seq := lo; seq < n; seq++ {
			base := (seq & r.smask) * recWords
			m1 := atomic.LoadUint64(&s.buf[base+metaOff])
			if m1 == 0 {
				continue
			}
			tm := atomic.LoadUint64(&s.buf[base+timeOff])
			a1 := atomic.LoadUint64(&s.buf[base+arg1Off])
			a2 := atomic.LoadUint64(&s.buf[base+arg2Off])
			m2 := atomic.LoadUint64(&s.buf[base+metaOff])
			if m1 != m2 {
				continue
			}
			mseq, kind, id := unpackMeta(m1)
			if mseq != seq&seqMask {
				continue
			}
			out = append(out, Event{
				TimeNs: int64(tm),
				Seq:    seq,
				Shard:  si,
				Kind:   kind,
				ID:     id,
				Arg1:   a1,
				Arg2:   a2,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TimeNs != b.TimeNs {
			return a.TimeNs < b.TimeNs
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	return out
}

// seqMask is the span of the meta sequence field: 40 bits.
const seqMask = 1<<40 - 1

// Binary trace format, seeding ROADMAP's trace-capture direction:
//
//	offset  size  field
//	0       8     magic "COUPTRC\x01" (final byte is the version)
//	8       8     record count, uint64 LE
//	16      40*n  records
//
// Each record is five uint64 LE words: time (ns since ring start), meta
// (seq+1 <<24 | kind<<16 | id, as in the ring), shard, arg1, arg2.
var traceMagic = [8]byte{'C', 'O', 'U', 'P', 'T', 'R', 'C', 0x01}

const traceRecBytes = 40

// WriteTrace writes events in the binary trace format.
func WriteTrace(w io.Writer, events []Event) error {
	var hdr [16]byte
	copy(hdr[:8], traceMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(events)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rec [traceRecBytes]byte
	for i := range events {
		e := &events[i]
		binary.LittleEndian.PutUint64(rec[0:], uint64(e.TimeNs))
		binary.LittleEndian.PutUint64(rec[8:], packMeta(e.Seq&seqMask, e.Kind, e.ID))
		binary.LittleEndian.PutUint64(rec[16:], uint64(e.Shard))
		binary.LittleEndian.PutUint64(rec[24:], e.Arg1)
		binary.LittleEndian.PutUint64(rec[32:], e.Arg2)
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}

// DumpTo dumps the ring and writes the result in the binary trace
// format, returning the events written.
func (r *Ring) DumpTo(w io.Writer) ([]Event, error) {
	events := r.Dump()
	if err := WriteTrace(w, events); err != nil {
		return nil, err
	}
	return events, nil
}

// ReadTrace parses a binary trace stream written by WriteTrace.
func ReadTrace(rd io.Reader) ([]Event, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, fmt.Errorf("obs: trace header: %w", err)
	}
	if [8]byte(hdr[:8]) != traceMagic {
		return nil, fmt.Errorf("obs: bad trace magic %x", hdr[:8])
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	events := make([]Event, 0, n)
	var rec [traceRecBytes]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(rd, rec[:]); err != nil {
			return nil, fmt.Errorf("obs: trace record %d: %w", i, err)
		}
		seq, kind, id := unpackMeta(binary.LittleEndian.Uint64(rec[8:]))
		events = append(events, Event{
			TimeNs: int64(binary.LittleEndian.Uint64(rec[0:])),
			Seq:    seq,
			Shard:  int(binary.LittleEndian.Uint64(rec[16:])),
			Kind:   kind,
			ID:     id,
			Arg1:   binary.LittleEndian.Uint64(rec[24:]),
			Arg2:   binary.LittleEndian.Uint64(rec[32:]),
		})
	}
	return events, nil
}
