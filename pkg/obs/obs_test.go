package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// fill populates r with one of every metric kind in a fixed state.
func fill(r *Registry) {
	c := r.Counter("test_ops_total", "Operations applied.")
	c.Add(41)
	c.Inc()
	d := r.UpDownCounter("test_in_flight", "Requests in flight.")
	d.Add(3)
	d.Dec()
	r.Gauge("test_structures", "Live structures.", func() int64 { return 7 })
	m := r.MinMax("test_extremes", "Observed extremes.")
	m.Observe(-5)
	m.Observe(19)
	h := r.Histogram("test_latency_ns", "Latency in nanoseconds.", 8)
	for _, v := range []int64{1, 2, 3, 900, 70} {
		h.Observe(v)
	}
}

func TestExpositionDeterministic(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	fill(a)
	fill(b)

	var pages [3]bytes.Buffer
	if err := a.WriteMetrics(&pages[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteMetrics(&pages[1]); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteMetrics(&pages[2]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pages[0].Bytes(), pages[1].Bytes()) {
		t.Errorf("same registry scraped twice differs:\n--- first\n%s--- second\n%s", pages[0].String(), pages[1].String())
	}
	if !bytes.Equal(pages[0].Bytes(), pages[2].Bytes()) {
		t.Errorf("identically-filled registries differ:\n--- a\n%s--- b\n%s", pages[0].String(), pages[2].String())
	}
}

func TestExpositionSortedFamilies(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of order.
	r.Counter("zz_last_total", "Last.")
	r.Counter("aa_first_total", "First.")
	r.Histogram("mm_middle", "Middle.", 4)

	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var families []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			families = append(families, strings.Fields(rest)[0])
		}
	}
	want := []string{"aa_first_total", "mm_middle", "zz_last_total"}
	if len(families) != len(want) {
		t.Fatalf("got families %v, want %v", families, want)
	}
	for i := range want {
		if families[i] != want[i] {
			t.Fatalf("family order %v, want %v", families, want)
		}
	}
}

func TestExpositionContents(t *testing.T) {
	r := NewRegistry()
	fill(r)
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"# TYPE test_ops_total counter\ntest_ops_total 42\n",
		"# TYPE test_in_flight gauge\ntest_in_flight 2\n",
		"# TYPE test_structures gauge\ntest_structures 7\n",
		"test_extremes_count 2\n",
		"test_extremes_max 19\n",
		"test_extremes_min -5\n",
		"# TYPE test_latency_ns histogram\n",
		`test_latency_ns_bucket{le="1"} 1` + "\n",
		`test_latency_ns_bucket{le="3"} 3` + "\n",
		`test_latency_ns_bucket{le="+Inf"} 5` + "\n",
		"test_latency_ns_sum 976\n",
		"test_latency_ns_count 5\n",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition page missing %q\npage:\n%s", want, page)
		}
	}
}

func TestRegistryGetOrCreateAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "X.")
	c2 := r.Counter("x_total", "ignored on reuse")
	if c1 != c2 {
		t.Error("Counter with same name returned distinct handles")
	}
	h1 := r.Histogram("h", "H.", 8)
	h2 := r.Histogram("h", "H.", 32)
	if h1 != h2 {
		t.Error("Histogram with same name returned distinct handles")
	}
	if h2.Bins() != 8 {
		t.Errorf("reused histogram bins = %d, want creation-time 8", h2.Bins())
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("kind mismatch counter->histogram", func() { r.Histogram("x_total", "", 4) })
	mustPanic("kind mismatch counter->updown", func() { r.UpDownCounter("x_total", "") })
	mustPanic("kind mismatch histogram->gauge", func() { r.Gauge("h", "", func() int64 { return 0 }) })
	mustPanic("invalid name", func() { r.Counter("9starts_with_digit", "") })
	mustPanic("invalid rune", func() { r.Counter("has space", "") })
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(8)
	cases := []struct {
		v   int64
		bin int
	}{
		{-3, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{255, 7}, {256, 7}, {1 << 40, 7}, // clamp to last bucket
	}
	for _, c := range cases {
		if got := h.bucketOf(c.v); got != c.bin {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bin)
		}
	}
}

func TestHistogramSnapshotAndQuantile(t *testing.T) {
	h := NewHistogram(20)
	// 1000 observations of value 100, 10 of value 100000.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000)
	}
	var s HistSnapshot
	h.Snapshot(&s)
	if s.Count != 1010 {
		t.Fatalf("Count = %d, want 1010", s.Count)
	}
	if want := int64(1000*100 + 10*100000); s.Sum != want {
		t.Fatalf("Sum = %d, want %d", s.Sum, want)
	}
	if s.Min != 100 || s.Max != 100000 {
		t.Fatalf("Min/Max = %d/%d, want 100/100000", s.Min, s.Max)
	}
	if p0 := s.Quantile(0); p0 != 100 {
		t.Errorf("p0 = %v, want exact min 100", p0)
	}
	if p100 := s.Quantile(1); p100 != 100000 {
		t.Errorf("p100 = %v, want exact max 100000", p100)
	}
	p50 := s.Quantile(0.5)
	if p50 < 100 || p50 >= 128 {
		t.Errorf("p50 = %v, want within bucket [100, 128)", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 100 || p99 > 100000 {
		t.Errorf("p99 = %v outside observed range", p99)
	}
	// p > 1 - 10/1010 must land in the tail bucket, clamped to Max.
	p999 := s.Quantile(0.9999)
	if p999 < 65536 || p999 > 100000 {
		t.Errorf("p99.99 = %v, want in tail [65536, 100000]", p999)
	}

	// Snapshot reuses the buckets slice.
	buckets := s.Buckets
	h.Snapshot(&s)
	if &s.Buckets[0] != &buckets[0] {
		t.Error("Snapshot reallocated Buckets despite sufficient capacity")
	}
}

func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("allocs_c_total", "")
	h := r.Histogram("allocs_h", "", 16)
	m := r.MinMax("allocs_m", "")
	ring := NewRing(64)

	if n := testing.AllocsPerRun(100, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op on the warm path", n)
	}
	if n := testing.AllocsPerRun(100, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op on the warm path", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(1234) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op on the warm path", n)
	}
	if n := testing.AllocsPerRun(100, func() { m.Observe(55) }); n != 0 {
		t.Errorf("MinMax.Observe allocates %v/op on the warm path", n)
	}
	if n := testing.AllocsPerRun(100, func() { ring.Record(EvBatchApply, 1, 2, 3) }); n != 0 {
		t.Errorf("Ring.Record allocates %v/op on the warm path", n)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(r) // idempotent

	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, fam := range []string{"go_goroutines", "go_gc_cycles_total", "go_heap_alloc_bytes"} {
		if !strings.Contains(page, "# TYPE "+fam+" gauge\n") {
			t.Errorf("missing runtime gauge %s\npage:\n%s", fam, page)
		}
	}
	if g := r.Gauge("go_goroutines", "", nil); g.Value() < 1 {
		t.Errorf("go_goroutines = %d, want >= 1", g.Value())
	}
	if g := r.Gauge("go_heap_alloc_bytes", "", nil); g.Value() <= 0 {
		t.Errorf("go_heap_alloc_bytes = %d, want > 0", g.Value())
	}
}

// TestConcurrentWritesAndScrapes exercises every metric kind plus the
// exposition path under -race.
func TestConcurrentWritesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "")
	h := r.Histogram("race_hist", "", 16)
	m := r.MinMax("race_mm", "")
	const workers, perWorker = 8, 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i))
				m.Observe(int64(w*perWorker + i))
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := r.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	var s HistSnapshot
	h.Snapshot(&s)
	if s.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	if min, ok := m.Min(); !ok || min != 0 {
		t.Errorf("minmax min = %d (ok=%v), want 0", min, ok)
	}
}
