package obs

import (
	"io"
	"testing"
)

func BenchmarkObsCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_hist", "", 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkRingRecord(b *testing.B) {
	r := NewRing(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(EvBatchApply, 1, uint64(i), 0)
	}
}

func BenchmarkMetricsExposition(b *testing.B) {
	r := NewRegistry()
	fill(r)
	RegisterRuntimeMetrics(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WriteMetrics(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// workUnit is a stand-in for one unit of real request work: a cheap
// mixing step the compiler cannot delete, so the instrumented variant
// measures observability overhead against a realistic (non-empty)
// baseline.
//
//go:noinline
func workUnit(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

var benchSink uint64

// BenchmarkInstrumentationOverhead quantifies the tentpole's claim: the
// bare/instrumented delta is the full per-op cost of a counter add, a
// histogram observe, and a trace record.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	b.Run("bare", func(b *testing.B) {
		x := uint64(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			x = workUnit(x)
		}
		benchSink = x
	})
	b.Run("instrumented", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("bench_ops_total", "")
		h := r.Histogram("bench_ns", "", 32)
		ring := NewRing(1024)
		x := uint64(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x = workUnit(x)
			c.Inc()
			h.Observe(int64(x & 0xffff))
			ring.Record(EvBatchApply, 1, x, 0)
		}
		benchSink = x
	})
}
