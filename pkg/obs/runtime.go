package obs

import (
	"runtime"
	rtmetrics "runtime/metrics"
)

// readRuntimeUint samples one runtime/metrics value. A fresh sample
// slice per call keeps concurrent scrapes race-free; exposition is a
// read path, so the small allocation is fine.
func readRuntimeUint(name string) int64 {
	s := []rtmetrics.Sample{{Name: name}}
	rtmetrics.Read(s)
	if s[0].Value.Kind() != rtmetrics.KindUint64 {
		return 0
	}
	return int64(s[0].Value.Uint64())
}

// RegisterRuntimeMetrics installs sampled gauges for the runtime facts a
// scrape of a long-running process wants: goroutine count, completed GC
// cycles, and live heap bytes. The GC and heap figures come from
// runtime/metrics, which reads cheap runtime-internal counters rather
// than the stop-the-world ReadMemStats path, so scraping stays
// non-disruptive. Safe to call more than once per registry: the gauges
// are GetOrCreate like every other metric.
func RegisterRuntimeMetrics(r *Registry) {
	r.Gauge("go_goroutines", "Number of live goroutines.",
		func() int64 { return int64(runtime.NumGoroutine()) })
	r.Gauge("go_gc_cycles_total", "Completed GC cycles.",
		func() int64 { return readRuntimeUint("/gc/cycles/total:gc-cycles") })
	r.Gauge("go_heap_alloc_bytes", "Bytes of live heap objects.",
		func() int64 { return readRuntimeUint("/memory/classes/heap/objects:bytes") })
}
