// Command coupvet runs the repository's own analyzer suite — the
// invariants no off-the-shelf linter knows about:
//
//	detrange      golden-table packages must not leak map iteration order
//	padalign      shard-slot structs must fill exactly one cache line
//	hotalloc      //coup:hotpath functions must avoid allocation-prone
//	              constructs outside error/cold paths
//	poolhygiene   sync.Pool.Put of slice/map-bearing values needs a reset
//
// Usage:
//
//	go tool coupvet ./...
//	go tool coupvet -escapes ./internal/sim ./pkg/commute ./pkg/coupd
//
// Diagnostics print as file:line:col: message [analyzer], one per line;
// the exit status is 1 if anything was reported, so CI can gate on it
// directly. -escapes additionally rebuilds the packages that carry
// //coup:hotpath annotations with -gcflags=-m and cross-checks the
// annotations against the compiler's real escape analysis (build-cache
// replay makes repeat runs cheap). The markers themselves are documented
// in repro/internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/detrange"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/load"
	"repro/internal/analysis/padalign"
	"repro/internal/analysis/poolhygiene"
)

var analyzers = []*analysis.Analyzer{
	detrange.Analyzer,
	padalign.Analyzer,
	hotalloc.Analyzer,
	poolhygiene.Analyzer,
}

func main() {
	escapes := flag.Bool("escapes", false,
		"cross-check //coup:hotpath annotations against go build -gcflags=-m")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: coupvet [-escapes] [packages]\n\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coupvet:", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			ds, err := analysis.RunPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Sizes)
			if err != nil {
				fmt.Fprintf(os.Stderr, "coupvet: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
			diags = append(diags, ds...)
		}
	}

	if *escapes {
		ds, checked, err := hotalloc.CrossCheck(".", pkgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coupvet: -escapes:", err)
			os.Exit(2)
		}
		diags = append(diags, ds...)
		fmt.Fprintf(os.Stderr, "coupvet: -escapes verified %d //coup:hotpath function(s)\n", len(checked))
	}

	analysis.Sort(diags)
	for _, d := range diags {
		fmt.Printf("%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
