// Command coupbench regenerates the paper's tables and figures on the
// simulated system. Each experiment id corresponds to one figure/table in
// the evaluation (Sec 5); see DESIGN.md's per-experiment index.
//
// Usage:
//
//	coupbench -exp fig10              # one experiment at full scale
//	coupbench -exp all -scale 0.2     # everything, scaled down 5x
//	coupbench -exp all -quick         # everything at benchmark scale (exp.BenchParams)
//	coupbench -exp all -parallel 8    # fan independent simulations out over 8 workers
//	coupbench -list                   # enumerate experiment ids and descriptions
//	coupbench -exp fig2 -csv results  # also write CSV files
//
// Each experiment enumerates its full data-point grid and evaluates it
// through coup.Sweep; -parallel only bounds the worker pool, so tables are
// byte-identical at any setting. The one exception is fig8, which drives
// the model checker serially and reports measured wall-clock per cell —
// its time column varies between any two runs (states and verdicts don't).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (or 'all')")
		quick    = flag.Bool("quick", false, "start from benchmark-scale parameters (exp.BenchParams: scale 0.05, 32-core cap) instead of the full run; explicit -scale/-maxcores still win")
		scale    = flag.Float64("scale", 0, "input scale factor (1.0 = full; 0 = default for the chosen mode)")
		reps     = flag.Int("reps", 1, "seeded repetitions per data point")
		cores    = flag.Int("maxcores", 0, "cap on simulated core counts (0 = default for the chosen mode)")
		parallel = flag.Int("parallel", 0, "concurrent simulations per experiment (0 = GOMAXPROCS); never changes results")
		csvDir   = flag.String("csv", "", "directory to write CSV outputs into")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "coupbench: -parallel must be >= 0")
		os.Exit(2)
	}

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, line := range exp.Listing() {
			fmt.Printf("  %s\n", line)
		}
		if !*list {
			os.Exit(2)
		}
		return
	}

	p := exp.DefaultParams()
	if *quick {
		p = exp.BenchParams()
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *cores > 0 {
		p.MaxCores = *cores
	}
	p.Reps = *reps
	p.Parallel = *parallel

	var toRun []exp.Experiment
	if strings.EqualFold(*expID, "all") {
		toRun = exp.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, ok := exp.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "coupbench: unknown experiment %q; have:\n  %s\n",
					id, strings.Join(exp.Listing(), "\n  "))
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	for _, e := range toRun {
		start := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Desc)
		tables := e.Run(p)
		for i, t := range tables {
			fmt.Println(t.String())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "coupbench: %v\n", err)
					os.Exit(1)
				}
				name := fmt.Sprintf("%s_%d.csv", e.ID, i)
				path := filepath.Join(*csvDir, name)
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "coupbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
