// Command coupbench regenerates the paper's tables and figures on the
// simulated system. Each experiment id corresponds to one figure/table in
// the evaluation (Sec 5); see DESIGN.md's per-experiment index.
//
// Usage:
//
//	coupbench -exp fig10              # one experiment at full scale
//	coupbench -exp all -scale 0.2     # everything, scaled down 5x
//	coupbench -exp all -quick         # everything at benchmark scale (exp.BenchParams)
//	coupbench -exp all -parallel 8    # fan independent simulations out over 8 workers
//	coupbench -exp all -progress      # live sweep progress on stderr every 2s
//	coupbench -list                   # enumerate experiment ids and descriptions
//	coupbench -exp fig2 -csv results  # also write CSV files
//
// Each experiment enumerates its full data-point grid and evaluates it
// through coup.Sweep; -parallel only bounds the worker pool, so tables are
// byte-identical at any setting. The one exception is fig8, which drives
// the model checker serially and reports measured wall-clock per cell —
// its time column varies between any two runs (states and verdicts don't).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/pkg/obs"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (or 'all')")
		quick    = flag.Bool("quick", false, "start from benchmark-scale parameters (exp.BenchParams: scale 0.05, 32-core cap) instead of the full run; explicit -scale/-maxcores still win")
		scale    = flag.Float64("scale", 0, "input scale factor (1.0 = full; 0 = default for the chosen mode)")
		reps     = flag.Int("reps", 1, "seeded repetitions per data point")
		cores    = flag.Int("maxcores", 0, "cap on simulated core counts (0 = default for the chosen mode)")
		parallel = flag.Int("parallel", 0, "concurrent simulations per experiment (0 = GOMAXPROCS); never changes results")
		csvDir   = flag.String("csv", "", "directory to write CSV outputs into")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		progress = flag.Bool("progress", false, "report live sweep progress (specs done, arena warm-hit rate, worker busy time) on stderr every 2s")
	)
	flag.Parse()
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "coupbench: -parallel must be >= 0")
		os.Exit(2)
	}

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, line := range exp.Listing() {
			fmt.Printf("  %s\n", line)
		}
		if !*list {
			os.Exit(2)
		}
		return
	}

	p := exp.DefaultParams()
	if *quick {
		p = exp.BenchParams()
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *cores > 0 {
		p.MaxCores = *cores
	}
	p.Reps = *reps
	p.Parallel = *parallel
	if *progress {
		p.Progress = obs.NewRegistry()
		stopProgress := startProgress(p.Progress)
		defer stopProgress()
	}

	var toRun []exp.Experiment
	if strings.EqualFold(*expID, "all") {
		toRun = exp.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, ok := exp.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "coupbench: unknown experiment %q; have:\n  %s\n",
					id, strings.Join(exp.Listing(), "\n  "))
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	for _, e := range toRun {
		start := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Desc)
		tables := e.Run(p)
		for i, t := range tables {
			fmt.Println(t.String())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "coupbench: %v\n", err)
					os.Exit(1)
				}
				name := fmt.Sprintf("%s_%d.csv", e.ID, i)
				path := filepath.Join(*csvDir, name)
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "coupbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// startProgress launches the stderr progress reporter over the sweep
// metrics registry and returns a stop func that prints a final summary.
// Reading the counters is a reduce-on-read over the sweep workers'
// private shards, so polling never perturbs the runs it reports on.
func startProgress(reg *obs.Registry) (stop func()) {
	specs := reg.Counter("coup_sweep_specs_total", "")
	busy := reg.Counter("coup_sweep_busy_ns_total", "")
	warm := reg.Counter("coup_sweep_arena_warm_total", "")
	cold := reg.Counter("coup_sweep_arena_cold_total", "")
	line := func(tag string) {
		w, c := warm.Value(), cold.Value()
		rate := 0.0
		if w+c > 0 {
			rate = float64(w) / float64(w+c) * 100
		}
		fmt.Fprintf(os.Stderr, "coupbench %s: %d specs done, arena warm-hit %.0f%% (%d/%d), workers busy %v\n",
			tag, specs.Value(), rate, w, w+c,
			(time.Duration(busy.Value()) * time.Nanosecond).Round(time.Millisecond))
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				line("progress")
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		line("total")
	}
}
