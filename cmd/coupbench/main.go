// Command coupbench regenerates the paper's tables and figures on the
// simulated system. Each experiment id corresponds to one figure/table in
// the evaluation (Sec 5); see DESIGN.md's per-experiment index.
//
// Usage:
//
//	coupbench -exp fig10              # one experiment at full scale
//	coupbench -exp all -scale 0.2     # everything, scaled down 5x
//	coupbench -exp all -quick         # everything at benchmark scale (exp.BenchParams)
//	coupbench -exp all -parallel 8    # fan independent simulations out over 8 workers
//	coupbench -exp all -progress      # live sweep progress on stderr every 2s
//	coupbench -list                   # enumerate experiment ids and descriptions
//	coupbench -exp fig2 -csv results  # also write CSV files
//
// Each experiment enumerates its full data-point grid and evaluates it
// through coup.Sweep; -parallel only bounds the worker pool, so tables are
// byte-identical at any setting. The one exception is fig8, which drives
// the model checker serially and reports measured wall-clock per cell —
// its time column varies between any two runs (states and verdicts don't).
//
// Sharded sweeps split one run across processes (or CI jobs):
//
//	coupbench -exp all -shard 1/4 -store res/   # run shard 1 of 4, spill to res/
//	coupbench -exp all -merge res/              # verify coverage, emit tables
//	coupbench -exp all -fanout 4 -store res/    # local coordinator: 4 subprocesses + merge
//
// A shard process runs only its round-robin slice of every grid,
// journalling each completed spec to a per-experiment result store
// (fsync'd JSON, so a killed shard resumes where it left off instead of
// recomputing). -merge loads every shard store, verifies each spec is
// present exactly once (missing or duplicated specs are listed by key),
// and renders tables byte-identical to a single-process run. Stores are
// guarded by a fingerprint of (scale, reps, maxcores), so shards and
// merges across different parameterizations never mix. Experiments with
// wall-clock columns (fig8, figsw, figsvc) cannot shard and are skipped
// in these modes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/stats"
	"repro/pkg/coup"
	"repro/pkg/obs"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (or 'all')")
		quick    = flag.Bool("quick", false, "start from benchmark-scale parameters (exp.BenchParams: scale 0.05, 32-core cap) instead of the full run; explicit -scale/-maxcores still win")
		scale    = flag.Float64("scale", 0, "input scale factor (1.0 = full; 0 = default for the chosen mode)")
		reps     = flag.Int("reps", 1, "seeded repetitions per data point")
		cores    = flag.Int("maxcores", 0, "cap on simulated core counts (0 = default for the chosen mode)")
		parallel = flag.Int("parallel", 0, "concurrent simulations per experiment (0 = GOMAXPROCS); never changes results")
		csvDir   = flag.String("csv", "", "directory to write CSV outputs into")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		progress = flag.Bool("progress", false, "report live sweep progress (specs done, arena warm-hit rate, worker busy time) on stderr every 2s")
		shard    = flag.String("shard", "", "run only shard k of n ('k/n', 1-based) of every grid, spilling results to -store; no tables are printed")
		store    = flag.String("store", "", "result-store directory for -shard/-fanout")
		merge    = flag.String("merge", "", "merge shard result stores from this directory into tables (verifies exactly-once coverage; runs nothing)")
		fanout   = flag.Int("fanout", 0, "coordinator mode: fan n shard subprocesses out over -store, then merge")
	)
	flag.Parse()
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "coupbench: -parallel must be >= 0")
		os.Exit(2)
	}
	modes := 0
	for _, on := range []bool{*shard != "", *merge != "", *fanout > 0} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "coupbench: -shard, -merge and -fanout are mutually exclusive")
		os.Exit(2)
	}
	if (*shard != "" || *fanout > 0) && *store == "" {
		fmt.Fprintln(os.Stderr, "coupbench: -shard/-fanout need -store DIR")
		os.Exit(2)
	}

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, line := range exp.Listing() {
			fmt.Printf("  %s\n", line)
		}
		if !*list {
			os.Exit(2)
		}
		return
	}

	p := exp.DefaultParams()
	if *quick {
		p = exp.BenchParams()
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *cores > 0 {
		p.MaxCores = *cores
	}
	p.Reps = *reps
	p.Parallel = *parallel
	if *progress {
		p.Progress = obs.NewRegistry()
		stopProgress := startProgress(p.Progress)
		defer stopProgress()
	}

	var toRun []exp.Experiment
	if strings.EqualFold(*expID, "all") {
		toRun = exp.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, ok := exp.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "coupbench: unknown experiment %q; have:\n  %s\n",
					id, strings.Join(exp.Listing(), "\n  "))
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	if *fanout > 0 {
		if err := runFanout(*fanout, *store); err != nil {
			fmt.Fprintf(os.Stderr, "coupbench: fanout: %v\n", err)
			os.Exit(1)
		}
		*merge = *store
	}

	// Job plumbing for the sharded modes. One job serves every
	// experiment; SetNamespace scopes it to each experiment's stores.
	var job *coup.SweepJob
	printTables := true
	switch {
	case *shard != "":
		k, n, err := coup.ParseShard(*shard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coupbench: %v\n", err)
			os.Exit(2)
		}
		if err := os.MkdirAll(*store, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "coupbench: %v\n", err)
			os.Exit(1)
		}
		job, err = coup.NewShardJob(*store, p.Fingerprint(), k, n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coupbench: %v\n", err)
			os.Exit(2)
		}
		// A shard's points are unaggregated (foreign shards own the
		// rest), so its tables would be misleading.
		printTables = n == 1
	case *merge != "":
		job = coup.NewMergeJob(*merge, p.Fingerprint())
	}

	failed := false
	for _, e := range toRun {
		if job != nil && !e.Shardable {
			fmt.Fprintf(os.Stderr, "coupbench: skipping %s: wall-clock experiment cannot shard; run it in a single process\n", e.ID)
			continue
		}
		start := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Desc)
		if job != nil {
			if err := job.SetNamespace(e.ID); err != nil {
				fmt.Fprintf(os.Stderr, "coupbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			p.Job = job
		}
		tables, err := runExperiment(e, p)
		if err != nil {
			// Coverage failures list every missing/duplicated spec key; a
			// partial merge must not render partial tables as results.
			fmt.Fprintf(os.Stderr, "coupbench: %s: %v\n", e.ID, err)
			var cov *coup.CoverageError
			if errors.As(err, &cov) {
				failed = true
				continue
			}
			os.Exit(1)
		}
		if printTables {
			for i, t := range tables {
				fmt.Println(t.String())
				if *csvDir != "" {
					if err := os.MkdirAll(*csvDir, 0o755); err != nil {
						fmt.Fprintf(os.Stderr, "coupbench: %v\n", err)
						os.Exit(1)
					}
					name := fmt.Sprintf("%s_%d.csv", e.ID, i)
					path := filepath.Join(*csvDir, name)
					if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
						fmt.Fprintf(os.Stderr, "coupbench: %v\n", err)
						os.Exit(1)
					}
				}
			}
		}
		if job != nil {
			// The job report surfaces panicked specs (done-with-error):
			// they are stored and counted like completions, but their
			// stats are zero and must never pass silently.
			rep := job.Report()
			fmt.Printf("[%s]\n", rep)
			if len(rep.Panicked) > 0 || len(rep.Failed) > 0 {
				failed = true
			}
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if job != nil {
		if err := job.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "coupbench: %v\n", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runExperiment runs one experiment, converting the harness's panics —
// including sweep-job failures like *coup.CoverageError, which grid.run
// rethrows as wrapped error values — back into errors the CLI can
// report per experiment.
func runExperiment(e exp.Experiment, p exp.Params) (tables []*stats.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(error)
			if !ok {
				panic(r)
			}
			err = re
		}
	}()
	return e.Run(p), nil
}

// runFanout is the local coordinator: it re-execs this binary once per
// shard (same flags, plus -shard k/n -store dir), waits for all of them,
// and leaves the stores ready to merge. Shard output goes to stderr;
// stdout stays clean for the merge's tables.
func runFanout(n int, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Strip our coordinator flags; everything else (exp selection, scale,
	// reps, parallel...) passes through so shards enumerate the same grids.
	var base []string
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-fanout" || args[i] == "--fanout" || args[i] == "-store" || args[i] == "--store":
			i++ // skip value
		case strings.HasPrefix(args[i], "-fanout=") || strings.HasPrefix(args[i], "--fanout=") ||
			strings.HasPrefix(args[i], "-store=") || strings.HasPrefix(args[i], "--store="):
		default:
			base = append(base, args[i])
		}
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	cmds := make([]*exec.Cmd, n)
	for k := 0; k < n; k++ {
		args := append(append([]string{}, base...),
			"-shard", fmt.Sprintf("%d/%d", k+1, n), "-store", dir)
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("shard %d/%d: %w", k+1, n, err)
		}
		cmds[k] = cmd
	}
	var firstErr error
	for k, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d/%d: %w", k+1, n, err)
		}
	}
	return firstErr
}

// startProgress launches the stderr progress reporter over the sweep
// metrics registry and returns a stop func that prints a final summary.
// Reading the counters is a reduce-on-read over the sweep workers'
// private shards, so polling never perturbs the runs it reports on.
func startProgress(reg *obs.Registry) (stop func()) {
	specs := reg.Counter("coup_sweep_specs_total", "")
	busy := reg.Counter("coup_sweep_busy_ns_total", "")
	warm := reg.Counter("coup_sweep_arena_warm_total", "")
	cold := reg.Counter("coup_sweep_arena_cold_total", "")
	line := func(tag string) {
		w, c := warm.Value(), cold.Value()
		rate := 0.0
		if w+c > 0 {
			rate = float64(w) / float64(w+c) * 100
		}
		fmt.Fprintf(os.Stderr, "coupbench %s: %d specs done, arena warm-hit %.0f%% (%d/%d), workers busy %v\n",
			tag, specs.Value(), rate, w, w+c,
			(time.Duration(busy.Value()) * time.Nanosecond).Round(time.Millisecond))
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				line("progress")
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		line("total")
	}
}
