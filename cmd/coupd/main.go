// Command coupd runs the commutative-aggregation service: named
// pkg/commute structures served over HTTP/JSON with batched updates,
// reduce-on-read snapshots and backpressure (see pkg/coupd).
//
// Usage:
//
//	coupd                          # listen on :7077
//	coupd -addr 127.0.0.1:9090 -max-inflight 64
//
// On SIGINT/SIGTERM the server drains: new batches get 503, in-flight
// batches land (bounded by -drain-timeout), then the listener closes.
// Load it with cmd/coupload; read it with:
//
//	curl localhost:7077/v1/stats
//	curl localhost:7077/v1/snapshot/<name>
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/coupd"
)

func main() {
	var (
		addr         = flag.String("addr", ":7077", "listen address")
		maxInFlight  = flag.Int("max-inflight", 0, "max concurrently-processed batches before 429 (0 = 4*GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight batches")
	)
	flag.Parse()

	var opts []coupd.Option
	if *maxInFlight > 0 {
		opts = append(opts, coupd.WithMaxInFlight(*maxInFlight))
	}
	srv, err := coupd.New(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coupd: %v\n", err)
		os.Exit(2)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	fmt.Printf("coupd: serving on %s (POST /v1/batch, GET /v1/snapshot[/{name}], GET /v1/stats)\n", *addr)

	select {
	case err := <-errc:
		// Listener died on its own (bad addr, port in use, ...).
		fmt.Fprintf(os.Stderr, "coupd: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("coupd: %v: draining (timeout %v)\n", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "coupd: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "coupd: shutdown: %v\n", err)
		code = 1
	}
	fmt.Println("coupd: drained, bye")
	os.Exit(code)
}
