// Command coupd runs the commutative-aggregation service: named
// pkg/commute structures served over HTTP/JSON with batched updates,
// reduce-on-read snapshots and backpressure (see pkg/coupd).
//
// Usage:
//
//	coupd                          # listen on :7077
//	coupd -addr 127.0.0.1:9090 -max-inflight 64
//
// On SIGINT/SIGTERM the server drains: new batches get 503, in-flight
// batches land (bounded by -drain-timeout), then the listener closes.
// Load it with cmd/coupload; read it with:
//
//	curl localhost:7077/v1/stats
//	curl localhost:7077/v1/snapshot/<name>
//	curl localhost:7077/metrics          # Prometheus text exposition
//
// With -pprof, net/http/pprof profile endpoints are mounted at
// /debug/pprof/ on the same listener (off by default: profiles expose
// process internals, so opt in explicitly).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/coupd"
)

func main() {
	var (
		addr         = flag.String("addr", ":7077", "listen address")
		maxInFlight  = flag.Int("max-inflight", 0, "max concurrently-processed batches before 429 (0 = 4*GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight batches")
		withPprof    = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")

		// Connection timeouts. The zero value (Go's default) means "wait
		// forever", which lets one slowloris client — a connection trickling
		// header bytes — hold a file descriptor indefinitely; every knob
		// defaults to a bound sized generously above honest traffic.
		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "max time to read a request's headers (slowloris bound)")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "max time to read a full request, body included")
		writeTimeout      = flag.Duration("write-timeout", 30*time.Second, "max time to write a response")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "how long an idle keep-alive connection is kept open")

		sessMax = flag.Int("dedup-sessions", coupd.DefaultMaxSessions, "max exactly-once dedup sessions kept (LRU-evicted beyond)")
		sessTTL = flag.Duration("dedup-session-ttl", coupd.DefaultSessionTTL, "idle time before a dedup session is evicted")
	)
	flag.Parse()

	var opts []coupd.Option
	if *maxInFlight > 0 {
		opts = append(opts, coupd.WithMaxInFlight(*maxInFlight))
	}
	opts = append(opts, coupd.WithDedupSessions(*sessMax, *sessTTL))
	srv, err := coupd.New(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coupd: %v\n", err)
		os.Exit(2)
	}
	var handler http.Handler = srv
	if *withPprof {
		// Explicit registrations on a private mux: importing net/http/pprof
		// for its side effect would silently publish profiles on
		// http.DefaultServeMux, which this process never serves.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	fmt.Printf("coupd: serving on %s (POST /v1/batch, GET /v1/snapshot[/{name}], GET /v1/stats, GET /metrics)\n", *addr)
	if *withPprof {
		fmt.Printf("coupd: pprof on %s/debug/pprof/\n", *addr)
	}

	select {
	case err := <-errc:
		// Listener died on its own (bad addr, port in use, ...).
		fmt.Fprintf(os.Stderr, "coupd: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("coupd: %v: draining (timeout %v)\n", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "coupd: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "coupd: shutdown: %v\n", err)
		code = 1
	}
	fmt.Println("coupd: drained, bye")
	os.Exit(code)
}
