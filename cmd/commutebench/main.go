// Command commutebench measures the pkg/commute software Coup runtime on
// the real machine: it sweeps thread counts over the paper's contended
// workload shapes (counter, hist) with Zipf-skewed traffic, comparing the
// sharded structures against shared-atomic and mutex baselines, and
// reports mean ± CI95 over seeded repetitions — the same reporting shape
// the simulator harness (coup.Sweep / coupsim -reps) uses, so the two
// sides of the "figsw" cross-validation read alike.
//
// Usage:
//
//	commutebench                          # both kinds, all impls, 1..8 threads
//	commutebench -kind counter -cells 1   # the Fig 1 maximally-contended counter
//	commutebench -kind hist -bins 512 -zipf 1.2
//	commutebench -threads 1,4,16 -reps 5 -json
//	commutebench -reads 64                # fold a reduce-on-read in every 64 updates
//
// ns/op measures wall-clock per update issued; speedup columns are
// relative to the atomic baseline at the same thread count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/stats"
	"repro/internal/swbench"
)

// point is one JSON-emitted data point: the per-rep mean and CI95, plus
// the configuration that produced it.
type point struct {
	Kind        string  `json:"kind"`
	Impl        string  `json:"impl"`
	Threads     int     `json:"threads"`
	Reps        int     `json:"reps"`
	MeanNsPerOp float64 `json:"mean_ns_per_op"`
	CI95NsPerOp float64 `json:"ci95_ns_per_op"`
	MOpsPerSec  float64 `json:"mops_per_sec"`
}

func main() {
	var (
		kindF    = flag.String("kind", "all", "workload shape: counter, hist, or all")
		implF    = flag.String("impl", "all", "comma-separated impls: commute, atomic, mutex (or all)")
		threadsF = flag.String("threads", "", "comma-separated goroutine counts (default 1,2,4,...,max(8,GOMAXPROCS))")
		ops      = flag.Int("ops", 200_000, "updates per goroutine")
		cells    = flag.Int("cells", 1, "distinct counters (counter kind; 1 = maximally contended)")
		bins     = flag.Int("bins", 512, "histogram buckets (hist kind)")
		zipf     = flag.Float64("zipf", 1.07, "Zipf skew s (> 1; <= 1 selects targets uniformly)")
		reads    = flag.Int("reads", 0, "fold a reduce-on-read into every N updates (0 = update-only)")
		reps     = flag.Int("reps", 3, "seeded repetitions per data point (mean ± CI95)")
		seed     = flag.Uint64("seed", 1, "base seed (rep r runs with seed+r)")
		asJSON   = flag.Bool("json", false, "emit data points as JSON")
	)
	flag.Parse()

	kinds, err := parseKinds(*kindF)
	if err == nil {
		var impls []swbench.Impl
		impls, err = parseImpls(*implF)
		if err == nil {
			var threads []int
			threads, err = parseThreads(*threadsF)
			if err == nil {
				run(kinds, impls, threads, *ops, *cells, *bins, *zipf, *reads, *reps, *seed, *asJSON)
				return
			}
		}
	}
	fmt.Fprintf(os.Stderr, "commutebench: %v\n", err)
	os.Exit(2)
}

func run(kinds []swbench.Kind, impls []swbench.Impl, threads []int,
	ops, cells, bins int, zipf float64, reads, reps int, seed uint64, asJSON bool) {
	var points []point
	for _, kind := range kinds {
		t := &stats.Table{
			Title: fmt.Sprintf("%s: %d ops/thread, cells=%d bins=%d zipf=%.2f reads=%d, GOMAXPROCS=%d",
				kind, ops, cells, bins, zipf, reads, runtime.GOMAXPROCS(0)),
			Headers: []string{"threads"},
		}
		for _, impl := range impls {
			t.Headers = append(t.Headers, string(impl)+" ns/op")
		}
		if hasImpl(impls, swbench.ImplCommute) && hasImpl(impls, swbench.ImplAtomic) {
			t.Headers = append(t.Headers, "commute/atomic")
		}
		var worstCI float64
		for _, th := range threads {
			row := []string{fmt.Sprint(th)}
			means := map[swbench.Impl]float64{}
			for _, impl := range impls {
				c := swbench.Config{
					Kind: kind, Impl: impl, Threads: th, Ops: ops,
					Cells: cells, Bins: bins, ZipfS: zipf, ReadEvery: reads, Seed: seed,
				}
				results, mean, ci, err := swbench.Measure(c, reps)
				if err != nil {
					fmt.Fprintf(os.Stderr, "commutebench: %v\n", err)
					os.Exit(1)
				}
				means[impl] = mean
				if mean > 0 && ci/mean > worstCI {
					worstCI = ci / mean
				}
				row = append(row, stats.F(mean))
				var mops float64
				for _, r := range results {
					mops += r.MOpsPerSec
				}
				points = append(points, point{
					Kind: string(kind), Impl: string(impl), Threads: th, Reps: reps,
					MeanNsPerOp: mean, CI95NsPerOp: ci, MOpsPerSec: mops / float64(len(results)),
				})
			}
			if a, ok := means[swbench.ImplAtomic]; ok {
				if c, ok2 := means[swbench.ImplCommute]; ok2 && c > 0 {
					row = append(row, stats.F(a/c)+"x")
				}
			}
			t.AddRow(row...)
		}
		if reps > 1 {
			t.AddNote("each cell is the mean of %d seeded reps; worst-case ±CI95 is %.1f%% of the mean", reps, worstCI*100)
		}
		if !asJSON {
			fmt.Println(t.String())
		}
	}
	if asJSON {
		blob, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "commutebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", blob)
	}
}

func hasImpl(impls []swbench.Impl, want swbench.Impl) bool {
	for _, i := range impls {
		if i == want {
			return true
		}
	}
	return false
}

func parseKinds(s string) ([]swbench.Kind, error) {
	if strings.EqualFold(s, "all") {
		return swbench.Kinds(), nil
	}
	var out []swbench.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := swbench.ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func parseImpls(s string) ([]swbench.Impl, error) {
	if strings.EqualFold(s, "all") {
		return swbench.Impls(), nil
	}
	var out []swbench.Impl
	for _, part := range strings.Split(s, ",") {
		i, err := swbench.ParseImpl(part)
		if err != nil {
			return nil, err
		}
		out = append(out, i)
	}
	return out, nil
}

func parseThreads(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return swbench.DefaultThreads(0), nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
