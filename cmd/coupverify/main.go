// Command coupverify exhaustively model-checks the detailed message-level
// MESI and MEUSI protocols (the Fig 8 experiment), or a single
// configuration.
//
// Usage:
//
//	coupverify -exp fig8                 # the full verification-cost grid
//	coupverify -proto meusi -cores 3 -ops 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/proto"
)

func main() {
	var (
		expID   = flag.String("exp", "", "run a registered experiment (fig8)")
		protoN  = flag.String("proto", "meusi", "mesi|meusi")
		cores   = flag.Int("cores", 2, "modelled cores")
		ops     = flag.Int("ops", 1, "commutative-update types (meusi)")
		level3  = flag.Bool("level3", false, "model three-level hierarchy rules")
		budget  = flag.Int("budget", 5_000_000, "state budget")
		timeout = flag.Duration("timeout", 5*time.Minute, "time budget")
	)
	flag.Parse()

	if *expID != "" {
		e, ok := exp.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "coupverify: unknown experiment %q\n", *expID)
			os.Exit(2)
		}
		for _, t := range e.Run(exp.DefaultParams()) {
			fmt.Println(t.String())
		}
		return
	}

	sy := &proto.System{NCores: *cores, Level3: *level3}
	switch *protoN {
	case "mesi":
		sy.Kind = proto.MESI
	case "meusi":
		sy.Kind = proto.MEUSI
		sy.NOps = *ops
	default:
		fmt.Fprintf(os.Stderr, "coupverify: unknown protocol %q\n", *protoN)
		os.Exit(2)
	}
	fmt.Printf("verifying %v, %d cores, %d ops, level3=%v...\n", sy.Kind, sy.NCores, sy.NOps, sy.Level3)
	r := check.Verify(sy, *budget, *timeout)
	fmt.Println(r.String())
	if r.Err != nil {
		os.Exit(1)
	}
}
