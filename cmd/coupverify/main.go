// Command coupverify exhaustively model-checks the detailed message-level
// MESI and MEUSI protocols (the Fig 8 experiment), or a single
// configuration.
//
// Usage:
//
//	coupverify -exp fig8                 # the full verification-cost grid
//	coupverify -protocol meusi -cores 3 -ops 2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/proto"
)

// kinds maps model-checker protocol names to their transition tables. The
// checker models the two detailed protocols the paper verifies (Sec 4.3);
// this is distinct from the simulator's protocol registry.
var kinds = map[string]proto.Kind{
	"mesi":  proto.MESI,
	"meusi": proto.MEUSI,
}

func kindNames() string {
	names := make([]string, 0, len(kinds))
	for n := range kinds {
		names = append(names, strings.ToUpper(n))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func main() {
	var (
		expID   = flag.String("exp", "", "run a registered experiment (fig8)")
		protoN  = flag.String("protocol", "meusi", "modelled protocol (case-insensitive)")
		cores   = flag.Int("cores", 2, "modelled cores")
		ops     = flag.Int("ops", 1, "commutative-update types (meusi)")
		level3  = flag.Bool("level3", false, "model three-level hierarchy rules")
		budget  = flag.Int("budget", 5_000_000, "state budget")
		timeout = flag.Duration("timeout", 5*time.Minute, "time budget")
	)
	flag.StringVar(protoN, "proto", *protoN, "alias for -protocol")
	flag.Parse()

	if *expID != "" {
		e, ok := exp.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "coupverify: unknown experiment %q; have:\n  %s\n",
				*expID, strings.Join(exp.Listing(), "\n  "))
			os.Exit(2)
		}
		for _, t := range e.Run(exp.DefaultParams()) {
			fmt.Println(t.String())
		}
		return
	}

	kind, ok := kinds[strings.ToLower(*protoN)]
	if !ok {
		fmt.Fprintf(os.Stderr, "coupverify: unknown protocol %q (have: %s)\n", *protoN, kindNames())
		os.Exit(2)
	}
	sy := &proto.System{Kind: kind, NCores: *cores, Level3: *level3}
	if kind == proto.MEUSI {
		sy.NOps = *ops
	}
	fmt.Printf("verifying %v, %d cores, %d ops, level3=%v...\n", sy.Kind, sy.NCores, sy.NOps, sy.Level3)
	r := check.Verify(sy, *budget, *timeout)
	fmt.Println(r.String())
	if r.Err != nil {
		os.Exit(1)
	}
}
