// Command coupload is the closed-loop load generator for coupd: it
// drives the same Zipf-skewed counter/histogram traffic shapes as
// cmd/commutebench, but ships them to a coupd server as batched
// POST /v1/batch requests, and gives the service the simulator's
// mean ± CI95 treatment. Every run is equivalence-checked: the
// server-side reduction's delta must equal the client-side applied-op
// count exactly, or the run fails. Delivery is exactly once — each
// worker writes through its own coupd dedup session, so transport
// faults, 5xx answers, and 429 saturation are retried (full-jitter
// backoff under -retry-budget) without losing or duplicating a batch.
//
// Usage:
//
//	coupload -addr http://127.0.0.1:7077             # against a running coupd
//	coupload -self                                   # spin an in-process server (one-command demo)
//	coupload -kind counter -cells 64 -threads 1,4,8 -batch 256
//	coupload -kind hist -bins 512 -zipf 1.2 -reps 5 -json
//
// ns/op measures wall-clock per update delivered (batching amortizes the
// HTTP round trip); updates/s is the sustained closed-loop throughput.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/stats"
	"repro/internal/swbench"
	"repro/pkg/coupd"
)

// point is one JSON-emitted data point. The latency figures come from
// the client-side obs histogram each rep records: p50/p99 are the mean
// across reps, max is the worst rep, and the rep_* arrays carry every
// rep's own quantiles.
type point struct {
	Kind         string    `json:"kind"`
	Threads      int       `json:"threads"`
	Batch        int       `json:"batch"`
	Reps         int       `json:"reps"`
	MeanNsPerOp  float64   `json:"mean_ns_per_op"`
	CI95NsPerOp  float64   `json:"ci95_ns_per_op"`
	UpdatesPerS  float64   `json:"updates_per_sec"`
	CI95UpdatesS float64   `json:"ci95_updates_per_sec"`
	P50Ns        float64   `json:"p50_ns"`
	P99Ns        float64   `json:"p99_ns"`
	MaxNs        float64   `json:"max_ns"`
	RepP50Ns     []float64 `json:"rep_p50_ns"`
	RepP99Ns     []float64 `json:"rep_p99_ns"`
	RepMaxNs     []float64 `json:"rep_max_ns"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:7077", "coupd base URL")
		self     = flag.Bool("self", false, "ignore -addr and load an in-process coupd (one-command demo)")
		kindF    = flag.String("kind", "hist", "workload shape: counter or hist")
		threadsF = flag.String("threads", "", "comma-separated worker counts (default 1,2,4,...,max(8,GOMAXPROCS))")
		batch    = flag.Int("batch", 256, "updates per POST /v1/batch request")
		ops      = flag.Int("ops", 100_000, "updates per worker")
		cells    = flag.Int("cells", 8, "distinct counters (counter kind)")
		bins     = flag.Int("bins", 512, "histogram buckets (hist kind)")
		zipf     = flag.Float64("zipf", 1.07, "Zipf skew s (> 1; <= 1 selects targets uniformly)")
		reads    = flag.Int("reads", 0, "fold a snapshot read into every N updates (0 = update-only)")
		reps     = flag.Int("reps", 3, "seeded repetitions per data point (mean ± CI95)")
		seed     = flag.Uint64("seed", 1, "base seed (rep r runs with seed+r)")
		asJSON   = flag.Bool("json", false, "emit data points as JSON")
		budget   = flag.Duration("retry-budget", 30*time.Second, "per-batch exactly-once retry budget (transport faults, 5xx, 429 backoff)")
	)
	flag.Parse()

	kind, err := swbench.ParseKind(*kindF)
	if err != nil {
		fail(2, err)
	}
	threads, err := parseThreads(*threadsF)
	if err != nil {
		fail(2, err)
	}

	base := *addr
	if *self {
		srv, err := coupd.New()
		if err != nil {
			fail(1, err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		base = ts.URL
		fmt.Fprintf(os.Stderr, "coupload: in-process coupd at %s\n", base)
	}

	t := &stats.Table{
		Title: fmt.Sprintf("coupd closed loop (%s): %d ops/worker, batch=%d, cells=%d bins=%d zipf=%.2f reads=%d, GOMAXPROCS=%d",
			kind, *ops, *batch, *cells, *bins, *zipf, *reads, runtime.GOMAXPROCS(0)),
		Headers: []string{"workers", "ns/op", "±ci95", "updates/s", "p50", "p99", "max"},
	}
	var points []point
	var worstCI float64
	for _, th := range threads {
		c := swbench.Config{
			Kind: kind, Impl: swbench.ImplCommute, Threads: th, Ops: *ops,
			Cells: *cells, Bins: *bins, ZipfS: *zipf, ReadEvery: *reads, Seed: *seed,
			NewDriver:     swbench.HTTPDriver(base, *batch, nil, swbench.HTTPRetryBudget(*budget)),
			RecordLatency: true,
		}
		results, mean, ci, err := swbench.Measure(c, *reps)
		if err != nil {
			fail(1, err)
		}
		ups := make([]float64, len(results))
		p50s := make([]float64, len(results))
		p99s := make([]float64, len(results))
		maxs := make([]float64, len(results))
		var worstMax float64
		for i, r := range results {
			ups[i] = r.MOpsPerSec * 1e6
			p50s[i], p99s[i], maxs[i] = r.LatP50Ns, r.LatP99Ns, r.LatMaxNs
			if r.LatMaxNs > worstMax {
				worstMax = r.LatMaxNs
			}
		}
		upsMean, upsCI := stats.Mean(ups), stats.CI95(ups)
		if mean > 0 && ci/mean > worstCI {
			worstCI = ci / mean
		}
		t.AddRow(fmt.Sprint(th), stats.F(mean), stats.F(ci), stats.F(upsMean),
			stats.F(stats.Mean(p50s)), stats.F(stats.Mean(p99s)), stats.F(worstMax))
		points = append(points, point{
			Kind: string(kind), Threads: th, Batch: *batch, Reps: *reps,
			MeanNsPerOp: mean, CI95NsPerOp: ci,
			UpdatesPerS: upsMean, CI95UpdatesS: upsCI,
			P50Ns: stats.Mean(p50s), P99Ns: stats.Mean(p99s), MaxNs: worstMax,
			RepP50Ns: p50s, RepP99Ns: p99s, RepMaxNs: maxs,
		})
	}
	t.AddNote("every run equivalence-checked: server-side reduction delta == client applied-op count (threads*ops), exactly")
	t.AddNote("p50/p99/max are per-update-call latency from the client-side obs histogram (the op that flushes a batch absorbs the round-trip)")
	if *reps > 1 {
		t.AddNote("each cell is the mean of %d seeded reps; worst-case ±CI95 is %.1f%% of the mean", *reps, worstCI*100)
	}
	if *asJSON {
		blob, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			fail(1, err)
		}
		fmt.Printf("%s\n", blob)
		return
	}
	fmt.Println(t.String())
}

func fail(code int, err error) {
	fmt.Fprintf(os.Stderr, "coupload: %v\n", err)
	os.Exit(code)
}

func parseThreads(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return swbench.DefaultThreads(0), nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
