// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so CI can archive benchmark results (BENCH_sim.json) and the
// perf trajectory of the simulator accumulates per PR — and, with
// -compare, gates regressions against a committed baseline.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkEngine ./internal/sim | benchjson -o BENCH_sim.json
//	go test -run '^$' -bench ... ./... | benchjson -compare BENCH_baseline.json -threshold 0.20
//
// Every benchmark line becomes one record carrying the iteration count and
// all reported metrics (ns/op, simops/s, B/op, allocs/op, ...). Context
// lines (goos, goarch, pkg, cpu) are captured as metadata.
//
// # Compare mode
//
// -compare old.json checks the fresh results against a baseline document
// and exits non-zero when any tracked benchmark regressed by more than
// -threshold (relative, default 0.20). Two kinds of metrics are gated
// differently:
//
//   - Machine-independent metrics (allocs/op, B/op) are always gated:
//     they are deterministic properties of the code, identical on a
//     laptop and a CI runner, so a committed baseline stays valid
//     everywhere. A small absolute slack absorbs runtime jitter.
//   - Wall-clock metrics (ns/op, and throughput metrics like simops/s or
//     specs/s, where lower is better inverted) are gated only when the
//     baseline was recorded on the same CPU model (the "cpu" context
//     line): cross-machine nanoseconds are noise, not signal. Skipped
//     comparisons are reported, never silently dropped.
//
// Refresh the committed baseline with the one-command pipe in README
// "Simulator performance" (the canonical tracked set piped into
// `benchjson -o BENCH_baseline.json`).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the output document.
type Doc struct {
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

// parseBench reads `go test -bench` output into a Doc.
func parseBench(r io.Reader) (Doc, error) {
	doc := Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Context[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // not a result line (e.g. "BenchmarkFoo ... FAIL")
		}
		r := Result{Name: stripProcSuffix(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		doc.Results = append(doc.Results, r)
	}
	return doc, sc.Err()
}

// stripProcSuffix drops go test's "-<GOMAXPROCS>" benchmark-name suffix,
// so results from hosts with different core counts compare under one
// name. On a 1-core host go test emits no suffix at all — without the
// strip, a baseline from one machine would never match another's run and
// the whole gate would skip itself silently.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// verdict is one metric comparison.
type verdict struct {
	name, metric string
	old, new     float64
	delta        float64 // relative change, regression-positive
	regressed    bool
	skipped      string // non-empty: why this metric was not gated
}

// higherIsBetter reports whether a metric is a rate (throughput) rather
// than a cost.
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "/s")
}

// machineIndependent reports whether a metric is a deterministic property
// of the code rather than of the host (and so is gated even when the
// baseline comes from a different CPU).
func machineIndependent(metric string) bool {
	return metric == "allocs/op" || metric == "B/op"
}

// absSlack absorbs runtime jitter in machine-independent metrics: the
// allocator and GC may add a few objects (or a few dozen bytes) per op
// independent of the code under test.
func absSlack(metric string) float64 {
	switch metric {
	case "allocs/op":
		return 4
	case "B/op":
		return 512
	}
	return 0
}

// compare gates fresh results against a baseline. Benchmarks present only
// on one side are ignored (the baseline names the tracked set); metrics
// are gated per the rules above.
func compare(baseline, fresh Doc, threshold float64) []verdict {
	sameCPU := baseline.Context["cpu"] != "" && baseline.Context["cpu"] == fresh.Context["cpu"]
	freshByName := map[string]Result{}
	for _, r := range fresh.Results {
		freshByName[r.Name] = r
	}
	var out []verdict
	for _, old := range baseline.Results {
		nw, ok := freshByName[old.Name]
		if !ok {
			// A tracked benchmark that stopped reporting is a gate hole
			// (renamed, deleted, or the run filter drifted), not a skip:
			// fail so the baseline gets refreshed deliberately.
			out = append(out, verdict{name: old.Name, metric: "-", regressed: true, skipped: "tracked benchmark missing from fresh run"})
			continue
		}
		metrics := make([]string, 0, len(old.Metrics))
		for m := range old.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			ov := old.Metrics[m]
			nv, ok := nw.Metrics[m]
			if !ok {
				out = append(out, verdict{name: old.Name, metric: m, old: ov, skipped: "metric missing from fresh run"})
				continue
			}
			v := verdict{name: old.Name, metric: m, old: ov, new: nv}
			switch {
			case !machineIndependent(m) && !sameCPU:
				v.skipped = "wall-clock metric, baseline from different cpu"
			case higherIsBetter(m):
				if ov > 0 {
					v.delta = (ov - nv) / ov
					v.regressed = nv < ov*(1-threshold)
				}
			default:
				base := ov*(1+threshold) + absSlack(m)
				if ov > 0 {
					v.delta = (nv - ov) / ov
				} else {
					v.delta = nv
				}
				v.regressed = nv > base
			}
			out = append(out, v)
		}
	}
	return out
}

// report renders the verdicts and returns whether any regressed.
func report(w io.Writer, vs []verdict, threshold float64) bool {
	bad := false
	fmt.Fprintf(w, "benchjson: comparing against baseline (threshold %.0f%%)\n", threshold*100)
	for _, v := range vs {
		switch {
		case v.regressed && v.skipped != "":
			bad = true
			fmt.Fprintf(w, "  FAIL %-60s %-12s (%s)\n", v.name, v.metric, v.skipped)
		case v.skipped != "":
			fmt.Fprintf(w, "  SKIP %-60s %-12s (%s)\n", v.name, v.metric, v.skipped)
		case v.regressed:
			bad = true
			fmt.Fprintf(w, "  FAIL %-60s %-12s %12.2f -> %12.2f (%+.1f%%)\n", v.name, v.metric, v.old, v.new, v.delta*100)
		default:
			fmt.Fprintf(w, "  ok   %-60s %-12s %12.2f -> %12.2f (%+.1f%%)\n", v.name, v.metric, v.old, v.new, v.delta*100)
		}
	}
	return bad
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	out := flag.String("o", "", "output file (default stdout; with -compare, optional archive copy)")
	baselinePath := flag.String("compare", "", "baseline JSON to gate against; exit 1 on regression")
	threshold := flag.Float64("threshold", 0.20, "relative regression threshold for -compare")
	flag.Parse()

	doc, err := parseBench(os.Stdin)
	if err != nil {
		fatalf("read: %v", err)
	}
	if len(doc.Results) == 0 {
		fatalf("no benchmark results on stdin")
	}

	data, err := json.MarshalIndent(doc, "", "\t")
	if err != nil {
		fatalf("%v", err)
	}
	data = append(data, '\n')
	switch {
	case *out != "":
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatalf("%v", err)
		}
	case *baselinePath == "":
		os.Stdout.Write(data)
	}

	if *baselinePath == "" {
		return
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("baseline: %v", err)
	}
	var baseline Doc
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fatalf("baseline %s: %v", *baselinePath, err)
	}
	if report(os.Stdout, compare(baseline, doc, *threshold), *threshold) {
		fatalf("benchmark regression above %.0f%% threshold (refresh the baseline only for intentional trade-offs; see README)", *threshold*100)
	}
}
