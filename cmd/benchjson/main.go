// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so CI can archive benchmark results (BENCH_sim.json) and the
// perf trajectory of the simulator accumulates per PR.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkEngine ./internal/sim | benchjson -o BENCH_sim.json
//
// Every benchmark line becomes one record carrying the iteration count and
// all reported metrics (ns/op, simops/s, B/op, allocs/op, ...). Context
// lines (goos, goarch, pkg, cpu) are captured as metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the output document.
type Doc struct {
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Context[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // not a result line (e.g. "BenchmarkFoo ... FAIL")
		}
		r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(doc, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
