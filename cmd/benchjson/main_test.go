package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineLoadL1         	12345678	        20.10 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineThroughput     	   60000	      5000 ns/op	   4000000 simops/s	      15 B/op	       0 allocs/op
PASS
`

func parse(t *testing.T, s string) Doc {
	t.Helper()
	doc, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseBench(t *testing.T) {
	doc := parse(t, benchOutput)
	if doc.Context["cpu"] != "Intel(R) Xeon(R) Processor @ 2.10GHz" || doc.Context["goos"] != "linux" {
		t.Errorf("context = %v", doc.Context)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(doc.Results))
	}
	r := doc.Results[1]
	if r.Name != "BenchmarkEngineThroughput" || r.Iterations != 60000 {
		t.Errorf("result = %+v", r)
	}
	if r.Metrics["ns/op"] != 5000 || r.Metrics["simops/s"] != 4000000 || r.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}

// regressions reports the (name, metric) pairs flagged by compare.
func regressions(vs []verdict) map[string]bool {
	out := map[string]bool{}
	for _, v := range vs {
		if v.regressed {
			out[v.name+" "+v.metric] = true
		}
	}
	return out
}

func TestCompareSameCPU(t *testing.T) {
	baseline := parse(t, benchOutput)
	// 30% slower ns/op, 30% lower throughput, allocs up by 50.
	freshDoc := parse(t, strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(benchOutput,
		"20.10 ns/op", "26.50 ns/op"),
		"4000000 simops/s", "2700000 simops/s"),
		"0 allocs/op", "50 allocs/op"))
	got := regressions(compare(baseline, freshDoc, 0.20))
	for _, want := range []string{
		"BenchmarkEngineLoadL1 ns/op",
		"BenchmarkEngineThroughput simops/s",
		"BenchmarkEngineLoadL1 allocs/op",
	} {
		if !got[want] {
			t.Errorf("missing regression %q (got %v)", want, got)
		}
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	baseline := parse(t, benchOutput)
	// 10% slower: inside the 20% threshold. allocs/op 0 -> 3: inside slack.
	fresh := parse(t, strings.ReplaceAll(strings.ReplaceAll(benchOutput,
		"20.10 ns/op", "22.00 ns/op"),
		"       0 allocs/op", "       3 allocs/op"))
	if got := regressions(compare(baseline, fresh, 0.20)); len(got) != 0 {
		t.Errorf("unexpected regressions: %v", got)
	}
}

func TestCompareCrossCPUGatesOnlyMachineIndependent(t *testing.T) {
	baseline := parse(t, benchOutput)
	// Different CPU: wall-clock metrics 3x worse must be SKIPPED, but an
	// allocs/op explosion must still fail.
	fresh := parse(t, strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(benchOutput,
		"Intel(R) Xeon(R) Processor @ 2.10GHz", "AMD EPYC 7B13"),
		"20.10 ns/op", "60.00 ns/op"),
		"       0 allocs/op", "     999 allocs/op"))
	vs := compare(baseline, fresh, 0.20)
	got := regressions(vs)
	if got["BenchmarkEngineLoadL1 ns/op"] || got["BenchmarkEngineThroughput simops/s"] {
		t.Errorf("wall-clock metrics gated across different CPUs: %v", got)
	}
	if !got["BenchmarkEngineLoadL1 allocs/op"] {
		t.Errorf("allocs/op not gated across CPUs: %v", got)
	}
	skips := 0
	for _, v := range vs {
		if v.skipped != "" {
			skips++
		}
	}
	if skips == 0 {
		t.Error("cross-CPU wall-clock comparisons must be reported as skipped")
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	baseline := parse(t, benchOutput)
	fresh := parse(t, strings.ReplaceAll(benchOutput, "BenchmarkEngineThroughput", "BenchmarkRenamed"))
	vs := compare(baseline, fresh, 0.20)
	if got := regressions(vs); !got["BenchmarkEngineThroughput -"] {
		t.Errorf("tracked benchmark missing from fresh run must fail the gate, got %v", got)
	}
	var sb strings.Builder
	if !report(&sb, vs, 0.20) {
		t.Error("report must flag the missing benchmark as a failure")
	}
	if !strings.Contains(sb.String(), "FAIL BenchmarkEngineThroughput") {
		t.Errorf("report output:\n%s", sb.String())
	}
}

// TestProcSuffixStripped pins the cross-machine name contract: go test
// appends "-<GOMAXPROCS>" on multi-core hosts and nothing on 1-core
// hosts; both must land under one name or the gate silently skips
// everything (the bug this test guards against).
func TestProcSuffixStripped(t *testing.T) {
	multi := strings.ReplaceAll(strings.ReplaceAll(benchOutput,
		"BenchmarkEngineLoadL1    ", "BenchmarkEngineLoadL1-16 "),
		"BenchmarkEngineThroughput    ", "BenchmarkEngineThroughput-16 ")
	doc := parse(t, multi)
	if doc.Results[0].Name != "BenchmarkEngineLoadL1" || doc.Results[1].Name != "BenchmarkEngineThroughput" {
		t.Fatalf("suffixes not stripped: %q, %q", doc.Results[0].Name, doc.Results[1].Name)
	}
	// A suffixed fresh run against an unsuffixed baseline must compare,
	// not skip.
	baseline := parse(t, benchOutput)
	vs := compare(baseline, doc, 0.20)
	for _, v := range vs {
		if v.skipped != "" {
			t.Errorf("unexpected skip after suffix strip: %+v", v)
		}
	}
	for in, want := range map[string]string{
		"BenchmarkFoo-16":    "BenchmarkFoo",
		"BenchmarkFoo":       "BenchmarkFoo",
		"BenchmarkFoo/sub-8": "BenchmarkFoo/sub",
		"BenchmarkFoo/n=8":   "BenchmarkFoo/n=8",
		"BenchmarkFoo-x8":    "BenchmarkFoo-x8",
	} {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReportVerdicts(t *testing.T) {
	var sb strings.Builder
	bad := report(&sb, []verdict{
		{name: "BenchmarkA", metric: "ns/op", old: 10, new: 20, delta: 1.0, regressed: true},
		{name: "BenchmarkB", metric: "ns/op", old: 10, new: 10},
		{name: "BenchmarkC", metric: "ns/op", skipped: "different cpu"},
	}, 0.2)
	if !bad {
		t.Error("report must flag regressions")
	}
	out := sb.String()
	for _, want := range []string{"FAIL BenchmarkA", "ok   BenchmarkB", "SKIP BenchmarkC"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}
