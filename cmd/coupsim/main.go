// Command coupsim runs one workload on one simulated machine configuration
// and prints the run's cycle count, AMAT breakdown, protocol events and
// traffic — the quickest way to poke at the simulator.
//
// Usage:
//
//	coupsim -workload hist -proto meusi -cores 64 -bins 512
//	coupsim -workload bfs -proto mesi -cores 128
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	var (
		name  = flag.String("workload", "hist", "hist|hist-priv|spmv|pgrank|bfs|fluid|refcount|refcount-delayed|counter")
		proto = flag.String("proto", "meusi", "mesi|meusi|rmo")
		cores = flag.Int("cores", 64, "simulated cores")
		bins  = flag.Int("bins", 512, "histogram bins (hist)")
		size  = flag.Int("size", 100000, "workload size (pixels, matrix dim, updates...)")
		seed  = flag.Uint64("seed", 1, "machine seed")
	)
	flag.Parse()

	var pr sim.Protocol
	switch *proto {
	case "mesi":
		pr = sim.MESI
	case "meusi":
		pr = sim.MEUSI
	case "rmo":
		pr = sim.RMO
	default:
		fmt.Fprintf(os.Stderr, "coupsim: unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	var w workloads.Workload
	switch *name {
	case "hist":
		w = workloads.NewHist(*size, *bins, workloads.HistShared, 7)
	case "hist-priv":
		w = workloads.NewHist(*size, *bins, workloads.HistPrivCore, 7)
	case "spmv":
		w = workloads.NewSpMV(*size/16, 24, 5)
	case "pgrank":
		w = workloads.NewPgRank(12, 12, 2, 9)
	case "bfs":
		w = workloads.NewBFS(13, 10, 13)
	case "fluid":
		w = workloads.NewFluid(96, 96, 3, 17)
	case "refcount":
		w = workloads.NewRefCount(1024, *size/50, false, workloads.RefPlain, 21)
	case "refcount-delayed":
		w = workloads.NewRefCountDelayed(8192, 2, 300, workloads.DelayedCoup, 27)
	case "counter":
		w = workloads.NewRefCount(1, *size/50, true, workloads.RefPlain, 3)
	default:
		fmt.Fprintf(os.Stderr, "coupsim: unknown workload %q\n", *name)
		os.Exit(2)
	}

	cfg := sim.DefaultConfig(*cores, pr)
	cfg.Seed = *seed
	st, err := workloads.Run(w, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coupsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s on %d cores under %v:\n%s\n", w.Name(), *cores, pr, st.String())
}
