// Command coupsim runs one workload on one simulated machine configuration
// and prints the run's cycle count, AMAT breakdown, protocol events and
// traffic — the quickest way to poke at the simulator. Workloads and
// protocols are resolved by name (case-insensitively) through the pkg/coup
// registries, so anything registered — built-in or not — is runnable.
//
// Usage:
//
//	coupsim -workload hist -protocol meusi -cores 64 -bins 512
//	coupsim -workload bfs -protocol mesi -cores 128
//	coupsim -workload hist -reps 8 -parallel 4   # mean ± CI95 over 8 seeds
//	coupsim -list            # enumerate protocols and workloads
//	coupsim -workload spmv -json
//
// With -reps N > 1 the same configuration runs under machine seeds
// seed..seed+N-1 (fanned out through coup.Sweep; -parallel bounds the
// worker pool) and the report is the per-field mean plus a 95% confidence
// interval on the cycle count.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/pkg/coup"
)

func main() {
	var (
		name     = flag.String("workload", "hist", "registered workload name (see -list)")
		protocol = flag.String("protocol", "MEUSI", "registered protocol name (see -list)")
		cores    = flag.Int("cores", 64, "simulated cores")
		size     = flag.Int("size", 0, "workload size knob (0 = workload default; see -list for meaning)")
		bins     = flag.Int("bins", 0, "histogram bins (hist family; 0 = default)")
		seed     = flag.Uint64("seed", 1, "machine seed (first seed when -reps > 1)")
		wseed    = flag.Uint64("wseed", 0, "workload input seed (0 = workload default)")
		reps     = flag.Int("reps", 1, "seeded repetitions (mean ± CI95 when > 1)")
		parallel = flag.Int("parallel", 0, "concurrent repetitions (0 = GOMAXPROCS); never changes results")
		asJSON   = flag.Bool("json", false, "emit stats as JSON")
		list     = flag.Bool("list", false, "list registered protocols and workloads, then exit")
	)
	flag.StringVar(protocol, "proto", *protocol, "alias for -protocol")
	flag.Parse()

	if *list {
		fmt.Println("protocols:")
		for _, p := range coup.Protocols() {
			fmt.Printf("  %-10s %s\n", p.Name(), p.Description())
		}
		fmt.Println("workloads:")
		for _, w := range coup.Workloads() {
			fmt.Printf("  %-18s %s\n", w.Name, w.Description)
		}
		return
	}
	if *reps < 1 || *parallel < 0 {
		fmt.Fprintln(os.Stderr, "coupsim: -reps must be >= 1 and -parallel >= 0")
		os.Exit(2)
	}

	specs := make([]coup.RunSpec, *reps)
	for r := range specs {
		specs[r] = coup.RunSpec{
			Workload: *name,
			Options: []coup.Option{
				coup.WithCores(*cores),
				coup.WithProtocol(*protocol),
				coup.WithSeed(*seed + uint64(r)),
				coup.WithWorkloadParams(coup.WorkloadParams{Size: *size, Bins: *bins, Seed: *wseed}),
			},
		}
	}
	var sopts []coup.SweepOption
	if *parallel > 0 {
		sopts = append(sopts, coup.WithParallelism(*parallel))
	}
	results, err := coup.Sweep(specs, sopts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coupsim: %v\n", err)
		os.Exit(2)
	}
	runs := make([]coup.Stats, len(results))
	for i, res := range results {
		if res.Err != nil {
			fail(res.Err)
		}
		runs[i] = res.Stats
	}

	if *reps == 1 {
		st := runs[0]
		if *asJSON {
			blob, err := st.JSON()
			if err != nil {
				fail(err)
			}
			fmt.Printf("%s\n", blob)
			return
		}
		fmt.Println(st.String())
		return
	}

	mean := coup.MeanStats(runs...)
	ci := coup.CyclesCI95(runs...)
	if *asJSON {
		blob, err := json.MarshalIndent(struct {
			Reps       int        `json:"reps"`
			CI95Cycles float64    `json:"ci95_cycles"`
			Mean       coup.Stats `json:"mean"`
		}{Reps: *reps, CI95Cycles: ci, Mean: mean}, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s\n", blob)
		return
	}
	fmt.Printf("mean of %d reps (seeds %d..%d), cycles ±CI95 = %.1f:\n",
		*reps, *seed, *seed+uint64(*reps)-1, ci)
	fmt.Println(mean.String())
}

// fail reports a run error with the documented exit codes: 2 for usage
// errors (unknown names, bad options), 1 for simulation/validation
// failures.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "coupsim: %v\n", err)
	if errors.Is(err, coup.ErrUnknownWorkload) || errors.Is(err, coup.ErrUnknownProtocol) ||
		errors.Is(err, coup.ErrInvalidOption) || errors.Is(err, coup.ErrConflictingOptions) {
		os.Exit(2) // usage error
	}
	os.Exit(1) // simulation/validation failure
}
