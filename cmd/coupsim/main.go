// Command coupsim runs one workload on one simulated machine configuration
// and prints the run's cycle count, AMAT breakdown, protocol events and
// traffic — the quickest way to poke at the simulator. Workloads and
// protocols are resolved by name (case-insensitively) through the pkg/coup
// registries, so anything registered — built-in or not — is runnable.
//
// Usage:
//
//	coupsim -workload hist -protocol meusi -cores 64 -bins 512
//	coupsim -workload bfs -protocol mesi -cores 128
//	coupsim -list            # enumerate protocols and workloads
//	coupsim -workload spmv -json
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/pkg/coup"
)

func main() {
	var (
		name     = flag.String("workload", "hist", "registered workload name (see -list)")
		protocol = flag.String("protocol", "MEUSI", "registered protocol name (see -list)")
		cores    = flag.Int("cores", 64, "simulated cores")
		size     = flag.Int("size", 0, "workload size knob (0 = workload default; see -list for meaning)")
		bins     = flag.Int("bins", 0, "histogram bins (hist family; 0 = default)")
		seed     = flag.Uint64("seed", 1, "machine seed")
		wseed    = flag.Uint64("wseed", 0, "workload input seed (0 = workload default)")
		asJSON   = flag.Bool("json", false, "emit stats as JSON")
		list     = flag.Bool("list", false, "list registered protocols and workloads, then exit")
	)
	flag.StringVar(protocol, "proto", *protocol, "alias for -protocol")
	flag.Parse()

	if *list {
		fmt.Println("protocols:")
		for _, p := range coup.Protocols() {
			fmt.Printf("  %-10s %s\n", p.Name(), p.Description())
		}
		fmt.Println("workloads:")
		for _, w := range coup.Workloads() {
			fmt.Printf("  %-18s %s\n", w.Name, w.Description)
		}
		return
	}

	st, err := coup.Run(*name,
		coup.WithCores(*cores),
		coup.WithProtocol(*protocol),
		coup.WithSeed(*seed),
		coup.WithWorkloadParams(coup.WorkloadParams{Size: *size, Bins: *bins, Seed: *wseed}),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coupsim: %v\n", err)
		if errors.Is(err, coup.ErrUnknownWorkload) || errors.Is(err, coup.ErrUnknownProtocol) ||
			errors.Is(err, coup.ErrInvalidOption) || errors.Is(err, coup.ErrConflictingOptions) {
			os.Exit(2) // usage error
		}
		os.Exit(1) // simulation/validation failure
	}
	if *asJSON {
		blob, err := st.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "coupsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", blob)
		return
	}
	fmt.Println(st.String())
}
