// Quickstart: the paper's Fig 1 example — multiple cores adding to one
// shared counter — run on the simulated 8-socket system under all three
// schemes: conventional MESI atomics, remote memory operations, and COUP.
// Machines are built through pkg/coup's functional options and protocols
// are selected by registry name.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -scale 0.05   # tiny run (CI smoke tests)
package main

import (
	"flag"
	"fmt"

	"repro/pkg/coup"
)

func main() {
	scale := flag.Float64("scale", 1.0, "shrink the workload for quick runs (1.0 = full)")
	flag.Parse()
	const (
		cores    = 64
		protoFmt = "%-6s  %10d cycles  %8.1f cycles/update  %9d off-chip bytes\n"
	)
	perCore := int(1000 * *scale)
	if perCore < 1 {
		perCore = 1
	}
	fmt.Printf("Fig 1: %d cores each perform %d commutative adds to one counter\n\n", cores, perCore)

	for _, p := range []string{"MESI", "RMO", "MEUSI"} {
		m, err := coup.NewMachine(coup.WithCores(cores), coup.WithProtocol(p))
		if err != nil {
			panic(err)
		}
		counter := m.Alloc(64, 64)
		st := m.Run(func(c *coup.Ctx) {
			for i := 0; i < perCore; i++ {
				// One commutative-update instruction. Under MESI this runs
				// as an atomic fetch-and-add; under RMO it is shipped to the
				// line's home bank; under MEUSI (COUP) it is buffered and
				// coalesced in the local cache.
				c.CommAdd64(counter, 1)
				c.Work(20)
			}
		})
		if got := m.ReadWord64(counter); got != uint64(cores*perCore) {
			panic(fmt.Sprintf("%v: counter = %d, want %d", p, got, cores*perCore))
		}
		fmt.Printf(protoFmt, p, st.Cycles,
			float64(st.Cycles)/float64(perCore), st.Traffic.OffChipBytes)
	}

	fmt.Println("\nCOUP keeps updates in the private caches (Fig 1c): same final")
	fmt.Println("value, far fewer cycles and far less traffic than either baseline.")
}
