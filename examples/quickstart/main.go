// Quickstart: the paper's Fig 1 example — multiple cores adding to one
// shared counter — run on the simulated 8-socket system under all three
// schemes: conventional MESI atomics, remote memory operations, and COUP.
// Machines are built through pkg/coup's functional options and protocols
// are selected by registry name.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/pkg/coup"
)

func main() {
	const (
		cores    = 64
		perCore  = 1000
		protoFmt = "%-6s  %10d cycles  %8.1f cycles/update  %9d off-chip bytes\n"
	)
	fmt.Printf("Fig 1: %d cores each perform %d commutative adds to one counter\n\n", cores, perCore)

	for _, p := range []string{"MESI", "RMO", "MEUSI"} {
		m, err := coup.NewMachine(coup.WithCores(cores), coup.WithProtocol(p))
		if err != nil {
			panic(err)
		}
		counter := m.Alloc(64, 64)
		st := m.Run(func(c *coup.Ctx) {
			for i := 0; i < perCore; i++ {
				// One commutative-update instruction. Under MESI this runs
				// as an atomic fetch-and-add; under RMO it is shipped to the
				// line's home bank; under MEUSI (COUP) it is buffered and
				// coalesced in the local cache.
				c.CommAdd64(counter, 1)
				c.Work(20)
			}
		})
		if got := m.ReadWord64(counter); got != cores*perCore {
			panic(fmt.Sprintf("%v: counter = %d, want %d", p, got, cores*perCore))
		}
		fmt.Printf(protoFmt, p, st.Cycles,
			float64(st.Cycles)/perCore, st.Traffic.OffChipBytes)
	}

	fmt.Println("\nCOUP keeps updates in the private caches (Fig 1c): same final")
	fmt.Println("value, far fewer cycles and far less traffic than either baseline.")
}
